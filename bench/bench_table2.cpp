// Table II reproduction: forwarding-logic stuck-at fault coverage of the
// [19]-style routine with the performance counters removed.
//   * multi-core, no caches: coverage oscillates across execution scenarios
//     (active cores x flash position x alignment) -> min/max columns;
//   * the proposed cache-based strategy: a single, stable, higher value.
//
// Exhaustive by default (every collapsed fault), campaigns sharded over all
// cores. Knobs: DETSTL_FAULT_STRIDE (default 1; N = every Nth fault),
// DETSTL_SCENARIOS (default 0 = full 12-scenario grid), DETSTL_THREADS /
// --threads N (0 = hardware concurrency, 1 = serial), --progress.

#include <chrono>

#include "bench_util.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace detstl;
  const auto opts = bench::parse_options(argc, argv);
  const auto tracer = bench::make_trace_writer(opts);
  bench::print_header(
      "Table II (forwarding-logic fault simulation, no PCs)",
      "A: 53,298 faults, 64.14-75.19% no-cache, 79.61% cached; "
      "B: 57,506, 63.61-79.59%, 82.08%; C: 113,212, 56.24-66.48%, 68.79%");

  const unsigned stride = bench::env_unsigned("DETSTL_FAULT_STRIDE", 1);
  const unsigned scenarios = bench::env_unsigned("DETSTL_SCENARIOS", 0);
  bench::PerfSession perf(opts, "table2");
  perf.hash_knob("fault_stride", stride);
  perf.hash_knob("scenarios", scenarios);
  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = bench::run_resumable([&] {
    return exp::run_table2(stride, scenarios, bench::exec_options(opts, tracer.get()));
  });
  perf.mark_phase("campaigns");
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  TextTable t("Forwarding-logic fault simulation results (stride " +
              std::to_string(stride) + ")");
  t.header({"Core", "# of Faults", "min-max FC [%] no caches / no PCs",
            "FC [%] with caches / no PCs", "cached FC stable"});
  for (const auto& r : rows) {
    t.row({std::string(1, r.core), TextTable::fmt_int(static_cast<long long>(r.faults)),
           TextTable::fmt_fixed(r.fc_min, 2) + " - " + TextTable::fmt_fixed(r.fc_max, 2),
           TextTable::fmt_fixed(r.fc_cached, 2), r.cached_stable ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nwall-clock: %.1f s (threads=%u%s)\n", wall, opts.threads,
              opts.threads == 0 ? " = all hardware threads" : "");

  bool shape_ok = true;
  for (const auto& r : rows) {
    shape_ok &= r.fc_min < r.fc_max;          // no-cache FC oscillates
    shape_ok &= r.fc_cached > r.fc_max;       // cache-based exceeds the best
    shape_ok &= r.cached_stable;              // and is scenario-invariant
  }
  // Core C: 64-bit muxes vs 32-bit signature -> lower coverage than A/B.
  shape_ok &= rows[2].fc_cached < rows[0].fc_cached &&
              rows[2].fc_cached < rows[1].fc_cached;
  std::printf("\nshape check (oscillation, cached max+stable, core C lower): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  bench::finish_trace(opts, tracer);
  return perf.finish(shape_ok ? 0 : 1);
}
