// Table II reproduction: forwarding-logic stuck-at fault coverage of the
// [19]-style routine with the performance counters removed.
//   * multi-core, no caches: coverage oscillates across execution scenarios
//     (active cores x flash position x alignment) -> min/max columns;
//   * the proposed cache-based strategy: a single, stable, higher value.
//
// Environment knobs: DETSTL_FAULT_STRIDE (default 6: every 6th collapsed
// fault; 1 = exhaustive), DETSTL_SCENARIOS (default 0 = full 12-scenario
// grid).

#include "bench_util.h"
#include "exp/experiments.h"

int main() {
  using namespace detstl;
  bench::print_header(
      "Table II (forwarding-logic fault simulation, no PCs)",
      "A: 53,298 faults, 64.14-75.19% no-cache, 79.61% cached; "
      "B: 57,506, 63.61-79.59%, 82.08%; C: 113,212, 56.24-66.48%, 68.79%");

  const unsigned stride = bench::env_unsigned("DETSTL_FAULT_STRIDE", 6);
  const unsigned scenarios = bench::env_unsigned("DETSTL_SCENARIOS", 0);
  const auto rows = exp::run_table2(stride, scenarios);

  TextTable t("Forwarding-logic fault simulation results (stride " +
              std::to_string(stride) + ")");
  t.header({"Core", "# of Faults", "min-max FC [%] no caches / no PCs",
            "FC [%] with caches / no PCs", "cached FC stable"});
  for (const auto& r : rows) {
    t.row({std::string(1, r.core), TextTable::fmt_int(static_cast<long long>(r.faults)),
           TextTable::fmt_fixed(r.fc_min, 2) + " - " + TextTable::fmt_fixed(r.fc_max, 2),
           TextTable::fmt_fixed(r.fc_cached, 2), r.cached_stable ? "yes" : "NO"});
  }
  t.print();

  bool shape_ok = true;
  for (const auto& r : rows) {
    shape_ok &= r.fc_min < r.fc_max;          // no-cache FC oscillates
    shape_ok &= r.fc_cached > r.fc_max;       // cache-based exceeds the best
    shape_ok &= r.cached_stable;              // and is scenario-invariant
  }
  // Core C: 64-bit muxes vs 32-bit signature -> lower coverage than A/B.
  shape_ok &= rows[2].fc_cached < rows[0].fc_cached &&
              rows[2].fc_cached < rows[1].fc_cached;
  std::printf("\nshape check (oscillation, cached max+stable, core C lower): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
