// Simulator micro-benchmarks (google-benchmark): SoC cycle throughput in the
// regimes the experiments exercise, netlist evaluation, and the end-to-end
// wrapped-routine build. Not a paper exhibit; tracks the harness itself.

#include <benchmark/benchmark.h>

#include "core/routines.h"
#include "core/wrapper.h"
#include "exp/experiments.h"
#include "netlist/adapters.h"

namespace {

using namespace detstl;

core::BuiltTest build_test(unsigned core_id, core::WrapperKind w) {
  core::BuildEnv env;
  env.core_id = core_id;
  env.kind = static_cast<isa::CoreKind>(core_id);
  env.code_base = mem::kFlashBase + 0x2000 + core_id * 0x40000;
  env.data_base = core::default_data_base(core_id);
  const auto routine = core::make_fwd_test(false);
  return core::build_wrapped(*routine, w, env);
}

void BM_SocCycles_SingleCoreCached(benchmark::State& state) {
  const auto bt = build_test(0, core::WrapperKind::kCacheBased);
  for (auto _ : state) {
    soc::Soc s;
    s.load_program(bt.prog);
    s.set_boot(0, bt.prog.entry());
    s.reset();
    const auto res = s.run(10'000'000);
    state.SetItemsProcessed(state.items_processed() + static_cast<long>(res.cycles));
  }
}
BENCHMARK(BM_SocCycles_SingleCoreCached)->Unit(benchmark::kMillisecond);

void BM_SocCycles_TripleCoreContended(benchmark::State& state) {
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < 3; ++c) tests.push_back(build_test(c, core::WrapperKind::kPlain));
  for (auto _ : state) {
    soc::Soc s;
    for (const auto& t : tests) {
      s.load_program(t.prog);
      s.set_boot(t.env.core_id, t.prog.entry());
    }
    s.reset();
    const auto res = s.run(20'000'000);
    state.SetItemsProcessed(state.items_processed() + static_cast<long>(res.cycles));
  }
}
BENCHMARK(BM_SocCycles_TripleCoreContended)->Unit(benchmark::kMillisecond);

void BM_NetlistEval_Fwd64Lane(benchmark::State& state) {
  const netlist::FwdNetlist mod(isa::CoreKind::kC);
  auto st = mod.nl().make_state();
  cpu::FwdIn in;
  in.port[0].rf = 0x1234'5678'9abc'def0ull;
  in.port[0].sel = cpu::FwdSel::kExMem0;
  mod.encode(in, st);
  for (auto _ : state) {
    mod.nl().eval(st);
    benchmark::DoNotOptimize(st.value.data());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_NetlistEval_Fwd64Lane);

void BM_NetlistEval_Hdcu(benchmark::State& state) {
  const netlist::HdcuNetlist mod(isa::CoreKind::kA);
  auto st = mod.nl().make_state();
  cpu::HdcuIn in;
  in.cons[0] = {.rs = 5, .used = true};
  in.prod[0] = {.rd = 5, .writes = true};
  mod.encode(in, st);
  for (auto _ : state) {
    mod.nl().eval(st);
    benchmark::DoNotOptimize(st.value.data());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_NetlistEval_Hdcu);

void BM_BuildWrappedRoutine(benchmark::State& state) {
  for (auto _ : state) {
    auto bt = build_test(0, core::WrapperKind::kCacheBased);
    benchmark::DoNotOptimize(bt.golden);
  }
}
BENCHMARK(BM_BuildWrappedRoutine)->Unit(benchmark::kMillisecond);

void BM_SocCheckpointCopy(benchmark::State& state) {
  const auto bt = build_test(0, core::WrapperKind::kCacheBased);
  soc::Soc s;
  s.load_program(bt.prog);
  s.set_boot(0, bt.prog.entry());
  s.reset();
  for (int i = 0; i < 1000; ++i) s.tick();
  for (auto _ : state) {
    soc::Soc copy = s;
    benchmark::DoNotOptimize(copy.now());
  }
}
BENCHMARK(BM_SocCheckpointCopy)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
