// Simulator micro-benchmarks (google-benchmark): SoC cycle throughput in the
// regimes the experiments exercise, netlist evaluation, and the end-to-end
// wrapped-routine build. Not a paper exhibit; tracks the harness itself.
//
// The sim-MHz probe (--probe-only / --metrics-out) is the CI perf-gate KPI
// workload: a FIXED amount of simulated work — the cache-based routine to
// halt on one core, then the plain routines to halt on all three contended
// cores, `--probe-reps` times — so the "sim" subtree of BENCH_simspeed.json
// is byte-identical run to run and only the host timings move. The gbench
// timings stay for interactive use; the gate compares probe runs only.
//
//   bench_simspeed --probe-only --metrics-out BENCH_simspeed.json
//   stlperf check BENCH_simspeed.json --baseline bench/baselines/BENCH_simspeed.json

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/routines.h"
#include "core/wrapper.h"
#include "exp/experiments.h"
#include "netlist/adapters.h"

namespace {

using namespace detstl;

core::BuiltTest build_test(unsigned core_id, core::WrapperKind w) {
  core::BuildEnv env;
  env.core_id = core_id;
  env.kind = static_cast<isa::CoreKind>(core_id);
  env.code_base = mem::kFlashBase + 0x2000 + core_id * 0x40000;
  env.data_base = core::default_data_base(core_id);
  const auto routine = core::make_fwd_test(false);
  return core::build_wrapped(*routine, w, env);
}

u64 run_single_core_cached(const core::BuiltTest& bt) {
  soc::Soc s;
  s.load_program(bt.prog);
  s.set_boot(0, bt.prog.entry());
  s.reset();
  return s.run(10'000'000).cycles;
}

u64 run_triple_core_contended(const std::vector<core::BuiltTest>& tests) {
  soc::Soc s;
  for (const auto& t : tests) {
    s.load_program(t.prog);
    s.set_boot(t.env.core_id, t.prog.entry());
  }
  s.reset();
  return s.run(20'000'000).cycles;
}

/// Fixed-work KPI probe; returns the bench exit code.
int run_probe(const bench::BenchOptions& opts, unsigned reps) {
  // Build the routines BEFORE the session starts: the KPI measures the
  // simulator's cycle throughput, not the assembler/wrapper builder.
  const auto cached = build_test(0, core::WrapperKind::kCacheBased);
  std::vector<core::BuiltTest> plain;
  for (unsigned c = 0; c < 3; ++c)
    plain.push_back(build_test(c, core::WrapperKind::kPlain));

  bench::PerfSession perf(opts, "simspeed");
  perf.hash_knob("probe_reps", reps);
  u64 single = 0, triple = 0;
  for (unsigned r = 0; r < reps; ++r) single = run_single_core_cached(cached);
  perf.mark_phase("single_core_cached");
  for (unsigned r = 0; r < reps; ++r) triple = run_triple_core_contended(plain);
  perf.mark_phase("triple_core_contended");
  std::printf("probe: single-core cached %llu cycles, triple-core contended "
              "%llu cycles, %u rep(s)\n",
              static_cast<unsigned long long>(single),
              static_cast<unsigned long long>(triple), reps);
  // The probe runs to halt; a timeout means the workload itself broke.
  const bool ok = single > 0 && single < 10'000'000 && triple > 0 &&
                  triple < 20'000'000;
  if (!ok) std::printf("probe: FAILED (a workload hit its watchdog)\n");
  return perf.finish(ok ? 0 : 1);
}

void BM_SocCycles_SingleCoreCached(benchmark::State& state) {
  const auto bt = build_test(0, core::WrapperKind::kCacheBased);
  for (auto _ : state) {
    soc::Soc s;
    s.load_program(bt.prog);
    s.set_boot(0, bt.prog.entry());
    s.reset();
    const auto res = s.run(10'000'000);
    state.SetItemsProcessed(state.items_processed() + static_cast<long>(res.cycles));
  }
}
BENCHMARK(BM_SocCycles_SingleCoreCached)->Unit(benchmark::kMillisecond);

void BM_SocCycles_TripleCoreContended(benchmark::State& state) {
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < 3; ++c) tests.push_back(build_test(c, core::WrapperKind::kPlain));
  for (auto _ : state) {
    soc::Soc s;
    for (const auto& t : tests) {
      s.load_program(t.prog);
      s.set_boot(t.env.core_id, t.prog.entry());
    }
    s.reset();
    const auto res = s.run(20'000'000);
    state.SetItemsProcessed(state.items_processed() + static_cast<long>(res.cycles));
  }
}
BENCHMARK(BM_SocCycles_TripleCoreContended)->Unit(benchmark::kMillisecond);

void BM_NetlistEval_Fwd64Lane(benchmark::State& state) {
  const netlist::FwdNetlist mod(isa::CoreKind::kC);
  auto st = mod.nl().make_state();
  cpu::FwdIn in;
  in.port[0].rf = 0x1234'5678'9abc'def0ull;
  in.port[0].sel = cpu::FwdSel::kExMem0;
  mod.encode(in, st);
  for (auto _ : state) {
    mod.nl().eval(st);
    benchmark::DoNotOptimize(st.value.data());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_NetlistEval_Fwd64Lane);

void BM_NetlistEval_Hdcu(benchmark::State& state) {
  const netlist::HdcuNetlist mod(isa::CoreKind::kA);
  auto st = mod.nl().make_state();
  cpu::HdcuIn in;
  in.cons[0] = {.rs = 5, .used = true};
  in.prod[0] = {.rd = 5, .writes = true};
  mod.encode(in, st);
  for (auto _ : state) {
    mod.nl().eval(st);
    benchmark::DoNotOptimize(st.value.data());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_NetlistEval_Hdcu);

void BM_BuildWrappedRoutine(benchmark::State& state) {
  for (auto _ : state) {
    auto bt = build_test(0, core::WrapperKind::kCacheBased);
    benchmark::DoNotOptimize(bt.golden);
  }
}
BENCHMARK(BM_BuildWrappedRoutine)->Unit(benchmark::kMillisecond);

void BM_SocCheckpointCopy(benchmark::State& state) {
  const auto bt = build_test(0, core::WrapperKind::kCacheBased);
  soc::Soc s;
  s.load_program(bt.prog);
  s.set_boot(0, bt.prog.entry());
  s.reset();
  for (int i = 0; i < 1000; ++i) s.tick();
  for (auto _ : state) {
    soc::Soc copy = s;
    benchmark::DoNotOptimize(copy.now());
  }
}
BENCHMARK(BM_SocCheckpointCopy)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel the probe options off before google-benchmark sees the argv (it
  // rejects flags it doesn't know).
  bench::BenchOptions opts;
  bool probe_only = false;
  unsigned reps = 1;
  std::vector<char*> fwd = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      opts.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      opts.profile = true;
    } else if (std::strcmp(argv[i], "--probe-only") == 0) {
      probe_only = true;
    } else if (std::strcmp(argv[i], "--probe-reps") == 0 && i + 1 < argc) {
      reps = bench::parse_unsigned_or_die("--probe-reps", argv[++i]);
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (reps == 0) reps = 1;

  if (probe_only || !opts.metrics_out.empty()) {
    const int rc = run_probe(opts, reps);
    if (probe_only || rc != 0) return rc;
  }

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
