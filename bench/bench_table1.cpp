// Table I reproduction: memory-subsystem stall cycles of the parallel STL
// execution as the number of active cores grows. Each active core runs the
// full boot STL (ALU, register-file march, shifter, branch, MUL/DIV) without
// caches; stall counters are summed over the active cores and averaged over
// reset staggers ("the actual number of stall cycles varies depending on the
// initial SoC configuration").

#include "bench_util.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace detstl;
  const auto opts = bench::parse_options(argc, argv);
  const auto tracer = bench::make_trace_writer(opts);
  bench::print_header("Table I (multi-core STL execution: stalls)",
                      "1 core: 200,679 IF / 117,965 MEM; 2: 717,538 / 305,801; "
                      "3: 1,878,336 / 663,386");

  const unsigned samples = bench::env_unsigned("DETSTL_STAGGERS", 3);
  bench::PerfSession perf(opts, "table1");
  perf.hash_knob("staggers", samples);
  const auto rows = bench::run_resumable([&] {
    return exp::run_table1(samples, bench::exec_options(opts, tracer.get()));
  });
  perf.mark_phase("stagger_sweep");

  TextTable t("Multi-core STL execution: stalls due to the memory subsystem");
  t.header({"# Active Cores", "IF Stalls [clock cycles]", "MEM Stalls [clock cycles]"});
  for (const auto& r : rows) {
    t.row({std::to_string(r.active_cores),
           TextTable::fmt_int(static_cast<long long>(r.if_stalls)),
           TextTable::fmt_int(static_cast<long long>(r.mem_stalls))});
  }
  t.print();

  // Shape: super-linear growth of IF stalls with the core count (the paper's
  // 1->3 cores growth is ~9.4x; per-core work triples, so anything clearly
  // above 3x demonstrates the contention blow-up).
  const bool shape_ok = rows.size() == 3 &&
                        rows[1].if_stalls > 2.5 * rows[0].if_stalls &&
                        rows[2].if_stalls > 1.5 * rows[1].if_stalls &&
                        rows[2].if_stalls > 4.0 * rows[0].if_stalls;
  std::printf("\nshape check (super-linear IF-stall growth, IF >> MEM): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  bench::finish_trace(opts, tracer);
  return perf.finish(shape_ok ? 0 : 1);
}
