// Figure 1 reproduction: the forwarding path between two dependent adds,
// excited in cache-resident execution, degraded by flash latency in
// single-core no-cache execution, and broken entirely under triple-core
// contention. Prints the pipeline diagrams (I=issue E=EX M=MEM W=WB,
// '-' = stall bubble).

#include "bench_util.h"
#include "exp/experiments.h"

int main() {
  using namespace detstl;
  bench::print_header(
      "Figure 1 (forwarding path vs broken forwarding path)",
      "Fig 1a: consumer enters EX 1 cycle after producer (EX->EX path); "
      "Fig 1b: multi-core stalls delay it past the forwarding window");

  const exp::Fig1Result r = exp::run_fig1();

  std::printf("\n--- cache-resident execution (proposed strategy) ---\n%s",
              r.trace_cached.c_str());
  std::printf("producer->consumer EX distance: %llu cycle(s)%s\n",
              static_cast<unsigned long long>(r.ex_distance_cached),
              r.ex_distance_cached == 1 ? "  [EX->EX path excited]" : "");

  std::printf("\n--- single core, no caches (flash latency) ---\n%s",
              r.trace_single_core.c_str());
  std::printf("producer->consumer EX distance: %llu cycle(s)%s\n",
              static_cast<unsigned long long>(r.ex_distance_single),
              r.ex_distance_single == 2 ? "  [only the MEM-level path excited]" : "");

  std::printf("\n--- three cores, no caches (bus contention, Fig 1b) ---\n%s",
              r.trace_triple_core.c_str());
  std::printf("producer->consumer EX distance: %llu cycle(s)  [forwarding broken,\n"
              " consumer reads the register file]\n",
              static_cast<unsigned long long>(r.ex_distance_triple));

  // Fig 1a (path excited): both the cache-resident run and the quiet
  // single-core run deliver the consumer right behind the producer (the
  // flash controller's line buffer keeps an undisturbed stream fast).
  // Fig 1b (path broken): triple-core contention pushes the consumer far
  // past every forwarding window.
  const bool shape_ok = r.ex_distance_cached == 1 && r.ex_distance_single <= 2 &&
                        r.ex_distance_triple > 4;
  std::printf("\nshape check (path excited alone, broken by contention): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
