// Ablations of the methodology's design rules (DESIGN.md experiment index):
//
//  A. Loading-loop count (paper Sec. III step 1): 1 iteration (no loading
//     loop) leaves the measured pass exposed to refill timing -> the
//     PC-based signature destabilises across scenarios; 2 iterations are
//     sufficient; 3 add nothing.
//  B. No-write-allocate dummy-load rule (Sec. III step 1): with the rule the
//     signature is stable; without it, execution-loop stores keep missing
//     and the signature destabilises.
//  C. Cache-fitting rule (Sec. III step 2.2): a routine larger than the
//     I-cache is rejected and must be split; the two halves each pass with
//     stable signatures.

#include <set>

#include "bench_util.h"
#include "core/routines.h"
#include "exp/experiments.h"

namespace {

using namespace detstl;
using core::BuildEnv;
using core::BuiltTest;
using core::WrapperKind;

struct StabilityResult {
  unsigned distinct_signatures = 0;
  unsigned passes = 0;
  unsigned runs = 0;
};

/// Run the HDCU routine (with PCs — the determinism-sensitive variant) under
/// the cache wrapper with `mutate` applied to every core's BuildEnv, across
/// contended scenarios; count distinct signatures and passes. With
/// `busy_noise`, cores 1 and 2 run the plain (uncached) routine and keep the
/// bus saturated — the regime where a residual execution-loop bus access
/// (e.g. a store miss) picks up variable latency.
template <typename Mutate>
StabilityResult stability(const core::SelfTestRoutine& r, Mutate mutate,
                          bool busy_noise = false) {
  StabilityResult res;
  std::set<u32> sigs;
  for (const auto& stagger :
       {std::array<u32, 3>{0, 3, 7}, {5, 0, 2}, {1, 9, 4}, {11, 6, 0}}) {
    exp::Scenario sc{3, stagger, 0, 0, "abl"};
    std::vector<BuiltTest> tests;
    bool built = true;
    for (unsigned c = 0; c < 3; ++c) {
      BuildEnv env;
      env.core_id = c;
      env.kind = static_cast<isa::CoreKind>(c);
      env.code_base = mem::kFlashBase + 0x2000 + c * 0x40000;
      env.data_base = core::default_data_base(c);
      env.use_perf_counters = true;
      mutate(env);
      const WrapperKind w =
          busy_noise && c != 0 ? WrapperKind::kPlain : WrapperKind::kCacheBased;
      try {
        tests.push_back(core::build_wrapped(r, w, env));
      } catch (const std::exception&) {
        built = false;
        break;
      }
    }
    if (!built) continue;
    soc::Soc s = exp::scenario_factory(tests, sc, 0)();
    s.reset();
    const auto run = s.run(20'000'000);
    if (run.timed_out) continue;
    const auto v = core::read_verdict(s, soc::mailbox_addr(0));
    ++res.runs;
    if (v.status == soc::kStatusPass) ++res.passes;
    sigs.insert(v.signature);
  }
  res.distinct_signatures = static_cast<unsigned>(sigs.size());
  return res;
}

void print_row(TextTable& t, const char* variant, const StabilityResult& r) {
  t.row({variant, std::to_string(r.distinct_signatures),
         std::to_string(r.passes) + "/" + std::to_string(r.runs)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace detstl;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Methodology ablations (design rules of Sec. III)",
                      "not a paper exhibit: validates each rule's necessity");
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/true);
  bench::PerfSession perf(opts, "ablation");
  bool ok = true;

  {
    TextTable t("A. Loading-loop iterations (cache-based wrapper, PC signature, "
                "4 contended scenarios)");
    t.header({"variant", "distinct signatures", "self-test verdicts PASS"});
    const auto one = stability(*routine, [](BuildEnv& e) { e.cache_loop_iterations = 1; });
    const auto two = stability(*routine, [](BuildEnv&) {});
    const auto three =
        stability(*routine, [](BuildEnv& e) { e.cache_loop_iterations = 3; });
    print_row(t, "1 iteration (no loading loop)", one);
    print_row(t, "2 iterations (paper)", two);
    print_row(t, "3 iterations", three);
    t.print();
    ok &= one.distinct_signatures > 1 || one.passes < one.runs;
    ok &= two.distinct_signatures == 1 && two.passes == two.runs;
    ok &= three.distinct_signatures == 1 && three.passes == three.runs;
  }
  perf.mark_phase("loading_loop");

  {
    TextTable t("B. No-write-allocate dummy-load rule");
    t.header({"variant", "distinct signatures", "self-test verdicts PASS"});
    const auto wa = stability(*routine, [](BuildEnv&) {}, /*busy_noise=*/true);
    const auto nwa_fix = stability(
        *routine, [](BuildEnv& e) { e.write_allocate = false; }, /*busy_noise=*/true);
    const auto nwa_broken = stability(
        *routine,
        [](BuildEnv& e) {
          e.write_allocate = false;
          e.omit_nwa_dummy_loads = true;
        },
        /*busy_noise=*/true);
    print_row(t, "write-allocate", wa);
    print_row(t, "no-write-allocate + dummy loads (paper)", nwa_fix);
    print_row(t, "no-write-allocate, rule omitted", nwa_broken);
    t.print();
    ok &= wa.distinct_signatures == 1 && wa.passes == wa.runs;
    ok &= nwa_fix.distinct_signatures == 1 && nwa_fix.passes == nwa_fix.runs;
    ok &= nwa_broken.distinct_signatures > 1 || nwa_broken.passes < nwa_broken.runs;
  }
  perf.mark_phase("nwa_rule");

  {
    TextTable t("C. Cache-fitting rule (Sec. III step 2.2)");
    t.header({"variant", "outcome", ""});
    // Oversize the routine far beyond the 8 KiB I-cache.
    BuildEnv env;
    env.core_id = 2;
    env.kind = isa::CoreKind::kC;
    env.patterns = 6;
    bool rejected = false;
    std::string msg;
    try {
      // Shrink the modelled I-cache? No: use the real limit — core C with all
      // six patterns overflows 8 KiB.
      core::build_wrapped(*core::make_fwd_test(true), WrapperKind::kCacheBased, env);
    } catch (const isa::AsmError& e) {
      rejected = true;
      msg = e.what();
    }
    t.row({"6-pattern core-C routine", rejected ? "rejected (must be split)" : "fit",
           ""});
    // The split halves: 3 patterns each, both fit and pass.
    BuildEnv half = env;
    half.patterns = 3;
    bool halves_ok = true;
    try {
      const auto bt = core::build_wrapped(*core::make_fwd_test(true),
                                          WrapperKind::kCacheBased, half);
      soc::Soc s;
      s.load_program(bt.prog);
      s.set_boot(2, bt.prog.entry());
      s.reset();
      s.run(10'000'000);
      halves_ok = core::read_verdict(s, soc::mailbox_addr(2)).status == soc::kStatusPass;
    } catch (const std::exception&) {
      halves_ok = false;
    }
    t.row({"3-pattern halves", halves_ok ? "fit and PASS" : "FAILED", ""});
    t.print();
    if (rejected) std::printf("rejection message: %s\n", msg.c_str());
    ok &= rejected && halves_ok;
  }
  perf.mark_phase("cache_fitting");

  std::printf("\nablation checks: %s\n", ok ? "OK" : "MISMATCH");
  return perf.finish(ok ? 0 : 1);
}
