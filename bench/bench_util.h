#pragma once
// Shared helpers for the table-reproduction binaries.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"

namespace detstl::bench {

/// Environment-variable override with default (fault-sampling stride etc.).
inline unsigned env_unsigned(const char* name, unsigned def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

inline void print_header(const char* exhibit, const char* paper_numbers) {
  std::printf("==============================================================\n");
  std::printf("Reproduction of %s\n", exhibit);
  std::printf("Paper reference values: %s\n", paper_numbers);
  std::printf("(absolute values differ — simulated SoC and scaled fault\n");
  std::printf(" lists; the reproduced quantity is the SHAPE, see DESIGN.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace detstl::bench
