#pragma once
// Shared helpers for the table-reproduction binaries.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/table.h"
#include "common/version.h"
#include "exp/experiments.h"
#include "perf/collect.h"
#include "perf/perf_report.h"
#include "perf/profiler.h"
#include "perf/sampler.h"
#include "perf/simstats.h"
#include "trace/chrome_trace.h"

namespace detstl::bench {

/// Strict unsigned parse: digits only, no trailing junk. Exits 2 on garbage
/// so a typo'd DETSTL_THREADS or --threads never silently becomes 0.
inline unsigned parse_unsigned_or_die(const char* what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || *text == '-') {
    std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
                 what, text);
    std::exit(2);
  }
  return static_cast<unsigned>(v);
}

/// Environment-variable override with default (fault-sampling stride etc.).
inline unsigned env_unsigned(const char* name, unsigned def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return parse_unsigned_or_die(name, v);
}

/// Command-line options shared by the table benches.
struct BenchOptions {
  bool progress = false;    // --progress: live campaign progress on stderr
  unsigned threads = 0;     // --threads N / DETSTL_THREADS (0 = all cores)
  std::string trace_path;   // --trace FILE: Chrome-trace JSON of the run
  // stlperf trajectory (src/perf/perf_report.h, tools/stlperf.cpp).
  std::string metrics_out;  // --metrics-out FILE: BENCH_<name>.json
  bool profile = false;     // --profile: subsystem profiler (slower; never
                            // combined with the sim-MHz gate numbers)
  // Crash-safe checkpoint/resume (fault/checkpoint.h); see the exit-code
  // contract in tools/cli_util.h — an interrupted bench exits 3 (resumable).
  std::string checkpoint_dir;      // --checkpoint-dir DIR (empty = off)
  unsigned checkpoint_interval = 256;  // --checkpoint-interval N
  bool resume = false;             // --resume
  bool no_fsync = false;           // --no-fsync
  unsigned interrupt_after = 0;    // --interrupt-after N (drain drill)
  unsigned timeout = 0;            // --timeout SEC wall-clock budget (exit 3)
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions o;
  o.threads = env_unsigned("DETSTL_THREADS", 0);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) {
      o.progress = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      o.threads = parse_unsigned_or_die("--threads", argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      o.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      o.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      o.profile = true;
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      o.checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0 && i + 1 < argc) {
      o.checkpoint_interval =
          parse_unsigned_or_die("--checkpoint-interval", argv[++i]);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      o.resume = true;
    } else if (std::strcmp(argv[i], "--no-fsync") == 0) {
      o.no_fsync = true;
    } else if (std::strcmp(argv[i], "--interrupt-after") == 0 && i + 1 < argc) {
      o.interrupt_after = parse_unsigned_or_die("--interrupt-after", argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      o.timeout = parse_unsigned_or_die("--timeout", argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--progress] [--threads N] [--trace FILE]\n"
                   "          [--metrics-out FILE] [--profile] [--timeout SEC]\n"
                   "          [--checkpoint-dir DIR [--checkpoint-interval N]\n"
                   "           [--resume] [--no-fsync] [--interrupt-after N]]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (o.resume && o.checkpoint_dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir\n");
    std::exit(2);
  }
  // Probe the output paths up front: a bench can run for minutes, and an
  // unwritable destination should fail before the campaign, not after it.
  for (const std::string* path : {&o.trace_path, &o.metrics_out}) {
    if (path->empty()) continue;
    std::FILE* f = std::fopen(path->c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open output file %s for writing\n",
                   path->c_str());
      std::exit(2);
    }
    std::fclose(f);
  }
  return o;
}

/// A Chrome-trace writer when --trace was given, else null (tracing off).
inline std::unique_ptr<trace::ChromeTraceWriter> make_trace_writer(
    const BenchOptions& o) {
  if (o.trace_path.empty()) return nullptr;
  return std::make_unique<trace::ChromeTraceWriter>();
}

/// Flush the collected events to the --trace file (no-op without writer).
inline void finish_trace(const BenchOptions& o,
                         const std::unique_ptr<trace::ChromeTraceWriter>& w) {
  if (w == nullptr) return;
  if (!w->write_file(o.trace_path)) {
    std::fprintf(stderr, "error: cannot write trace file %s\n",
                 o.trace_path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "trace written to %s (%zu events)\n", o.trace_path.c_str(),
               w->size());
}

/// Renders campaign progress as a single in-place line on stderr:
///   [detection] 1732/4632 | excited 1208 | detected 977 | 12.4s eta 21.0s | w: 49/51%
inline void print_progress(const fault::CampaignProgress& p) {
  std::string workers;
  u64 sum = 0;
  for (u64 d : p.worker_done) sum += d;
  if (p.worker_done.size() > 1 && sum > 0) {
    workers = " | w:";
    const std::size_t shown = p.worker_done.size() < 8 ? p.worker_done.size() : 8;
    for (std::size_t w = 0; w < shown; ++w) {
      workers += w == 0 ? " " : "/";
      workers += std::to_string(100 * p.worker_done[w] / sum) + "%";
    }
    if (shown < p.worker_done.size()) workers += "/...";
  }
  std::fprintf(stderr, "\r[%-9s] %llu/%llu | excited %llu | detected %llu | %.1fs",
               fault::phase_name(p.phase),
               static_cast<unsigned long long>(p.done),
               static_cast<unsigned long long>(p.total),
               static_cast<unsigned long long>(p.excited),
               static_cast<unsigned long long>(p.detected), p.elapsed_s);
  if (p.eta_s > 0) std::fprintf(stderr, " eta %.1fs", p.eta_s);
  std::fprintf(stderr, "%s\033[K", workers.c_str());
  if (p.total != 0 && p.done >= p.total) std::fputc('\n', stderr);
  std::fflush(stderr);
}

/// ExecOptions for the table drivers: campaign threads from the options,
/// progress + per-scenario narration when --progress was given, events into
/// `sink` when --trace was given.
inline exp::ExecOptions exec_options(const BenchOptions& o,
                                     trace::EventSink* sink = nullptr) {
  exp::ExecOptions e;
  e.threads = o.threads;
  e.sink = sink;
  if (o.progress) {
    e.progress = print_progress;
    e.log = [](const std::string& line) {
      std::fprintf(stderr, "\r%s\033[K\n", line.c_str());
    };
  }
  if (!o.checkpoint_dir.empty()) {
    e.checkpoint.dir = o.checkpoint_dir;
    e.checkpoint.interval = o.checkpoint_interval;
    e.checkpoint.resume = o.resume;
    e.checkpoint.fsync =
        o.no_fsync ? fault::FsyncPolicy::kNone : fault::FsyncPolicy::kEveryShard;
  }
  if (!o.checkpoint_dir.empty() || o.interrupt_after != 0 || o.timeout != 0) {
    e.interrupt = &fault::global_interrupt();
    e.interrupt->clear();
    if (o.interrupt_after != 0) e.interrupt->arm_after(o.interrupt_after);
    fault::install_drain_handlers();
    if (o.timeout != 0) fault::arm_wallclock_timeout(o.timeout);
  }
  return e;
}

/// Run a table driver under the exit-code contract (tools/cli_util.h): a
/// cooperative drain exits 3 (interrupted but resumable — the journalled
/// prefix is intact), a checkpoint rejected on config/netlist/image mismatch
/// exits 2 (usage/setup error).
template <typename Fn>
auto run_resumable(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const fault::Interrupted& e) {
    std::fprintf(stderr, "\ninterrupted but resumable: %s\n", e.what());
    std::exit(3);
  } catch (const fault::CheckpointMismatch& e) {
    std::fprintf(stderr, "checkpoint rejected: %s\n", e.what());
    std::exit(2);
  }
}

/// Brackets one bench invocation for the stlperf trajectory: sim-work deltas
/// (perf/simstats.h) and wall-clock per phase, host usage, the workload
/// config hash and an optional profiler snapshot, emitted as one
/// BENCH_<name>.json via --metrics-out. Construct before the workload, call
/// mark_phase() after each section, and return finish(exit_code) from main.
/// Without --metrics-out the bookkeeping still runs (it is two snapshots per
/// phase) but nothing is written.
class PerfSession {
 public:
  PerfSession(const BenchOptions& o, const std::string& name)
      : opts_(o), name_(name) {
    hash_.str(name);
    if (opts_.profile) {
      perf::prof_reset();
      perf::set_prof_enabled(true);
    }
    start_ = phase_start_ = perf::sim_totals().snapshot();
    phase_wall_s_ = 0.0;
  }

  /// Mix a workload knob into the config hash. Only outcome-relevant knobs
  /// (strides, scenario counts, staggers) — never threads or observability
  /// settings, mirroring the checkpoint config-hash exclusions.
  void hash_knob(const char* key, u64 value) {
    hash_.str(key);
    hash_.u64v(value);
  }

  /// The work since the previous mark (or the start) was phase `label`.
  void mark_phase(const std::string& label) {
    const perf::SimSnapshot now = perf::sim_totals().snapshot();
    const perf::HostUsage u = timer_.sample();
    const perf::SimSnapshot d = now.since(phase_start_);
    phases_.push_back(
        {label, d.sim_cycles(), d.units(), u.wall_s - phase_wall_s_});
    phase_start_ = now;
    phase_wall_s_ = u.wall_s;
  }

  /// Close the trailing phase, write the report (when --metrics-out) and
  /// pass `exit_code` through — `return perf_session.finish(rc);`.
  int finish(int exit_code) {
    if (opts_.profile) perf::set_prof_enabled(false);
    const perf::SimSnapshot end = perf::sim_totals().snapshot();
    if (end.since(phase_start_).sim_cycles() != 0)
      mark_phase(phases_.empty() ? "all" : "tail");
    if (opts_.metrics_out.empty()) return exit_code;

    const perf::SimSnapshot delta = end.since(start_);
    const perf::HostUsage u = timer_.sample();
    perf::PerfReport rep;
    rep.name = name_;
    rep.detstl_version = kDetstlVersion;
    rep.config_hash = hash_.digest();
    rep.sim_cycles = delta.sim_cycles();
    rep.sim_units = delta.units();
    rep.phases = phases_;
    rep.wall_s = u.wall_s;
    rep.cpu_s = u.cpu_s;
    rep.peak_rss_kb = u.peak_rss_kb;
    perf::collect_sim_totals(rep.metrics, delta);
    perf::collect_host_usage(rep.metrics, u);
    if (opts_.profile) {
      rep.profiled = true;
      rep.profile = perf::prof_snapshot();
    }
    if (!perf::write_report_file(opts_.metrics_out, rep)) {
      std::fprintf(stderr, "error: cannot write metrics file %s\n",
                   opts_.metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "stlperf: wrote %s (%.1f Mcycles in %.2fs, %.2f sim-MHz)\n",
                 opts_.metrics_out.c_str(),
                 static_cast<double>(rep.sim_cycles) / 1e6, rep.wall_s,
                 rep.sim_mhz());
    return exit_code;
  }

 private:
  BenchOptions opts_;
  std::string name_;
  fault::ConfigHasher hash_;
  perf::HostTimer timer_;
  perf::SimSnapshot start_{};
  perf::SimSnapshot phase_start_{};
  double phase_wall_s_ = 0.0;
  std::vector<perf::PhaseStats> phases_;
};

inline void print_header(const char* exhibit, const char* paper_numbers) {
  std::printf("==============================================================\n");
  std::printf("Reproduction of %s\n", exhibit);
  std::printf("Paper reference values: %s\n", paper_numbers);
  std::printf("(absolute values differ — simulated SoC and scaled fault\n");
  std::printf(" lists; the reproduced quantity is the SHAPE, see DESIGN.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace detstl::bench
