// Rate-based SEU soak campaign at bench scale (docs/runtime.md "SEU soak"):
// seeded Poisson-style upsets against RAM, the L1 arrays and the pipeline
// latches of a full 3-core mission schedule, with differential bisection
// isolating the responsible upset on every diverged run. The knobs that
// matter for the trajectory:
//
//   DETSTL_SOAK_RUNS    independent soak runs (default 24)
//   DETSTL_SOAK_SEED    campaign master seed (default 0x5EA5BEAC)
//   --threads N         executor worker threads (byte-identical result)
//   --checkpoint-dir D [--resume] [--interrupt-after N] [--timeout SEC]
//                       crash-safe journaling drills, exit-code contract of
//                       tools/cli_util.h (3 = interrupted but resumable)
//
// The campaign result is a deterministic function of (spec, seed) at every
// thread count, so the sim subtree of the emitted BENCH_soak.json is a valid
// stlperf regression subject.

#include "bench_util.h"
#include "runtime/soak.h"

namespace {

using namespace detstl;

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::PerfSession session(opts, "soak");

  runtime::SoakCampaignSpec spec;
  spec.runs = bench::env_unsigned("DETSTL_SOAK_RUNS", 24);
  spec.seed = bench::env_unsigned("DETSTL_SOAK_SEED", 0x5EA5BEAC);
  spec.threads = opts.threads;
  if (!opts.checkpoint_dir.empty()) {
    spec.checkpoint.dir = opts.checkpoint_dir;
    spec.checkpoint.interval = opts.checkpoint_interval;
    spec.checkpoint.resume = opts.resume;
    spec.checkpoint.fsync = opts.no_fsync ? fault::FsyncPolicy::kNone
                                          : fault::FsyncPolicy::kEveryShard;
  }
  if (!opts.checkpoint_dir.empty() || opts.interrupt_after != 0 ||
      opts.timeout != 0) {
    spec.interrupt = &fault::global_interrupt();
    spec.interrupt->clear();
    if (opts.interrupt_after != 0)
      spec.interrupt->arm_after(opts.interrupt_after);
    fault::install_drain_handlers();
    if (opts.timeout != 0) fault::arm_wallclock_timeout(opts.timeout);
  }

  session.hash_knob("runs", spec.runs);
  session.hash_knob("seed", spec.seed);
  session.hash_knob("rate_ram", spec.soak.rates.ram);
  session.hash_knob("rate_l1i", spec.soak.rates.l1i);
  session.hash_knob("rate_l1d", spec.soak.rates.l1d);
  session.hash_knob("rate_pipeline", spec.soak.rates.pipeline);

  const runtime::SoakCampaignResult res =
      bench::run_resumable([&] { return runtime::run_soak_campaign(spec); });
  session.mark_phase("soak-campaign");
  if (res.ckpt.interrupted) {
    std::fprintf(stderr, "interrupted but resumable: %llu/%u run(s) journalled\n",
                 static_cast<unsigned long long>(res.ckpt.records_resumed),
                 spec.runs);
    return session.finish(3);
  }

  std::fputs(runtime::render_soak_report(res).c_str(), stdout);
  std::printf("wall: %.2fs across %u thread(s)\n", res.wall_seconds,
              res.threads_used);
  return session.finish(0);
}
