// Table III reproduction: ICU and HDCU fault coverage.
//   * column "FC Single-Core no caches": the routines executed alone, legacy
//     structure — stable but unable to excite everything (flash latency);
//   * column "FC Multi-Core with caches": the proposed strategy with all
//     three cores active — stable and higher;
//   * multi-core WITHOUT caches: the fault-free signature mismatches the
//     single-core golden ("the test procedures inevitably failed in any
//     configuration") — shown as the failure count across staggers.
//
// Exhaustive by default. Knobs: DETSTL_FAULT_STRIDE (default 1),
// DETSTL_THREADS / --threads N (0 = hardware concurrency), --progress.

#include <chrono>

#include "bench_util.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace detstl;
  const auto opts = bench::parse_options(argc, argv);
  const auto tracer = bench::make_trace_writer(opts);
  bench::print_header(
      "Table III (ICU and HDCU fault simulation)",
      "A: ICU 46.57->51.36%, HDCU 62.53->70.37%; B: ICU 46.39->50.97%, "
      "HDCU 63.84->70.12%; C: ICU 54.94->60.91%, HDCU 65.66->68.09%");

  const unsigned stride = bench::env_unsigned("DETSTL_FAULT_STRIDE", 1);
  bench::PerfSession perf(opts, "table3");
  perf.hash_knob("fault_stride", stride);
  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = bench::run_resumable([&] {
    return exp::run_table3(stride, bench::exec_options(opts, tracer.get()));
  });
  perf.mark_phase("campaigns");
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  TextTable t("ICU and HDCU fault simulation results (stride " +
              std::to_string(stride) + ")");
  t.header({"Core", "Module", "# of Faults", "FC Single-Core no caches [%]",
            "FC Multi-Core with caches [%]", "plain multi-core verdict"});
  for (const auto& r : rows) {
    t.row({std::string(1, r.core), r.module,
           TextTable::fmt_int(static_cast<long long>(r.faults)),
           TextTable::fmt_fixed(r.fc_single_nocache, 2),
           TextTable::fmt_fixed(r.fc_multi_cached, 2),
           "FAILED " + std::to_string(r.plain_multicore_failures) + "/" +
               std::to_string(r.stability_runs)});
  }
  t.print();
  std::printf("\nwall-clock: %.1f s (threads=%u%s)\n", wall, opts.threads,
              opts.threads == 0 ? " = all hardware threads" : "");

  bool shape_ok = true;
  double icu_ab_cached = 0, icu_c_cached = 0;
  for (const auto& r : rows) {
    shape_ok &= r.fc_multi_cached >= r.fc_single_nocache;  // cached >= single
    shape_ok &= r.plain_multicore_failures == r.stability_runs;  // inevitably fails
    if (r.module == "ICU") {
      if (r.core == 'C') icu_c_cached = r.fc_multi_cached;
      else icu_ab_cached = std::max(icu_ab_cached, r.fc_multi_cached);
    }
  }
  // Core C's distinct cause bits -> ICU coverage at least as high as A/B
  // (shared cause bits mask fault effects). Our scaled ICU netlists saturate
  // in the high 90s, so the masking gap is small — allow one fault of
  // tolerance (see EXPERIMENTS.md).
  shape_ok &= icu_c_cached >= icu_ab_cached - 1.5;
  std::printf("\nshape check (cached >= single, plain multi-core always fails, "
              "core C ICU >= A/B): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  bench::finish_trace(opts, tracer);
  return perf.finish(shape_ok ? 0 : 1);
}
