// Table IV reproduction: TCM-based vs cache-based execution of the
// imprecise-interrupt routine. The reproduced claims: the TCM strategy
// permanently reserves scratchpad memory for the test, the cache strategy
// reserves none; both are deterministic. Execution time is reported for the
// deterministic single-core setting (paper's fixed cycle counts) and for the
// contended triple-core setting.
//
// Documented deviation (EXPERIMENTS.md): on this SoC model the cache-based
// strategy is also *faster* — the paper's flash pays its full latency on
// every instruction fetch of the loading loop, while our flash controller's
// instruction-side line buffer and burst refills amortise it; the paper
// itself calls its ~1,500-cycle penalty negligible.

#include "bench_util.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace detstl;
  const auto opts = bench::parse_options(argc, argv);
  const auto tracer = bench::make_trace_writer(opts);
  bench::print_header(
      "Table IV (TCM-based vs cache-based, imprecise-interrupt routine)",
      "TCM-based: 2,874 B overhead, 16,463 cycles; cache-based: 0 B, 18,043 "
      "cycles (8.25us @180MHz difference)");

  bench::PerfSession perf(opts, "table4");
  const auto rows = bench::run_resumable([&] {
    return exp::run_table4(bench::exec_options(opts, tracer.get()));
  });
  perf.mark_phase("strategy_runs");

  TextTable t("TCM-based versus cache-based approaches");
  t.header({"Approach", "Overall Memory Overhead [bytes]",
            "Execution Time single-core [cycles]", "[us @180MHz]",
            "Execution Time 3 cores [cycles]"});
  for (const auto& r : rows) {
    t.row({r.approach, TextTable::fmt_int(r.memory_overhead_bytes),
           TextTable::fmt_int(static_cast<long long>(r.execution_cycles)),
           TextTable::fmt_fixed(r.usec_at_180mhz, 2),
           TextTable::fmt_int(static_cast<long long>(r.contended_cycles))});
  }
  t.print();

  const bool shape_ok = rows.size() == 2 && rows[0].memory_overhead_bytes > 0 &&
                        rows[1].memory_overhead_bytes == 0;
  std::printf("\nshape check (TCM reserves memory, cache-based reserves none): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  bench::finish_trace(opts, tracer);
  return perf.finish(shape_ok ? 0 : 1);
}
