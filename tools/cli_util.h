#pragma once
// Strict CLI numeric parsing shared by the detstl tools (stlint, detscope,
// stlrun). Malformed or out-of-range values are usage errors — reported on
// stderr with exit code 2 — never silently clamped or ignored.
//
// Exit-code contract (all tools and table benches):
//   0  completed successfully
//   1  ran to completion but failed (determinism violation, lint finding,
//      shape mismatch, ...)
//   2  usage error (unknown option, malformed value, config-hash mismatch
//      against an existing checkpoint)
//   3  interrupted but RESUMABLE: a cooperative drain (SIGINT/SIGTERM or a
//      --interrupt-after drill) stopped the run after flushing a final
//      checkpoint shard; re-run with --resume to continue.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/version.h"
#include "fault/checkpoint.h"

namespace detstl::cli {

inline constexpr int kExitSuccess = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInterrupted = 3;  // resumable; see contract above

/// `<tool> --version`: suite version plus the on-disk checkpoint schema the
/// binary reads and writes (fault/checkpoint.h).
inline void print_version(const char* tool) {
  std::printf("%s (detstl %s, checkpoint schema %u)\n", tool,
              detstl::kDetstlVersion, fault::kCheckpointSchemaVersion);
}

/// Parse a decimal (or 0x-prefixed hex) unsigned integer in [lo, hi].
/// Returns false on garbage, trailing characters, sign or range violation.
inline bool parse_u64(const std::string& text, unsigned long long lo,
                      unsigned long long hi, unsigned long long& out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  if (v < lo || v > hi) return false;
  out = v;
  return true;
}

/// Parse or exit(2) with a diagnostic naming the tool and the option.
inline unsigned long long require_u64(const char* tool, const char* opt,
                                      const std::string& text,
                                      unsigned long long lo,
                                      unsigned long long hi) {
  unsigned long long v = 0;
  if (!parse_u64(text, lo, hi, v)) {
    std::fprintf(stderr, "%s: %s expects an integer in [%llu, %llu], got '%s'\n",
                 tool, opt, lo, hi, text.c_str());
    std::exit(2);
  }
  return v;
}

inline unsigned require_unsigned(const char* tool, const char* opt,
                                 const std::string& text, unsigned lo,
                                 unsigned hi) {
  return static_cast<unsigned>(require_u64(tool, opt, text, lo, hi));
}

/// Comma-separated list of integers, each in [lo, hi]; empty list or any
/// malformed entry is a usage error.
inline std::vector<unsigned> require_unsigned_list(const char* tool,
                                                   const char* opt,
                                                   const std::string& text,
                                                   unsigned lo, unsigned hi) {
  std::vector<unsigned> out;
  std::size_t p = 0;
  while (p <= text.size()) {
    const std::size_t comma = text.find(',', p);
    const std::string item =
        text.substr(p, comma == std::string::npos ? std::string::npos : comma - p);
    out.push_back(require_unsigned(tool, opt, item, lo, hi));
    if (comma == std::string::npos) break;
    p = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: %s expects a comma-separated integer list\n", tool,
                 opt);
    std::exit(2);
  }
  return out;
}

}  // namespace detstl::cli
