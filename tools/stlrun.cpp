// stlrun — fault-tolerant on-line STL supervisor driver.
//
// Runs seeded disturbance campaigns against the cache-wrapped self-test
// routines and prints the per-core recovery report. The report and the
// campaign outcome vector are deterministic for a fixed seed at any thread
// count; --verify-threads re-runs the campaign at several thread counts and
// fails (exit 1) unless the outcome vectors are byte-identical.
//
// With --checkpoint-dir the campaign journals completed runs into checksummed
// shards; SIGINT/SIGTERM drain cooperatively (finish in-flight runs, flush a
// final shard) and exit 3 = interrupted-but-resumable. --resume continues
// from the verified shards; the completed result is byte-identical to an
// uninterrupted run.
//
// Exit codes (tools/cli_util.h): 0 success, 1 determinism mismatch,
// 2 usage / setup error, 3 interrupted but resumable.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/table.h"
#include "core/stl.h"
#include "perf/collect.h"
#include "perf/perf_report.h"
#include "perf/sampler.h"
#include "perf/simstats.h"
#include "runtime/campaign.h"
#include "runtime/mission.h"
#include "runtime/soak.h"

namespace {

using namespace detstl;
using namespace detstl::runtime;

constexpr const char* kTool = "stlrun";

void usage(std::FILE* to) {
  std::fprintf(to,
      "usage: stlrun <command> [options]\n"
      "\n"
      "commands:\n"
      "  campaign     run a seeded disturbance campaign, print the recovery report\n"
      "  soak         run a rate-based SEU soak campaign with differential isolation\n"
      "  mission      interleave STL slices with mission workloads, check the\n"
      "               signatures and the stlint interference bound\n"
      "  list-kinds   list disturbance kinds and registered routines\n"
      "\n"
      "campaign options:\n"
      "  --seed N               master seed; REQUIRED and non-zero (exit 2 otherwise)\n"
      "  --runs N               supervised runs, 1..100000 (default 16)\n"
      "  --threads N            worker threads, 0 = hardware threads (default 0)\n"
      "  --verify-threads LIST  run at each thread count in LIST (e.g. 1,2,8);\n"
      "                         exit 1 unless outcome vectors are byte-identical\n"
      "  --cores N              active cores, 1..3 (default 3)\n"
      "  --routine NAME         registry routine, repeatable (default built-in mix)\n"
      "  --events N             disturbances per run, 0..1000 (default 6)\n"
      "  --permanent PCT        chance of a permanent flash fault per run, 0..100\n"
      "  --stall N              bus-stall burst cycles, 1..100000 (default 150)\n"
      "  --margin PCT           watchdog interference margin, 0..10000 (default 250)\n"
      "  --attempts N           cached-rung attempts, 1..16 (default 3)\n"
      "  --fallback-attempts N  fallback-rung attempts, 0..16 (default 2)\n"
      "  --digest-only          print only the outcome digest line\n"
      "  --metrics-out FILE     write an stlperf JSON report of the campaign\n"
      "                         (src/perf/perf_report.h; host timings on stderr\n"
      "                         so stdout stays byte-stable across thread counts)\n"
      "\n"
      "soak options (plus --seed/--runs/--threads/--verify-threads/--cores/\n"
      "--routine/--margin/--digest-only and the checkpoint/resume group):\n"
      "  --duration N           upset-arrival horizon in cycles, 0 = derived from\n"
      "                         the schedule calibration (default 0)\n"
      "  --rate-ram N           RAM upsets per million cycles (default 60)\n"
      "  --rate-l1i N           L1 I-cache upsets per million cycles (default 30)\n"
      "  --rate-l1d N           L1 D-cache upsets per million cycles (default 30)\n"
      "  --rate-pipe N          pipeline-latch upsets per million cycles (default 15)\n"
      "  --no-isolate           skip the differential bisection on diverged runs\n"
      "\n"
      "mission options:\n"
      "  --seed N               master seed; REQUIRED and non-zero (exit 2 otherwise)\n"
      "  --slices N             STL slices, 1..10000 (default 12)\n"
      "  --gap N                mission-only cycles between slices (default 2000)\n"
      "  --cores N              active cores, 1..3 (default 3)\n"
      "  --routine NAME         registry routine, repeatable (default built-in mix)\n"
      "  --margin PCT           per-slice watchdog margin (default 250)\n"
      "  exit 1 when any slice diverges from the golden signature or any\n"
      "  measured per-access bus wait exceeds the predicted d_max\n"
      "\n"
      "checkpoint/resume (exit 3 = interrupted but resumable):\n"
      "  --checkpoint-dir DIR     journal completed runs into DIR; SIGINT/SIGTERM\n"
      "                           drain cooperatively and flush a final shard\n"
      "  --checkpoint-interval N  completed runs per shard, 1..1000000 (default 256)\n"
      "  --resume                 load DIR's verified shards, run the remainder\n"
      "  --no-fsync               skip fsync on shard writes (faster, less durable)\n"
      "  --interrupt-after N      drill: request the drain after N completed runs\n"
      "  --timeout SEC            wall-clock budget: drain cooperatively after SEC\n"
      "                           seconds, same contract as SIGTERM (exit 3)\n"
      "\n"
      "  --version                print suite + checkpoint schema version\n");
}

int cmd_list_kinds() {
  std::printf("disturbance kinds:\n");
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k)
    std::printf("  %s%s\n", disturbance_name(static_cast<DisturbanceKind>(k)),
                static_cast<DisturbanceKind>(k) == DisturbanceKind::kFlashCorrupt
                    ? " (permanent; drawn via --permanent)"
                    : "");
  std::printf("routines:\n");
  for (const core::RoutineEntry& e : core::routine_registry())
    std::printf("  %s\n", e.name);
  return 0;
}

/// Seeded campaigns refuse to run without an explicit non-zero master seed:
/// a zero/defaulted seed silently degrades every derived per-run seed into
/// the same splitmix stream, and "which seed produced this divergence?" is
/// the one question an in-field soak log must always answer.
bool require_seed(const char* cmd, bool seed_set, u64 seed) {
  if (seed_set && seed != 0) return true;
  std::fprintf(stderr, "%s: %s requires an explicit non-zero --seed\n", kTool, cmd);
  return false;
}

int cmd_campaign(int argc, char** argv) {
  CampaignSpec spec;
  std::vector<unsigned> verify_threads;
  bool digest_only = false;
  bool seed_set = false;
  u64 interrupt_after = 0;
  unsigned timeout_s = 0;
  std::string metrics_out;

  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", kTool, a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      spec.seed = cli::require_u64(kTool, "--seed", need(), 0, ~0ull);
      seed_set = true;
    } else if (a == "--runs") {
      spec.runs = cli::require_unsigned(kTool, "--runs", need(), 1, 100'000);
    } else if (a == "--threads") {
      spec.threads = cli::require_unsigned(kTool, "--threads", need(), 0, 256);
    } else if (a == "--verify-threads") {
      verify_threads =
          cli::require_unsigned_list(kTool, "--verify-threads", need(), 1, 256);
    } else if (a == "--cores") {
      spec.cores = cli::require_unsigned(kTool, "--cores", need(), 1, 3);
    } else if (a == "--routine") {
      spec.routines.push_back(need());
    } else if (a == "--events") {
      spec.disturb.count = cli::require_unsigned(kTool, "--events", need(), 0, 1'000);
    } else if (a == "--permanent") {
      spec.disturb.permanent_chance =
          cli::require_unsigned(kTool, "--permanent", need(), 0, 100) / 100.0;
    } else if (a == "--stall") {
      spec.disturb.stall_cycles =
          cli::require_unsigned(kTool, "--stall", need(), 1, 100'000);
    } else if (a == "--margin") {
      spec.supervisor.margin_percent =
          cli::require_unsigned(kTool, "--margin", need(), 0, 10'000);
    } else if (a == "--attempts") {
      spec.supervisor.max_attempts =
          cli::require_unsigned(kTool, "--attempts", need(), 1, 16);
    } else if (a == "--fallback-attempts") {
      spec.supervisor.fallback_attempts =
          cli::require_unsigned(kTool, "--fallback-attempts", need(), 0, 16);
    } else if (a == "--digest-only") {
      digest_only = true;
    } else if (a == "--metrics-out") {
      metrics_out = need();
    } else if (a == "--checkpoint-dir") {
      spec.checkpoint.dir = need();
    } else if (a == "--checkpoint-interval") {
      spec.checkpoint.interval = static_cast<u32>(
          cli::require_u64(kTool, "--checkpoint-interval", need(), 1, 1'000'000));
    } else if (a == "--resume") {
      spec.checkpoint.resume = true;
    } else if (a == "--no-fsync") {
      spec.checkpoint.fsync = fault::FsyncPolicy::kNone;
    } else if (a == "--interrupt-after") {
      interrupt_after =
          cli::require_u64(kTool, "--interrupt-after", need(), 1, ~0ull);
    } else if (a == "--timeout") {
      timeout_s = cli::require_unsigned(kTool, "--timeout", need(), 1, 86'400);
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", kTool, a.c_str());
      usage(stderr);
      return cli::kExitUsage;
    }
  }

  if (!require_seed("campaign", seed_set, spec.seed)) return cli::kExitUsage;
  if (spec.checkpoint.resume && !spec.checkpoint.enabled()) {
    std::fprintf(stderr, "%s: --resume requires --checkpoint-dir\n", kTool);
    return cli::kExitUsage;
  }
  if (spec.checkpoint.enabled() && !verify_threads.empty()) {
    // The verify loop runs the same campaign several times; sharing one
    // journal across them would make every pass after the first a no-op.
    std::fprintf(stderr,
                 "%s: --checkpoint-dir cannot be combined with "
                 "--verify-threads\n", kTool);
    return cli::kExitUsage;
  }

  if (spec.checkpoint.enabled() || interrupt_after != 0 || timeout_s != 0) {
    spec.interrupt = &fault::global_interrupt();
    spec.interrupt->clear();
    if (interrupt_after != 0) spec.interrupt->arm_after(interrupt_after);
    fault::install_drain_handlers();
    if (timeout_s != 0) fault::arm_wallclock_timeout(timeout_s);
  }

  if (!verify_threads.empty() && !metrics_out.empty()) {
    // The verify loop runs the campaign several times; one report could not
    // say which pass it measured.
    std::fprintf(stderr,
                 "%s: --metrics-out cannot be combined with --verify-threads\n",
                 kTool);
    return cli::kExitUsage;
  }

  if (verify_threads.empty()) {
    const perf::SimSnapshot sim_before = perf::sim_totals().snapshot();
    perf::HostTimer host_timer;
    const CampaignResult res = run_disturbance_campaign(spec);
    if (res.ckpt.enabled)
      std::fprintf(stderr,
                   "%s: checkpoint: %u shard(s) loaded, %llu run(s) resumed, "
                   "%u corrupt shard(s) quarantined, %u shard(s) flushed\n",
                   kTool, res.ckpt.shards_loaded,
                   static_cast<unsigned long long>(res.ckpt.records_resumed),
                   res.ckpt.shards_corrupt, res.ckpt.shards_flushed);
    if (res.ckpt.interrupted) {
      std::size_t completed = 0;  // resumed + finished this session
      for (const RunRecord& r : res.records) completed += r.seed != 0 ? 1 : 0;
      if (spec.checkpoint.enabled())
        std::fprintf(stderr,
                     "%s: interrupted after %zu/%u run(s); resume with "
                     "--checkpoint-dir %s --resume\n",
                     kTool, completed, res.runs, spec.checkpoint.dir.c_str());
      else
        std::fprintf(stderr,
                     "%s: interrupted after %zu/%u run(s); add "
                     "--checkpoint-dir to make such runs resumable\n",
                     kTool, completed, res.runs);
      return cli::kExitInterrupted;
    }
    if (digest_only)
      std::printf("outcome digest: %s\n", TextTable::fmt_hex(res.digest()).c_str());
    else
      std::fputs(render_recovery_report(res).c_str(), stdout);
    // Host timings go to stderr only: the stdout report is diffed across
    // thread counts and straight-vs-resumed runs by the CI drills.
    const perf::SimSnapshot sim_delta =
        perf::sim_totals().snapshot().since(sim_before);
    const perf::HostUsage host = host_timer.sample();
    const double sim_mhz = host.wall_s > 0.0
                               ? static_cast<double>(sim_delta.sim_cycles()) /
                                     host.wall_s / 1e6
                               : 0.0;
    std::fprintf(stderr,
                 "%s: %u runs on %u thread(s) in %.2fs | %.1f Mcycles simulated, "
                 "%.2f sim-MHz, peak RSS %ld KiB\n",
                 kTool, res.runs, res.threads_used, res.wall_seconds,
                 static_cast<double>(sim_delta.sim_cycles()) / 1e6, sim_mhz,
                 perf::peak_rss_kb());
    if (!metrics_out.empty()) {
      perf::PerfReport rep;
      rep.name = "stlrun-campaign";
      rep.detstl_version = kDetstlVersion;
      fault::ConfigHasher hash;
      hash.str("stlrun-campaign").u64v(spec.seed).u32v(spec.runs).u32v(spec.cores);
      for (const auto& r : spec.routines) hash.str(r);
      hash.u32v(spec.disturb.count);
      hash.f64v(spec.disturb.permanent_chance);
      hash.u32v(spec.disturb.stall_cycles);
      hash.u32v(spec.supervisor.margin_percent);
      hash.u32v(spec.supervisor.max_attempts);
      hash.u32v(spec.supervisor.fallback_attempts);
      rep.config_hash = hash.digest();
      rep.sim_cycles = sim_delta.sim_cycles();
      rep.sim_units = sim_delta.units();
      rep.phases.push_back(
          {"campaign", sim_delta.sim_cycles(), sim_delta.units(), host.wall_s});
      rep.wall_s = host.wall_s;
      rep.cpu_s = host.cpu_s;
      rep.peak_rss_kb = host.peak_rss_kb;
      perf::collect_disturbance_result(rep.metrics, res, "");
      perf::collect_sim_totals(rep.metrics, sim_delta);
      perf::collect_host_usage(rep.metrics, host);
      if (!perf::write_report_file(metrics_out, rep)) {
        std::fprintf(stderr, "%s: cannot write %s\n", kTool, metrics_out.c_str());
        return cli::kExitFailure;
      }
      std::fprintf(stderr, "%s: stlperf report written to %s\n", kTool,
                   metrics_out.c_str());
    }
    return cli::kExitSuccess;
  }

  // Determinism self-check: same spec at each requested thread count must
  // produce byte-identical outcome vectors (and therefore reports).
  std::vector<u8> reference;
  std::string reference_report;
  for (std::size_t t = 0; t < verify_threads.size(); ++t) {
    CampaignSpec s = spec;
    s.threads = verify_threads[t];
    const CampaignResult res = run_disturbance_campaign(s);
    std::fprintf(stderr, "%s: threads=%u digest=%s (%.2fs)\n", kTool,
                 res.threads_used, TextTable::fmt_hex(res.digest()).c_str(),
                 res.wall_seconds);
    if (t == 0) {
      reference = res.outcome_vector();
      reference_report = render_recovery_report(res);
      continue;
    }
    if (res.outcome_vector() != reference ||
        render_recovery_report(res) != reference_report) {
      std::fprintf(stderr,
                   "%s: DETERMINISM VIOLATION: threads=%u diverges from "
                   "threads=%u\n",
                   kTool, verify_threads[t], verify_threads[0]);
      return 1;
    }
  }
  if (digest_only) {
    // Digest of the verified reference vector.
    u64 h = 0xcbf29ce484222325ull;
    for (const u8 b : reference) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
    std::printf("outcome digest: %s\n", TextTable::fmt_hex(h).c_str());
  } else {
    std::fputs(reference_report.c_str(), stdout);
  }
  std::string counts;
  for (std::size_t t = 0; t < verify_threads.size(); ++t)
    counts += (t == 0 ? "" : ",") + std::to_string(verify_threads[t]);
  std::printf("determinism: outcome vector byte-identical across threads {%s}\n",
              counts.c_str());
  return 0;
}

int cmd_soak(int argc, char** argv) {
  SoakCampaignSpec spec;
  std::vector<unsigned> verify_threads;
  bool digest_only = false;
  bool seed_set = false;
  u64 interrupt_after = 0;
  unsigned timeout_s = 0;

  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", kTool, a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      spec.seed = cli::require_u64(kTool, "--seed", need(), 0, ~0ull);
      seed_set = true;
    } else if (a == "--runs") {
      spec.runs = cli::require_unsigned(kTool, "--runs", need(), 1, 100'000);
    } else if (a == "--threads") {
      spec.threads = cli::require_unsigned(kTool, "--threads", need(), 0, 256);
    } else if (a == "--verify-threads") {
      verify_threads =
          cli::require_unsigned_list(kTool, "--verify-threads", need(), 1, 256);
    } else if (a == "--cores") {
      spec.cores = cli::require_unsigned(kTool, "--cores", need(), 1, 3);
    } else if (a == "--routine") {
      spec.routines.push_back(need());
    } else if (a == "--duration") {
      spec.soak.duration = cli::require_u64(kTool, "--duration", need(), 0, 1'000'000'000);
    } else if (a == "--rate-ram") {
      spec.soak.rates.ram = cli::require_unsigned(kTool, "--rate-ram", need(), 0, 1'000'000);
    } else if (a == "--rate-l1i") {
      spec.soak.rates.l1i = cli::require_unsigned(kTool, "--rate-l1i", need(), 0, 1'000'000);
    } else if (a == "--rate-l1d") {
      spec.soak.rates.l1d = cli::require_unsigned(kTool, "--rate-l1d", need(), 0, 1'000'000);
    } else if (a == "--rate-pipe") {
      spec.soak.rates.pipeline =
          cli::require_unsigned(kTool, "--rate-pipe", need(), 0, 1'000'000);
    } else if (a == "--no-isolate") {
      spec.isolate = false;
    } else if (a == "--margin") {
      spec.supervisor.margin_percent =
          cli::require_unsigned(kTool, "--margin", need(), 0, 10'000);
    } else if (a == "--digest-only") {
      digest_only = true;
    } else if (a == "--checkpoint-dir") {
      spec.checkpoint.dir = need();
    } else if (a == "--checkpoint-interval") {
      spec.checkpoint.interval = static_cast<u32>(
          cli::require_u64(kTool, "--checkpoint-interval", need(), 1, 1'000'000));
    } else if (a == "--resume") {
      spec.checkpoint.resume = true;
    } else if (a == "--no-fsync") {
      spec.checkpoint.fsync = fault::FsyncPolicy::kNone;
    } else if (a == "--interrupt-after") {
      interrupt_after = cli::require_u64(kTool, "--interrupt-after", need(), 1, ~0ull);
    } else if (a == "--timeout") {
      timeout_s = cli::require_unsigned(kTool, "--timeout", need(), 1, 86'400);
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", kTool, a.c_str());
      usage(stderr);
      return cli::kExitUsage;
    }
  }

  if (!require_seed("soak", seed_set, spec.seed)) return cli::kExitUsage;
  if (spec.checkpoint.resume && !spec.checkpoint.enabled()) {
    std::fprintf(stderr, "%s: --resume requires --checkpoint-dir\n", kTool);
    return cli::kExitUsage;
  }
  if (spec.checkpoint.enabled() && !verify_threads.empty()) {
    std::fprintf(stderr,
                 "%s: --checkpoint-dir cannot be combined with --verify-threads\n",
                 kTool);
    return cli::kExitUsage;
  }

  if (spec.checkpoint.enabled() || interrupt_after != 0 || timeout_s != 0) {
    spec.interrupt = &fault::global_interrupt();
    spec.interrupt->clear();
    if (interrupt_after != 0) spec.interrupt->arm_after(interrupt_after);
    fault::install_drain_handlers();
    if (timeout_s != 0) fault::arm_wallclock_timeout(timeout_s);
  }

  if (verify_threads.empty()) {
    const SoakCampaignResult res = run_soak_campaign(spec);
    if (res.ckpt.enabled)
      std::fprintf(stderr,
                   "%s: checkpoint: %u shard(s) loaded, %llu run(s) resumed, "
                   "%u corrupt shard(s) quarantined, %u shard(s) flushed\n",
                   kTool, res.ckpt.shards_loaded,
                   static_cast<unsigned long long>(res.ckpt.records_resumed),
                   res.ckpt.shards_corrupt, res.ckpt.shards_flushed);
    if (res.ckpt.interrupted) {
      std::size_t completed = 0;
      for (const SoakRunRecord& r : res.records) completed += r.seed != 0 ? 1 : 0;
      if (spec.checkpoint.enabled())
        std::fprintf(stderr,
                     "%s: interrupted after %zu/%u run(s); resume with "
                     "--checkpoint-dir %s --resume\n",
                     kTool, completed, res.runs, spec.checkpoint.dir.c_str());
      else
        std::fprintf(stderr,
                     "%s: interrupted after %zu/%u run(s); add "
                     "--checkpoint-dir to make such runs resumable\n",
                     kTool, completed, res.runs);
      return cli::kExitInterrupted;
    }
    if (digest_only)
      std::printf("outcome digest: %s\n", TextTable::fmt_hex(res.digest()).c_str());
    else
      std::fputs(render_soak_report(res).c_str(), stdout);
    std::fprintf(stderr, "%s: %u soak run(s) on %u thread(s) in %.2fs\n", kTool,
                 res.runs, res.threads_used, res.wall_seconds);
    return cli::kExitSuccess;
  }

  std::vector<u8> reference;
  std::string reference_report;
  for (std::size_t t = 0; t < verify_threads.size(); ++t) {
    SoakCampaignSpec s = spec;
    s.threads = verify_threads[t];
    const SoakCampaignResult res = run_soak_campaign(s);
    std::fprintf(stderr, "%s: threads=%u digest=%s (%.2fs)\n", kTool,
                 res.threads_used, TextTable::fmt_hex(res.digest()).c_str(),
                 res.wall_seconds);
    if (t == 0) {
      reference = res.outcome_vector();
      reference_report = render_soak_report(res);
      continue;
    }
    if (res.outcome_vector() != reference ||
        render_soak_report(res) != reference_report) {
      std::fprintf(stderr,
                   "%s: DETERMINISM VIOLATION: threads=%u diverges from threads=%u\n",
                   kTool, verify_threads[t], verify_threads[0]);
      return 1;
    }
  }
  if (digest_only) {
    u64 h = 0xcbf29ce484222325ull;
    for (const u8 b : reference) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
    std::printf("outcome digest: %s\n", TextTable::fmt_hex(h).c_str());
  } else {
    std::fputs(reference_report.c_str(), stdout);
  }
  std::string counts;
  for (std::size_t t = 0; t < verify_threads.size(); ++t)
    counts += (t == 0 ? "" : ",") + std::to_string(verify_threads[t]);
  std::printf("determinism: outcome vector byte-identical across threads {%s}\n",
              counts.c_str());
  return 0;
}

int cmd_mission(int argc, char** argv) {
  MissionSpec spec;
  bool seed_set = false;

  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", kTool, a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      spec.seed = cli::require_u64(kTool, "--seed", need(), 0, ~0ull);
      seed_set = true;
    } else if (a == "--slices") {
      spec.slices = cli::require_unsigned(kTool, "--slices", need(), 1, 10'000);
    } else if (a == "--gap") {
      spec.gap_cycles = cli::require_u64(kTool, "--gap", need(), 0, 10'000'000);
    } else if (a == "--cores") {
      spec.cores = cli::require_unsigned(kTool, "--cores", need(), 1, 3);
    } else if (a == "--routine") {
      spec.routines.push_back(need());
    } else if (a == "--margin") {
      spec.supervisor.margin_percent =
          cli::require_unsigned(kTool, "--margin", need(), 0, 10'000);
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", kTool, a.c_str());
      usage(stderr);
      return cli::kExitUsage;
    }
  }

  if (!require_seed("mission", seed_set, spec.seed)) return cli::kExitUsage;
  const MissionResult res = run_mission(spec);
  std::fputs(render_mission_report(res).c_str(), stdout);
  // Mission mode is a pass/fail check of the paper's two in-field claims:
  // any divergence or bound violation fails the invocation.
  return res.divergences() == 0 && res.bound_violations() == 0 ? cli::kExitSuccess
                                                               : cli::kExitFailure;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "soak") return cmd_soak(argc - 2, argv + 2);
    if (cmd == "mission") return cmd_mission(argc - 2, argv + 2);
    if (cmd == "list-kinds") return cmd_list_kinds();
    if (cmd == "--version") {
      cli::print_version(kTool);
      return 0;
    }
    if (cmd == "--help" || cmd == "-h") {
      usage(stdout);
      return 0;
    }
  } catch (const fault::CheckpointMismatch& e) {
    std::fprintf(stderr, "%s: checkpoint rejected: %s\n", kTool, e.what());
    return cli::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", kTool, e.what());
    return cli::kExitUsage;
  }
  std::fprintf(stderr, "%s: unknown command '%s'\n", kTool, cmd.c_str());
  usage(stderr);
  return 2;
}
