// stlserve — supervised multi-process campaign orchestrator (src/serve/,
// docs/runtime.md "stlserve"). Accepts a JSON campaign spec, partitions the
// runs into one shard per worker process, spawns re-entrant `stlserve
// --worker` invocations each journaling into its own checkpoint subdir,
// supervises them (heartbeats, wall-clock watchdogs, PID liveness), heals
// failures (respawn with backoff, subdir quarantine, in-process fallback)
// and merges the journals into a report byte-identical to `stlrun campaign`
// with the same parameters.
//
// Exit codes follow tools/cli_util.h: 0 done, 1 failure, 2 usage error,
// 3 interrupted but resumable (`stlserve run --dir D --resume`).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "cli_util.h"
#include "common/table.h"
#include "fault/report.h"
#include "netlist/modules.h"
#include "serve/serve.h"

namespace {

using namespace detstl;

constexpr const char* kTool = "stlserve";

void usage(std::FILE* out) {
  std::fputs(
      "usage: stlserve <command> [options]\n"
      "\n"
      "commands:\n"
      "  run          orchestrate a campaign across worker processes\n"
      "  print-spec   print an example JSON campaign spec\n"
      "  --version    print version and checkpoint schema\n"
      "\n"
      "run options:\n"
      "  --spec FILE            JSON campaign spec (see print-spec)\n"
      "  --dir DIR              work directory (per-shard checkpoint subdirs)\n"
      "  --workers N            override the spec's worker-process count\n"
      "  --resume               resume an interrupted campaign in --dir\n"
      "                         (reads DIR/campaign-spec.json; --spec optional)\n"
      "  --max-respawns N       respawns per shard before in-process fallback "
      "(default 3)\n"
      "  --backoff-base-ms N    respawn backoff base (default 100)\n"
      "  --backoff-cap-ms N     respawn backoff cap (default 2000)\n"
      "  --hang-timeout-ms N    heartbeat staleness budget (default 10000)\n"
      "  --shard-timeout-ms N   fixed whole-shard budget (default: calibrated)\n"
      "  --poll-ms N            supervisor poll period (default 25)\n"
      "  --fork-workers         fork without exec (in-process workers; tests)\n"
      "  --no-fsync             workers skip per-shard fsync\n"
      "  --chaos K:ACTION:N     chaos drill: shard K's worker applies ACTION\n"
      "                         (kill-after | hang-after | kill-every) after N "
      "runs\n"
      "  --digest-only          print only the outcome digest\n"
      "  --quiet                suppress supervision notes on stderr\n",
      out);
}

std::string read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("cannot read '" + path + "'");
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Path of this binary, for spawning `stlserve --worker` children.
std::string self_exe(const char* argv0) {
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return argv0;
}

serve::ChaosRule parse_chaos(const std::string& text) {
  // K:ACTION:N
  const std::size_t first = text.find(':');
  const std::size_t last = text.rfind(':');
  serve::ChaosRule rule;
  if (first == std::string::npos || last == first)
    rule.action = "?";
  else {
    rule.shard = cli::require_unsigned(kTool, "--chaos shard",
                                       text.substr(0, first), 0, 63);
    rule.action = text.substr(first + 1, last - first - 1);
    rule.after =
        cli::require_u64(kTool, "--chaos count", text.substr(last + 1), 1, ~0ull);
  }
  if (rule.action != "kill-after" && rule.action != "hang-after" &&
      rule.action != "kill-every") {
    std::fprintf(stderr,
                 "%s: --chaos expects K:ACTION:N with ACTION one of "
                 "kill-after|hang-after|kill-every, got '%s'\n",
                 kTool, text.c_str());
    std::exit(cli::kExitUsage);
  }
  return rule;
}

/// Fault-kind rendering: the standard fault-campaign report, classified
/// against the graded module's netlist (same kind the campaign used).
std::string render_fault_report(const serve::ServeSpec& spec,
                                const fault::CampaignResult& r) {
  const auto render = [&](const netlist::Netlist& nl) {
    return fault::render_report(
        fault::make_report(r, nl, std::max(1u, spec.stride)),
        "stlserve fault campaign (" + spec.module + ")");
  };
  if (spec.module == "hdcu")
    return render(netlist::HdcuNetlist(isa::CoreKind::kA).nl());
  if (spec.module == "icu")
    return render(netlist::IcuNetlist(isa::CoreKind::kA).nl());
  return render(netlist::FwdNetlist(isa::CoreKind::kA).nl());
}

serve::ServeSpec load_spec(const std::string& path) {
  serve::ServeSpec spec;
  std::string err;
  if (!serve::parse_spec(read_text_file(path), spec, &err)) {
    std::fprintf(stderr, "%s: %s: %s\n", kTool, path.c_str(), err.c_str());
    std::exit(cli::kExitUsage);
  }
  return spec;
}

int cmd_run(int argc, char** argv, const char* argv0) {
  std::string spec_path;
  serve::ServeConfig cfg;
  bool fork_workers = false;
  bool digest_only = false;

  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", kTool, a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      spec_path = need();
    } else if (a == "--dir") {
      cfg.work_dir = need();
    } else if (a == "--workers") {
      cfg.workers = cli::require_unsigned(kTool, "--workers", need(), 1, 64);
    } else if (a == "--resume") {
      cfg.resume = true;
    } else if (a == "--max-respawns") {
      cfg.max_respawns =
          cli::require_unsigned(kTool, "--max-respawns", need(), 0, 100);
    } else if (a == "--backoff-base-ms") {
      cfg.backoff_base_ms =
          cli::require_unsigned(kTool, "--backoff-base-ms", need(), 1, 60'000);
    } else if (a == "--backoff-cap-ms") {
      cfg.backoff_cap_ms =
          cli::require_unsigned(kTool, "--backoff-cap-ms", need(), 1, 600'000);
    } else if (a == "--hang-timeout-ms") {
      cfg.hang_timeout_ms =
          cli::require_unsigned(kTool, "--hang-timeout-ms", need(), 50, 600'000);
    } else if (a == "--shard-timeout-ms") {
      cfg.shard_timeout_ms =
          cli::require_u64(kTool, "--shard-timeout-ms", need(), 1, 86'400'000);
    } else if (a == "--poll-ms") {
      cfg.poll_ms = cli::require_unsigned(kTool, "--poll-ms", need(), 1, 10'000);
    } else if (a == "--fork-workers") {
      fork_workers = true;
    } else if (a == "--no-fsync") {
      cfg.no_fsync = true;
    } else if (a == "--chaos") {
      cfg.chaos.push_back(parse_chaos(need()));
    } else if (a == "--digest-only") {
      digest_only = true;
    } else if (a == "--quiet") {
      cfg.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", kTool, a.c_str());
      usage(stderr);
      return cli::kExitUsage;
    }
  }

  if (cfg.work_dir.empty()) {
    std::fprintf(stderr, "%s: run requires --dir\n", kTool);
    return cli::kExitUsage;
  }
  if (spec_path.empty()) {
    if (!cfg.resume) {
      std::fprintf(stderr, "%s: run requires --spec (or --resume)\n", kTool);
      return cli::kExitUsage;
    }
    spec_path = cfg.work_dir + "/campaign-spec.json";
  }
  const serve::ServeSpec spec = load_spec(spec_path);
  if (!fork_workers) cfg.worker_exe = self_exe(argv0);

  const serve::ServeResult sr = serve::run_campaign(spec, cfg);
  std::fprintf(stderr,
               "%s: %u shard(s): %u respawn(s), %u hung kill(s), %u subdir(s) "
               "quarantined, %u in-process fallback(s); merge: %llu record(s) "
               "resumed, %u corrupt shard file(s), %llu run(s) re-executed\n",
               kTool, sr.stats.shards, sr.stats.respawns, sr.stats.hung_killed,
               sr.stats.dirs_quarantined, sr.stats.fallbacks,
               static_cast<unsigned long long>(sr.stats.records_resumed),
               sr.stats.shards_corrupt,
               static_cast<unsigned long long>(sr.stats.merge_reexecuted));
  if (sr.interrupted) {
    std::fprintf(stderr, "%s: interrupted; resume with: stlserve run --dir %s "
                 "--resume\n", kTool, cfg.work_dir.c_str());
    return cli::kExitInterrupted;
  }
  if (spec.kind == "fault") {
    if (digest_only) {
      const std::vector<u8> bytes = sr.fault_result.canonical_bytes();
      std::printf("outcome digest: %s\n",
                  TextTable::fmt_hex(fault::fnv1a(bytes.data(), bytes.size()))
                      .c_str());
    } else {
      std::fputs(render_fault_report(spec, sr.fault_result).c_str(), stdout);
    }
    return cli::kExitSuccess;
  }
  if (digest_only)
    std::printf("outcome digest: %s\n",
                TextTable::fmt_hex(sr.result.digest()).c_str());
  else
    std::fputs(runtime::render_recovery_report(sr.result).c_str(), stdout);
  return cli::kExitSuccess;
}

/// Internal re-entrant entry: one shard, spawned and supervised by `run`.
int cmd_worker(int argc, char** argv) {
  serve::WorkerArgs wa;
  std::string spec_path;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", kTool, a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      spec_path = need();
    } else if (a == "--shard") {
      wa.shard = cli::require_unsigned(kTool, "--shard", need(), 0, 63);
    } else if (a == "--begin") {
      wa.begin = cli::require_u64(kTool, "--begin", need(), 0, ~0ull);
    } else if (a == "--end") {
      wa.end = cli::require_u64(kTool, "--end", need(), 1, ~0ull);
    } else if (a == "--dir") {
      wa.dir = need();
    } else if (a == "--heartbeat") {
      wa.heartbeat = need();
    } else if (a == "--no-fsync") {
      wa.no_fsync = true;
    } else if (a == "--chaos-self") {
      const std::string v = need();
      const std::size_t colon = v.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "%s: --chaos-self expects ACTION:N\n", kTool);
        return cli::kExitUsage;
      }
      wa.chaos_action = v.substr(0, colon);
      wa.chaos_after =
          cli::require_u64(kTool, "--chaos-self", v.substr(colon + 1), 1, ~0ull);
    } else {
      std::fprintf(stderr, "%s: unknown worker option '%s'\n", kTool, a.c_str());
      return cli::kExitUsage;
    }
  }
  if (spec_path.empty() || wa.dir.empty() || wa.heartbeat.empty() ||
      wa.end <= wa.begin) {
    std::fprintf(stderr, "%s: --worker requires --spec, --dir, --heartbeat and "
                 "a non-empty [--begin, --end)\n", kTool);
    return cli::kExitUsage;
  }
  wa.spec = load_spec(spec_path);
  return serve::worker_main(wa);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") return cmd_run(argc - 2, argv + 2, argv[0]);
    if (cmd == "--worker") return cmd_worker(argc - 2, argv + 2);
    if (cmd == "print-spec") {
      std::fputs(serve::example_spec_json().c_str(), stdout);
      return 0;
    }
    if (cmd == "--version") {
      cli::print_version(kTool);
      return 0;
    }
    if (cmd == "--help" || cmd == "-h") {
      usage(stdout);
      return 0;
    }
  } catch (const fault::CheckpointMismatch& e) {
    std::fprintf(stderr, "%s: checkpoint rejected: %s\n", kTool, e.what());
    return cli::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", kTool, e.what());
    return cli::kExitFailure;
  }
  std::fprintf(stderr, "%s: unknown command '%s'\n", kTool, cmd.c_str());
  usage(stderr);
  return 2;
}
