// stlperf — the performance-observability CLI over the BENCH_<name>.json
// trajectory format (src/perf/perf_report.h, docs/observability.md).
//
//   stlperf report FILE                     render one report as tables
//   stlperf diff BASELINE CURRENT           compare two reports
//   stlperf check CURRENT --baseline FILE   gate CURRENT against a baseline
//
// diff and check share the regression semantics: exit 0 when the current
// sim-MHz is within --threshold percent (default 15) of the baseline, exit 1
// on a regression or when the reports are not comparable (different bench
// name or schema), exit 2 on usage errors and unreadable/malformed files
// (tools/cli_util.h exit-code contract). A config-hash mismatch is reported
// as a note — the workload changed, so a slowdown may be intentional — but
// still gates on the threshold.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_util.h"
#include "perf/perf_report.h"

namespace {

using detstl::cli::kExitFailure;
using detstl::cli::kExitSuccess;
using detstl::cli::kExitUsage;

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: stlperf report FILE\n"
               "       stlperf diff BASELINE CURRENT [--threshold PCT]\n"
               "       stlperf check CURRENT --baseline FILE [--threshold PCT]\n"
               "       stlperf --version\n"
               "\n"
               "  report   validate a BENCH_<name>.json and render it as tables\n"
               "  diff     compare two reports; exit 1 when CURRENT's sim-MHz\n"
               "           dropped more than PCT%% (default 15) below BASELINE\n"
               "  check    diff against a committed baseline (the CI perf gate)\n");
}

/// Load or exit(2): an unreadable or malformed report is a setup error, not
/// a regression verdict.
detstl::perf::PerfReport load_or_die(const std::string& path) {
  detstl::perf::PerfReport rep;
  std::string err;
  if (!detstl::perf::load_report_file(path, rep, &err)) {
    std::fprintf(stderr, "stlperf: %s: %s\n", path.c_str(), err.c_str());
    std::exit(kExitUsage);
  }
  return rep;
}

/// Threshold in percent; strict like the numeric options of the other tools.
double parse_threshold(const std::string& text) {
  const unsigned long long v =
      detstl::cli::require_u64("stlperf", "--threshold", text, 0, 1000);
  return static_cast<double>(v);
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    usage(stderr);
    return kExitUsage;
  }
  const detstl::perf::PerfReport rep = load_or_die(args[0]);
  std::fputs(detstl::perf::render_report(rep).c_str(), stdout);
  return kExitSuccess;
}

int cmd_compare(const std::string& baseline_path, const std::string& current_path,
                double threshold) {
  const detstl::perf::PerfReport baseline = load_or_die(baseline_path);
  const detstl::perf::PerfReport current = load_or_die(current_path);
  const detstl::perf::CompareOutcome cmp =
      detstl::perf::compare_reports(baseline, current);
  std::fputs(detstl::perf::render_diff(baseline, current, cmp, threshold).c_str(),
             stdout);
  if (!cmp.comparable) return kExitFailure;
  return cmp.regressed(threshold) ? kExitFailure : kExitSuccess;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  double threshold = 15.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size())
      threshold = parse_threshold(args[++i]);
    else if (args[i].rfind("--", 0) == 0) {
      std::fprintf(stderr, "stlperf: unknown option '%s'\n", args[i].c_str());
      return kExitUsage;
    } else
      files.push_back(args[i]);
  }
  if (files.size() != 2) {
    usage(stderr);
    return kExitUsage;
  }
  return cmd_compare(files[0], files[1], threshold);
}

int cmd_check(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::string baseline;
  double threshold = 15.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--baseline" && i + 1 < args.size())
      baseline = args[++i];
    else if (args[i] == "--threshold" && i + 1 < args.size())
      threshold = parse_threshold(args[++i]);
    else if (args[i].rfind("--", 0) == 0) {
      std::fprintf(stderr, "stlperf: unknown option '%s'\n", args[i].c_str());
      return kExitUsage;
    } else
      files.push_back(args[i]);
  }
  if (files.size() != 1 || baseline.empty()) {
    usage(stderr);
    return kExitUsage;
  }
  return cmd_compare(baseline, files[0], threshold);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage(stderr);
    return kExitUsage;
  }
  if (args[0] == "--version") {
    detstl::cli::print_version("stlperf");
    std::printf("stlperf schema %u\n", detstl::perf::kPerfSchemaVersion);
    return kExitSuccess;
  }
  if (args[0] == "--help" || args[0] == "-h") {
    usage(stdout);
    return kExitSuccess;
  }
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "report") return cmd_report(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "check") return cmd_check(args);
  std::fprintf(stderr, "stlperf: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return kExitUsage;
}
