// stlint — static determinism verifier for cache-wrapped self-test routines.
//
// Lints the bundled STL routines exactly as build_wrapped() would (same
// wrapper emission, same analysis config), or runs the purpose-built
// negative fixtures that demonstrate each rule class. Beyond the per-routine
// report it drives the abstract interpreter's scenario-matrix proofs
// (--matrix) and the static<->dynamic cross-validation against a recorded
// detscope event stream (--xval). Exit codes:
//   0  no error-severity findings / all obligations proven / xval passed
//   1  at least one error-severity finding or failed proof
//   2  usage error / unknown routine / build failure

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fixtures.h"
#include "analysis/sarif.h"
#include "cli_util.h"
#include "core/routines.h"
#include "core/scenario_matrix.h"
#include "core/stl.h"
#include "core/wrapper.h"
#include "trace/trace_io.h"
#include "trace/xval.h"

namespace {

using namespace detstl;
using core::RoutineEntry;
using core::routine_registry;

struct Options {
  std::vector<std::string> routines;  // empty = all
  core::WrapperKind wrapper = core::WrapperKind::kCacheBased;
  int wa = 2;  // 0 = off, 1 = on, 2 = both
  bool perf = false;
  isa::CoreKind kind = isa::CoreKind::kA;
  bool quiet = false;
  bool verbose = false;
  bool json = false;
  bool list = false;
  bool fixtures_selfcheck = false;
  std::string fixture;
  bool matrix = false;
  std::string golden;      // --matrix: compare the table to this golden file
  std::string sarif_path;  // routine mode: write a SARIF 2.1.0 log
  std::string xval_path;   // cross-validate this DSEV event stream
  unsigned cores = 3;      // --xval: graded cores in the recorded scenario
};

void usage(std::ostream& os) {
  os << "stlint — static determinism verifier for wrapped self-test routines\n"
        "\n"
        "usage:\n"
        "  stlint [options]            lint bundled routines (default: all)\n"
        "  stlint --list               list routines and fixtures\n"
        "  stlint --fixture NAME       lint one negative fixture (demo)\n"
        "  stlint --fixtures           self-check: every fixture must trip "
        "its rule,\n"
        "                              and every rule class must be covered\n"
        "  stlint --matrix             scenario-matrix proofs: sweep cache "
        "geometry x\n"
        "                              cores x placement, verdict table on "
        "stdout\n"
        "  stlint --xval FILE          replay a detscope event stream "
        "(--events FILE)\n"
        "                              against the static prediction\n"
        "\n"
        "options:\n"
        "  --routine NAME   lint only this routine (repeatable)\n"
        "  --wrapper KIND   plain | cache | tcm            (default: cache)\n"
        "  --wa MODE        write-allocate: on | off | both (default: both)\n"
        "  --perf           fold performance counters into the signature\n"
        "  --core K         core kind: A | B | C           (default: A)\n"
        "  -q, --quiet      only print per-target verdicts\n"
        "  -v, --verbose    print full reports even when clean\n"
        "  --json           machine-readable report on stdout\n"
        "  --sarif FILE     also write the report as SARIF 2.1.0\n"
        "  --golden FILE    --matrix: require the table to match this file\n"
        "  --cores N        --xval: graded cores in the recording (default 3)\n"
        "  --version        print suite + checkpoint schema version\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "stlint: option '" << a << "' requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--routine") {
      const char* v = next();
      if (!v) return false;
      opt.routines.push_back(v);
    } else if (a == "--wrapper") {
      const char* v = next();
      if (!v) return false;
      if (!strcmp(v, "plain")) opt.wrapper = core::WrapperKind::kPlain;
      else if (!strcmp(v, "cache")) opt.wrapper = core::WrapperKind::kCacheBased;
      else if (!strcmp(v, "tcm")) opt.wrapper = core::WrapperKind::kTcmBased;
      else {
        std::cerr << "stlint: --wrapper expects plain|cache|tcm, got '" << v
                  << "'\n";
        return false;
      }
    } else if (a == "--wa") {
      const char* v = next();
      if (!v) return false;
      if (!strcmp(v, "on")) opt.wa = 1;
      else if (!strcmp(v, "off")) opt.wa = 0;
      else if (!strcmp(v, "both")) opt.wa = 2;
      else {
        std::cerr << "stlint: --wa expects on|off|both, got '" << v << "'\n";
        return false;
      }
    } else if (a == "--perf") {
      opt.perf = true;
    } else if (a == "--core") {
      const char* v = next();
      if (!v) return false;
      if (!strcmp(v, "A")) opt.kind = isa::CoreKind::kA;
      else if (!strcmp(v, "B")) opt.kind = isa::CoreKind::kB;
      else if (!strcmp(v, "C")) opt.kind = isa::CoreKind::kC;
      else {
        std::cerr << "stlint: --core expects A|B|C, got '" << v << "'\n";
        return false;
      }
    } else if (a == "-q" || a == "--quiet") {
      opt.quiet = true;
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--list") {
      opt.list = true;
    } else if (a == "--fixtures") {
      opt.fixtures_selfcheck = true;
    } else if (a == "--fixture") {
      const char* v = next();
      if (!v) return false;
      opt.fixture = v;
    } else if (a == "--matrix") {
      opt.matrix = true;
    } else if (a == "--golden") {
      const char* v = next();
      if (!v) return false;
      opt.golden = v;
    } else if (a == "--sarif") {
      const char* v = next();
      if (!v) return false;
      opt.sarif_path = v;
    } else if (a == "--xval") {
      const char* v = next();
      if (!v) return false;
      opt.xval_path = v;
    } else if (a == "--cores") {
      const char* v = next();
      if (!v) return false;
      opt.cores = cli::require_unsigned("stlint", "--cores", v, 1, 3);
    } else if (a == "--version") {
      cli::print_version("stlint");
      std::exit(0);
    } else if (a == "-h" || a == "--help") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "stlint: unknown option '" << a << "'\n";
      return false;
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int run_fixture(const Options& opt) {
  const auto fixtures = analysis::negative_fixtures();
  const analysis::Fixture* f = analysis::find_fixture(fixtures, opt.fixture);
  if (!f) {
    std::cerr << "stlint: unknown fixture '" << opt.fixture << "'\n";
    return 2;
  }
  const analysis::Report rep = analysis::analyze(f->prog, f->cfg);
  std::cout << "fixture " << f->name << ": " << f->description << "\n"
            << rep.format();
  return rep.clean() ? 0 : 1;
}

int run_fixtures_selfcheck() {
  int bad = 0;
  std::set<analysis::Rule> covered;
  for (const auto& f : analysis::negative_fixtures()) {
    const analysis::Report rep = analysis::analyze(f.prog, f.cfg);
    const bool tripped =
        rep.has(f.expect) &&
        (f.expect_severity != analysis::Severity::kError || !rep.clean());
    std::cout << (tripped ? "TRIPPED " : "MISSED  ") << f.name << " ["
              << analysis::rule_id(f.expect) << "]\n";
    if (tripped) covered.insert(f.expect);
    if (!tripped) {
      std::cout << rep.format();
      ++bad;
    }
  }
  // Catalogue coverage: every rule class must be provably trippable by a
  // bundled fixture. The interference bound is the one informational rule
  // that fires only on *clean* routines, so it is exempt here.
  for (const analysis::Rule r : analysis::rule_catalogue()) {
    if (r == analysis::Rule::kAiInterferenceBound) continue;
    if (covered.count(r) == 0) {
      std::cout << "UNCOVERED rule " << analysis::rule_id(r)
                << " — no fixture trips it\n";
      ++bad;
    }
  }
  std::cout << (bad ? "FAIL" : "OK")
            << ": fixture self-check (every rule class covered)\n";
  return bad ? 1 : 0;
}

int run_matrix_cmd(const Options& opt,
                   const std::vector<const RoutineEntry*>& targets) {
  const auto rep = core::run_matrix(core::default_matrix_grid(), targets);
  const std::string table = core::format_matrix(rep);
  std::cout << (opt.json ? core::matrix_json(rep) : table);
  if (!opt.golden.empty()) {
    std::ifstream in(opt.golden, std::ios::binary);
    if (!in) {
      std::cerr << "stlint: cannot read golden file " << opt.golden << "\n";
      return 2;
    }
    std::ostringstream want;
    want << in.rdbuf();
    if (want.str() != table) {
      std::cerr << "stlint: matrix table differs from golden " << opt.golden
                << " (regenerate with: stlint --matrix > " << opt.golden
                << ")\n";
      return 1;
    }
  }
  return rep.all_proven() ? 0 : 1;
}

int run_xval(const Options& opt) {
  const auto file = trace::read_events_file(opt.xval_path);
  if (!file.ok) {
    std::cerr << "stlint: " << file.error << "\n";
    return 2;
  }
  trace::XvalOptions xo;
  if (!opt.routines.empty()) xo.routine = opt.routines.front();
  xo.cores = opt.cores;
  xo.write_allocate = opt.wa != 0;  // 'both' records as write-allocate on
  const auto r = trace::cross_validate(file.events, xo);
  std::cout << trace::format(r);
  if (!r.ok) return 2;
  return r.passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }
  if (opt.list) {
    std::cout << "routines:\n";
    for (const auto& r : routine_registry()) std::cout << "  " << r.name << "\n";
    std::cout << "fixtures:\n";
    for (const auto& f : analysis::negative_fixtures())
      std::cout << "  " << f.name << " — " << f.description << "\n";
    return 0;
  }
  if (!opt.fixture.empty()) return run_fixture(opt);
  if (opt.fixtures_selfcheck) return run_fixtures_selfcheck();
  if (!opt.xval_path.empty()) return run_xval(opt);

  const auto registry = routine_registry();
  std::vector<const RoutineEntry*> targets;
  if (opt.routines.empty()) {
    for (const auto& r : registry) targets.push_back(&r);
  } else {
    for (const auto& name : opt.routines) {
      const RoutineEntry* found = nullptr;
      for (const auto& r : registry)
        if (name == r.name) found = &r;
      if (!found) {
        std::cerr << "stlint: unknown routine '" << name
                  << "' (try --list)\n";
        return 2;
      }
      targets.push_back(found);
    }
  }
  if (opt.matrix) return run_matrix_cmd(opt, targets);

  std::vector<bool> wa_modes;
  if (opt.wa == 2) wa_modes = {true, false};
  else wa_modes = {opt.wa == 1};

  unsigned errors = 0;
  bool first_target = true;
  // Kept alive for --sarif: (display name, report) per linted target.
  std::vector<std::pair<std::string, analysis::Report>> kept;
  if (opt.json) std::cout << "{\"schema\":2,\"targets\":[";
  for (const RoutineEntry* t : targets) {
    for (bool wa : wa_modes) {
      const auto routine = t->make();
      core::BuildEnv env;
      env.kind = opt.kind;
      env.write_allocate = wa;
      env.use_perf_counters = opt.perf;
      env.lint = core::LintMode::kReport;
      core::BuiltTest bt;
      try {
        bt = core::build_wrapped(*routine, opt.wrapper, env);
      } catch (const std::exception& e) {
        std::cerr << "stlint: build failed for " << t->name << ": " << e.what()
                  << "\n";
        return 2;
      }
      const bool clean = bt.lint.clean();
      errors += bt.lint.errors();
      if (!opt.sarif_path.empty()) {
        kept.emplace_back(std::string(t->name) + " [" +
                              core::wrapper_name(opt.wrapper) + ", " +
                              (wa ? "wa" : "nwa") + "]",
                          bt.lint);
      }
      if (opt.json) {
        if (!first_target) std::cout << ",";
        first_target = false;
        std::cout << "\n  {\"routine\":\"" << json_escape(t->name)
                  << "\",\"wrapper\":\"" << core::wrapper_name(opt.wrapper)
                  << "\",\"write_allocate\":" << (wa ? "true" : "false")
                  << ",\"errors\":" << bt.lint.errors()
                  << ",\"warnings\":" << bt.lint.warnings()
                  << ",\"diagnostics\":[";
        bool first_diag = true;
        for (const auto& d : bt.lint.diagnostics()) {
          if (!first_diag) std::cout << ",";
          first_diag = false;
          char pc[16];
          std::snprintf(pc, sizeof pc, "0x%08x", d.pc);
          std::cout << "\n    {\"severity\":\""
                    << analysis::severity_name(d.severity) << "\",\"rule\":\""
                    << analysis::rule_id(d.rule) << "\",\"pc\":\"" << pc
                    << "\",\"symbol\":\"" << json_escape(d.where)
                    << "\",\"message\":\"" << json_escape(d.message)
                    << "\",\"hint\":\"" << json_escape(d.hint) << "\"}";
        }
        std::cout << (first_diag ? "]}" : "\n  ]}");
        continue;
      }
      std::cout << (clean ? "PASS " : "FAIL ") << t->name << " ["
                << core::wrapper_name(opt.wrapper) << ", "
                << (wa ? "write-allocate" : "no-write-allocate") << "] "
                << bt.lint.errors() << " error(s), " << bt.lint.warnings()
                << " warning(s)\n";
      if (!opt.quiet && (opt.verbose || !clean))
        std::cout << bt.lint.format();
    }
  }
  if (opt.json)
    std::cout << "\n],\"errors\":" << errors
              << ",\"clean\":" << (errors ? "false" : "true") << "}\n";
  if (!opt.sarif_path.empty()) {
    std::vector<analysis::SarifTarget> st;
    st.reserve(kept.size());
    for (const auto& [name, rep] : kept) st.push_back({name, &rep});
    std::ofstream out(opt.sarif_path, std::ios::binary);
    if (!out || !(out << analysis::to_sarif(st))) {
      std::cerr << "stlint: cannot write " << opt.sarif_path << "\n";
      return 2;
    }
  }
  return errors ? 1 : 0;
}
