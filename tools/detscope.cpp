// detscope — unified observability CLI for the deterministic-STL simulator.
//
// Commands:
//   run            execute the quickstart scenario (cache-wrapped routine on
//                  up to 3 cores) with tracing on; print per-phase metrics,
//                  per-requester bus statistics and the determinism
//                  invariant verdict; optionally write a Chrome-trace JSON
//                  (--trace FILE, loadable in Perfetto / chrome://tracing).
//   audit          dynamic determinism audit: the graded core's
//                  execution-loop event stream must be byte-identical solo
//                  and under full bus contention (trace/audit.h).
//   campaign-audit fault-campaign determinism: event stream and outcome
//                  vector must be byte-identical for every worker-thread
//                  count.
//   metrics        execute the quickstart scenario and dump the full stlperf
//                  metrics registry (per-core pipeline counters, cache and
//                  bus statistics, sim totals, host usage) as one
//                  stlperf-schema JSON document (src/perf/perf_report.h).
//
// Exit codes: 0 = pass, 1 = a check failed, 2 = usage/build error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/table.h"
#include "core/routines.h"
#include "core/stl.h"
#include "exp/experiments.h"
#include "perf/collect.h"
#include "perf/perf_report.h"
#include "perf/sampler.h"
#include "perf/simstats.h"
#include "trace/audit.h"
#include "trace/capture.h"
#include "trace/chrome_trace.h"
#include "trace/metrics.h"
#include "trace/trace_io.h"

namespace {

using namespace detstl;

void usage(std::FILE* os) {
  std::fprintf(
      os,
      "detscope — event tracing, per-phase metrics and determinism audits\n"
      "\n"
      "usage:\n"
      "  detscope run [--routine NAME] [--cores N] [--wa on|off]\n"
      "               [--trace FILE] [--events FILE] [--hits] [--beats]\n"
      "  detscope audit [--routine NAME|all] [--wa on|off]\n"
      "  detscope campaign-audit [--module fwd|hdcu|icu] [--threads A,B,C]\n"
      "               [--stride N]\n"
      "  detscope metrics [--routine NAME] [--cores N] [--wa on|off]\n"
      "               [--out FILE]\n"
      "\n"
      "run options:\n"
      "  --routine NAME   built-in routine (default: fwd-pc; see stlint --list)\n"
      "  --cores N        active cores, 1-3 (default: 3)\n"
      "  --wa on|off      D$ write-allocate policy (default: on)\n"
      "  --trace FILE     write the run as Chrome-trace JSON\n"
      "  --events FILE    write the raw event stream (DSEV) for stlint --xval\n"
      "  --hits           include per-access cache hits in the JSON\n"
      "  --beats          include per-word bus data beats in the JSON\n"
      "\n"
      "  --version        print suite + checkpoint schema version\n");
}

bool require_on_off(const char* opt, const std::string& v) {
  if (v == "on") return true;
  if (v == "off") return false;
  std::fprintf(stderr, "detscope: %s expects 'on' or 'off', got '%s'\n", opt,
               v.c_str());
  std::exit(2);
}

const core::RoutineEntry* routine_or_die(const std::string& name) {
  const core::RoutineEntry* e = core::find_routine(name);
  if (e == nullptr) {
    std::fprintf(stderr, "detscope: unknown routine '%s' (see stlint --list)\n",
                 name.c_str());
    std::exit(2);
  }
  return e;
}

std::string requester_name(unsigned id) {
  const char* port[] = {"ifetch0", "data", "ifetch1"};
  return "core " + std::string(1, static_cast<char>('A' + id / 3)) + " " +
         port[id % 3];
}

int cmd_run(const std::vector<std::string>& args) {
  std::string routine_name = "fwd-pc";
  unsigned cores = 3;
  bool wa = true;
  std::string trace_path;
  std::string events_path;
  bool hits = false, beats = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage(stderr);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--routine") routine_name = need();
    else if (args[i] == "--cores")
      cores = cli::require_unsigned("detscope", "--cores", need(), 1, 3);
    else if (args[i] == "--wa") wa = require_on_off("--wa", need());
    else if (args[i] == "--trace") trace_path = need();
    else if (args[i] == "--events") events_path = need();
    else if (args[i] == "--hits") hits = true;
    else if (args[i] == "--beats") beats = true;
    else {
      std::fprintf(stderr, "detscope: unknown option '%s'\n", args[i].c_str());
      usage(stderr);
      return 2;
    }
  }

  const auto routine = routine_or_die(routine_name)->make();
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < cores; ++c) {
    tests.push_back(core::build_wrapped(*routine, core::WrapperKind::kCacheBased,
                                        core::quickstart_env(c, wa)));
  }

  soc::SocConfig cfg;
  cfg.start_delay = {0, 3, 7};
  soc::Soc soc(cfg);
  for (const auto& t : tests) {
    soc.load_program(t.prog);
    soc.set_boot(t.env.core_id, t.prog.entry());
  }
  for (unsigned c = cores; c < 3; ++c) soc.set_active(c, false);

  trace::FanoutSink fan;
  trace::MetricsRegistry metrics;
  trace::ChromeTraceWriter writer;
  trace::StreamCapture capture;
  writer.set_include_hits(hits);
  writer.set_include_beats(beats);
  fan.add(&metrics);
  if (!trace_path.empty()) fan.add(&writer);
  if (!events_path.empty()) fan.add(&capture);
  soc.set_trace_sink(&fan);

  soc.reset();
  const auto res = soc.run(10'000'000);
  if (res.timed_out) {
    std::fprintf(stderr, "detscope: watchdog expired\n");
    return 1;
  }

  bool all_pass = true;
  for (unsigned c = 0; c < cores; ++c) {
    const auto v = core::read_verdict(soc, soc::mailbox_addr(c));
    const bool pass = v.status == soc::kStatusPass && v.signature == tests[c].golden;
    all_pass &= pass;
    std::printf("core %c: %s  signature 0x%08x (golden 0x%08x)\n", 'A' + c,
                pass ? "PASS" : "FAIL", v.signature, tests[c].golden);
  }

  std::printf("\n%s", metrics.render().c_str());

  TextTable bus("shared bus, per requester");
  bus.header({"requester", "submits", "grants", "wait cyc", "occupancy cyc"});
  for (unsigned id = 0; id < cores * 3; ++id) {
    const auto& st = soc.bus().stats(id);
    if (st.submits == 0) continue;
    bus.row({requester_name(id),
             TextTable::fmt_int(static_cast<long long>(st.submits)),
             TextTable::fmt_int(static_cast<long long>(st.grants)),
             TextTable::fmt_int(static_cast<long long>(st.wait_cycles)),
             TextTable::fmt_int(static_cast<long long>(st.occupancy_cycles))});
  }
  bus.print();

  const auto violations = metrics.violations();
  if (violations.empty()) {
    std::printf("\ninvariant: execution loops ran bus-silent on every core — OK\n");
  } else {
    std::printf("\ninvariant VIOLATED:\n");
    for (const auto& v : violations) std::printf("  %s\n", v.c_str());
  }

  if (!trace_path.empty()) {
    if (!writer.write_file(trace_path)) {
      std::fprintf(stderr, "detscope: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                writer.size());
  }
  if (!events_path.empty()) {
    if (!trace::write_events_file(events_path, capture.events())) {
      std::fprintf(stderr, "detscope: cannot write %s\n", events_path.c_str());
      return 1;
    }
    std::printf("event stream written to %s (%zu events)\n",
                events_path.c_str(), capture.events().size());
  }
  return all_pass && violations.empty() ? 0 : 1;
}

int cmd_audit(const std::vector<std::string>& args) {
  std::string routine_name = "all";
  trace::AuditOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage(stderr);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--routine") routine_name = need();
    else if (args[i] == "--wa") opts.write_allocate = require_on_off("--wa", need());
    else {
      std::fprintf(stderr, "detscope: unknown option '%s'\n", args[i].c_str());
      usage(stderr);
      return 2;
    }
  }

  std::vector<const core::RoutineEntry*> targets;
  if (routine_name == "all") {
    for (const auto& e : core::routine_registry()) targets.push_back(&e);
  } else {
    targets.push_back(routine_or_die(routine_name));
  }

  bool all_pass = true;
  for (const auto* t : targets) {
    const auto routine = t->make();
    const auto r = trace::audit_determinism(*routine, opts);
    all_pass &= r.passed();
    std::printf(
        "%-10s %s  window %zu events, solo %llu cyc vs contended %llu cyc "
        "(%llu neighbour grants)\n",
        t->name, r.passed() ? "DETERMINISTIC " : "NON-DETERMINISTIC",
        r.window_events_solo, static_cast<unsigned long long>(r.solo_cycles),
        static_cast<unsigned long long>(r.contended_cycles),
        static_cast<unsigned long long>(r.contended_neighbor_grants));
    if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
  }
  std::printf("%s\n", all_pass ? "audit: PASS" : "audit: FAIL");
  return all_pass ? 0 : 1;
}

int cmd_campaign_audit(const std::vector<std::string>& args) {
  fault::Module module = fault::Module::kFwd;
  std::vector<unsigned> threads = {1, 2, 8};
  u32 stride = 8;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage(stderr);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--module") {
      const std::string m = need();
      if (m == "fwd") module = fault::Module::kFwd;
      else if (m == "hdcu") module = fault::Module::kHdcu;
      else if (m == "icu") module = fault::Module::kIcu;
      else {
        std::fprintf(stderr,
                     "detscope: --module expects fwd|hdcu|icu, got '%s'\n",
                     m.c_str());
        usage(stderr);
        return 2;
      }
    } else if (args[i] == "--threads") {
      threads = cli::require_unsigned_list("detscope", "--threads", need(), 1, 256);
    } else if (args[i] == "--stride") {
      stride = cli::require_unsigned("detscope", "--stride", need(), 1, 1u << 20);
    } else {
      std::fprintf(stderr, "detscope: unknown option '%s'\n", args[i].c_str());
      usage(stderr);
      return 2;
    }
  }

  // The graded scenario of the parallel-campaign regression tests: one core,
  // plain wrapper, value-only fwd routine (fast, deterministic).
  const auto routine = module == fault::Module::kIcu ? core::make_icu_test()
                                                     : core::make_fwd_test(false);
  exp::Scenario sc;
  sc.active_cores = 1;
  sc.stagger = {0, 0, 0};
  sc.label = "campaign-audit";
  auto tests = exp::build_scenario_tests(*routine, core::WrapperKind::kPlain, sc,
                                         /*graded=*/0, /*use_perf_counters=*/false);
  fault::CampaignConfig cc;
  cc.module = module;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = stride;
  const auto factory = exp::scenario_factory(std::move(tests), sc, 0);

  const auto r = trace::audit_campaign_determinism(cc, factory, threads);
  std::printf("campaign-audit [%s, stride %u, threads", fault::module_name(module),
              stride);
  for (std::size_t i = 0; i < r.thread_counts.size(); ++i)
    std::printf("%s%u", i == 0 ? " " : ",", r.thread_counts[i]);
  std::printf("]: %s (%zu events per run)\n",
              r.passed() ? "DETERMINISTIC" : "NON-DETERMINISTIC", r.events);
  if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
  return r.passed() ? 0 : 1;
}

int cmd_metrics(const std::vector<std::string>& args) {
  std::string routine_name = "fwd-pc";
  unsigned cores = 3;
  bool wa = true;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage(stderr);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--routine") routine_name = need();
    else if (args[i] == "--cores")
      cores = cli::require_unsigned("detscope", "--cores", need(), 1, 3);
    else if (args[i] == "--wa") wa = require_on_off("--wa", need());
    else if (args[i] == "--out") out_path = need();
    else {
      std::fprintf(stderr, "detscope: unknown option '%s'\n", args[i].c_str());
      usage(stderr);
      return 2;
    }
  }

  const auto routine = routine_or_die(routine_name)->make();
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < cores; ++c) {
    tests.push_back(core::build_wrapped(*routine, core::WrapperKind::kCacheBased,
                                        core::quickstart_env(c, wa)));
  }

  soc::SocConfig cfg;
  cfg.start_delay = {0, 3, 7};
  soc::Soc soc(cfg);
  for (const auto& t : tests) {
    soc.load_program(t.prog);
    soc.set_boot(t.env.core_id, t.prog.entry());
  }
  for (unsigned c = cores; c < 3; ++c) soc.set_active(c, false);

  const perf::SimSnapshot before = perf::sim_totals().snapshot();
  perf::HostTimer timer;
  soc.reset();
  const auto res = soc.run(10'000'000);
  if (res.timed_out) {
    std::fprintf(stderr, "detscope: watchdog expired\n");
    return 1;
  }
  const perf::SimSnapshot delta = perf::sim_totals().snapshot().since(before);
  const perf::HostUsage usage_now = timer.sample();

  perf::PerfReport rep;
  rep.name = "detscope-metrics";
  rep.detstl_version = kDetstlVersion;
  fault::ConfigHasher hash;
  hash.str("detscope-metrics").str(routine_name).u32v(cores).u8v(wa ? 1 : 0);
  rep.config_hash = hash.digest();
  rep.sim_cycles = delta.sim_cycles();
  rep.sim_units = delta.units();
  rep.phases.push_back({"quickstart", delta.sim_cycles(), delta.units(),
                        usage_now.wall_s});
  rep.wall_s = usage_now.wall_s;
  rep.cpu_s = usage_now.cpu_s;
  rep.peak_rss_kb = usage_now.peak_rss_kb;
  perf::collect_soc(rep.metrics, soc);
  perf::collect_sim_totals(rep.metrics, delta);
  perf::collect_host_usage(rep.metrics, usage_now);

  const std::string json = perf::to_json(rep);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else if (!perf::write_report_file(out_path, rep)) {
    std::fprintf(stderr, "detscope: cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "-h" || cmd == "--help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "--version") {
    cli::print_version("detscope");
    return 0;
  }
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "audit") return cmd_audit(args);
    if (cmd == "campaign-audit") return cmd_campaign_audit(args);
    if (cmd == "metrics") return cmd_metrics(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detscope: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "detscope: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
