#pragma once
// Netlist-backed implementations of the CPU module interfaces. A fault
// campaign installs these via CpuHooks to drive the pipeline from gate-level
// logic, optionally with one injected stuck-at fault (broadcast to every
// lane; lane 0 is read back).

#include <optional>

#include "netlist/modules.h"

namespace detstl::netlist {

class NetlistHazard final : public cpu::HazardModel {
 public:
  explicit NetlistHazard(const HdcuNetlist& mod)
      : mod_(&mod), state_(mod.nl().make_state()) {}

  void set_fault(std::optional<Fault> f) {
    Netlist::clear_faults(state_);
    if (f) Netlist::inject(state_, *f, ~0ull);
  }

  HdcuOut eval(const HdcuIn& in) override {
    mod_->encode(in, state_);
    mod_->nl().eval(state_);
    return mod_->decode(state_, 0);
  }

 private:
  const HdcuNetlist* mod_;
  EvalState state_;
};

class NetlistForward final : public cpu::ForwardModel {
 public:
  explicit NetlistForward(const FwdNetlist& mod)
      : mod_(&mod), state_(mod.nl().make_state()) {}

  void set_fault(std::optional<Fault> f) {
    Netlist::clear_faults(state_);
    if (f) Netlist::inject(state_, *f, ~0ull);
  }

  FwdOut eval(const FwdIn& in) override {
    mod_->encode(in, state_);
    mod_->nl().eval(state_);
    return mod_->decode(state_, 0);
  }

 private:
  const FwdNetlist* mod_;
  EvalState state_;
};

class NetlistIcu final : public cpu::IcuModel {
 public:
  explicit NetlistIcu(const IcuNetlist& mod)
      : mod_(&mod), state_(mod.nl().make_state()) {}

  void set_fault(std::optional<Fault> f) {
    Netlist::clear_faults(state_);
    if (f) Netlist::inject(state_, *f, ~0ull);
  }

  IcuOut eval(const IcuIn& in) override {
    mod_->encode(in, state_);
    mod_->nl().eval(state_);
    return mod_->decode(state_, 0);
  }

  void clock(const IcuIn& in) override {
    mod_->encode(in, state_);
    mod_->nl().eval(state_);
    mod_->nl().clock(state_);
  }

  void load_state(u16 state) override { mod_->load_state(state_, state); }

 private:
  const IcuNetlist* mod_;
  EvalState state_;
};

}  // namespace detstl::netlist
