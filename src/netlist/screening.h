#pragma once
// Excitation screening entry point (fault-campaign phase 1).
//
// A LaneGroupScreen owns the evaluation state for one *lane group*: up to 63
// faults of the collapsed list packed into lanes 0..62 of the 64-lane
// bit-parallel evaluator, with lane 63 left fault-free as the golden
// reference. The caller replays the recorded module-call trace — encode the
// call's inputs into state(), then observe(call_idx) — and the screen records
// the call index of each fault's first output divergence.
//
// Lane groups are independent by construction (each group carries its own
// EvalState and writes only its own slice of the divergence results), which
// is what lets the campaign shard groups across worker threads without any
// synchronisation beyond the work queue.

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace detstl::netlist {

class LaneGroupScreen {
 public:
  /// Faulty lanes per evaluation word; lane kLanesPerGroup is the reference.
  static constexpr unsigned kLanesPerGroup = 63;

  /// Number of lane groups needed to screen `nfaults` faults.
  static constexpr std::size_t num_groups(std::size_t nfaults) {
    return (nfaults + kLanesPerGroup - 1) / kLanesPerGroup;
  }

  /// Prepares a screen over `faults` (at most kLanesPerGroup of them),
  /// observed on the `outputs` nets of `nl`. The referenced netlist and
  /// output list must outlive the screen; the fault span is copied.
  LaneGroupScreen(const Netlist& nl, std::span<const NetId> outputs,
                  std::span<const Fault> faults);

  /// Evaluation state to encode the next call's inputs into.
  EvalState& state() { return state_; }

  /// Evaluate the netlist on the currently-encoded inputs and record, for
  /// every not-yet-diverged lane whose outputs differ from the reference
  /// lane, `call_idx` as its first divergence.
  void observe(std::size_t call_idx);

  /// Commit flop state (sequential modules; call after observe()).
  void clock() { nl_->clock(state_); }

  /// Every fault in the group has diverged — replay may stop early.
  bool done() const { return alive_ == 0; }

  /// Per-fault call index of the first output divergence, in the order the
  /// faults were passed to the constructor; SIZE_MAX = never diverged.
  const std::vector<std::size_t>& first_divergence() const { return first_div_; }

 private:
  const Netlist* nl_;
  std::span<const NetId> outputs_;
  EvalState state_;
  u64 alive_;
  std::vector<std::size_t> first_div_;
};

}  // namespace detstl::netlist
