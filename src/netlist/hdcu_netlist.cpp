#include "netlist/modules.h"

namespace detstl::netlist {

HdcuNetlist::HdcuNetlist(CoreKind kind) : kind_(kind), nl_(instance_style(kind)) {
  const bool c64 = kind == CoreKind::kC;

  // Primary inputs: consumers then producers (the encode() contract).
  for (auto& c : cons_) {
    for (auto& n : c.rs) n = nl_.input();
    c.used = nl_.input();
    if (c64) c.is64 = nl_.input();
  }
  for (auto& p : prod_) {
    for (auto& n : p.rd) n = nl_.input();
    p.writes = nl_.input();
    if (c64) p.is64 = nl_.input();
    p.is_load = nl_.input();
  }

  const NetId zero = nl_.constant(false);

  // Per-producer rd+1 (64-bit pair-high address), shared across consumers.
  std::array<std::vector<NetId>, 4> rd_plus1;
  if (c64) {
    for (unsigned p = 0; p < 4; ++p)
      rd_plus1[p] = nl_.inc_n(std::span<const NetId>(prod_[p].rd));
  }

  std::array<NetId, 4> stall_c{};

  for (unsigned c = 0; c < 4; ++c) {
    const Consumer& cons = cons_[c];
    const NetId nz = nl_.or_n(std::span<const NetId>(cons.rs));
    std::vector<NetId> rs_plus1;
    if (c64) rs_plus1 = nl_.inc_n(std::span<const NetId>(cons.rs));

    // Per-producer match / match-kind signals.
    std::array<NetId, 4> match{}, high{}, stall_cause{};
    for (unsigned p = 0; p < 4; ++p) {
      const Producer& prod = prod_[p];
      const bool dist1 = p < 2;  // EXMEM producers
      const NetId e0 = nl_.eq_n(std::span<const NetId>(cons.rs),
                                std::span<const NetId>(prod.rd));
      NetId full = e0;
      NetId hi = zero;
      NetId partial = zero;
      if (c64) {
        const NetId e1 = nl_.eq_n(std::span<const NetId>(cons.rs),
                                  std::span<const NetId>(rd_plus1[p]));
        const NetId e2 = nl_.eq_n(std::span<const NetId>(rs_plus1),
                                  std::span<const NetId>(prod.rd));
        const NetId np64 = nl_.not_(prod.is64);
        const NetId nc64 = nl_.not_(cons.is64);
        const NetId mixed = nl_.and2(np64, cons.is64);  // 32-bit prod, 64-bit cons
        full = nl_.and2(e0, nl_.not_(mixed));
        hi = nl_.and_n(std::array<NetId, 3>{e1, prod.is64, nc64});
        partial = nl_.and2(nl_.or2(e0, e2), mixed);
      }
      const NetId any = nl_.or_n(std::array<NetId, 3>{full, hi, partial});
      match[p] = nl_.and_n(std::array<NetId, 4>{any, prod.writes, cons.used, nz});
      high[p] = hi;
      stall_cause[p] =
          dist1 ? nl_.or2(partial, prod.is_load) : partial;  // qualified by grant
    }

    // Priority grant, youngest first: EXMEM1 > EXMEM0 > MEMWB1 > MEMWB0.
    static constexpr unsigned kOrder[4] = {1, 0, 3, 2};
    std::array<NetId, 4> granted{};  // indexed by producer id
    NetId earlier = zero;
    for (unsigned o = 0; o < 4; ++o) {
      const unsigned p = kOrder[o];
      granted[p] = nl_.and2(match[p], nl_.not_(earlier));
      earlier = nl_.or2(earlier, match[p]);
    }

    // Stall if the granted producer cannot forward.
    std::array<NetId, 4> scause;
    for (unsigned p = 0; p < 4; ++p) scause[p] = nl_.and2(granted[p], stall_cause[p]);
    stall_c[c] = nl_.or_n(scause);
    const NetId notst = nl_.not_(stall_c[c]);

    // Select encoding: EXMEM0=001, EXMEM1=010, MEMWB0=011, MEMWB1=100.
    std::array<NetId, 4> g;
    for (unsigned p = 0; p < 4; ++p) g[p] = nl_.and2(granted[p], notst);
    sel_out_[c][0] = nl_.or2(g[0], g[2]);
    sel_out_[c][1] = nl_.or2(g[1], g[2]);
    sel_out_[c][2] = g[3];

    if (c64) {
      std::array<NetId, 4> gh;
      for (unsigned p = 0; p < 4; ++p) gh[p] = nl_.and2(g[p], high[p]);
      high_out_[c] = nl_.or_n(gh);
    } else {
      high_out_[c] = zero;
    }
  }

  stall_out_ = nl_.or_n(stall_c);

  for (unsigned c = 0; c < 4; ++c) {
    outputs_.insert(outputs_.end(), sel_out_[c].begin(), sel_out_[c].end());
    outputs_.push_back(high_out_[c]);
  }
  outputs_.push_back(stall_out_);
}

void HdcuNetlist::encode(const HdcuIn& in, EvalState& s) const {
  for (unsigned c = 0; c < 4; ++c) {
    const cpu::HdcuConsumer& hc = in.cons[c];
    for (unsigned b = 0; b < 5; ++b)
      s.set_input(nl_.gate(cons_[c].rs[b]).aux, (hc.rs >> b) & 1);
    s.set_input(nl_.gate(cons_[c].used).aux, hc.used);
    if (cons_[c].is64 != kNoNet) s.set_input(nl_.gate(cons_[c].is64).aux, hc.is64);
  }
  for (unsigned p = 0; p < 4; ++p) {
    const cpu::HdcuProducer& hp = in.prod[p];
    for (unsigned b = 0; b < 5; ++b)
      s.set_input(nl_.gate(prod_[p].rd[b]).aux, (hp.rd >> b) & 1);
    s.set_input(nl_.gate(prod_[p].writes).aux, hp.writes);
    if (prod_[p].is64 != kNoNet) s.set_input(nl_.gate(prod_[p].is64).aux, hp.is64);
    s.set_input(nl_.gate(prod_[p].is_load).aux, hp.is_load);
  }
}

HdcuOut HdcuNetlist::decode(const EvalState& s, unsigned lane) const {
  HdcuOut out;
  for (unsigned c = 0; c < 4; ++c) {
    unsigned sel = 0;
    for (unsigned b = 0; b < 3; ++b)
      sel |= static_cast<unsigned>(s.lane_bit(sel_out_[c][b], lane)) << b;
    out.sel[c] = static_cast<cpu::FwdSel>(sel);
    out.high_half[c] = s.lane_bit(high_out_[c], lane);
  }
  out.stall = s.lane_bit(stall_out_, lane);
  return out;
}

}  // namespace detstl::netlist
