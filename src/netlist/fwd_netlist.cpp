#include "netlist/modules.h"

namespace detstl::netlist {

Style instance_style(CoreKind kind) {
  switch (kind) {
    case CoreKind::kA:
      return Style{.nand_nand = false, .buf_prob = 0.10, .seed = 0xA11CE};
    case CoreKind::kB:
      // Same RTL as A, different physical design: NAND-family mapping and a
      // different buffer density/seed give a distinct fault list.
      return Style{.nand_nand = true, .buf_prob = 0.16, .seed = 0xB0B};
    case CoreKind::kC:
      return Style{.nand_nand = false, .buf_prob = 0.08, .seed = 0xCA5CADE};
  }
  return {};
}

FwdNetlist::FwdNetlist(CoreKind kind)
    : kind_(kind),
      width_(kind == CoreKind::kC ? 64 : 32),
      nl_(instance_style(kind)) {
  const bool c64 = kind == CoreKind::kC;

  // Primary inputs, port-major, in a fixed order (the encode() contract).
  for (auto& port : ports_) {
    for (auto& s : port.sel) s = nl_.input();
    if (c64) port.high = nl_.input();
    port.rf.resize(width_);
    for (auto& n : port.rf) n = nl_.input();
    for (auto& cand : port.cand) {
      cand.resize(width_);
      for (auto& n : cand) n = nl_.input();
    }
  }

  for (auto& port : ports_) {
    // One-hot select decode: dec[j] asserts for encoded value j+1; rf_sel for 0.
    auto sel_is = [&](unsigned v) {
      std::array<NetId, 3> bits;
      for (unsigned b = 0; b < 3; ++b)
        bits[b] = (v >> b) & 1 ? port.sel[b] : nl_.not_(port.sel[b]);
      return nl_.and_n(bits);
    };
    const NetId rf_sel = sel_is(0);
    std::array<NetId, 4> dec;
    for (unsigned j = 0; j < 4; ++j) dec[j] = sel_is(j + 1);

    // AND-OR candidate mux, bit-sliced across the datapath width.
    std::vector<NetId> muxed(width_);
    for (unsigned i = 0; i < width_; ++i) {
      std::array<NetId, 4> terms;
      for (unsigned j = 0; j < 4; ++j) terms[j] = nl_.and2(dec[j], port.cand[j][i]);
      muxed[i] = nl_.or_n(terms);
    }

    // Core C: optional high-half extraction of the selected 64-bit value.
    std::vector<NetId> shifted = muxed;
    if (c64) {
      const NetId zero = nl_.constant(false);
      for (unsigned i = 0; i < width_; ++i) {
        const NetId high_src = i < 32 ? muxed[i + 32] : zero;
        shifted[i] = nl_.mux2(port.high, high_src, muxed[i]);
      }
    }

    port.out.resize(width_);
    for (unsigned i = 0; i < width_; ++i)
      port.out[i] = nl_.mux2(rf_sel, port.rf[i], shifted[i]);

    outputs_.insert(outputs_.end(), port.out.begin(), port.out.end());
  }
}

void FwdNetlist::encode(const FwdIn& in, EvalState& s) const {
  for (unsigned c = 0; c < 4; ++c) {
    const cpu::FwdPortIn& p = in.port[c];
    const Port& port = ports_[c];
    const auto sel = static_cast<unsigned>(p.sel);
    for (unsigned b = 0; b < 3; ++b)
      s.set_input(nl_.gate(port.sel[b]).aux, (sel >> b) & 1);
    if (port.high != kNoNet) s.set_input(nl_.gate(port.high).aux, p.high_half);
    for (unsigned i = 0; i < width_; ++i)
      s.set_input(nl_.gate(port.rf[i]).aux, (p.rf >> i) & 1);
    for (unsigned j = 0; j < 4; ++j)
      for (unsigned i = 0; i < width_; ++i)
        s.set_input(nl_.gate(port.cand[j][i]).aux, (p.cand[j] >> i) & 1);
  }
}

FwdOut FwdNetlist::decode(const EvalState& s, unsigned lane) const {
  FwdOut out;
  for (unsigned c = 0; c < 4; ++c) {
    u64 v = 0;
    for (unsigned i = 0; i < width_; ++i)
      v |= static_cast<u64>(s.lane_bit(ports_[c].out[i], lane)) << i;
    out.operand[c] = v;
  }
  return out;
}

}  // namespace detstl::netlist
