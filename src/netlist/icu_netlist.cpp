#include "netlist/modules.h"

namespace detstl::netlist {

IcuNetlist::IcuNetlist(CoreKind kind) : kind_(kind), nl_(instance_style(kind)) {
  constexpr unsigned kN = isa::kNumIcuSources;

  // Pending flops first (their Q feeds the combinational cloud).
  for (auto& q : pending_q_) q = nl_.dff();

  // Primary inputs: events, mie, clear, ack (the encode() contract).
  for (auto& n : in_events_) n = nl_.input();
  for (auto& n : in_mie_) n = nl_.input();
  for (auto& n : in_clear_) n = nl_.input();
  in_ack_ = nl_.input();

  // Combinational pending view: set dominates clear.
  std::array<NetId, kN> p_comb{}, active{};
  for (unsigned i = 0; i < kN; ++i) {
    const NetId set = nl_.or2(pending_q_[i], in_events_[i]);
    const NetId clr = nl_.and2(in_clear_[i], nl_.not_(in_events_[i]));
    p_comb[i] = nl_.and2(set, nl_.not_(clr));
    active[i] = nl_.and2(p_comb[i], in_mie_[i]);
  }

  // Fixed-priority select (source 0 = overflow highest).
  std::array<NetId, kN> sel{};
  NetId earlier = nl_.constant(false);
  for (unsigned i = 0; i < kN; ++i) {
    sel[i] = nl_.and2(active[i], nl_.not_(earlier));
    earlier = nl_.or2(earlier, active[i]);
  }

  // Two-stage request synchroniser: the CPU samples the delayed line.
  const NetId raw_irq = nl_.or_n(active);
  const NetId sync1 = nl_.dff();
  const NetId sync2 = nl_.dff();
  nl_.connect_dff(sync1, raw_irq);
  nl_.connect_dff(sync2, sync1);
  irq_out_ = sync2;

  // Cause mapping: core C reports one-hot sources; cores A/B fold
  // {overflow, div-zero} onto bit 0 and {unaligned, software} onto bit 1 —
  // the masking the paper blames for the lower A/B ICU coverage.
  if (kind == CoreKind::kC) {
    cause_out_.assign(sel.begin(), sel.end());
  } else {
    cause_out_.push_back(nl_.or2(sel[0], sel[1]));
    cause_out_.push_back(nl_.or2(sel[2], sel[3]));
  }

  // Next-state: recognition (ack) clears the selected source.
  for (unsigned i = 0; i < kN; ++i) {
    const NetId take = nl_.and2(in_ack_, sel[i]);
    nl_.connect_dff(pending_q_[i], nl_.and2(p_comb[i], nl_.not_(take)));
    pending_out_[i] = p_comb[i];
  }

  outputs_.push_back(irq_out_);
  outputs_.insert(outputs_.end(), cause_out_.begin(), cause_out_.end());
  outputs_.insert(outputs_.end(), pending_out_.begin(), pending_out_.end());
}

void IcuNetlist::encode(const IcuIn& in, EvalState& s) const {
  for (unsigned i = 0; i < isa::kNumIcuSources; ++i) {
    s.set_input(nl_.gate(in_events_[i]).aux, (in.events >> i) & 1);
    s.set_input(nl_.gate(in_mie_[i]).aux, (in.mie >> i) & 1);
    s.set_input(nl_.gate(in_clear_[i]).aux, (in.clear >> i) & 1);
  }
  s.set_input(nl_.gate(in_ack_).aux, in.ack);
}

IcuOut IcuNetlist::decode(const EvalState& s, unsigned lane) const {
  IcuOut out;
  out.irq = s.lane_bit(irq_out_, lane);
  for (unsigned b = 0; b < cause_out_.size(); ++b)
    out.cause |= static_cast<u8>(s.lane_bit(cause_out_[b], lane)) << b;
  for (unsigned i = 0; i < isa::kNumIcuSources; ++i)
    out.pending |= static_cast<u8>(s.lane_bit(pending_out_[i], lane)) << i;
  return out;
}

void IcuNetlist::load_state(EvalState& s, u16 state) const {
  for (unsigned i = 0; i < isa::kNumIcuSources; ++i)
    s.flops[nl_.gate(pending_q_[i]).aux] = (state >> i) & 1 ? ~0ull : 0ull;
  // Synchroniser stages are the two flops allocated after the pending bits.
  s.flops[isa::kNumIcuSources] = (state >> 4) & 1 ? ~0ull : 0ull;
  s.flops[isa::kNumIcuSources + 1] = (state >> 5) & 1 ? ~0ull : 0ull;
}

}  // namespace detstl::netlist
