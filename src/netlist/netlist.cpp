#include "netlist/netlist.h"

namespace detstl::netlist {

NetId Netlist::input() { return add_raw(GateOp::kInput, kNoNet, kNoNet, num_inputs_++); }

NetId Netlist::constant(bool one) {
  return add_raw(one ? GateOp::kConst1 : GateOp::kConst0, kNoNet, kNoNet, 0);
}

NetId Netlist::dff() {
  const NetId q = add_raw(GateOp::kDff, kNoNet, kNoNet, num_flops_++);
  flop_qd_.emplace_back(q, kNoNet);
  return q;
}

void Netlist::connect_dff(NetId q, NetId d) {
  for (auto& [fq, fd] : flop_qd_) {
    if (fq == q) {
      assert(fd == kNoNet && "DFF already connected");
      fd = d;
      return;
    }
  }
  assert(false && "not a DFF net");
}

NetId Netlist::add(GateOp op, NetId a, NetId b) {
  assert(a < gates_.size());
  assert(b == kNoNet || b < gates_.size());
  NetId out = add_raw(op, a, b, 0);
  // Style: random buffer insertion models routing/physical differences
  // between instantiations and enlarges the structural fault list.
  while (style_.buf_prob > 0.0 && rng_.chance(style_.buf_prob))
    out = add_raw(GateOp::kBuf, out, kNoNet, 0);
  return out;
}

NetId Netlist::add_raw(GateOp op, NetId a, NetId b, u32 aux) {
  gates_.push_back(Gate{op, a, b, aux});
  return static_cast<NetId>(gates_.size() - 1);
}

NetId Netlist::and_n(std::span<const NetId> in) {
  assert(!in.empty());
  if (in.size() == 1) return in[0];
  // Balanced tree.
  std::vector<NetId> layer(in.begin(), in.end());
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(and2(layer[i], layer[i + 1]));
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

NetId Netlist::or_n(std::span<const NetId> in) {
  assert(!in.empty());
  if (in.size() == 1) return in[0];
  std::vector<NetId> layer(in.begin(), in.end());
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(or2(layer[i], layer[i + 1]));
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

NetId Netlist::mux2(NetId s, NetId a, NetId b) {
  if (style_.nand_nand) {
    // NAND-NAND decomposition: ~(~(s&a) & ~(~s&b)).
    const NetId ns = not_(s);
    return nand2(nand2(s, a), nand2(ns, b));
  }
  const NetId ns = not_(s);
  return or2(and2(s, a), and2(ns, b));
}

NetId Netlist::eq_n(std::span<const NetId> a, std::span<const NetId> b) {
  assert(a.size() == b.size() && !a.empty());
  std::vector<NetId> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bits.push_back(xnor2(a[i], b[i]));
  return and_n(bits);
}

std::vector<NetId> Netlist::inc_n(std::span<const NetId> a) {
  std::vector<NetId> out;
  out.reserve(a.size());
  NetId carry = constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(xor2(a[i], carry));
    if (i + 1 < a.size()) carry = and2(a[i], carry);
  }
  return out;
}

std::vector<NetId> Netlist::gate_n(std::span<const NetId> a, NetId en) {
  std::vector<NetId> out;
  out.reserve(a.size());
  for (NetId n : a) out.push_back(and2(n, en));
  return out;
}

std::vector<Fault> Netlist::fault_list() const {
  std::vector<Fault> faults;
  faults.reserve(gates_.size() * 2);
  for (NetId n = 0; n < gates_.size(); ++n) {
    const GateOp op = gates_[n].op;
    if (op == GateOp::kConst0 || op == GateOp::kConst1) continue;
    faults.push_back(Fault{n, false});
    faults.push_back(Fault{n, true});
  }
  return faults;
}

EvalState Netlist::make_state() const {
  EvalState s;
  s.value.assign(gates_.size(), 0);
  s.inputs.assign(num_inputs_, 0);
  s.flops.assign(num_flops_, 0);
  s.force0.assign(gates_.size(), 0);
  s.force1.assign(gates_.size(), 0);
  return s;
}

void Netlist::eval(EvalState& s) const {
  assert(s.value.size() == gates_.size());
  for (NetId n = 0; n < gates_.size(); ++n) {
    const Gate& g = gates_[n];
    u64 v = 0;
    switch (g.op) {
      case GateOp::kInput: v = s.inputs[g.aux]; break;
      case GateOp::kConst0: v = 0; break;
      case GateOp::kConst1: v = ~0ull; break;
      case GateOp::kBuf: v = s.value[g.a]; break;
      case GateOp::kNot: v = ~s.value[g.a]; break;
      case GateOp::kAnd: v = s.value[g.a] & s.value[g.b]; break;
      case GateOp::kOr: v = s.value[g.a] | s.value[g.b]; break;
      case GateOp::kNand: v = ~(s.value[g.a] & s.value[g.b]); break;
      case GateOp::kNor: v = ~(s.value[g.a] | s.value[g.b]); break;
      case GateOp::kXor: v = s.value[g.a] ^ s.value[g.b]; break;
      case GateOp::kXnor: v = ~(s.value[g.a] ^ s.value[g.b]); break;
      case GateOp::kDff: v = s.flops[g.aux]; break;
    }
    s.value[n] = (v | s.force1[n]) & ~s.force0[n];
  }
}

void Netlist::clock(EvalState& s) const {
  for (const auto& [q, d] : flop_qd_) {
    assert(d != kNoNet && "unconnected DFF");
    s.flops[gates_[q].aux] = s.value[d];
  }
}

void Netlist::clear_faults(EvalState& s) {
  std::fill(s.force0.begin(), s.force0.end(), 0);
  std::fill(s.force1.begin(), s.force1.end(), 0);
}

void Netlist::inject(EvalState& s, const Fault& f, u64 lane_mask) {
  (f.stuck1 ? s.force1 : s.force0)[f.net] |= lane_mask;
}

}  // namespace detstl::netlist
