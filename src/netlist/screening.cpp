#include "netlist/screening.h"

#include <cassert>

namespace detstl::netlist {

LaneGroupScreen::LaneGroupScreen(const Netlist& nl, std::span<const NetId> outputs,
                                 std::span<const Fault> faults)
    : nl_(&nl),
      outputs_(outputs),
      state_(nl.make_state()),
      first_div_(faults.size(), SIZE_MAX) {
  assert(faults.size() <= kLanesPerGroup);
  const unsigned n = static_cast<unsigned>(faults.size());
  for (unsigned j = 0; j < n; ++j)
    Netlist::inject(state_, faults[j], 1ull << j);
  alive_ = n == 0 ? 0 : (1ull << n) - 1;
}

void LaneGroupScreen::observe(std::size_t call_idx) {
  if (alive_ == 0) return;
  nl_->eval(state_);
  u64 diff = 0;
  for (NetId o : outputs_) {
    const u64 v = state_.value[o];
    const u64 ref = (v >> kLanesPerGroup) & 1 ? ~0ull : 0ull;  // replicate lane 63
    diff |= v ^ ref;
  }
  diff &= alive_;
  while (diff != 0) {
    const unsigned lane = static_cast<unsigned>(__builtin_ctzll(diff));
    diff &= diff - 1;
    alive_ &= ~(1ull << lane);
    first_div_[lane] = call_idx;
  }
}

}  // namespace detstl::netlist
