#pragma once
// Gate-level netlists of the three graded modules, built per core kind and
// per physical-design instance (Style). Each wrapper owns its Netlist plus
// the input/output net bindings and struct<->lane codecs.
//
// The input encodings are the contract between the CPU-side structs
// (cpu::FwdIn / HdcuIn / IcuIn) and the recorded traces replayed by the
// fault-simulation engine; they must stay stable.

#include <array>
#include <vector>

#include "cpu/forward.h"
#include "cpu/hazard.h"
#include "cpu/icu.h"
#include "netlist/netlist.h"

namespace detstl::netlist {

using cpu::FwdIn;
using cpu::FwdOut;
using cpu::HdcuIn;
using cpu::HdcuOut;
using cpu::IcuIn;
using cpu::IcuOut;
using isa::CoreKind;

/// Physical-design instance styles: cores A and B implement the same RTL with
/// different gate decompositions and buffer densities (hence different fault
/// lists), core C has its own 64-bit datapath.
Style instance_style(CoreKind kind);

// -----------------------------------------------------------------------------
// Forwarding Logic (Table II): the EX operand multiplexers.
// -----------------------------------------------------------------------------

class FwdNetlist {
 public:
  explicit FwdNetlist(CoreKind kind);

  CoreKind kind() const { return kind_; }
  unsigned width() const { return width_; }
  const Netlist& nl() const { return nl_; }

  void encode(const FwdIn& in, EvalState& s) const;
  FwdOut decode(const EvalState& s, unsigned lane) const;

  /// Output nets, for divergence screening.
  const std::vector<NetId>& outputs() const { return outputs_; }

 private:
  struct Port {
    std::array<NetId, 3> sel;
    NetId high = kNoNet;  // core C only
    std::vector<NetId> rf;
    std::array<std::vector<NetId>, 4> cand;
    std::vector<NetId> out;
  };

  CoreKind kind_;
  unsigned width_;
  Netlist nl_;
  std::array<Port, 4> ports_;
  std::vector<NetId> outputs_;
};

// -----------------------------------------------------------------------------
// Hazard Detection Control Unit (Table III): comparators, priority, stall.
// -----------------------------------------------------------------------------

class HdcuNetlist {
 public:
  explicit HdcuNetlist(CoreKind kind);

  CoreKind kind() const { return kind_; }
  const Netlist& nl() const { return nl_; }

  void encode(const HdcuIn& in, EvalState& s) const;
  HdcuOut decode(const EvalState& s, unsigned lane) const;

  const std::vector<NetId>& outputs() const { return outputs_; }

 private:
  struct Consumer {
    std::array<NetId, 5> rs;
    NetId used = kNoNet;
    NetId is64 = kNoNet;  // core C only
  };
  struct Producer {
    std::array<NetId, 5> rd;
    NetId writes = kNoNet;
    NetId is64 = kNoNet;  // core C only
    NetId is_load = kNoNet;
  };

  CoreKind kind_;
  Netlist nl_;
  std::array<Consumer, 4> cons_;
  std::array<Producer, 4> prod_;
  std::array<std::array<NetId, 3>, 4> sel_out_;
  std::array<NetId, 4> high_out_;
  NetId stall_out_ = kNoNet;
  std::vector<NetId> outputs_;
};

// -----------------------------------------------------------------------------
// Interrupt Control Unit (Table III): pending flops, priority, cause mapping.
// -----------------------------------------------------------------------------

class IcuNetlist {
 public:
  explicit IcuNetlist(CoreKind kind);

  CoreKind kind() const { return kind_; }
  const Netlist& nl() const { return nl_; }

  void encode(const IcuIn& in, EvalState& s) const;
  IcuOut decode(const EvalState& s, unsigned lane) const;
  /// Seed the pending flops (checkpoint restore), broadcasting to all lanes.
  void load_state(EvalState& s, u16 state) const;

  const std::vector<NetId>& outputs() const { return outputs_; }

 private:
  CoreKind kind_;
  Netlist nl_;
  std::array<NetId, isa::kNumIcuSources> in_events_;
  std::array<NetId, isa::kNumIcuSources> in_mie_;
  std::array<NetId, isa::kNumIcuSources> in_clear_;
  NetId in_ack_ = kNoNet;
  std::array<NetId, isa::kNumIcuSources> pending_q_;
  NetId irq_out_ = kNoNet;
  std::vector<NetId> cause_out_;
  std::array<NetId, isa::kNumIcuSources> pending_out_;
  std::vector<NetId> outputs_;
};

}  // namespace detstl::netlist
