#pragma once
// Structural gate-level netlist with 64-lane bit-parallel evaluation.
//
// This is the fault-simulation substrate standing in for the paper's
// post-layout netlist + commercial fault simulator (see DESIGN.md Sec. 2).
// Netlists are built programmatically (like synthesised RTL) for the three
// graded modules: Forwarding Logic, HDCU and ICU. Evaluation carries 64
// "fault machines" per word: lane i of every net holds the value seen by
// fault machine i, and stuck-at faults are per-lane force masks — the
// classic parallel-fault simulation technique.
//
// Build rules:
//   * nets are created in topological order (a gate's operands must exist),
//   * DFF Q nets may be declared early and get their D input connected later
//     (sequential feedback), via dff()/connect_dff(),
//   * a Style controls the logic-family decomposition and random buffer
//     insertion so that two instantiations of the same function (cores A
//     and B) have different structural fault lists, mirroring "conceptually
//     identical but different physical design".

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/rng.h"

namespace detstl::netlist {

using NetId = u32;
inline constexpr NetId kNoNet = 0xffffffffu;

enum class GateOp : u8 {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kDff,  // Q net; D connected via connect_dff()
};

struct Gate {
  GateOp op = GateOp::kConst0;
  NetId a = kNoNet;
  NetId b = kNoNet;
  u32 aux = 0;  // input index for kInput, flop index for kDff
};

struct Style {
  bool nand_nand = false;  // decompose AND-OR structures into NAND-NAND
  double buf_prob = 0.0;   // probability of inserting a buffer after a gate
  u64 seed = 1;
};

/// Per-simulation evaluation state (the netlist itself stays immutable).
struct EvalState {
  std::vector<u64> value;   // per net, 64 lanes
  std::vector<u64> inputs;  // per primary input, 64 lanes
  std::vector<u64> flops;   // per DFF, 64 lanes
  std::vector<u64> force0;  // per net: lanes forced to 0 (stuck-at-0)
  std::vector<u64> force1;  // per net: lanes forced to 1 (stuck-at-1)

  /// Broadcast a scalar bit to all lanes of input `idx`.
  void set_input(u32 idx, bool v) { inputs[idx] = v ? ~0ull : 0ull; }
  bool lane_bit(NetId net, unsigned lane) const { return (value[net] >> lane) & 1; }
};

/// A stuck-at fault site.
struct Fault {
  NetId net = 0;
  bool stuck1 = false;
};

class Netlist {
 public:
  explicit Netlist(const Style& style = {}) : style_(style), rng_(style.seed) {}

  // --- construction -----------------------------------------------------------
  NetId input();
  NetId constant(bool one);
  NetId buf(NetId a) { return add(GateOp::kBuf, a); }
  NetId not_(NetId a) { return add(GateOp::kNot, a); }
  NetId and2(NetId a, NetId b) { return add(GateOp::kAnd, a, b); }
  NetId or2(NetId a, NetId b) { return add(GateOp::kOr, a, b); }
  NetId nand2(NetId a, NetId b) { return add(GateOp::kNand, a, b); }
  NetId nor2(NetId a, NetId b) { return add(GateOp::kNor, a, b); }
  NetId xor2(NetId a, NetId b) { return add(GateOp::kXor, a, b); }
  NetId xnor2(NetId a, NetId b) { return add(GateOp::kXnor, a, b); }

  /// Declare a flop; returns the Q net. Connect D later.
  NetId dff();
  void connect_dff(NetId q, NetId d);

  // --- composite builders (style-aware) ------------------------------------------
  NetId and_n(std::span<const NetId> in);
  NetId or_n(std::span<const NetId> in);
  /// 2:1 mux: s ? a : b.
  NetId mux2(NetId s, NetId a, NetId b);
  /// Equality of two n-bit vectors.
  NetId eq_n(std::span<const NetId> a, std::span<const NetId> b);
  /// n-bit increment (returns n bits; carry-out dropped).
  std::vector<NetId> inc_n(std::span<const NetId> a);
  /// AND of a vector with a single enable line.
  std::vector<NetId> gate_n(std::span<const NetId> a, NetId en);

  // --- introspection ------------------------------------------------------------
  u32 num_nets() const { return static_cast<u32>(gates_.size()); }
  u32 num_inputs() const { return num_inputs_; }
  u32 num_flops() const { return num_flops_; }
  const Gate& gate(NetId id) const { return gates_[id]; }

  /// Collapsed stuck-at fault list: SA0/SA1 on every net except constants.
  std::vector<Fault> fault_list() const;

  // --- evaluation -----------------------------------------------------------------
  EvalState make_state() const;
  /// Combinational pass: computes every net from inputs + flop values,
  /// applying the fault overlay.
  void eval(EvalState& s) const;
  /// Commit flop state (call after eval, with the same inputs).
  void clock(EvalState& s) const;

  /// Clear the fault overlay / inject one fault into the given lanes.
  static void clear_faults(EvalState& s);
  static void inject(EvalState& s, const Fault& f, u64 lane_mask);

 private:
  NetId add(GateOp op, NetId a, NetId b = kNoNet);
  NetId add_raw(GateOp op, NetId a, NetId b, u32 aux);

  Style style_;
  Rng rng_;
  std::vector<Gate> gates_;
  std::vector<std::pair<NetId, NetId>> flop_qd_;  // (q, d)
  u32 num_inputs_ = 0;
  u32 num_flops_ = 0;
};

}  // namespace detstl::netlist
