#pragma once
// Plain-text table printer used by the benchmark harness to render the paper's
// tables with aligned columns.

#include <string>
#include <vector>

namespace detstl {

class TextTable {
 public:
  /// Starts a table; `title` is printed above the header.
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  TextTable& header(std::vector<std::string> cells);
  TextTable& row(std::vector<std::string> cells);
  /// Inserts a horizontal separator between the rows added before/after.
  TextTable& separator();

  /// Render with box-drawing separators.
  std::string str() const;

  /// Convenience: render and write to stdout.
  void print() const;

  static std::string fmt_int(long long v);          // thousands separators
  static std::string fmt_fixed(double v, int prec); // fixed-point
  static std::string fmt_hex(unsigned long long v); // 0x%08x style

 private:
  struct Line {
    bool is_sep = false;
    std::vector<std::string> cells;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Line> rows_;
};

}  // namespace detstl
