#pragma once
// Bit-manipulation helpers shared across the simulator and the netlist engine.

#include <cstdint>
#include <type_traits>

namespace detstl {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Extract bits [hi:lo] of `v` (inclusive), right-aligned.
constexpr u32 bits(u32 v, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const u32 mask = width >= 32 ? ~0u : ((1u << width) - 1u);
  return (v >> lo) & mask;
}

/// Extract a single bit of `v`.
constexpr u32 bit(u32 v, unsigned pos) { return (v >> pos) & 1u; }

/// Sign-extend the low `width` bits of `v` to 32 bits.
constexpr i32 sext(u32 v, unsigned width) {
  const u32 m = 1u << (width - 1);
  const u32 masked = width >= 32 ? v : (v & ((1u << width) - 1u));
  return static_cast<i32>((masked ^ m) - m);
}

/// A value with exactly the low `width` bits of `v`.
constexpr u32 zext(u32 v, unsigned width) {
  return width >= 32 ? v : (v & ((1u << width) - 1u));
}

/// True when `v` fits in a signed `width`-bit immediate.
constexpr bool fits_signed(i64 v, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True when `v` fits in an unsigned `width`-bit immediate.
constexpr bool fits_unsigned(u64 v, unsigned width) {
  return width >= 64 || v < (u64{1} << width);
}

/// Align `v` down to a multiple of `a` (power of two).
constexpr u32 align_down(u32 v, u32 a) { return v & ~(a - 1u); }

/// Align `v` up to a multiple of `a` (power of two).
constexpr u32 align_up(u32 v, u32 a) { return (v + a - 1u) & ~(a - 1u); }

constexpr bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2u(u32 v) {
  unsigned r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace detstl
