#pragma once
// Single source of the suite version. Recorded by checkpoint manifests
// (fault/checkpoint.cpp) and printed by every tool's --version so CI
// artifacts and on-disk checkpoints can name the producing binary.

namespace detstl {

inline constexpr const char* kDetstlVersion = "0.6.0";

}  // namespace detstl
