#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace detstl {

TextTable& TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Line{false, std::move(cells)});
  return *this;
}

TextTable& TextTable::separator() {
  rows_.push_back(Line{true, {}});
  return *this;
}

std::string TextTable::fmt_int(long long v) {
  const bool neg = v < 0;
  unsigned long long mag = neg ? static_cast<unsigned long long>(-(v + 1)) + 1 : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TextTable::fmt_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::fmt_hex(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%08llx", v);
  return buf;
}

std::string TextTable::str() const {
  // Column widths from header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> w(ncols, 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) w[i] = std::max(w[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_)
    if (!r.is_sep) grow(r.cells);

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (auto width : w) os << std::string(width + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << c << std::string(w[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.is_sep)
      hline();
    else
      emit(r.cells);
  }
  hline();
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace detstl
