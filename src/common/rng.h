#pragma once
// Deterministic pseudo-random number generator (xoshiro256**) used everywhere a
// randomised-but-reproducible choice is needed (property tests, netlist
// instantiation seeds, scenario staggering). std::mt19937 is avoided so that the
// streams are identical across standard-library implementations.

#include <cstdint>

#include "common/bitutil.h"

namespace detstl {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the 4-word state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform value in [0, bound). bound must be > 0.
  u64 below(u64 bound) { return next_u64() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  bool chance(double p) {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace detstl
