#pragma once
// Minimal leveled logger. The simulator is a library, so logging is off by
// default and routed through a single sink that tools can redirect.

#include <sstream>
#include <string>

namespace detstl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line (implementation adds level prefix and newline).
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (active()) log_line(level_, os_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  bool active() const { return level_ >= log_level(); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (active()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

#define DETSTL_LOG(level) ::detstl::detail::LogStream(level)
#define DETSTL_DEBUG DETSTL_LOG(::detstl::LogLevel::kDebug)
#define DETSTL_INFO DETSTL_LOG(::detstl::LogLevel::kInfo)
#define DETSTL_WARN DETSTL_LOG(::detstl::LogLevel::kWarn)
#define DETSTL_ERROR DETSTL_LOG(::detstl::LogLevel::kError)

}  // namespace detstl
