#pragma once
// stlserve orchestration layer (docs/runtime.md "stlserve"): supervised
// multi-process execution of a disturbance or fault-grading campaign.
//
// The unit space — run indices [0, runs) for kind "disturbance", the
// sampled fault list for kind "fault" — is partitioned into one contiguous
// shard per worker. Each shard runs in its own PROCESS — a re-entrant `stlserve
// --worker` invocation (or a plain fork in test mode) — journaling into its
// own per-shard checkpoint subdir (`<work_dir>/shard-NN/`) with the PR 5
// checksummed-shard format. The shard range is deliberately excluded from
// the checkpoint config hash, so every subdir carries the SAME manifest
// identity as the single-process campaign: any worker can resume any
// subdir, and all subdirs merge back into one result.
//
// Supervision ladder (mirrors runtime::StlSupervisor's degradation ladder,
// applied to processes instead of cores):
//
//   spawn ──▶ RUNNING ──exit 0──▶ DONE
//               │
//               ├─ death (crash / nonzero exit / signal)
//               ├─ hang  (heartbeat stale past the budget, or the whole
//               │         shard past its calibrated wall-clock budget)
//               │         → SIGKILL the worker first
//               └─ corrupt journal (worker exits with the mismatch code)
//                         → quarantine the subdir (*.corrupt-N), run fresh
//               then: attempts <= max_respawns → respawn with exponential
//                     backoff, RESUMING the shard's own journal;
//                     attempts exhausted → degrade to in-process execution
//                     of the shard range in the supervisor itself.
//
// The journal IS the IPC: workers print nothing and share nothing but their
// subdir. Post-hoc the supervisor merges every subdir
// (runtime::CampaignSpec::merge_dirs) and re-executes any run no journal
// covers, so the final CampaignResult is byte-identical to the
// single-process run no matter what was killed, hung or corrupted along
// the way.
//
// A SIGTERM/SIGINT to the supervisor is forwarded to the workers; everyone
// drains cooperatively and `stlserve run --resume` continues the campaign
// (tools/cli_util.h exit-code contract, code 3).

#include <string>
#include <vector>

#include "fault/campaign.h"
#include "serve/spec.h"

namespace detstl::serve {

/// Deterministic failure injection for the chaos drill, applied by the
/// worker itself after `after` completed runs. Actions: "kill-after"
/// (raise SIGKILL; first spawn of the shard only), "hang-after" (spin
/// forever; first spawn only), "kill-every" (SIGKILL on EVERY spawn —
/// drives the respawn-exhaustion → in-process-fallback path).
struct ChaosRule {
  unsigned shard = 0;
  std::string action;  // kill-after | hang-after | kill-every
  u64 after = 0;
};

struct ServeConfig {
  std::string work_dir;      // per-campaign checkpoint root (required)
  unsigned workers = 0;      // worker processes; 0 = spec.workers
  bool resume = false;       // resume an interrupted campaign in work_dir
  unsigned max_respawns = 3;      // respawns per shard before fallback
  unsigned backoff_base_ms = 100; // respawn k waits base << (k-1), capped
  unsigned backoff_cap_ms = 2'000;
  /// A worker whose heartbeat has not advanced for this long is declared
  /// hung and SIGKILLed. Also the grace period after spawn.
  unsigned hang_timeout_ms = 10'000;
  /// Whole-shard wall-clock budget; 0 = derived from the observed pace via
  /// shard_budget_ms() once enough heartbeats arrived.
  u64 shard_timeout_ms = 0;
  unsigned poll_ms = 25;     // supervisor poll period
  bool quiet = false;        // suppress supervision notes on stderr
  bool no_fsync = false;     // workers skip per-shard fsync (tests/CI)
  std::vector<ChaosRule> chaos;
  /// Worker executable for spawn-by-exec (`stlserve --worker ...`); empty =
  /// fork without exec and call worker_main directly (test mode — also what
  /// exercises fault::reset_for_child under real fork semantics).
  std::string worker_exe;
};

/// One shard of the partition: the half-open run range [begin, end), its
/// checkpoint subdir and its heartbeat file.
struct ShardPlan {
  u64 begin = 0;
  u64 end = 0;
  std::string dir;
  std::string heartbeat;
};

/// Contiguous partition of [0, runs) into at most `workers` non-empty
/// shards (fewer when runs < workers). Pure; deterministic.
std::vector<ShardPlan> plan_shards(u64 runs, unsigned workers,
                                   const std::string& work_dir);

/// Wall-clock budget for a shard with `remaining_runs` left at an observed
/// pace of `per_run_ms`: generous (16x the expected time plus slack) so
/// only a truly wedged worker trips it, never a slow one. Pure;
/// unit-tested directly.
u64 shard_budget_ms(double per_run_ms, u64 remaining_runs, u64 floor_ms);

/// Everything a worker process needs; built by the supervisor (fork mode)
/// or parsed from `stlserve --worker` flags (exec mode).
struct WorkerArgs {
  ServeSpec spec;
  unsigned shard = 0;
  u64 begin = 0;
  u64 end = 0;
  std::string dir;        // this shard's checkpoint subdir
  /// Touched at startup; one 8-byte little-endian record per completed
  /// unit, carrying the unit's index (run index for "disturbance", the
  /// shard-relative unit ordinal for "fault"). The supervisor reads the
  /// file size for liveness/pace and the last record for its progress and
  /// hang notes.
  std::string heartbeat;
  bool no_fsync = false;
  std::string chaos_action;  // empty = none
  u64 chaos_after = 0;
};

/// Run one shard to completion: resume the subdir's journal when present,
/// execute the remaining runs single-threaded, heartbeat per run. Returns
/// a tools/cli_util.h exit code: 0 done, 1 error, 2 journal mismatch
/// (supervisor quarantines the subdir), 3 drained (resumable).
int worker_main(const WorkerArgs& args);

/// Supervision outcome counters (host-side observability; never part of
/// the campaign's determinism contract).
struct ServeStats {
  unsigned shards = 0;
  unsigned respawns = 0;        // worker deaths answered with a respawn
  unsigned hung_killed = 0;     // workers SIGKILLed by a watchdog
  unsigned dirs_quarantined = 0;  // whole subdirs set aside (*.corrupt-N)
  unsigned fallbacks = 0;       // shards degraded to in-process execution
  u64 merge_reexecuted = 0;     // runs no journal covered, re-run at merge
  u32 shards_corrupt = 0;       // corrupt journal files quarantined
  u64 records_resumed = 0;      // records accepted at the final merge
};

struct ServeResult {
  /// Valid iff !interrupted and the spec's kind is "disturbance".
  runtime::CampaignResult result;
  /// Valid iff !interrupted and the spec's kind is "fault".
  fault::CampaignResult fault_result;
  ServeStats stats;
  bool interrupted = false;  // supervisor drained; resume with --resume
};

/// The campaign's unit count for the spec's kind: spec.runs for
/// "disturbance"; the sampled fault-list size (netlist construction only,
/// nothing simulated) for "fault". What plan_shards partitions.
u64 spec_unit_count(const ServeSpec& spec);

/// Orchestrate the whole campaign: partition, spawn, supervise, heal,
/// merge. Throws std::runtime_error / fault::CheckpointMismatch on
/// unrecoverable setup errors (bad work dir, unknown routine, foreign
/// checkpoint).
ServeResult run_campaign(const ServeSpec& spec, const ServeConfig& cfg);

}  // namespace detstl::serve
