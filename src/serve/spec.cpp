#include "serve/spec.h"

#include <cstdio>
#include <cstdlib>

#include "perf/json.h"

namespace detstl::serve {

namespace {

using perf::json::Value;

/// Range-checked unsigned field; mirrors the bounds of stlrun's flags.
bool take_unsigned(const Value& v, const char* key, u64 lo, u64 hi, u64& out,
                   std::string* err) {
  if (!v.is_number()) {
    if (err) *err = std::string("spec: \"") + key + "\" must be a number";
    return false;
  }
  const u64 n = v.as_u64();
  if (n < lo || n > hi || v.number < 0) {
    if (err)
      *err = std::string("spec: \"") + key + "\" out of range [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return false;
  }
  out = n;
  return true;
}

}  // namespace

bool parse_spec(const std::string& json_text, ServeSpec& out, std::string* err) {
  Value root;
  if (!perf::json::parse(json_text, root, err)) return false;
  if (!root.is_object()) {
    if (err) *err = "spec: top level must be an object";
    return false;
  }
  ServeSpec s;
  for (const auto& [key, v] : root.obj) {
    u64 n = 0;
    if (key == "kind") {
      if (!v.is_string() || (v.str != "disturbance" && v.str != "fault")) {
        if (err) *err = "spec: \"kind\" must be \"disturbance\" or \"fault\"";
        return false;
      }
      s.kind = v.str;
    } else if (key == "module") {
      if (!v.is_string() ||
          (v.str != "fwd" && v.str != "hdcu" && v.str != "icu")) {
        if (err) *err = "spec: \"module\" must be \"fwd\", \"hdcu\" or \"icu\"";
        return false;
      }
      s.module = v.str;
    } else if (key == "stride") {
      if (!take_unsigned(v, "stride", 1, 1024, n, err)) return false;
      s.stride = static_cast<unsigned>(n);
    } else if (key == "seed") {
      // A JSON number or a hex/decimal string ("0xd171" survives tooling
      // that would round a 64-bit number through a double).
      if (v.is_number()) {
        s.seed = v.as_u64();
      } else if (v.is_string() && !v.str.empty()) {
        char* end = nullptr;
        s.seed = std::strtoull(v.str.c_str(), &end, 0);
        if (end == nullptr || *end != '\0') {
          if (err) *err = "spec: \"seed\" string is not a number";
          return false;
        }
      } else {
        if (err) *err = "spec: \"seed\" must be a number or a numeric string";
        return false;
      }
    } else if (key == "runs") {
      if (!take_unsigned(v, "runs", 1, 100'000, n, err)) return false;
      s.runs = static_cast<unsigned>(n);
    } else if (key == "cores") {
      if (!take_unsigned(v, "cores", 1, 3, n, err)) return false;
      s.cores = static_cast<unsigned>(n);
    } else if (key == "routines") {
      if (!v.is_array()) {
        if (err) *err = "spec: \"routines\" must be an array of strings";
        return false;
      }
      s.routines.clear();
      for (const Value& r : v.arr) {
        if (!r.is_string()) {
          if (err) *err = "spec: \"routines\" must be an array of strings";
          return false;
        }
        s.routines.push_back(r.str);
      }
    } else if (key == "events") {
      if (!take_unsigned(v, "events", 0, 1'000, n, err)) return false;
      s.events = static_cast<unsigned>(n);
    } else if (key == "permanent") {
      if (!take_unsigned(v, "permanent", 0, 100, n, err)) return false;
      s.permanent = static_cast<unsigned>(n);
    } else if (key == "stall") {
      if (!take_unsigned(v, "stall", 1, 100'000, n, err)) return false;
      s.stall = static_cast<unsigned>(n);
    } else if (key == "margin") {
      if (!take_unsigned(v, "margin", 0, 10'000, n, err)) return false;
      s.margin = static_cast<unsigned>(n);
    } else if (key == "attempts") {
      if (!take_unsigned(v, "attempts", 1, 16, n, err)) return false;
      s.attempts = static_cast<unsigned>(n);
    } else if (key == "fallback_attempts") {
      if (!take_unsigned(v, "fallback_attempts", 0, 16, n, err)) return false;
      s.fallback_attempts = static_cast<unsigned>(n);
    } else if (key == "workers") {
      if (!take_unsigned(v, "workers", 1, 64, n, err)) return false;
      s.workers = static_cast<unsigned>(n);
    } else if (key == "checkpoint_interval") {
      if (!take_unsigned(v, "checkpoint_interval", 1, 1'000'000, n, err))
        return false;
      s.checkpoint_interval = static_cast<u32>(n);
    } else {
      if (err) *err = "spec: unknown key \"" + key + "\"";
      return false;
    }
  }
  out = std::move(s);
  return true;
}

std::string spec_to_json(const ServeSpec& spec) {
  char seed[32];
  std::snprintf(seed, sizeof seed, "0x%llx",
                static_cast<unsigned long long>(spec.seed));
  std::string routines;
  for (std::size_t i = 0; i < spec.routines.size(); ++i)
    routines += (i == 0 ? "\"" : ", \"") +
                perf::json::escape(spec.routines[i]) + "\"";
  std::string out = "{\n";
  out += "  \"kind\": \"" + perf::json::escape(spec.kind) + "\",\n";
  out += "  \"seed\": \"" + std::string(seed) + "\",\n";
  out += "  \"runs\": " + std::to_string(spec.runs) + ",\n";
  out += "  \"cores\": " + std::to_string(spec.cores) + ",\n";
  out += "  \"routines\": [" + routines + "],\n";
  out += "  \"events\": " + std::to_string(spec.events) + ",\n";
  out += "  \"permanent\": " + std::to_string(spec.permanent) + ",\n";
  out += "  \"stall\": " + std::to_string(spec.stall) + ",\n";
  out += "  \"margin\": " + std::to_string(spec.margin) + ",\n";
  out += "  \"attempts\": " + std::to_string(spec.attempts) + ",\n";
  out += "  \"fallback_attempts\": " + std::to_string(spec.fallback_attempts) +
         ",\n";
  out += "  \"workers\": " + std::to_string(spec.workers) + ",\n";
  out += "  \"checkpoint_interval\": " + std::to_string(spec.checkpoint_interval) +
         ",\n";
  out += "  \"module\": \"" + perf::json::escape(spec.module) + "\",\n";
  out += "  \"stride\": " + std::to_string(spec.stride) + "\n";
  out += "}\n";
  return out;
}

std::string example_spec_json() {
  ServeSpec s;
  s.seed = 0xD171;
  s.runs = 200;
  s.cores = 3;
  s.routines = {"alu", "shifter", "branch"};
  s.events = 8;
  s.permanent = 30;
  s.workers = 4;
  return spec_to_json(s);
}

runtime::CampaignSpec to_campaign_spec(const ServeSpec& spec) {
  runtime::CampaignSpec cs;
  cs.seed = spec.seed;
  cs.runs = spec.runs;
  cs.cores = spec.cores;
  cs.routines = spec.routines;
  cs.disturb.count = spec.events;
  cs.disturb.permanent_chance = spec.permanent / 100.0;
  cs.disturb.stall_cycles = spec.stall;
  cs.supervisor.margin_percent = spec.margin;
  cs.supervisor.max_attempts = spec.attempts;
  cs.supervisor.fallback_attempts = spec.fallback_attempts;
  return cs;
}

}  // namespace detstl::serve
