#pragma once
// JSON campaign spec for the stlserve orchestrator (docs/runtime.md
// "stlserve"). A spec names WHAT to run — the campaign parameters the
// single-process tools take on their command lines — plus the default
// worker count; HOW it is supervised (respawns, watchdog budgets, chaos
// injection) lives in serve::ServeConfig and never enters the spec, so one
// spec file describes the same campaign on a laptop and on a fan-out host.
//
// Two campaign kinds are served:
//   "disturbance" — runtime::run_disturbance_campaign over [0, runs);
//                   unit space = run indices.
//   "fault"       — a stuck-at fault-grading campaign (fault::Campaign)
//                   over one module of core 0; unit space = the sampled
//                   fault list, partitioned by fault index exactly like
//                   tests/test_serve.cpp's range-partition contract.
//
// Example (serve::example_spec_json()):
//
//   {
//     "kind": "disturbance",
//     "seed": "0xd171",
//     "runs": 200,
//     "cores": 3,
//     "routines": ["alu", "shifter"],
//     "events": 8,
//     "permanent": 30,
//     "workers": 4
//   }
//
// Parsing is strict: unknown keys are rejected (a typo must not silently
// run a different campaign), numbers are range-checked with the same
// bounds as stlrun's flags, and `seed` accepts a JSON number or a hex
// string. The parsed spec maps 1:1 onto runtime::CampaignSpec via
// to_campaign_spec(), so `stlserve run` and `stlrun campaign` produce
// byte-identical reports for the same parameters.

#include <string>
#include <vector>

#include "runtime/campaign.h"

namespace detstl::serve {

struct ServeSpec {
  std::string kind = "disturbance";  // "disturbance" | "fault"
  u64 seed = 0xD15B0001;
  unsigned runs = 16;
  unsigned cores = 3;
  std::vector<std::string> routines;  // empty = stlrun's default mix
  unsigned events = 6;                // disturbances drawn per run
  unsigned permanent = 0;             // kFlashCorrupt chance, percent
  unsigned stall = 150;               // kBusStall burst length, cycles
  unsigned margin = 250;              // watchdog margin, percent
  unsigned attempts = 3;              // cached-rung attempts
  unsigned fallback_attempts = 2;     // uncacheable-rung attempts
  unsigned workers = 2;               // default worker-process count
  u32 checkpoint_interval = 16;       // runs between shard flushes
  /// Fault kind only (ignored by "disturbance"): the graded module and the
  /// deterministic sampling stride over the collapsed fault list
  /// (fault::CampaignConfig::fault_stride; 1 = exhaustive).
  std::string module = "fwd";  // fwd | hdcu | icu
  unsigned stride = 8;
};

/// Parse a JSON spec. Returns false with a one-line reason in `err`
/// (when non-null) on syntax errors, unknown keys, wrong types or
/// out-of-range values.
bool parse_spec(const std::string& json_text, ServeSpec& out, std::string* err);

/// Canonical JSON serialisation of a spec (round-trips through
/// parse_spec). Persisted into the work dir as campaign-spec.json so
/// `stlserve run --resume` needs no --spec.
std::string spec_to_json(const ServeSpec& spec);

/// A commented-free, runnable example spec for `stlserve print-spec`.
std::string example_spec_json();

/// The runtime::CampaignSpec this spec describes. threads, checkpoint,
/// shard range and hooks are left at their defaults — the orchestrator
/// and its workers fill those in per shard.
runtime::CampaignSpec to_campaign_spec(const ServeSpec& spec);

}  // namespace detstl::serve
