#include "serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <thread>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "fault/checkpoint.h"

namespace fs = std::filesystem;

namespace detstl::serve {

namespace {

constexpr const char* kSpecFileName = "campaign-spec.json";

using Clock = std::chrono::steady_clock;

u64 ms_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
}

std::uintmax_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t n = fs::file_size(path, ec);
  return ec ? 0 : n;
}

void touch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    throw std::runtime_error("stlserve: cannot create " + path);
  std::fclose(f);
}

void append_byte(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return;  // heartbeat loss degrades to the wall-clock budget
  std::fputc('.', f);
  std::fclose(f);
}

}  // namespace

std::vector<ShardPlan> plan_shards(u64 runs, unsigned workers,
                                   const std::string& work_dir) {
  std::vector<ShardPlan> out;
  const u64 n = std::min<u64>(std::max(1u, workers), std::max<u64>(1, runs));
  u64 begin = 0;
  for (u64 k = 0; k < n; ++k) {
    const u64 size = runs / n + (k < runs % n ? 1 : 0);
    if (size == 0) continue;
    char name[32];
    std::snprintf(name, sizeof name, "shard-%02u", static_cast<unsigned>(k));
    ShardPlan p;
    p.begin = begin;
    p.end = begin + size;
    p.dir = work_dir + "/" + name;
    p.heartbeat = p.dir + "/heartbeat";
    begin = p.end;
    out.push_back(std::move(p));
  }
  return out;
}

u64 shard_budget_ms(double per_run_ms, u64 remaining_runs, u64 floor_ms) {
  if (per_run_ms <= 0.0) return floor_ms;
  const double budget =
      16.0 * per_run_ms * static_cast<double>(std::max<u64>(1, remaining_runs)) +
      1'000.0;
  return std::max<u64>(floor_ms, static_cast<u64>(budget));
}

int worker_main(const WorkerArgs& a) {
  try {
    fs::create_directories(a.dir);
    touch(a.heartbeat);

    runtime::CampaignSpec cs = to_campaign_spec(a.spec);
    cs.threads = 1;  // process-level parallelism only; keeps workers preemptible
    cs.unit_begin = a.begin;
    cs.unit_end = a.end;
    cs.checkpoint.dir = a.dir;
    cs.checkpoint.interval = a.spec.checkpoint_interval;
    cs.checkpoint.fsync =
        a.no_fsync ? fault::FsyncPolicy::kNone : fault::FsyncPolicy::kEveryShard;
    cs.checkpoint.resume = fault::checkpoint_present(cs.checkpoint);
    cs.interrupt = &fault::global_interrupt();
    fault::install_drain_handlers();

    std::atomic<u64> completed{0};
    cs.on_run_complete = [&a, &completed](u64) {
      append_byte(a.heartbeat);
      const u64 c = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (a.chaos_action.empty() || c != a.chaos_after) return;
      if (a.chaos_action == "kill-after" || a.chaos_action == "kill-every") {
#ifndef _WIN32
        ::kill(::getpid(), SIGKILL);  // a real crash: no drain, no final flush
#endif
      } else if (a.chaos_action == "hang-after") {
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(10));
      }
    };

    const runtime::CampaignResult r = runtime::run_disturbance_campaign(cs);
    return r.ckpt.interrupted ? 3 : 0;
  } catch (const fault::CheckpointMismatch& e) {
    std::fprintf(stderr, "stlserve worker: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stlserve worker: %s\n", e.what());
    return 1;
  }
}

#ifdef _WIN32

ServeResult run_campaign(const ServeSpec&, const ServeConfig&) {
  throw std::runtime_error("stlserve: multi-process supervision requires POSIX");
}

#else

namespace {

enum class ShardState : u8 { kPending, kRunning, kDone, kFailed };

struct Shard {
  ShardPlan plan;
  ShardState state = ShardState::kPending;
  unsigned spawns = 0;  // 1 initial + respawns
  pid_t pid = -1;
  Clock::time_point spawn_time;
  Clock::time_point next_spawn;  // backoff deadline (kPending)
  std::uintmax_t hb_size = 0;
  Clock::time_point hb_change;
  bool chaos_spent = false;  // one-shot chaos rules already delivered
};

struct Supervisor {
  Supervisor(const ServeSpec& s, const ServeConfig& c) : spec(s), cfg(c) {}

  const ServeSpec& spec;
  const ServeConfig& cfg;
  std::string spec_path;
  std::vector<Shard> shards;
  std::vector<std::uintmax_t> hb_base;  // heartbeat bytes at supervisor start
  ServeStats stats;
  Clock::time_point t0 = Clock::now();

  void note(const char* fmt, ...) const
      __attribute__((format(printf, 2, 3))) {
    if (cfg.quiet) return;
    va_list ap;
    va_start(ap, fmt);
    std::fputs("stlserve: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
  }

  const ChaosRule* chaos_for(unsigned shard_idx, const Shard& s) const {
    for (const ChaosRule& r : cfg.chaos) {
      if (r.shard != shard_idx) continue;
      if (r.action == "kill-every") return &r;
      if (!s.chaos_spent) return &r;  // kill-after / hang-after: first spawn only
    }
    return nullptr;
  }

  WorkerArgs worker_args(unsigned shard_idx, const ChaosRule* chaos) const {
    const Shard& s = shards[shard_idx];
    WorkerArgs wa;
    wa.spec = spec;
    wa.shard = shard_idx;
    wa.begin = s.plan.begin;
    wa.end = s.plan.end;
    wa.dir = s.plan.dir;
    wa.heartbeat = s.plan.heartbeat;
    wa.no_fsync = cfg.no_fsync;
    if (chaos != nullptr) {
      wa.chaos_action = chaos->action;
      wa.chaos_after = chaos->after;
    }
    return wa;
  }

  void spawn(unsigned shard_idx) {
    Shard& s = shards[shard_idx];
    const ChaosRule* chaos = chaos_for(shard_idx, s);
    const WorkerArgs wa = worker_args(shard_idx, chaos);
    if (chaos != nullptr) s.chaos_spent = true;

    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("stlserve: fork failed");
    if (pid == 0) {
      if (cfg.worker_exe.empty()) {
        // Test mode: run the worker in the forked image directly. The child
        // inherited the parent's handler table and installed-flag — exactly
        // what reset_for_child exists to fix.
        fault::reset_for_child();
        ::_exit(worker_main(wa));
      }
      char shard_s[16], begin_s[24], end_s[24], after_s[24];
      std::snprintf(shard_s, sizeof shard_s, "%u", shard_idx);
      std::snprintf(begin_s, sizeof begin_s, "%llu",
                    static_cast<unsigned long long>(wa.begin));
      std::snprintf(end_s, sizeof end_s, "%llu",
                    static_cast<unsigned long long>(wa.end));
      std::string chaos_arg;
      if (!wa.chaos_action.empty()) {
        std::snprintf(after_s, sizeof after_s, "%llu",
                      static_cast<unsigned long long>(wa.chaos_after));
        chaos_arg = wa.chaos_action + ":" + after_s;
      }
      std::vector<const char*> argv = {
          cfg.worker_exe.c_str(), "--worker",
          "--spec",               spec_path.c_str(),
          "--shard",              shard_s,
          "--begin",              begin_s,
          "--end",                end_s,
          "--dir",                wa.dir.c_str(),
          "--heartbeat",          wa.heartbeat.c_str(),
      };
      if (wa.no_fsync) argv.push_back("--no-fsync");
      if (!chaos_arg.empty()) {
        argv.push_back("--chaos-self");
        argv.push_back(chaos_arg.c_str());
      }
      argv.push_back(nullptr);
      ::execv(cfg.worker_exe.c_str(),
              const_cast<char* const*>(
                  const_cast<const char* const*>(argv.data())));
      ::_exit(127);
    }
    s.pid = pid;
    s.state = ShardState::kRunning;
    ++s.spawns;
    s.spawn_time = s.hb_change = Clock::now();
    s.hb_size = file_size_or_zero(s.plan.heartbeat);
    note("shard %u [%llu, %llu) -> pid %ld (spawn %u)", shard_idx,
         static_cast<unsigned long long>(s.plan.begin),
         static_cast<unsigned long long>(s.plan.end), static_cast<long>(pid),
         s.spawns);
  }

  /// A running worker ended (or was ended): decide Done / respawn /
  /// quarantine+respawn / Failed. `code` >= 0 is an exit code, < 0 the
  /// negated terminating signal.
  void conclude(unsigned shard_idx, int code) {
    Shard& s = shards[shard_idx];
    s.pid = -1;
    if (code == 0) {
      s.state = ShardState::kDone;
      note("shard %u done", shard_idx);
      return;
    }
    if (code == 2) {
      // The worker refused its own journal (corrupt manifest, foreign
      // campaign). Set the whole subdir aside as evidence and start the
      // shard over on a clean one.
      std::error_code ec;
      fs::rename(s.plan.dir,
                 s.plan.dir + ".corrupt-" + std::to_string(s.spawns), ec);
      ++stats.dirs_quarantined;
      note("shard %u: journal rejected — subdir quarantined", shard_idx);
    }
    if (s.spawns > cfg.max_respawns) {
      s.state = ShardState::kFailed;
      note("shard %u: %u spawns exhausted (last %s %d) — will fall back "
           "in-process",
           shard_idx, s.spawns, code < 0 ? "signal" : "exit",
           code < 0 ? -code : code);
      return;
    }
    const u64 shift = std::min<unsigned>(s.spawns - 1, 16);
    const u64 backoff = std::min<u64>(
        static_cast<u64>(cfg.backoff_base_ms) << shift, cfg.backoff_cap_ms);
    s.state = ShardState::kPending;
    s.next_spawn = Clock::now() + std::chrono::milliseconds(backoff);
    ++stats.respawns;
    note("shard %u: worker %s %d — respawn %u in %llu ms", shard_idx,
         code < 0 ? "died on signal" : "exited", code < 0 ? -code : code,
         s.spawns, static_cast<unsigned long long>(backoff));
  }

  void reap() {
    for (unsigned k = 0; k < shards.size(); ++k) {
      Shard& s = shards[k];
      if (s.state != ShardState::kRunning) continue;
      int st = 0;
      const pid_t r = ::waitpid(s.pid, &st, WNOHANG);
      if (r != s.pid) continue;
      conclude(k, WIFEXITED(st) ? WEXITSTATUS(st)
                                : -(WIFSIGNALED(st) ? WTERMSIG(st) : SIGKILL));
    }
  }

  /// Campaign-wide pace from heartbeat growth since this supervisor
  /// started; 0 until enough beats arrived to be meaningful.
  double observed_per_run_ms(Clock::time_point now) const {
    u64 beats = 0;
    for (unsigned k = 0; k < shards.size(); ++k) {
      const std::uintmax_t sz = shards[k].hb_size;
      beats += sz > hb_base[k] ? sz - hb_base[k] : 0;
    }
    if (beats < 8) return 0.0;
    return static_cast<double>(ms_between(t0, now)) / static_cast<double>(beats);
  }

  void watchdogs() {
    const Clock::time_point now = Clock::now();
    const double pace = observed_per_run_ms(now);
    for (unsigned k = 0; k < shards.size(); ++k) {
      Shard& s = shards[k];
      if (s.state != ShardState::kRunning) continue;
      const std::uintmax_t sz = file_size_or_zero(s.plan.heartbeat);
      if (sz != s.hb_size) {
        s.hb_size = sz;
        s.hb_change = now;
      }
      const u64 stale_ms = ms_between(std::max(s.spawn_time, s.hb_change), now);
      bool hung = stale_ms > cfg.hang_timeout_ms;
      if (!hung) {
        u64 budget = cfg.shard_timeout_ms;
        if (budget == 0 && pace > 0.0) {
          const u64 total = s.plan.end - s.plan.begin;
          const u64 done_runs = std::min<u64>(s.hb_size, total);
          budget = shard_budget_ms(pace, total - done_runs, cfg.hang_timeout_ms);
        }
        hung = budget != 0 && ms_between(s.spawn_time, now) > budget;
      }
      if (!hung) continue;
      // SIGKILL first: a wedged simulator loop never sees SIGTERM's
      // cooperative drain, and the journal is crash-safe by construction.
      ::kill(s.pid, SIGKILL);
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      ++stats.hung_killed;
      note("shard %u: hung (no heartbeat for %llu ms) — killed pid %ld", k,
           static_cast<unsigned long long>(stale_ms), static_cast<long>(s.pid));
      conclude(k, -SIGKILL);
    }
  }

  /// Forward the drain to every worker, reap them all, leave the campaign
  /// resumable.
  void drain_children() {
    for (Shard& s : shards) {
      if (s.state != ShardState::kRunning) continue;
      ::kill(s.pid, SIGTERM);
    }
    for (Shard& s : shards) {
      if (s.state != ShardState::kRunning) continue;
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      s.pid = -1;
      s.state = ShardState::kPending;
    }
    note("interrupted — campaign is resumable with --resume");
  }

  bool supervise() {  // false = interrupted
    while (true) {
      if (fault::global_interrupt().stop_requested()) {
        drain_children();
        return false;
      }
      reap();
      watchdogs();
      const Clock::time_point now = Clock::now();
      unsigned running = 0;
      for (const Shard& s : shards)
        running += s.state == ShardState::kRunning ? 1 : 0;
      const unsigned cap =
          cfg.workers != 0 ? cfg.workers : std::max(1u, spec.workers);
      bool pending = false;
      for (unsigned k = 0; k < shards.size(); ++k) {
        Shard& s = shards[k];
        if (s.state != ShardState::kPending) continue;
        pending = true;
        if (running >= cap || now < s.next_spawn) continue;
        spawn(k);
        ++running;
      }
      if (!pending && running == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.poll_ms));
    }
  }
};

}  // namespace

ServeResult run_campaign(const ServeSpec& spec, const ServeConfig& cfg) {
  if (cfg.work_dir.empty())
    throw std::runtime_error("stlserve: a work directory is required");
  fs::create_directories(cfg.work_dir);
  const std::string spec_path = cfg.work_dir + "/" + kSpecFileName;
  if (!cfg.resume && fs::exists(spec_path))
    throw std::runtime_error("stlserve: '" + cfg.work_dir +
                             "' already holds a campaign — resume it or point "
                             "at a clean directory");
  if (!fs::exists(spec_path)) {
    std::FILE* f = std::fopen(spec_path.c_str(), "wb");
    if (f == nullptr)
      throw std::runtime_error("stlserve: cannot write " + spec_path);
    const std::string json = spec_to_json(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  fault::install_drain_handlers();

  Supervisor sup{spec, cfg};
  sup.spec_path = spec_path;
  for (ShardPlan& p : plan_shards(spec.runs, cfg.workers != 0 ? cfg.workers
                                                              : spec.workers,
                                  cfg.work_dir)) {
    Shard sh;
    sh.plan = std::move(p);
    sup.shards.push_back(std::move(sh));
  }
  sup.stats.shards = static_cast<unsigned>(sup.shards.size());
  sup.hb_base.resize(sup.shards.size());
  for (unsigned k = 0; k < sup.shards.size(); ++k)
    sup.hb_base[k] = file_size_or_zero(sup.shards[k].plan.heartbeat);

  ServeResult out;
  if (!sup.supervise()) {
    out.stats = sup.stats;
    out.interrupted = true;
    return out;
  }

  // Degradation floor: shards whose respawn budget ran dry execute in THIS
  // process, resuming their own journal — the campaign completes as long as
  // the supervisor itself survives.
  for (unsigned k = 0; k < sup.shards.size(); ++k) {
    Shard& s = sup.shards[k];
    if (s.state != ShardState::kFailed) continue;
    ++sup.stats.fallbacks;
    sup.note("shard %u: executing in-process (degraded)", k);
    const int rc = worker_main(sup.worker_args(k, nullptr));
    if (rc == 3) {
      out.stats = sup.stats;
      out.interrupted = true;
      return out;
    }
    if (rc != 0)
      throw std::runtime_error("stlserve: shard " + std::to_string(k) +
                               " failed even in-process (exit " +
                               std::to_string(rc) + ")");
    s.state = ShardState::kDone;
  }

  // Post-hoc merge: load every shard journal; any run no journal covers is
  // re-executed right here (runtime::CampaignSpec::merge_dirs contract), so
  // the result is byte-identical to the single-process campaign.
  runtime::CampaignSpec ms = to_campaign_spec(spec);
  for (const Shard& s : sup.shards) ms.merge_dirs.push_back(s.plan.dir);
  ms.interrupt = &fault::global_interrupt();
  out.result = runtime::run_disturbance_campaign(ms);
  if (out.result.ckpt.interrupted) {
    out.stats = sup.stats;
    out.interrupted = true;
    return out;
  }
  sup.stats.records_resumed = out.result.ckpt.records_resumed;
  sup.stats.shards_corrupt = out.result.ckpt.shards_corrupt;
  sup.stats.merge_reexecuted =
      spec.runs >= out.result.ckpt.records_resumed
          ? spec.runs - out.result.ckpt.records_resumed
          : 0;
  if (sup.stats.merge_reexecuted != 0)
    sup.note("merge: %llu run(s) had no journal record — re-executed",
             static_cast<unsigned long long>(sup.stats.merge_reexecuted));
  out.stats = sup.stats;
  return out;
}

#endif  // _WIN32

}  // namespace detstl::serve
