#include "serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <thread>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/checkpoint.h"
#include "netlist/modules.h"

namespace fs = std::filesystem;

namespace detstl::serve {

namespace {

constexpr const char* kSpecFileName = "campaign-spec.json";

using Clock = std::chrono::steady_clock;

u64 ms_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
}

std::uintmax_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t n = fs::file_size(path, ec);
  return ec ? 0 : n;
}

void touch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    throw std::runtime_error("stlserve: cannot create " + path);
  std::fclose(f);
}

/// One heartbeat record = one completed unit, 8 bytes little-endian
/// carrying the unit's index. Size/8 is the beat count the watchdogs and
/// the pace estimator use; the last record names the current run.
constexpr std::uintmax_t kHeartbeatRecordBytes = 8;

void append_run_index(const std::string& path, u64 unit) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return;  // heartbeat loss degrades to the wall-clock budget
  u8 rec[kHeartbeatRecordBytes];
  for (unsigned i = 0; i < sizeof rec; ++i)
    rec[i] = static_cast<u8>(unit >> (8 * i));
  std::fwrite(rec, 1, sizeof rec, f);
  std::fclose(f);
}

/// Unit index of the last fully-written heartbeat record; false when the
/// file is missing or holds no complete record yet. A trailing partial
/// record (worker killed mid-write) is simply ignored.
bool last_run_index(const std::string& path, u64& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = false;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long sz = std::ftell(f);
    const long rec = static_cast<long>(kHeartbeatRecordBytes);
    const long whole = sz > 0 ? sz - sz % rec : 0;
    u8 buf[kHeartbeatRecordBytes];
    if (whole >= rec && std::fseek(f, whole - rec, SEEK_SET) == 0 &&
        std::fread(buf, 1, sizeof buf, f) == sizeof buf) {
      out = 0;
      for (unsigned i = 0; i < sizeof buf; ++i)
        out |= static_cast<u64>(buf[i]) << (8 * i);
      ok = true;
    }
  }
  std::fclose(f);
  return ok;
}

// ---------------------------------------------------------------------------
// Fault-kind plumbing: the shard recipe unit-tested by tests/test_serve.cpp
// (ServeFaultShards) — single-core plain-wrapper scenario over one graded
// module, shard ranges over the sampled fault list, post-hoc merge.
// ---------------------------------------------------------------------------

fault::Module module_of(const ServeSpec& spec) {
  if (spec.module == "hdcu") return fault::Module::kHdcu;
  if (spec.module == "icu") return fault::Module::kIcu;
  return fault::Module::kFwd;
}

std::unique_ptr<core::SelfTestRoutine> routine_for(fault::Module m) {
  switch (m) {
    case fault::Module::kIcu: return core::make_icu_test();
    // The hazard unit is graded under the forwarding routine's
    // perf-counter variant, whose stalls exercise it (tests/test_fault.cpp).
    case fault::Module::kHdcu: return core::make_fwd_test(true);
    case fault::Module::kFwd: break;
  }
  return core::make_fwd_test(false);
}

/// Outcome-relevant fault-campaign fields shared by every shard worker and
/// the final merge; unit range, checkpoint dir and hooks are per-caller.
fault::CampaignConfig fault_config(const ServeSpec& spec) {
  fault::CampaignConfig cc;
  cc.module = module_of(spec);
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = std::max(1u, spec.stride);
  return cc;
}

fault::SocFactory fault_factory(const ServeSpec& spec) {
  const auto routine = routine_for(module_of(spec));
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "serve"};
  auto tests = exp::build_scenario_tests(*routine, core::WrapperKind::kPlain,
                                         sc, 0, /*use_perf_counters=*/false);
  return exp::scenario_factory(std::move(tests), sc, 0);
}

}  // namespace

u64 spec_unit_count(const ServeSpec& spec) {
  if (spec.kind != "fault") return spec.runs;
  const auto count = [&spec](const netlist::Netlist& nl) {
    // The campaign's sampling rule (fault/campaign.cpp): stride over NETS,
    // keep both stuck-at polarities of each sampled net.
    const u64 total = nl.fault_list().size();
    u64 n = 0;
    for (u64 i = 0; i < total; ++i)
      if ((i / 2) % std::max(1u, spec.stride) == 0) ++n;
    return n;
  };
  switch (module_of(spec)) {
    case fault::Module::kHdcu:
      return count(netlist::HdcuNetlist(isa::CoreKind::kA).nl());
    case fault::Module::kIcu:
      return count(netlist::IcuNetlist(isa::CoreKind::kA).nl());
    case fault::Module::kFwd: break;
  }
  return count(netlist::FwdNetlist(isa::CoreKind::kA).nl());
}

std::vector<ShardPlan> plan_shards(u64 runs, unsigned workers,
                                   const std::string& work_dir) {
  std::vector<ShardPlan> out;
  const u64 n = std::min<u64>(std::max(1u, workers), std::max<u64>(1, runs));
  u64 begin = 0;
  for (u64 k = 0; k < n; ++k) {
    const u64 size = runs / n + (k < runs % n ? 1 : 0);
    if (size == 0) continue;
    char name[32];
    std::snprintf(name, sizeof name, "shard-%02u", static_cast<unsigned>(k));
    ShardPlan p;
    p.begin = begin;
    p.end = begin + size;
    p.dir = work_dir + "/" + name;
    p.heartbeat = p.dir + "/heartbeat";
    begin = p.end;
    out.push_back(std::move(p));
  }
  return out;
}

u64 shard_budget_ms(double per_run_ms, u64 remaining_runs, u64 floor_ms) {
  if (per_run_ms <= 0.0) return floor_ms;
  const double budget =
      16.0 * per_run_ms * static_cast<double>(std::max<u64>(1, remaining_runs)) +
      1'000.0;
  return std::max<u64>(floor_ms, static_cast<u64>(budget));
}

int worker_main(const WorkerArgs& a) {
  try {
    fs::create_directories(a.dir);
    touch(a.heartbeat);
    fault::install_drain_handlers();

    // Heartbeat + chaos, shared by both kinds: one run-index record per
    // completed unit, then the chaos self-destruct when its count is due.
    std::atomic<u64> completed{0};
    const auto beat = [&a, &completed](u64 unit) {
      append_run_index(a.heartbeat, unit);
      const u64 c = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (a.chaos_action.empty() || c != a.chaos_after) return;
      if (a.chaos_action == "kill-after" || a.chaos_action == "kill-every") {
#ifndef _WIN32
        ::kill(::getpid(), SIGKILL);  // a real crash: no drain, no final flush
#endif
      } else if (a.chaos_action == "hang-after") {
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(10));
      }
    };

    if (a.spec.kind == "fault") {
      fault::CampaignConfig cc = fault_config(a.spec);
      cc.threads = 1;  // process-level parallelism only
      cc.unit_begin = a.begin;
      cc.unit_end = a.end;
      cc.checkpoint.dir = a.dir;
      cc.checkpoint.interval = a.spec.checkpoint_interval;
      cc.checkpoint.fsync = a.no_fsync ? fault::FsyncPolicy::kNone
                                       : fault::FsyncPolicy::kEveryShard;
      cc.checkpoint.resume = fault::checkpoint_present(cc.checkpoint);
      cc.interrupt = &fault::global_interrupt();
      // The fault campaign reports progress in phase units (lane groups,
      // then faults) rather than per-run callbacks; beat once per completed
      // unit with the shard-relative ordinal so the supervisor's liveness,
      // pace and "current run" views work unchanged.
      cc.progress_every = 1;
      u64 phase_done = 0;
      auto last_phase = fault::CampaignPhase::kGoodRun;
      cc.progress = [&](const fault::CampaignProgress& p) {
        if (p.phase != last_phase) {
          last_phase = p.phase;
          phase_done = 0;
        }
        if (p.phase == fault::CampaignPhase::kGoodRun) return;  // cycle units
        for (; phase_done < p.done; ++phase_done)
          beat(a.begin + phase_done);
      };
      fault::Campaign campaign(cc, fault_factory(a.spec));
      const fault::CampaignResult r = campaign.run();
      return r.ckpt.interrupted ? 3 : 0;
    }

    runtime::CampaignSpec cs = to_campaign_spec(a.spec);
    cs.threads = 1;  // process-level parallelism only; keeps workers preemptible
    cs.unit_begin = a.begin;
    cs.unit_end = a.end;
    cs.checkpoint.dir = a.dir;
    cs.checkpoint.interval = a.spec.checkpoint_interval;
    cs.checkpoint.fsync =
        a.no_fsync ? fault::FsyncPolicy::kNone : fault::FsyncPolicy::kEveryShard;
    cs.checkpoint.resume = fault::checkpoint_present(cs.checkpoint);
    cs.interrupt = &fault::global_interrupt();
    cs.on_run_complete = [&beat](u64 run) { beat(run); };

    const runtime::CampaignResult r = runtime::run_disturbance_campaign(cs);
    return r.ckpt.interrupted ? 3 : 0;
  } catch (const fault::CheckpointMismatch& e) {
    std::fprintf(stderr, "stlserve worker: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stlserve worker: %s\n", e.what());
    return 1;
  }
}

#ifdef _WIN32

ServeResult run_campaign(const ServeSpec&, const ServeConfig&) {
  throw std::runtime_error("stlserve: multi-process supervision requires POSIX");
}

#else

namespace {

enum class ShardState : u8 { kPending, kRunning, kDone, kFailed };

struct Shard {
  ShardPlan plan;
  ShardState state = ShardState::kPending;
  unsigned spawns = 0;  // 1 initial + respawns
  pid_t pid = -1;
  Clock::time_point spawn_time;
  Clock::time_point next_spawn;  // backoff deadline (kPending)
  std::uintmax_t hb_size = 0;
  Clock::time_point hb_change;
  Clock::time_point last_progress_note;  // throttles the per-shard note
  bool chaos_spent = false;  // one-shot chaos rules already delivered
};

/// Minimum spacing of a shard's "at run N" progress notes.
constexpr u64 kProgressNoteMs = 2'000;

struct Supervisor {
  Supervisor(const ServeSpec& s, const ServeConfig& c) : spec(s), cfg(c) {}

  const ServeSpec& spec;
  const ServeConfig& cfg;
  std::string spec_path;
  std::vector<Shard> shards;
  std::vector<std::uintmax_t> hb_base;  // heartbeat bytes at supervisor start
  ServeStats stats;
  Clock::time_point t0 = Clock::now();

  void note(const char* fmt, ...) const
      __attribute__((format(printf, 2, 3))) {
    if (cfg.quiet) return;
    va_list ap;
    va_start(ap, fmt);
    std::fputs("stlserve: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
  }

  const ChaosRule* chaos_for(unsigned shard_idx, const Shard& s) const {
    for (const ChaosRule& r : cfg.chaos) {
      if (r.shard != shard_idx) continue;
      if (r.action == "kill-every") return &r;
      if (!s.chaos_spent) return &r;  // kill-after / hang-after: first spawn only
    }
    return nullptr;
  }

  WorkerArgs worker_args(unsigned shard_idx, const ChaosRule* chaos) const {
    const Shard& s = shards[shard_idx];
    WorkerArgs wa;
    wa.spec = spec;
    wa.shard = shard_idx;
    wa.begin = s.plan.begin;
    wa.end = s.plan.end;
    wa.dir = s.plan.dir;
    wa.heartbeat = s.plan.heartbeat;
    wa.no_fsync = cfg.no_fsync;
    if (chaos != nullptr) {
      wa.chaos_action = chaos->action;
      wa.chaos_after = chaos->after;
    }
    return wa;
  }

  void spawn(unsigned shard_idx) {
    Shard& s = shards[shard_idx];
    const ChaosRule* chaos = chaos_for(shard_idx, s);
    const WorkerArgs wa = worker_args(shard_idx, chaos);
    if (chaos != nullptr) s.chaos_spent = true;

    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("stlserve: fork failed");
    if (pid == 0) {
      if (cfg.worker_exe.empty()) {
        // Test mode: run the worker in the forked image directly. The child
        // inherited the parent's handler table and installed-flag — exactly
        // what reset_for_child exists to fix.
        fault::reset_for_child();
        ::_exit(worker_main(wa));
      }
      char shard_s[16], begin_s[24], end_s[24], after_s[24];
      std::snprintf(shard_s, sizeof shard_s, "%u", shard_idx);
      std::snprintf(begin_s, sizeof begin_s, "%llu",
                    static_cast<unsigned long long>(wa.begin));
      std::snprintf(end_s, sizeof end_s, "%llu",
                    static_cast<unsigned long long>(wa.end));
      std::string chaos_arg;
      if (!wa.chaos_action.empty()) {
        std::snprintf(after_s, sizeof after_s, "%llu",
                      static_cast<unsigned long long>(wa.chaos_after));
        chaos_arg = wa.chaos_action + ":" + after_s;
      }
      std::vector<const char*> argv = {
          cfg.worker_exe.c_str(), "--worker",
          "--spec",               spec_path.c_str(),
          "--shard",              shard_s,
          "--begin",              begin_s,
          "--end",                end_s,
          "--dir",                wa.dir.c_str(),
          "--heartbeat",          wa.heartbeat.c_str(),
      };
      if (wa.no_fsync) argv.push_back("--no-fsync");
      if (!chaos_arg.empty()) {
        argv.push_back("--chaos-self");
        argv.push_back(chaos_arg.c_str());
      }
      argv.push_back(nullptr);
      ::execv(cfg.worker_exe.c_str(),
              const_cast<char* const*>(
                  const_cast<const char* const*>(argv.data())));
      ::_exit(127);
    }
    s.pid = pid;
    s.state = ShardState::kRunning;
    ++s.spawns;
    s.spawn_time = s.hb_change = s.last_progress_note = Clock::now();
    s.hb_size = file_size_or_zero(s.plan.heartbeat);
    note("shard %u [%llu, %llu) -> pid %ld (spawn %u)", shard_idx,
         static_cast<unsigned long long>(s.plan.begin),
         static_cast<unsigned long long>(s.plan.end), static_cast<long>(pid),
         s.spawns);
  }

  /// A running worker ended (or was ended): decide Done / respawn /
  /// quarantine+respawn / Failed. `code` >= 0 is an exit code, < 0 the
  /// negated terminating signal.
  void conclude(unsigned shard_idx, int code) {
    Shard& s = shards[shard_idx];
    s.pid = -1;
    if (code == 0) {
      s.state = ShardState::kDone;
      note("shard %u done", shard_idx);
      return;
    }
    if (code == 2) {
      // The worker refused its own journal (corrupt manifest, foreign
      // campaign). Set the whole subdir aside as evidence and start the
      // shard over on a clean one.
      std::error_code ec;
      fs::rename(s.plan.dir,
                 s.plan.dir + ".corrupt-" + std::to_string(s.spawns), ec);
      ++stats.dirs_quarantined;
      note("shard %u: journal rejected — subdir quarantined", shard_idx);
    }
    if (s.spawns > cfg.max_respawns) {
      s.state = ShardState::kFailed;
      note("shard %u: %u spawns exhausted (last %s %d) — will fall back "
           "in-process",
           shard_idx, s.spawns, code < 0 ? "signal" : "exit",
           code < 0 ? -code : code);
      return;
    }
    const u64 shift = std::min<unsigned>(s.spawns - 1, 16);
    const u64 backoff = std::min<u64>(
        static_cast<u64>(cfg.backoff_base_ms) << shift, cfg.backoff_cap_ms);
    s.state = ShardState::kPending;
    s.next_spawn = Clock::now() + std::chrono::milliseconds(backoff);
    ++stats.respawns;
    note("shard %u: worker %s %d — respawn %u in %llu ms", shard_idx,
         code < 0 ? "died on signal" : "exited", code < 0 ? -code : code,
         s.spawns, static_cast<unsigned long long>(backoff));
  }

  void reap() {
    for (unsigned k = 0; k < shards.size(); ++k) {
      Shard& s = shards[k];
      if (s.state != ShardState::kRunning) continue;
      int st = 0;
      const pid_t r = ::waitpid(s.pid, &st, WNOHANG);
      if (r != s.pid) continue;
      conclude(k, WIFEXITED(st) ? WEXITSTATUS(st)
                                : -(WIFSIGNALED(st) ? WTERMSIG(st) : SIGKILL));
    }
  }

  /// Campaign-wide pace from heartbeat growth since this supervisor
  /// started; 0 until enough beats arrived to be meaningful. One beat is
  /// one 8-byte run-index record.
  double observed_per_run_ms(Clock::time_point now) const {
    u64 beats = 0;
    for (unsigned k = 0; k < shards.size(); ++k) {
      const std::uintmax_t sz = shards[k].hb_size;
      beats += sz > hb_base[k] ? (sz - hb_base[k]) / kHeartbeatRecordBytes : 0;
    }
    if (beats < 8) return 0.0;
    return static_cast<double>(ms_between(t0, now)) / static_cast<double>(beats);
  }

  void watchdogs() {
    const Clock::time_point now = Clock::now();
    const double pace = observed_per_run_ms(now);
    for (unsigned k = 0; k < shards.size(); ++k) {
      Shard& s = shards[k];
      if (s.state != ShardState::kRunning) continue;
      const std::uintmax_t sz = file_size_or_zero(s.plan.heartbeat);
      const u64 total = s.plan.end - s.plan.begin;
      if (sz != s.hb_size) {
        s.hb_size = sz;
        s.hb_change = now;
        // Surface where the shard is. Throttled: run-per-second shards
        // must not turn the supervision log into a heartbeat mirror.
        u64 at = 0;
        if (!cfg.quiet &&
            ms_between(s.last_progress_note, now) >= kProgressNoteMs &&
            last_run_index(s.plan.heartbeat, at)) {
          s.last_progress_note = now;
          note("shard %u: at run %llu (%llu/%llu beats)", k,
               static_cast<unsigned long long>(at),
               static_cast<unsigned long long>(
                   std::min<u64>(sz / kHeartbeatRecordBytes, total)),
               static_cast<unsigned long long>(total));
        }
      }
      const u64 stale_ms = ms_between(std::max(s.spawn_time, s.hb_change), now);
      bool hung = stale_ms > cfg.hang_timeout_ms;
      if (!hung) {
        u64 budget = cfg.shard_timeout_ms;
        if (budget == 0 && pace > 0.0) {
          const u64 done_runs =
              std::min<u64>(s.hb_size / kHeartbeatRecordBytes, total);
          budget = shard_budget_ms(pace, total - done_runs, cfg.hang_timeout_ms);
        }
        hung = budget != 0 && ms_between(s.spawn_time, now) > budget;
      }
      if (!hung) continue;
      // SIGKILL first: a wedged simulator loop never sees SIGTERM's
      // cooperative drain, and the journal is crash-safe by construction.
      ::kill(s.pid, SIGKILL);
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      ++stats.hung_killed;
      u64 last = 0;
      const bool have_last = last_run_index(s.plan.heartbeat, last);
      note("shard %u: hung (no heartbeat for %llu ms, last run %s) — killed "
           "pid %ld",
           k, static_cast<unsigned long long>(stale_ms),
           have_last ? std::to_string(last).c_str() : "none",
           static_cast<long>(s.pid));
      conclude(k, -SIGKILL);
    }
  }

  /// Forward the drain to every worker, reap them all, leave the campaign
  /// resumable.
  void drain_children() {
    for (Shard& s : shards) {
      if (s.state != ShardState::kRunning) continue;
      ::kill(s.pid, SIGTERM);
    }
    for (Shard& s : shards) {
      if (s.state != ShardState::kRunning) continue;
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      s.pid = -1;
      s.state = ShardState::kPending;
    }
    note("interrupted — campaign is resumable with --resume");
  }

  bool supervise() {  // false = interrupted
    while (true) {
      if (fault::global_interrupt().stop_requested()) {
        drain_children();
        return false;
      }
      reap();
      watchdogs();
      const Clock::time_point now = Clock::now();
      unsigned running = 0;
      for (const Shard& s : shards)
        running += s.state == ShardState::kRunning ? 1 : 0;
      const unsigned cap =
          cfg.workers != 0 ? cfg.workers : std::max(1u, spec.workers);
      bool pending = false;
      for (unsigned k = 0; k < shards.size(); ++k) {
        Shard& s = shards[k];
        if (s.state != ShardState::kPending) continue;
        pending = true;
        if (running >= cap || now < s.next_spawn) continue;
        spawn(k);
        ++running;
      }
      if (!pending && running == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.poll_ms));
    }
  }
};

}  // namespace

ServeResult run_campaign(const ServeSpec& spec, const ServeConfig& cfg) {
  if (cfg.work_dir.empty())
    throw std::runtime_error("stlserve: a work directory is required");
  fs::create_directories(cfg.work_dir);
  const std::string spec_path = cfg.work_dir + "/" + kSpecFileName;
  if (!cfg.resume && fs::exists(spec_path))
    throw std::runtime_error("stlserve: '" + cfg.work_dir +
                             "' already holds a campaign — resume it or point "
                             "at a clean directory");
  if (!fs::exists(spec_path)) {
    std::FILE* f = std::fopen(spec_path.c_str(), "wb");
    if (f == nullptr)
      throw std::runtime_error("stlserve: cannot write " + spec_path);
    const std::string json = spec_to_json(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  fault::install_drain_handlers();

  Supervisor sup{spec, cfg};
  sup.spec_path = spec_path;
  const u64 total_units = spec_unit_count(spec);
  for (ShardPlan& p : plan_shards(total_units, cfg.workers != 0 ? cfg.workers
                                                                : spec.workers,
                                  cfg.work_dir)) {
    Shard sh;
    sh.plan = std::move(p);
    sup.shards.push_back(std::move(sh));
  }
  sup.stats.shards = static_cast<unsigned>(sup.shards.size());
  sup.hb_base.resize(sup.shards.size());
  for (unsigned k = 0; k < sup.shards.size(); ++k)
    sup.hb_base[k] = file_size_or_zero(sup.shards[k].plan.heartbeat);

  ServeResult out;
  if (!sup.supervise()) {
    out.stats = sup.stats;
    out.interrupted = true;
    return out;
  }

  // Degradation floor: shards whose respawn budget ran dry execute in THIS
  // process, resuming their own journal — the campaign completes as long as
  // the supervisor itself survives.
  for (unsigned k = 0; k < sup.shards.size(); ++k) {
    Shard& s = sup.shards[k];
    if (s.state != ShardState::kFailed) continue;
    ++sup.stats.fallbacks;
    sup.note("shard %u: executing in-process (degraded)", k);
    const int rc = worker_main(sup.worker_args(k, nullptr));
    if (rc == 3) {
      out.stats = sup.stats;
      out.interrupted = true;
      return out;
    }
    if (rc != 0)
      throw std::runtime_error("stlserve: shard " + std::to_string(k) +
                               " failed even in-process (exit " +
                               std::to_string(rc) + ")");
    s.state = ShardState::kDone;
  }

  // Post-hoc merge: load every shard journal; any unit no journal covers is
  // re-executed right here (the merge_dirs contract), so the result is
  // byte-identical to the single-process campaign.
  if (spec.kind == "fault") {
    fault::CampaignConfig mc = fault_config(spec);
    for (const Shard& s : sup.shards) mc.merge_dirs.push_back(s.plan.dir);
    mc.interrupt = &fault::global_interrupt();
    fault::Campaign merge(mc, fault_factory(spec));
    out.fault_result = merge.run();
    if (out.fault_result.ckpt.interrupted) {
      out.stats = sup.stats;
      out.interrupted = true;
      return out;
    }
    sup.stats.records_resumed = out.fault_result.ckpt.records_resumed;
    sup.stats.shards_corrupt = out.fault_result.ckpt.shards_corrupt;
    sup.stats.merge_reexecuted =
        total_units >= out.fault_result.ckpt.records_resumed
            ? total_units - out.fault_result.ckpt.records_resumed
            : 0;
    if (sup.stats.merge_reexecuted != 0)
      sup.note("merge: %llu fault(s) had no journal record — re-simulated",
               static_cast<unsigned long long>(sup.stats.merge_reexecuted));
    out.stats = sup.stats;
    return out;
  }

  runtime::CampaignSpec ms = to_campaign_spec(spec);
  for (const Shard& s : sup.shards) ms.merge_dirs.push_back(s.plan.dir);
  ms.interrupt = &fault::global_interrupt();
  out.result = runtime::run_disturbance_campaign(ms);
  if (out.result.ckpt.interrupted) {
    out.stats = sup.stats;
    out.interrupted = true;
    return out;
  }
  sup.stats.records_resumed = out.result.ckpt.records_resumed;
  sup.stats.shards_corrupt = out.result.ckpt.shards_corrupt;
  sup.stats.merge_reexecuted =
      spec.runs >= out.result.ckpt.records_resumed
          ? spec.runs - out.result.ckpt.records_resumed
          : 0;
  if (sup.stats.merge_reexecuted != 0)
    sup.note("merge: %llu run(s) had no journal record — re-executed",
             static_cast<unsigned long long>(sup.stats.merge_reexecuted));
  out.stats = sup.stats;
  return out;
}

#endif  // _WIN32

}  // namespace detstl::serve
