#pragma once
// Reproduction drivers for every table and figure of the paper's evaluation
// (DESIGN.md Sec. 4). Each run_* function regenerates one exhibit and is
// shared between the benchmark binaries (bench/) and the regression tests.

#include <array>
#include <string>
#include <vector>

#include "core/routines.h"
#include "core/stl.h"
#include "fault/campaign.h"

namespace detstl::exp {

// -----------------------------------------------------------------------------
// Scenario plumbing
// -----------------------------------------------------------------------------

/// One multi-core execution scenario (paper Sec. IV-C): how many cores are
/// active, their reset stagger ("initial SoC configuration"), and the flash
/// placement of the code (position low/mid/high + line-phase alignment).
/// Alignment is issue-packet (8-byte) granular: the STL ships packet-aligned,
/// and the knob sweeps the flash-line phase (offset mod 32).
struct Scenario {
  unsigned active_cores = 3;
  std::array<u32, 3> stagger = {0, 0, 0};
  u32 position = 0;   // 0 = low, +0x80000 = mid, +0x100000 = high
  u32 alignment = 0;  // multiple of 8, < 32
  std::string label;
};

/// The no-cache multi-core grid fault-simulated for Table II's min-max
/// columns: {2,3} active cores x {low,mid,high} position x {0,8} alignment.
std::vector<Scenario> nocache_scenario_grid();

/// Build one wrapped routine per active core at the scenario's placement
/// (core `graded` is always active; with 2 active cores the neighbour core
/// joins it).
std::vector<core::BuiltTest> build_scenario_tests(const core::SelfTestRoutine& r,
                                                  core::WrapperKind wrapper,
                                                  const Scenario& sc,
                                                  unsigned graded,
                                                  bool use_perf_counters);

/// SoC factory over prebuilt tests (for fault campaigns).
fault::SocFactory scenario_factory(std::vector<core::BuiltTest> tests,
                                   const Scenario& sc, unsigned graded);

/// Execution knobs shared by every table driver. The defaults reproduce the
/// exhibits silently on all available cores; the benches map `--progress`
/// and DETSTL_THREADS onto this.
struct ExecOptions {
  /// Campaign worker threads (fault::CampaignConfig::threads): 0 = hardware
  /// concurrency, 1 = serial. The table rows are identical for any value.
  unsigned threads = 0;
  /// Forwarded to every fault campaign (in-campaign progress/ETA).
  fault::ProgressFn progress;
  /// One line per completed scenario/configuration step ("narration").
  std::function<void(const std::string&)> log;
  /// detscope event sink forwarded to every fault campaign (the benches wire
  /// `--trace FILE` onto this; null = tracing off).
  trace::EventSink* sink = nullptr;
  /// Crash-safe checkpoint root (fault/checkpoint.h): every fault campaign a
  /// table driver launches journals into its own subdirectory
  /// `<dir>/<campaign-label>`, so one bench invocation can hold many
  /// independent campaign checkpoints. Empty dir = off.
  fault::CheckpointConfig checkpoint;
  /// Cooperative drain request forwarded to every fault campaign. A drained
  /// campaign makes the table driver throw fault::Interrupted, so the bench
  /// stops at the first interrupted campaign and exits resumable (exit 3).
  fault::InterruptToken* interrupt = nullptr;
};

// -----------------------------------------------------------------------------
// Figure 1: forwarding path excited vs broken by fetch stalls
// -----------------------------------------------------------------------------

struct Fig1Result {
  std::string trace_cached;       // cache-resident: back-to-back, path excited
  std::string trace_single_core;  // no caches, single core: flash gaps
  std::string trace_triple_core;  // no caches, 3 cores: contention gaps
  u64 ex_distance_cached = 0;     // EX-stage distance producer->consumer
  u64 ex_distance_single = 0;
  u64 ex_distance_triple = 0;
};
Fig1Result run_fig1();

// -----------------------------------------------------------------------------
// Table I: memory-subsystem stalls of the parallel STL vs active cores
// -----------------------------------------------------------------------------

struct Table1Row {
  unsigned active_cores = 0;
  double if_stalls = 0;   // summed over active cores, averaged over staggers
  double mem_stalls = 0;
};
std::vector<Table1Row> run_table1(unsigned stagger_samples = 3,
                                  const ExecOptions& opts = {});

// -----------------------------------------------------------------------------
// Table II: forwarding-logic fault coverage, no-PC routine
// -----------------------------------------------------------------------------

struct Table2Row {
  char core = 'A';
  u64 faults = 0;          // simulated stuck-at faults
  double fc_min = 0;       // multi-core, no caches, over the scenario grid
  double fc_max = 0;
  double fc_cached = 0;    // cache-based strategy (stable single value)
  bool cached_stable = false;  // FC identical across re-checked scenarios
};
std::vector<Table2Row> run_table2(u32 fault_stride = 1, unsigned max_scenarios = 0,
                                  const ExecOptions& opts = {});

// -----------------------------------------------------------------------------
// Table III: ICU and HDCU fault coverage + signature stability
// -----------------------------------------------------------------------------

struct Table3Row {
  char core = 'A';
  std::string module;
  u64 faults = 0;
  double fc_single_nocache = 0;  // plain wrapper, other cores off
  double fc_multi_cached = 0;    // cache-based wrapper, 3 cores active
  unsigned plain_multicore_failures = 0;  // out of `stability_runs`
  unsigned stability_runs = 0;
};
std::vector<Table3Row> run_table3(u32 fault_stride = 1,
                                  const ExecOptions& opts = {});

// -----------------------------------------------------------------------------
// Table IV: TCM-based vs cache-based strategy
// -----------------------------------------------------------------------------

struct Table4Row {
  std::string approach;
  u32 memory_overhead_bytes = 0;   // permanently reserved TCM space
  u64 execution_cycles = 0;        // reset -> halt, single-core (deterministic)
  double usec_at_180mhz = 0;
  u64 contended_cycles = 0;        // same, with all three cores active
};
std::vector<Table4Row> run_table4(const ExecOptions& opts = {});

}  // namespace detstl::exp
