#include "exp/experiments.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "isa/disasm.h"

namespace detstl::exp {

using core::BuildEnv;
using core::BuiltTest;
using core::WrapperKind;
using isa::CoreKind;

namespace {

constexpr u32 kPosLow = 0x2000;
constexpr u32 kPosMid = 0x80000;
constexpr u32 kPosHigh = 0x100000;
constexpr u32 kPerCoreCodeStride = 0x40000;

BuildEnv scenario_env(const Scenario& sc, unsigned core_id, bool use_pcs) {
  BuildEnv env;
  env.core_id = core_id;
  env.kind = static_cast<CoreKind>(core_id);
  env.code_base = mem::kFlashBase + sc.position + kPosLow + sc.alignment +
                  core_id * kPerCoreCodeStride;
  env.data_base = core::default_data_base(core_id);
  env.use_perf_counters = use_pcs;
  return env;
}

/// Active core ids for a scenario graded on `graded`.
std::vector<unsigned> active_set(const Scenario& sc, unsigned graded) {
  std::vector<unsigned> act{graded};
  for (unsigned c = 0; c < 3 && act.size() < sc.active_cores; ++c)
    if (c != graded) act.push_back(c);
  return act;
}

}  // namespace

std::vector<Scenario> nocache_scenario_grid() {
  std::vector<Scenario> grid;
  const std::array<std::pair<u32, const char*>, 3> positions = {
      std::pair<u32, const char*>{0, "low"}, {kPosMid, "mid"}, {kPosHigh, "high"}};
  const std::array<u32, 3> staggers[4] = {{0, 3, 7}, {9, 2, 5}, {1, 13, 4}, {6, 0, 11}};
  unsigned idx = 0;
  for (unsigned cores : {2u, 3u}) {
    for (const auto& [pos, pname] : positions) {
      for (u32 align : {0u, 8u}) {
        Scenario sc;
        sc.active_cores = cores;
        sc.position = pos;
        sc.alignment = align;
        sc.stagger = staggers[idx++ % 4];
        sc.label = std::string(pname) + "/" + std::to_string(cores) + "c/a" +
                   std::to_string(align);
        grid.push_back(sc);
      }
    }
  }
  return grid;
}

std::vector<BuiltTest> build_scenario_tests(const core::SelfTestRoutine& r,
                                            WrapperKind wrapper, const Scenario& sc,
                                            unsigned graded, bool use_pcs) {
  std::vector<BuiltTest> tests;
  for (unsigned c : active_set(sc, graded))
    tests.push_back(core::build_wrapped(r, wrapper, scenario_env(sc, c, use_pcs)));
  return tests;
}

fault::SocFactory scenario_factory(std::vector<BuiltTest> tests, const Scenario& sc,
                                   unsigned graded) {
  (void)graded;
  soc::SocConfig cfg;
  cfg.start_delay = sc.stagger;
  return [tests = std::move(tests), cfg]() {
    soc::Soc s(cfg);
    for (const auto& t : tests) {
      s.load_program(t.prog);
      s.set_boot(t.env.core_id, t.prog.entry());
    }
    return s;
  };
}

// -----------------------------------------------------------------------------
// Figure 1
// -----------------------------------------------------------------------------

namespace {

/// The paper's code fragment: two dependent adds (EX-to-EX forwarding path).
isa::Program fig1_program(u32 code_base, bool cached) {
  isa::Assembler a(code_base);
  a.label("entry");
  a.set_entry("entry");
  using namespace isa;
  if (cached) {
    a.li(R1, kCacheOpInvI | kCacheOpInvD);
    a.csrw(Csr::kCacheOp, R1);
    a.li(R1, kCacheCfgIEn | kCacheCfgDEn | kCacheCfgWriteAllocate);
    a.csrw(Csr::kCacheCfg, R1);
  }
  a.li(R1, 0x1111);
  a.li(R2, 0x2222);
  a.li(R7, 0x0f0f);
  // Warm-up loop: with caches this is the loading pass; the second iteration
  // is the observed one.
  a.addi(R30, R0, 2);
  a.label("loop");
  a.align(8);
  a.add(R3, R1, R2);   // producer
  a.nop();
  a.add(R5, R3, R7);   // consumer: needs R3 via the EX->EX path
  a.nop();
  a.addi(R30, R30, -1);
  a.bne(R30, R0, "loop");
  a.halt();
  return a.assemble();
}

struct Fig1Run {
  std::string trace;
  u64 ex_distance = 0;
};

Fig1Run fig1_run(unsigned cores, bool cached) {
  soc::SocConfig cfg;
  cfg.start_delay = {0, 3, 6};
  soc::Soc s(cfg);
  const isa::Program p0 = fig1_program(mem::kFlashBase + 0x2000, cached);
  s.load_program(p0);
  s.set_boot(0, p0.entry());
  for (unsigned c = 1; c < cores; ++c) {
    const isa::Program pc =
        fig1_program(mem::kFlashBase + 0x2000 + c * kPerCoreCodeStride, cached);
    s.load_program(pc);
    s.set_boot(c, pc.entry());
  }
  s.reset();
  s.core(0).trace().enable(true);
  const auto res = s.run(100000);
  if (res.timed_out) throw std::runtime_error("fig1 run timed out");

  Fig1Run out;
  // Find the second-iteration producer/consumer EX cycles.
  const auto& instrs = s.core(0).trace().instrs();
  u64 prod_ex = 0, cons_ex = 0, window_lo = 0, window_hi = 0;
  for (const auto& ti : instrs) {
    if (ti.text.rfind("add    r3", 0) == 0) {
      prod_ex = ti.stage_cycle[1];
      window_lo = ti.stage_cycle[0];
    }
    if (ti.text.rfind("add    r5", 0) == 0) {
      cons_ex = ti.stage_cycle[1];
      window_hi = ti.stage_cycle[3];
    }
  }
  out.ex_distance = cons_ex > prod_ex ? cons_ex - prod_ex : 0;
  out.trace = s.core(0).trace().render(window_lo > 4 ? window_lo - 4 : 0,
                                       window_hi + 2);
  return out;
}

}  // namespace

Fig1Result run_fig1() {
  Fig1Result r;
  auto cached = fig1_run(3, true);
  auto single = fig1_run(1, false);
  auto triple = fig1_run(3, false);
  r.trace_cached = std::move(cached.trace);
  r.trace_single_core = std::move(single.trace);
  r.trace_triple_core = std::move(triple.trace);
  r.ex_distance_cached = cached.ex_distance;
  r.ex_distance_single = single.ex_distance;
  r.ex_distance_triple = triple.ex_distance;
  return r;
}

// -----------------------------------------------------------------------------
// Table I
// -----------------------------------------------------------------------------

std::vector<Table1Row> run_table1(unsigned stagger_samples, const ExecOptions& opts) {
  std::vector<Table1Row> rows;
  const std::array<u32, 3> staggers[] = {{0, 0, 0}, {0, 5, 11}, {3, 9, 1}, {7, 2, 13}};

  for (unsigned cores = 1; cores <= 3; ++cores) {
    double if_sum = 0, mem_sum = 0;
    const unsigned samples = cores == 1 ? 1 : stagger_samples;
    for (unsigned sidx = 0; sidx < samples; ++sidx) {
      // Each active core runs the full boot STL (plain structure, no caches).
      soc::SocConfig cfg;
      cfg.start_delay = staggers[sidx % std::size(staggers)];
      soc::Soc s(cfg);
      std::vector<core::BuiltSuite> suites;
      for (unsigned c = 0; c < cores; ++c) {
        auto stl = core::make_boot_stl();
        core::SuiteSpec spec;
        for (const auto& r : stl) spec.routines.push_back(r.get());
        spec.wrapper = WrapperKind::kPlain;
        Scenario sc;  // default placement
        spec.env = scenario_env(sc, c, false);
        suites.push_back(core::build_suite(spec));
        s.load_program(suites.back().prog);
        s.set_boot(c, suites.back().prog.entry());
      }
      s.reset();
      const auto res = s.run(50'000'000);
      if (res.timed_out) throw std::runtime_error("table1 run timed out");
      for (unsigned c = 0; c < cores; ++c) {
        if_sum += static_cast<double>(s.core(c).perf().if_stalls);
        mem_sum += static_cast<double>(s.core(c).perf().mem_stalls);
      }
    }
    rows.push_back(Table1Row{cores, if_sum / samples, mem_sum / samples});
    if (opts.log)
      opts.log(std::to_string(cores) + " active core(s): IF stalls " +
               std::to_string(static_cast<long long>(rows.back().if_stalls)) +
               ", MEM stalls " +
               std::to_string(static_cast<long long>(rows.back().mem_stalls)));
  }
  return rows;
}

// -----------------------------------------------------------------------------
// Table II
// -----------------------------------------------------------------------------

namespace {

/// Shared campaign-configuration boilerplate of the table drivers. `leaf`
/// names this campaign's checkpoint subdirectory under the ExecOptions
/// checkpoint root (must be unique per campaign within one bench run).
fault::CampaignConfig table_campaign_config(fault::Module module, unsigned graded,
                                            u32 fault_stride, bool from_marker,
                                            const std::string& leaf,
                                            const ExecOptions& opts) {
  fault::CampaignConfig cc;
  cc.module = module;
  cc.core_id = graded;
  cc.kind = static_cast<CoreKind>(graded);
  cc.fault_stride = fault_stride;
  cc.signature_from_marker = from_marker;
  cc.threads = opts.threads;
  cc.progress = opts.progress;
  cc.sink = opts.sink;
  cc.interrupt = opts.interrupt;
  if (opts.checkpoint.enabled()) {
    cc.checkpoint = opts.checkpoint;
    std::string s = leaf;
    for (char& ch : s)
      if (ch == '/' || ch == ' ') ch = '-';
    cc.checkpoint.dir += "/" + s;
    // Bench-level --resume is per campaign: campaigns the interrupted run
    // never reached have no manifest yet and start fresh.
    cc.checkpoint.resume =
        opts.checkpoint.resume && fault::checkpoint_present(cc.checkpoint);
  }
  return cc;
}

/// Stop a multi-campaign table bench at the first drained campaign: the
/// completed prefix is journalled; later campaigns resume untouched.
void throw_if_interrupted(const fault::CampaignResult& res) {
  if (res.ckpt.interrupted)
    throw fault::Interrupted(
        "fault campaign drained mid-run; re-run with --resume to continue");
}

std::string fc_log_line(char core, const Scenario& sc, double fc) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", fc);
  return std::string("core ") + core + " | " + sc.label + " | FC " + buf + "%";
}

}  // namespace

std::vector<Table2Row> run_table2(u32 fault_stride, unsigned max_scenarios,
                                  const ExecOptions& opts) {
  std::vector<Table2Row> rows;
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  auto grid = nocache_scenario_grid();
  if (max_scenarios != 0 && grid.size() > max_scenarios) grid.resize(max_scenarios);

  for (unsigned graded = 0; graded < 3; ++graded) {
    Table2Row row;
    row.core = static_cast<char>('A' + graded);
    row.fc_min = 101.0;
    row.fc_max = -1.0;

    // Multi-core, no caches: FC oscillates across the scenario grid.
    for (const Scenario& sc : grid) {
      auto tests = build_scenario_tests(*routine, WrapperKind::kPlain, sc, graded,
                                        /*use_pcs=*/false);
      const auto cc = table_campaign_config(
          fault::Module::kFwd, graded, fault_stride, false,
          std::string("t2-nocache-") + row.core + "-" + sc.label, opts);
      fault::Campaign campaign(cc, scenario_factory(std::move(tests), sc, graded));
      const auto res = campaign.run();
      throw_if_interrupted(res);
      row.faults = res.simulated_faults;
      row.fc_min = std::min(row.fc_min, res.coverage_percent());
      row.fc_max = std::max(row.fc_max, res.coverage_percent());
      if (opts.log) opts.log(fc_log_line(row.core, sc, res.coverage_percent()));
    }

    // Cache-based strategy: stable FC, checked across two distinct scenarios.
    std::set<long> cached_fcs;
    for (const Scenario& sc :
         {Scenario{3, {0, 3, 7}, 0, 0, "cached/a"}, Scenario{3, {9, 1, 4}, kPosMid, 8, "cached/b"}}) {
      auto tests = build_scenario_tests(*routine, WrapperKind::kCacheBased, sc, graded,
                                        /*use_pcs=*/false);
      // Cache-based: the loading loop's signatures are unchecked.
      const auto cc = table_campaign_config(
          fault::Module::kFwd, graded, fault_stride, true,
          std::string("t2-cached-") + row.core + "-" + sc.label, opts);
      fault::Campaign campaign(cc, scenario_factory(std::move(tests), sc, graded));
      const auto res = campaign.run();
      throw_if_interrupted(res);
      row.fc_cached = res.coverage_percent();
      cached_fcs.insert(std::lround(res.coverage_percent() * 1000));
      if (opts.log) opts.log(fc_log_line(row.core, sc, res.coverage_percent()));
    }
    row.cached_stable = cached_fcs.size() == 1;
    rows.push_back(row);
  }
  return rows;
}

// -----------------------------------------------------------------------------
// Table III
// -----------------------------------------------------------------------------

namespace {

double campaign_fc(const core::SelfTestRoutine& r, WrapperKind w, const Scenario& sc,
                   unsigned graded, bool use_pcs, fault::Module module,
                   u32 fault_stride, u64& faults_out, const ExecOptions& opts) {
  auto tests = build_scenario_tests(r, w, sc, graded, use_pcs);
  const auto cc = table_campaign_config(
      module, graded, fault_stride, w == WrapperKind::kCacheBased,
      std::string("t3-") + fault::module_name(module) + "-" +
          static_cast<char>('A' + graded) + "-" + sc.label,
      opts);
  fault::Campaign campaign(cc, scenario_factory(std::move(tests), sc, graded));
  const auto res = campaign.run();
  throw_if_interrupted(res);
  faults_out = res.simulated_faults;
  if (opts.log)
    opts.log(fc_log_line(static_cast<char>('A' + graded), sc,
                         res.coverage_percent()) +
             " | " + fault::module_name(module));
  return res.coverage_percent();
}

/// Fault-free plain-wrapper multi-core runs: how many scenarios FAIL against
/// the single-core golden (Sec. IV-D: "inevitably failed").
unsigned stability_failures(const core::SelfTestRoutine& r, unsigned graded,
                            bool use_pcs, unsigned& runs_out) {
  const std::array<u32, 3> staggers[] = {{0, 3, 7}, {5, 0, 2}, {1, 9, 4}};
  unsigned failures = 0;
  runs_out = 0;
  for (const auto& st : staggers) {
    Scenario sc{3, st, 0, 0, "stab"};
    auto tests = build_scenario_tests(r, WrapperKind::kPlain, sc, graded, use_pcs);
    soc::Soc s = scenario_factory(tests, sc, graded)();
    s.reset();
    const auto res = s.run(20'000'000);
    if (res.timed_out) throw std::runtime_error("stability run timed out");
    const auto v = core::read_verdict(s, soc::mailbox_addr(graded));
    ++runs_out;
    if (v.status == soc::kStatusFail) ++failures;
  }
  return failures;
}

}  // namespace

std::vector<Table3Row> run_table3(u32 fault_stride, const ExecOptions& opts) {
  std::vector<Table3Row> rows;
  const auto icu_routine = core::make_icu_test();
  const auto hdcu_routine = core::make_fwd_test(/*with_perf_counters=*/true);

  const Scenario single{1, {0, 0, 0}, 0, 0, "single"};
  const Scenario multi{3, {0, 3, 7}, 0, 0, "multi"};

  for (unsigned graded = 0; graded < 3; ++graded) {
    for (bool is_icu : {true, false}) {
      const core::SelfTestRoutine& r = is_icu ? *icu_routine : *hdcu_routine;
      const bool use_pcs = !is_icu;  // the HDCU routine uses the PCs (Table III)
      const auto module = is_icu ? fault::Module::kIcu : fault::Module::kHdcu;

      Table3Row row;
      row.core = static_cast<char>('A' + graded);
      row.module = is_icu ? "ICU" : "HDCU";
      // The ICU netlists are small: grade them exhaustively regardless of the
      // sampling stride (stride sampling would add noise comparable to the
      // A/B-vs-C cause-masking effect under study).
      const u32 stride = is_icu ? 1 : fault_stride;
      row.fc_single_nocache = campaign_fc(r, WrapperKind::kPlain, single, graded,
                                          use_pcs, module, stride, row.faults, opts);
      row.fc_multi_cached = campaign_fc(r, WrapperKind::kCacheBased, multi, graded,
                                        use_pcs, module, stride, row.faults, opts);
      row.plain_multicore_failures =
          stability_failures(r, graded, use_pcs, row.stability_runs);
      rows.push_back(row);
    }
  }
  return rows;
}

// -----------------------------------------------------------------------------
// Table IV
// -----------------------------------------------------------------------------

std::vector<Table4Row> run_table4(const ExecOptions& opts) {
  const auto routine = core::make_icu_test();
  std::vector<Table4Row> rows;

  for (WrapperKind w : {WrapperKind::kTcmBased, WrapperKind::kCacheBased}) {
    Table4Row row;
    row.approach = w == WrapperKind::kTcmBased ? "TCM-based" : "Cache-based";

    for (unsigned active : {1u, 3u}) {
      const Scenario sc{active, {0, 3, 7}, 0, 0, "t4"};
      std::vector<BuiltTest> tests;
      for (unsigned c = 0; c < active; ++c) {
        BuildEnv env = scenario_env(sc, c, false);
        // The TCM strategy keeps the routine's data in the data TCM (part of
        // the reserved-space cost the paper charges it for); the cache
        // strategy caches shared SRAM.
        if (w == WrapperKind::kTcmBased) env.data_base = mem::kDtcmBase + 0x400;
        tests.push_back(core::build_wrapped(*routine, w, env));
      }
      soc::Soc s = scenario_factory(tests, sc, 0)();
      s.reset();
      const auto res = s.run(20'000'000);
      if (res.timed_out) throw std::runtime_error("table4 run timed out");
      const auto v = core::read_verdict(s, soc::mailbox_addr(0));
      if (v.status != soc::kStatusPass) throw std::runtime_error("table4 test failed");

      row.memory_overhead_bytes =
          tests[0].tcm_bytes + (w == WrapperKind::kTcmBased ? routine->data_bytes() : 0);
      if (active == 1) {
        row.execution_cycles = s.core(0).perf().cycles;
        row.usec_at_180mhz = static_cast<double>(row.execution_cycles) / 180.0;
      } else {
        row.contended_cycles = s.core(0).perf().cycles;
      }
      if (opts.log)
        opts.log(row.approach + " | " + std::to_string(active) +
                 " active core(s) | " +
                 std::to_string(s.core(0).perf().cycles) + " cycles");
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace detstl::exp
