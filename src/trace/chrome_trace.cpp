#include "trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace detstl::trace {

namespace {

constexpr unsigned kCoreBound = 3;

// Track ids: one per core, one per bus requester, one for the campaign.
constexpr u32 kCoreTidBase = 0;
constexpr u32 kBusTidBase = 10;
constexpr u32 kCampaignTid = 30;

struct JsonEvent {
  u32 tid = 0;
  u64 ts = 0;
  u64 dur = 0;
  char ph = 'i';  // B / E / X / i
  std::string name;
  std::string args;  // pre-rendered JSON object body, may be empty
};

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

std::string track_name(u32 tid) {
  if (tid == kCampaignTid) return "fault campaign";
  if (tid >= kBusTidBase && tid < kBusTidBase + 9) {
    static const char* kPorts[3] = {"ifetch0", "data", "ifetch1"};
    const u32 req = tid - kBusTidBase;
    return "bus req " + std::to_string(req) + " (core " +
           std::string(1, static_cast<char>('A' + req / 3)) + " " +
           kPorts[req % 3] + ")";
  }
  return "core " + std::string(1, static_cast<char>('A' + tid - kCoreTidBase));
}

}  // namespace

void ChromeTraceWriter::write(std::ostream& os) const {
  std::vector<JsonEvent> out;
  out.reserve(events_.size() + 8);

  // Open wrapper-phase slice per core; closed by the next kPhaseBegin.
  bool phase_open[kCoreBound] = {};

  u64 max_cycle = 0;
  for (const Event& e : events_) {
    if (e.core != kNoCore) max_cycle = std::max(max_cycle, e.cycle);

    JsonEvent j;
    j.ts = e.cycle;
    j.name = kind_name(e.kind);
    switch (e.kind) {
      case EventKind::kPhaseBegin: {
        if (e.core >= kCoreBound) continue;
        const u32 tid = kCoreTidBase + e.core;
        if (phase_open[e.core])
          out.push_back(JsonEvent{tid, e.cycle, 0, 'E', "", ""});
        phase_open[e.core] = true;
        j.tid = tid;
        j.ph = 'B';
        j.name = phase_name(static_cast<Phase>(e.unit));
        j.args = "\"pc\":\"" + hex(e.addr) + "\"";
        break;
      }
      case EventKind::kBusGrant:
        j.tid = kBusTidBase + e.unit;
        j.ph = 'X';
        j.dur = std::max<u32>(1, e.b);
        j.name = "occupancy";
        j.args = "\"addr\":\"" + hex(e.addr) + "\",\"wait_cycles\":" +
                 std::to_string(e.a) + ",\"occupancy_cycles\":" + std::to_string(e.b);
        break;
      case EventKind::kBusSubmit:
        j.tid = kBusTidBase + e.unit;
        j.args = "\"addr\":\"" + hex(e.addr) + "\",\"bytes\":" + std::to_string(e.a) +
                 ",\"write\":" + ((e.flags & 0x1) ? "true" : "false") +
                 ",\"amo\":" + ((e.flags & 0x2) ? "true" : "false");
        break;
      case EventKind::kBusRetire:
        j.tid = kBusTidBase + e.unit;
        break;
      case EventKind::kBusBeat:
        if (!include_beats_) continue;
        j.tid = kBusTidBase + e.unit;
        j.args = "\"addr\":\"" + hex(e.addr) + "\",\"beat\":" + std::to_string(e.a) +
                 ",\"data\":\"" + hex(e.b) + "\"";
        break;
      case EventKind::kCacheHit:
        if (!include_hits_) continue;
        [[fallthrough]];
      case EventKind::kCacheMiss:
      case EventKind::kCacheRefill:
      case EventKind::kCacheWriteback:
        j.tid = kCoreTidBase + e.core;
        j.name = std::string(e.unit == 0 ? "I$ " : "D$ ") + kind_name(e.kind);
        j.args = "\"addr\":\"" + hex(e.addr) + "\",\"set\":" + std::to_string(e.a) +
                 ",\"way\":" + std::to_string(e.b);
        break;
      case EventKind::kCacheInvalidate:
        j.tid = kCoreTidBase + e.core;
        j.name = std::string(e.unit == 0 ? "I$ " : "D$ ") + kind_name(e.kind);
        j.args = "\"lines_discarded\":" + std::to_string(e.a);
        break;
      case EventKind::kIrqWindow:
      case EventKind::kIrqTaken:
        j.tid = kCoreTidBase + e.core;
        j.args = "\"cause\":" + std::to_string(e.a) +
                 (e.kind == EventKind::kIrqTaken
                      ? ",\"mepc\":\"" + hex(e.addr) + "\""
                      : "");
        break;
      case EventKind::kCampaignPhaseBegin:
      case EventKind::kCampaignPhaseEnd:
      case EventKind::kCampaignFault:
      case EventKind::kCampaignDone:
      case EventKind::kCkptFlush:
      case EventKind::kCkptLoad:
      case EventKind::kCkptReject:
        j.tid = kCampaignTid;
        j.args = "\"unit\":" + std::to_string(e.unit) +
                 ",\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b);
        break;
      case EventKind::kDisturbance:
      case EventKind::kSupAttempt:
      case EventKind::kSupOutcome:
      case EventKind::kSupDecision:
        j.tid = kCoreTidBase + (e.core < kCoreBound ? e.core : 0);
        j.args = "\"unit\":" + std::to_string(e.unit) + ",\"addr\":\"" +
                 hex(e.addr) + "\",\"a\":" + std::to_string(e.a) +
                 ",\"b\":" + std::to_string(e.b);
        break;
    }
    out.push_back(std::move(j));
  }

  // Close dangling phase slices one tick past the last traced cycle.
  for (unsigned core = 0; core < kCoreBound; ++core)
    if (phase_open[core])
      out.push_back(JsonEvent{kCoreTidBase + core, max_cycle + 1, 0, 'E', "", ""});

  // Stable (tid, ts) order: one monotone timeline per track, and the E/B
  // pairing at phase boundaries keeps its emission order.
  std::stable_sort(out.begin(), out.end(), [](const JsonEvent& a, const JsonEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.ts < b.ts;
  });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& body) {
    os << (first ? "\n" : ",\n") << body;
    first = false;
  };
  // Track-name metadata for every tid that appears.
  u32 seen_tid = ~0u;
  for (const JsonEvent& j : out) {
    if (j.tid == seen_tid) continue;
    seen_tid = j.tid;
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(j.tid) + ",\"args\":{\"name\":\"" + track_name(j.tid) +
         "\"}}");
  }
  for (const JsonEvent& j : out) {
    std::ostringstream b;
    b << "{\"ph\":\"" << j.ph << "\",\"pid\":0,\"tid\":" << j.tid
      << ",\"ts\":" << j.ts;
    if (j.ph == 'X') b << ",\"dur\":" << j.dur;
    if (j.ph != 'E') b << ",\"name\":\"" << j.name << "\"";
    if (j.ph == 'i') b << ",\"s\":\"t\"";
    if (!j.args.empty()) b << ",\"args\":{" << j.args << "}";
    b << "}";
    emit(b.str());
  }
  os << "\n]}\n";
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  write(f);
  return f.good();
}

}  // namespace detstl::trace
