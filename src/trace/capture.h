#pragma once
// In-memory event capture and byte-exact stream serialisation — the raw
// material of the determinism audit (trace/audit.h): two captured streams
// are "the same execution" iff their serialised bytes are identical.

#include <string>
#include <vector>

#include "trace/event.h"

namespace detstl::trace {

/// Buffers every event, optionally restricted to one core (bus events are
/// attributed to core = requester / 3 at the emit site).
class StreamCapture final : public EventSink {
 public:
  StreamCapture() = default;
  explicit StreamCapture(u8 only_core) : only_core_(only_core), filter_(true) {}

  void on_event(const Event& e) override {
    if (filter_ && e.core != only_core_) return;
    events_.push_back(e);
  }

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
  u8 only_core_ = kNoCore;
  bool filter_ = false;
};

/// Field-wise little-endian serialisation (no struct padding leaks).
inline void append_bytes(const Event& e, std::string& out) {
  const auto put = [&out](u64 v, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
  };
  put(e.cycle, 8);
  put(static_cast<u8>(e.kind), 1);
  put(e.core, 1);
  put(e.unit, 1);
  put(e.flags, 1);
  put(e.addr, 4);
  put(e.a, 4);
  put(e.b, 4);
}

inline std::string serialize(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 24);
  for (const Event& e : events) append_bytes(e, out);
  return out;
}

}  // namespace detstl::trace
