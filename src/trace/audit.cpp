#include "trace/audit.h"

#include <array>

#include "core/stl.h"
#include "mem/bus.h"
#include "trace/metrics.h"

namespace detstl::trace {

namespace {

core::BuildEnv env_for_core(unsigned core, bool write_allocate, bool perf) {
  core::BuildEnv env;
  env.core_id = core;
  env.kind = static_cast<isa::CoreKind>(core);
  env.code_base = mem::kFlashBase + 0x2000 + core * 0x40000;
  env.data_base = core::default_data_base(core);
  env.write_allocate = write_allocate;
  env.use_perf_counters = perf;
  return env;
}

struct RunOutcome {
  std::vector<Event> window;  // [exec-loop begin .. signature-check begin]
  std::vector<std::string> violations;
  bool window_found = false;
  bool pass = false;
  u64 graded_cycles = 0;
  u64 neighbor_grants = 0;
  unsigned window_bus_submits = 0;  // transactions originated inside the window
  bool timed_out = false;
};

RunOutcome run_once(const core::BuiltTest& graded,
                    const std::vector<core::BuiltTest>& neighbors,
                    const AuditOptions& opts, bool contended) {
  soc::SocConfig cfg;
  cfg.start_delay = opts.stagger;
  cfg.start_delay[opts.graded_core] = 0;
  soc::Soc soc(cfg);
  soc.load_program(graded.prog);
  soc.set_boot(opts.graded_core, graded.prog.entry());
  if (contended) {
    for (const auto& t : neighbors) {
      soc.load_program(t.prog);
      soc.set_boot(t.env.core_id, t.prog.entry());
    }
  }

  StreamCapture cap(static_cast<u8>(opts.graded_core));
  MetricsRegistry metrics;
  FanoutSink fan;
  fan.add(&cap);
  fan.add(&metrics);
  soc.set_trace_sink(&fan);

  soc.reset();
  const auto res = soc.run(opts.max_cycles);

  RunOutcome out;
  out.timed_out = res.timed_out;
  out.graded_cycles = soc.core(opts.graded_core).perf().cycles;
  for (unsigned c = 0; c < soc.num_cores(); ++c) {
    if (c == opts.graded_core) continue;
    for (unsigned port = 0; port < 3; ++port)
      out.neighbor_grants += soc.bus().stats(c * 3 + port).grants;
  }
  const auto v = core::read_verdict(soc, soc::mailbox_addr(opts.graded_core));
  out.pass = v.status == soc::kStatusPass && v.signature == graded.golden;
  out.violations = metrics.violations();

  // Extract the execution-loop window, inclusive of both boundary events.
  const auto& ev = cap.events();
  std::size_t begin = ev.size(), end = ev.size();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind != EventKind::kPhaseBegin) continue;
    const Phase p = static_cast<Phase>(ev[i].unit);
    if (p == Phase::kExecutionLoop && begin == ev.size()) begin = i;
    if (p == Phase::kSignatureCheck && begin != ev.size()) {
      end = i;
      break;
    }
  }
  if (begin == ev.size() || end == ev.size()) return out;
  out.window_found = true;

  // A transaction the loading pass initiated can still be in flight when the
  // execution loop begins (the fetch-ahead of the check epilogue at the final
  // loop branch is the canonical case). Its grant/beats/retire and the refill
  // completion drain into the window at contention-dependent cycles without
  // ever touching the core — the paper's claim is that the loop *originates*
  // no traffic, so the drain of pre-window transactions is excluded from the
  // byte comparison. A kBusSubmit inside the window is never excused.
  std::array<bool, mem::kMaxBusRequesters> open_txn{};
  std::array<bool, 2> pending_refill{};
  for (std::size_t i = 0; i < begin; ++i) {
    switch (ev[i].kind) {
      case EventKind::kBusSubmit: open_txn[ev[i].unit] = true; break;
      case EventKind::kBusRetire: open_txn[ev[i].unit] = false; break;
      case EventKind::kCacheMiss: pending_refill[ev[i].unit] = true; break;
      case EventKind::kCacheRefill: pending_refill[ev[i].unit] = false; break;
      default: break;
    }
  }
  for (std::size_t i = begin; i <= end; ++i) {
    const Event& e = ev[i];
    switch (e.kind) {
      case EventKind::kBusSubmit:
        ++out.window_bus_submits;  // loop-originated traffic: hard failure
        break;
      case EventKind::kBusGrant:
      case EventKind::kBusBeat:
        if (open_txn[e.unit]) continue;
        break;
      case EventKind::kBusRetire:
        if (open_txn[e.unit]) {
          open_txn[e.unit] = false;
          continue;
        }
        break;
      case EventKind::kCacheRefill:
        if (pending_refill[e.unit]) {
          pending_refill[e.unit] = false;
          continue;
        }
        break;
      default: break;
    }
    out.window.push_back(e);
  }
  // Rebase: subtract the window's first cycle stamp so solo and contended
  // streams align (see the header comment on the shared-delta argument).
  const u64 base = out.window.front().cycle;
  for (Event& e : out.window) e.cycle -= base;
  return out;
}

}  // namespace

AuditResult audit_determinism(const core::SelfTestRoutine& routine,
                              const AuditOptions& opts) {
  AuditResult r;

  core::BuiltTest graded = core::build_wrapped(
      routine, core::WrapperKind::kCacheBased,
      env_for_core(opts.graded_core, opts.write_allocate, opts.use_perf_counters));
  // Neighbours run plain-wrapped (uncached) copies: every fetch crosses the
  // shared bus, so the graded core's whole run executes under contention.
  std::vector<core::BuiltTest> neighbors;
  for (unsigned c = 0; c < soc::kMaxCores; ++c) {
    if (c == opts.graded_core) continue;
    neighbors.push_back(core::build_wrapped(
        routine, core::WrapperKind::kPlain,
        env_for_core(c, opts.write_allocate, opts.use_perf_counters)));
  }

  const RunOutcome solo = run_once(graded, neighbors, opts, /*contended=*/false);
  const RunOutcome cont = run_once(graded, neighbors, opts, /*contended=*/true);

  r.solo_cycles = solo.graded_cycles;
  r.contended_cycles = cont.graded_cycles;
  r.contended_neighbor_grants = cont.neighbor_grants;
  r.window_events_solo = solo.window.size();
  r.window_events_contended = cont.window.size();
  r.verdicts_pass = solo.pass && cont.pass;

  if (solo.timed_out || cont.timed_out) {
    r.detail = "watchdog expired during the audit run";
    return r;
  }
  if (!solo.window_found || !cont.window_found) {
    r.detail = "execution-loop window not found (routine not cache-wrapped?)";
    return r;
  }

  r.invariant_clean = solo.violations.empty() && cont.violations.empty() &&
                      solo.window_bus_submits == 0 && cont.window_bus_submits == 0;
  if (!r.invariant_clean) {
    for (const auto& v : solo.violations) r.detail += "solo: " + v + "\n";
    for (const auto& v : cont.violations) r.detail += "contended: " + v + "\n";
    if (solo.window_bus_submits || cont.window_bus_submits)
      r.detail += "bus transactions originated inside the execution-loop window\n";
  }

  const std::string a = serialize(solo.window);
  const std::string b = serialize(cont.window);
  r.streams_identical = a == b;
  if (!r.streams_identical) {
    if (a.size() != b.size()) {
      r.detail += "window sizes differ: " + std::to_string(solo.window.size()) +
                  " vs " + std::to_string(cont.window.size()) + " events\n";
    } else {
      for (std::size_t i = 0; i < solo.window.size(); ++i) {
        std::string ea, eb;
        append_bytes(solo.window[i], ea);
        append_bytes(cont.window[i], eb);
        if (ea != eb) {
          r.detail += "first divergence at window event " + std::to_string(i) +
                      ": " + kind_name(solo.window[i].kind) + " vs " +
                      kind_name(cont.window[i].kind) + "\n";
          break;
        }
      }
    }
  }
  if (!r.verdicts_pass) r.detail += "graded core did not PASS in both runs\n";
  return r;
}

CampaignAuditResult audit_campaign_determinism(
    const fault::CampaignConfig& cfg, const fault::SocFactory& factory,
    const std::vector<unsigned>& threads) {
  CampaignAuditResult r;
  r.thread_counts = threads;

  std::vector<std::string> streams;
  std::vector<std::vector<fault::FaultOutcome>> outcomes;
  for (unsigned t : threads) {
    StreamCapture cap;
    fault::CampaignConfig c = cfg;
    c.threads = t;
    c.sink = &cap;
    fault::Campaign campaign(c, factory);
    const fault::CampaignResult res = campaign.run();
    streams.push_back(serialize(cap.events()));
    outcomes.push_back(res.outcomes);
    if (streams.size() == 1) r.events = cap.events().size();
  }

  r.streams_identical = true;
  r.outcomes_identical = true;
  for (std::size_t i = 1; i < streams.size(); ++i) {
    if (streams[i] != streams[0]) {
      r.streams_identical = false;
      r.detail += "event stream at threads=" + std::to_string(threads[i]) +
                  " differs from threads=" + std::to_string(threads[0]) + "\n";
    }
    if (outcomes[i] != outcomes[0]) {
      r.outcomes_identical = false;
      r.detail += "outcomes at threads=" + std::to_string(threads[i]) +
                  " differ from threads=" + std::to_string(threads[0]) + "\n";
    }
  }
  return r;
}

}  // namespace detstl::trace
