#pragma once
// Determinism audit: turns the paper's claim into an executable check.
//
//  * audit_determinism() — run a cache-wrapped routine solo and under full
//    bus contention (the other two cores execute plain-wrapped copies of the
//    same routine, i.e. continuous uncached flash traffic) and compare the
//    graded core's execution-loop event streams byte for byte. The streams
//    are rebased to the first window event before comparison: every emitter
//    clock (CPU perf cycles, memory-system cycles, bus cycles) advances 1:1
//    with SoC ticks, so a contention-induced start-time shift moves all
//    window events by the same delta and determinism == byte equality.
//    Transactions the loading pass initiated may still drain into the window
//    (fetch-ahead of the check epilogue at the final loop branch); their
//    completion events are excluded from the comparison — the claim is that
//    the loop *originates* no traffic (any in-window kBusSubmit still fails
//    the audit) and that the core-side stream is unperturbed.
//
//  * audit_campaign_determinism() — run the same fault campaign at several
//    worker-thread counts and require byte-identical event streams and
//    outcome vectors (the campaign emits only from serial phases and from
//    the deterministic post-join merge, so thread count must not show).
//
// Both are exposed through the tools/detscope CLI and run in the tier-1
// test suite (tests/test_trace.cpp).

#include <array>
#include <string>
#include <vector>

#include "core/wrapper.h"
#include "fault/campaign.h"
#include "trace/capture.h"
#include "trace/event.h"

namespace detstl::trace {

/// Forwards every event to each registered sink (capture + metrics in one run).
class FanoutSink final : public EventSink {
 public:
  void add(EventSink* s) { sinks_.push_back(s); }
  void on_event(const Event& e) override {
    for (EventSink* s : sinks_) s->on_event(e);
  }

 private:
  std::vector<EventSink*> sinks_;
};

struct AuditOptions {
  unsigned graded_core = 0;
  bool write_allocate = true;
  bool use_perf_counters = false;
  /// Reset stagger of the contended run (the quickstart scenario's worst
  /// case). The graded core's own stagger is forced to 0 in both runs.
  std::array<u32, 3> stagger = {0, 3, 7};
  u64 max_cycles = 10'000'000;
};

struct AuditResult {
  bool streams_identical = false;  // rebased execution-loop streams match
  bool invariant_clean = false;    // no exec-loop bus submits / misses, both runs
  bool verdicts_pass = false;      // graded core PASSed in both runs
  std::size_t window_events_solo = 0;
  std::size_t window_events_contended = 0;
  u64 solo_cycles = 0;       // graded-core cycles, reset -> halt
  u64 contended_cycles = 0;
  /// Bus grants issued to the neighbour cores' requesters in the contended
  /// run — proof the execution loop was actually under contention.
  u64 contended_neighbor_grants = 0;
  std::string detail;  // human-readable failure explanation (empty on pass)

  bool passed() const { return streams_identical && invariant_clean && verdicts_pass; }
};

/// Audit one routine under the cache-based wrapper. The routine must be
/// cache-wrappable (every built-in routine is; see core::routine_registry).
AuditResult audit_determinism(const core::SelfTestRoutine& routine,
                              const AuditOptions& opts = {});

struct CampaignAuditResult {
  bool streams_identical = false;
  bool outcomes_identical = false;
  std::vector<unsigned> thread_counts;
  std::size_t events = 0;  // events per run (identical across runs on pass)
  std::string detail;

  bool passed() const { return streams_identical && outcomes_identical; }
};

/// Run the campaign described by (cfg, factory) once per entry of `threads`
/// (cfg.threads and cfg.sink are overridden) and compare event streams and
/// outcome vectors across all runs.
CampaignAuditResult audit_campaign_determinism(
    const fault::CampaignConfig& cfg, const fault::SocFactory& factory,
    const std::vector<unsigned>& threads = {1, 2, 8});

}  // namespace detstl::trace
