#pragma once
// In-memory metrics sink: aggregates events into per-core, per-wrapper-phase
// counters. This turns the paper's central determinism claim — "during the
// execution loop every access hits in the private L1s" — into the checkable
// invariant `execution_loop.bus_submits == 0 && *_misses == 0` (see
// violations()).
//
// Events emitted before the first kPhaseBegin of a core (boot, prologue) and
// after its wrapper completes land in the kOutsidePhase bucket. Campaign
// lifecycle events carry core == kNoCore and are counted globally.

#include <array>
#include <string>
#include <vector>

#include "trace/event.h"

namespace detstl::trace {

struct PhaseCounters {
  u64 events = 0;  // everything attributed to this bucket
  // Shared-bus activity issued by the core's three requester ports.
  u64 bus_submits = 0;
  u64 bus_reads = 0;
  u64 bus_writes = 0;
  u64 bus_wait_cycles = 0;       // summed submit->grant latencies
  u64 bus_occupancy_cycles = 0;  // summed grant->completion occupancies
  u64 bus_beats = 0;
  u64 bus_retires = 0;
  // Private L1 actions.
  u64 icache_hits = 0;
  u64 icache_misses = 0;
  u64 icache_refills = 0;
  u64 dcache_hits = 0;
  u64 dcache_misses = 0;
  u64 dcache_refills = 0;
  u64 dcache_writebacks = 0;
  u64 invalidates = 0;
  // Interrupt recognition.
  u64 irq_windows = 0;
  u64 irqs_taken = 0;
};

class MetricsRegistry final : public EventSink {
 public:
  static constexpr unsigned kCores = 3;
  /// Bucket index for events outside any recognised wrapper phase.
  static constexpr unsigned kOutsidePhase = kNumPhases;
  static constexpr unsigned kNumBuckets = kNumPhases + 1;

  void on_event(const Event& e) override;

  const PhaseCounters& counters(unsigned core, unsigned bucket) const {
    return by_[core][bucket];
  }
  const PhaseCounters& counters(unsigned core, Phase p) const {
    return by_[core][static_cast<unsigned>(p)];
  }
  /// Campaign lifecycle events seen (core == kNoCore).
  u64 campaign_events() const { return campaign_events_; }
  u64 total_events() const { return total_events_; }

  /// Execution-loop determinism violations: one human-readable line per
  /// core whose execution loop issued bus transactions or missed a cache.
  /// Empty == the paper's invariant holds for every traced core.
  std::vector<std::string> violations() const;

  /// Per-core phase tables (TextTable rendering).
  std::string render() const;

  void clear();

 private:
  std::array<std::array<PhaseCounters, kNumBuckets>, kCores> by_{};
  std::array<unsigned, kCores> current_{kOutsidePhase, kOutsidePhase, kOutsidePhase};
  u64 campaign_events_ = 0;
  u64 total_events_ = 0;
};

}  // namespace detstl::trace
