#pragma once
// Chrome-trace-format (Trace Event Format) JSON writer: buffers events and
// serialises them so Perfetto / chrome://tracing render one named track per
// core plus one per bus requester (and one for the fault campaign). Wrapper
// phases become duration (B/E) slices, bus occupancy becomes complete (X)
// slices with wait/occupancy args, everything else instants.
//
// Timestamps map 1 cycle -> 1 "microsecond" tick; the absolute unit is
// meaningless, only relative extent matters (docs/observability.md).

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.h"

namespace detstl::trace {

class ChromeTraceWriter final : public EventSink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }

  std::size_t size() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }

  /// Per-cycle cache hits and bus data beats dominate the event volume of a
  /// cache-resident run; both are dropped from the JSON unless requested
  /// (they are still captured and still count in MetricsRegistry).
  void set_include_hits(bool on) { include_hits_ = on; }
  void set_include_beats(bool on) { include_beats_ = on; }

  /// Serialise everything captured so far as a Chrome trace JSON object.
  void write(std::ostream& os) const;

  /// Convenience: write to `path`; false (with errno intact) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<Event> events_;
  bool include_hits_ = false;
  bool include_beats_ = false;
};

}  // namespace detstl::trace
