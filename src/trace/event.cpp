#include "trace/event.h"

namespace detstl::trace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kBusSubmit: return "bus-submit";
    case EventKind::kBusGrant: return "bus-grant";
    case EventKind::kBusBeat: return "bus-beat";
    case EventKind::kBusRetire: return "bus-retire";
    case EventKind::kCacheHit: return "cache-hit";
    case EventKind::kCacheMiss: return "cache-miss";
    case EventKind::kCacheRefill: return "cache-refill";
    case EventKind::kCacheWriteback: return "cache-writeback";
    case EventKind::kCacheInvalidate: return "cache-invalidate";
    case EventKind::kPhaseBegin: return "phase-begin";
    case EventKind::kIrqWindow: return "irq-window";
    case EventKind::kIrqTaken: return "irq-taken";
    case EventKind::kCampaignPhaseBegin: return "campaign-phase-begin";
    case EventKind::kCampaignPhaseEnd: return "campaign-phase-end";
    case EventKind::kCampaignFault: return "campaign-fault";
    case EventKind::kCampaignDone: return "campaign-done";
    case EventKind::kDisturbance: return "disturbance";
    case EventKind::kSupAttempt: return "sup-attempt";
    case EventKind::kSupOutcome: return "sup-outcome";
    case EventKind::kSupDecision: return "sup-decision";
    case EventKind::kCkptFlush: return "ckpt-flush";
    case EventKind::kCkptLoad: return "ckpt-load";
    case EventKind::kCkptReject: return "ckpt-reject";
    case EventKind::kMissionSlice: return "mission-slice";
    case EventKind::kMissionCheck: return "mission-check";
    case EventKind::kSoakUpset: return "soak-upset";
  }
  return "?";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kInvalidate: return "invalidate";
    case Phase::kLoadingLoop: return "loading-loop";
    case Phase::kExecutionLoop: return "execution-loop";
    case Phase::kSignatureCheck: return "signature-check";
  }
  return "?";
}

}  // namespace detstl::trace
