#include "trace/metrics.h"

#include "common/table.h"

namespace detstl::trace {

void MetricsRegistry::on_event(const Event& e) {
  ++total_events_;
  if (e.core == kNoCore) {
    ++campaign_events_;
    return;
  }
  if (e.core >= kCores) return;

  if (e.kind == EventKind::kPhaseBegin) current_[e.core] = e.unit;

  PhaseCounters& c = by_[e.core][current_[e.core]];
  ++c.events;
  switch (e.kind) {
    case EventKind::kBusSubmit:
      ++c.bus_submits;
      if (e.flags & 0x1) ++c.bus_writes; else ++c.bus_reads;
      break;
    case EventKind::kBusGrant:
      c.bus_wait_cycles += e.a;
      c.bus_occupancy_cycles += e.b;
      break;
    case EventKind::kBusBeat: ++c.bus_beats; break;
    case EventKind::kBusRetire: ++c.bus_retires; break;
    case EventKind::kCacheHit:
      ++(e.unit == 0 ? c.icache_hits : c.dcache_hits);
      break;
    case EventKind::kCacheMiss:
      ++(e.unit == 0 ? c.icache_misses : c.dcache_misses);
      break;
    case EventKind::kCacheRefill:
      ++(e.unit == 0 ? c.icache_refills : c.dcache_refills);
      break;
    case EventKind::kCacheWriteback: ++c.dcache_writebacks; break;
    case EventKind::kCacheInvalidate: ++c.invalidates; break;
    case EventKind::kIrqWindow: ++c.irq_windows; break;
    case EventKind::kIrqTaken: ++c.irqs_taken; break;
    case EventKind::kPhaseBegin:
    default:
      break;
  }
}

std::vector<std::string> MetricsRegistry::violations() const {
  std::vector<std::string> out;
  for (unsigned core = 0; core < kCores; ++core) {
    const PhaseCounters& x =
        by_[core][static_cast<unsigned>(Phase::kExecutionLoop)];
    if (x.events == 0) continue;  // core never entered an execution loop
    const auto flag = [&](u64 n, const char* what) {
      if (n == 0) return;
      out.push_back("core " + std::string(1, static_cast<char>('A' + core)) +
                    ": " + std::to_string(n) + " " + what +
                    " during its execution loop");
    };
    flag(x.bus_submits, "bus submit(s)");
    flag(x.icache_misses, "I-cache miss(es)");
    flag(x.dcache_misses, "D-cache miss(es)");
    flag(x.dcache_writebacks, "D-cache writeback(s)");
  }
  return out;
}

std::string MetricsRegistry::render() const {
  static const char* kBucketNames[kNumBuckets] = {
      "invalidate", "loading-loop", "execution-loop", "signature-check",
      "(outside wrapper)"};
  std::string out;
  for (unsigned core = 0; core < kCores; ++core) {
    u64 any = 0;
    for (const auto& b : by_[core]) any += b.events;
    if (any == 0) continue;
    TextTable t("core " + std::string(1, static_cast<char>('A' + core)) +
                " — per-phase event counters");
    t.header({"phase", "events", "bus sub", "bus wait", "bus occ", "I$ hit",
              "I$ miss", "D$ hit", "D$ miss", "D$ wb", "irq"});
    for (unsigned b = 0; b < kNumBuckets; ++b) {
      const PhaseCounters& c = by_[core][b];
      if (c.events == 0) continue;
      const auto n = [](u64 v) { return TextTable::fmt_int(static_cast<long long>(v)); };
      t.row({kBucketNames[b], n(c.events), n(c.bus_submits), n(c.bus_wait_cycles),
             n(c.bus_occupancy_cycles), n(c.icache_hits), n(c.icache_misses),
             n(c.dcache_hits), n(c.dcache_misses), n(c.dcache_writebacks),
             n(c.irq_windows + c.irqs_taken)});
    }
    out += t.str();
  }
  if (campaign_events_ != 0)
    out += "campaign lifecycle events: " + std::to_string(campaign_events_) + "\n";
  return out;
}

void MetricsRegistry::clear() {
  by_ = {};
  current_ = {kOutsidePhase, kOutsidePhase, kOutsidePhase};
  campaign_events_ = total_events_ = 0;
}

}  // namespace detstl::trace
