#pragma once
// Static<->dynamic cross-validation (stlint --xval): replay a captured
// detscope event stream (trace_io.h) against the abstract interpreter's
// predictions (analysis/absint.h) for the same scenario:
//
//   * execution loop   predicted miss set must equal the observed one —
//                      for a proven routine both are empty, so any
//                      kCacheMiss inside a core's execution-loop window
//                      refutes the static proof (or the simulator);
//   * loading loop     every observed refill line must lie in the static
//                      may-footprint (one sequential-fetch-ahead line of
//                      slack: the pipeline fetches past a taken branch);
//   * bus interference every kBusGrant wait must stay within the static
//                      per-access bound d_max.
//
// Both sides assemble the per-core program from core::quickstart_env, so the
// prediction is about the very image the recorded run executed (the golden
// signature constant is the only difference and carries no address).

#include <string>
#include <vector>

#include "trace/event.h"

namespace detstl::trace {

struct XvalOptions {
  std::string routine = "fwd-pc";
  unsigned cores = 3;
  bool write_allocate = true;
};

/// Verdict for one graded core.
struct CoreXval {
  unsigned core = 0;
  bool statically_proven = false;  // all absint obligations discharged
  bool exec_window_seen = false;   // the trace reached the execution loop
  std::size_t exec_misses = 0;
  std::size_t loading_refills = 0;
  std::size_t unpredicted_refills = 0;
  std::size_t predicted_lines = 0;  // |may-footprint| (I + D lines)
  u32 max_bus_wait = 0;
  std::vector<std::string> violations;
  bool ok() const {
    return statically_proven && exec_window_seen && violations.empty();
  }
};

struct XvalResult {
  bool ok = false;  // inputs were usable (routine known, trace non-empty)
  std::string error;
  u32 d_max = 0;  // static per-access interference bound (cycles)
  std::vector<CoreXval> cores;
  bool passed() const;
};

XvalResult cross_validate(const std::vector<Event>& events,
                          const XvalOptions& opt);

std::string format(const XvalResult& r);

}  // namespace detstl::trace
