#pragma once
// detscope event model: one flat structured event type emitted by the bus,
// the per-core memory systems, the CPUs and the fault-campaign engine, and a
// minimal sink interface the emitters hold as a non-owning pointer (null =
// tracing off; the emit sites cost one pointer compare).
//
// Components carry the sink exactly like the CPU hook pointers: a SoC value
// copy (checkpoint) copies the pointer verbatim, and whoever restores a
// checkpoint is responsible for re-installing or clearing it
// (soc::Soc::set_trace_sink). The fault campaign clears it on every restored
// faulty replica so worker threads never emit concurrently.
//
// The DETSTL_TRACE macro is the only emission idiom; configuring the build
// with DETSTL_TRACE_DISABLED compiles every emit site out entirely (the
// event expression is never evaluated).

#include "common/bitutil.h"

namespace detstl::trace {

enum class EventKind : u8 {
  // Shared-bus lifecycle (unit = requester id, core = requester / 3).
  kBusSubmit,     // addr, a = bytes, flags bit0 = write, bit1 = amo
  kBusGrant,      // addr, a = wait cycles since submit, b = occupancy cycles
  kBusBeat,       // addr = beat address, a = beat index, b = data word
  kBusRetire,     // requester consumed the completed transaction
  // Private-cache actions (unit = 0 for I$, 1 for D$).
  kCacheHit,        // addr, a = set, b = way
  kCacheMiss,       // addr, a = set
  kCacheRefill,     // addr = line base, a = set, b = way filled
  kCacheWriteback,  // addr = victim line base, a = set, b = victim way
  kCacheInvalidate, // a = valid lines discarded
  // Wrapper phase transitions (unit = Phase, addr = pc of the transition).
  kPhaseBegin,
  // Interrupt recognition (paper Sec. II-C: synchronous imprecise events).
  kIrqWindow,  // pipeline drain for a pending IRQ begins; a = cause
  kIrqTaken,   // trap taken; a = cause, addr = mepc
  // Fault-campaign lifecycle (unit = fault::CampaignPhase; cycle = emission
  // sequence number, deterministic for every thread count).
  kCampaignPhaseBegin,  // a/b = total work units (lo/hi)
  kCampaignPhaseEnd,    // a = excited so far, b = detected so far
  kCampaignFault,       // cycle = fault index, unit = FaultOutcome, addr = net
  kCampaignDone,        // a = detected, b = simulated faults
  // On-line supervisor + disturbance injection (src/runtime/; cycle = SoC
  // tick). The unit field carries the runtime-layer enums by value so this
  // header stays below src/runtime/ in the layering.
  kDisturbance,  // unit = runtime::DisturbanceKind, addr = target,
                 // a = kind detail (bit / stall cycles / irq sources),
                 // flags bit0 = applied (0 = skipped: no resident target)
  kSupAttempt,   // unit = rung (0 cached, 1 fallback), addr = entry pc,
                 // a = routine index, b = attempt number (1-based)
  kSupOutcome,   // unit = runtime::AttemptStatus, a = routine index,
                 // b = observed signature (0 on timeout)
  kSupDecision,  // unit = runtime::Decision, a = routine index,
                 // b = backoff cycles (retry) / 0
  // Checkpoint/journal subsystem (fault/checkpoint.h). Load/reject events
  // fire on the serial resume path (cycle = emission sequence number);
  // flush events fire from whichever worker filled the shard (cycle = the
  // writer's own flush sequence) and are operational telemetry, excluded
  // from the cross-thread-count stream-determinism contract.
  kCkptFlush,   // unit = PayloadKind, a = records in shard, b = shard index
  kCkptLoad,    // unit = PayloadKind, a = records loaded, b = shard index
  kCkptReject,  // unit = PayloadKind, a = RejectReason, b = shard index
  // In-field mission mode + SEU soak (src/runtime/mission.h, soak.h; cycle =
  // SoC tick). Unit carries runtime-layer enums by value, same layering rule
  // as the supervisor events above.
  kMissionSlice,  // STL slice launched: core = tested core, addr = entry pc,
                  // a = routine index, b = slice index
  kMissionCheck,  // STL slice verdict: core = tested core, a = signature,
                  // b = worst mission-port bus wait this slice,
                  // flags bit0 = signature ok, bit1 = wait <= d_max
  kSoakUpset,     // unit = runtime::SoakSite, addr = resolved target,
                  // a = flipped bit, b = plan upset index,
                  // flags bit0 = applied (0 = skipped: no live target)
};

const char* kind_name(EventKind k);

/// The cache-based wrapper's phase structure (Fig. 2b), recognised from
/// architectural actions by the CPU's phase tracker (see PhaseTracker).
enum class Phase : u8 {
  kInvalidate,      // CacheOp invalidate observed
  kLoadingLoop,     // wrapper loop counter (r30) seeded >= 2
  kExecutionLoop,   // loop counter reached 1: the checked iteration
  kSignatureCheck,  // loop counter reached 0 (or caches disabled)
};

inline constexpr unsigned kNumPhases = 4;

const char* phase_name(Phase p);

inline constexpr u8 kNoCore = 0xff;

struct Event {
  u64 cycle = 0;   // emitting component's clock (docs/observability.md)
  EventKind kind = EventKind::kBusSubmit;
  u8 core = kNoCore;  // owning core (bus events: requester / 3)
  u8 unit = 0;        // kind-specific selector (see EventKind comments)
  u8 flags = 0;
  u32 addr = 0;
  u32 a = 0;
  u32 b = 0;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Recognises the cache-based wrapper's phases from the architectural
/// actions the wrapper emits (core/wrapper.cpp): a CacheOp invalidate, the
/// r30 loop-counter writes (the same marker convention the fault campaign's
/// signature_from_marker uses), and the CacheCfg=0 that precedes the
/// signature check. Plain/TCM wrappers never trip the tracker. Pure value
/// state — checkpoint copies carry it.
class PhaseTracker {
 public:
  /// Each observe_* returns true when a new phase begins (callers emit).
  bool observe_cache_op(u32 op_bits) {
    if ((op_bits & 0x3) == 0) return false;  // no invalidate bit set
    return enter(Phase::kInvalidate);
  }
  bool observe_loop_counter(u32 v) {
    if (!in_wrapper_) return false;
    if (v >= 2 && phase_ == Phase::kInvalidate) return enter(Phase::kLoadingLoop);
    if (v == 1 && (phase_ == Phase::kInvalidate || phase_ == Phase::kLoadingLoop))
      return enter(Phase::kExecutionLoop);
    if (v == 0 && phase_ == Phase::kExecutionLoop)
      return enter(Phase::kSignatureCheck);
    return false;
  }
  bool observe_cache_cfg(u32 cfg_bits) {
    // Disabling the caches inside the execution loop is the check epilogue
    // (fallback for ablation builds whose counter never reaches 0).
    if (in_wrapper_ && cfg_bits == 0 && phase_ == Phase::kExecutionLoop)
      return enter(Phase::kSignatureCheck);
    return false;
  }

  void reset() { in_wrapper_ = false; }
  bool active() const { return in_wrapper_; }
  Phase current() const { return phase_; }

 private:
  bool enter(Phase p) {
    if (in_wrapper_ && phase_ == p) return false;
    in_wrapper_ = true;
    phase_ = p;
    return true;
  }

  bool in_wrapper_ = false;
  Phase phase_ = Phase::kInvalidate;
};

}  // namespace detstl::trace

/// Emit an event iff a sink is installed. The event expression is evaluated
/// only when the sink is non-null; with DETSTL_TRACE_DISABLED it is compiled
/// out entirely.
#ifndef DETSTL_TRACE_DISABLED
#define DETSTL_TRACE(sink, ...)                            \
  do {                                                     \
    if ((sink) != nullptr) (sink)->on_event(__VA_ARGS__);  \
  } while (0)
#else
#define DETSTL_TRACE(sink, ...) \
  do {                          \
    (void)(sink);               \
  } while (0)
#endif
