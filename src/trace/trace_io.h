#pragma once
// Event-stream files: persist a captured detscope event stream (capture.h)
// so the static<->dynamic cross-validator (xval.h, stlint --xval) can replay
// a run recorded by a different process — e.g. a CI artifact.
//
// Format "DSEV": a 16-byte little-endian header
//   magic   4 B  "DSEV"
//   version 4 B  currently 1
//   count   8 B  number of records
// followed by `count` 24-byte records, byte-identical to capture.h's
// serialize() (so two files from "the same execution" are identical too).

#include <string>
#include <vector>

#include "trace/capture.h"

namespace detstl::trace {

inline constexpr u32 kEventFileVersion = 1;

/// Write `events` to `path`. Returns false on I/O failure.
bool write_events_file(const std::string& path,
                       const std::vector<Event>& events);

struct EventFileResult {
  bool ok = false;
  std::string error;
  std::vector<Event> events;
};

/// Read an event file back; rejects bad magic / version / truncation.
EventFileResult read_events_file(const std::string& path);

}  // namespace detstl::trace
