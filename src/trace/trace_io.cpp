#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>

namespace detstl::trace {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'E', 'V'};
constexpr std::size_t kRecordBytes = 24;

void put_u32(u32 v, std::string& out) {
  for (unsigned i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

u64 get_u64(const unsigned char* p, unsigned bytes) {
  u64 v = 0;
  for (unsigned i = 0; i < bytes; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool write_events_file(const std::string& path,
                       const std::vector<Event>& events) {
  std::string blob;
  blob.reserve(16 + events.size() * kRecordBytes);
  blob.append(kMagic, sizeof kMagic);
  put_u32(kEventFileVersion, blob);
  const u64 count = events.size();
  for (unsigned i = 0; i < 8; ++i)
    blob.push_back(static_cast<char>(count >> (8 * i)));
  blob += serialize(events);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  return std::fclose(f) == 0 && ok;
}

EventFileResult read_events_file(const std::string& path) {
  EventFileResult r;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    r.error = "cannot open " + path;
    return r;
  }
  std::string blob;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) blob.append(buf, n);
  std::fclose(f);

  if (blob.size() < 16 || std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    r.error = path + ": not a DSEV event file";
    return r;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(blob.data());
  const u32 version = static_cast<u32>(get_u64(p + 4, 4));
  if (version != kEventFileVersion) {
    r.error = path + ": unsupported event-file version " +
              std::to_string(version);
    return r;
  }
  const u64 count = get_u64(p + 8, 8);
  if (blob.size() != 16 + count * kRecordBytes) {
    r.error = path + ": truncated (" + std::to_string(blob.size()) +
              " bytes for " + std::to_string(count) + " records)";
    return r;
  }
  r.events.reserve(static_cast<std::size_t>(count));
  for (u64 i = 0; i < count; ++i) {
    const unsigned char* rec = p + 16 + i * kRecordBytes;
    Event e;
    e.cycle = get_u64(rec, 8);
    e.kind = static_cast<EventKind>(rec[8]);
    e.core = rec[9];
    e.unit = rec[10];
    e.flags = rec[11];
    e.addr = static_cast<u32>(get_u64(rec + 12, 4));
    e.a = static_cast<u32>(get_u64(rec + 16, 4));
    e.b = static_cast<u32>(get_u64(rec + 20, 4));
    r.events.push_back(e);
  }
  r.ok = true;
  return r;
}

}  // namespace detstl::trace
