#include "trace/xval.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "analysis/absint.h"
#include "core/routines.h"
#include "core/stl.h"

namespace detstl::trace {

namespace {

struct CorePrediction {
  std::set<u32> ilines, dlines;  // loading-phase may-refill line bases
  bool proven = false;
  std::string why;
  u32 d_max = 0;
  u32 iline_bytes = 32, dline_bytes = 32;
};

CorePrediction predict(const core::RoutineEntry& entry, unsigned core_id,
                       const XvalOptions& opt) {
  const auto routine = entry.make();
  const core::BuildEnv env = core::quickstart_env(core_id, opt.write_allocate);
  const isa::Program prog =
      core::assemble_wrapped(*routine, core::WrapperKind::kCacheBased, env);

  analysis::AnalysisConfig acfg =
      core::lint_config(*routine, core::WrapperKind::kCacheBased, env);
  acfg.num_cores = opt.cores;
  for (unsigned peer = 0; peer < opt.cores; ++peer) {
    if (peer == core_id) continue;
    const core::BuildEnv pe = core::quickstart_env(peer, opt.write_allocate);
    const isa::Program pp =
        core::assemble_wrapped(*routine, core::WrapperKind::kCacheBased, pe);
    acfg.peer_regions.push_back(
        {pe.data_base, std::max<u32>(routine->data_bytes(), 4)});
    for (const auto& seg : pp.segments())
      acfg.peer_regions.push_back({seg.base, static_cast<u32>(seg.bytes.size())});
  }

  const analysis::ProgramModel model = analysis::build_model(prog, acfg);
  const analysis::AbsIntResult ai = analysis::interpret(prog, acfg, model);

  CorePrediction p;
  p.ilines = ai.predicted_loading_ilines;
  p.dlines = ai.predicted_loading_dlines;
  p.proven = ai.analyzable && ai.all_proven();
  if (!p.proven) {
    p.why = ai.analyzable ? "an obligation is unproven or refuted"
                          : ai.not_analyzable_why;
  }
  p.d_max = ai.bound.d_max;
  p.iline_bytes = acfg.mem.icache.line_bytes;
  p.dline_bytes = acfg.mem.dcache.line_bytes;
  return p;
}

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

bool XvalResult::passed() const {
  if (!ok) return false;
  for (const auto& c : cores)
    if (!c.ok()) return false;
  return true;
}

XvalResult cross_validate(const std::vector<Event>& events,
                          const XvalOptions& opt) {
  XvalResult r;
  const core::RoutineEntry* entry = core::find_routine(opt.routine);
  if (entry == nullptr) {
    r.error = "unknown routine '" + opt.routine + "'";
    return r;
  }
  if (events.empty()) {
    r.error = "event stream is empty (record with detscope run --events)";
    return r;
  }

  std::vector<CorePrediction> preds;
  for (unsigned c = 0; c < opt.cores; ++c) preds.push_back(predict(*entry, c, opt));
  r.d_max = preds.empty() ? 0 : preds[0].d_max;

  r.cores.resize(opt.cores);
  std::vector<Phase> phase(opt.cores, Phase::kSignatureCheck);
  std::vector<bool> in_wrapper(opt.cores, false);
  for (unsigned c = 0; c < opt.cores; ++c) {
    r.cores[c].core = c;
    r.cores[c].statically_proven = preds[c].proven;
    r.cores[c].predicted_lines =
        preds[c].ilines.size() + preds[c].dlines.size();
    if (!preds[c].proven)
      r.cores[c].violations.push_back("static proof missing: " + preds[c].why);
  }

  for (const Event& e : events) {
    if (e.core >= opt.cores) continue;
    CoreXval& cx = r.cores[e.core];
    switch (e.kind) {
      case EventKind::kPhaseBegin:
        phase[e.core] = static_cast<Phase>(e.unit);
        in_wrapper[e.core] = true;
        if (phase[e.core] == Phase::kExecutionLoop) cx.exec_window_seen = true;
        break;
      case EventKind::kCacheMiss:
        if (in_wrapper[e.core] && phase[e.core] == Phase::kExecutionLoop) {
          ++cx.exec_misses;
          if (cx.violations.size() < 16)
            cx.violations.push_back(std::string("execution-loop ") +
                                    (e.unit == 0 ? "I" : "D") +
                                    "-cache miss at " + hex(e.addr) +
                                    " (predicted miss set is empty)");
        }
        break;
      case EventKind::kCacheRefill:
        if (in_wrapper[e.core] && phase[e.core] == Phase::kLoadingLoop) {
          ++cx.loading_refills;
          const auto& pred = e.unit == 0 ? preds[e.core].ilines
                                         : preds[e.core].dlines;
          const u32 lb = e.unit == 0 ? preds[e.core].iline_bytes
                                     : preds[e.core].dline_bytes;
          // One line of sequential fetch-ahead slack: the fetch stage may
          // run one line past the last predicted instruction of a path.
          const bool predicted =
              pred.count(e.addr) != 0 ||
              (e.addr >= lb && pred.count(e.addr - lb) != 0);
          if (!predicted) {
            ++cx.unpredicted_refills;
            if (cx.violations.size() < 16)
              cx.violations.push_back(
                  std::string("loading-loop ") + (e.unit == 0 ? "I" : "D") +
                  "-refill of line " + hex(e.addr) +
                  " outside the static may-footprint");
          }
        }
        break;
      case EventKind::kBusGrant:
        cx.max_bus_wait = std::max(cx.max_bus_wait, e.a);
        if (e.a > r.d_max && cx.violations.size() < 16)
          cx.violations.push_back("bus grant waited " + std::to_string(e.a) +
                                  " cycles > static bound " +
                                  std::to_string(r.d_max));
        break;
      default:
        break;
    }
  }

  for (unsigned c = 0; c < opt.cores; ++c) {
    if (!r.cores[c].exec_window_seen)
      r.cores[c].violations.push_back(
          "trace never reached the execution loop on this core");
  }
  r.ok = true;
  return r;
}

std::string format(const XvalResult& r) {
  std::ostringstream os;
  if (!r.ok) {
    os << "xval: " << r.error << "\n";
    return os.str();
  }
  os << "static<->dynamic cross-validation (interference bound d_max = "
     << r.d_max << " cycles)\n";
  for (const auto& c : r.cores) {
    os << "core " << static_cast<char>('A' + c.core) << ": "
       << (c.ok() ? "OK  " : "FAIL") << "  exec misses " << c.exec_misses
       << " (predicted 0), loading refills " << c.loading_refills << "/"
       << c.predicted_lines << " predicted lines (" << c.unpredicted_refills
       << " unpredicted), max bus wait " << c.max_bus_wait << "\n";
    for (const auto& v : c.violations) os << "    " << v << "\n";
  }
  os << "xval: " << (r.passed() ? "PASS" : "FAIL")
     << " — observed behaviour " << (r.passed() ? "matches" : "contradicts")
     << " the static prediction\n";
  return os.str();
}

}  // namespace detstl::trace
