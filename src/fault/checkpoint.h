#pragma once
// Crash-safe checkpoint/journal subsystem for long-running campaigns
// (docs/fault_simulation.md "Checkpoint/resume"). Completed per-unit
// outcomes — fault outcomes for fault::Campaign, serialised run records for
// runtime::run_disturbance_campaign — are periodically persisted into
// checksummed, versioned *shard* files written via write-temp-then-atomic-
// rename, under a *manifest* that binds the checkpoint directory to a hash
// of the campaign configuration, the netlist identity and the routine image.
// A resumed campaign loads the verified shards, skips the recorded units and
// recomputes every aggregate post-join, so straight, killed-and-resumed and
// multi-resume executions produce byte-identical results at any thread
// count.
//
// Failure handling is first-class, not best-effort:
//  * a stale or mismatched *manifest* (different schema, payload kind or
//    config hash) rejects the whole checkpoint with CheckpointMismatch —
//    never a silent merge;
//  * a truncated, bit-flipped or version-skewed *shard* fails its header or
//    payload checksum validation, is quarantined to `<shard>.corrupt`, and
//    its unit range is transparently re-executed (kCkptReject trace event).
//
// On-disk layout (all integers little-endian; FNV-1a 64 checksums):
//
//   manifest.ckpt   "DSTLMANI" | u32 schema | u32 payload kind | u64 config
//                   hash | char producer[24] | u64 header checksum
//   shard-NNNNNN.ckpt
//                   "DSTLSHRD" | u32 schema | u32 payload kind | u64 config
//                   hash | u64 record count | u64 payload bytes | u64
//                   payload checksum | u64 header checksum | payload
//   payload         per record: u64 unit index | u32 byte length | bytes

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bitutil.h"

namespace detstl::trace {
class EventSink;
}

namespace detstl::netlist {
class Netlist;
}

namespace detstl::soc {
class Soc;
}

namespace detstl::fault {

/// On-disk schema version; bumped on any layout change. Printed by every
/// tool's --version next to the suite version (common/version.h).
inline constexpr u32 kCheckpointSchemaVersion = 1;

/// What a checkpoint's records are (bound by manifest and shard headers, so
/// a fault-campaign checkpoint can never resume a disturbance campaign).
enum class PayloadKind : u32 {
  kFaultOutcomes = 1,     // record payload: one FaultOutcome byte
  kDisturbanceRuns = 2,   // record payload: serialised runtime::RunRecord
  kSoakRuns = 3,          // record payload: serialised runtime::SoakRunRecord
};

/// Why a shard was quarantined (kCkptReject event `a` field).
enum class RejectReason : u8 {
  kTruncated = 1,        // shorter than its header or declared payload
  kBadMagic = 2,
  kBadHeaderChecksum = 3,  // bit-flip anywhere in the header
  kVersionSkew = 4,        // produced by a different schema version
  kKindMismatch = 5,       // fault shard in a disturbance checkpoint etc.
  kHashMismatch = 6,       // shard from a different campaign configuration
  kBadPayloadChecksum = 7,  // bit-flip anywhere in the payload
  kMalformedRecords = 8,    // framing does not add up to the payload size
};

const char* reject_reason_name(RejectReason r);

enum class FsyncPolicy : u8 {
  kNone,        // rely on the OS; fastest, loses the tail on power cut
  kEveryShard,  // fsync shard before rename + directory after (default)
};

struct CheckpointConfig {
  std::string dir;       // empty = checkpointing off
  u32 interval = 256;    // completed records between shard flushes
  bool resume = false;   // load verified shards before running
  FsyncPolicy fsync = FsyncPolicy::kEveryShard;

  bool enabled() const { return !dir.empty(); }
};

/// Resume/corruption bookkeeping carried in campaign results. Excluded from
/// the byte-identical determinism contract (like wall_seconds): a straight
/// run and a resumed run agree on everything else.
struct CheckpointStats {
  bool enabled = false;
  bool interrupted = false;  // cooperative drain cut the run short (resumable)
  u32 shards_loaded = 0;
  u32 shards_flushed = 0;
  u32 shards_corrupt = 0;    // quarantined to *.corrupt and re-executed
  u64 records_resumed = 0;   // units skipped because a shard recorded them
  /// Cumulative host time spent writing shards (serialise + write + fsync).
  /// A host timing like wall_seconds — never enters any determinism check.
  u64 flush_ns = 0;
};

/// A checkpoint exists but belongs to a different campaign (config hash,
/// schema or payload kind mismatch), or --resume found no manifest. Never
/// silently merged; surfaces as a usage/setup error in the tools.
class CheckpointMismatch : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the table drivers (src/exp/) when a campaign reports a
/// cooperative drain, so multi-campaign benches stop at the first
/// interrupted campaign and exit with the resumable exit code (see
/// tools/cli_util.h exit-code contract).
class Interrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative drain request shared between a signal handler (or a test)
/// and the campaign worker pools. Workers finish their in-flight chunk,
/// stop claiming new work, flush a final shard and return a partial result
/// with CheckpointStats::interrupted set. All operations are async-signal-
/// safe relaxed atomics.
class InterruptToken {
 public:
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  /// Deterministic kill point: request the stop once `units` more work units
  /// complete. Drives the ctest/CI kill-and-resume drills (a real SIGTERM
  /// lands at an arbitrary unit; the contract must hold for every one).
  void arm_after(u64 units) { countdown_.store(units, std::memory_order_relaxed); }

  /// Campaigns call this once per completed unit (fault / supervised run).
  void on_unit_complete() {
    if (countdown_.load(std::memory_order_relaxed) == 0) return;
    if (countdown_.fetch_sub(1, std::memory_order_relaxed) == 1) request_stop();
  }

  void clear() {
    stop_.store(false, std::memory_order_relaxed);
    countdown_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<u64> countdown_{0};
};

/// Process-wide token the drain signal handlers set.
InterruptToken& global_interrupt();

/// Install SIGINT/SIGTERM handlers that request a cooperative drain on
/// global_interrupt() instead of killing the process. Idempotent: repeated
/// calls (from a tool AND a library layer, or across campaigns) install the
/// handlers exactly once per process image.
void install_drain_handlers();

/// Reset the drain machinery in a freshly forked worker process: clears any
/// inherited stop request / armed countdown on global_interrupt() and
/// re-installs the handlers under this process's identity (a fork inherits
/// the parent's handler table AND the parent's already-installed flag, so a
/// plain install_drain_handlers() call would be a no-op there). Workers of
/// the stlserve orchestrator call this first thing (src/serve/).
void reset_for_child();

/// Arm a wall-clock budget for the whole process: after `seconds`, SIGALRM
/// requests a cooperative drain on global_interrupt() — exactly the SIGTERM
/// contract (finish in-flight units, flush a final shard, exit resumable).
/// 0 cancels a pending budget. Drives `--timeout` in stlrun and the table
/// benches (tools/cli_util.h exit-code contract, code 3).
void arm_wallclock_timeout(unsigned seconds);

// -----------------------------------------------------------------------------
// Hashing
// -----------------------------------------------------------------------------

inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;

/// FNV-1a 64 over a byte range, chainable via `h`.
u64 fnv1a(const void* data, std::size_t n, u64 h = kFnvOffset);

/// Order-sensitive accumulator for the campaign config hashes. Every field
/// is framed with its width so adjacent fields can never alias.
class ConfigHasher {
 public:
  ConfigHasher& u8v(u8 v) { return bytes(&v, 1); }
  ConfigHasher& u32v(u32 v);
  ConfigHasher& u64v(u64 v);
  ConfigHasher& f64v(double v);  // hashed by bit pattern
  ConfigHasher& str(const std::string& s);
  u64 digest() const { return h_; }

 private:
  ConfigHasher& bytes(const void* data, std::size_t n) {
    h_ = fnv1a(data, n, h_);
    return *this;
  }
  u64 h_ = kFnvOffset;
};

/// Structural identity of a graded netlist: every gate's op and operands,
/// plus the input/flop counts. Two netlists with the same fingerprint have
/// the same collapsed fault list and evaluation behaviour.
u64 netlist_fingerprint(const netlist::Netlist& nl);

/// Identity of the routine image under test: the full flash ROM plus the
/// core-activation mask and kinds. Any rebuilt/relinked routine changes it.
u64 soc_image_fingerprint(const soc::Soc& soc);

// -----------------------------------------------------------------------------
// Shard I/O
// -----------------------------------------------------------------------------

struct ShardRecord {
  u64 index = 0;           // unit index (fault index / run index)
  std::vector<u8> payload;
};

struct LoadedCheckpoint {
  std::vector<ShardRecord> records;  // from verified shards, file order
  u32 shards_loaded = 0;
  u32 shards_corrupt = 0;  // quarantined
  u32 next_shard = 0;      // continue numbering after the highest seen
};

/// True when `cfg.dir` holds a manifest file (cheap existence probe, no
/// validation). Multi-campaign drivers use it to decide per campaign whether
/// --resume means "load this one" or "this one never started, run fresh".
bool checkpoint_present(const CheckpointConfig& cfg);

/// Verify the manifest and load every intact shard of `cfg.dir`. Corrupt
/// shards are renamed to `<shard>.corrupt`, counted, reported as kCkptReject
/// and their records dropped (the campaign re-executes those units). Throws
/// CheckpointMismatch when the manifest is absent, unreadable or bound to a
/// different (schema, payload kind, config hash).
LoadedCheckpoint load_checkpoint(const CheckpointConfig& cfg, PayloadKind kind,
                                 u64 config_hash, trace::EventSink* sink);

/// Multi-shard merge primitive (src/serve/): verify and load the journals of
/// several per-shard checkpoint directories — all bound to the SAME config
/// hash, since a shard range is deliberately excluded from it — as one
/// record stream, directories in the given order, shards by number within
/// each. A directory that never got far enough to hold a manifest is counted
/// in `dirs_absent` and skipped (its units are simply missing, to be
/// re-executed by the caller); a directory bound to a DIFFERENT campaign
/// still throws CheckpointMismatch — silent cross-campaign merges stay
/// impossible.
struct MultiLoadedCheckpoint {
  std::vector<ShardRecord> records;
  u32 shards_loaded = 0;
  u32 shards_corrupt = 0;
  u32 dirs_absent = 0;
};
MultiLoadedCheckpoint load_checkpoint_dirs(const std::vector<std::string>& dirs,
                                           PayloadKind kind, u64 config_hash,
                                           trace::EventSink* sink);

/// Accumulates completed records and flushes a shard every
/// `cfg.interval` records (plus a final explicit flush). Thread-safe: the
/// campaign workers call add() concurrently; whichever worker fills the
/// interval writes the shard under the internal mutex. Inert when
/// cfg.dir is empty.
///
/// Single-writer discipline is enforced with an advisory lockfile
/// (`manifest.lock`, owner PID + start time): a second process journaling
/// into the same directory fails fast with CheckpointMismatch instead of
/// interleaving shard writes; a lock whose owner is dead (crashed or
/// SIGKILLed worker) is broken and taken over. The lock is released on
/// destruction.
class CheckpointWriter {
 public:
  /// A fresh (non-resume) writer refuses a directory that already holds a
  /// manifest or shards (CheckpointMismatch) — restarting over an existing
  /// checkpoint must be an explicit decision (--resume or a clean dir). A
  /// resume writer expects the manifest load_checkpoint just verified and
  /// continues shard numbering at `first_shard`.
  CheckpointWriter(const CheckpointConfig& cfg, PayloadKind kind, u64 config_hash,
                   u32 first_shard, trace::EventSink* sink);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  bool enabled() const { return enabled_; }
  void add(u64 index, std::vector<u8> payload);
  void flush();  // write pending records as one shard (no-op when none)
  u32 shards_flushed() const { return flushed_.load(std::memory_order_relaxed); }
  /// Cumulative shard-flush latency in nanoseconds (CheckpointStats::flush_ns).
  u64 flush_ns() const { return flush_ns_.load(std::memory_order_relaxed); }

 private:
  void flush_locked();
  void acquire_lock();

  CheckpointConfig cfg_;
  PayloadKind kind_ = PayloadKind::kFaultOutcomes;
  u64 hash_ = 0;
  bool enabled_ = false;
  trace::EventSink* sink_ = nullptr;
  std::mutex mu_;
  std::vector<ShardRecord> pending_;
  u32 next_shard_ = 0;
  std::atomic<u32> flushed_{0};
  std::atomic<u64> flush_ns_{0};
  u64 flush_seq_ = 0;
  std::string lock_path_;  // owned manifest.lock (empty = none held)
};

}  // namespace detstl::fault
