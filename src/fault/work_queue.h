#pragma once
// Chunked atomic work queue for the parallel campaign executor.
//
// A WorkQueue hands out half-open index chunks [begin, end) of a fixed range
// to concurrently-pulling workers. The only synchronisation is one
// fetch_add on the cursor: every index is dispensed exactly once, and once
// the range is exhausted every caller gets nullopt. Relaxed ordering is
// sufficient — the queue carries no payload, only index ownership, and the
// results workers produce are published by the thread join.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>

namespace detstl::fault {

class WorkQueue {
 public:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;  // exclusive
    std::size_t size() const { return end - begin; }
  };

  /// Queue over indices [0, total), dispensed `chunk_size` at a time (the
  /// final chunk may be shorter). A zero chunk size is promoted to 1.
  explicit WorkQueue(std::size_t total, std::size_t chunk_size = 1)
      : total_(total), chunk_(std::max<std::size_t>(1, chunk_size)) {}

  /// Claim the next chunk; nullopt once the range is exhausted.
  std::optional<Chunk> next() {
    const std::size_t b = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (b >= total_) return std::nullopt;
    return Chunk{b, std::min(b + chunk_, total_)};
  }

  std::size_t total() const { return total_; }
  std::size_t chunk_size() const { return chunk_; }

 private:
  std::size_t total_;
  std::size_t chunk_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace detstl::fault
