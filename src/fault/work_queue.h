#pragma once
// Chunked atomic work queue for the parallel campaign executor.
//
// A WorkQueue hands out half-open index chunks [begin, end) of a fixed range
// to concurrently-pulling workers. The only synchronisation is one
// fetch_add on the cursor: every index is dispensed exactly once, and once
// the range is exhausted every caller gets nullopt. Relaxed ordering is
// sufficient — the queue carries no payload, only index ownership, and the
// results workers produce are published by the thread join.
//
// Two extensions serve the checkpoint/resume subsystem (fault/checkpoint.h):
//  * a done mask marks unit indices a resumed campaign already holds
//    outcomes for — chunks consisting entirely of done indices are skipped
//    (callers still check the mask per index inside mixed chunks);
//  * halt() drains the queue cooperatively: subsequent next() calls return
//    nullopt, so every worker finishes its in-flight chunk and stops, which
//    is exactly the SIGINT/SIGTERM "finish in-flight faults, flush, exit
//    resumable" semantics.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/bitutil.h"

namespace detstl::fault {

class WorkQueue {
 public:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;  // exclusive
    std::size_t size() const { return end - begin; }
  };

  /// Queue over indices [0, total), dispensed `chunk_size` at a time (the
  /// final chunk may be shorter). A zero chunk size is promoted to 1.
  /// `done` (optional, non-owning, must outlive the queue) marks indices
  /// that need no work: fully-done chunks are never dispensed.
  explicit WorkQueue(std::size_t total, std::size_t chunk_size = 1,
                     const std::vector<u8>* done = nullptr)
      : total_(total), chunk_(std::max<std::size_t>(1, chunk_size)), done_(done) {}

  /// Claim the next chunk with at least one pending index; nullopt once the
  /// range is exhausted or the queue was halted.
  std::optional<Chunk> next() {
    while (!halted_.load(std::memory_order_relaxed)) {
      const std::size_t b = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
      if (b >= total_) return std::nullopt;
      const std::size_t e = std::min(b + chunk_, total_);
      if (done_ != nullptr &&
          std::all_of(done_->begin() + static_cast<std::ptrdiff_t>(b),
                      done_->begin() + static_cast<std::ptrdiff_t>(e),
                      [](u8 d) { return d != 0; }))
        continue;  // resumed checkpoint already holds every outcome in here
      return Chunk{b, e};
    }
    return std::nullopt;
  }

  /// Cooperative drain: no further chunks are dispensed. In-flight chunks
  /// are unaffected — workers finish them and then see nullopt.
  void halt() { halted_.store(true, std::memory_order_relaxed); }
  bool halted() const { return halted_.load(std::memory_order_relaxed); }

  std::size_t total() const { return total_; }
  std::size_t chunk_size() const { return chunk_; }

 private:
  std::size_t total_;
  std::size_t chunk_;
  const std::vector<u8>* done_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> halted_{false};
};

}  // namespace detstl::fault
