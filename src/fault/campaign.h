#pragma once
// Stuck-at fault-simulation campaign over one graded module of one core
// (DESIGN.md Sec. 6, docs/fault_simulation.md):
//
//  1. Good run. The scenario executes with behavioural models; a tap records
//     the graded module's per-call input trace, the signature-register (r29)
//     write sequence, the final mailbox verdict, and periodic full-SoC
//     checkpoints (the SoC is a value type).
//  2. Excitation screening. The input trace is replayed through the gate-level
//     netlist with 64 lanes per word: 63 faulty machines + 1 fault-free
//     reference lane. A fault whose outputs never diverge is undetected
//     (never excited). Sound because a stuck-at inside the module cannot
//     influence the module's own inputs before its outputs first diverge.
//  3. Detection. Each excited fault is re-simulated from the last checkpoint
//     preceding its first divergence, with the faulty netlist installed as
//     the module implementation. Early exit on the first r29 write that
//     differs from the good sequence; otherwise the final mailbox verdict is
//     compared; a watchdog timeout counts as detected (in-field behaviour).
//
// Phases 2 and 3 are embarrassingly parallel (lane groups / faults are
// independent) and run on a worker pool when CampaignConfig::threads != 1.
// The result is bit-identical for every thread count: workers write outcomes
// into a pre-sized vector by fault index and all aggregate counters are
// recomputed from that vector after the pool joins.

#include <functional>
#include <optional>
#include <vector>

#include "core/wrapper.h"
#include "fault/checkpoint.h"
#include "fault/progress.h"
#include "netlist/adapters.h"
#include "soc/soc.h"

namespace detstl::fault {

enum class Module : u8 { kFwd, kHdcu, kIcu };

const char* module_name(Module m);

struct CampaignConfig {
  Module module = Module::kFwd;
  unsigned core_id = 0;  // core under grade
  isa::CoreKind kind = isa::CoreKind::kA;
  u32 mailbox = 0;       // 0 = soc::mailbox_addr(core_id)
  u64 max_cycles = 20'000'000;  // good-run bound
  u32 checkpoint_every = 4096;  // cycles between checkpoints
  /// Simulate every Nth fault of the collapsed list (deterministic sampling
  /// speed knob for the benches; 1 = exhaustive).
  u32 fault_stride = 1;
  /// Cache-based wrapper: signature writes before the execution loop (the
  /// loading loop) are architecturally discarded by the re-seed and must not
  /// count as detections. The iteration boundary is identified by the loop
  /// counter (r30) reaching 1.
  bool signature_from_marker = false;
  /// Worker threads for the screening and detection phases. 0 = hardware
  /// concurrency, 1 = fully serial (no threads are spawned). Any value
  /// yields the same CampaignResult, byte for byte.
  unsigned threads = 0;
  /// Optional observability callback (never affects the result). Invoked
  /// under an internal mutex at phase boundaries and roughly every
  /// `progress_every` completed work units.
  ProgressFn progress;
  u32 progress_every = 64;
  /// detscope event sink (non-owning; null = off). The good run traces live;
  /// faulty replicas never emit (the campaign clears the sink on every
  /// restored checkpoint copy), and per-fault events are emitted after the
  /// worker pool joins, in fault-index order with a sequence-number clock —
  /// so the stream is byte-identical for every `threads` value.
  trace::EventSink* sink = nullptr;
  /// Crash-safe checkpoint/journal (fault/checkpoint.h). With a directory
  /// set, completed fault outcomes are persisted into checksummed shards
  /// every `checkpoint.interval` faults; with `checkpoint.resume` the
  /// campaign loads the verified shards first and only simulates the
  /// remainder. Neither affects the (completed) result: straight and
  /// resumed runs are byte-identical.
  CheckpointConfig checkpoint;
  /// Cooperative drain request (fault/checkpoint.h). Workers stop claiming
  /// work once it fires, finish in-flight faults, flush a final shard and
  /// the campaign returns a partial result with ckpt.interrupted set.
  /// Null = never interrupted. Not part of the config hash.
  InterruptToken* interrupt = nullptr;
  /// Half-open shard range [unit_begin, unit_end) over the *simulated* fault
  /// list this process executes; (0, 0) = everything. Out-of-range faults are
  /// pre-marked done with a kNotExcited placeholder (never journalled, never
  /// simulated), so a shard worker screens and detects only its slice.
  /// Deliberately EXCLUDED from the checkpoint config hash: every shard of a
  /// partitioned campaign shares one manifest identity, which is what lets
  /// src/serve/ reassign a dead worker's subdir to a fresh worker and merge
  /// all subdirs back into the full result.
  u64 unit_begin = 0;
  u64 unit_end = 0;
  /// Post-hoc merge: additionally load the journals of these per-shard
  /// checkpoint directories (fault/checkpoint.h load_checkpoint_dirs) and
  /// treat their records as resumed. Faults no journal covers are simply
  /// re-executed in-process, so the merged result is byte-identical to the
  /// single-process run by the same contract as --resume. Not hashed.
  std::vector<std::string> merge_dirs;
};

/// The scenario under grade: builds a fresh SoC with all programs loaded and
/// boot addresses set (reset() not yet called). Must be deterministic.
using SocFactory = std::function<soc::Soc()>;

enum class FaultOutcome : u8 {
  kNotExcited,         // outputs never diverged
  kDetectedSignature,  // r29 write sequence diverged
  kDetectedVerdict,    // final mailbox (status, signature) mismatch
  kDetectedWatchdog,   // faulty run exceeded the watchdog
  kUndetected,         // excited, but signature and verdict unchanged
};

struct CampaignResult {
  u64 total_faults = 0;     // collapsed list size (before sampling)
  u64 simulated_faults = 0; // after sampling
  u64 excited = 0;
  u64 detected = 0;
  u64 detected_signature = 0;
  u64 detected_verdict = 0;
  u64 detected_watchdog = 0;
  u64 good_cycles = 0;      // graded core cycles, reset -> halt
  core::TestVerdict good_verdict;
  std::vector<FaultOutcome> outcomes;  // per simulated fault
  /// Simulated work executed by THIS process: good-run cycles plus every
  /// detection re-run's cycles (sim_cycles), and module calls replayed by
  /// the excitation screen (screen_calls). Byte-identical across thread
  /// counts (sums of per-unit deterministic work), but NOT across
  /// straight-vs-resumed runs — resume skips re-simulating journalled
  /// faults, which is the point. Hence excluded from canonical_bytes();
  /// the stlperf sim subtree carries them instead (tests/test_perf.cpp).
  u64 sim_cycles = 0;
  u64 screen_calls = 0;
  double wall_seconds = 0;  // host wall-clock of the whole campaign
  unsigned threads_used = 0;  // resolved worker count (cfg.threads == 0 case)
  /// Checkpoint/resume bookkeeping; like wall_seconds, excluded from the
  /// determinism contract (canonical_bytes).
  CheckpointStats ckpt;

  /// Fault coverage over the sampled fault population, in percent. With
  /// fault_stride > 1 this is an *estimate* of the exhaustive coverage.
  double coverage_percent() const {
    return simulated_faults == 0
               ? 0.0
               : 100.0 * static_cast<double>(detected) /
                     static_cast<double>(simulated_faults);
  }

  /// Detected faults over the *full* collapsed list, in percent. Equal to
  /// coverage_percent() for exhaustive campaigns; with sampling it is only
  /// a lower bound (unsampled faults count as undetected), so sampled and
  /// exhaustive runs are never conflated.
  double coverage_percent_of_total() const {
    return total_faults == 0 ? 0.0
                             : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(total_faults);
  }

  /// Canonical little-endian serialisation of the deterministic portion of
  /// the result — everything except wall_seconds, threads_used and ckpt.
  /// The unit of the byte-identity contract: equal for any thread count and
  /// for straight vs killed-and-resumed vs multi-resume executions.
  std::vector<u8> canonical_bytes() const;
};

/// The hash a checkpoint manifest binds this campaign to: every
/// outcome-relevant CampaignConfig field (module, graded core, mailbox,
/// bounds, fault_stride, marker mode) plus the netlist fingerprint and the
/// routine-image fingerprint of the factory's SoC. Deliberately EXCLUDES
/// threads, progress, sink, checkpoint and interrupt — resuming on a
/// different worker count or with different observability is legal and
/// changes nothing.
u64 checkpoint_config_hash(const CampaignConfig& cfg, const netlist::Netlist& nl,
                           const soc::Soc& soc);

class Campaign {
 public:
  Campaign(const CampaignConfig& cfg, SocFactory factory);

  /// Run the full two-phase campaign.
  CampaignResult run();

 private:
  CampaignConfig cfg_;
  SocFactory factory_;
};

}  // namespace detstl::fault
