#include "fault/report.h"

#include <algorithm>
#include <map>

#include "common/table.h"
#include "perf/sampler.h"

namespace detstl::fault {

const char* gate_op_name(netlist::GateOp op) {
  using netlist::GateOp;
  switch (op) {
    case GateOp::kInput: return "input";
    case GateOp::kConst0: return "const0";
    case GateOp::kConst1: return "const1";
    case GateOp::kBuf: return "buf";
    case GateOp::kNot: return "not";
    case GateOp::kAnd: return "and";
    case GateOp::kOr: return "or";
    case GateOp::kNand: return "nand";
    case GateOp::kNor: return "nor";
    case GateOp::kXor: return "xor";
    case GateOp::kXnor: return "xnor";
    case GateOp::kDff: return "dff";
  }
  return "?";
}

const char* outcome_name(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kNotExcited: return "not excited";
    case FaultOutcome::kDetectedSignature: return "detected: signature";
    case FaultOutcome::kDetectedVerdict: return "detected: verdict";
    case FaultOutcome::kDetectedWatchdog: return "detected: watchdog";
    case FaultOutcome::kUndetected: return "excited, undetected";
  }
  return "?";
}

CampaignReport make_report(const CampaignResult& result, const netlist::Netlist& nl,
                           u32 fault_stride) {
  CampaignReport rep;
  rep.result = result;

  // Reconstruct the sampled fault list the campaign used (same rule:
  // net-strided, both polarities kept).
  const auto all = nl.fault_list();
  std::vector<netlist::Fault> sampled;
  for (std::size_t i = 0; i < all.size(); ++i)
    if ((i / 2) % fault_stride == 0) sampled.push_back(all[i]);

  std::map<netlist::GateOp, GateClassCoverage> classes;
  for (std::size_t i = 0; i < sampled.size() && i < result.outcomes.size(); ++i) {
    const netlist::GateOp op = nl.gate(sampled[i].net).op;
    auto& entry = classes[op];
    entry.op = op;
    ++entry.faults;
    const FaultOutcome o = result.outcomes[i];
    if (o != FaultOutcome::kNotExcited && o != FaultOutcome::kUndetected)
      ++entry.detected;
  }
  for (const auto& [op, cov] : classes) rep.by_gate_class.push_back(cov);
  std::sort(rep.by_gate_class.begin(), rep.by_gate_class.end(),
            [](const auto& a, const auto& b) { return a.faults > b.faults; });
  return rep;
}

std::string render_report(const CampaignReport& rep, const std::string& title) {
  const CampaignResult& r = rep.result;
  TextTable summary(title + " — campaign summary");
  summary.header({"metric", "value"});
  summary.row({"collapsed faults (total)", TextTable::fmt_int(static_cast<long long>(r.total_faults))});
  summary.row({"faults simulated", TextTable::fmt_int(static_cast<long long>(r.simulated_faults))});
  summary.row({"excited (phase 1)", TextTable::fmt_int(static_cast<long long>(r.excited))});
  summary.row({"detected", TextTable::fmt_int(static_cast<long long>(r.detected))});
  summary.row({"  via signature divergence", TextTable::fmt_int(static_cast<long long>(r.detected_signature))});
  summary.row({"  via final verdict", TextTable::fmt_int(static_cast<long long>(r.detected_verdict))});
  summary.row({"  via watchdog", TextTable::fmt_int(static_cast<long long>(r.detected_watchdog))});
  summary.row({"fault coverage, sampled population [%]",
               TextTable::fmt_fixed(r.coverage_percent(), 2)});
  summary.row({"fault coverage, full collapsed list [%]",
               TextTable::fmt_fixed(r.coverage_percent_of_total(), 2) +
                   (r.simulated_faults == r.total_faults ? "" : " (lower bound)")});
  summary.row({"fault-free run [cycles]", TextTable::fmt_int(static_cast<long long>(r.good_cycles))});
  summary.row({"wall-clock [s]", TextTable::fmt_fixed(r.wall_seconds, 2)});
  summary.row({"worker threads", TextTable::fmt_int(static_cast<long long>(r.threads_used))});
  // stlperf observability rows: sim work is deterministic per thread count
  // (not per resume); sim-MHz and RSS are host readings like wall-clock.
  summary.row({"simulated cycles (good + detection)",
               TextTable::fmt_int(static_cast<long long>(r.sim_cycles))});
  summary.row({"screen calls (phase 1 replays)",
               TextTable::fmt_int(static_cast<long long>(r.screen_calls))});
  summary.row({"sim-MHz",
               TextTable::fmt_fixed(
                   r.wall_seconds > 0.0
                       ? static_cast<double>(r.sim_cycles) / r.wall_seconds / 1e6
                       : 0.0,
                   3)});
  summary.row({"peak RSS [KiB]",
               TextTable::fmt_int(static_cast<long long>(perf::peak_rss_kb()))});

  // Checkpoint/resume bookkeeping, only when the campaign journalled. Kept
  // out of the summary table so checkpointed and plain runs of the same
  // campaign produce the same summary block.
  std::string ckpt_str;
  if (r.ckpt.enabled) {
    TextTable ckpt(title + " — checkpoint/resume");
    ckpt.header({"metric", "value"});
    ckpt.row({"shards loaded", TextTable::fmt_int(r.ckpt.shards_loaded)});
    ckpt.row({"faults skipped via resume",
              TextTable::fmt_int(static_cast<long long>(r.ckpt.records_resumed))});
    ckpt.row({"corrupt shards quarantined", TextTable::fmt_int(r.ckpt.shards_corrupt)});
    ckpt.row({"shards flushed", TextTable::fmt_int(r.ckpt.shards_flushed)});
    ckpt.row({"interrupted (resumable)", r.ckpt.interrupted ? "yes" : "no"});
    ckpt_str = ckpt.str();
  }

  TextTable dict(title + " — coverage by gate class");
  dict.header({"gate class", "faults", "detected", "FC [%]"});
  for (const auto& c : rep.by_gate_class) {
    dict.row({gate_op_name(c.op), TextTable::fmt_int(static_cast<long long>(c.faults)),
              TextTable::fmt_int(static_cast<long long>(c.detected)),
              TextTable::fmt_fixed(c.coverage_percent(), 2)});
  }
  return summary.str() + ckpt_str + dict.str();
}

}  // namespace detstl::fault
