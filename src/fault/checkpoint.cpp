#include "fault/checkpoint.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include <ctime>

#include "common/version.h"
#include "mem/memmap.h"
#include "perf/profiler.h"
#include "perf/sampler.h"
#include "netlist/netlist.h"
#include "soc/soc.h"
#include "trace/event.h"

namespace fs = std::filesystem;

namespace detstl::fault {

namespace {

constexpr char kManifestMagic[8] = {'D', 'S', 'T', 'L', 'M', 'A', 'N', 'I'};
constexpr char kShardMagic[8] = {'D', 'S', 'T', 'L', 'S', 'H', 'R', 'D'};
constexpr std::size_t kManifestProducerBytes = 24;
// magic + schema + kind + hash (+ producer for the manifest), i.e. the bytes
// the trailing header checksum covers.
constexpr std::size_t kShardChecksummedBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;
constexpr std::size_t kShardHeaderBytes = kShardChecksummedBytes + 8;
constexpr std::size_t kManifestChecksummedBytes = 8 + 4 + 4 + 8 + kManifestProducerBytes;
constexpr std::size_t kManifestBytes = kManifestChecksummedBytes + 8;
constexpr const char* kManifestName = "manifest.ckpt";
constexpr const char* kLockName = "manifest.lock";

void put32(std::vector<u8>& out, u32 v) {
  for (unsigned i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put64(std::vector<u8>& out, u64 v) {
  for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

u32 get32(const u8* p) {
  u32 v = 0;
  for (unsigned i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}

u64 get64(const u8* p) {
  u64 v = 0;
  for (unsigned i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

std::string shard_name(u32 index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%06u.ckpt", index);
  return buf;
}

/// Write `bytes` to `path` via temp-then-atomic-rename. With kEveryShard the
/// data is fsynced before the rename and the directory after it, so a crash
/// leaves either no file or a complete one — never a torn shard under its
/// final name.
void atomic_write(const fs::path& path, const std::vector<u8>& bytes,
                  FsyncPolicy fsync_policy) {
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("checkpoint: cannot create " + tmp.string());
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  bool synced = std::fflush(f) == 0;
#ifndef _WIN32
  if (fsync_policy == FsyncPolicy::kEveryShard && synced)
    synced = ::fsync(::fileno(f)) == 0;
#endif
  std::fclose(f);
  if (!wrote || !synced) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("checkpoint: short write to " + tmp.string());
  }
  fs::rename(tmp, path);
#ifndef _WIN32
  if (fsync_policy == FsyncPolicy::kEveryShard) {
    const int dir = ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dir >= 0) {
      ::fsync(dir);
      ::close(dir);
    }
  }
#endif
}

bool read_file(const fs::path& path, std::vector<u8>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  u8 buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.insert(out.end(), buf, buf + n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::vector<u8> encode_manifest(PayloadKind kind, u64 config_hash) {
  std::vector<u8> out;
  out.insert(out.end(), kManifestMagic, kManifestMagic + 8);
  put32(out, kCheckpointSchemaVersion);
  put32(out, static_cast<u32>(kind));
  put64(out, config_hash);
  char producer[kManifestProducerBytes] = {};
  std::snprintf(producer, sizeof producer, "detstl-%s", kDetstlVersion);
  out.insert(out.end(), producer, producer + kManifestProducerBytes);
  put64(out, fnv1a(out.data(), kManifestChecksummedBytes));
  return out;
}

/// Emission-sequence clock for the serial load path.
void emit_ckpt(trace::EventSink* sink, trace::EventKind ek, PayloadKind kind,
               u64 seq, u32 a, u32 b) {
  DETSTL_TRACE(sink, trace::Event{.cycle = seq,
                                  .kind = ek,
                                  .unit = static_cast<u8>(static_cast<u32>(kind)),
                                  .a = a,
                                  .b = b});
}

struct ShardParse {
  std::vector<ShardRecord> records;
  RejectReason reject = RejectReason::kTruncated;  // valid iff !ok
  bool ok = false;
};

ShardParse parse_shard(const std::vector<u8>& bytes, PayloadKind kind,
                       u64 config_hash) {
  ShardParse p;
  const auto reject = [&](RejectReason r) {
    p.reject = r;
    p.ok = false;
    return p;
  };
  if (bytes.size() < kShardHeaderBytes) return reject(RejectReason::kTruncated);
  if (std::memcmp(bytes.data(), kShardMagic, 8) != 0)
    return reject(RejectReason::kBadMagic);
  if (get64(bytes.data() + kShardChecksummedBytes) !=
      fnv1a(bytes.data(), kShardChecksummedBytes))
    return reject(RejectReason::kBadHeaderChecksum);
  // The header is now known intact — field mismatches are semantic.
  if (get32(bytes.data() + 8) != kCheckpointSchemaVersion)
    return reject(RejectReason::kVersionSkew);
  if (get32(bytes.data() + 12) != static_cast<u32>(kind))
    return reject(RejectReason::kKindMismatch);
  if (get64(bytes.data() + 16) != config_hash)
    return reject(RejectReason::kHashMismatch);
  const u64 record_count = get64(bytes.data() + 24);
  const u64 payload_bytes = get64(bytes.data() + 32);
  const u64 payload_checksum = get64(bytes.data() + 40);
  if (bytes.size() - kShardHeaderBytes != payload_bytes)
    return reject(RejectReason::kTruncated);
  const u8* payload = bytes.data() + kShardHeaderBytes;
  if (fnv1a(payload, payload_bytes) != payload_checksum)
    return reject(RejectReason::kBadPayloadChecksum);
  // Decode the record framing; the checksum passed, so a framing error means
  // a producer bug or a collision-grade corruption — still quarantined.
  std::size_t pos = 0;
  for (u64 r = 0; r < record_count; ++r) {
    if (payload_bytes - pos < 12) return reject(RejectReason::kMalformedRecords);
    ShardRecord rec;
    rec.index = get64(payload + pos);
    const u32 len = get32(payload + pos + 8);
    pos += 12;
    if (payload_bytes - pos < len) return reject(RejectReason::kMalformedRecords);
    rec.payload.assign(payload + pos, payload + pos + len);
    pos += len;
    p.records.push_back(std::move(rec));
  }
  if (pos != payload_bytes) return reject(RejectReason::kMalformedRecords);
  p.ok = true;
  return p;
}

/// shard-NNNNNN.ckpt -> NNNNNN; SIZE_MAX for anything else.
std::size_t shard_number(const std::string& name) {
  if (name.size() != 17 || name.rfind("shard-", 0) != 0 ||
      name.compare(12, 5, ".ckpt") != 0)
    return SIZE_MAX;
  std::size_t v = 0;
  for (unsigned i = 6; i < 12; ++i) {
    if (name[i] < '0' || name[i] > '9') return SIZE_MAX;
    v = v * 10 + static_cast<std::size_t>(name[i] - '0');
  }
  return v;
}

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kTruncated: return "truncated";
    case RejectReason::kBadMagic: return "bad-magic";
    case RejectReason::kBadHeaderChecksum: return "bad-header-checksum";
    case RejectReason::kVersionSkew: return "version-skew";
    case RejectReason::kKindMismatch: return "kind-mismatch";
    case RejectReason::kHashMismatch: return "hash-mismatch";
    case RejectReason::kBadPayloadChecksum: return "bad-payload-checksum";
    case RejectReason::kMalformedRecords: return "malformed-records";
  }
  return "?";
}

u64 fnv1a(const void* data, std::size_t n, u64 h) {
  const u8* p = static_cast<const u8*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

ConfigHasher& ConfigHasher::u32v(u32 v) {
  u8 b[4];
  for (unsigned i = 0; i < 4; ++i) b[i] = static_cast<u8>(v >> (8 * i));
  return bytes(b, 4);
}

ConfigHasher& ConfigHasher::u64v(u64 v) {
  u8 b[8];
  for (unsigned i = 0; i < 8; ++i) b[i] = static_cast<u8>(v >> (8 * i));
  return bytes(b, 8);
}

ConfigHasher& ConfigHasher::f64v(double v) {
  u64 bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return u64v(bits);
}

ConfigHasher& ConfigHasher::str(const std::string& s) {
  u64v(s.size());
  return bytes(s.data(), s.size());
}

InterruptToken& global_interrupt() {
  static InterruptToken token;
  return token;
}

namespace {
void drain_signal_handler(int) { global_interrupt().request_stop(); }

/// One-shot guard for install_drain_handlers(). A fork() inherits both the
/// parent's handler table and this flag, which is exactly why
/// reset_for_child() clears it before re-installing.
std::atomic<bool> g_handlers_installed{false};
}  // namespace

void install_drain_handlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
#ifndef _WIN32
  struct sigaction sa = {};
  sa.sa_handler = drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, drain_signal_handler);
  std::signal(SIGTERM, drain_signal_handler);
#endif
}

void reset_for_child() {
  global_interrupt().clear();
  g_handlers_installed.store(false, std::memory_order_release);
  install_drain_handlers();
}

void arm_wallclock_timeout(unsigned seconds) {
#ifndef _WIN32
  struct sigaction sa = {};
  sa.sa_handler = drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGALRM, &sa, nullptr);
  ::alarm(seconds);  // 0 cancels any pending alarm
#else
  (void)seconds;  // no wall-clock budget on Windows builds
#endif
}

u64 netlist_fingerprint(const netlist::Netlist& nl) {
  ConfigHasher h;
  h.u32v(nl.num_nets()).u32v(nl.num_inputs()).u32v(nl.num_flops());
  for (netlist::NetId id = 0; id < nl.num_nets(); ++id) {
    const netlist::Gate& g = nl.gate(id);
    h.u8v(static_cast<u8>(g.op)).u32v(g.a).u32v(g.b).u32v(g.aux);
  }
  return h.digest();
}

u64 soc_image_fingerprint(const soc::Soc& soc) {
  ConfigHasher h;
  h.u32v(soc.num_cores());
  for (unsigned c = 0; c < soc.num_cores(); ++c) {
    h.u8v(soc.is_active(c) ? 1 : 0);
    h.u8v(static_cast<u8>(soc.config().kinds[c]));
    h.u32v(soc.config().start_delay[c]);
  }
  // The routine image: every flash word the cores can fetch or compare
  // against. 2 MiB of FNV-1a is milliseconds — negligible next to a campaign.
  std::vector<u8> rom(mem::kFlashSize);
  for (u32 i = 0; i < mem::kFlashSize; ++i)
    rom[i] = soc.flash().read8(mem::kFlashBase + i);
  h.u64v(fnv1a(rom.data(), rom.size()));
  return h.digest();
}

bool checkpoint_present(const CheckpointConfig& cfg) {
  if (!cfg.enabled()) return false;
  std::error_code ec;
  return fs::exists(fs::path(cfg.dir) / kManifestName, ec);
}

LoadedCheckpoint load_checkpoint(const CheckpointConfig& cfg, PayloadKind kind,
                                 u64 config_hash, trace::EventSink* sink) {
  LoadedCheckpoint out;
  if (!cfg.enabled()) return out;
  DETSTL_PROF_SCOPE(perf::ProfScope::kCheckpointIO);
  const fs::path dir = cfg.dir;
  u64 seq = 0;

  std::vector<u8> bytes;
  if (!fs::is_directory(dir) || !read_file(dir / kManifestName, bytes))
    throw CheckpointMismatch("checkpoint: no readable manifest in '" + cfg.dir +
                             "' — nothing to resume");
  if (bytes.size() != kManifestBytes ||
      std::memcmp(bytes.data(), kManifestMagic, 8) != 0 ||
      get64(bytes.data() + kManifestChecksummedBytes) !=
          fnv1a(bytes.data(), kManifestChecksummedBytes))
    throw CheckpointMismatch("checkpoint: corrupt manifest in '" + cfg.dir + "'");
  if (get32(bytes.data() + 8) != kCheckpointSchemaVersion)
    throw CheckpointMismatch(
        "checkpoint: schema version skew in '" + cfg.dir + "' (checkpoint v" +
        std::to_string(get32(bytes.data() + 8)) + ", this binary writes v" +
        std::to_string(kCheckpointSchemaVersion) + ")");
  if (get32(bytes.data() + 12) != static_cast<u32>(kind))
    throw CheckpointMismatch("checkpoint: '" + cfg.dir +
                             "' holds a different campaign type");
  if (get64(bytes.data() + 16) != config_hash)
    throw CheckpointMismatch(
        "checkpoint: '" + cfg.dir +
        "' was produced by a different campaign configuration, netlist or "
        "routine image — refusing to merge (use a fresh directory)");

  // Deterministic file order: sorted by shard number.
  std::vector<std::pair<std::size_t, fs::path>> shards;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::size_t n = shard_number(entry.path().filename().string());
    if (n != SIZE_MAX) shards.emplace_back(n, entry.path());
  }
  std::sort(shards.begin(), shards.end());

  for (const auto& [num, path] : shards) {
    out.next_shard = std::max<u32>(out.next_shard, static_cast<u32>(num) + 1);
    ShardParse parsed;
    if (read_file(path, bytes)) parsed = parse_shard(bytes, kind, config_hash);
    if (!parsed.ok) {
      // Quarantine: keep the evidence, free the name space, re-execute the
      // units the shard claimed to hold.
      std::error_code ec;
      fs::rename(path, fs::path(path.string() + ".corrupt"), ec);
      ++out.shards_corrupt;
      emit_ckpt(sink, trace::EventKind::kCkptReject, kind, seq++,
                static_cast<u32>(parsed.reject), static_cast<u32>(num));
      continue;
    }
    ++out.shards_loaded;
    emit_ckpt(sink, trace::EventKind::kCkptLoad, kind, seq++,
              static_cast<u32>(parsed.records.size()), static_cast<u32>(num));
    out.records.insert(out.records.end(),
                       std::make_move_iterator(parsed.records.begin()),
                       std::make_move_iterator(parsed.records.end()));
  }
  return out;
}

MultiLoadedCheckpoint load_checkpoint_dirs(const std::vector<std::string>& dirs,
                                           PayloadKind kind, u64 config_hash,
                                           trace::EventSink* sink) {
  MultiLoadedCheckpoint out;
  for (const std::string& d : dirs) {
    CheckpointConfig cfg;
    cfg.dir = d;
    cfg.resume = true;
    if (!checkpoint_present(cfg)) {
      // The shard's worker never reached its first manifest write (or the
      // directory was never created). Its units are simply absent; the
      // caller re-executes them. A *present but mismatched* manifest still
      // throws below.
      ++out.dirs_absent;
      continue;
    }
    LoadedCheckpoint one = load_checkpoint(cfg, kind, config_hash, sink);
    out.shards_loaded += one.shards_loaded;
    out.shards_corrupt += one.shards_corrupt;
    out.records.insert(out.records.end(),
                       std::make_move_iterator(one.records.begin()),
                       std::make_move_iterator(one.records.end()));
  }
  return out;
}

CheckpointWriter::CheckpointWriter(const CheckpointConfig& cfg, PayloadKind kind,
                                   u64 config_hash, u32 first_shard,
                                   trace::EventSink* sink)
    : cfg_(cfg), kind_(kind), hash_(config_hash), sink_(sink),
      next_shard_(first_shard) {
  if (!cfg_.enabled()) return;
  cfg_.interval = std::max<u32>(1, cfg_.interval);
  const fs::path dir = cfg_.dir;
  fs::create_directories(dir);
  acquire_lock();
  try {
    if (!cfg_.resume) {
      // A leftover manifest or shard means this directory belongs to another
      // (possibly still-resumable) campaign; starting fresh over it must be an
      // explicit decision.
      bool occupied = fs::exists(dir / kManifestName);
      for (const auto& entry : fs::directory_iterator(dir))
        occupied |= shard_number(entry.path().filename().string()) != SIZE_MAX;
      if (occupied)
        throw CheckpointMismatch(
            "checkpoint: '" + cfg_.dir +
            "' already holds a checkpoint — resume it or point at a clean "
            "directory");
      atomic_write(dir / kManifestName, encode_manifest(kind_, hash_), cfg_.fsync);
    } else if (!fs::exists(dir / kManifestName)) {
      throw CheckpointMismatch("checkpoint: resume writer found no manifest in '" +
                               cfg_.dir + "'");
    }
  } catch (...) {
    // A throwing constructor never runs the destructor — release the just-
    // claimed lock here or it outlives this (still running) process.
    if (!lock_path_.empty()) {
      std::error_code ec;
      fs::remove(lock_path_, ec);
      lock_path_.clear();
    }
    throw;
  }
  enabled_ = true;
}

CheckpointWriter::~CheckpointWriter() {
  if (lock_path_.empty()) return;
  std::error_code ec;
  fs::remove(lock_path_, ec);
}

/// Advisory single-writer lock. O_CREAT|O_EXCL is the atomic claim; the file
/// body ("pid N\nstart T\n") identifies the owner so a contender can tell a
/// live writer (fail fast, CheckpointMismatch) from a dead one (crashed or
/// SIGKILLed worker — break the stale lock and take over). A lock naming this
/// process is also stale: only one CheckpointWriter per dir exists at a time
/// in-process, so it was leaked by an earlier incarnation (e.g. the exception
/// path of a constructor that had already claimed it).
void CheckpointWriter::acquire_lock() {
#ifndef _WIN32
  const fs::path lock = fs::path(cfg_.dir) / kLockName;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      char body[64];
      const int n =
          std::snprintf(body, sizeof body, "pid %ld\nstart %lld\n",
                        static_cast<long>(::getpid()),
                        static_cast<long long>(std::time(nullptr)));
      if (n > 0) {
        const ssize_t wrote = ::write(fd, body, static_cast<std::size_t>(n));
        (void)wrote;  // advisory metadata; the O_EXCL create is the claim
      }
      ::close(fd);
      lock_path_ = lock.string();
      return;
    }
    long owner = 0;
    std::vector<u8> bytes;
    if (read_file(lock, bytes)) {
      bytes.push_back(0);
      std::sscanf(reinterpret_cast<const char*>(bytes.data()), "pid %ld", &owner);
    }
    if (owner > 0 && owner != static_cast<long>(::getpid()) &&
        ::kill(static_cast<pid_t>(owner), 0) == 0)
      throw CheckpointMismatch(
          "checkpoint: '" + cfg_.dir + "' is locked by running process " +
          std::to_string(owner) +
          " (manifest.lock) — two writers must not journal into the same "
          "directory");
    // Stale (owner dead, unreadable, or this very process): break and retry.
    std::error_code ec;
    fs::remove(lock, ec);
  }
  throw CheckpointMismatch("checkpoint: could not acquire manifest.lock in '" +
                           cfg_.dir + "' (lock churn — is another writer racing?)");
#endif
}

void CheckpointWriter::add(u64 index, std::vector<u8> payload) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lk(mu_);
  pending_.push_back(ShardRecord{index, std::move(payload)});
  if (pending_.size() >= cfg_.interval) flush_locked();
}

void CheckpointWriter::flush() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lk(mu_);
  flush_locked();
}

void CheckpointWriter::flush_locked() {
  if (pending_.empty()) return;
  DETSTL_PROF_SCOPE(perf::ProfScope::kCheckpointIO);
  const u64 flush_t0 = perf::detail::prof_now_ns();
  std::vector<u8> payload;
  for (const ShardRecord& r : pending_) {
    put64(payload, r.index);
    put32(payload, static_cast<u32>(r.payload.size()));
    payload.insert(payload.end(), r.payload.begin(), r.payload.end());
  }
  std::vector<u8> bytes;
  bytes.insert(bytes.end(), kShardMagic, kShardMagic + 8);
  put32(bytes, kCheckpointSchemaVersion);
  put32(bytes, static_cast<u32>(kind_));
  put64(bytes, hash_);
  put64(bytes, pending_.size());
  put64(bytes, payload.size());
  put64(bytes, fnv1a(payload.data(), payload.size()));
  put64(bytes, fnv1a(bytes.data(), kShardChecksummedBytes));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const u32 shard = next_shard_++;
  atomic_write(fs::path(cfg_.dir) / shard_name(shard), bytes, cfg_.fsync);
  emit_ckpt(sink_, trace::EventKind::kCkptFlush, kind_, flush_seq_++,
            static_cast<u32>(pending_.size()), shard);
  pending_.clear();
  flushed_.fetch_add(1, std::memory_order_relaxed);
  flush_ns_.fetch_add(perf::detail::prof_now_ns() - flush_t0,
                      std::memory_order_relaxed);
}

}  // namespace detstl::fault
