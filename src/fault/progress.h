#pragma once
// Campaign observability: a snapshot type the campaign pushes to an optional
// callback while it runs. Purely informational — installing (or not
// installing) a callback never changes the CampaignResult, and the callback
// is always invoked under an internal mutex, so it may write to a terminal
// without interleaving even when the campaign runs multi-threaded.

#include <functional>
#include <vector>

#include "common/bitutil.h"

namespace detstl::fault {

enum class CampaignPhase : u8 {
  kGoodRun,    // fault-free run with trace recording + checkpoints
  kScreening,  // 64-lane excitation screening over lane groups
  kDetection,  // per-fault checkpoint replay
};

inline const char* phase_name(CampaignPhase p) {
  switch (p) {
    case CampaignPhase::kGoodRun: return "good-run";
    case CampaignPhase::kScreening: return "screening";
    case CampaignPhase::kDetection: return "detection";
  }
  return "?";
}

struct CampaignProgress {
  CampaignPhase phase = CampaignPhase::kGoodRun;
  /// Work units finished / total in this phase. Units are cycles for the
  /// good run (total 0 = unknown), lane groups for screening, faults for
  /// detection.
  u64 done = 0;
  u64 total = 0;
  u64 excited = 0;   // faults excited so far (known from screening onward)
  u64 detected = 0;  // faults detected so far (detection phase)
  double elapsed_s = 0;  // wall-clock since the phase started
  /// Linear-extrapolation estimate of the phase's remaining wall-clock;
  /// 0 while done == 0.
  double eta_s = 0;
  /// Work units completed per worker (size = worker count). A worker's
  /// share of the sum is its utilisation of the pool.
  std::vector<u64> worker_done;
};

using ProgressFn = std::function<void(const CampaignProgress&)>;

}  // namespace detstl::fault
