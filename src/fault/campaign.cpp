#include "fault/campaign.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "fault/work_queue.h"
#include "netlist/screening.h"
#include "perf/profiler.h"
#include "perf/simstats.h"

namespace detstl::fault {

const char* module_name(Module m) {
  switch (m) {
    case Module::kFwd: return "forwarding-logic";
    case Module::kHdcu: return "hdcu";
    case Module::kIcu: return "icu";
  }
  return "?";
}

namespace {

/// Records the graded module's input trace and the r29 write sequence.
class RecorderTap final : public cpu::ModuleTap {
 public:
  explicit RecorderTap(Module which) : which_(which) {}

  void on_hdcu(u64, const cpu::HdcuIn& in, const cpu::HdcuOut&) override {
    if (which_ == Module::kHdcu) hdcu_.push_back(in);
  }
  void on_fwd(u64, const cpu::FwdIn& in, const cpu::FwdOut&) override {
    if (which_ == Module::kFwd) fwd_.push_back(in);
  }
  void on_icu(u64, const cpu::IcuIn& in, const cpu::IcuOut&) override {
    if (which_ == Module::kIcu) icu_.push_back(in);
  }
  void on_wb(u64, unsigned rd, u32 v) override {
    if (rd == core::kSignatureReg) r29_.push_back(v);
    // Execution-loop marker: the wrapper's loop counter reaching 1 ends the
    // loading loop (see CampaignConfig::signature_from_marker).
    if (rd == core::kLoopCounterReg && v == 1 && marker_idx_ == SIZE_MAX)
      marker_idx_ = r29_.size();
  }

  std::size_t calls() const {
    switch (which_) {
      case Module::kFwd: return fwd_.size();
      case Module::kHdcu: return hdcu_.size();
      case Module::kIcu: return icu_.size();
    }
    return 0;
  }

  const std::vector<cpu::HdcuIn>& hdcu() const { return hdcu_; }
  const std::vector<cpu::FwdIn>& fwd() const { return fwd_; }
  const std::vector<cpu::IcuIn>& icu() const { return icu_; }
  const std::vector<u32>& r29() const { return r29_; }
  /// Index into r29() where the execution loop's writes start (SIZE_MAX if
  /// the marker never appeared — plain/TCM wrappers have no loading loop).
  std::size_t marker_idx() const { return marker_idx_; }

 private:
  Module which_;
  std::vector<cpu::HdcuIn> hdcu_;
  std::vector<cpu::FwdIn> fwd_;
  std::vector<cpu::IcuIn> icu_;
  std::vector<u32> r29_;
  std::size_t marker_idx_ = SIZE_MAX;
};

/// Compares the faulty run's checked signature writes against the good
/// sequence. Two soundness rules:
///  * in marker mode, comparison is armed only once the execution loop starts
///    (loading-loop signatures are architecturally discarded);
///  * a divergence must persist for kPersist consecutive writes before the
///    run is cut short — a MISR stream can transiently diverge and
///    reconverge (aligned double errors), in which case the final verdict
///    decides.
class CompareTap final : public cpu::ModuleTap {
 public:
  static constexpr unsigned kPersist = 8;

  /// `start` is the resume position in the good trace (checkpoint), `arm_at`
  /// the index where checked writes begin (0 for plain/TCM wrappers).
  CompareTap(const std::vector<u32>& good, std::size_t start, std::size_t arm_at)
      : good_(&good), idx_(start), arm_at_(arm_at), armed_(start >= arm_at) {}

  void on_wb(u64, unsigned rd, u32 v) override {
    if (!armed_) {
      // Waiting for the execution-loop marker; the good-trace index realigns
      // to the execution loop's start regardless of loading-loop drift.
      if (rd == core::kLoopCounterReg && v == 1) {
        idx_ = arm_at_;
        armed_ = true;
      }
      return;
    }
    if (rd != core::kSignatureReg) return;
    const bool match = idx_ < good_->size() && (*good_)[idx_] == v;
    ++idx_;
    diverged_run_ = match ? 0 : diverged_run_ + 1;
  }

  /// Persistent signature divergence observed.
  bool detected() const { return diverged_run_ >= kPersist; }

 private:
  const std::vector<u32>* good_;
  std::size_t idx_;
  std::size_t arm_at_;
  bool armed_;
  unsigned diverged_run_ = 0;
};

struct Checkpoint {
  soc::Soc soc;
  std::size_t call_idx;
  std::size_t r29_idx;
};

/// Aggregates worker progress and throttles callback invocations. All
/// methods are no-ops when no callback is installed; otherwise every
/// emission happens under one mutex, so the callback never sees torn state
/// and never runs concurrently with itself.
class ProgressTracker {
 public:
  ProgressTracker(const ProgressFn& fn, u32 every, unsigned workers)
      : fn_(fn), every_(std::max<u32>(1, every)), worker_done_(workers, 0) {}

  void begin_phase(CampaignPhase phase, u64 total) {
    if (!fn_) return;
    std::lock_guard<std::mutex> lk(mu_);
    phase_ = phase;
    total_ = total;
    done_ = excited_ = detected_ = since_emit_ = 0;
    std::fill(worker_done_.begin(), worker_done_.end(), u64{0});
    start_ = std::chrono::steady_clock::now();
    emit_locked();
  }

  /// Record `units` finished work units from `worker`, plus the excited /
  /// detected faults they contributed.
  void add(unsigned worker, u64 units, u64 excited = 0, u64 detected = 0) {
    if (!fn_) return;
    std::lock_guard<std::mutex> lk(mu_);
    done_ += units;
    excited_ += excited;
    detected_ += detected;
    worker_done_[worker] += units;
    since_emit_ += units;
    if (since_emit_ >= every_) {
      since_emit_ = 0;
      emit_locked();
    }
  }

  void end_phase() {
    if (!fn_) return;
    std::lock_guard<std::mutex> lk(mu_);
    emit_locked();
  }

 private:
  void emit_locked() {
    CampaignProgress p;
    p.phase = phase_;
    p.done = done_;
    p.total = total_;
    p.excited = excited_;
    p.detected = detected_;
    p.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start_)
                      .count();
    if (done_ > 0 && total_ > done_)
      p.eta_s = p.elapsed_s * static_cast<double>(total_ - done_) /
                static_cast<double>(done_);
    p.worker_done = worker_done_;
    fn_(p);
  }

  ProgressFn fn_;
  u32 every_;
  std::mutex mu_;
  CampaignPhase phase_ = CampaignPhase::kGoodRun;
  u64 total_ = 0, done_ = 0, excited_ = 0, detected_ = 0, since_emit_ = 0;
  std::vector<u64> worker_done_;
  std::chrono::steady_clock::time_point start_;
};

/// Run `body(worker_id)` on `threads` workers and join. With one thread the
/// body runs on the calling thread — exactly the serial path, no spawn. The
/// first exception a worker throws is rethrown after the join.
void run_pool(unsigned threads, const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::mutex err_mu;
  std::exception_ptr err;
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&body, &err_mu, &err, w] {
      try {
        body(w);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!err) err = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace

std::vector<u8> CampaignResult::canonical_bytes() const {
  std::vector<u8> out;
  out.reserve(10 * 8 + outcomes.size());
  const auto p64 = [&out](u64 v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
  };
  const auto p32 = [&out](u32 v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
  };
  p64(total_faults);
  p64(simulated_faults);
  p64(excited);
  p64(detected);
  p64(detected_signature);
  p64(detected_verdict);
  p64(detected_watchdog);
  p64(good_cycles);
  p32(good_verdict.status);
  p32(good_verdict.signature);
  p64(outcomes.size());
  for (const FaultOutcome o : outcomes) out.push_back(static_cast<u8>(o));
  return out;
}

u64 checkpoint_config_hash(const CampaignConfig& cfg, const netlist::Netlist& nl,
                           const soc::Soc& soc) {
  ConfigHasher h;
  h.u32v(kCheckpointSchemaVersion)
      .u32v(static_cast<u32>(PayloadKind::kFaultOutcomes))
      .u8v(static_cast<u8>(cfg.module))
      .u32v(cfg.core_id)
      .u8v(static_cast<u8>(cfg.kind))
      .u32v(cfg.mailbox != 0 ? cfg.mailbox : soc::mailbox_addr(cfg.core_id))
      .u64v(cfg.max_cycles)
      .u32v(cfg.checkpoint_every)
      .u32v(cfg.fault_stride)
      .u8v(cfg.signature_from_marker ? 1 : 0)
      .u64v(netlist_fingerprint(nl))
      .u64v(soc_image_fingerprint(soc));
  return h.digest();
}

Campaign::Campaign(const CampaignConfig& cfg, SocFactory factory)
    : cfg_(cfg), factory_(std::move(factory)) {}

CampaignResult Campaign::run() {
  const u32 mailbox = cfg_.mailbox != 0 ? cfg_.mailbox : soc::mailbox_addr(cfg_.core_id);
  const unsigned threads =
      cfg_.threads != 0 ? cfg_.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  CampaignResult res;
  res.threads_used = threads;
  const auto wall_start = std::chrono::steady_clock::now();
  ProgressTracker tracker(cfg_.progress, cfg_.progress_every, threads);

  // Campaign events use an emission sequence number as their clock: all
  // emissions happen on the serial control path (phase boundaries + the
  // post-join per-fault sweep), so the stream is identical for any thread
  // count. kCampaignFault carries the fault index instead (event.h).
  [[maybe_unused]] u64 seq = 0;
  const auto emit_phase = [&]([[maybe_unused]] trace::EventKind kind,
                              [[maybe_unused]] CampaignPhase phase,
                              [[maybe_unused]] u32 a, [[maybe_unused]] u32 b) {
    DETSTL_TRACE(cfg_.sink, trace::Event{.cycle = seq++,
                                         .kind = kind,
                                         .unit = static_cast<u8>(phase),
                                         .a = a,
                                         .b = b});
  };

  // Module netlist for the graded core's physical-design instance.
  std::optional<netlist::FwdNetlist> fwd_mod;
  std::optional<netlist::HdcuNetlist> hdcu_mod;
  std::optional<netlist::IcuNetlist> icu_mod;
  const netlist::Netlist* nl = nullptr;
  const std::vector<netlist::NetId>* outs = nullptr;
  switch (cfg_.module) {
    case Module::kFwd:
      fwd_mod.emplace(cfg_.kind);
      nl = &fwd_mod->nl();
      outs = &fwd_mod->outputs();
      break;
    case Module::kHdcu:
      hdcu_mod.emplace(cfg_.kind);
      nl = &hdcu_mod->nl();
      outs = &hdcu_mod->outputs();
      break;
    case Module::kIcu:
      icu_mod.emplace(cfg_.kind);
      nl = &icu_mod->nl();
      outs = &icu_mod->outputs();
      break;
  }

  // --- Crash-safe checkpoint/resume setup (fault/checkpoint.h) -----------------
  // The manifest hash binds the on-disk checkpoint to this exact campaign:
  // netlist identity + routine image + every outcome-relevant config field.
  // The factory's SoC serves both the fingerprint and the good run below.
  soc::Soc good = factory_();
  LoadedCheckpoint loaded;
  std::optional<CheckpointWriter> writer;
  const auto stop_requested = [this] {
    return cfg_.interrupt != nullptr && cfg_.interrupt->stop_requested();
  };
  if (cfg_.checkpoint.enabled()) {
    const u64 hash = checkpoint_config_hash(cfg_, *nl, good);
    if (cfg_.checkpoint.resume)
      loaded = load_checkpoint(cfg_.checkpoint, PayloadKind::kFaultOutcomes, hash,
                               cfg_.sink);
    writer.emplace(cfg_.checkpoint, PayloadKind::kFaultOutcomes, hash,
                   loaded.next_shard, cfg_.sink);
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded = loaded.shards_loaded;
    res.ckpt.shards_corrupt = loaded.shards_corrupt;
  }
  if (!cfg_.merge_dirs.empty()) {
    // Post-hoc shard merge: per-shard journals all share this campaign's
    // manifest identity (the shard range is excluded from the hash), so their
    // records drop into the same resume path as a single-dir checkpoint.
    MultiLoadedCheckpoint merged =
        load_checkpoint_dirs(cfg_.merge_dirs, PayloadKind::kFaultOutcomes,
                             checkpoint_config_hash(cfg_, *nl, good), cfg_.sink);
    loaded.records.insert(loaded.records.end(),
                          std::make_move_iterator(merged.records.begin()),
                          std::make_move_iterator(merged.records.end()));
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded += merged.shards_loaded;
    res.ckpt.shards_corrupt += merged.shards_corrupt;
  }

  // --- Phase 0: good run with trace recording + checkpoints ---------------------
  tracker.begin_phase(CampaignPhase::kGoodRun, 0);
  emit_phase(trace::EventKind::kCampaignPhaseBegin, CampaignPhase::kGoodRun, 0, 0);
  RecorderTap rec(cfg_.module);
  // The good run traces live (it is serial); checkpoints copy the sink
  // pointer, so detect_one clears it on every restored replica.
  good.set_trace_sink(cfg_.sink);
  good.reset();
  good.core(cfg_.core_id).hooks().tap = &rec;

  std::vector<Checkpoint> cps;
  cps.push_back(Checkpoint{good, 0, 0});
  while (!good.core(cfg_.core_id).halted()) {
    if (good.now() >= cfg_.max_cycles)
      throw std::runtime_error("fault campaign: good run exceeded max_cycles");
    good.tick();
    if (good.now() % cfg_.checkpoint_every == 0) {
      cps.push_back(Checkpoint{good, rec.calls(), rec.r29().size()});
      tracker.add(0, cfg_.checkpoint_every);
    }
  }
  tracker.end_phase();
  emit_phase(trace::EventKind::kCampaignPhaseEnd, CampaignPhase::kGoodRun, 0, 0);
  res.good_cycles = good.now();
  perf::sim_totals().add(perf::SimStat::kGoodRunCycles, good.now());
  res.good_verdict = core::read_verdict(good, mailbox);
  if (res.good_verdict.status != soc::kStatusPass)
    throw std::runtime_error("fault campaign: fault-free run did not pass");

  const std::size_t ncalls = rec.calls();

  // --- Fault list (deterministically sampled) -------------------------------------
  // The collapsed list interleaves SA0/SA1 per net; sampling strides over
  // NETS and keeps both polarities of each sampled net, so no polarity bias.
  const std::vector<netlist::Fault> all_faults = nl->fault_list();
  res.total_faults = all_faults.size();
  std::vector<netlist::Fault> faults;
  for (std::size_t i = 0; i < all_faults.size(); ++i)
    if ((i / 2) % cfg_.fault_stride == 0) faults.push_back(all_faults[i]);
  res.simulated_faults = faults.size();

  // Apply resumed records: each holds one FaultOutcome byte for a completed
  // fault. Out-of-range indices or malformed payloads are dropped (those
  // faults simply re-execute) — the hash-verified manifest makes them
  // unreachable short of corruption the shard checksums already screen for.
  res.outcomes.assign(faults.size(), FaultOutcome::kNotExcited);
  std::vector<u8> done(faults.size(), 0);
  for (const ShardRecord& r : loaded.records) {
    if (r.index >= faults.size() || r.payload.size() != 1 ||
        r.payload[0] > static_cast<u8>(FaultOutcome::kUndetected))
      continue;
    if (done[r.index] == 0) {
      done[r.index] = 1;
      ++res.ckpt.records_resumed;
    }
    res.outcomes[r.index] = static_cast<FaultOutcome>(r.payload[0]);
  }

  // Shard range: everything outside [unit_begin, unit_end) is some other
  // worker's slice — pre-marked done (placeholder kNotExcited, not counted as
  // resumed, never journalled) so screening skips whole out-of-range lane
  // groups and detection never claims those faults.
  if (cfg_.unit_begin != 0 || cfg_.unit_end != 0) {
    if (cfg_.unit_begin >= cfg_.unit_end)
      throw std::runtime_error("fault campaign: empty shard range");
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (i < cfg_.unit_begin || i >= cfg_.unit_end) done[i] = 1;
  }

  // Encodes the c-th recorded module call into a screening state.
  const auto encode_call = [&](std::size_t c, netlist::EvalState& st) {
    switch (cfg_.module) {
      case Module::kFwd: fwd_mod->encode(rec.fwd()[c], st); break;
      case Module::kHdcu: hdcu_mod->encode(rec.hdcu()[c], st); break;
      case Module::kIcu: icu_mod->encode(rec.icu()[c], st); break;
    }
  };

  // --- Phase 1: 64-lane excitation screening, sharded by lane group ---------------
  // Each lane group (<= 63 faults + the golden lane) replays the trace in
  // its own EvalState and writes a disjoint slice of first_div, so workers
  // share nothing but the immutable netlist, the trace, and the work queue.
  using netlist::LaneGroupScreen;
  const std::size_t ngroups = LaneGroupScreen::num_groups(faults.size());
  std::vector<std::size_t> first_div(faults.size(), SIZE_MAX);

  // Every aggregate derives from the merged outcomes vector (plus the
  // screening verdict for faults detection has not reached), so the result
  // is identical for any thread count, straight or resumed. A resumed fault
  // (done) is excited iff its recorded outcome says so — detection never
  // records kNotExcited for an excited fault, so the derivation is exact.
  const auto merge_aggregates = [&] {
    res.excited = 0;
    res.detected_signature = res.detected_verdict = res.detected_watchdog = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      res.excited += done[i] != 0
                         ? res.outcomes[i] != FaultOutcome::kNotExcited
                         : first_div[i] != SIZE_MAX;
      switch (res.outcomes[i]) {
        case FaultOutcome::kNotExcited:
        case FaultOutcome::kUndetected:
          break;
        case FaultOutcome::kDetectedSignature: ++res.detected_signature; break;
        case FaultOutcome::kDetectedVerdict: ++res.detected_verdict; break;
        case FaultOutcome::kDetectedWatchdog: ++res.detected_watchdog; break;
      }
    }
    res.detected =
        res.detected_signature + res.detected_verdict + res.detected_watchdog;
  };

  // Simulated work executed by this process (stlperf): screen replays and
  // detection cycles accumulate via relaxed atomics — commutative sums, so
  // the totals are identical at any thread count.
  std::atomic<u64> screen_calls_total{0};
  std::atomic<u64> detection_cycles_total{0};

  // Common tail of the complete and the drained (interrupted) exit paths:
  // journal everything completed so far and stamp the wall clock.
  const auto finish = [&](bool interrupted) {
    if (writer) {
      writer->flush();
      res.ckpt.shards_flushed = writer->shards_flushed();
      res.ckpt.flush_ns = writer->flush_ns();
    }
    res.ckpt.interrupted = interrupted;
    res.screen_calls = screen_calls_total.load(std::memory_order_relaxed);
    res.sim_cycles =
        res.good_cycles + detection_cycles_total.load(std::memory_order_relaxed);
    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
  };

  tracker.begin_phase(CampaignPhase::kScreening, ngroups);
  emit_phase(trace::EventKind::kCampaignPhaseBegin, CampaignPhase::kScreening,
             static_cast<u32>(ngroups), static_cast<u32>(ngroups >> 32));
  WorkQueue group_queue(ngroups, 1);
  run_pool(std::min<std::size_t>(threads, std::max<std::size_t>(1, ngroups)),
           [&](unsigned w) {
    while (!stop_requested()) {
      const auto chunk = group_queue.next();
      if (!chunk) return;
      for (std::size_t g = chunk->begin; g < chunk->end; ++g) {
        const std::size_t base = g * LaneGroupScreen::kLanesPerGroup;
        const std::size_t n = std::min<std::size_t>(
            LaneGroupScreen::kLanesPerGroup, faults.size() - base);
        // A resumed checkpoint already records every outcome in this group;
        // its screening verdicts could change nothing, skip the replay.
        if (std::all_of(done.begin() + static_cast<std::ptrdiff_t>(base),
                        done.begin() + static_cast<std::ptrdiff_t>(base + n),
                        [](u8 d) { return d != 0; })) {
          tracker.add(w, 1);
          continue;
        }
        LaneGroupScreen screen(*nl, *outs, {faults.data() + base, n});
        std::size_t replayed = 0;
        {
          DETSTL_PROF_SCOPE(perf::ProfScope::kNetlistScreen);
          for (; replayed < ncalls && !screen.done(); ++replayed) {
            encode_call(replayed, screen.state());
            screen.observe(replayed);
            if (cfg_.module == Module::kIcu) screen.clock();
          }
        }
        screen_calls_total.fetch_add(replayed, std::memory_order_relaxed);
        perf::sim_totals().add(perf::SimStat::kScreenCalls, replayed);
        u64 excited_here = 0;
        for (std::size_t j = 0; j < n; ++j) {
          first_div[base + j] = screen.first_divergence()[j];
          excited_here += screen.first_divergence()[j] != SIZE_MAX;
        }
        tracker.add(w, 1, excited_here);
      }
    }
    group_queue.halt();
  });
  tracker.end_phase();

  merge_aggregates();
  if (stop_requested()) {
    // Drained during screening: nothing new completed, but the resumed
    // outcomes (and their aggregates) are preserved in the partial result.
    finish(true);
    return res;
  }
  emit_phase(trace::EventKind::kCampaignPhaseEnd, CampaignPhase::kScreening,
             static_cast<u32>(res.excited), 0);

  // --- Phase 2: detection of excited faults, sharded by fault index ---------------
  const u64 watchdog = res.good_cycles * 2 + 10'000;

  // Re-simulate fault i from its checkpoint; pure function of immutable
  // campaign state, safe to call from any worker.
  const auto detect_one = [&](std::size_t i) -> FaultOutcome {
    // Latest checkpoint at or before the first divergent module call.
    const auto it = std::upper_bound(
        cps.begin(), cps.end(), first_div[i],
        [](std::size_t call, const Checkpoint& c) { return call < c.call_idx; });
    const Checkpoint& cp = *std::prev(it);  // cps[0].call_idx == 0 <= any call

    soc::Soc s = [&cp]() -> soc::Soc {
      DETSTL_PROF_SCOPE(perf::ProfScope::kSnapshotRestore);
      return cp.soc;
    }();
    const u64 resume_cycle = s.now();
    // The checkpoint copy carries the good run's sink; faulty replicas run on
    // worker threads and must never emit (trace/event.h checkpoint contract).
    s.set_trace_sink(nullptr);
    const std::size_t arm_at = cfg_.signature_from_marker ? rec.marker_idx() : 0;
    CompareTap cmp(rec.r29(), cp.r29_idx, arm_at);
    cpu::CpuHooks hooks;
    hooks.tap = &cmp;
    std::optional<netlist::NetlistForward> fw;
    std::optional<netlist::NetlistHazard> hz;
    std::optional<netlist::NetlistIcu> ni;
    switch (cfg_.module) {
      case Module::kFwd:
        fw.emplace(*fwd_mod);
        fw->set_fault(faults[i]);
        hooks.fwd = &*fw;
        break;
      case Module::kHdcu:
        hz.emplace(*hdcu_mod);
        hz->set_fault(faults[i]);
        hooks.hazard = &*hz;
        break;
      case Module::kIcu:
        ni.emplace(*icu_mod);
        ni->set_fault(faults[i]);
        ni->load_state(s.core(cfg_.core_id).icu_state().state());
        hooks.icu = &*ni;
        break;
    }
    s.core(cfg_.core_id).hooks() = hooks;

    while (!s.core(cfg_.core_id).halted() && !cmp.detected() && s.now() < watchdog)
      s.tick();
    detection_cycles_total.fetch_add(s.now() - resume_cycle,
                                     std::memory_order_relaxed);
    perf::sim_totals().add(perf::SimStat::kDetectionCycles, s.now() - resume_cycle);

    if (cmp.detected()) return FaultOutcome::kDetectedSignature;
    if (!s.core(cfg_.core_id).halted()) return FaultOutcome::kDetectedWatchdog;
    const core::TestVerdict v = core::read_verdict(s, mailbox);
    if (v.status != res.good_verdict.status || v.signature != res.good_verdict.signature)
      return FaultOutcome::kDetectedVerdict;
    return FaultOutcome::kUndetected;
  };

  tracker.begin_phase(CampaignPhase::kDetection, faults.size());
  emit_phase(trace::EventKind::kCampaignPhaseBegin, CampaignPhase::kDetection,
             static_cast<u32>(faults.size()),
             static_cast<u32>(static_cast<u64>(faults.size()) >> 32));
  // Small chunks: per-fault cost is wildly uneven (a watchdog fault costs
  // 2x the good run; a non-excited one is a single branch), and the queue's
  // fetch_add is nanoseconds against milliseconds of simulation.
  WorkQueue fault_queue(faults.size(), 4, &done);
  run_pool(std::min<std::size_t>(threads, std::max<std::size_t>(1, faults.size())),
           [&](unsigned w) {
    while (!stop_requested()) {
      const auto chunk = fault_queue.next();
      if (!chunk) return;
      u64 excited_here = 0, detected_here = 0;
      for (std::size_t i = chunk->begin; i < chunk->end; ++i) {
        if (done[i] != 0) continue;  // resumed shard already records this fault
        // Workers write disjoint elements; counters are recomputed from the
        // outcomes vector after the join so the result is order-independent.
        // Non-excited faults are journalled too (a 1-byte kNotExcited
        // record): a resumed run must know they are complete.
        const FaultOutcome out =
            first_div[i] == SIZE_MAX ? FaultOutcome::kNotExcited : detect_one(i);
        res.outcomes[i] = out;
        perf::sim_totals().add(perf::SimStat::kFaultUnits, 1);
        if (writer) writer->add(i, {static_cast<u8>(out)});
        if (cfg_.interrupt != nullptr) cfg_.interrupt->on_unit_complete();
        if (out != FaultOutcome::kNotExcited) {
          ++excited_here;
          detected_here += out != FaultOutcome::kUndetected;
        }
      }
      tracker.add(w, chunk->size(), excited_here, detected_here);
    }
    fault_queue.halt();
  });
  tracker.end_phase();

  // --- Deterministic merge: every aggregate derives from outcomes ----------------
  merge_aggregates();
  if (stop_requested()) {
    // Cooperative drain: in-flight chunks finished and everything completed
    // is journalled. No phase-end / per-fault events — a partial stream is
    // outside the determinism contract by definition.
    finish(true);
    return res;
  }
  emit_phase(trace::EventKind::kCampaignPhaseEnd, CampaignPhase::kDetection,
             static_cast<u32>(res.excited), static_cast<u32>(res.detected));

  // Per-fault events, post-join in fault-index order: identical for every
  // thread count because they derive only from the merged outcomes vector.
  if (cfg_.sink != nullptr) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      DETSTL_TRACE(cfg_.sink,
                   trace::Event{.cycle = i,
                                .kind = trace::EventKind::kCampaignFault,
                                .unit = static_cast<u8>(res.outcomes[i]),
                                .flags = static_cast<u8>(faults[i].stuck1 ? 1 : 0),
                                .addr = static_cast<u32>(faults[i].net)});
    }
  }
  DETSTL_TRACE(cfg_.sink,
               trace::Event{.cycle = seq++,
                            .kind = trace::EventKind::kCampaignDone,
                            .a = static_cast<u32>(res.detected),
                            .b = static_cast<u32>(res.simulated_faults)});
  finish(false);
  return res;
}

}  // namespace detstl::fault
