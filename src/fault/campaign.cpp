#include "fault/campaign.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace detstl::fault {

const char* module_name(Module m) {
  switch (m) {
    case Module::kFwd: return "forwarding-logic";
    case Module::kHdcu: return "hdcu";
    case Module::kIcu: return "icu";
  }
  return "?";
}

namespace {

/// Records the graded module's input trace and the r29 write sequence.
class RecorderTap final : public cpu::ModuleTap {
 public:
  explicit RecorderTap(Module which) : which_(which) {}

  void on_hdcu(u64, const cpu::HdcuIn& in, const cpu::HdcuOut&) override {
    if (which_ == Module::kHdcu) hdcu_.push_back(in);
  }
  void on_fwd(u64, const cpu::FwdIn& in, const cpu::FwdOut&) override {
    if (which_ == Module::kFwd) fwd_.push_back(in);
  }
  void on_icu(u64, const cpu::IcuIn& in, const cpu::IcuOut&) override {
    if (which_ == Module::kIcu) icu_.push_back(in);
  }
  void on_wb(u64, unsigned rd, u32 v) override {
    if (rd == 29) r29_.push_back(v);
    // Execution-loop marker: the wrapper's loop counter reaching 1 ends the
    // loading loop (see CampaignConfig::signature_from_marker).
    if (rd == 30 && v == 1 && marker_idx_ == SIZE_MAX) marker_idx_ = r29_.size();
  }

  std::size_t calls() const {
    switch (which_) {
      case Module::kFwd: return fwd_.size();
      case Module::kHdcu: return hdcu_.size();
      case Module::kIcu: return icu_.size();
    }
    return 0;
  }

  const std::vector<cpu::HdcuIn>& hdcu() const { return hdcu_; }
  const std::vector<cpu::FwdIn>& fwd() const { return fwd_; }
  const std::vector<cpu::IcuIn>& icu() const { return icu_; }
  const std::vector<u32>& r29() const { return r29_; }
  /// Index into r29() where the execution loop's writes start (SIZE_MAX if
  /// the marker never appeared — plain/TCM wrappers have no loading loop).
  std::size_t marker_idx() const { return marker_idx_; }

 private:
  Module which_;
  std::vector<cpu::HdcuIn> hdcu_;
  std::vector<cpu::FwdIn> fwd_;
  std::vector<cpu::IcuIn> icu_;
  std::vector<u32> r29_;
  std::size_t marker_idx_ = SIZE_MAX;
};

/// Compares the faulty run's checked signature writes against the good
/// sequence. Two soundness rules:
///  * in marker mode, comparison is armed only once the execution loop starts
///    (loading-loop signatures are architecturally discarded);
///  * a divergence must persist for kPersist consecutive writes before the
///    run is cut short — a MISR stream can transiently diverge and
///    reconverge (aligned double errors), in which case the final verdict
///    decides.
class CompareTap final : public cpu::ModuleTap {
 public:
  static constexpr unsigned kPersist = 8;

  /// `start` is the resume position in the good trace (checkpoint), `arm_at`
  /// the index where checked writes begin (0 for plain/TCM wrappers).
  CompareTap(const std::vector<u32>& good, std::size_t start, std::size_t arm_at)
      : good_(&good), idx_(start), arm_at_(arm_at), armed_(start >= arm_at) {}

  void on_wb(u64, unsigned rd, u32 v) override {
    if (!armed_) {
      // Waiting for the execution-loop marker; the good-trace index realigns
      // to the execution loop's start regardless of loading-loop drift.
      if (rd == 30 && v == 1) {
        idx_ = arm_at_;
        armed_ = true;
      }
      return;
    }
    if (rd != 29) return;
    const bool match = idx_ < good_->size() && (*good_)[idx_] == v;
    ++idx_;
    diverged_run_ = match ? 0 : diverged_run_ + 1;
  }

  /// Persistent signature divergence observed.
  bool detected() const { return diverged_run_ >= kPersist; }

 private:
  const std::vector<u32>* good_;
  std::size_t idx_;
  std::size_t arm_at_;
  bool armed_;
  unsigned diverged_run_ = 0;
};

struct Checkpoint {
  soc::Soc soc;
  std::size_t call_idx;
  std::size_t r29_idx;
};

}  // namespace

Campaign::Campaign(const CampaignConfig& cfg, SocFactory factory)
    : cfg_(cfg), factory_(std::move(factory)) {}

CampaignResult Campaign::run() {
  const u32 mailbox = cfg_.mailbox != 0 ? cfg_.mailbox : soc::mailbox_addr(cfg_.core_id);
  CampaignResult res;

  // Module netlist for the graded core's physical-design instance.
  std::optional<netlist::FwdNetlist> fwd_mod;
  std::optional<netlist::HdcuNetlist> hdcu_mod;
  std::optional<netlist::IcuNetlist> icu_mod;
  const netlist::Netlist* nl = nullptr;
  const std::vector<netlist::NetId>* outs = nullptr;
  switch (cfg_.module) {
    case Module::kFwd:
      fwd_mod.emplace(cfg_.kind);
      nl = &fwd_mod->nl();
      outs = &fwd_mod->outputs();
      break;
    case Module::kHdcu:
      hdcu_mod.emplace(cfg_.kind);
      nl = &hdcu_mod->nl();
      outs = &hdcu_mod->outputs();
      break;
    case Module::kIcu:
      icu_mod.emplace(cfg_.kind);
      nl = &icu_mod->nl();
      outs = &icu_mod->outputs();
      break;
  }

  // --- Phase 0: good run with trace recording + checkpoints ---------------------
  RecorderTap rec(cfg_.module);
  soc::Soc good = factory_();
  good.reset();
  good.core(cfg_.core_id).hooks().tap = &rec;

  std::vector<Checkpoint> cps;
  cps.push_back(Checkpoint{good, 0, 0});
  while (!good.core(cfg_.core_id).halted()) {
    if (good.now() >= cfg_.max_cycles)
      throw std::runtime_error("fault campaign: good run exceeded max_cycles");
    good.tick();
    if (good.now() % cfg_.checkpoint_every == 0)
      cps.push_back(Checkpoint{good, rec.calls(), rec.r29().size()});
  }
  res.good_cycles = good.now();
  res.good_verdict = core::read_verdict(good, mailbox);
  if (res.good_verdict.status != soc::kStatusPass)
    throw std::runtime_error("fault campaign: fault-free run did not pass");

  const std::size_t ncalls = rec.calls();

  // --- Fault list (deterministically sampled) -------------------------------------
  // The collapsed list interleaves SA0/SA1 per net; sampling strides over
  // NETS and keeps both polarities of each sampled net, so no polarity bias.
  const std::vector<netlist::Fault> all_faults = nl->fault_list();
  res.total_faults = all_faults.size();
  std::vector<netlist::Fault> faults;
  for (std::size_t i = 0; i < all_faults.size(); ++i)
    if ((i / 2) % cfg_.fault_stride == 0) faults.push_back(all_faults[i]);
  res.simulated_faults = faults.size();

  // --- Phase 1: 64-lane excitation screening --------------------------------------
  constexpr unsigned kLanes = 63;  // lane 63 = fault-free reference
  std::vector<std::size_t> first_div(faults.size(), SIZE_MAX);

  for (std::size_t base = 0; base < faults.size(); base += kLanes) {
    const unsigned n = static_cast<unsigned>(std::min<std::size_t>(kLanes, faults.size() - base));
    netlist::EvalState st = nl->make_state();
    for (unsigned j = 0; j < n; ++j)
      netlist::Netlist::inject(st, faults[base + j], 1ull << j);
    u64 alive = n == 64 ? ~0ull : ((1ull << n) - 1);

    for (std::size_t c = 0; c < ncalls && alive != 0; ++c) {
      switch (cfg_.module) {
        case Module::kFwd: fwd_mod->encode(rec.fwd()[c], st); break;
        case Module::kHdcu: hdcu_mod->encode(rec.hdcu()[c], st); break;
        case Module::kIcu: icu_mod->encode(rec.icu()[c], st); break;
      }
      nl->eval(st);
      u64 diff = 0;
      for (netlist::NetId o : *outs) {
        const u64 v = st.value[o];
        const u64 ref = (v >> 63) & 1 ? ~0ull : 0ull;  // replicate lane 63
        diff |= v ^ ref;
      }
      diff &= alive;
      while (diff != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctzll(diff));
        diff &= diff - 1;
        alive &= ~(1ull << lane);
        first_div[base + lane] = c;
      }
      if (cfg_.module == Module::kIcu) nl->clock(st);
    }
  }

  // --- Phase 2: serial detection of excited faults --------------------------------
  res.outcomes.assign(faults.size(), FaultOutcome::kNotExcited);
  const u64 watchdog = res.good_cycles * 2 + 10'000;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (first_div[i] == SIZE_MAX) continue;
    ++res.excited;

    // Latest checkpoint at or before the first divergent module call.
    const Checkpoint* cp = &cps.front();
    for (const auto& c : cps) {
      if (c.call_idx <= first_div[i]) cp = &c;
      else break;
    }

    soc::Soc s = cp->soc;
    const std::size_t arm_at = cfg_.signature_from_marker ? rec.marker_idx() : 0;
    CompareTap cmp(rec.r29(), cp->r29_idx, arm_at);
    cpu::CpuHooks hooks;
    hooks.tap = &cmp;
    std::optional<netlist::NetlistForward> fw;
    std::optional<netlist::NetlistHazard> hz;
    std::optional<netlist::NetlistIcu> ni;
    switch (cfg_.module) {
      case Module::kFwd:
        fw.emplace(*fwd_mod);
        fw->set_fault(faults[i]);
        hooks.fwd = &*fw;
        break;
      case Module::kHdcu:
        hz.emplace(*hdcu_mod);
        hz->set_fault(faults[i]);
        hooks.hazard = &*hz;
        break;
      case Module::kIcu:
        ni.emplace(*icu_mod);
        ni->set_fault(faults[i]);
        ni->load_state(s.core(cfg_.core_id).icu_state().state());
        hooks.icu = &*ni;
        break;
    }
    s.core(cfg_.core_id).hooks() = hooks;

    while (!s.core(cfg_.core_id).halted() && !cmp.detected() && s.now() < watchdog)
      s.tick();

    FaultOutcome out;
    if (cmp.detected()) {
      out = FaultOutcome::kDetectedSignature;
      ++res.detected_signature;
    } else if (!s.core(cfg_.core_id).halted()) {
      out = FaultOutcome::kDetectedWatchdog;
      ++res.detected_watchdog;
    } else {
      const core::TestVerdict v = core::read_verdict(s, mailbox);
      if (v.status != res.good_verdict.status || v.signature != res.good_verdict.signature) {
        out = FaultOutcome::kDetectedVerdict;
        ++res.detected_verdict;
      } else {
        out = FaultOutcome::kUndetected;
      }
    }
    if (out != FaultOutcome::kUndetected) ++res.detected;
    res.outcomes[i] = out;
  }
  return res;
}

}  // namespace detstl::fault
