#pragma once
// Campaign reporting: outcome breakdowns and an undetected-fault dictionary
// grouped by gate type — the view a test engineer uses to decide where a
// routine needs more patterns.

#include <string>

#include "fault/campaign.h"
#include "netlist/modules.h"

namespace detstl::fault {

/// Per-gate-type coverage line of the dictionary.
struct GateClassCoverage {
  netlist::GateOp op;
  u64 faults = 0;
  u64 detected = 0;
  double coverage_percent() const {
    return faults == 0 ? 0.0 : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(faults);
  }
};

struct CampaignReport {
  CampaignResult result;
  std::vector<GateClassCoverage> by_gate_class;  // sorted by fault count desc
};

const char* gate_op_name(netlist::GateOp op);
const char* outcome_name(FaultOutcome o);

/// Classify the campaign's sampled faults against the module netlist the
/// campaign graded (must be constructed with the same kind).
CampaignReport make_report(const CampaignResult& result, const netlist::Netlist& nl,
                           u32 fault_stride);

/// Human-readable rendering (outcome summary + gate-class dictionary).
std::string render_report(const CampaignReport& report, const std::string& title);

}  // namespace detstl::fault
