#include "isa/disasm.h"

#include <cstdio>

#include "isa/encoding.h"

namespace detstl::isa {

namespace {
std::string reg(u8 r) { return "r" + std::to_string(r); }
}  // namespace

std::string disasm(const Instr& in) {
  char buf[96];
  const auto m = std::string(mnemonic(in.op));
  switch (op_class(in.op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv:
      if (in.op == Op::kLui) {
        std::snprintf(buf, sizeof buf, "%-6s %s, 0x%x", m.c_str(), reg(in.rd).c_str(),
                      static_cast<u32>(in.imm));
      } else if (reads_rs2(in)) {
        std::snprintf(buf, sizeof buf, "%-6s %s, %s, %s", m.c_str(), reg(in.rd).c_str(),
                      reg(in.rs1).c_str(), reg(in.rs2).c_str());
      } else {
        std::snprintf(buf, sizeof buf, "%-6s %s, %s, %d", m.c_str(), reg(in.rd).c_str(),
                      reg(in.rs1).c_str(), in.imm);
      }
      return buf;
    case OpClass::kMem:
      if (in.op == Op::kAmoAdd) {
        std::snprintf(buf, sizeof buf, "%-6s %s, (%s), %s", m.c_str(), reg(in.rd).c_str(),
                      reg(in.rs1).c_str(), reg(in.rs2).c_str());
      } else if (is_store(in.op)) {
        std::snprintf(buf, sizeof buf, "%-6s %s, %d(%s)", m.c_str(), reg(in.rs2).c_str(),
                      in.imm, reg(in.rs1).c_str());
      } else {
        std::snprintf(buf, sizeof buf, "%-6s %s, %d(%s)", m.c_str(), reg(in.rd).c_str(),
                      in.imm, reg(in.rs1).c_str());
      }
      return buf;
    case OpClass::kBranch:
      if (in.op == Op::kJal) {
        std::snprintf(buf, sizeof buf, "%-6s %s, %+d", m.c_str(), reg(in.rd).c_str(), in.imm);
      } else if (in.op == Op::kJalr) {
        std::snprintf(buf, sizeof buf, "%-6s %s, %s, %d", m.c_str(), reg(in.rd).c_str(),
                      reg(in.rs1).c_str(), in.imm);
      } else {
        std::snprintf(buf, sizeof buf, "%-6s %s, %s, %+d", m.c_str(), reg(in.rs1).c_str(),
                      reg(in.rs2).c_str(), in.imm);
      }
      return buf;
    case OpClass::kSys:
      if (in.op == Op::kCsrr) {
        std::snprintf(buf, sizeof buf, "%-6s %s, csr[0x%x]", m.c_str(), reg(in.rd).c_str(), in.csr);
      } else if (in.op == Op::kCsrw) {
        std::snprintf(buf, sizeof buf, "%-6s csr[0x%x], %s", m.c_str(), in.csr, reg(in.rs1).c_str());
      } else {
        std::snprintf(buf, sizeof buf, "%s", m.c_str());
      }
      return buf;
    case OpClass::kInvalid:
      break;
  }
  std::snprintf(buf, sizeof buf, ".word 0x%08x", in.raw);
  return buf;
}

std::string disasm_word(u32 word) { return disasm(decode(word)); }

}  // namespace detstl::isa
