#pragma once
// A linked program image: a set of byte segments at absolute addresses plus a
// symbol table. Produced by the Assembler, consumed by the SoC loader.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitutil.h"

namespace detstl::isa {

struct Segment {
  u32 base = 0;
  std::vector<u8> bytes;
  u32 end() const { return base + static_cast<u32>(bytes.size()); }
};

class Program {
 public:
  Program() = default;
  Program(std::vector<Segment> segments, std::map<std::string, u32> symbols,
          u32 entry)
      : segments_(std::move(segments)), symbols_(std::move(symbols)), entry_(entry) {}

  const std::vector<Segment>& segments() const { return segments_; }
  const std::map<std::string, u32>& symbols() const { return symbols_; }

  u32 entry() const { return entry_; }
  void set_entry(u32 e) { entry_ = e; }

  /// Address of a symbol; throws std::out_of_range if undefined.
  u32 symbol(const std::string& name) const { return symbols_.at(name); }
  bool has_symbol(const std::string& name) const { return symbols_.count(name) != 0; }

  /// Total byte size across all segments.
  u32 size_bytes() const {
    u32 n = 0;
    for (const auto& s : segments_) n += static_cast<u32>(s.bytes.size());
    return n;
  }

  bool empty() const { return segments_.empty(); }

 private:
  std::vector<Segment> segments_;
  std::map<std::string, u32> symbols_;
  u32 entry_ = 0;
};

}  // namespace detstl::isa
