#pragma once
// Binary encoding and decoding of instructions (layout documented in isa.h).

#include "isa/isa.h"

namespace detstl::isa {

/// Encode a decoded instruction into its 32-bit memory representation.
/// Immediates out of range or malformed register fields trigger an assertion
/// in debug builds and are truncated otherwise (the assembler validates
/// ranges before calling this).
u32 encode(const Instr& in);

/// Decode a 32-bit word. Unknown opcodes yield Op::kInvalid with `raw` set.
Instr decode(u32 word);

}  // namespace detstl::isa
