#include "isa/asmparser.h"

#include <cctype>
#include <optional>
#include <functional>
#include <map>
#include <vector>

#include "isa/assembler.h"

namespace detstl::isa {

namespace {

struct Token {
  std::string text;
};

/// Split one logical line into comma/whitespace-separated operand tokens,
/// keeping "off(base)" forms intact.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ',' || std::isspace(static_cast<unsigned char>(ch))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

class Parser {
 public:
  /// Standalone mode: owns the assembler. Fragment mode: emits into an
  /// external assembler with every label prefixed.
  Parser(std::string_view source, u32 origin)
      : src_(source), owned_(std::in_place, origin), a_(&*owned_) {}
  Parser(std::string_view source, Assembler& into, std::string prefix)
      : src_(source), a_(&into), prefix_(std::move(prefix)), fragment_(true) {}

  void parse_all() {
    unsigned lineno = 0;
    std::size_t pos = 0;
    while (pos <= src_.size()) {
      const std::size_t nl = src_.find('\n', pos);
      std::string_view line = src_.substr(
          pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
      ++lineno;
      parse_line(line, lineno);
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
  }

  Program run() {
    parse_all();
    try {
      return a_->assemble();
    } catch (const AsmError& e) {
      throw ParseError(0, e.what());
    }
  }

 private:
  void parse_line(std::string_view line, unsigned ln) {
    // Strip comments.
    for (const char c : {';', '#'}) {
      const auto p = line.find(c);
      if (p != std::string_view::npos) line = line.substr(0, p);
    }
    auto toks = tokenize(line);
    if (toks.empty()) return;

    // Leading labels (possibly several on one line).
    while (!toks.empty() && toks.front().back() == ':') {
      const std::string name = toks.front().substr(0, toks.front().size() - 1);
      if (name.empty()) throw ParseError(ln, "empty label");
      guarded(ln, [&] { a_->label(prefix_ + name); });
      toks.erase(toks.begin());
    }
    if (toks.empty()) return;

    const std::string op = lower(toks[0]);
    std::vector<std::string> args(toks.begin() + 1, toks.end());
    if (op[0] == '.') {
      if (fragment_ && (op == ".org" || op == ".entry"))
        throw ParseError(ln, "'" + op + "' not allowed in a fragment");
      directive(op, args, ln);
    } else {
      instruction(op, args, ln);
    }
  }

  static std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  }

  template <typename F>
  void guarded(unsigned ln, F&& f) {
    try {
      f();
    } catch (const AsmError& e) {
      throw ParseError(ln, e.what());
    }
  }

  Reg reg(const std::string& t, unsigned ln) const {
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R'))
      throw ParseError(ln, "expected register, got '" + t + "'");
    char* end = nullptr;
    const long v = std::strtol(t.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= static_cast<long>(kNumRegs))
      throw ParseError(ln, "bad register '" + t + "'");
    return static_cast<Reg>(v);
  }

  i64 imm(const std::string& t, unsigned ln) const {
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 0);  // base 0: dec/hex/oct
    if (end == t.c_str() || *end != '\0')
      throw ParseError(ln, "expected immediate, got '" + t + "'");
    return v;
  }

  bool looks_numeric(const std::string& t) const {
    return !t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) ||
                          t[0] == '-' || t[0] == '+');
  }

  /// "off(base)" -> (offset, base register).
  std::pair<i32, Reg> mem_operand(const std::string& t, unsigned ln) const {
    const auto open = t.find('(');
    const auto close = t.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      throw ParseError(ln, "expected offset(base), got '" + t + "'");
    const std::string off = t.substr(0, open);
    const std::string base = t.substr(open + 1, close - open - 1);
    return {static_cast<i32>(off.empty() ? 0 : imm(off, ln)), reg(base, ln)};
  }

  void expect_argc(const std::vector<std::string>& args, std::size_t n, unsigned ln) {
    if (args.size() != n)
      throw ParseError(ln, "expected " + std::to_string(n) + " operands, got " +
                               std::to_string(args.size()));
  }

  void directive(const std::string& op, const std::vector<std::string>& args,
                 unsigned ln) {
    if (op == ".org") {
      expect_argc(args, 1, ln);
      a_->org(static_cast<u32>(imm(args[0], ln)));
    } else if (op == ".align") {
      expect_argc(args, 1, ln);
      guarded(ln, [&] { a_->align(static_cast<u32>(imm(args[0], ln))); });
    } else if (op == ".word") {
      expect_argc(args, 1, ln);
      if (looks_numeric(args[0])) {
        a_->word(static_cast<u32>(imm(args[0], ln)));
      } else {
        a_->word_label(prefix_ + args[0]);
      }
    } else if (op == ".space") {
      expect_argc(args, 1, ln);
      a_->space(static_cast<u32>(imm(args[0], ln)));
    } else if (op == ".entry") {
      expect_argc(args, 1, ln);
      a_->set_entry(prefix_ + args[0]);
    } else {
      throw ParseError(ln, "unknown directive '" + op + "'");
    }
  }

  void instruction(const std::string& op, const std::vector<std::string>& args,
                   unsigned ln) {
    using A = Assembler;
    // R-type three-register ops.
    static const std::map<std::string, void (A::*)(Reg, Reg, Reg)> r3 = {
        {"add", &A::add}, {"sub", &A::sub}, {"and", &A::and_}, {"or", &A::or_},
        {"xor", &A::xor_}, {"nor", &A::nor_}, {"slt", &A::slt}, {"sltu", &A::sltu},
        {"sll", &A::sll}, {"srl", &A::srl}, {"sra", &A::sra}, {"mul", &A::mul},
        {"mulh", &A::mulh}, {"div", &A::div}, {"divu", &A::divu}, {"rem", &A::rem},
        {"addv", &A::addv}, {"subv", &A::subv},
        {"add64", &A::add64}, {"sub64", &A::sub64}, {"and64", &A::and64},
        {"or64", &A::or64}, {"xor64", &A::xor64}, {"slt64", &A::slt64},
        {"sll64", &A::sll64}, {"srl64", &A::srl64}, {"sra64", &A::sra64},
        {"addv64", &A::addv64}};
    if (auto it = r3.find(op); it != r3.end()) {
      expect_argc(args, 3, ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), reg(args[1], ln),
                                         reg(args[2], ln)); });
      return;
    }

    // I-type signed-immediate ops.
    static const std::map<std::string, void (A::*)(Reg, Reg, i32)> i3 = {
        {"addi", &A::addi}, {"slti", &A::slti}};
    if (auto it = i3.find(op); it != i3.end()) {
      expect_argc(args, 3, ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), reg(args[1], ln),
                                         static_cast<i32>(imm(args[2], ln))); });
      return;
    }
    // I-type unsigned-immediate ops.
    static const std::map<std::string, void (A::*)(Reg, Reg, u32)> u3 = {
        {"andi", &A::andi}, {"ori", &A::ori}, {"xori", &A::xori},
        {"sltiu", &A::sltiu}, {"slli", &A::slli}, {"srli", &A::srli},
        {"srai", &A::srai}};
    if (auto it = u3.find(op); it != u3.end()) {
      expect_argc(args, 3, ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), reg(args[1], ln),
                                         static_cast<u32>(imm(args[2], ln))); });
      return;
    }

    // Loads / stores: op rX, off(base).
    static const std::map<std::string, void (A::*)(Reg, Reg, i32)> loads = {
        {"lw", &A::lw}, {"lh", &A::lh}, {"lhu", &A::lhu}, {"lb", &A::lb},
        {"lbu", &A::lbu}};
    if (auto it = loads.find(op); it != loads.end()) {
      expect_argc(args, 2, ln);
      const auto [off, base] = mem_operand(args[1], ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), base, off); });
      return;
    }
    static const std::map<std::string, void (A::*)(Reg, Reg, i32)> stores = {
        {"sw", &A::sw}, {"sh", &A::sh}, {"sb", &A::sb}};
    if (auto it = stores.find(op); it != stores.end()) {
      expect_argc(args, 2, ln);
      const auto [off, base] = mem_operand(args[1], ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), base, off); });
      return;
    }

    // Branches: op rs1, rs2, label.
    static const std::map<std::string, void (A::*)(Reg, Reg, const std::string&)> br = {
        {"beq", &A::beq}, {"bne", &A::bne}, {"blt", &A::blt}, {"bge", &A::bge},
        {"bltu", &A::bltu}, {"bgeu", &A::bgeu}};
    if (auto it = br.find(op); it != br.end()) {
      expect_argc(args, 3, ln);
      guarded(ln, [&] { ((*a_).*it->second)(reg(args[0], ln), reg(args[1], ln), prefix_ + args[2]); });
      return;
    }

    if (op == "jal") {
      if (args.size() == 1) {
        guarded(ln, [&] { a_->jal(prefix_ + args[0]); });
      } else {
        expect_argc(args, 2, ln);
        guarded(ln, [&] { a_->jal(reg(args[0], ln), prefix_ + args[1]); });
      }
      return;
    }
    if (op == "jalr") {
      expect_argc(args, args.size() == 3 ? 3 : 2, ln);
      const i32 off = args.size() == 3 ? static_cast<i32>(imm(args[2], ln)) : 0;
      guarded(ln, [&] { a_->jalr(reg(args[0], ln), reg(args[1], ln), off); });
      return;
    }
    if (op == "ret") {
      a_->ret();
      return;
    }
    if (op == "amoadd") {
      expect_argc(args, 3, ln);
      // amoadd rd, (rs1), rs2
      std::string addr = args[1];
      if (addr.size() >= 2 && addr.front() == '(' && addr.back() == ')')
        addr = addr.substr(1, addr.size() - 2);
      guarded(ln, [&] { a_->amoadd(reg(args[0], ln), reg(addr, ln), reg(args[2], ln)); });
      return;
    }
    if (op == "csrr") {
      expect_argc(args, 2, ln);
      guarded(ln, [&] {
        a_->csrr(reg(args[0], ln), static_cast<Csr>(imm(args[1], ln)));
      });
      return;
    }
    if (op == "csrw") {
      expect_argc(args, 2, ln);
      guarded(ln, [&] {
        a_->csrw(static_cast<Csr>(imm(args[0], ln)), reg(args[1], ln));
      });
      return;
    }
    if (op == "li") {
      expect_argc(args, 2, ln);
      guarded(ln, [&] { a_->li(reg(args[0], ln), static_cast<u32>(imm(args[1], ln))); });
      return;
    }
    if (op == "la") {
      expect_argc(args, 2, ln);
      guarded(ln, [&] { a_->la(reg(args[0], ln), prefix_ + args[1]); });
      return;
    }
    if (op == "nop") {
      a_->nop();
      return;
    }
    if (op == "eret") {
      a_->eret();
      return;
    }
    if (op == "halt") {
      a_->halt();
      return;
    }
    throw ParseError(ln, "unknown mnemonic '" + op + "'");
  }

  std::string_view src_;
  std::optional<Assembler> owned_;
  Assembler* a_;
  std::string prefix_;
  bool fragment_ = false;
};

}  // namespace

Program assemble_text(std::string_view source, u32 origin) {
  return Parser(source, origin).run();
}

void assemble_text_into(Assembler& a, std::string_view source,
                        const std::string& label_prefix) {
  Parser(source, a, label_prefix).parse_all();
}

}  // namespace detstl::isa
