#pragma once
// Synchronous imprecise interrupt sources and the per-core cause-bit mapping.
//
// The paper (Sec. IV-D) reports ~10% higher ICU fault coverage on core C
// because cores A/B map *different interrupt events to the same cause bits*,
// masking some fault effects, while core C exposes distinct bits. We model
// exactly that: four event sources; cores A/B fold them onto 2 cause bits,
// core C reports 4 distinct bits.

#include "common/bitutil.h"

namespace detstl::isa {

/// The three core flavours of the triple-core SoC. A and B share the 32-bit
/// ISA (but get distinct gate-level netlist instantiations); C adds the R64
/// extension and a wider ICU cause register.
enum class CoreKind : u8 { kA = 0, kB = 1, kC = 2 };

inline const char* core_name(CoreKind k) {
  switch (k) {
    case CoreKind::kA: return "A";
    case CoreKind::kB: return "B";
    case CoreKind::kC: return "C";
  }
  return "?";
}

inline bool core_has_r64(CoreKind k) { return k == CoreKind::kC; }

/// Synchronous imprecise interrupt sources (index = bit in kMip / kMie).
enum class IcuSource : u8 {
  kOverflow = 0,   // kAddv/kSubv/kAddv64 signed overflow, flagged at WB
  kDivZero = 1,    // kDiv/kDivu/kRem with zero divisor
  kUnaligned = 2,  // misaligned data access (performed force-aligned)
  kSoftware = 3,   // write to Csr::kMswi
};

inline constexpr unsigned kNumIcuSources = 4;

/// Map the highest-priority pending source to the value read from kMcause.
/// Cores A/B share cause bits pairwise; core C reports one-hot bits.
inline u32 map_cause(CoreKind kind, IcuSource src) {
  const auto s = static_cast<unsigned>(src);
  if (kind == CoreKind::kC) return 1u << s;
  // A/B: overflow and div-by-zero share bit 0; unaligned and software share bit 1.
  return (src == IcuSource::kOverflow || src == IcuSource::kDivZero) ? 0x1u : 0x2u;
}

}  // namespace detstl::isa
