#pragma once
// Instruction-set definition for the reproduced SoC's cores.
//
// The ISA is a compact 32-bit dual-issue RISC, stand-in for the proprietary
// automotive cores of the paper (see DESIGN.md, substitution table). Cores A/B
// implement the base 32-bit set; core C additionally implements the R64 group,
// which operates on even/odd register *pairs* holding 64-bit operands
// ("extended instruction set able to deal with 64-bit operands").
//
// Encoding (fixed 32-bit words, little-endian in memory):
//   R-type : [31:26]=kOpR   [25:21]=rd [20:16]=rs1 [15:11]=rs2 [10:0]=funct
//   R64    : [31:26]=kOpR64 same layout (registers must be even)
//   I-type : [31:26]=major  [25:21]=rd [20:16]=rs1 [15:0]=imm16
//   Branch : [31:26]=major  [25:21]=rs1 [20:16]=rs2 [15:0]=imm16 (byte offset
//            relative to the branch's own PC, sign-extended)
//   Store  : [31:26]=major  [25:21]=rs2(data) [20:16]=rs1(base) [15:0]=imm16
//   JAL    : [31:26]=kOpJal [25:21]=rd [20:0]=imm21 (byte offset, signed)
//   CSRR   : I-type, imm16 = CSR number, rd = destination
//   CSRW   : I-type, imm16 = CSR number, rs1 = source, rd ignored

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/bitutil.h"

namespace detstl::isa {

// ----------------------------------------------------------------------------
// Registers
// ----------------------------------------------------------------------------

enum Reg : u8 {
  R0 = 0,  // hardwired zero
  R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14, R15,
  R16, R17, R18, R19, R20, R21, R22, R23, R24, R25,
  R26,  // ISR scratch (STL convention)
  R27,  // ISR scratch (STL convention)
  R28,  // ISR accumulation (STL convention)
  R29,  // test signature (STL convention)
  R30,  // wrapper loop counter (STL convention)
  R31,  // link register
};

inline constexpr unsigned kNumRegs = 32;

// ----------------------------------------------------------------------------
// Operations
// ----------------------------------------------------------------------------

enum class Op : u8 {
  // R-type ALU (32-bit)
  kAdd, kSub, kAnd, kOr, kXor, kNor, kSlt, kSltu, kSll, kSrl, kSra,
  kMul, kMulh, kDiv, kDivu, kRem,
  kAddv,  // add, raises imprecise overflow event on signed overflow
  kSubv,  // sub, raises imprecise overflow event on signed overflow
  kAmoAdd,  // atomic fetch-and-add: rd = M[rs1]; M[rs1] += rs2

  // R64 group (core C only; even/odd register pairs)
  kAdd64, kSub64, kAnd64, kOr64, kXor64, kSlt64, kSll64, kSrl64, kSra64,
  kAddv64,  // 64-bit add, imprecise overflow event on signed-64 overflow

  // I-type ALU
  kAddi, kAndi, kOri, kXori, kSlti, kSltiu, kSlli, kSrli, kSrai, kLui,

  // Loads / stores
  kLw, kLh, kLhu, kLb, kLbu, kSw, kSh, kSb,

  // Branches (PC-relative, resolved in EX)
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,

  // Jumps
  kJal, kJalr,

  // System
  kCsrr, kCsrw, kEret, kHalt,

  kInvalid,
};

inline constexpr unsigned kNumOps = static_cast<unsigned>(Op::kInvalid) + 1;

/// Functional-unit / issue class of an operation.
enum class OpClass : u8 {
  kAlu,     // single-cycle integer
  kMulDiv,  // multi-cycle integer (DIV/REM family)
  kMem,     // load/store/amo — pipe 0 only
  kBranch,  // branch/jump — pipe 0 only
  kSys,     // CSR access, ERET, HALT — pipe 0 only, issues alone
  kInvalid,
};

// ----------------------------------------------------------------------------
// CSRs
// ----------------------------------------------------------------------------

enum class Csr : u16 {
  // Performance counters (read-only from software; cleared by writing 0)
  kCycle = 0x000,
  kInstret = 0x001,
  kIfStall = 0x002,    // cycles the issue stage starved for instructions
  kMemStall = 0x003,   // cycles the MEM stage waited on the memory subsystem
  kHdcuStall = 0x004,  // stall cycles inserted by the hazard detection unit
  kIcMiss = 0x005,
  kDcMiss = 0x006,
  kSplit = 0x007,      // issue packets serialised by the HDCU

  // Trap handling
  kMstatus = 0x010,  // bit0 = global interrupt enable
  kMtvec = 0x011,    // trap vector address
  kMepc = 0x012,     // PC of the first un-issued instruction at recognition
  kMcause = 0x013,   // ICU cause bits (core-dependent mapping, see icu.h)
  kMip = 0x014,      // raw pending bits (diagnostic view)
  kMie = 0x015,      // per-source interrupt enable mask
  kMfpc = 0x016,     // PC of the interrupting (faulting) instruction
  kMswi = 0x017,     // write any value: raise the software imprecise event

  // Cache control
  kCacheOp = 0x020,   // write: bit0 = invalidate I$, bit1 = invalidate D$
  kCacheCfg = 0x021,  // bit0 = I$ enable, bit1 = D$ enable, bit2 = write-allocate

  // Identity
  kCoreId = 0x030,
};

inline constexpr u32 kMstatusIe = 1u << 0;
inline constexpr u32 kCacheOpInvI = 1u << 0;
inline constexpr u32 kCacheOpInvD = 1u << 1;
inline constexpr u32 kCacheCfgIEn = 1u << 0;
inline constexpr u32 kCacheCfgDEn = 1u << 1;
inline constexpr u32 kCacheCfgWriteAllocate = 1u << 2;

// ----------------------------------------------------------------------------
// Decoded instruction
// ----------------------------------------------------------------------------

struct Instr {
  Op op = Op::kInvalid;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;   // sign- or zero-extended per op
  u16 csr = 0;   // CSR number for kCsrr/kCsrw
  u32 raw = 0;   // original encoding

  bool valid() const { return op != Op::kInvalid; }
};

// ----------------------------------------------------------------------------
// Operation metadata
// ----------------------------------------------------------------------------

OpClass op_class(Op op);
std::string_view mnemonic(Op op);

bool is_r64(Op op);
bool is_load(Op op);
bool is_store(Op op);
bool is_branch(Op op);   // conditional branches only
bool is_jump(Op op);     // JAL/JALR
bool is_muldiv(Op op);   // multi-cycle EX ops

/// True when the instruction architecturally writes `rd` (and rd may be R0,
/// which discards the write).
bool writes_rd(const Instr& in);
/// True when the instruction reads `rs1` / `rs2` as a register operand.
bool reads_rs1(const Instr& in);
bool reads_rs2(const Instr& in);

/// Number of bytes accessed by a load/store op (1, 2, 4), 0 otherwise.
unsigned mem_size(Op op);

// --- static control-flow metadata (used by the analysis passes) --------------

/// Statically-known control-transfer target of a branch or JAL at `pc`
/// (both encode byte offsets relative to their own PC). Empty for every
/// other op, including JALR whose target is register-indirect.
std::optional<u32> direct_target(const Instr& in, u32 pc);

/// True when execution can continue at pc+4 after this instruction:
/// false for unconditional transfers (JAL/JALR), HALT and ERET; true for
/// conditional branches (not-taken path) and everything else.
bool falls_through(const Instr& in);

/// True when `csr` is one of the free-running performance counters
/// (kCycle..kSplit) whose values re-couple a signature to timing.
bool is_counter_csr(u16 csr);

}  // namespace detstl::isa
