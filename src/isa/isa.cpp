#include "isa/isa.h"

namespace detstl::isa {

OpClass op_class(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kNor: case Op::kSlt: case Op::kSltu: case Op::kSll: case Op::kSrl:
    case Op::kSra: case Op::kMul: case Op::kMulh: case Op::kAddv: case Op::kSubv:
    case Op::kAdd64: case Op::kSub64: case Op::kAnd64: case Op::kOr64:
    case Op::kXor64: case Op::kSlt64: case Op::kSll64: case Op::kSrl64:
    case Op::kSra64: case Op::kAddv64:
    case Op::kAddi: case Op::kAndi: case Op::kOri: case Op::kXori:
    case Op::kSlti: case Op::kSltiu: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kLui:
      return OpClass::kAlu;
    case Op::kDiv: case Op::kDivu: case Op::kRem:
      return OpClass::kMulDiv;
    case Op::kLw: case Op::kLh: case Op::kLhu: case Op::kLb: case Op::kLbu:
    case Op::kSw: case Op::kSh: case Op::kSb: case Op::kAmoAdd:
      return OpClass::kMem;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu: case Op::kJal: case Op::kJalr:
      return OpClass::kBranch;
    case Op::kCsrr: case Op::kCsrw: case Op::kEret: case Op::kHalt:
      return OpClass::kSys;
    case Op::kInvalid:
      break;
  }
  return OpClass::kInvalid;
}

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNor: return "nor";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kAddv: return "addv";
    case Op::kSubv: return "subv";
    case Op::kAmoAdd: return "amoadd";
    case Op::kAdd64: return "add64";
    case Op::kSub64: return "sub64";
    case Op::kAnd64: return "and64";
    case Op::kOr64: return "or64";
    case Op::kXor64: return "xor64";
    case Op::kSlt64: return "slt64";
    case Op::kSll64: return "sll64";
    case Op::kSrl64: return "srl64";
    case Op::kSra64: return "sra64";
    case Op::kAddv64: return "addv64";
    case Op::kAddi: return "addi";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kXori: return "xori";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kLh: return "lh";
    case Op::kLhu: return "lhu";
    case Op::kLb: return "lb";
    case Op::kLbu: return "lbu";
    case Op::kSw: return "sw";
    case Op::kSh: return "sh";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kCsrr: return "csrr";
    case Op::kCsrw: return "csrw";
    case Op::kEret: return "eret";
    case Op::kHalt: return "halt";
    case Op::kInvalid: return "invalid";
  }
  return "?";
}

bool is_r64(Op op) {
  switch (op) {
    case Op::kAdd64: case Op::kSub64: case Op::kAnd64: case Op::kOr64:
    case Op::kXor64: case Op::kSlt64: case Op::kSll64: case Op::kSrl64:
    case Op::kSra64: case Op::kAddv64:
      return true;
    default:
      return false;
  }
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLw: case Op::kLh: case Op::kLhu: case Op::kLb: case Op::kLbu:
    case Op::kAmoAdd:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kSw: case Op::kSh: case Op::kSb: case Op::kAmoAdd:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) { return op == Op::kJal || op == Op::kJalr; }

bool is_muldiv(Op op) {
  return op == Op::kDiv || op == Op::kDivu || op == Op::kRem;
}

bool writes_rd(const Instr& in) {
  switch (in.op) {
    case Op::kSw: case Op::kSh: case Op::kSb:
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
    case Op::kCsrw: case Op::kEret: case Op::kHalt: case Op::kInvalid:
      return false;
    default:
      return true;
  }
}

bool reads_rs1(const Instr& in) {
  switch (in.op) {
    case Op::kLui: case Op::kJal: case Op::kCsrr: case Op::kEret:
    case Op::kHalt: case Op::kInvalid:
      return false;
    default:
      return true;
  }
}

bool reads_rs2(const Instr& in) {
  switch (op_class(in.op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv:
      // Immediate forms do not read rs2.
      switch (in.op) {
        case Op::kAddi: case Op::kAndi: case Op::kOri: case Op::kXori:
        case Op::kSlti: case Op::kSltiu: case Op::kSlli: case Op::kSrli:
        case Op::kSrai: case Op::kLui:
          return false;
        default:
          return true;
      }
    case OpClass::kMem:
      // Stores read rs2 as the data operand; AMO reads rs2 as the addend.
      return is_store(in.op);
    case OpClass::kBranch:
      return is_branch(in.op);
    case OpClass::kSys:
    case OpClass::kInvalid:
      return false;
  }
  return false;
}

unsigned mem_size(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: case Op::kAmoAdd:
      return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh:
      return 2;
    case Op::kLb: case Op::kLbu: case Op::kSb:
      return 1;
    default:
      return 0;
  }
}

std::optional<u32> direct_target(const Instr& in, u32 pc) {
  if (is_branch(in.op) || in.op == Op::kJal)
    return pc + static_cast<u32>(in.imm);
  return std::nullopt;
}

bool falls_through(const Instr& in) {
  switch (in.op) {
    case Op::kJal: case Op::kJalr: case Op::kHalt: case Op::kEret:
      return false;
    default:
      return in.valid();
  }
}

bool is_counter_csr(u16 csr) {
  return csr >= static_cast<u16>(Csr::kCycle) &&
         csr <= static_cast<u16>(Csr::kSplit);
}

}  // namespace detstl::isa
