#pragma once
// Textual assembler front-end: parses assembly source into a Program via the
// builder Assembler. Lets self-test routines be written/maintained as .s
// files alongside the programmatic generators.
//
// Syntax:
//   label:                      ; labels end with ':'
//   add   r3, r1, r2            ; registers are r0..r31
//   addi  r1, r0, -42           ; immediates: decimal or 0x... hex
//   lw    r5, 8(r10)            ; loads/stores use offset(base)
//   sw    r5, -4(r10)
//   beq   r1, r2, target        ; control flow targets are labels
//   jal   r31, func             ; or just `jal func`
//   csrr  r4, 0x002             ; CSR number as immediate
//   csrw  0x021, r4
//   li    r7, 0xdeadbeef        ; pseudo: lui+ori
//   la    r7, table             ; pseudo: absolute address of label
//   .org  0x10002000            ; location control
//   .align 8
//   .word 0x12345678            ; data
//   .word label                 ; 32-bit absolute address of a label
//   .space 64
//   .entry main                 ; program entry point
// Comments start with ';' or '#' and run to end of line.

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.h"

namespace detstl::isa {

class Assembler;

class ParseError : public std::runtime_error {
 public:
  ParseError(unsigned line, const std::string& msg)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg), line_(line) {}
  unsigned line() const { return line_; }

 private:
  unsigned line_;
};

/// Assemble `source`; `origin` is the address before any `.org`.
Program assemble_text(std::string_view source, u32 origin = 0);

/// Emit `source` into an existing Assembler at its current location. Every
/// label defined or referenced in the source is prefixed with `label_prefix`,
/// so text fragments compose with programmatically emitted code (this is how
/// text-authored self-test routine bodies plug into the wrappers).
/// Location directives (.org) and .entry are rejected in fragment mode.
void assemble_text_into(Assembler& a, std::string_view source,
                        const std::string& label_prefix);

}  // namespace detstl::isa
