#include "isa/alu.h"

#include <cassert>
#include <limits>

namespace detstl::isa {

AluResult alu32(Op op, u32 a, u32 b) {
  AluResult r;
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  switch (op) {
    case Op::kAdd: case Op::kAddi:
      r.value = a + b;
      break;
    case Op::kAddv:
      r.value = a + b;
      r.overflow = ((~(a ^ b)) & (a ^ r.value)) >> 31;
      break;
    case Op::kSub:
      r.value = a - b;
      break;
    case Op::kSubv:
      r.value = a - b;
      r.overflow = ((a ^ b) & (a ^ r.value)) >> 31;
      break;
    case Op::kAnd: case Op::kAndi:
      r.value = a & b;
      break;
    case Op::kOr: case Op::kOri:
      r.value = a | b;
      break;
    case Op::kXor: case Op::kXori:
      r.value = a ^ b;
      break;
    case Op::kNor:
      r.value = ~(a | b);
      break;
    case Op::kSlt: case Op::kSlti:
      r.value = sa < sb ? 1 : 0;
      break;
    case Op::kSltu: case Op::kSltiu:
      r.value = a < b ? 1 : 0;
      break;
    case Op::kSll: case Op::kSlli:
      r.value = a << (b & 31u);
      break;
    case Op::kSrl: case Op::kSrli:
      r.value = a >> (b & 31u);
      break;
    case Op::kSra: case Op::kSrai:
      r.value = static_cast<u32>(sa >> (b & 31u));
      break;
    case Op::kMul:
      r.value = a * b;
      break;
    case Op::kMulh:
      r.value = static_cast<u32>(
          (static_cast<i64>(sa) * static_cast<i64>(sb)) >> 32);
      break;
    case Op::kDiv:
      if (b == 0) {
        r.value = 0xffffffffu;
        r.div_by_zero = true;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r.value = a;  // overflow case: quotient saturates to dividend
      } else {
        r.value = static_cast<u32>(sa / sb);
      }
      break;
    case Op::kDivu:
      if (b == 0) {
        r.value = 0xffffffffu;
        r.div_by_zero = true;
      } else {
        r.value = a / b;
      }
      break;
    case Op::kRem:
      if (b == 0) {
        r.value = a;
        r.div_by_zero = true;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r.value = 0;
      } else {
        r.value = static_cast<u32>(sa % sb);
      }
      break;
    case Op::kLui:
      r.value = b << 16;
      break;
    default:
      assert(false && "alu32: not an ALU op");
      break;
  }
  return r;
}

Alu64Result alu64(Op op, u64 a, u64 b) {
  Alu64Result r;
  switch (op) {
    case Op::kAdd64:
      r.value = a + b;
      break;
    case Op::kAddv64:
      r.value = a + b;
      r.overflow = ((~(a ^ b)) & (a ^ r.value)) >> 63;
      break;
    case Op::kSub64:
      r.value = a - b;
      break;
    case Op::kAnd64:
      r.value = a & b;
      break;
    case Op::kOr64:
      r.value = a | b;
      break;
    case Op::kXor64:
      r.value = a ^ b;
      break;
    case Op::kSlt64:
      r.value = static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0;
      break;
    case Op::kSll64:
      r.value = a << (b & 63u);
      break;
    case Op::kSrl64:
      r.value = a >> (b & 63u);
      break;
    case Op::kSra64:
      r.value = static_cast<u64>(static_cast<i64>(a) >> (b & 63u));
      break;
    default:
      assert(false && "alu64: not an R64 op");
      break;
  }
  return r;
}

bool branch_taken(Op op, u32 a, u32 b) {
  switch (op) {
    case Op::kBeq: return a == b;
    case Op::kBne: return a != b;
    case Op::kBlt: return static_cast<i32>(a) < static_cast<i32>(b);
    case Op::kBge: return static_cast<i32>(a) >= static_cast<i32>(b);
    case Op::kBltu: return a < b;
    case Op::kBgeu: return a >= b;
    default:
      assert(false && "branch_taken: not a branch op");
      return false;
  }
}

}  // namespace detstl::isa
