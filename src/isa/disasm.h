#pragma once
// Instruction formatting for traces and diagnostics.

#include <string>

#include "isa/isa.h"

namespace detstl::isa {

/// Render a decoded instruction as assembly text, e.g. "add  r3, r1, r2".
std::string disasm(const Instr& in);

/// Decode + render a raw word.
std::string disasm_word(u32 word);

}  // namespace detstl::isa
