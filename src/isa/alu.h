#pragma once
// Architectural ALU semantics, shared by the functional reference executor and
// the pipeline's EX stage so the two models cannot diverge on arithmetic.

#include "isa/isa.h"

namespace detstl::isa {

/// Result of a 32-bit ALU evaluation.
struct AluResult {
  u32 value = 0;
  bool overflow = false;    // signed overflow (kAddv/kSubv)
  bool div_by_zero = false; // kDiv/kDivu/kRem with zero divisor
};

/// Result of a 64-bit (R64 group) ALU evaluation.
struct Alu64Result {
  u64 value = 0;
  bool overflow = false;  // signed-64 overflow (kAddv64)
};

/// Evaluate a 32-bit ALU/MULDIV op. `b` is the rs2 value or the decoded
/// immediate for I-type forms.
AluResult alu32(Op op, u32 a, u32 b);

/// Evaluate an R64-group op on 64-bit pair operands.
Alu64Result alu64(Op op, u64 a, u64 b);

/// Evaluate a conditional-branch predicate.
bool branch_taken(Op op, u32 a, u32 b);

}  // namespace detstl::isa
