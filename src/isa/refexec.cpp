#include "isa/refexec.h"

#include <cassert>

#include "isa/encoding.h"

namespace detstl::isa {

u32 MemView::load(u32 addr, unsigned size) {
  u32 v = 0;
  for (unsigned i = 0; i < size; ++i) v |= static_cast<u32>(load8(addr + i)) << (8 * i);
  return v;
}

void MemView::store(u32 addr, u32 v, unsigned size) {
  for (unsigned i = 0; i < size; ++i) store8(addr + i, static_cast<u8>(v >> (8 * i)));
}

void FlatMemory::load_program(const Program& prog) {
  for (const auto& seg : prog.segments())
    for (u32 i = 0; i < seg.bytes.size(); ++i) store8(seg.base + i, seg.bytes[i]);
}

void RefExec::reset(u32 entry) {
  regs_.fill(0);
  pc_ = entry;
  halted_ = false;
  instret_ = 0;
  mstatus_ = mtvec_ = mepc_ = mcause_ = mip_ = mie_ = mfpc_ = 0;
  event_counts_.fill(0);
}

u32 RefExec::csr(Csr c) const {
  switch (c) {
    case Csr::kCycle:
    case Csr::kInstret:
      return static_cast<u32>(instret_);
    case Csr::kMstatus: return mstatus_;
    case Csr::kMtvec: return mtvec_;
    case Csr::kMepc: return mepc_;
    case Csr::kMcause: return mcause_;
    case Csr::kMip: return mip_;
    case Csr::kMie: return mie_;
    case Csr::kMfpc: return mfpc_;
    case Csr::kCoreId: return static_cast<u32>(kind_);
    default:
      return 0;  // stall/cache counters have no meaning in the untimed model
  }
}

void RefExec::set_csr(Csr c, u32 v) {
  switch (c) {
    case Csr::kMstatus: mstatus_ = v & kMstatusIe; break;
    case Csr::kMtvec: mtvec_ = v; break;
    case Csr::kMepc: mepc_ = v; break;
    case Csr::kMie: mie_ = v & ((1u << kNumIcuSources) - 1); break;
    case Csr::kMip: mip_ &= ~v; break;  // write-1-to-clear
    default:
      break;  // counters, cache control: no effect in the untimed model
  }
}

void RefExec::write_rd(const Instr& in, u32 v) {
  if (writes_rd(in) && in.rd != 0) regs_[in.rd] = v;
}

void RefExec::write_rd_pair(const Instr& in, u64 v) {
  if (in.rd != 0) {
    regs_[in.rd] = static_cast<u32>(v);
    regs_[in.rd + 1] = static_cast<u32>(v >> 32);
  }
}

void RefExec::raise(IcuSource src, u32 faulting_pc) {
  const auto s = static_cast<unsigned>(src);
  ++event_counts_[s];
  mip_ |= 1u << s;
  // Precise recognition: if enabled, trap immediately after this instruction.
  if ((mstatus_ & kMstatusIe) && (mie_ & (1u << s))) {
    mepc_ = pc_;  // next instruction (pc_ already advanced by the caller)
    mfpc_ = faulting_pc;
    mcause_ = map_cause(kind_, src);
    mip_ &= ~(1u << s);
    mstatus_ &= ~kMstatusIe;
    pc_ = mtvec_;
  }
}

bool RefExec::step() {
  if (halted_) return false;
  const u32 fetch_pc = pc_;
  const Instr in = decode(mem_->load(fetch_pc & ~3u, 4));
  pc_ = fetch_pc + 4;
  ++instret_;

  switch (op_class(in.op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv: {
      if (is_r64(in.op)) {
        assert(core_has_r64(kind_) && "R64 op on a 32-bit core");
        const u64 a = reg_pair(in.rs1);
        const u64 b = reg_pair(in.rs2);
        const auto res = alu64(in.op, a, b);
        write_rd_pair(in, res.value);
        if (res.overflow) raise(IcuSource::kOverflow, fetch_pc);
      } else {
        const u32 a = regs_[in.rs1];
        const u32 b = reads_rs2(in) ? regs_[in.rs2] : static_cast<u32>(in.imm);
        const auto res = alu32(in.op, a, b);
        write_rd(in, res.value);
        if (res.overflow) raise(IcuSource::kOverflow, fetch_pc);
        if (res.div_by_zero) raise(IcuSource::kDivZero, fetch_pc);
      }
      break;
    }
    case OpClass::kMem: {
      const unsigned size = mem_size(in.op);
      u32 addr = regs_[in.rs1] + static_cast<u32>(in.imm);
      if (addr % size != 0) {
        raise(IcuSource::kUnaligned, fetch_pc);
        addr = align_down(addr, size);
      }
      if (in.op == Op::kAmoAdd) {
        const u32 old = mem_->load(addr, 4);
        mem_->store(addr, old + regs_[in.rs2], 4);
        write_rd(in, old);
      } else if (is_store(in.op)) {
        mem_->store(addr, regs_[in.rs2], size);
      } else {
        u32 v = mem_->load(addr, size);
        if (in.op == Op::kLh) v = static_cast<u32>(sext(v, 16));
        if (in.op == Op::kLb) v = static_cast<u32>(sext(v, 8));
        write_rd(in, v);
      }
      break;
    }
    case OpClass::kBranch: {
      if (in.op == Op::kJal) {
        write_rd(in, fetch_pc + 4);
        pc_ = fetch_pc + static_cast<u32>(in.imm);
      } else if (in.op == Op::kJalr) {
        const u32 target = (regs_[in.rs1] + static_cast<u32>(in.imm)) & ~3u;
        write_rd(in, fetch_pc + 4);
        pc_ = target;
      } else if (branch_taken(in.op, regs_[in.rs1], regs_[in.rs2])) {
        pc_ = fetch_pc + static_cast<u32>(in.imm);
      }
      break;
    }
    case OpClass::kSys: {
      switch (in.op) {
        case Op::kCsrr:
          write_rd(in, csr(static_cast<Csr>(in.csr)));
          break;
        case Op::kCsrw:
          if (static_cast<Csr>(in.csr) == Csr::kMswi) {
            raise(IcuSource::kSoftware, fetch_pc);
          } else {
            set_csr(static_cast<Csr>(in.csr), regs_[in.rs1]);
          }
          break;
        case Op::kEret:
          pc_ = mepc_;
          mstatus_ |= kMstatusIe;
          break;
        case Op::kHalt:
          halted_ = true;
          break;
        default:
          break;
      }
      break;
    }
    case OpClass::kInvalid:
      halted_ = true;  // treat as fatal in the untimed model
      break;
  }
  return !halted_;
}

u64 RefExec::run(u64 max_steps) {
  u64 n = 0;
  while (n < max_steps && step()) ++n;
  return n;
}

}  // namespace detstl::isa
