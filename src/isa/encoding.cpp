#include "isa/encoding.h"

#include <cassert>

namespace detstl::isa {

namespace {

// Major opcodes, [31:26].
enum Major : u32 {
  kOpR = 0x01,
  kOpR64 = 0x02,
  kOpAddi = 0x04,
  kOpAndi = 0x05,
  kOpOri = 0x06,
  kOpXori = 0x07,
  kOpSlti = 0x08,
  kOpSltiu = 0x09,
  kOpSlli = 0x0a,
  kOpSrli = 0x0b,
  kOpSrai = 0x0c,
  kOpLui = 0x0d,
  kOpLw = 0x10,
  kOpLh = 0x11,
  kOpLhu = 0x12,
  kOpLb = 0x13,
  kOpLbu = 0x14,
  kOpSw = 0x15,
  kOpSh = 0x16,
  kOpSb = 0x17,
  kOpBeq = 0x18,
  kOpBne = 0x19,
  kOpBlt = 0x1a,
  kOpBge = 0x1b,
  kOpBltu = 0x1c,
  kOpBgeu = 0x1d,
  kOpJal = 0x1e,
  kOpJalr = 0x1f,
  kOpCsrr = 0x20,
  kOpCsrw = 0x21,
  kOpEret = 0x22,
  kOpHalt = 0x23,
};

// funct[10:0] values inside kOpR.
enum FunctR : u32 {
  kFAdd = 0, kFSub, kFAnd, kFOr, kFXor, kFNor, kFSlt, kFSltu, kFSll, kFSrl,
  kFSra, kFMul, kFMulh, kFDiv, kFDivu, kFRem, kFAddv, kFSubv, kFAmoAdd,
};

// funct[10:0] values inside kOpR64.
enum FunctR64 : u32 {
  kFAdd64 = 0, kFSub64, kFAnd64, kFOr64, kFXor64, kFSlt64, kFSll64, kFSrl64,
  kFSra64, kFAddv64,
};

struct REnc {
  Major major;
  u32 funct;
};

bool r_encoding(Op op, REnc& out) {
  switch (op) {
    case Op::kAdd: out = {kOpR, kFAdd}; return true;
    case Op::kSub: out = {kOpR, kFSub}; return true;
    case Op::kAnd: out = {kOpR, kFAnd}; return true;
    case Op::kOr: out = {kOpR, kFOr}; return true;
    case Op::kXor: out = {kOpR, kFXor}; return true;
    case Op::kNor: out = {kOpR, kFNor}; return true;
    case Op::kSlt: out = {kOpR, kFSlt}; return true;
    case Op::kSltu: out = {kOpR, kFSltu}; return true;
    case Op::kSll: out = {kOpR, kFSll}; return true;
    case Op::kSrl: out = {kOpR, kFSrl}; return true;
    case Op::kSra: out = {kOpR, kFSra}; return true;
    case Op::kMul: out = {kOpR, kFMul}; return true;
    case Op::kMulh: out = {kOpR, kFMulh}; return true;
    case Op::kDiv: out = {kOpR, kFDiv}; return true;
    case Op::kDivu: out = {kOpR, kFDivu}; return true;
    case Op::kRem: out = {kOpR, kFRem}; return true;
    case Op::kAddv: out = {kOpR, kFAddv}; return true;
    case Op::kSubv: out = {kOpR, kFSubv}; return true;
    case Op::kAmoAdd: out = {kOpR, kFAmoAdd}; return true;
    case Op::kAdd64: out = {kOpR64, kFAdd64}; return true;
    case Op::kSub64: out = {kOpR64, kFSub64}; return true;
    case Op::kAnd64: out = {kOpR64, kFAnd64}; return true;
    case Op::kOr64: out = {kOpR64, kFOr64}; return true;
    case Op::kXor64: out = {kOpR64, kFXor64}; return true;
    case Op::kSlt64: out = {kOpR64, kFSlt64}; return true;
    case Op::kSll64: out = {kOpR64, kFSll64}; return true;
    case Op::kSrl64: out = {kOpR64, kFSrl64}; return true;
    case Op::kSra64: out = {kOpR64, kFSra64}; return true;
    case Op::kAddv64: out = {kOpR64, kFAddv64}; return true;
    default:
      return false;
  }
}

Op r_op(u32 funct) {
  switch (funct) {
    case kFAdd: return Op::kAdd;
    case kFSub: return Op::kSub;
    case kFAnd: return Op::kAnd;
    case kFOr: return Op::kOr;
    case kFXor: return Op::kXor;
    case kFNor: return Op::kNor;
    case kFSlt: return Op::kSlt;
    case kFSltu: return Op::kSltu;
    case kFSll: return Op::kSll;
    case kFSrl: return Op::kSrl;
    case kFSra: return Op::kSra;
    case kFMul: return Op::kMul;
    case kFMulh: return Op::kMulh;
    case kFDiv: return Op::kDiv;
    case kFDivu: return Op::kDivu;
    case kFRem: return Op::kRem;
    case kFAddv: return Op::kAddv;
    case kFSubv: return Op::kSubv;
    case kFAmoAdd: return Op::kAmoAdd;
    default:
      return Op::kInvalid;
  }
}

Op r64_op(u32 funct) {
  switch (funct) {
    case kFAdd64: return Op::kAdd64;
    case kFSub64: return Op::kSub64;
    case kFAnd64: return Op::kAnd64;
    case kFOr64: return Op::kOr64;
    case kFXor64: return Op::kXor64;
    case kFSlt64: return Op::kSlt64;
    case kFSll64: return Op::kSll64;
    case kFSrl64: return Op::kSrl64;
    case kFSra64: return Op::kSra64;
    case kFAddv64: return Op::kAddv64;
    default:
      return Op::kInvalid;
  }
}

bool imm_major(Op op, Major& out) {
  switch (op) {
    case Op::kAddi: out = kOpAddi; return true;
    case Op::kAndi: out = kOpAndi; return true;
    case Op::kOri: out = kOpOri; return true;
    case Op::kXori: out = kOpXori; return true;
    case Op::kSlti: out = kOpSlti; return true;
    case Op::kSltiu: out = kOpSltiu; return true;
    case Op::kSlli: out = kOpSlli; return true;
    case Op::kSrli: out = kOpSrli; return true;
    case Op::kSrai: out = kOpSrai; return true;
    case Op::kLui: out = kOpLui; return true;
    case Op::kLw: out = kOpLw; return true;
    case Op::kLh: out = kOpLh; return true;
    case Op::kLhu: out = kOpLhu; return true;
    case Op::kLb: out = kOpLb; return true;
    case Op::kLbu: out = kOpLbu; return true;
    case Op::kJalr: out = kOpJalr; return true;
    default:
      return false;
  }
}

/// Immediates of logical ops (ANDI/ORI/XORI), LUI, shifts, SLTIU and CSR
/// numbers are zero-extended; everything else is sign-extended.
bool zero_extended_imm(Op op) {
  switch (op) {
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kSlli: case Op::kSrli: case Op::kSrai: case Op::kSltiu:
      return true;
    default:
      return false;
  }
}

u32 field_reg(u8 r) {
  assert(r < kNumRegs);
  return static_cast<u32>(r & 31u);
}

u32 field_imm16(Op op, i32 imm) {
  if (zero_extended_imm(op)) {
    assert(fits_unsigned(static_cast<u32>(imm), 16));
  } else {
    assert(fits_signed(imm, 16));
  }
  return static_cast<u32>(imm) & 0xffffu;
}

}  // namespace

u32 encode(const Instr& in) {
  REnc re;
  if (r_encoding(in.op, re)) {
    return (static_cast<u32>(re.major) << 26) | (field_reg(in.rd) << 21) |
           (field_reg(in.rs1) << 16) | (field_reg(in.rs2) << 11) |
           (re.funct & 0x7ffu);
  }
  Major m;
  if (imm_major(in.op, m)) {
    return (static_cast<u32>(m) << 26) | (field_reg(in.rd) << 21) |
           (field_reg(in.rs1) << 16) | field_imm16(in.op, in.imm);
  }
  switch (in.op) {
    case Op::kSw: case Op::kSh: case Op::kSb: {
      const Major sm = in.op == Op::kSw ? kOpSw : in.op == Op::kSh ? kOpSh : kOpSb;
      return (static_cast<u32>(sm) << 26) | (field_reg(in.rs2) << 21) |
             (field_reg(in.rs1) << 16) | field_imm16(in.op, in.imm);
    }
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu: {
      Major bm = kOpBeq;
      switch (in.op) {
        case Op::kBeq: bm = kOpBeq; break;
        case Op::kBne: bm = kOpBne; break;
        case Op::kBlt: bm = kOpBlt; break;
        case Op::kBge: bm = kOpBge; break;
        case Op::kBltu: bm = kOpBltu; break;
        default: bm = kOpBgeu; break;
      }
      return (static_cast<u32>(bm) << 26) | (field_reg(in.rs1) << 21) |
             (field_reg(in.rs2) << 16) | field_imm16(in.op, in.imm);
    }
    case Op::kJal:
      assert(fits_signed(in.imm, 21));
      return (static_cast<u32>(kOpJal) << 26) | (field_reg(in.rd) << 21) |
             (static_cast<u32>(in.imm) & 0x1fffffu);
    case Op::kCsrr:
      return (static_cast<u32>(kOpCsrr) << 26) | (field_reg(in.rd) << 21) |
             (static_cast<u32>(in.csr) & 0xffffu);
    case Op::kCsrw:
      return (static_cast<u32>(kOpCsrw) << 26) | (field_reg(in.rs1) << 16) |
             (static_cast<u32>(in.csr) & 0xffffu);
    case Op::kEret:
      return static_cast<u32>(kOpEret) << 26;
    case Op::kHalt:
      return static_cast<u32>(kOpHalt) << 26;
    default:
      assert(false && "unencodable instruction");
      return 0;
  }
}

Instr decode(u32 word) {
  Instr in;
  in.raw = word;
  const u32 major = bits(word, 31, 26);
  const u8 f_rd = static_cast<u8>(bits(word, 25, 21));
  const u8 f_rs1 = static_cast<u8>(bits(word, 20, 16));
  const u8 f_rs2 = static_cast<u8>(bits(word, 15, 11));
  const u32 imm16 = bits(word, 15, 0);

  switch (major) {
    case kOpR:
      in.op = r_op(bits(word, 10, 0));
      in.rd = f_rd;
      in.rs1 = f_rs1;
      in.rs2 = f_rs2;
      return in;
    case kOpR64:
      in.op = r64_op(bits(word, 10, 0));
      in.rd = f_rd;
      in.rs1 = f_rs1;
      in.rs2 = f_rs2;
      return in;
    case kOpAddi: in.op = Op::kAddi; break;
    case kOpAndi: in.op = Op::kAndi; break;
    case kOpOri: in.op = Op::kOri; break;
    case kOpXori: in.op = Op::kXori; break;
    case kOpSlti: in.op = Op::kSlti; break;
    case kOpSltiu: in.op = Op::kSltiu; break;
    case kOpSlli: in.op = Op::kSlli; break;
    case kOpSrli: in.op = Op::kSrli; break;
    case kOpSrai: in.op = Op::kSrai; break;
    case kOpLui: in.op = Op::kLui; break;
    case kOpLw: in.op = Op::kLw; break;
    case kOpLh: in.op = Op::kLh; break;
    case kOpLhu: in.op = Op::kLhu; break;
    case kOpLb: in.op = Op::kLb; break;
    case kOpLbu: in.op = Op::kLbu; break;
    case kOpJalr: in.op = Op::kJalr; break;
    case kOpSw: case kOpSh: case kOpSb:
      in.op = major == kOpSw ? Op::kSw : major == kOpSh ? Op::kSh : Op::kSb;
      in.rs2 = f_rd;  // data register occupies the rd field slot
      in.rs1 = f_rs1;
      in.imm = sext(imm16, 16);
      return in;
    case kOpBeq: case kOpBne: case kOpBlt: case kOpBge: case kOpBltu:
    case kOpBgeu:
      switch (major) {
        case kOpBeq: in.op = Op::kBeq; break;
        case kOpBne: in.op = Op::kBne; break;
        case kOpBlt: in.op = Op::kBlt; break;
        case kOpBge: in.op = Op::kBge; break;
        case kOpBltu: in.op = Op::kBltu; break;
        default: in.op = Op::kBgeu; break;
      }
      in.rs1 = f_rd;  // rs1 occupies the rd field slot
      in.rs2 = f_rs1;
      in.imm = sext(imm16, 16);
      return in;
    case kOpJal:
      in.op = Op::kJal;
      in.rd = f_rd;
      in.imm = sext(bits(word, 20, 0), 21);
      return in;
    case kOpCsrr:
      in.op = Op::kCsrr;
      in.rd = f_rd;
      in.csr = static_cast<u16>(imm16);
      return in;
    case kOpCsrw:
      in.op = Op::kCsrw;
      in.rs1 = f_rs1;
      in.csr = static_cast<u16>(imm16);
      return in;
    case kOpEret:
      in.op = Op::kEret;
      return in;
    case kOpHalt:
      in.op = Op::kHalt;
      return in;
    default:
      in.op = Op::kInvalid;
      return in;
  }

  // Common I-type tail.
  in.rd = f_rd;
  in.rs1 = f_rs1;
  in.imm = zero_extended_imm(in.op) ? static_cast<i32>(imm16) : sext(imm16, 16);
  return in;
}

}  // namespace detstl::isa
