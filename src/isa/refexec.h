#pragma once
// Functional (untimed) reference executor. Serves as the architectural oracle
// for differential testing of the pipeline model: same ISA semantics, no
// timing, precise (immediate) interrupt recognition. Differential tests run
// with interrupts disabled so the imprecise/precise distinction does not
// matter; dedicated pipeline tests cover the ICU.

#include <array>
#include <cstdint>
#include <unordered_map>

#include "isa/alu.h"
#include "isa/events.h"
#include "isa/program.h"

namespace detstl::isa {

/// Byte-addressable memory interface used by the reference executor.
class MemView {
 public:
  virtual ~MemView() = default;
  virtual u8 load8(u32 addr) = 0;
  virtual void store8(u32 addr, u8 v) = 0;

  u32 load(u32 addr, unsigned size);
  void store(u32 addr, u32 v, unsigned size);
};

/// Sparse flat memory for standalone use (tests, oracle runs).
class FlatMemory : public MemView {
 public:
  u8 load8(u32 addr) override {
    auto it = bytes_.find(addr);
    return it == bytes_.end() ? 0 : it->second;
  }
  void store8(u32 addr, u8 v) override { bytes_[addr] = v; }

  void load_program(const Program& prog);

 private:
  std::unordered_map<u32, u8> bytes_;
};

class RefExec {
 public:
  RefExec(CoreKind kind, MemView& mem) : kind_(kind), mem_(&mem) { reset(0); }

  void reset(u32 entry);

  /// Execute one instruction. Returns false once halted.
  bool step();

  /// Run up to `max_steps` instructions; returns the number executed.
  u64 run(u64 max_steps);

  bool halted() const { return halted_; }
  u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }

  u32 reg(unsigned idx) const { return regs_[idx]; }
  void set_reg(unsigned idx, u32 v) {
    if (idx != 0) regs_[idx] = v;
  }
  u64 reg_pair(unsigned even_idx) const {
    return (static_cast<u64>(regs_[even_idx + 1]) << 32) | regs_[even_idx];
  }

  u32 csr(Csr c) const;
  void set_csr(Csr c, u32 v);

  u64 instret() const { return instret_; }
  /// Count of raised events per source (diagnostics).
  u64 event_count(IcuSource s) const { return event_counts_[static_cast<unsigned>(s)]; }

  CoreKind kind() const { return kind_; }

 private:
  void write_rd(const Instr& in, u32 v);
  void write_rd_pair(const Instr& in, u64 v);
  void raise(IcuSource src, u32 faulting_pc);

  CoreKind kind_;
  MemView* mem_;
  std::array<u32, kNumRegs> regs_{};
  u32 pc_ = 0;
  bool halted_ = false;
  u64 instret_ = 0;

  // Trap state
  u32 mstatus_ = 0;
  u32 mtvec_ = 0;
  u32 mepc_ = 0;
  u32 mcause_ = 0;
  u32 mip_ = 0;
  u32 mie_ = 0;
  u32 mfpc_ = 0;
  std::array<u64, kNumIcuSources> event_counts_{};
};

}  // namespace detstl::isa
