#pragma once
// In-memory assembler with a builder-style API. The STL routine generators in
// src/core emit code through this interface; labels are resolved at
// assemble() time. All pseudo-instructions expand to a *fixed* number of
// machine instructions so that routine sizes are predictable (required for
// the cache-fitting rule of the paper's methodology, Sec. III step 2.2).

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/program.h"

namespace detstl::isa {

/// Error thrown for undefined/duplicate labels and out-of-range operands.
class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Assembler {
 public:
  explicit Assembler(u32 origin = 0) : pc_(origin) {}

  // --- location control -----------------------------------------------------
  void org(u32 addr) { pc_ = addr; }
  u32 here() const { return pc_; }
  /// Pad with NOPs to an `alignment`-byte boundary (code).
  void align(u32 alignment);
  /// Pad with zero bytes to an `alignment`-byte boundary (data).
  void align_data(u32 alignment);

  void label(const std::string& name);
  void set_entry(const std::string& name) { entry_label_ = name; }

  // --- data ------------------------------------------------------------------
  void word(u32 value);
  void word_label(const std::string& name);  // 32-bit absolute address of label
  void space(u32 nbytes);

  // --- R-type ALU -------------------------------------------------------------
  void add(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kAdd, rd, rs1, rs2); }
  void sub(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSub, rd, rs1, rs2); }
  void and_(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kAnd, rd, rs1, rs2); }
  void or_(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kOr, rd, rs1, rs2); }
  void xor_(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kXor, rd, rs1, rs2); }
  void nor_(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kNor, rd, rs1, rs2); }
  void slt(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSlt, rd, rs1, rs2); }
  void sltu(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSltu, rd, rs1, rs2); }
  void sll(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSll, rd, rs1, rs2); }
  void srl(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSrl, rd, rs1, rs2); }
  void sra(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSra, rd, rs1, rs2); }
  void mul(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kMul, rd, rs1, rs2); }
  void mulh(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kMulh, rd, rs1, rs2); }
  void div(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kDiv, rd, rs1, rs2); }
  void divu(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kDivu, rd, rs1, rs2); }
  void rem(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kRem, rd, rs1, rs2); }
  void addv(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kAddv, rd, rs1, rs2); }
  void subv(Reg rd, Reg rs1, Reg rs2) { emit_r(Op::kSubv, rd, rs1, rs2); }
  void amoadd(Reg rd, Reg rs1_addr, Reg rs2) { emit_r(Op::kAmoAdd, rd, rs1_addr, rs2); }

  // --- R64 group (core C) ------------------------------------------------------
  void add64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kAdd64, rd, rs1, rs2); }
  void sub64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kSub64, rd, rs1, rs2); }
  void and64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kAnd64, rd, rs1, rs2); }
  void or64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kOr64, rd, rs1, rs2); }
  void xor64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kXor64, rd, rs1, rs2); }
  void slt64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kSlt64, rd, rs1, rs2); }
  void sll64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kSll64, rd, rs1, rs2); }
  void srl64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kSrl64, rd, rs1, rs2); }
  void sra64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kSra64, rd, rs1, rs2); }
  void addv64(Reg rd, Reg rs1, Reg rs2) { emit_r64(Op::kAddv64, rd, rs1, rs2); }

  // --- I-type ALU ---------------------------------------------------------------
  void addi(Reg rd, Reg rs1, i32 imm) { emit_i(Op::kAddi, rd, rs1, imm); }
  void andi(Reg rd, Reg rs1, u32 imm) { emit_i(Op::kAndi, rd, rs1, static_cast<i32>(imm)); }
  void ori(Reg rd, Reg rs1, u32 imm) { emit_i(Op::kOri, rd, rs1, static_cast<i32>(imm)); }
  void xori(Reg rd, Reg rs1, u32 imm) { emit_i(Op::kXori, rd, rs1, static_cast<i32>(imm)); }
  void slti(Reg rd, Reg rs1, i32 imm) { emit_i(Op::kSlti, rd, rs1, imm); }
  void sltiu(Reg rd, Reg rs1, u32 imm) { emit_i(Op::kSltiu, rd, rs1, static_cast<i32>(imm)); }
  void slli(Reg rd, Reg rs1, u32 sh) { emit_i(Op::kSlli, rd, rs1, static_cast<i32>(sh)); }
  void srli(Reg rd, Reg rs1, u32 sh) { emit_i(Op::kSrli, rd, rs1, static_cast<i32>(sh)); }
  void srai(Reg rd, Reg rs1, u32 sh) { emit_i(Op::kSrai, rd, rs1, static_cast<i32>(sh)); }
  void lui(Reg rd, u32 imm16) { emit_i(Op::kLui, rd, R0, static_cast<i32>(imm16)); }
  void nop() { addi(R0, R0, 0); }

  // --- memory ----------------------------------------------------------------
  void lw(Reg rd, Reg base, i32 off) { emit_i(Op::kLw, rd, base, off); }
  void lh(Reg rd, Reg base, i32 off) { emit_i(Op::kLh, rd, base, off); }
  void lhu(Reg rd, Reg base, i32 off) { emit_i(Op::kLhu, rd, base, off); }
  void lb(Reg rd, Reg base, i32 off) { emit_i(Op::kLb, rd, base, off); }
  void lbu(Reg rd, Reg base, i32 off) { emit_i(Op::kLbu, rd, base, off); }
  void sw(Reg data, Reg base, i32 off) { emit_s(Op::kSw, data, base, off); }
  void sh(Reg data, Reg base, i32 off) { emit_s(Op::kSh, data, base, off); }
  void sb(Reg data, Reg base, i32 off) { emit_s(Op::kSb, data, base, off); }

  // --- control flow -------------------------------------------------------------
  void beq(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBeq, rs1, rs2, target); }
  void bne(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBne, rs1, rs2, target); }
  void blt(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBlt, rs1, rs2, target); }
  void bge(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBge, rs1, rs2, target); }
  void bltu(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBltu, rs1, rs2, target); }
  void bgeu(Reg rs1, Reg rs2, const std::string& target) { emit_b(Op::kBgeu, rs1, rs2, target); }
  void jal(Reg rd, const std::string& target);
  void jal(const std::string& target) { jal(R31, target); }
  void jalr(Reg rd, Reg rs1, i32 off = 0) { emit_i(Op::kJalr, rd, rs1, off); }
  void ret() { jalr(R0, R31, 0); }

  // --- system ----------------------------------------------------------------
  void csrr(Reg rd, Csr csr);
  void csrw(Csr csr, Reg rs1);
  void eret() { emit(Instr{.op = Op::kEret}); }
  void halt() { emit(Instr{.op = Op::kHalt}); }

  // --- pseudo-instructions (fixed expansion size) --------------------------------
  /// Load a full 32-bit constant: LUI + ORI (always 2 instructions).
  void li(Reg rd, u32 value);
  /// Load the absolute address of a label: LUI + ORI (always 2 instructions).
  void la(Reg rd, const std::string& name);

  /// Resolve labels and produce the final image.
  Program assemble();

 private:
  enum class FixKind { kBranch16, kJal21, kAbsHi, kAbsLo, kWord32 };
  struct Fixup {
    u32 addr;
    FixKind kind;
    std::string label;
  };

  void emit(const Instr& in);
  void emit_r(Op op, Reg rd, Reg rs1, Reg rs2);
  void emit_r64(Op op, Reg rd, Reg rs1, Reg rs2);
  void emit_i(Op op, Reg rd, Reg rs1, i32 imm);
  void emit_s(Op op, Reg data, Reg base, i32 off);
  void emit_b(Op op, Reg rs1, Reg rs2, const std::string& target);
  void put_word(u32 addr, u32 w);
  void put_byte(u32 addr, u8 b);
  u32 get_word(u32 addr) const;

  u32 pc_;
  std::map<u32, u8> bytes_;
  std::map<std::string, u32> labels_;
  std::vector<Fixup> fixups_;
  std::string entry_label_;
};

}  // namespace detstl::isa
