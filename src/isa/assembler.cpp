#include "isa/assembler.h"

#include <algorithm>

namespace detstl::isa {

void Assembler::align(u32 alignment) {
  if (!is_pow2(alignment)) throw AsmError("alignment must be a power of two");
  while (pc_ % alignment != 0) nop();
}

void Assembler::align_data(u32 alignment) {
  if (!is_pow2(alignment)) throw AsmError("alignment must be a power of two");
  while (pc_ % alignment != 0) put_byte(pc_++, 0);
}

void Assembler::label(const std::string& name) {
  if (labels_.count(name)) throw AsmError("duplicate label: " + name);
  labels_[name] = pc_;
}

void Assembler::word(u32 value) {
  put_word(pc_, value);
  pc_ += 4;
}

void Assembler::word_label(const std::string& name) {
  fixups_.push_back({pc_, FixKind::kWord32, name});
  word(0);
}

void Assembler::space(u32 nbytes) {
  for (u32 i = 0; i < nbytes; ++i) put_byte(pc_ + i, 0);
  pc_ += nbytes;
}

void Assembler::jal(Reg rd, const std::string& target) {
  fixups_.push_back({pc_, FixKind::kJal21, target});
  emit(Instr{.op = Op::kJal, .rd = rd, .imm = 0});
}

void Assembler::csrr(Reg rd, Csr csr) {
  emit(Instr{.op = Op::kCsrr, .rd = rd, .csr = static_cast<u16>(csr)});
}

void Assembler::csrw(Csr csr, Reg rs1) {
  emit(Instr{.op = Op::kCsrw, .rs1 = rs1, .csr = static_cast<u16>(csr)});
}

void Assembler::li(Reg rd, u32 value) {
  lui(rd, value >> 16);
  ori(rd, rd, value & 0xffffu);
}

void Assembler::la(Reg rd, const std::string& name) {
  fixups_.push_back({pc_, FixKind::kAbsHi, name});
  lui(rd, 0);
  fixups_.push_back({pc_, FixKind::kAbsLo, name});
  ori(rd, rd, 0);
}

void Assembler::emit(const Instr& in) {
  put_word(pc_, encode(in));
  pc_ += 4;
}

void Assembler::emit_r(Op op, Reg rd, Reg rs1, Reg rs2) {
  emit(Instr{.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void Assembler::emit_r64(Op op, Reg rd, Reg rs1, Reg rs2) {
  if ((rd | rs1 | rs2) & 1)
    throw AsmError("R64 instructions require even register pairs");
  emit(Instr{.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void Assembler::emit_i(Op op, Reg rd, Reg rs1, i32 imm) {
  switch (op) {
    case Op::kSlli: case Op::kSrli: case Op::kSrai:
      if (imm < 0 || imm > 31) throw AsmError("shift amount out of range");
      break;
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kSltiu:
      if (!fits_unsigned(static_cast<u32>(imm), 16))
        throw AsmError("unsigned immediate out of range");
      break;
    default:
      if (!fits_signed(imm, 16)) throw AsmError("signed immediate out of range");
      break;
  }
  emit(Instr{.op = op, .rd = rd, .rs1 = rs1, .imm = imm});
}

void Assembler::emit_s(Op op, Reg data, Reg base, i32 off) {
  if (!fits_signed(off, 16)) throw AsmError("store offset out of range");
  emit(Instr{.op = op, .rs1 = base, .rs2 = data, .imm = off});
}

void Assembler::emit_b(Op op, Reg rs1, Reg rs2, const std::string& target) {
  fixups_.push_back({pc_, FixKind::kBranch16, target});
  emit(Instr{.op = op, .rs1 = rs1, .rs2 = rs2, .imm = 0});
}

void Assembler::put_word(u32 addr, u32 w) {
  for (unsigned i = 0; i < 4; ++i) put_byte(addr + i, static_cast<u8>(w >> (8 * i)));
}

void Assembler::put_byte(u32 addr, u8 b) {
  auto [it, inserted] = bytes_.insert({addr, b});
  if (!inserted) throw AsmError("overlapping emission at address " + std::to_string(addr));
}

u32 Assembler::get_word(u32 addr) const {
  u32 w = 0;
  for (unsigned i = 0; i < 4; ++i) {
    auto it = bytes_.find(addr + i);
    if (it == bytes_.end()) throw AsmError("fixup reads unwritten byte");
    w |= static_cast<u32>(it->second) << (8 * i);
  }
  return w;
}

Program Assembler::assemble() {
  for (const auto& fix : fixups_) {
    auto it = labels_.find(fix.label);
    if (it == labels_.end()) throw AsmError("undefined label: " + fix.label);
    const u32 target = it->second;
    u32 w = get_word(fix.addr);
    switch (fix.kind) {
      case FixKind::kBranch16: {
        const i64 off = static_cast<i64>(target) - static_cast<i64>(fix.addr);
        if (!fits_signed(off, 16)) throw AsmError("branch target out of range: " + fix.label);
        w = (w & ~0xffffu) | (static_cast<u32>(off) & 0xffffu);
        break;
      }
      case FixKind::kJal21: {
        const i64 off = static_cast<i64>(target) - static_cast<i64>(fix.addr);
        if (!fits_signed(off, 21)) throw AsmError("jal target out of range: " + fix.label);
        w = (w & ~0x1fffffu) | (static_cast<u32>(off) & 0x1fffffu);
        break;
      }
      case FixKind::kAbsHi:
        w = (w & ~0xffffu) | (target >> 16);
        break;
      case FixKind::kAbsLo:
        w = (w & ~0xffffu) | (target & 0xffffu);
        break;
      case FixKind::kWord32:
        w = target;
        break;
    }
    // Re-write all four bytes of the patched word.
    for (unsigned i = 0; i < 4; ++i) bytes_[fix.addr + i] = static_cast<u8>(w >> (8 * i));
  }

  // Coalesce the byte map into contiguous segments.
  std::vector<Segment> segments;
  for (const auto& [addr, byte] : bytes_) {
    if (!segments.empty() && segments.back().end() == addr) {
      segments.back().bytes.push_back(byte);
    } else {
      segments.push_back(Segment{addr, {byte}});
    }
  }

  u32 entry = segments.empty() ? 0 : segments.front().base;
  if (!entry_label_.empty()) {
    auto it = labels_.find(entry_label_);
    if (it == labels_.end()) throw AsmError("undefined entry label: " + entry_label_);
    entry = it->second;
  }
  return Program(std::move(segments), labels_, entry);
}

}  // namespace detstl::isa
