#include "perf/metrics.h"

#include <algorithm>
#include <cassert>

#include "common/table.h"

namespace detstl::perf {

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const char* metric_source_name(MetricSource s) {
  switch (s) {
    case MetricSource::kSim: return "sim";
    case MetricSource::kHost: return "host";
  }
  return "?";
}

void HistogramData::record(u64 value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  counts[static_cast<std::size_t>(it - bounds.begin())] += 1;
  ++total;
  sum += value;
}

namespace {

Metric& upsert(std::map<std::pair<std::string, std::string>, Metric>& series,
               const std::string& name, const std::string& labels,
               MetricKind kind, MetricSource source) {
  Metric& m = series[{name, labels}];
  // First writer fixes kind and source; a series cannot change type later.
  if (m.counter == 0 && m.gauge == 0.0 && m.hist.total == 0 &&
      m.hist.bounds.empty()) {
    m.kind = kind;
    m.source = source;
  }
  assert(m.kind == kind && "metric series re-registered with another kind");
  return m;
}

}  // namespace

void Registry::add_counter(const std::string& name, const std::string& labels,
                           u64 delta, MetricSource source) {
  upsert(series_, name, labels, MetricKind::kCounter, source).counter += delta;
}

void Registry::set_counter(const std::string& name, const std::string& labels,
                           u64 value, MetricSource source) {
  upsert(series_, name, labels, MetricKind::kCounter, source).counter = value;
}

void Registry::set_gauge(const std::string& name, const std::string& labels,
                         double value, MetricSource source) {
  upsert(series_, name, labels, MetricKind::kGauge, source).gauge = value;
}

void Registry::record_hist(const std::string& name, const std::string& labels,
                           const std::vector<u64>& bounds, u64 value,
                           MetricSource source) {
  Metric& m = upsert(series_, name, labels, MetricKind::kHistogram, source);
  if (m.hist.bounds.empty()) {
    m.hist.bounds = bounds;
    m.hist.counts.assign(bounds.size() + 1, 0);
  }
  assert(m.hist.bounds == bounds && "histogram bucket layout changed");
  m.hist.record(value);
}

void Registry::set_histogram(const std::string& name, const std::string& labels,
                             HistogramData hist, MetricSource source) {
  Metric& m = upsert(series_, name, labels, MetricKind::kHistogram, source);
  m.hist = std::move(hist);
}

void Registry::visit(const std::function<void(const std::string&,
                                              const std::string&,
                                              const Metric&)>& fn) const {
  for (const auto& [key, m] : series_) fn(key.first, key.second, m);
}

const Metric* Registry::find(const std::string& name,
                             const std::string& labels) const {
  const auto it = series_.find({name, labels});
  return it == series_.end() ? nullptr : &it->second;
}

u64 Registry::sim_fingerprint() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a 64
  const auto mix_bytes = [&h](const void* p, std::size_t n) {
    const u8* b = static_cast<const u8*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  };
  const auto mix_u64 = [&mix_bytes](u64 v) {
    u8 le[8];
    for (int i = 0; i < 8; ++i) le[i] = static_cast<u8>(v >> (8 * i));
    mix_bytes(le, 8);
  };
  for (const auto& [key, m] : series_) {
    if (m.source != MetricSource::kSim) continue;
    mix_bytes(key.first.data(), key.first.size());
    mix_bytes(key.second.data(), key.second.size());
    mix_u64(static_cast<u64>(m.kind));
    switch (m.kind) {
      case MetricKind::kCounter:
        mix_u64(m.counter);
        break;
      case MetricKind::kGauge:
        // Gauges are host-side by convention; a sim gauge hashes its bits.
        static_assert(sizeof(double) == 8);
        u64 bits;
        __builtin_memcpy(&bits, &m.gauge, 8);
        mix_u64(bits);
        break;
      case MetricKind::kHistogram:
        for (const u64 b : m.hist.bounds) mix_u64(b);
        for (const u64 c : m.hist.counts) mix_u64(c);
        mix_u64(m.hist.total);
        mix_u64(m.hist.sum);
        break;
    }
  }
  return h;
}

std::string Registry::render(const std::string& title) const {
  TextTable t(title);
  t.header({"metric", "labels", "src", "value"});
  for (const auto& [key, m] : series_) {
    std::string value;
    switch (m.kind) {
      case MetricKind::kCounter:
        value = TextTable::fmt_int(static_cast<long long>(m.counter));
        break;
      case MetricKind::kGauge:
        value = TextTable::fmt_fixed(m.gauge, 3);
        break;
      case MetricKind::kHistogram:
        value = TextTable::fmt_int(static_cast<long long>(m.hist.total)) +
                " samples, sum " +
                TextTable::fmt_int(static_cast<long long>(m.hist.sum));
        break;
    }
    t.row({key.first, key.second, metric_source_name(m.source), value});
  }
  return t.str();
}

}  // namespace detstl::perf
