#include "perf/perf_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.h"
#include "common/version.h"
#include "perf/json.h"

namespace detstl::perf {

namespace {

std::string hex64(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_fixed6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void emit_metric(std::string& out, const std::string& indent,
                 const std::string& name, const std::string& labels,
                 const Metric& m) {
  out += indent + "{\"name\": \"" + json::escape(name) + "\", \"labels\": \"" +
         json::escape(labels) + "\", \"kind\": \"" + metric_kind_name(m.kind) +
         "\", ";
  switch (m.kind) {
    case MetricKind::kCounter:
      out += "\"value\": " + std::to_string(m.counter);
      break;
    case MetricKind::kGauge:
      out += "\"value\": " + fmt_double(m.gauge);
      break;
    case MetricKind::kHistogram: {
      out += "\"bounds\": [";
      for (std::size_t i = 0; i < m.hist.bounds.size(); ++i)
        out += (i ? ", " : "") + std::to_string(m.hist.bounds[i]);
      out += "], \"counts\": [";
      for (std::size_t i = 0; i < m.hist.counts.size(); ++i)
        out += (i ? ", " : "") + std::to_string(m.hist.counts[i]);
      out += "], \"total\": " + std::to_string(m.hist.total) +
             ", \"sum\": " + std::to_string(m.hist.sum);
      break;
    }
  }
  out += "}";
}

void emit_metric_list(std::string& out, const Registry& metrics,
                      MetricSource which, const std::string& indent) {
  bool first = true;
  metrics.visit([&](const std::string& name, const std::string& labels,
                    const Metric& m) {
    if (m.source != which) return;
    out += first ? "\n" : ",\n";
    first = false;
    emit_metric(out, indent, name, labels, m);
  });
  if (!first) out += "\n" + indent.substr(2);
}

}  // namespace

std::string sim_canonical(const PerfReport& rep) {
  std::string out;
  out += "{\n";
  out += "    \"cycles\": " + std::to_string(rep.sim_cycles) + ",\n";
  out += "    \"units\": " + std::to_string(rep.sim_units) + ",\n";
  out += "    \"fingerprint\": \"" + hex64(rep.metrics.sim_fingerprint()) + "\",\n";
  out += "    \"phases\": [";
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    const PhaseStats& p = rep.phases[i];
    out += (i ? ",\n" : "\n");
    out += "      {\"name\": \"" + json::escape(p.name) +
           "\", \"cycles\": " + std::to_string(p.sim_cycles) +
           ", \"units\": " + std::to_string(p.units) + "}";
  }
  out += rep.phases.empty() ? "],\n" : "\n    ],\n";
  out += "    \"metrics\": [";
  emit_metric_list(out, rep.metrics, MetricSource::kSim, "      ");
  out += "]\n";
  out += "  }";
  return out;
}

std::string to_json(const PerfReport& rep) {
  std::string out;
  out += "{\n";
  out += "  \"stlperf_schema\": " + std::to_string(rep.schema) + ",\n";
  out += "  \"name\": \"" + json::escape(rep.name) + "\",\n";
  out += "  \"detstl_version\": \"" +
         json::escape(rep.detstl_version.empty() ? kDetstlVersion
                                                 : rep.detstl_version) +
         "\",\n";
  out += "  \"config_hash\": \"" + hex64(rep.config_hash) + "\",\n";
  out += "  \"sim\": " + sim_canonical(rep) + ",\n";
  out += "  \"host\": {\n";
  out += "    \"wall_s\": " + fmt_fixed6(rep.wall_s) + ",\n";
  out += "    \"cpu_s\": " + fmt_fixed6(rep.cpu_s) + ",\n";
  out += "    \"peak_rss_kb\": " + std::to_string(rep.peak_rss_kb) + ",\n";
  out += "    \"sim_mhz\": " + fmt_fixed6(rep.sim_mhz()) + ",\n";
  out += "    \"phases\": [";
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    out += (i ? ",\n" : "\n");
    out += "      {\"name\": \"" + json::escape(rep.phases[i].name) +
           "\", \"wall_s\": " + fmt_fixed6(rep.phases[i].wall_s) + "}";
  }
  out += rep.phases.empty() ? "],\n" : "\n    ],\n";
  out += "    \"metrics\": [";
  emit_metric_list(out, rep.metrics, MetricSource::kHost, "      ");
  out += "],\n";
  out += "    \"profiled\": " + std::string(rep.profiled ? "true" : "false") +
         ",\n";
  out += "    \"profile\": [";
  if (rep.profiled) {
    bool first = true;
    for (unsigned i = 0; i < kNumProfScopes; ++i) {
      const ScopeTotals& s = rep.profile.scopes[i];
      if (s.calls == 0) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"scope\": \"";
      out += prof_scope_name(static_cast<ProfScope>(i));
      out += "\", \"calls\": " + std::to_string(s.calls) +
             ", \"ns\": " + std::to_string(s.ns) + "}";
    }
    if (!first) out += "\n    ";
  }
  out += "]\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

namespace {

bool parse_metric_list(const json::Value& list, MetricSource source,
                       Registry& reg, std::string* err) {
  const auto fail = [err](const std::string& why) {
    if (err != nullptr && err->empty()) *err = why;
    return false;
  };
  if (!list.is_array()) return fail("metrics is not an array");
  for (const json::Value& e : list.arr) {
    const json::Value* name = e.find("name");
    const json::Value* labels = e.find("labels");
    const json::Value* kind = e.find("kind");
    if (name == nullptr || labels == nullptr || kind == nullptr ||
        !name->is_string() || !labels->is_string() || !kind->is_string())
      return fail("metric entry missing name/labels/kind");
    if (kind->str == "counter") {
      const json::Value* v = e.find("value");
      if (v == nullptr || !v->is_number()) return fail("counter without value");
      reg.set_counter(name->str, labels->str, v->as_u64(), source);
    } else if (kind->str == "gauge") {
      const json::Value* v = e.find("value");
      if (v == nullptr || !v->is_number()) return fail("gauge without value");
      reg.set_gauge(name->str, labels->str, v->as_double(), source);
    } else if (kind->str == "histogram") {
      const json::Value* bounds = e.find("bounds");
      const json::Value* counts = e.find("counts");
      if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
          !counts->is_array() || counts->arr.size() != bounds->arr.size() + 1)
        return fail("histogram with inconsistent bounds/counts");
      const json::Value* total = e.find("total");
      const json::Value* sum = e.find("sum");
      if (total == nullptr || sum == nullptr)
        return fail("histogram without totals");
      HistogramData h;
      for (const json::Value& b : bounds->arr) h.bounds.push_back(b.as_u64());
      u64 count_sum = 0;
      for (const json::Value& c : counts->arr) {
        h.counts.push_back(c.as_u64());
        count_sum += h.counts.back();
      }
      h.total = total->as_u64();
      h.sum = sum->as_u64();
      if (count_sum != h.total) return fail("histogram counts/total mismatch");
      reg.set_histogram(name->str, labels->str, std::move(h), source);
    } else {
      return fail("unknown metric kind '" + kind->str + "'");
    }
  }
  return true;
}

}  // namespace

bool from_json(const std::string& text, PerfReport& out, std::string* err) {
  const auto fail = [err](const std::string& why) {
    if (err != nullptr && err->empty()) *err = why;
    return false;
  };
  json::Value root;
  if (!json::parse(text, root, err)) return false;
  if (!root.is_object()) return fail("document is not an object");

  const json::Value* schema = root.find("stlperf_schema");
  if (schema == nullptr || !schema->is_number())
    return fail("missing stlperf_schema");
  if (schema->as_u64() != kPerfSchemaVersion)
    return fail("unsupported stlperf_schema " + schema->raw + " (expected " +
                std::to_string(kPerfSchemaVersion) + ")");

  PerfReport rep;
  rep.schema = static_cast<u32>(schema->as_u64());
  const json::Value* name = root.find("name");
  if (name == nullptr || !name->is_string()) return fail("missing name");
  rep.name = name->str;
  if (const json::Value* v = root.find("detstl_version"); v != nullptr)
    rep.detstl_version = v->str;
  if (const json::Value* v = root.find("config_hash");
      v != nullptr && v->is_string())
    rep.config_hash = std::strtoull(v->str.c_str(), nullptr, 16);

  const json::Value* sim = root.find("sim");
  const json::Value* host = root.find("host");
  if (sim == nullptr || !sim->is_object()) return fail("missing sim object");
  if (host == nullptr || !host->is_object()) return fail("missing host object");

  if (const json::Value* v = sim->find("cycles"); v != nullptr)
    rep.sim_cycles = v->as_u64();
  else
    return fail("missing sim.cycles");
  if (const json::Value* v = sim->find("units"); v != nullptr)
    rep.sim_units = v->as_u64();
  if (const json::Value* v = sim->find("phases"); v != nullptr && v->is_array()) {
    for (const json::Value& p : v->arr) {
      PhaseStats ps;
      if (const json::Value* n = p.find("name"); n != nullptr) ps.name = n->str;
      if (const json::Value* c = p.find("cycles"); c != nullptr)
        ps.sim_cycles = c->as_u64();
      if (const json::Value* u = p.find("units"); u != nullptr)
        ps.units = u->as_u64();
      rep.phases.push_back(std::move(ps));
    }
  }
  if (const json::Value* v = sim->find("metrics"); v != nullptr) {
    if (!parse_metric_list(*v, MetricSource::kSim, rep.metrics, err)) return false;
  }

  if (const json::Value* v = host->find("wall_s"); v != nullptr)
    rep.wall_s = v->as_double();
  if (const json::Value* v = host->find("cpu_s"); v != nullptr)
    rep.cpu_s = v->as_double();
  if (const json::Value* v = host->find("peak_rss_kb"); v != nullptr)
    rep.peak_rss_kb = static_cast<long>(v->as_u64());
  if (const json::Value* v = host->find("phases"); v != nullptr && v->is_array()) {
    for (std::size_t i = 0; i < v->arr.size() && i < rep.phases.size(); ++i)
      if (const json::Value* w = v->arr[i].find("wall_s"); w != nullptr)
        rep.phases[i].wall_s = w->as_double();
  }
  if (const json::Value* v = host->find("metrics"); v != nullptr) {
    if (!parse_metric_list(*v, MetricSource::kHost, rep.metrics, err))
      return false;
  }
  if (const json::Value* v = host->find("profiled"); v != nullptr)
    rep.profiled = v->boolean;
  if (const json::Value* v = host->find("profile"); v != nullptr && v->is_array()) {
    for (const json::Value& e : v->arr) {
      const json::Value* scope = e.find("scope");
      if (scope == nullptr) continue;
      for (unsigned i = 0; i < kNumProfScopes; ++i) {
        if (scope->str != prof_scope_name(static_cast<ProfScope>(i))) continue;
        if (const json::Value* c = e.find("calls"); c != nullptr)
          rep.profile.scopes[i].calls = c->as_u64();
        if (const json::Value* n = e.find("ns"); n != nullptr)
          rep.profile.scopes[i].ns = n->as_u64();
      }
    }
  }
  out = std::move(rep);
  return true;
}

bool write_report_file(const std::string& path, const PerfReport& rep) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_json(rep);
  return static_cast<bool>(f.flush());
}

bool load_report_file(const std::string& path, PerfReport& out, std::string* err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return from_json(ss.str(), out, err);
}

std::string render_report(const PerfReport& rep) {
  TextTable t("stlperf report: " + rep.name);
  t.header({"field", "value"});
  t.row({"schema", std::to_string(rep.schema)});
  t.row({"producer", "detstl " + rep.detstl_version});
  t.row({"config hash", hex64(rep.config_hash)});
  t.row({"sim cycles", TextTable::fmt_int(static_cast<long long>(rep.sim_cycles))});
  t.row({"sim units", TextTable::fmt_int(static_cast<long long>(rep.sim_units))});
  t.row({"sim fingerprint", hex64(rep.metrics.sim_fingerprint())});
  t.row({"wall-clock [s]", TextTable::fmt_fixed(rep.wall_s, 3)});
  t.row({"CPU time [s]", TextTable::fmt_fixed(rep.cpu_s, 3)});
  t.row({"peak RSS [KiB]", TextTable::fmt_int(rep.peak_rss_kb)});
  t.row({"sim-MHz", TextTable::fmt_fixed(rep.sim_mhz(), 3)});
  std::string out = t.str();

  if (!rep.phases.empty()) {
    TextTable pt("phases");
    pt.header({"phase", "sim cycles", "units", "wall [s]", "sim-MHz"});
    for (const PhaseStats& p : rep.phases) {
      pt.row({p.name, TextTable::fmt_int(static_cast<long long>(p.sim_cycles)),
              TextTable::fmt_int(static_cast<long long>(p.units)),
              TextTable::fmt_fixed(p.wall_s, 3),
              TextTable::fmt_fixed(
                  p.wall_s > 0
                      ? static_cast<double>(p.sim_cycles) / p.wall_s / 1e6
                      : 0.0,
                  3)});
    }
    out += pt.str();
  }
  if (!rep.metrics.empty()) out += rep.metrics.render();
  if (rep.profiled) out += rep.profile.render(rep.wall_s);
  return out;
}

CompareOutcome compare_reports(const PerfReport& baseline,
                               const PerfReport& current) {
  CompareOutcome c;
  c.baseline_mhz = baseline.sim_mhz();
  c.current_mhz = current.sim_mhz();
  if (baseline.schema != current.schema) {
    c.notes.push_back("schema mismatch: baseline " +
                      std::to_string(baseline.schema) + " vs current " +
                      std::to_string(current.schema));
    return c;
  }
  if (baseline.name != current.name) {
    c.notes.push_back("bench name mismatch: '" + baseline.name + "' vs '" +
                      current.name + "'");
    return c;
  }
  c.comparable = true;
  if (baseline.config_hash != current.config_hash) {
    c.config_changed = true;
    c.notes.push_back(
        "config hash changed (" + hex64(baseline.config_hash) + " -> " +
        hex64(current.config_hash) +
        "): workloads differ, sim-MHz comparison is indicative only");
  }
  c.sim_identical = sim_canonical(baseline) == sim_canonical(current);
  if (!c.sim_identical && !c.config_changed)
    c.notes.push_back(
        "sim subtree diverged under the SAME config hash — this is a "
        "determinism break, not a performance change");
  if (c.baseline_mhz > 0.0)
    c.regression_pct =
        100.0 * (c.baseline_mhz - c.current_mhz) / c.baseline_mhz;
  return c;
}

std::string render_diff(const PerfReport& baseline, const PerfReport& current,
                        const CompareOutcome& cmp, double threshold_pct) {
  TextTable t("stlperf diff: " + baseline.name);
  t.header({"field", "baseline", "current", "delta"});
  const auto pct = [](double from, double to) {
    if (from == 0.0) return std::string("n/a");
    const double d = 100.0 * (to - from) / from;
    return (d >= 0 ? "+" : "") + TextTable::fmt_fixed(d, 1) + "%";
  };
  t.row({"sim-MHz", TextTable::fmt_fixed(cmp.baseline_mhz, 3),
         TextTable::fmt_fixed(cmp.current_mhz, 3),
         pct(cmp.baseline_mhz, cmp.current_mhz)});
  t.row({"wall-clock [s]", TextTable::fmt_fixed(baseline.wall_s, 3),
         TextTable::fmt_fixed(current.wall_s, 3),
         pct(baseline.wall_s, current.wall_s)});
  t.row({"sim cycles",
         TextTable::fmt_int(static_cast<long long>(baseline.sim_cycles)),
         TextTable::fmt_int(static_cast<long long>(current.sim_cycles)),
         baseline.sim_cycles == current.sim_cycles ? "=" : "!="});
  t.row({"peak RSS [KiB]", TextTable::fmt_int(baseline.peak_rss_kb),
         TextTable::fmt_int(current.peak_rss_kb),
         pct(static_cast<double>(baseline.peak_rss_kb),
             static_cast<double>(current.peak_rss_kb))});
  t.row({"sim subtree", "-", "-",
         cmp.sim_identical ? "byte-identical" : "DIVERGED"});
  std::string out = t.str();
  for (const std::string& n : cmp.notes) out += "note: " + n + "\n";
  if (!cmp.comparable) {
    out += "stlperf: NOT COMPARABLE\n";
  } else if (cmp.regressed(threshold_pct)) {
    out += "stlperf: REGRESSION — sim-MHz dropped " +
           TextTable::fmt_fixed(cmp.regression_pct, 1) + "% (threshold " +
           TextTable::fmt_fixed(threshold_pct, 1) + "%)\n";
  } else {
    const double delta = -cmp.regression_pct;  // positive = current is faster
    out += "stlperf: OK — sim-MHz delta " + std::string(delta >= 0 ? "+" : "") +
           TextTable::fmt_fixed(delta, 1) + "% (allowed drop " +
           TextTable::fmt_fixed(threshold_pct, 1) + "%)\n";
  }
  return out;
}

}  // namespace detstl::perf
