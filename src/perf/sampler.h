#pragma once
// Host-resource sampler: wall-clock, process CPU time and peak RSS. Every
// value this header produces is kHost by definition — never let one into a
// sim-tagged metric or the canonical report bytes.

#include "common/bitutil.h"

namespace detstl::perf {

struct HostUsage {
  double wall_s = 0.0;   // wall-clock since the timer started
  double cpu_s = 0.0;    // process CPU (user+sys) since the timer started
  long peak_rss_kb = 0;  // process-lifetime peak resident set, in KiB
};

/// Process CPU time (user + system) since process start, in seconds.
double process_cpu_seconds();

/// Process-lifetime peak resident set size in KiB (0 where unsupported).
long peak_rss_kb();

/// Monotonic wall + CPU interval timer.
class HostTimer {
 public:
  HostTimer();      // starts immediately
  void restart();
  HostUsage sample() const;

 private:
  u64 wall_start_ns_ = 0;
  double cpu_start_s_ = 0.0;
};

}  // namespace detstl::perf
