#pragma once
// stlperf metrics core: a standalone, label-aware registry of counters,
// gauges and fixed-bucket histograms. Extends the trace-sink MetricsRegistry
// idiom (trace/metrics.h) from "fixed per-core/per-phase counter matrix" to
// arbitrary named series, so instrumentation in cpu/, mem/, fault/ and
// runtime/ can publish into one place and every consumer (bench JSON,
// detscope metrics, stlrun --metrics-out) renders the same data.
//
// Determinism contract: every metric carries a MetricSource tag. kSim values
// derive only from simulation state (cycles, hits, misses, units) and must
// be byte-identical for a fixed seed/config at ANY thread count; kHost
// values (wall-clock, throughput, RSS) may vary freely. sim_fingerprint()
// and the JSON emitter honour the split: only kSim entries enter the
// fingerprint and the "sim" subtree. Iteration order is the lexicographic
// (name, labels) order of a std::map — insertion order can never leak into
// the output.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bitutil.h"

namespace detstl::perf {

enum class MetricKind : u8 { kCounter, kGauge, kHistogram };
enum class MetricSource : u8 { kSim, kHost };

const char* metric_kind_name(MetricKind k);
const char* metric_source_name(MetricSource s);

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus an implicit overflow bucket, so counts.size() == bounds.size() + 1.
struct HistogramData {
  std::vector<u64> bounds;
  std::vector<u64> counts;
  u64 total = 0;  // number of recorded values
  u64 sum = 0;    // sum of recorded values

  void record(u64 value);
};

struct Metric {
  MetricKind kind = MetricKind::kCounter;
  MetricSource source = MetricSource::kSim;
  u64 counter = 0;
  double gauge = 0.0;
  HistogramData hist;
};

/// Canonical label key: "k1=v1,k2=v2". Free-form, but keep keys sorted so
/// the same series never splits over two map entries.
class Registry {
 public:
  /// Counter: monotonically accumulated u64 (add) or overwritten (set).
  void add_counter(const std::string& name, const std::string& labels, u64 delta,
                   MetricSource source = MetricSource::kSim);
  void set_counter(const std::string& name, const std::string& labels, u64 value,
                   MetricSource source = MetricSource::kSim);

  /// Gauge: a point-in-time double (throughput, occupancy, RSS).
  void set_gauge(const std::string& name, const std::string& labels, double value,
                 MetricSource source = MetricSource::kHost);

  /// Histogram sample. `bounds` fixes the bucket layout on first use;
  /// subsequent records must pass the same bounds (checked by assert).
  void record_hist(const std::string& name, const std::string& labels,
                   const std::vector<u64>& bounds, u64 value,
                   MetricSource source = MetricSource::kSim);

  /// Install a fully-populated histogram (JSON deserialisation).
  void set_histogram(const std::string& name, const std::string& labels,
                     HistogramData hist, MetricSource source = MetricSource::kSim);

  std::size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  /// Deterministic (name, labels)-ordered visit over every series.
  void visit(const std::function<void(const std::string& name,
                                      const std::string& labels,
                                      const Metric& m)>& fn) const;

  /// Lookup for tests/assertions; nullptr when the series does not exist.
  const Metric* find(const std::string& name, const std::string& labels) const;

  /// FNV-1a 64 over every kSim series (name, labels, kind, values) in
  /// deterministic order. kHost series never enter the fingerprint, so two
  /// runs of the same simulation match even across machines.
  u64 sim_fingerprint() const;

  /// Human-readable table of every series.
  std::string render(const std::string& title = "metrics") const;

  void clear() { series_.clear(); }

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)
  std::map<Key, Metric> series_;
};

}  // namespace detstl::perf
