#pragma once
// stlperf machine-readable performance report (the BENCH_<name>.json
// trajectory format) and the comparison logic behind `stlperf diff/check`.
//
// Schema contract (kPerfSchemaVersion):
//  * the top-level "sim" object holds ONLY simulation-derived values —
//    cycles, units, per-phase cycle counts, kSim-tagged metrics and their
//    fingerprint. For a fixed seed/config it is byte-identical across runs,
//    machines and thread counts (sim_canonical() extracts exactly these
//    bytes; tests/test_perf.cpp enforces the invariance at 1/2/8 threads).
//  * the top-level "host" object holds everything timing-dependent:
//    wall-clock, CPU time, peak RSS, sim-MHz, per-phase wall times,
//    kHost-tagged metrics and the optional profiler snapshot. It may vary
//    freely between runs and is ignored by the determinism checks.
// Consumers must reject reports whose "stlperf_schema" they don't know.

#include <string>
#include <vector>

#include "perf/metrics.h"
#include "perf/profiler.h"

namespace detstl::perf {

inline constexpr u32 kPerfSchemaVersion = 1;

/// One campaign phase (or bench sub-step): sim share and host share are
/// recorded separately so the sim subtree stays host-free.
struct PhaseStats {
  std::string name;
  u64 sim_cycles = 0;  // SoC cycles simulated during the phase
  u64 units = 0;       // campaign work units completed during the phase
  double wall_s = 0.0; // host wall-clock of the phase
};

struct PerfReport {
  u32 schema = kPerfSchemaVersion;
  std::string name;             // bench identity, e.g. "table2", "simspeed"
  std::string detstl_version;   // producer (informational; not compared)
  u64 config_hash = 0;          // ConfigHasher digest of the workload identity

  // --- sim: deterministic ---------------------------------------------------
  u64 sim_cycles = 0;
  u64 sim_units = 0;
  std::vector<PhaseStats> phases;
  Registry metrics;             // kSim and kHost series, routed by tag

  // --- host: timing-dependent -----------------------------------------------
  double wall_s = 0.0;
  double cpu_s = 0.0;
  long peak_rss_kb = 0;
  bool profiled = false;
  ProfSnapshot profile;

  /// The KPI: simulated cycles per host second, in MHz.
  double sim_mhz() const {
    return wall_s > 0.0 ? static_cast<double>(sim_cycles) / wall_s / 1e6 : 0.0;
  }
};

/// Full JSON document (both subtrees), newline-terminated.
std::string to_json(const PerfReport& rep);

/// The serialized "sim" subtree alone — the unit of the byte-identity
/// contract. Equal sim_canonical() ⟺ same simulated work.
std::string sim_canonical(const PerfReport& rep);

/// Parse a full document. Returns false (reason in *err) on malformed JSON,
/// missing members or an unknown schema version.
bool from_json(const std::string& text, PerfReport& out, std::string* err = nullptr);

bool write_report_file(const std::string& path, const PerfReport& rep);
bool load_report_file(const std::string& path, PerfReport& out,
                      std::string* err = nullptr);

/// Human rendering: summary table + metric table (+ hotspot table when
/// profiled).
std::string render_report(const PerfReport& rep);

/// stlperf diff/check semantics.
struct CompareOutcome {
  bool comparable = false;        // same schema and bench name
  bool config_changed = false;    // config_hash mismatch (noted, not fatal)
  bool sim_identical = false;     // sim_canonical() bytes equal
  double baseline_mhz = 0.0;
  double current_mhz = 0.0;
  /// Positive = current is slower than baseline by this many percent.
  double regression_pct = 0.0;
  std::vector<std::string> notes;

  bool regressed(double threshold_pct) const {
    return regression_pct > threshold_pct;
  }
};

CompareOutcome compare_reports(const PerfReport& baseline,
                               const PerfReport& current);

/// Human rendering of a comparison, threshold verdict included.
std::string render_diff(const PerfReport& baseline, const PerfReport& current,
                        const CompareOutcome& cmp, double threshold_pct);

}  // namespace detstl::perf
