#pragma once
// Header-only collectors: pull simulation counters out of the SoC and the
// campaign engines into a perf::Registry. Lives in perf/ but deliberately
// header-only — detstl_perf links only detstl_common, so including soc/fault/
// runtime headers here creates no library cycle (the callers already link
// those libraries).
//
// Everything collected here except the explicitly host-tagged series derives
// purely from simulation state, so the kSim determinism contract
// (perf/metrics.h) holds: byte-identical for a fixed seed/config at any
// thread count.

#include <string>

#include "fault/campaign.h"
#include "perf/metrics.h"
#include "perf/sampler.h"
#include "perf/simstats.h"
#include "runtime/campaign.h"
#include "soc/soc.h"

namespace detstl::perf {

inline std::string core_label(unsigned core) {
  return std::string("core=") + static_cast<char>('A' + core);
}

/// Architected CPU counters, L1 cache stats and shared-bus arbitration
/// counters of every active core, plus the global bus totals.
inline void collect_soc(Registry& reg, const soc::Soc& soc) {
  static const char* kPortName[3] = {"ifetch0", "data", "ifetch1"};
  for (unsigned c = 0; c < soc.num_cores(); ++c) {
    if (!soc.is_active(c)) continue;
    const std::string core = core_label(c);
    const cpu::PerfCounters& p = soc.core(c).perf();
    reg.add_counter("cpu.cycles", core, p.cycles);
    reg.add_counter("cpu.instret", core, p.instret);
    reg.add_counter("cpu.decodes", core, p.decodes);
    reg.add_counter("cpu.if_stalls", core, p.if_stalls);
    reg.add_counter("cpu.mem_stalls", core, p.mem_stalls);
    reg.add_counter("cpu.hdcu_stalls", core, p.hdcu_stalls);
    reg.add_counter("cpu.issue_splits", core, p.splits);

    const mem::MemSystem& ms = soc.core(c).memsys();
    const auto cache_stats = [&](const mem::CacheStats& s, const char* level) {
      const std::string labels = core + ",level=" + level;
      reg.add_counter("cache.hits", labels, s.hits);
      reg.add_counter("cache.misses", labels, s.misses);
      reg.add_counter("cache.refills", labels, s.refills);
      reg.add_counter("cache.writebacks", labels, s.writebacks);
    };
    cache_stats(ms.icache().stats(), "l1i");
    cache_stats(ms.dcache().stats(), "l1d");

    for (unsigned port = 0; port < 3; ++port) {
      const mem::BusStats& b = soc.bus().stats(c * 3 + port);
      if (b.submits == 0 && b.grants == 0) continue;
      const std::string labels = core + ",port=" + kPortName[port];
      reg.add_counter("bus.submits", labels, b.submits);
      reg.add_counter("bus.grants", labels, b.grants);
      reg.add_counter("bus.wait_cycles", labels, b.wait_cycles);
      reg.add_counter("bus.occupancy_cycles", labels, b.occupancy_cycles);
    }
  }
  reg.add_counter("bus.transactions", "", soc.bus().transactions());
  reg.add_counter("bus.stall_ticks", "", soc.bus().stall_ticks());
}

/// Fault-campaign outcome counters (+ checkpoint bookkeeping, host-tagged:
/// shard counts depend on interrupt timing, not on the simulation).
inline void collect_fault_result(Registry& reg, const fault::CampaignResult& r,
                                 const std::string& labels) {
  reg.add_counter("campaign.faults.total", labels, r.total_faults);
  reg.add_counter("campaign.faults.simulated", labels, r.simulated_faults);
  reg.add_counter("campaign.faults.excited", labels, r.excited);
  reg.add_counter("campaign.faults.detected", labels, r.detected);
  reg.add_counter("campaign.faults.detected_signature", labels,
                  r.detected_signature);
  reg.add_counter("campaign.faults.detected_verdict", labels, r.detected_verdict);
  reg.add_counter("campaign.faults.detected_watchdog", labels,
                  r.detected_watchdog);
  reg.add_counter("campaign.good_cycles", labels, r.good_cycles);
  reg.add_counter("campaign.sim_cycles", labels, r.sim_cycles);
  reg.add_counter("campaign.screen_calls", labels, r.screen_calls);
  if (r.wall_seconds > 0)
    reg.set_gauge("campaign.units_per_s", labels,
                  static_cast<double>(r.simulated_faults) / r.wall_seconds);
  reg.set_gauge("campaign.workers", labels, r.threads_used);
  if (r.ckpt.enabled) {
    reg.add_counter("ckpt.shards_flushed", labels, r.ckpt.shards_flushed,
                    MetricSource::kHost);
    reg.add_counter("ckpt.shards_loaded", labels, r.ckpt.shards_loaded,
                    MetricSource::kHost);
    reg.add_counter("ckpt.records_resumed", labels, r.ckpt.records_resumed,
                    MetricSource::kHost);
  }
}

/// Disturbance-campaign recovery counters: retries, degradations, recovery
/// ladder outcomes, per-run cycle histogram — all simulation-derived.
inline void collect_disturbance_result(Registry& reg,
                                       const runtime::CampaignResult& r,
                                       const std::string& labels) {
  u64 sim_cycles = 0, retries = 0, fallback_retries = 0, degraded = 0,
      recovered = 0, quarantined_runs = 0, budget_exhausted = 0;
  // Buckets in cycles: per-run totals of the small campaigns sit in the
  // hundreds of thousands; the open bucket catches pathological runs.
  static const std::vector<u64> kRunCycleBounds = {
      100'000, 300'000, 1'000'000, 3'000'000, 10'000'000};
  for (const runtime::RunRecord& rec : r.records) {
    sim_cycles += rec.result.total_cycles;
    reg.record_hist("campaign.run_cycles", labels, kRunCycleBounds,
                    rec.result.total_cycles);
    budget_exhausted += rec.result.budget_exhausted ? 1 : 0;
    for (const runtime::CoreReport& cr : rec.result.cores) {
      quarantined_runs += cr.quarantined ? 1 : 0;
      for (const runtime::RoutineRecord& rr : cr.records) {
        if (rr.cached_attempts > 1) retries += rr.cached_attempts - 1;
        fallback_retries += rr.fallback_attempts;
        if (rr.outcome == runtime::RecoveryOutcome::kPassDegraded) ++degraded;
        if (rr.outcome == runtime::RecoveryOutcome::kPassRecovered) ++recovered;
      }
    }
  }
  reg.add_counter("campaign.runs", labels, r.runs);
  reg.add_counter("campaign.sim_cycles", labels, sim_cycles);
  reg.add_counter("campaign.retries", labels, retries);
  reg.add_counter("campaign.fallback_attempts", labels, fallback_retries);
  reg.add_counter("campaign.recovered", labels, recovered);
  reg.add_counter("campaign.degraded", labels, degraded);
  reg.add_counter("campaign.quarantined_runs", labels, quarantined_runs);
  reg.add_counter("campaign.budget_exhausted", labels, budget_exhausted);
  if (r.wall_seconds > 0)
    reg.set_gauge("campaign.units_per_s", labels,
                  static_cast<double>(r.runs) / r.wall_seconds);
  reg.set_gauge("campaign.workers", labels, r.threads_used);
  if (r.ckpt.enabled) {
    reg.add_counter("ckpt.shards_flushed", labels, r.ckpt.shards_flushed,
                    MetricSource::kHost);
    reg.add_counter("ckpt.shards_loaded", labels, r.ckpt.shards_loaded,
                    MetricSource::kHost);
    reg.add_counter("ckpt.records_resumed", labels, r.ckpt.records_resumed,
                    MetricSource::kHost);
  }
}

/// Total simulated work accumulated by the engines (perf/simstats.h),
/// usually a delta bracketing one bench or phase.
inline void collect_sim_totals(Registry& reg, const SimSnapshot& totals) {
  for (unsigned i = 0; i < kNumSimStats; ++i) {
    if (totals.v[i] == 0) continue;
    reg.add_counter(std::string("sim.") + sim_stat_name(static_cast<SimStat>(i)),
                    "", totals.v[i]);
  }
}

/// Host resource usage (always kHost).
inline void collect_host_usage(Registry& reg, const HostUsage& u) {
  reg.set_gauge("host.wall_s", "", u.wall_s);
  reg.set_gauge("host.cpu_s", "", u.cpu_s);
  reg.set_gauge("host.peak_rss_kb", "", static_cast<double>(u.peak_rss_kb));
}

}  // namespace detstl::perf
