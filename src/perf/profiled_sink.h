#pragma once
// EventSink decorator attributing trace-emission host time to the
// ProfScope::kTraceEmit bucket. Header-only so perf/ needs no link
// dependency on trace/.

#include "perf/profiler.h"
#include "trace/event.h"

namespace detstl::perf {

class ProfiledSink final : public trace::EventSink {
 public:
  explicit ProfiledSink(trace::EventSink* inner) : inner_(inner) {}

  void on_event(const trace::Event& e) override {
    DETSTL_PROF_SCOPE(ProfScope::kTraceEmit);
    inner_->on_event(e);
  }

 private:
  trace::EventSink* inner_;  // non-owning
};

}  // namespace detstl::perf
