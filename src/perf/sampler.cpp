#include "perf/sampler.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define DETSTL_HAVE_RUSAGE 1
#endif

namespace detstl::perf {

namespace {

u64 wall_now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

double process_cpu_seconds() {
#ifdef DETSTL_HAVE_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  const auto tv_s = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
  };
  return tv_s(ru.ru_utime) + tv_s(ru.ru_stime);
#else
  return 0.0;
#endif
}

long peak_rss_kb() {
#ifdef DETSTL_HAVE_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#ifdef __APPLE__
  return ru.ru_maxrss / 1024;  // macOS reports bytes
#else
  return ru.ru_maxrss;         // Linux reports KiB
#endif
#else
  return 0;
#endif
}

HostTimer::HostTimer() { restart(); }

void HostTimer::restart() {
  wall_start_ns_ = wall_now_ns();
  cpu_start_s_ = process_cpu_seconds();
}

HostUsage HostTimer::sample() const {
  HostUsage u;
  u.wall_s = static_cast<double>(wall_now_ns() - wall_start_ns_) / 1e9;
  u.cpu_s = process_cpu_seconds() - cpu_start_s_;
  u.peak_rss_kb = peak_rss_kb();
  return u;
}

}  // namespace detstl::perf
