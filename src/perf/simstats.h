#pragma once
// Process-global simulated-work totals: how many SoC cycles and campaign
// units this process has simulated, fed by the fault and runtime campaign
// engines and read by the benches to compute sim-MHz per phase.
//
// Accumulation is relaxed atomic addition — commutative, so the totals are
// byte-identical for a fixed workload at ANY thread count (sums don't care
// about scheduling order). They are NOT invariant under --resume: a resumed
// campaign skips re-simulating journalled units, which is exactly the point
// of resuming. Tools that compare sim totals must compare straight runs.

#include <array>
#include <atomic>

#include "common/bitutil.h"

namespace detstl::perf {

enum class SimStat : unsigned {
  kGoodRunCycles,    // fault campaign: good-run SoC ticks
  kScreenCalls,      // fault campaign: module calls replayed in the 64-lane screen
  kDetectionCycles,  // fault campaign: SoC ticks across every detection re-run
  kFaultUnits,       // fault campaign: fault units completed this process
  kDisturbRuns,      // disturbance campaign: supervised runs completed
  kDisturbCycles,    // disturbance campaign: SoC ticks across supervised runs
  kSocRunCycles,     // direct soc::Soc runs outside a campaign (benches, tools)
  kCount,
};

inline constexpr unsigned kNumSimStats = static_cast<unsigned>(SimStat::kCount);

/// Stable snake_case name, used as the JSON key.
const char* sim_stat_name(SimStat s);

struct SimSnapshot {
  std::array<u64, kNumSimStats> v{};

  u64 operator[](SimStat s) const { return v[static_cast<unsigned>(s)]; }
  /// Element-wise this - earlier (callers bracket a phase with snapshots).
  SimSnapshot since(const SimSnapshot& earlier) const;
  /// Total simulated SoC cycles (every *Cycles stat).
  u64 sim_cycles() const;
  /// Total campaign work units (faults + supervised runs).
  u64 units() const;
};

class SimTotals {
 public:
  void add(SimStat s, u64 n) {
    v_[static_cast<unsigned>(s)].fetch_add(n, std::memory_order_relaxed);
  }
  SimSnapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<u64>, kNumSimStats> v_{};
};

/// The process-wide instance the campaign engines feed.
SimTotals& sim_totals();

}  // namespace detstl::perf
