#pragma once
// Minimal JSON value model + recursive-descent parser, enough to read back
// the stlperf reports this library emits (objects, arrays, strings with the
// escapes the emitter produces, numbers, booleans, null). Numbers keep their
// raw text so u64 counters round-trip exactly — a double would truncate
// above 2^53.

#include <string>
#include <utility>
#include <vector>

#include "common/bitutil.h"

namespace detstl::perf::json {

struct Value {
  enum class Type : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // exact number text (Type::kNumber only)
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  // insertion order preserved

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Exact u64 from the raw number text (0 when not a number).
  u64 as_u64() const;
  double as_double() const { return number; }
};

/// Parse `text` into `out`. On failure returns false and, when `err` is
/// non-null, stores a one-line reason with the byte offset.
bool parse(const std::string& text, Value& out, std::string* err = nullptr);

/// Escape a string for embedding into emitted JSON (quotes not included).
std::string escape(const std::string& s);

}  // namespace detstl::perf::json
