#include "perf/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace detstl::perf::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

u64 Value::as_u64() const {
  if (type != Type::kNumber) return 0;
  return std::strtoull(raw.c_str(), nullptr, 10);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string* err;
  int depth = 0;

  bool fail(const char* what) {
    if (err != nullptr && err->empty())
      *err = std::string(what) + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) != 0) return fail("bad literal");
    pos += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("truncated escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            const unsigned long cp =
                std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
            pos += 4;
            // Emitter only produces \u00XX control escapes; anything in the
            // BMP is decoded to UTF-8 for robustness.
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    if (++depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    bool ok = false;
    if (c == '{') {
      ok = parse_object(out);
    } else if (c == '[') {
      ok = parse_array(out);
    } else if (c == '"') {
      out.type = Value::Type::kString;
      ok = parse_string(out.str);
    } else if (c == 't') {
      out.type = Value::Type::kBool;
      out.boolean = true;
      ok = literal("true");
    } else if (c == 'f') {
      out.type = Value::Type::kBool;
      out.boolean = false;
      ok = literal("false");
    } else if (c == 'n') {
      out.type = Value::Type::kNull;
      ok = literal("null");
    } else {
      ok = parse_number(out);
    }
    --depth;
    return ok;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) return fail("expected value");
    out.type = Value::Type::kNumber;
    out.raw = text.substr(start, pos - start);
    char* end = nullptr;
    out.number = std::strtod(out.raw.c_str(), &end);
    if (end != out.raw.c_str() + out.raw.size()) return fail("bad number");
    return true;
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      Value v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* err) {
  if (err != nullptr) err->clear();
  Parser p{text, 0, err};
  if (!p.parse_value(out)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return p.fail("trailing garbage");
  return true;
}

}  // namespace detstl::perf::json
