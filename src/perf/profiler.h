#pragma once
// stlperf subsystem profiler: scoped host-time attribution across the
// simulator's hot paths (fetch/decode/execute, cache model, bus arbitration,
// trace emission, checkpoint I/O). Answers "where do the host cycles go?" —
// the map the two-tier-engine work needs before touching anything.
//
// Cost model, mirroring DETSTL_TRACE (trace/event.h):
//  * compiled out entirely under -DDETSTL_PROF_DISABLED (zero code);
//  * compiled in but disabled (the default): one relaxed atomic load per
//    scope, no clock reads;
//  * enabled (set_prof_enabled(true)): two steady_clock reads per scope.
//    Profiled runs are therefore slower — the sim-MHz KPI and the CI gate
//    always use non-profiled runs, and bench --profile is a separate switch
//    from --metrics-out.
//
// Accumulation is a relaxed fetch_add into process-global per-scope totals:
// thread-safe, and commutative so totals don't depend on scheduling (the
// values themselves are host timings and carry no determinism contract).

#include <array>
#include <atomic>
#include <string>

#include "common/bitutil.h"

namespace detstl::perf {

enum class ProfScope : u8 {
  kFetch,            // Cpu::stage_fetch
  kDecode,           // Cpu::stage_issue (decode + dual-issue packing)
  kExecute,          // Cpu WB/MEM/EX stages
  kCacheModel,       // MemSystem::tick (L1 lookups, refills, writebacks)
  kBusArb,           // SharedBus::tick (arbitration + device access)
  kNetlistScreen,    // 64-lane excitation screening replay
  kSnapshotRestore,  // SoC checkpoint copy in fault detection
  kTraceEmit,        // EventSink::on_event via ProfiledSink
  kCheckpointIO,     // shard serialisation + write + fsync, shard load
  kCount,
};

inline constexpr unsigned kNumProfScopes = static_cast<unsigned>(ProfScope::kCount);

const char* prof_scope_name(ProfScope s);

struct ScopeTotals {
  u64 calls = 0;
  u64 ns = 0;
};

struct ProfSnapshot {
  std::array<ScopeTotals, kNumProfScopes> scopes{};

  const ScopeTotals& operator[](ProfScope s) const {
    return scopes[static_cast<unsigned>(s)];
  }
  u64 total_ns() const;
  /// Hotspot table, scopes sorted by time; `wall_s` > 0 adds a %-of-wall
  /// column (scopes nest, so the column can legitimately sum past 100%).
  std::string render(double wall_s = 0.0) const;
};

bool prof_enabled();
void set_prof_enabled(bool on);
void prof_reset();
ProfSnapshot prof_snapshot();

namespace detail {

struct ProfState {
  std::atomic<bool> enabled{false};
  std::array<std::atomic<u64>, kNumProfScopes> calls{};
  std::array<std::atomic<u64>, kNumProfScopes> ns{};
};

ProfState& prof_state();
u64 prof_now_ns();

}  // namespace detail

/// RAII scope timer; construct via DETSTL_PROF_SCOPE.
class ProfTimer {
 public:
  explicit ProfTimer(ProfScope s) {
    if (detail::prof_state().enabled.load(std::memory_order_relaxed)) {
      scope_ = s;
      armed_ = true;
      t0_ = detail::prof_now_ns();
    }
  }
  ~ProfTimer() {
    if (!armed_) return;
    auto& st = detail::prof_state();
    const unsigned i = static_cast<unsigned>(scope_);
    st.calls[i].fetch_add(1, std::memory_order_relaxed);
    st.ns[i].fetch_add(detail::prof_now_ns() - t0_, std::memory_order_relaxed);
  }
  ProfTimer(const ProfTimer&) = delete;
  ProfTimer& operator=(const ProfTimer&) = delete;

 private:
  ProfScope scope_ = ProfScope::kFetch;
  bool armed_ = false;
  u64 t0_ = 0;
};

#ifdef DETSTL_PROF_DISABLED
#define DETSTL_PROF_SCOPE(scope) \
  do {                           \
  } while (false)
#else
#define DETSTL_PROF_CAT2(a, b) a##b
#define DETSTL_PROF_CAT(a, b) DETSTL_PROF_CAT2(a, b)
#define DETSTL_PROF_SCOPE(scope)                       \
  ::detstl::perf::ProfTimer DETSTL_PROF_CAT(           \
      detstl_prof_scope_, __LINE__)(scope)
#endif

}  // namespace detstl::perf
