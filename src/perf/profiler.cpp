#include "perf/profiler.h"

#include <algorithm>
#include <chrono>

#include "common/table.h"

namespace detstl::perf {

const char* prof_scope_name(ProfScope s) {
  switch (s) {
    case ProfScope::kFetch: return "cpu.fetch";
    case ProfScope::kDecode: return "cpu.decode";
    case ProfScope::kExecute: return "cpu.execute";
    case ProfScope::kCacheModel: return "mem.cache";
    case ProfScope::kBusArb: return "mem.bus_arb";
    case ProfScope::kNetlistScreen: return "fault.screen";
    case ProfScope::kSnapshotRestore: return "fault.snapshot_restore";
    case ProfScope::kTraceEmit: return "trace.emit";
    case ProfScope::kCheckpointIO: return "ckpt.io";
    case ProfScope::kCount: break;
  }
  return "?";
}

namespace detail {

ProfState& prof_state() {
  static ProfState state;
  return state;
}

u64 prof_now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

bool prof_enabled() {
  return detail::prof_state().enabled.load(std::memory_order_relaxed);
}

void set_prof_enabled(bool on) {
  detail::prof_state().enabled.store(on, std::memory_order_relaxed);
}

void prof_reset() {
  auto& st = detail::prof_state();
  for (unsigned i = 0; i < kNumProfScopes; ++i) {
    st.calls[i].store(0, std::memory_order_relaxed);
    st.ns[i].store(0, std::memory_order_relaxed);
  }
}

ProfSnapshot prof_snapshot() {
  ProfSnapshot snap;
  auto& st = detail::prof_state();
  for (unsigned i = 0; i < kNumProfScopes; ++i) {
    snap.scopes[i].calls = st.calls[i].load(std::memory_order_relaxed);
    snap.scopes[i].ns = st.ns[i].load(std::memory_order_relaxed);
  }
  return snap;
}

u64 ProfSnapshot::total_ns() const {
  u64 t = 0;
  for (const ScopeTotals& s : scopes) t += s.ns;
  return t;
}

std::string ProfSnapshot::render(double wall_s) const {
  std::vector<unsigned> order;
  for (unsigned i = 0; i < kNumProfScopes; ++i)
    if (scopes[i].calls != 0) order.push_back(i);
  std::sort(order.begin(), order.end(),
            [this](unsigned a, unsigned b) { return scopes[a].ns > scopes[b].ns; });

  TextTable t("subsystem profile (host time)");
  if (wall_s > 0)
    t.header({"scope", "calls", "time [ms]", "ns/call", "% of wall"});
  else
    t.header({"scope", "calls", "time [ms]", "ns/call"});
  for (const unsigned i : order) {
    const ScopeTotals& s = scopes[i];
    std::vector<std::string> row{
        prof_scope_name(static_cast<ProfScope>(i)),
        TextTable::fmt_int(static_cast<long long>(s.calls)),
        TextTable::fmt_fixed(static_cast<double>(s.ns) / 1e6, 2),
        TextTable::fmt_fixed(
            static_cast<double>(s.ns) / static_cast<double>(s.calls), 1)};
    if (wall_s > 0)
      row.push_back(TextTable::fmt_fixed(
          100.0 * static_cast<double>(s.ns) / 1e9 / wall_s, 1));
    t.row(std::move(row));
  }
  if (order.empty()) t.row(wall_s > 0
                               ? std::vector<std::string>{"(no scopes hit)", "0",
                                                          "0.00", "0.0", "0.0"}
                               : std::vector<std::string>{"(no scopes hit)", "0",
                                                          "0.00", "0.0"});
  return t.str();
}

}  // namespace detstl::perf
