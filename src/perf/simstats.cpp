#include "perf/simstats.h"

namespace detstl::perf {

const char* sim_stat_name(SimStat s) {
  switch (s) {
    case SimStat::kGoodRunCycles: return "good_run_cycles";
    case SimStat::kScreenCalls: return "screen_calls";
    case SimStat::kDetectionCycles: return "detection_cycles";
    case SimStat::kFaultUnits: return "fault_units";
    case SimStat::kDisturbRuns: return "disturb_runs";
    case SimStat::kDisturbCycles: return "disturb_cycles";
    case SimStat::kSocRunCycles: return "soc_run_cycles";
    case SimStat::kCount: break;
  }
  return "?";
}

SimSnapshot SimSnapshot::since(const SimSnapshot& earlier) const {
  SimSnapshot d;
  for (unsigned i = 0; i < kNumSimStats; ++i) d.v[i] = v[i] - earlier.v[i];
  return d;
}

u64 SimSnapshot::sim_cycles() const {
  return (*this)[SimStat::kGoodRunCycles] + (*this)[SimStat::kDetectionCycles] +
         (*this)[SimStat::kDisturbCycles] + (*this)[SimStat::kSocRunCycles];
}

u64 SimSnapshot::units() const {
  return (*this)[SimStat::kFaultUnits] + (*this)[SimStat::kDisturbRuns];
}

SimSnapshot SimTotals::snapshot() const {
  SimSnapshot s;
  for (unsigned i = 0; i < kNumSimStats; ++i)
    s.v[i] = v_[i].load(std::memory_order_relaxed);
  return s;
}

void SimTotals::reset() {
  for (auto& a : v_) a.store(0, std::memory_order_relaxed);
}

SimTotals& sim_totals() {
  static SimTotals totals;
  return totals;
}

}  // namespace detstl::perf
