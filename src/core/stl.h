#pragma once
// Software Test Library assembly: combine wrapped routines into one per-core
// boot-test program, optionally synchronised across cores with shared-memory
// barriers (the decentralised scheduling structure of [13], which the paper's
// Table I experiments follow: "a software structure similar to the one
// presented by the authors of [13]").
//
// Layout per core:
//   main: for each routine: jal <routine entry>; [barrier k]; ... ; halt
//   each routine is a wrapped subroutine writing (status, signature) to its
//   own 8-byte result slot.
// Barrier counters live in shared SRAM and are accessed uncached via
// amoadd/loads (the private caches are not coherent).

#include <memory>
#include <vector>

#include "core/wrapper.h"

namespace detstl::core {

struct SuiteSpec {
  std::vector<const SelfTestRoutine*> routines;
  WrapperKind wrapper = WrapperKind::kPlain;
  BuildEnv env;                 // code_base / data_base / core / policy knobs
  u32 results_base = 0;         // 8 bytes per routine (status, signature)
  bool barriers = false;        // phase barrier after every routine
  u32 barrier_base = 0;         // shared counters, one word per phase
  unsigned barrier_cores = 1;   // expected arrivals per phase
};

struct BuiltSuite {
  isa::Program prog;
  std::vector<u32> goldens;     // calibrated per routine
  std::vector<std::string> names;
  u32 results_base = 0;
  u32 code_bytes = 0;
  u64 calib_cycles = 0;         // fault-free single-core suite time
};

/// Assemble + calibrate a full suite (two-pass, like build_wrapped; the
/// calibration runs single-core with barrier_cores forced to 1 arrival).
BuiltSuite build_suite(const SuiteSpec& spec);

/// Per-routine verdicts from the results area.
std::vector<TestVerdict> read_suite_verdicts(const soc::Soc& soc,
                                             const BuiltSuite& suite);

/// Default shared addresses for the triple-core experiments.
inline u32 default_results_base(unsigned core_id) {
  return mem::kSramBase + 0x100 + core_id * 0x100;
}
inline constexpr u32 kDefaultBarrierBase = mem::kSramBase + 0x80;
inline u32 default_data_base(unsigned core_id) {
  return mem::kSramBase + 0x8000 + core_id * 0x1000;
}

/// Per-core build environment of the tools' quickstart scenario (detscope
/// run, stlint --xval, the scenario matrix's placement 0): each core's
/// cache-wrapped copy of the routine at a disjoint flash/SRAM placement.
/// Both sides of the static<->dynamic cross-validation must assemble from
/// the same environment for the prediction to be about the observed program.
inline BuildEnv quickstart_env(unsigned core_id, bool write_allocate) {
  BuildEnv env;
  env.core_id = core_id;
  env.kind = static_cast<isa::CoreKind>(core_id);
  env.code_base = mem::kFlashBase + 0x2000 + core_id * 0x40000;
  env.data_base = default_data_base(core_id);
  env.write_allocate = write_allocate;
  return env;
}

/// Catalogue of the built-in self-test routines (core/routines.h), shared by
/// the tools (stlint, detscope) so routine names stay consistent.
struct RoutineEntry {
  const char* name;
  std::unique_ptr<SelfTestRoutine> (*make)();
};

/// All built-in routines, in a stable order.
const std::vector<RoutineEntry>& routine_registry();

/// Lookup by name; nullptr when unknown.
const RoutineEntry* find_routine(const std::string& name);

}  // namespace detstl::core
