// Self-test routines authored as assembly text: downstream users plug .s
// fragments into the wrapper machinery without touching C++ emitters. The
// fragment follows the body conventions of routine.h (compute in r1..r20,
// r25 = data base, fold observations into r29 — typically via the misr
// sequence, or by calling no helper and XOR-folding manually).

#include "core/routines.h"
#include "isa/asmparser.h"

namespace detstl::core {

namespace {

class TextRoutine final : public SelfTestRoutine {
 public:
  TextRoutine(std::string name, std::string source, bool isr, u32 data_bytes)
      : name_(std::move(name)),
        source_(std::move(source)),
        isr_(isr),
        data_bytes_(data_bytes) {}

  std::string name() const override { return name_; }
  bool needs_isr() const override { return isr_; }
  u32 data_bytes() const override { return data_bytes_; }

  void emit_body(isa::Assembler& a, const RoutineEnv&,
                 const std::string& lbl) const override {
    isa::assemble_text_into(a, source_, lbl + "_");
  }

 private:
  std::string name_;
  std::string source_;
  bool isr_;
  u32 data_bytes_;
};

}  // namespace

std::unique_ptr<SelfTestRoutine> make_text_routine(std::string name,
                                                   std::string body_source,
                                                   bool needs_isr, u32 data_bytes) {
  return std::make_unique<TextRoutine>(std::move(name), std::move(body_source),
                                       needs_isr, data_bytes);
}

}  // namespace detstl::core
