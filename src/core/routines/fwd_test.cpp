// Forwarding-logic / HDCU self-test routine, after Bernardi et al. [19]
// ("Software-based self-test techniques for dual-issue embedded processors"):
// exhaustively exercises every forwarding path of the dual-issue pipeline —
// producer pipe {0,1} x consumer pipe {0,1} x distance {1,2} x operand port
// {rs1,rs2} — plus the same-packet (split) paths, load-use paths, and on
// core C the 64-bit pair and high-half paths. Each case applies complementary
// data patterns and folds the consumed value into the signature; the variant
// with performance counters also folds the HDCU stall/split deltas (wrapper
// epilogue).
//
// Issue-slot placement is controlled by construction: each case template
// starts at packet parity 0 and is re-synchronised with an always-taken
// branch barrier, so in cache-resident execution the producer/consumer land
// in the intended pipes at the intended distance. Under fetch starvation
// (multi-core, no caches) the placement silently degrades — which is
// precisely the fault-coverage instability the paper measures in Table II.

#include "core/routines.h"
#include "core/signature.h"

namespace detstl::core {

using namespace isa;

namespace {

// Register allocation (see routine.h conventions; bodies own r1..r20):
//   r13, r14  32-bit pattern operands        r15  mask operand
//   r11  producer result   r12  consumer result
//   r9, r10   distinct-value slot fillers
//   r2/r3, r4/r5, r6/r7  64-bit pattern pairs (core C cases)
//   r16/r17  64-bit producer result pair     r18/r19  64-bit consumer pair
constexpr Reg kPatA = R13;
constexpr Reg kPatB = R14;
constexpr Reg kMask = R15;
constexpr Reg kProd = R11;
constexpr Reg kCons = R12;

constexpr u32 kPatterns[6] = {0xaaaaaaaa, 0x55555555, 0xffff0000,
                              0x00ff00ff, 0xdeadbeef, 0x80000001};

class FwdTest final : public SelfTestRoutine {
 public:
  explicit FwdTest(bool with_pcs) : with_pcs_(with_pcs) {}

  std::string name() const override {
    return with_pcs_ ? "fwd-hdcu[19]+pc" : "fwd-logic[19]";
  }

  bool wants_perf_counters() const override { return with_pcs_; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string& lbl) const override;

  u32 data_bytes() const override { return 64; }

 private:
  bool with_pcs_;
};

struct CaseEmitter {
  Assembler& a;
  const RoutineEnv& env;
  std::string lbl;
  unsigned seq = 0;
  unsigned filler_flip = 0;
  unsigned rot = 0;
  Reg prod = kProd;
  Reg cons = kCons;

  /// Rotate the producer/consumer destination registers so the HDCU's
  /// comparators see varied rd/rs encodings (not a single fixed index).
  void rotate() {
    static constexpr Reg kProds[3] = {R11, R17, R19};
    static constexpr Reg kConss[3] = {R12, R8, R6};
    prod = kProds[rot % 3];
    cons = kConss[rot % 3];
    ++rot;
  }

  /// Distinct-value slot filler: keeps every producer latch holding a unique
  /// value so wrong-select faults change the consumed data.
  void filler() {
    if (filler_flip ^= 1) {
      a.addi(R9, R9, 3);
    } else {
      a.addi(R10, R10, 5);
    }
  }

  /// Always-taken branch: resets issue parity to slot 0 deterministically.
  void barrier() {
    const std::string t = lbl + "_bar" + std::to_string(seq++);
    a.beq(R0, R0, t);
    a.label(t);
  }

  /// Parity-neutral signature fold (see emit_misr_acc packing note).
  void fold(Reg v) {
    emit_misr_acc(a, v);
    a.nop();
    barrier();
  }

  /// Per-case input perturbation: every producer computes a unique value, so
  /// a faulty select falling back to a stale register-file copy (or another
  /// latch) is guaranteed to pick up different data.
  void twiddle() {
    a.addi(kPatA, kPatA, 13);
    filler();
  }
  void twiddle64() {
    a.add64(R2, R2, R6);
    filler();
  }

  // --- 32-bit ALU producer -> ALU consumer --------------------------------------
  void alu_case(unsigned prod_slot, unsigned cons_slot, unsigned dist, bool rs1_port) {
    rotate();
    twiddle();
    // producer packet
    if (prod_slot == 0) {
      a.add(prod, kPatA, kPatB);
      filler();
    } else {
      filler();
      a.add(prod, kPatA, kPatB);
    }
    if (dist == 2) {
      filler();
      filler();
    }
    // consumer packet
    if (cons_slot == 0) {
      emit_consumer(rs1_port);
      filler();
    } else {
      filler();
      emit_consumer(rs1_port);
    }
    fold(cons);
  }

  void emit_consumer(bool rs1_port) {
    if (rs1_port) {
      a.xor_(cons, prod, kMask);
    } else {
      a.xor_(cons, kMask, prod);
    }
  }

  // --- same-packet RAW: the HDCU must split and forward cross-pipe ----------------
  void split_case(bool rs1_port) {
    rotate();
    twiddle();
    a.sub(prod, kPatA, kPatB);
    emit_consumer(rs1_port);  // same packet -> split
    a.nop();                  // restores parity after the split
    fold(cons);
  }

  // --- load producer: load-use stall (dist 1) and MEM/WB forward (dist 2) ---------
  void load_case(unsigned dist, unsigned cons_slot, bool rs1_port, i32 off) {
    rotate();
    a.lw(prod, R25, off);
    filler();
    if (dist == 2) {
      filler();
      filler();
    }
    if (cons_slot == 0) {
      emit_consumer(rs1_port);
      filler();
    } else {
      filler();
      emit_consumer(rs1_port);
    }
    fold(cons);
  }

  // --- core C: 64-bit pair forwarding ---------------------------------------------
  void pair_case(unsigned dist, unsigned prod_slot, bool rs1_port) {
    const Reg pp = rot % 2 == 0 ? R16 : R18;  // rotate pair producers too
    const Reg pc = pp == R16 ? R18 : R16;
    ++rot;
    twiddle64();
    if (prod_slot == 0) {
      a.add64(pp, R2, R4);
      filler();
    } else {
      filler();
      a.add64(pp, R2, R4);
    }
    if (dist == 2) {
      filler();
      filler();
    }
    if (rs1_port) {
      a.xor64(pc, pp, R6);
    } else {
      a.xor64(pc, R6, pp);
    }
    filler();
    // Only the LOW word reaches the 32-bit signature — the paper's [19]
    // algorithm is unchanged on core C, so "the signature must be
    // represented using 32 bits, which causes some fault effects to be
    // masked" (Sec. IV-C); this is why core C's coverage is lower.
    fold(pc);
  }

  // --- core C: 64-bit producer, 32-bit consumer reading the high half -------------
  void high_half_case(unsigned dist, bool rs1_port) {
    const Reg pp = rot % 2 == 0 ? R16 : R18;
    ++rot;
    twiddle64();
    a.add64(pp, R2, R4);
    filler();
    if (dist == 2) {
      filler();
      filler();
    }
    if (rs1_port) {
      a.xor_(kCons, static_cast<Reg>(pp + 1), kMask);  // rs = rd+1: high half
    } else {
      a.xor_(kCons, kMask, static_cast<Reg>(pp + 1));
    }
    filler();
    fold(kCons);
  }

  // --- core C: mixed-width interlocks (32-bit producer into a pair read) ----------
  void mixed_case() {
    twiddle64();
    a.addi(R16, R0, 0x123);  // writes the low half of pair r16
    filler();
    a.xor64(R18, R16, R6);   // pair read right behind: must interlock
    filler();
    fold(R18);  // low word only (32-bit signature, see pair_case)
  }

  void mixed_high_case() {
    twiddle64();
    a.addi(R17, R0, 0x321);  // writes the HIGH half of pair r16 (e2 compare)
    filler();
    a.xor64(R18, R16, R6);   // pair read right behind: must interlock
    filler();
    fold(R18);  // low word only: the high-half effect is partially masked
  }
};

void FwdTest::emit_body(Assembler& a, const RoutineEnv& env,
                        const std::string& lbl) const {
  CaseEmitter e{a, env, lbl};

  // Initialise fillers and the load-case data (stores allocate D$ lines in
  // the loading loop; dummy loads under no-write-allocate).
  a.addi(R9, R0, 0x111);
  a.addi(R10, R0, 0x222);

  const unsigned npat = std::min<unsigned>(env.patterns, 6);
  for (unsigned p = 0; p < npat; ++p) {
    const u32 pat = kPatterns[p];
    a.li(kPatA, pat);
    a.li(kPatB, ~pat);
    a.li(kMask, pat ^ 0x0f0f0f0f);
    emit_store_word(a, env, kPatA, R25, 0);
    emit_store_word(a, env, kPatB, R25, 4);
    e.barrier();

    // Interpipeline and intrapipeline ALU paths: 2x2 pipes x 2 distances x
    // 2 operand ports.
    for (unsigned prod_slot = 0; prod_slot < 2; ++prod_slot)
      for (unsigned cons_slot = 0; cons_slot < 2; ++cons_slot)
        for (unsigned dist = 1; dist <= 2; ++dist)
          for (bool rs1 : {true, false}) e.alu_case(prod_slot, cons_slot, dist, rs1);

    // Same-packet dependencies (HDCU split + cross-pipe forward).
    e.split_case(true);
    e.split_case(false);

    // Load producers: load-use stall and MEM/WB forward, both ports and
    // consumer slots.
    for (unsigned dist = 1; dist <= 2; ++dist)
      for (unsigned cons_slot = 0; cons_slot < 2; ++cons_slot)
        for (bool rs1 : {true, false})
          e.load_case(dist, cons_slot, rs1, rs1 ? 0 : 4);

    // Spill the running signature (store-only observable, own cache line):
    // this is the access pattern the no-write-allocate dummy-load rule of
    // Sec. III step 1 exists for — without the rule the execution-loop store
    // keeps missing and rides the contended bus.
    emit_store_word(a, env, R29, R25, 32 + 4 * static_cast<i32>(p));
    e.barrier();
  }

  // Core C: 64-bit datapath paths (reduced pattern depth keeps the routine
  // within the I-cache, paper rule 2.2).
  if (core_has_r64(env.kind)) {
    const unsigned npat64 = std::max(1u, npat / 2);
    for (unsigned p = 0; p < npat64; ++p) {
      const u32 pat = kPatterns[p];
      a.li(R2, pat);
      a.li(R3, ~pat);
      a.li(R4, pat ^ 0x00ffff00);
      a.li(R5, pat ^ 0x3c3c3c3c);
      a.li(R6, 0x0f0f0f0f);
      a.li(R7, 0xf0f0f0f0);
      e.barrier();
      for (unsigned dist = 1; dist <= 2; ++dist) {
        for (unsigned prod_slot = 0; prod_slot < 2; ++prod_slot)
          for (bool rs1 : {true, false}) e.pair_case(dist, prod_slot, rs1);
        for (bool rs1 : {true, false}) e.high_half_case(dist, rs1);
      }
      e.mixed_case();
      e.mixed_high_case();
    }
  }

  // Fold the filler accumulators (their values depend on every filler having
  // executed exactly once).
  e.fold(R9);
  e.fold(R10);
}

}  // namespace

std::unique_ptr<SelfTestRoutine> make_fwd_test(bool with_perf_counters) {
  return std::make_unique<FwdTest>(with_perf_counters);
}

}  // namespace detstl::core
