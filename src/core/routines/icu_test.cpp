// Synchronous imprecise interrupt self-test, after Singh et al. [21] ("Test
// generation for precise interrupts on out-of-order microprocessors"),
// adapted to the ICU of the modelled cores: every interrupt source is raised
// under several pipeline-fill patterns; the ISR folds the cause register and
// the recognition distance (MEPC - MFPC) into the signature. The recognition
// distance depends on how many instructions issue between the event being
// flagged at WB and the recognition boundary — exactly the quantity that
// fetch starvation perturbs in a multi-core execution (paper Sec. IV-D:
// unstable signature). Masked-source cases additionally grade the MIE gating
// and pending (MIP) readout, and the per-core cause mapping (A/B share cause
// bits; C reports distinct ones) determines which ICU faults stay masked.

#include "core/routines.h"
#include "core/signature.h"

namespace detstl::core {

using namespace isa;

namespace {

class IcuTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "icu-imprecise[21]"; }
  bool needs_isr() const override { return true; }
  u32 data_bytes() const override { return 64; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string& lbl) const override;
};

struct IcuEmitter {
  Assembler& a;
  const RoutineEnv& env;
  std::string lbl;
  unsigned seq = 0;

  void barrier() {
    const std::string t = lbl + "_bar" + std::to_string(seq++);
    a.beq(R0, R0, t);
    a.label(t);
  }

  /// Barrier landing at a flash-line boundary (the padding NOPs are dead
  /// code, jumped over). Dual-event cases use it to pin the second event
  /// just past the next line boundary: cache-resident execution keeps it
  /// inside the first event's recognition window, fetch-from-flash always
  /// pays the line miss there and misses the window.
  void aligned_barrier() {
    const std::string t = lbl + "_abar" + std::to_string(seq++);
    a.beq(R0, R0, t);
    a.align(32);
    a.label(t);
  }

  /// `fill` packets of independent work behind the interrupting instruction:
  /// the recognition boundary sweeps across different pipeline states.
  /// Alternating destination registers keep the fillers dual-issuable (a
  /// dependent chain would split every packet and stretch the window).
  void post_fill(unsigned fill) {
    for (unsigned i = 0; i < 2 * fill; ++i) {
      if (i % 2) {
        a.addi(R10, R10, 1);
      } else {
        a.addi(R9, R9, 1);
      }
    }
  }

  void overflow_case(unsigned fill) {
    a.li(R1, 0x7fffffff);
    a.addi(R2, R0, 1);
    barrier();
    a.addv(R11, R1, R2);  // raises kOverflow at WB
    post_fill(fill);
    barrier();
    emit_misr_acc(a, R11);
  }

  void subv_case(unsigned fill) {
    a.li(R1, 0x80000000);
    a.addi(R2, R0, 1);
    barrier();
    a.subv(R11, R1, R2);
    post_fill(fill);
    barrier();
    emit_misr_acc(a, R11);
  }

  void divzero_case(unsigned fill) {
    a.li(R1, 1234);
    barrier();
    a.div(R11, R1, R0);  // raises kDivZero at WB (after the divide latency)
    post_fill(fill);
    barrier();
    emit_misr_acc(a, R11);
  }

  void unaligned_case(unsigned fill, i32 off) {
    emit_store_word(a, env, R9, R25, 8);
    barrier();
    a.lw(R11, R25, 8 + off);  // misaligned: performed force-aligned + event
    post_fill(fill);
    barrier();
    emit_misr_acc(a, R11);
  }

  void swi_case(unsigned fill) {
    a.addi(R1, R0, 1);
    barrier();
    a.csrw(Csr::kMswi, R1);  // software imprecise event
    post_fill(fill);
    barrier();
  }

  /// Two sources raised `gap` packets apart. With cache-resident execution
  /// the second event's instruction issues inside the first event's
  /// recognition window (issue keeps running until the pipeline drains), so
  /// both sources are pending at the trap and the ICU's priority chain is
  /// excited with multiple active requests. Under fetch starvation the
  /// second instruction arrives after the trap has flushed the front end and
  /// the events are serialised — the excitation is lost (the paper's
  /// "not possible to trigger correctly all the imprecise interrupts").
  void dual_case(unsigned first, unsigned gap) {
    a.li(R1, 0x7fffffff);
    a.addi(R2, R0, 1);
    a.li(R3, 77);
    aligned_barrier();
    switch (first) {
      case 0:
        a.addv(R11, R1, R2);  // overflow
        break;
      case 1:
        a.div(R11, R3, R0);  // div-by-zero
        break;
      default:
        a.lw(R11, R25, 13);  // access error
        break;
    }
    post_fill(gap);
    a.csrw(Csr::kMswi, R3);  // second source: software event
    post_fill(2);
    barrier();
    emit_misr_acc(a, R11);
  }

  /// Coincident events from sources that SHARE a cause bit on cores A/B
  /// (overflow + divide-by-zero both report bit 0). A priority fault that
  /// swaps their service order leaves the A/B cause stream unchanged —
  /// masked — while core C's distinct bits expose it (the ~10% ICU coverage
  /// gap of paper Sec. IV-D).
  void pair_conflict_case(unsigned gap) {
    a.li(R1, 0x7fffffff);
    a.addi(R2, R0, 1);
    a.li(R3, 55);
    aligned_barrier();
    a.addv(R11, R1, R2);  // overflow
    post_fill(gap);
    a.div(R12, R3, R0);   // divide-by-zero: its EX latency lands the event
                          // inside the overflow's recognition drain
    post_fill(2);
    barrier();
    emit_misr_acc(a, R11);
    emit_misr_acc(a, R12);
  }

  /// A masked source left pending while an enabled source traps: the
  /// priority select must skip the pending-but-masked bit.
  void pending_priority_case() {
    a.li(R1, 0xf & ~0x1);   // mask overflow
    a.csrw(Csr::kMie, R1);
    a.li(R1, 0x7fffffff);
    a.addi(R2, R0, 3);
    barrier();
    a.addv(R11, R1, R2);    // overflow: pending, masked
    post_fill(1);
    a.csrw(Csr::kMswi, R2); // software event: traps with overflow pending
    post_fill(2);
    barrier();
    a.csrr(R12, Csr::kMip);
    emit_misr_acc(a, R12);
    a.li(R1, 0x1);
    a.csrw(Csr::kMip, R1);  // clear the masked overflow
    a.li(R1, 0xf);
    a.csrw(Csr::kMie, R1);
    barrier();
  }

  /// Masked source: the event must set MIP but not trap; the body observes
  /// the pending bit and clears it (grades MIE gating and MIP readout).
  void masked_case(IcuSource src) {
    const u8 bit = static_cast<u8>(1u << static_cast<unsigned>(src));
    a.li(R1, 0xf & ~bit);
    a.csrw(Csr::kMie, R1);  // mask the source
    barrier();
    switch (src) {
      case IcuSource::kOverflow:
        a.li(R1, 0x7fffffff);
        a.addi(R2, R0, 2);
        a.addv(R11, R1, R2);
        break;
      case IcuSource::kDivZero:
        a.li(R1, 99);
        a.div(R11, R1, R0);
        break;
      case IcuSource::kUnaligned:
        a.lw(R11, R25, 9);
        break;
      case IcuSource::kSoftware:
        a.csrw(Csr::kMswi, R1);
        break;
    }
    barrier();
    a.csrr(R12, Csr::kMip);  // pending bit visible
    emit_misr_acc(a, R12);
    a.li(R1, bit);
    a.csrw(Csr::kMip, R1);  // write-1-to-clear
    a.csrr(R12, Csr::kMip); // must be clear again
    emit_misr_acc(a, R12);
    a.li(R1, 0xf);
    a.csrw(Csr::kMie, R1);  // restore
    barrier();
  }

  void fold_fillers() {
    emit_misr_acc(a, R9);
    emit_misr_acc(a, R10);
  }
};

void IcuTest::emit_body(Assembler& a, const RoutineEnv& env,
                        const std::string& lbl) const {
  IcuEmitter e{a, env, lbl};
  a.addi(R9, R0, 0x40);
  a.addi(R10, R0, 0x80);

  const unsigned fills = std::min<unsigned>(env.patterns, 4);
  for (unsigned fill = 0; fill < fills; ++fill) {
    e.overflow_case(fill);
    e.subv_case(fill);
    e.divzero_case(fill);
    e.unaligned_case(fill, 1);
    e.unaligned_case(fill, 2);
    e.swi_case(fill);
  }

  // Multi-source interactions: coincident requests (priority chain) and
  // masked-pending skipping. Gaps start at 1 packet: with gap 0 the second
  // event lands in the recognition window even under fetch starvation, which
  // would hand the single-core no-cache run the same excitation for free.
  // Gap 4 (8 filler instructions) places the second event at byte offset 36
  // of the aligned case — just past the next 32-byte flash line. Every
  // coincidence case must have this crossing: a single non-crossing case
  // would hand the single-core no-cache run the same multi-pending
  // excitation and erase the coverage gap the caches provide.
  e.dual_case(0, 4);
  e.dual_case(2, 4);
  e.pair_conflict_case(4);
  e.pending_priority_case();

  e.masked_case(IcuSource::kOverflow);
  e.masked_case(IcuSource::kDivZero);
  e.masked_case(IcuSource::kUnaligned);
  e.masked_case(IcuSource::kSoftware);

  e.fold_fillers();
}

}  // namespace

std::unique_ptr<SelfTestRoutine> make_icu_test() {
  return std::make_unique<IcuTest>();
}

}  // namespace detstl::core
