// Generic boot-time STL routines: ALU, register file, shifter, branch unit,
// multiplier/divider. Together they form the library measured in Table I
// (the STL "without the two module-targeted programs"). Each follows the
// classic SBST pattern [8]: apply patterns, accumulate every observable
// result into the signature.

#include "core/routines.h"
#include "core/signature.h"

namespace detstl::core {

using namespace isa;

namespace {

constexpr u32 kPats[4] = {0xaaaaaaaa, 0x55555555, 0xff00ff00, 0x0000ffff};

// -----------------------------------------------------------------------------
// ALU: all R-type/I-type integer ops over complementary patterns, plus
// store/load round-trips through the data scratch area.
// -----------------------------------------------------------------------------

class AluTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "alu"; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string&) const override {
    const unsigned npat = std::min<unsigned>(env.patterns, 4);
    for (unsigned p = 0; p < npat; ++p) {
      a.li(R1, kPats[p]);
      a.li(R2, ~kPats[p]);
      a.li(R3, kPats[p] ^ 0x13571357);

      a.add(R4, R1, R2);
      emit_misr_acc(a, R4);
      a.sub(R4, R1, R2);
      emit_misr_acc(a, R4);
      a.and_(R4, R1, R3);
      emit_misr_acc(a, R4);
      a.or_(R4, R1, R3);
      emit_misr_acc(a, R4);
      a.xor_(R4, R2, R3);
      emit_misr_acc(a, R4);
      a.nor_(R4, R1, R3);
      emit_misr_acc(a, R4);
      a.slt(R4, R1, R2);
      emit_misr_acc(a, R4);
      a.sltu(R4, R1, R2);
      emit_misr_acc(a, R4);
      a.addi(R4, R1, 0x123);
      emit_misr_acc(a, R4);
      a.andi(R4, R1, 0xf0f0);
      emit_misr_acc(a, R4);
      a.ori(R4, R2, 0x0f0f);
      emit_misr_acc(a, R4);
      a.xori(R4, R3, 0xa5a5);
      emit_misr_acc(a, R4);

      // Data-path round trip (allocates the D$ line in the loading loop).
      emit_store_word(a, env, R4, R25, static_cast<i32>(4 * p));
      a.lw(R5, R25, static_cast<i32>(4 * p));
      emit_misr_acc(a, R5);
    }

    if (core_has_r64(env.kind)) {
      a.li(R2, kPats[0]);
      a.li(R3, kPats[1]);
      a.li(R4, ~kPats[0]);
      a.li(R5, ~kPats[1]);
      a.add64(R6, R2, R4);
      emit_misr_acc(a, R6);
      emit_misr_acc(a, R7);
      a.sub64(R6, R2, R4);
      emit_misr_acc(a, R6);
      a.xor64(R6, R2, R4);
      emit_misr_acc(a, R7);
      a.and64(R6, R2, R4);
      emit_misr_acc(a, R6);
      a.or64(R6, R2, R4);
      emit_misr_acc(a, R7);
    }
  }
};

// -----------------------------------------------------------------------------
// Register file: march-style — ascending writes of a base pattern, ascending
// read-back, then the complement. r21..r31 are harness-reserved, so the march
// covers r1..r20.
// -----------------------------------------------------------------------------

class RfMarchTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "rf-march"; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string&) const override {
    const unsigned npat = std::min<unsigned>(env.patterns, 2);
    for (unsigned p = 0; p < npat; ++p) {
      const u32 base = p == 0 ? 0xaaaa5555u : 0x5555aaaau;
      // Ascending write: each register gets pattern ^ index.
      for (unsigned r = 1; r <= 20; ++r)
        a.li(static_cast<Reg>(r), base ^ (r * 0x01010101u));
      // Ascending read-back.
      for (unsigned r = 1; r <= 20; ++r) emit_misr_acc(a, static_cast<Reg>(r));
      // Descending write of the complement, descending read-back.
      for (unsigned r = 20; r >= 1; --r)
        a.li(static_cast<Reg>(r), ~(base ^ (r * 0x01010101u)));
      for (unsigned r = 20; r >= 1; --r) emit_misr_acc(a, static_cast<Reg>(r));
    }
    (void)env;
  }
};

// -----------------------------------------------------------------------------
// Shifter: every shift amount for logical/arithmetic shifts, register and
// immediate forms.
// -----------------------------------------------------------------------------

class ShifterTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "shifter"; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string&) const override {
    const unsigned npat = std::min<unsigned>(env.patterns, 3);
    static constexpr u32 kShiftPats[3] = {0x80000001, 0xaaaaaaaa, 0xdeadbeef};
    for (unsigned p = 0; p < npat; ++p) {
      a.li(R1, kShiftPats[p]);
      for (unsigned sh = 0; sh < 32; sh += 1) {
        a.addi(R2, R0, static_cast<i32>(sh));
        a.sll(R3, R1, R2);
        emit_misr_acc(a, R3);
        a.srl(R3, R1, R2);
        emit_misr_acc(a, R3);
        a.sra(R3, R1, R2);
        emit_misr_acc(a, R3);
      }
      a.slli(R3, R1, 7);
      emit_misr_acc(a, R3);
      a.srli(R3, R1, 13);
      emit_misr_acc(a, R3);
      a.srai(R3, R1, 21);
      emit_misr_acc(a, R3);
    }
    (void)env;
  }
};

// -----------------------------------------------------------------------------
// Branch unit: every conditional branch taken and not taken, forward and
// backward, with path markers folded into the signature.
// -----------------------------------------------------------------------------

class BranchTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "branch"; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string& lbl) const override {
    (void)env;
    unsigned seq = 0;
    // (op, a, b) triples chosen so each predicate is exercised both ways.
    struct Case {
      Op op;
      u32 va, vb;
    };
    static constexpr Case kCases[] = {
        {Op::kBeq, 5, 5},          {Op::kBeq, 5, 6},
        {Op::kBne, 7, 8},          {Op::kBne, 9, 9},
        {Op::kBlt, 0xffffffff, 0}, {Op::kBlt, 1, 0},
        {Op::kBge, 3, 3},          {Op::kBge, 0xffffffff, 0},
        {Op::kBltu, 1, 2},         {Op::kBltu, 0xffffffff, 0},
        {Op::kBgeu, 0xffffffff, 1},{Op::kBgeu, 0, 1},
    };
    for (const Case& c : kCases) {
      const std::string t = lbl + "_t" + std::to_string(seq);
      const std::string j = lbl + "_j" + std::to_string(seq);
      ++seq;
      a.li(R1, c.va);
      a.li(R2, c.vb);
      a.addi(R3, R0, 1);  // path marker: 1 = fell through, 3 = taken
      switch (c.op) {
        case Op::kBeq: a.beq(R1, R2, t); break;
        case Op::kBne: a.bne(R1, R2, t); break;
        case Op::kBlt: a.blt(R1, R2, t); break;
        case Op::kBge: a.bge(R1, R2, t); break;
        case Op::kBltu: a.bltu(R1, R2, t); break;
        default: a.bgeu(R1, R2, t); break;
      }
      a.addi(R3, R3, 1);  // not taken
      a.beq(R0, R0, j);
      a.label(t);
      a.addi(R3, R3, 2);  // taken
      a.label(j);
      emit_misr_acc(a, R3);
    }
    // Backward branch: a small counted loop.
    a.addi(R4, R0, 5);
    a.addi(R5, R0, 0);
    a.label(lbl + "_loop");
    a.addi(R5, R5, 3);
    a.addi(R4, R4, -1);
    a.bne(R4, R0, lbl + "_loop");
    emit_misr_acc(a, R5);
    // Jump-and-link pair.
    a.jal(R20, lbl + "_land");
    a.label(lbl + "_land");
    emit_misr_acc(a, R20);
  }
};

// -----------------------------------------------------------------------------
// Multiplier / divider, including the architectural corner cases.
// -----------------------------------------------------------------------------

class MulDivTest final : public SelfTestRoutine {
 public:
  std::string name() const override { return "muldiv"; }

  void emit_body(Assembler& a, const RoutineEnv& env,
                 const std::string&) const override {
    (void)env;
    struct Pair {
      u32 x, y;
    };
    static constexpr Pair kPairs[] = {
        {0x00000003, 0x00000007}, {0xaaaaaaaa, 0x55555555},
        {0x7fffffff, 0x00000002}, {0x80000000, 0xffffffff},  // INT_MIN / -1
        {0xffffffff, 0x00010001}, {0x00000000, 0x12345678},
    };
    for (const Pair& p : kPairs) {
      a.li(R1, p.x);
      a.li(R2, p.y);
      a.mul(R3, R1, R2);
      emit_misr_acc(a, R3);
      a.mulh(R3, R1, R2);
      emit_misr_acc(a, R3);
      a.div(R3, R1, R2);
      emit_misr_acc(a, R3);
      a.divu(R3, R1, R2);
      emit_misr_acc(a, R3);
      a.rem(R3, R1, R2);
      emit_misr_acc(a, R3);
    }
  }
};

}  // namespace

std::unique_ptr<SelfTestRoutine> make_alu_test() { return std::make_unique<AluTest>(); }
std::unique_ptr<SelfTestRoutine> make_rf_march_test() {
  return std::make_unique<RfMarchTest>();
}
std::unique_ptr<SelfTestRoutine> make_shifter_test() {
  return std::make_unique<ShifterTest>();
}
std::unique_ptr<SelfTestRoutine> make_branch_test() {
  return std::make_unique<BranchTest>();
}
std::unique_ptr<SelfTestRoutine> make_muldiv_test() {
  return std::make_unique<MulDivTest>();
}

std::vector<std::unique_ptr<SelfTestRoutine>> make_boot_stl() {
  std::vector<std::unique_ptr<SelfTestRoutine>> stl;
  stl.push_back(make_alu_test());
  stl.push_back(make_rf_march_test());
  stl.push_back(make_shifter_test());
  stl.push_back(make_branch_test());
  stl.push_back(make_muldiv_test());
  return stl;
}

}  // namespace detstl::core
