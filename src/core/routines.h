#pragma once
// Factory functions for the Software Test Library routines.

#include <memory>
#include <vector>

#include "core/routine.h"

namespace detstl::core {

/// Forwarding-logic / HDCU test per [19]. `with_perf_counters` folds the
/// HDCU stall + split counter deltas into the signature (the full algorithm
/// graded in Table III); without, the value-only variant of Table II.
std::unique_ptr<SelfTestRoutine> make_fwd_test(bool with_perf_counters);

/// Synchronous imprecise interrupt (ICU) test per [21]: raises each event
/// source under varying pipeline-fill patterns; the ISR folds cause bits and
/// the recognition distance into the signature.
std::unique_ptr<SelfTestRoutine> make_icu_test();

/// Generic boot-time STL routines (the Table I workload).
std::unique_ptr<SelfTestRoutine> make_alu_test();
std::unique_ptr<SelfTestRoutine> make_rf_march_test();
std::unique_ptr<SelfTestRoutine> make_shifter_test();
std::unique_ptr<SelfTestRoutine> make_branch_test();
std::unique_ptr<SelfTestRoutine> make_muldiv_test();

/// The boot-time STL of a core (paper Sec. IV-B: the library without the two
/// module-targeted programs).
std::vector<std::unique_ptr<SelfTestRoutine>> make_boot_stl();

/// A routine whose body is assembly text (isa/asmparser.h fragment syntax).
/// The body must follow the register conventions of routine.h; labels are
/// auto-prefixed so several text routines compose in one program.
std::unique_ptr<SelfTestRoutine> make_text_routine(std::string name,
                                                   std::string body_source,
                                                   bool needs_isr = false,
                                                   u32 data_bytes = 64);

}  // namespace detstl::core
