#include "core/wrapper.h"

#include <algorithm>
#include <stdexcept>

#include "core/signature.h"

namespace detstl::core {

using namespace isa;

const char* wrapper_name(WrapperKind k) {
  switch (k) {
    case WrapperKind::kPlain: return "plain";
    case WrapperKind::kCacheBased: return "cache-based";
    case WrapperKind::kTcmBased: return "tcm-based";
  }
  return "?";
}

namespace {

bool use_pcs(const SelfTestRoutine& r, const BuildEnv& env) {
  return env.use_perf_counters || r.wants_perf_counters();
}

RoutineEnv routine_env(const SelfTestRoutine& r, const BuildEnv& env) {
  RoutineEnv re;
  re.kind = env.kind;
  re.data_base = env.data_base;
  re.use_perf_counters = use_pcs(r, env);
  re.dummy_load_after_store = !env.write_allocate && !env.omit_nwa_dummy_loads;
  re.patterns = env.patterns;
  return re;
}

u32 mailbox_of(const BuildEnv& env) {
  return env.mailbox != 0 ? env.mailbox : soc::mailbox_addr(env.core_id);
}

/// Counter-snapshot slots at the top of the private DTCM (single-cycle
/// access, never on the bus, away from routine data).
constexpr u32 kSnapBase = mem::kDtcmBase + mem::kDtcmSize - 16;

/// Per-iteration prologue: seed the signature, snapshot the performance
/// counters, clear the ISR accumulator. The PC-based signature covers the
/// HDCU stalls and splits (the [19] algorithm's observable) plus the IF/MEM
/// stall counters — the ones Fig. 1 shows destabilising under contention.
void emit_iteration_prologue(Assembler& a, const SelfTestRoutine& r,
                             const BuildEnv& env) {
  a.li(R29, kSignatureSeed);
  if (r.needs_isr()) a.addi(R28, R0, 0);
  if (use_pcs(r, env)) {
    a.csrr(R22, Csr::kHdcuStall);
    a.csrr(R21, Csr::kSplit);
    a.li(R26, kSnapBase);
    a.csrr(R27, Csr::kIfStall);
    a.sw(R27, R26, 0);
    a.csrr(R27, Csr::kMemStall);
    a.sw(R27, R26, 4);
  }
}

/// Per-iteration epilogue: fold counter deltas and the ISR accumulator into
/// the signature.
void emit_iteration_epilogue(Assembler& a, const SelfTestRoutine& r,
                             const BuildEnv& env) {
  if (use_pcs(r, env)) {
    a.csrr(R27, Csr::kHdcuStall);
    a.sub(R27, R27, R22);
    emit_misr_acc(a, R27);
    a.csrr(R27, Csr::kSplit);
    a.sub(R27, R27, R21);
    emit_misr_acc(a, R27);
    // Both snapshots loaded up front: the MISR fold clobbers r26.
    a.li(R26, kSnapBase);
    a.lw(R22, R26, 0);
    a.lw(R21, R26, 4);
    a.csrr(R27, Csr::kIfStall);
    a.sub(R27, R27, R22);
    emit_misr_acc(a, R27);
    a.csrr(R27, Csr::kMemStall);
    a.sub(R27, R27, R21);
    emit_misr_acc(a, R27);
  }
  if (r.needs_isr()) emit_misr_acc(a, R28);
}

/// Signature check + mailbox report + halt/ret, and the golden constant.
/// Caches are disabled first: the mailbox must be written uncached so the
/// verdict survives the next test's invalidate and is visible off-core
/// (the private L1s are not coherent).
void emit_check(Assembler& a, const BuildEnv& env, u32 golden,
                const std::string& p) {
  a.csrw(Csr::kCacheCfg, R0);
  a.sw(R29, R24, 4);  // observed signature -> mailbox word 1
  a.la(R1, p + "_golden");
  a.lw(R2, R1, 0);
  a.bne(R29, R2, p + "_fail");
  a.addi(R3, R0, static_cast<i32>(soc::kStatusPass));
  a.sw(R3, R24, 0);
  a.beq(R0, R0, p + "_end");
  a.label(p + "_fail");
  a.addi(R3, R0, static_cast<i32>(soc::kStatusFail));
  a.sw(R3, R24, 0);
  a.label(p + "_end");
  if (env.as_subroutine) {
    a.ret();
  } else {
    a.halt();
  }
  a.align_data(4);
  a.label(p + "_golden");
  a.word(golden);
}

void emit_isr_setup(Assembler& a, const std::string& isr_label) {
  a.la(R1, isr_label);
  a.csrw(Csr::kMtvec, R1);
  a.li(R1, 0xf);
  a.csrw(Csr::kMie, R1);
  a.li(R1, kMstatusIe);
  a.csrw(Csr::kMstatus, R1);
}

void emit_plain(Assembler& a, const SelfTestRoutine& r, const BuildEnv& env,
                u32 golden, const std::string& p) {
  a.csrw(Csr::kCacheCfg, R0);  // caches off: the legacy single-core structure
  if (r.needs_isr()) emit_isr_setup(a, p + "_isr");
  emit_iteration_prologue(a, r, env);
  r.emit_body(a, routine_env(r, env), p + "_b");
  emit_iteration_epilogue(a, r, env);
  emit_check(a, env, golden, p);
  if (r.needs_isr()) {
    a.label(p + "_isr");
    emit_icu_isr(a);
  }
}

void emit_cache_based(Assembler& a, const SelfTestRoutine& r, const BuildEnv& env,
                      u32 golden, const std::string& p) {
  // Fig. 2b block b: invalidate both private caches, then enable them.
  a.li(R1, kCacheOpInvI | kCacheOpInvD);
  a.csrw(Csr::kCacheOp, R1);
  u32 cfg = kCacheCfgIEn | kCacheCfgDEn;
  if (env.write_allocate) cfg |= kCacheCfgWriteAllocate;
  a.li(R1, cfg);
  a.csrw(Csr::kCacheCfg, R1);
  if (r.needs_isr()) emit_isr_setup(a, p + "_isr");

  // Fig. 2b blocks c/d: the body executed twice. Iteration 1 is the loading
  // loop (signature discarded by re-seeding), iteration 2 the execution loop.
  a.addi(R30, R0, static_cast<i32>(env.cache_loop_iterations));
  // Enter the loop through a taken jump: the redirect discards the fetch
  // queue, so the line holding the loop entry — prefetched before the
  // invalidate committed — is re-fetched through the (now empty) I-cache
  // during the loading pass. Falling through instead leaves that line
  // stale-but-executed, and its refill fires inside the execution loop:
  // the one bus access the paper's invariant forbids (caught by
  // trace::audit_determinism).
  a.jal(R0, p + "_loop");
  a.label(p + "_loop");
  emit_iteration_prologue(a, r, env);
  r.emit_body(a, routine_env(r, env), p + "_b");
  emit_iteration_epilogue(a, r, env);
  // Pin the decrement + loop branch to the start of their own cache line
  // (the alignment NOPs are loop-body tail, warm in both passes). This
  // leaves 24 warm bytes after the branch, which covers the front end's
  // fetch-ahead at both loop boundaries: at the end of the loading pass the
  // wrong-path packets past the taken branch all hit (an unaligned branch
  // near its line end lets them miss, and the discarded refill then blocks
  // the execution loop's first fetch for a contention-dependent drain —
  // memsys ifetch_cancel semantics); at the final fall-through the fetch
  // stream reaches the check epilogue's first cold line only after the
  // counter write's EX-time phase marker, so the miss is attributed to the
  // signature check, not the execution loop.
  a.align(32);  // mem::MemSystemConfig I-cache line size
  a.addi(R30, R30, -1);
  a.bne(R30, R0, p + "_loop");

  emit_check(a, env, golden, p);
  if (r.needs_isr()) {
    a.label(p + "_isr");
    emit_icu_isr(a);
  }
}

void emit_tcm_based(Assembler& a, const SelfTestRoutine& r, const BuildEnv& env,
                    u32 golden, const std::string& p) {
  a.csrw(Csr::kCacheCfg, R0);

  // Copy the routine block from flash into the instruction TCM. Unrolled by
  // four words (the block is 16-byte padded): the sequential data reads ride
  // the flash controller's data-side line buffer.
  a.la(R1, p + "_tcm_src");
  a.la(R2, p + "_tcm_end");
  a.li(R3, env.itcm_dst);
  a.label(p + "_copy");
  for (i32 off = 0; off < 16; off += 4) {
    a.lw(R4, R1, off);
    a.sw(R4, R3, off);
  }
  a.addi(R1, R1, 16);
  a.addi(R3, R3, 16);
  a.bne(R1, R2, p + "_copy");

  if (r.needs_isr()) {
    // Vector to the ISR's TCM copy: itcm_dst + (isr - tcm_src).
    a.la(R1, p + "_tcm_src");
    a.la(R2, p + "_isr");
    a.sub(R2, R2, R1);
    a.li(R1, env.itcm_dst);
    a.add(R2, R2, R1);
    a.csrw(Csr::kMtvec, R2);
    a.li(R1, 0xf);
    a.csrw(Csr::kMie, R1);
    a.li(R1, kMstatusIe);
    a.csrw(Csr::kMstatus, R1);
  }

  a.li(R20, env.itcm_dst);
  a.jalr(R31, R20, 0);  // execute from the TCM, return below

  emit_check(a, env, golden, p);

  // The copied block. Internal control flow is PC-relative, data references
  // absolute, so the block is position-independent. 16-byte alignment at both
  // ends matches the copy loop's unroll granule.
  a.align(16);
  a.label(p + "_tcm_src");
  emit_iteration_prologue(a, r, env);
  r.emit_body(a, routine_env(r, env), p + "_b");
  emit_iteration_epilogue(a, r, env);
  a.ret();
  if (r.needs_isr()) {
    a.label(p + "_isr");
    emit_icu_isr(a);
  }
  a.align(16);  // pad to the copy-loop unroll granule
  a.label(p + "_tcm_end");
}

}  // namespace

analysis::AnalysisConfig lint_config(const SelfTestRoutine& r, WrapperKind w,
                                     const BuildEnv& env) {
  analysis::AnalysisConfig cfg;
  // Only the cache-based wrapper's guarantee rests on L1 residence; plain
  // and TCM wrappers get the structural lints only.
  cfg.check_cache_determinism = w == WrapperKind::kCacheBased;
  cfg.write_allocate = env.write_allocate;
  cfg.use_perf_counters = use_pcs(r, env);
  cfg.loop_symbol = "t0_loop";
  cfg.data_regions = {{env.data_base, std::max<u32>(r.data_bytes(), 4)}};
  cfg.shared_regions = {{mailbox_of(env), soc::kMailboxStride}};
  return cfg;
}

std::string emit_wrapped(Assembler& a, const SelfTestRoutine& r, WrapperKind w,
                         const BuildEnv& env, u32 golden,
                         const std::string& p) {
  a.label(p + "_entry");
  a.li(R24, mailbox_of(env));
  a.li(R25, env.data_base);
  a.sw(R0, R24, 0);  // status = running
  switch (w) {
    case WrapperKind::kPlain:
      emit_plain(a, r, env, golden, p);
      break;
    case WrapperKind::kCacheBased:
      emit_cache_based(a, r, env, golden, p);
      break;
    case WrapperKind::kTcmBased:
      emit_tcm_based(a, r, env, golden, p);
      break;
  }
  return p + "_entry";
}

Program assemble_wrapped(const SelfTestRoutine& r, WrapperKind w,
                         const BuildEnv& env, u32 golden) {
  Assembler a(env.code_base);
  const std::string entry = emit_wrapped(a, r, w, env, golden, "t0");
  a.set_entry(entry);
  return a.assemble();
}

BuiltTest build_wrapped(const SelfTestRoutine& r, WrapperKind w, const BuildEnv& env) {
  auto assemble = [&](u32 golden, bool as_sub) {
    BuildEnv e = env;
    e.as_subroutine = as_sub;
    Assembler a(env.code_base);
    const std::string entry = emit_wrapped(a, r, w, e, golden, "t0");
    a.set_entry(entry);
    return a.assemble();
  };

  // Pass 1: placeholder golden, fault-free isolated run (standalone variant).
  const Program p0 = assemble(0, false);
  soc::Soc soc;
  soc.load_program(p0);
  soc.set_boot(env.core_id, p0.entry());
  soc.reset();
  const auto res = soc.run(5'000'000);
  if (res.timed_out)
    throw std::runtime_error("golden calibration timed out: " + r.name());
  const TestVerdict v = read_verdict(soc, mailbox_of(env));

  BuiltTest bt;
  bt.wrapper = w;
  bt.env = env;
  bt.golden = v.signature;
  bt.calib_cycles = res.cycles;
  bt.name = r.name();
  bt.prog = assemble(bt.golden, env.as_subroutine);

  u32 hi = env.code_base;
  for (const auto& seg : bt.prog.segments()) hi = std::max(hi, seg.end());
  bt.code_bytes = hi - env.code_base;

  if (w == WrapperKind::kTcmBased) {
    bt.tcm_bytes = bt.prog.symbol("t0_tcm_end") - bt.prog.symbol("t0_tcm_src");
  }
  if (w == WrapperKind::kCacheBased) {
    const u32 icache_bytes = mem::MemSystemConfig{}.icache.size_bytes;
    if (bt.code_bytes > icache_bytes) {
      throw AsmError(r.name() + ": cache-based program (" +
                     std::to_string(bt.code_bytes) +
                     " B) exceeds the I-cache (" + std::to_string(icache_bytes) +
                     " B); split the routine (paper rule 2.2)");
    }
  }
  if (env.lint != LintMode::kOff) {
    // Lint the standalone (halt-terminated) variant: suite programs splice
    // the subroutine form into a larger image that is linted as a whole.
    bt.lint = analysis::analyze(env.as_subroutine ? p0 : bt.prog,
                                lint_config(r, w, env));
    if (env.lint == LintMode::kEnforce && !bt.lint.clean()) {
      throw analysis::AnalysisError(
          r.name() + " (" + wrapper_name(w) + "): static determinism check "
          "failed\n" + bt.lint.format(), bt.lint);
    }
  }
  return bt;
}

FallbackPair build_with_fallback(const SelfTestRoutine& r, const BuildEnv& env,
                                 u32 fallback_code_base) {
  FallbackPair pair;
  pair.cached = build_wrapped(r, WrapperKind::kCacheBased, env);
  BuildEnv fb = env;
  fb.code_base = fallback_code_base;
  pair.fallback = build_wrapped(r, WrapperKind::kPlain, fb);
  pair.signature_stable = pair.cached.golden == pair.fallback.golden;
  return pair;
}

TestVerdict read_verdict(const soc::Soc& soc, u32 mailbox) {
  TestVerdict v;
  v.status = soc.debug_read32(mailbox);
  v.signature = soc.debug_read32(mailbox + 4);
  return v;
}

}  // namespace detstl::core
