#pragma once
// Scenario-matrix proofs (stlint --matrix): sweep the abstract cache-state
// interpreter (analysis/absint.h) over cache geometry x write-allocate mode
// x active-core count x flash/SRAM placement, and require every bundled
// routine to discharge its determinism obligations at every point. The
// verdict table is stable text (tests/golden/stlint_matrix.txt) so any
// wrapper or analysis change that weakens a proof shows up as a golden diff.
//
// Each matrix point grades *every* active core: core c's wrapped program is
// assembled at its own placement and analysed with the other cores' reserved
// regions as peers, so the cross-core-disjointness obligation is exercised
// for real multi-core layouts, not just single-core ones.

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "core/stl.h"

namespace detstl::core {

/// One swept configuration.
struct MatrixPoint {
  mem::MemSystemConfig mem;
  bool write_allocate = true;
  unsigned num_cores = 1;   // graded cores sharing the bus (1..3)
  unsigned placement = 0;   // 0 = quickstart bases, 1 = shifted variant
};

/// Verdict for one (configuration, routine, core) triple.
struct MatrixFailure {
  std::string routine;
  unsigned core = 0;
  std::string detail;  // first refuted/unproven obligation
};

struct MatrixCell {
  MatrixPoint point;
  unsigned proofs = 0;    // (routine, core) pairs analysed
  unsigned proven = 0;    // ... with every obligation proven
  u32 d_max = 0;          // worst-case non-graded-core bus delay (cycles)
  std::vector<MatrixFailure> failures;
};

struct MatrixReport {
  std::vector<MatrixCell> cells;
  unsigned configurations() const { return static_cast<unsigned>(cells.size()); }
  unsigned proven_configurations() const;
  bool all_proven() const;
};

/// The default sweep: I-cache {8,16,32} KiB x {2,4} ways x {16,32} B lines
/// (D-cache at half the size, same ways/line), write-allocate {on,off},
/// {1,2,3} graded cores, {2} placements — 144 configurations.
std::vector<MatrixPoint> default_matrix_grid();

/// Placement -> per-core build environment (placement 0 is quickstart_env).
BuildEnv matrix_env(const MatrixPoint& p, unsigned core_id);

/// Run the sweep. Routines defaults to the whole registry when empty.
MatrixReport run_matrix(const std::vector<MatrixPoint>& grid,
                        const std::vector<const RoutineEntry*>& routines);

/// Stable fixed-width verdict table (the golden artefact).
std::string format_matrix(const MatrixReport& rep);

/// Machine-readable variant (stlint --matrix --json).
std::string matrix_json(const MatrixReport& rep);

}  // namespace detstl::core
