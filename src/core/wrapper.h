#pragma once
// Execution wrappers around self-test routine bodies:
//
//  * kPlain      — the single-core structure of Fig. 2a: run the body once,
//                  compare the signature, report, halt.
//  * kCacheBased — the paper's contribution (Fig. 2b): invalidate the private
//                  caches, enable them, run the body twice in a loop. The
//                  first pass (loading loop) pulls code into the I-cache and
//                  data into the D-cache and computes no checked signature;
//                  the second pass (execution loop) runs entirely from the
//                  caches, decoupled from bus contention, and its signature
//                  is compared.
//  * kTcmBased   — the Table IV comparison strategy: copy the routine into
//                  the instruction TCM at boot, execute it from there. Same
//                  determinism, but the TCM bytes stay permanently reserved.
//
// build_wrapped() performs the two-pass golden-signature calibration: the
// program is assembled with a placeholder, executed fault-free on an isolated
// single-core SoC (the paper's "fault-free scenario"), and re-assembled with
// the observed signature as the expected-value constant.

#include <memory>

#include "analysis/analyzer.h"
#include "core/routine.h"
#include "isa/program.h"
#include "soc/soc.h"

namespace detstl::core {

enum class WrapperKind : u8 { kPlain, kCacheBased, kTcmBased };

const char* wrapper_name(WrapperKind k);

/// Register conventions every wrapper obeys (emit_wrapped). They double as
/// the phase-marker contract observers rely on: the fault campaign's recorder
/// tap derives the signature-at-marker from writes to these registers, and
/// trace::PhaseTracker recognises the cache-based wrapper's loading loop /
/// execution loop / signature check from the committed r30 values
/// (iterations .. 2 = loading, 1 = execution, 0 = check).
inline constexpr unsigned kSignatureReg = 29;    // running MISR signature
inline constexpr unsigned kLoopCounterReg = 30;  // cache-wrapper loop counter

/// What build_wrapped() does with the static determinism verifier
/// (analysis/analyzer.h): skip it, attach its report to the BuiltTest
/// (default), or additionally throw AnalysisError on any error-severity
/// finding.
enum class LintMode : u8 { kOff, kReport, kEnforce };

struct BuildEnv {
  u32 code_base = mem::kFlashBase + 0x1000;  // flash placement (position knob)
  u32 data_base = mem::kSramBase + 0x8000;   // cacheable scratch
  u32 mailbox = 0;                           // 0 = mailbox_addr(core_id)
  unsigned core_id = 0;
  isa::CoreKind kind = isa::CoreKind::kA;
  bool write_allocate = true;
  bool use_perf_counters = false;
  unsigned patterns = 4;
  /// Ablation knobs. cache_loop_iterations: total body executions of the
  /// cache-based wrapper (2 = loading + execution loop, the paper's recipe;
  /// 1 = no loading loop). omit_nwa_dummy_loads: disable the no-write-allocate
  /// dummy-load fix-up (paper Sec. III step 1) to demonstrate why it exists.
  unsigned cache_loop_iterations = 2;
  bool omit_nwa_dummy_loads = false;
  u32 itcm_dst = mem::kItcmBase;  // TCM wrapper copy target
  /// Suite mode: end with `ret` instead of `halt` so a scheduler can chain
  /// routines; the caller provides prologue/halt.
  bool as_subroutine = false;
  /// Static verification of the calibrated program (see LintMode).
  LintMode lint = LintMode::kReport;
};

struct BuiltTest {
  isa::Program prog;
  WrapperKind wrapper = WrapperKind::kPlain;
  BuildEnv env;
  u32 golden = 0;        // calibrated fault-free signature
  u32 code_bytes = 0;    // program code+constants footprint
  u32 tcm_bytes = 0;     // ITCM bytes permanently reserved (TCM wrapper only)
  u64 calib_cycles = 0;  // fault-free single-core execution time (reset->halt)
  std::string name;
  /// Static determinism verdict (empty when env.lint == LintMode::kOff).
  analysis::Report lint;
};

/// The verifier configuration build_wrapped() uses for a given build —
/// exposed so tools (stlint) lint exactly what the builder would enforce.
analysis::AnalysisConfig lint_config(const SelfTestRoutine& r, WrapperKind w,
                                     const BuildEnv& env);

/// Emit the wrapped routine into `a` with the given expected signature.
/// Returns the label of the entry point.
std::string emit_wrapped(isa::Assembler& a, const SelfTestRoutine& r,
                         WrapperKind w, const BuildEnv& env, u32 golden,
                         const std::string& lbl_prefix);

/// Assemble + calibrate (two-pass). Throws AsmError if the cache-based
/// program exceeds the I-cache size (the paper's rule 2.2 would then require
/// splitting the routine).
BuiltTest build_wrapped(const SelfTestRoutine& r, WrapperKind w, const BuildEnv& env);

/// Assemble without the calibration run — the static-analysis fast path
/// (stlint --matrix sweeps hundreds of placements). The image is bit-for-bit
/// what build_wrapped() produces except for the expected-signature constant,
/// which is immaterial to every cache-residency argument.
isa::Program assemble_wrapped(const SelfTestRoutine& r, WrapperKind w,
                              const BuildEnv& env, u32 golden = 0);

/// A routine built twice for the supervisor's degradation ladder
/// (runtime/supervisor.h): the cache-based program plus an uncacheable plain
/// rebuild at `fallback_code_base` — the paper's CacheCfg fallback path.
/// Each program carries its own calibrated golden; they coincide
/// (`signature_stable`) whenever the signature folds only architectural
/// values, and diverge for timing-folding routines (perf counters, ICU
/// recognition distance).
struct FallbackPair {
  BuiltTest cached;    // WrapperKind::kCacheBased at env.code_base
  BuiltTest fallback;  // WrapperKind::kPlain at fallback_code_base
  bool signature_stable = false;
};

FallbackPair build_with_fallback(const SelfTestRoutine& r, const BuildEnv& env,
                                 u32 fallback_code_base);

/// Read the verdict a wrapped test left in its mailbox.
struct TestVerdict {
  u32 status = 0;  // soc::kStatusRunning/Pass/Fail
  u32 signature = 0;
};
TestVerdict read_verdict(const soc::Soc& soc, u32 mailbox);

}  // namespace detstl::core
