#include "core/stl.h"

#include <stdexcept>

#include "core/routines.h"

namespace detstl::core {

using namespace isa;

namespace {

/// Phase barrier: atomically announce arrival, then spin (uncached) until
/// every core of the phase has arrived. Counters are monotonic, one per
/// phase, so no reset/reuse races exist.
void emit_barrier(Assembler& a, const SuiteSpec& spec, unsigned phase,
                  const std::string& lbl) {
  a.csrw(Csr::kCacheCfg, R0);  // spin uncached; L1s are not coherent
  a.li(R1, spec.barrier_base + 4 * phase);
  a.addi(R2, R0, 1);
  a.amoadd(R3, R1, R2);
  a.li(R4, static_cast<u32>(spec.barrier_cores));
  a.label(lbl);
  a.lw(R3, R1, 0);
  a.bltu(R3, R4, lbl);
}

Program assemble_suite(const SuiteSpec& spec, const std::vector<u32>& goldens,
                       unsigned barrier_cores) {
  Assembler a(spec.env.code_base);
  a.label("main");
  a.set_entry("main");

  // Calls first, bodies after: `jal` has a ±1 MiB range, sufficient here.
  for (unsigned i = 0; i < spec.routines.size(); ++i) {
    a.jal(R31, "routine" + std::to_string(i));
    if (spec.barriers) {
      SuiteSpec bs = spec;
      bs.barrier_cores = barrier_cores;
      emit_barrier(a, bs, i, "barwait" + std::to_string(i));
    }
  }
  a.halt();

  for (unsigned i = 0; i < spec.routines.size(); ++i) {
    BuildEnv env = spec.env;
    env.as_subroutine = true;
    env.mailbox = spec.results_base + 8 * i;
    a.align(8);
    a.label("routine" + std::to_string(i));
    emit_wrapped(a, *spec.routines[i], spec.wrapper, env, goldens[i],
                 "r" + std::to_string(i));
  }
  return a.assemble();
}

}  // namespace

BuiltSuite build_suite(const SuiteSpec& spec_in) {
  SuiteSpec spec = spec_in;
  if (spec.results_base == 0) spec.results_base = default_results_base(spec.env.core_id);
  if (spec.barrier_base == 0) spec.barrier_base = kDefaultBarrierBase;

  // Pass 1: placeholder goldens, fault-free isolated run (barriers pass with
  // a single arrival).
  std::vector<u32> goldens(spec.routines.size(), 0);
  const Program p0 = assemble_suite(spec, goldens, 1);

  soc::Soc soc;
  soc.load_program(p0);
  soc.set_boot(spec.env.core_id, p0.entry());
  soc.reset();
  const auto res = soc.run(20'000'000);
  if (res.timed_out) throw std::runtime_error("suite calibration timed out");

  BuiltSuite out;
  out.results_base = spec.results_base;
  out.calib_cycles = res.cycles;
  for (unsigned i = 0; i < spec.routines.size(); ++i) {
    goldens[i] = soc.debug_read32(spec.results_base + 8 * i + 4);
    out.goldens.push_back(goldens[i]);
    out.names.push_back(spec.routines[i]->name());
  }

  out.prog = assemble_suite(spec, goldens, spec.barrier_cores);
  u32 hi = spec.env.code_base;
  for (const auto& seg : out.prog.segments()) hi = std::max(hi, seg.end());
  out.code_bytes = hi - spec.env.code_base;
  return out;
}

std::vector<TestVerdict> read_suite_verdicts(const soc::Soc& soc,
                                             const BuiltSuite& suite) {
  std::vector<TestVerdict> v;
  for (unsigned i = 0; i < suite.goldens.size(); ++i)
    v.push_back(read_verdict(soc, suite.results_base + 8 * i));
  return v;
}

const std::vector<RoutineEntry>& routine_registry() {
  static const std::vector<RoutineEntry> kRoutines = {
      {"alu", [] { return make_alu_test(); }},
      {"rf-march", [] { return make_rf_march_test(); }},
      {"shifter", [] { return make_shifter_test(); }},
      {"branch", [] { return make_branch_test(); }},
      {"muldiv", [] { return make_muldiv_test(); }},
      {"fwd", [] { return make_fwd_test(false); }},
      {"fwd-pc", [] { return make_fwd_test(true); }},
      {"icu", [] { return make_icu_test(); }},
  };
  return kRoutines;
}

const RoutineEntry* find_routine(const std::string& name) {
  for (const auto& e : routine_registry())
    if (name == e.name) return &e;
  return nullptr;
}

}  // namespace detstl::core
