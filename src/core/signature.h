#pragma once
// Software MISR used by the self-test routines to compress results into the
// test signature (paper Sec. I: results are accumulated into a signature that
// is compared against the fault-free value). The same formula exists in
// assembly (emit_misr_acc) and here for harness-side mirroring.

#include "common/bitutil.h"

namespace detstl::core {

inline constexpr u32 kSignatureSeed = 0x5eed5eedu;

/// One MISR step: rotate-left-1 then XOR the new value.
inline u32 misr_step(u32 sig, u32 value) {
  return ((sig << 1) | (sig >> 31)) ^ value;
}

}  // namespace detstl::core
