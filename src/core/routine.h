#pragma once
// Self-test routine abstraction.
//
// A routine contributes only its *body*: the instruction sequence that
// excites the target module and folds observed values into the signature
// register. Execution structure (plain / cache-based loading+execution loop /
// TCM copy) is added by the wrapper builder (wrapper.h), matching the
// paper's Fig. 2 decomposition.
//
// Register conventions (bodies must respect them):
//   r29  signature (MISR)
//   r30  wrapper loop counter
//   r28  ISR accumulator      (ICU tests)
//   r26, r27  MISR/ISR scratch
//   r24  mailbox pointer, r25 data-base pointer (wrapper-owned)
//   r22, r21  performance-counter snapshots (wrapper-owned)
//   r31  link register (suite mode)
// Bodies therefore compute in r1..r20 and must not branch on data except
// under fault (paper Sec. III rule 2.1).

#include <string>

#include "isa/assembler.h"
#include "isa/events.h"

namespace detstl::core {

struct RoutineEnv {
  isa::CoreKind kind = isa::CoreKind::kA;
  u32 data_base = 0;       // cacheable SRAM scratch area for the routine
  bool use_perf_counters = false;
  /// No-write-allocate fix-up (paper Sec. III step 1): follow each store with
  /// a dummy load of the same address so the line is allocated during the
  /// loading loop.
  bool dummy_load_after_store = false;
  /// Pattern depth: how many data patterns each excitation case applies.
  unsigned patterns = 4;
};

class SelfTestRoutine {
 public:
  virtual ~SelfTestRoutine() = default;

  virtual std::string name() const = 0;

  /// Emit the test body once. `lbl` is a unique label prefix (the body must
  /// prefix all its labels with it so routines can be combined).
  virtual void emit_body(isa::Assembler& a, const RoutineEnv& env,
                         const std::string& lbl) const = 0;

  /// ICU-style routines need the trap vector + interrupt-enable setup and an
  /// ISR block emitted alongside the body.
  virtual bool needs_isr() const { return false; }

  /// Routines whose algorithm folds the performance counters into the
  /// signature (e.g. the full [19] HDCU test). The wrapper honours this in
  /// addition to BuildEnv::use_perf_counters.
  virtual bool wants_perf_counters() const { return false; }

  /// Bytes of scratch data the body uses at env.data_base.
  virtual u32 data_bytes() const { return 64; }
};

// --- shared emission helpers ----------------------------------------------------

/// Fold `value` into the signature r29 (clobbers r26/r27).
void emit_misr_acc(isa::Assembler& a, isa::Reg value);

/// Fold `value` into the ISR accumulator r28 (clobbers r26/r27).
void emit_misr_acc_isr(isa::Assembler& a, isa::Reg value);

/// The standard ISR for imprecise-interrupt tests: folds MCAUSE and the
/// recognition distance (MEPC - MFPC) into r28, then returns.
void emit_icu_isr(isa::Assembler& a);

/// Store with the optional no-write-allocate dummy-load fix-up.
void emit_store_word(isa::Assembler& a, const RoutineEnv& env, isa::Reg data,
                     isa::Reg base, i32 offset);

}  // namespace detstl::core
