#include "core/scenario_matrix.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "core/routines.h"

namespace detstl::core {

namespace {

using analysis::AbsIntResult;
using analysis::AddrRange;
using analysis::Obligation;
using analysis::ObligationStatus;

/// One assembled per-core program plus the regions it reserves (its data
/// contract and every image segment) — what peers must stay disjoint from.
struct CoreImage {
  isa::Program prog;
  BuildEnv env;
  std::vector<AddrRange> reserved;
};

CoreImage build_core_image(const SelfTestRoutine& r, const MatrixPoint& p,
                           unsigned core_id) {
  CoreImage ci;
  ci.env = matrix_env(p, core_id);
  ci.prog = assemble_wrapped(r, WrapperKind::kCacheBased, ci.env);
  ci.reserved.push_back(
      {ci.env.data_base, std::max<u32>(r.data_bytes(), 4)});
  for (const auto& seg : ci.prog.segments())
    ci.reserved.push_back({seg.base, static_cast<u32>(seg.bytes.size())});
  return ci;
}

std::string first_problem(const AbsIntResult& ai) {
  if (!ai.analyzable) return "not analyzable: " + ai.not_analyzable_why;
  for (const Obligation& o : ai.obligations) {
    if (o.status == ObligationStatus::kRefuted ||
        o.status == ObligationStatus::kUnproven) {
      return std::string(analysis::obligation_name(o.kind)) + " " +
             analysis::obligation_status_name(o.status) + ": " + o.detail;
    }
  }
  return "unknown";
}

std::string geom(const mem::CacheConfig& c) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%2uK/%uw/%2uB", c.size_bytes / 1024, c.ways,
                c.line_bytes);
  return buf;
}

}  // namespace

unsigned MatrixReport::proven_configurations() const {
  unsigned n = 0;
  for (const auto& c : cells) n += c.proven == c.proofs ? 1 : 0;
  return n;
}

bool MatrixReport::all_proven() const {
  return proven_configurations() == configurations();
}

std::vector<MatrixPoint> default_matrix_grid() {
  std::vector<MatrixPoint> grid;
  for (const u32 ikb : {8u, 16u, 32u}) {
    for (const unsigned ways : {2u, 4u}) {
      for (const u32 line : {16u, 32u}) {
        for (const bool wa : {true, false}) {
          for (const unsigned cores : {1u, 2u, 3u}) {
            for (const unsigned place : {0u, 1u}) {
              MatrixPoint p;
              p.mem.icache = {.size_bytes = ikb * 1024, .ways = ways,
                              .line_bytes = line};
              p.mem.dcache = {.size_bytes = ikb * 512, .ways = ways,
                              .line_bytes = line};
              p.write_allocate = wa;
              p.num_cores = cores;
              p.placement = place;
              grid.push_back(p);
            }
          }
        }
      }
    }
  }
  return grid;
}

BuildEnv matrix_env(const MatrixPoint& p, unsigned core_id) {
  BuildEnv env = quickstart_env(core_id, p.write_allocate);
  if (p.placement == 1) {
    // Shifted variant: different flash page and SRAM bank, still disjoint
    // per core — proves the placement argument is positional, not absolute.
    env.code_base = mem::kFlashBase + 0x3000 + core_id * 0x40000;
    env.data_base = mem::kSramBase + 0xC000 + core_id * 0x1000;
  }
  return env;
}

MatrixReport run_matrix(const std::vector<MatrixPoint>& grid,
                        const std::vector<const RoutineEntry*>& routines) {
  std::vector<const RoutineEntry*> targets = routines;
  if (targets.empty())
    for (const auto& r : routine_registry()) targets.push_back(&r);

  // The image depends only on (routine, placement, core, write-allocate) —
  // never on cache geometry or core count — so a 144-point sweep assembles
  // each routine a handful of times, not hundreds.
  std::map<std::tuple<const RoutineEntry*, unsigned, unsigned, bool>, CoreImage>
      images;
  const auto image = [&](const RoutineEntry* t, const MatrixPoint& p,
                         unsigned core) -> const CoreImage& {
    const auto key = std::make_tuple(t, p.placement, core, p.write_allocate);
    auto it = images.find(key);
    if (it == images.end()) {
      const auto routine = t->make();
      it = images.emplace(key, build_core_image(*routine, p, core)).first;
    }
    return it->second;
  };

  MatrixReport rep;
  for (const MatrixPoint& p : grid) {
    MatrixCell cell;
    cell.point = p;
    for (const RoutineEntry* t : targets) {
      const auto routine = t->make();
      for (unsigned c = 0; c < p.num_cores; ++c) {
        const CoreImage& self = image(t, p, c);
        analysis::AnalysisConfig acfg =
            lint_config(*routine, WrapperKind::kCacheBased, self.env);
        acfg.mem = p.mem;
        acfg.num_cores = p.num_cores;
        for (unsigned peer = 0; peer < p.num_cores; ++peer) {
          if (peer == c) continue;
          const CoreImage& other = image(t, p, peer);
          acfg.peer_regions.insert(acfg.peer_regions.end(),
                                   other.reserved.begin(),
                                   other.reserved.end());
        }
        const analysis::ProgramModel model =
            analysis::build_model(self.prog, acfg);
        const AbsIntResult ai = analysis::interpret(self.prog, acfg, model);
        ++cell.proofs;
        if (ai.analyzable && ai.all_proven()) {
          ++cell.proven;
        } else {
          cell.failures.push_back({t->name, c, first_problem(ai)});
        }
        cell.d_max = std::max(cell.d_max, ai.bound.d_max);
      }
    }
    rep.cells.push_back(std::move(cell));
  }
  return rep;
}

std::string format_matrix(const MatrixReport& rep) {
  std::ostringstream os;
  os << "scenario matrix — abstract-interpretation proof obligations\n"
     << "(exec-miss-free, loading-footprint, set-conflict-free, "
        "cross-core-disjoint, interference-bound)\n\n";
  for (const auto& c : rep.cells) {
    char row[160];
    std::snprintf(row, sizeof row,
                  "I$ %s  D$ %s  wa=%-3s cores=%u place=%u  proven %2u/%2u  "
                  "d_max %3u\n",
                  geom(c.point.mem.icache).c_str(),
                  geom(c.point.mem.dcache).c_str(),
                  c.point.write_allocate ? "on" : "off", c.point.num_cores,
                  c.point.placement, c.proven, c.proofs, c.d_max);
    os << row;
    for (const auto& f : c.failures)
      os << "     FAIL " << f.routine << " core " << f.core << ": " << f.detail
         << "\n";
  }
  os << "\nmatrix: " << rep.proven_configurations() << "/"
     << rep.configurations() << " configurations fully proven\n";
  return os.str();
}

std::string matrix_json(const MatrixReport& rep) {
  std::ostringstream os;
  os << "{\"schema\":1,\"configurations\":" << rep.configurations()
     << ",\"proven\":" << rep.proven_configurations()
     << ",\"all_proven\":" << (rep.all_proven() ? "true" : "false")
     << ",\"cells\":[";
  bool first = true;
  for (const auto& c : rep.cells) {
    if (!first) os << ",";
    first = false;
    os << "\n {\"icache\":{\"size\":" << c.point.mem.icache.size_bytes
       << ",\"ways\":" << c.point.mem.icache.ways
       << ",\"line\":" << c.point.mem.icache.line_bytes << "}"
       << ",\"dcache\":{\"size\":" << c.point.mem.dcache.size_bytes
       << ",\"ways\":" << c.point.mem.dcache.ways
       << ",\"line\":" << c.point.mem.dcache.line_bytes << "}"
       << ",\"write_allocate\":" << (c.point.write_allocate ? "true" : "false")
       << ",\"cores\":" << c.point.num_cores
       << ",\"placement\":" << c.point.placement << ",\"proofs\":" << c.proofs
       << ",\"proven\":" << c.proven << ",\"d_max\":" << c.d_max
       << ",\"failures\":[";
    bool ff = true;
    for (const auto& f : c.failures) {
      if (!ff) os << ",";
      ff = false;
      os << "{\"routine\":\"" << f.routine << "\",\"core\":" << f.core << "}";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace detstl::core
