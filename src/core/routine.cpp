#include "core/routine.h"

namespace detstl::core {

using namespace isa;

void emit_misr_acc(Assembler& a, Reg value) {
  // r29 = rotl(r29, 1) ^ value, using only r26 as scratch (value may be r27).
  a.slli(R26, R29, 1);
  a.srli(R29, R29, 31);
  a.or_(R29, R26, R29);
  a.xor_(R29, R29, value);
}

void emit_misr_acc_isr(Assembler& a, Reg value) {
  // r28 = rotl(r28, 1) ^ value, using only r27 as scratch (value may be r26).
  a.slli(R27, R28, 1);
  a.srli(R28, R28, 31);
  a.or_(R28, R27, R28);
  a.xor_(R28, R28, value);
}

void emit_icu_isr(Assembler& a) {
  a.csrr(R26, Csr::kMcause);
  emit_misr_acc_isr(a, R26);
  a.csrr(R26, Csr::kMepc);
  a.csrr(R27, Csr::kMfpc);
  a.sub(R26, R26, R27);  // recognition distance in bytes
  emit_misr_acc_isr(a, R26);
  a.eret();
}

void emit_store_word(Assembler& a, const RoutineEnv& env, Reg data, Reg base,
                     i32 offset) {
  a.sw(data, base, offset);
  if (env.dummy_load_after_store) a.lw(R27, base, offset);
}

}  // namespace detstl::core
