#include "cpu/forward.h"

namespace detstl::cpu {

FwdOut fwd_behavioral(const FwdIn& in) {
  FwdOut out;
  for (unsigned c = 0; c < 4; ++c) {
    const FwdPortIn& p = in.port[c];
    const unsigned s = static_cast<unsigned>(p.sel);
    if (s == 0) {
      out.operand[c] = p.rf;
    } else if (s > kNumFwdSources) {
      // Invalid encodings (producible only by a faulty HDCU) select no
      // candidate: the AND-OR mux yields zero.
      out.operand[c] = 0;
    } else {
      const u64 v = p.cand[s - 1];
      out.operand[c] = p.high_half ? (v >> 32) : v;
    }
  }
  return out;
}

}  // namespace detstl::cpu
