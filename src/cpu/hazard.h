#pragma once
// Hazard Detection Control Unit (HDCU) interface and behavioural model.
//
// The HDCU examines the issue packet entering EX and the producers in the
// EX/MEM and MEM/WB latches of both pipes, and drives:
//   * the forwarding-source select of each of the four EX operand ports,
//   * the pipeline stall for load-use (and, on core C, mixed-width) hazards.
//
// The same computation exists twice: `hdcu_behavioral()` (golden, fast) and a
// gate-level netlist (src/netlist/hdcu_netlist.*) whose structural faults are
// graded in Table III. A CPU hook lets a campaign swap the implementation.
//
// Producer priority (younger wins): EXMEM1 > EXMEM0 > MEMWB1 > MEMWB0 > RF.
// Slot 1 of a packet is younger than slot 0.

#include "isa/events.h"

namespace detstl::cpu {

using isa::CoreKind;

/// Forwarding-source selector values (also the netlist encoding).
enum class FwdSel : u8 {
  kRegFile = 0,
  kExMem0 = 1,
  kExMem1 = 2,
  kMemWb0 = 3,
  kMemWb1 = 4,
};
inline constexpr unsigned kNumFwdSources = 4;  // non-RF candidates

/// One EX operand port (slot0.rs1, slot0.rs2, slot1.rs1, slot1.rs2).
struct HdcuConsumer {
  u8 rs = 0;
  bool used = false;  // operand is a register read
  bool is64 = false;  // reads an even/odd register pair (core C)
};

/// One producer latch entry (EXMEM0/1, MEMWB0/1).
struct HdcuProducer {
  u8 rd = 0;
  bool writes = false;  // valid instruction that writes rd != r0
  bool is64 = false;    // writes a register pair (core C)
  bool is_load = false; // data not available at distance 1 (load-use hazard)
};

struct HdcuIn {
  HdcuConsumer cons[4];
  HdcuProducer prod[4];  // [0]=EXMEM0 [1]=EXMEM1 [2]=MEMWB0 [3]=MEMWB1

  bool operator==(const HdcuIn&) const = default;
};

struct HdcuOut {
  FwdSel sel[4] = {FwdSel::kRegFile, FwdSel::kRegFile, FwdSel::kRegFile,
                   FwdSel::kRegFile};
  bool high_half[4] = {};  // core C: take the producer's high 32-bit word
  bool stall = false;      // hold the packet in EX for one cycle

  bool operator==(const HdcuOut&) const = default;
};

/// Golden behavioural HDCU.
HdcuOut hdcu_behavioral(CoreKind kind, const HdcuIn& in);

/// Implementation hook: behavioural (default) or netlist-backed (fault
/// campaigns install a faulty netlist here). Implementations are owned by
/// the campaign, never by the CPU.
class HazardModel {
 public:
  virtual ~HazardModel() = default;
  virtual HdcuOut eval(const HdcuIn& in) = 0;
};

}  // namespace detstl::cpu
