#include "cpu/trace.h"

#include <algorithm>
#include <sstream>

namespace detstl::cpu {

u64 TraceRecorder::on_issue(u64 cycle, u32 pc, unsigned pipe, std::string text) {
  TraceInstr ti;
  ti.id = instrs_.size();
  ti.pc = pc;
  ti.pipe = pipe;
  ti.text = std::move(text);
  ti.stage_cycle[static_cast<unsigned>(Stage::kIssue)] = cycle;
  instrs_.push_back(std::move(ti));
  return instrs_.back().id;
}

void TraceRecorder::on_stage(u64 id, Stage stage, u64 cycle) {
  if (id < instrs_.size()) instrs_[id].stage_cycle[static_cast<unsigned>(stage)] = cycle;
}

std::string TraceRecorder::render(u64 from_cycle, u64 to_cycle) const {
  // Determine the cycle window covered by the recorded instructions.
  u64 lo = ~0ull, hi = 0;
  for (const auto& ti : instrs_) {
    for (u64 c : ti.stage_cycle) {
      if (c == 0) continue;
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  if (lo == ~0ull) return "(empty trace)\n";
  lo = std::max(lo, from_cycle);
  hi = std::min(hi, to_cycle);
  if (hi < lo) return "(empty window)\n";

  std::ostringstream os;
  os << "cycle             ";
  for (u64 c = lo; c <= hi; ++c) os << static_cast<char>('0' + c % 10);
  os << '\n';

  static constexpr char kLetters[4] = {'I', 'E', 'M', 'W'};
  for (const auto& ti : instrs_) {
    const u64 issue = ti.stage_cycle[0];
    if (issue == 0 || issue > hi) continue;
    char line_pc[16];
    std::snprintf(line_pc, sizeof line_pc, "%08x", ti.pc);
    std::string row(hi - lo + 1, ' ');
    u64 prev = 0;
    for (unsigned s = 0; s < 4; ++s) {
      const u64 c = ti.stage_cycle[s];
      if (c < lo || c > hi || c == 0) continue;
      row[c - lo] = kLetters[s];
      // Mark stall bubbles between consecutive stages.
      if (prev != 0 && c > prev + 1) {
        for (u64 b = prev + 1; b < c; ++b)
          if (b >= lo && b <= hi && row[b - lo] == ' ') row[b - lo] = '-';
      }
      prev = c;
    }
    os << line_pc << "  " << row << "  " << ti.text << '\n';
  }
  return os.str();
}

}  // namespace detstl::cpu
