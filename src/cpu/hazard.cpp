#include "cpu/hazard.h"

namespace detstl::cpu {

namespace {

enum class Match : u8 { kNone, kFull, kHigh, kPartial };

/// How does producer `p` relate to a consumer reading register `rs`
/// (pair when cons64)?
Match match(const HdcuProducer& p, u8 rs, bool cons64) {
  if (!p.writes) return Match::kNone;
  if (p.is64) {
    if (cons64) return p.rd == rs ? Match::kFull : Match::kNone;
    if (p.rd == rs) return Match::kFull;       // low word of the pair
    if (p.rd + 1 == rs) return Match::kHigh;   // high word of the pair
    return Match::kNone;
  }
  if (cons64) {
    // 32-bit producer writing into a pair half: no pair-wide forward path
    // exists — interlock until the value reaches the register file.
    return (p.rd == rs || p.rd == rs + 1) ? Match::kPartial : Match::kNone;
  }
  return p.rd == rs ? Match::kFull : Match::kNone;
}

}  // namespace

HdcuOut hdcu_behavioral(CoreKind kind, const HdcuIn& in) {
  HdcuOut out;
  // Producer scan order encodes the priority (younger first).
  static constexpr struct {
    unsigned idx;
    FwdSel sel;
  } kOrder[4] = {{1, FwdSel::kExMem1},
                 {0, FwdSel::kExMem0},
                 {3, FwdSel::kMemWb1},
                 {2, FwdSel::kMemWb0}};

  for (unsigned c = 0; c < 4; ++c) {
    const HdcuConsumer& cons = in.cons[c];
    if (!cons.used || cons.rs == 0) continue;  // r0 always reads zero from RF
    for (const auto& ord : kOrder) {
      const HdcuProducer& p = in.prod[ord.idx];
      const Match m = match(p, cons.rs, cons.is64 && kind == CoreKind::kC);
      if (m == Match::kNone) continue;
      const bool dist1 = ord.idx < 2;  // EXMEM producers
      if (m == Match::kPartial || (dist1 && p.is_load)) {
        // Load-use at distance 1 or mixed-width overlap: one-cycle stall
        // (after which the producer is in MEM/WB or the register file).
        out.stall = true;
      } else {
        out.sel[c] = ord.sel;
        out.high_half[c] = (m == Match::kHigh);
      }
      break;  // highest-priority (youngest) match decides this port
    }
  }
  return out;
}

}  // namespace detstl::cpu
