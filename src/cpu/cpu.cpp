#include "cpu/cpu.h"

#include <cassert>

#include "isa/disasm.h"
#include "perf/profiler.h"

namespace detstl::cpu {

using isa::Csr;
using isa::Instr;
using isa::Op;
using isa::OpClass;

Cpu::Cpu(const CpuConfig& cfg)
    : cfg_(cfg), memsys_(cfg.core_id, cfg.mem), icu_(cfg.kind) {}

void Cpu::reset(u32 boot_pc) {
  for (auto& r : regs_) r = 0;
  perf_.clear();
  icu_ = IcuState(cfg_.kind);
  mstatus_ = mtvec_ = mepc_ = mcause_ = mie_ = mfpc_ = 0;
  ex_[0] = ex_[1] = SlotInstr{};
  exmem_[0] = exmem_[1] = SlotInstr{};
  memwb_[0] = memwb_[1] = SlotInstr{};
  fq_.clear();
  halted_ = halting_ = false;
  flush_ = redirect_pending_ = false;
  next_fetch_ = align_down(boot_pc, 8);
  skip_before_ = boot_pc;
  next_issue_pc_ = boot_pc;
  div_busy_ = 0;
  drain_for_irq_ = false;
  icu_events_ = icu_clear_ = 0;
  icu_ack_ = false;
  icu_out_ = IcuOut{};
  phase_.reset();
}

// -----------------------------------------------------------------------------
// Cycle top level
// -----------------------------------------------------------------------------

void Cpu::cycle(mem::SharedBus& bus) {
  if (halted_) return;
  ++perf_.cycles;

  // Producer snapshots: what the packet in EX sees at distance 1 and 2.
  const SlotInstr snap_exmem[2] = {exmem_[0], exmem_[1]};
  const SlotInstr snap_memwb[2] = {memwb_[0], memwb_[1]};

  {
    DETSTL_PROF_SCOPE(perf::ProfScope::kExecute);
    stage_wb();
    const bool mem_advanced = stage_mem(bus);
    stage_ex(mem_advanced, snap_exmem, snap_memwb);
  }
  {
    DETSTL_PROF_SCOPE(perf::ProfScope::kDecode);
    stage_issue();
  }
  {
    DETSTL_PROF_SCOPE(perf::ProfScope::kFetch);
    stage_fetch(bus);
  }
  icu_endofcycle();
  flush_ = false;

  if (halting_ && pipeline_empty()) halted_ = true;
}

void Cpu::post_tick(mem::SharedBus& bus) {
  DETSTL_PROF_SCOPE(perf::ProfScope::kCacheModel);
  memsys_.tick(bus);
}

bool Cpu::pipeline_empty() const {
  return !ex_[0].valid && !ex_[1].valid && !exmem_[0].valid && !exmem_[1].valid &&
         !memwb_[0].valid && !memwb_[1].valid && div_busy_ == 0;
}

bool Cpu::inject_pipeline_upset(u64 pick) {
  SlotInstr* latches[] = {&ex_[0], &ex_[1], &exmem_[0], &exmem_[1], &memwb_[0], &memwb_[1]};
  SlotInstr* valid[6];
  unsigned n = 0;
  for (SlotInstr* s : latches)
    if (s->valid) valid[n++] = s;
  if (n == 0) return false;
  SlotInstr& s = *valid[pick % n];
  const unsigned bit = (pick >> 8) % (s.is64 ? 64 : 32);
  s.result ^= u64{1} << bit;
  return true;
}

// -----------------------------------------------------------------------------
// WB
// -----------------------------------------------------------------------------

void Cpu::stage_wb() {
  for (auto& s : memwb_) {
    if (!s.valid) continue;
    if (s.writes) {
      if (s.is64) {
        regs_[s.in.rd] = static_cast<u32>(s.result);
        regs_[s.in.rd + 1] = static_cast<u32>(s.result >> 32);
      } else {
        regs_[s.in.rd] = static_cast<u32>(s.result);
      }
      if (hooks_.tap != nullptr)
        hooks_.tap->on_wb(perf_.cycles, s.in.rd, static_cast<u32>(s.result));
    }
    if (s.events != 0) {
      icu_events_ |= s.events;
      mfpc_ = s.pc;
    }
    ++perf_.instret;
    if (trace_.enabled()) trace_.on_stage(s.trace_id, Stage::kWb, perf_.cycles);
    s.valid = false;
  }
}

// -----------------------------------------------------------------------------
// MEM
// -----------------------------------------------------------------------------

bool Cpu::stage_mem(mem::SharedBus& bus) {
  SlotInstr& m = exmem_[0];
  bool block = false;

  if (m.valid && isa::op_class(m.in.op) == OpClass::kMem) {
    if (!m.mem_done) {
      if (!m.mem_requested) {
        mem::MemSystem::DataOp op;
        op.addr = m.mem_addr;
        op.size = static_cast<u8>(isa::mem_size(m.in.op));
        op.write = isa::is_store(m.in.op) && m.in.op != Op::kAmoAdd;
        op.amo_add = m.in.op == Op::kAmoAdd;
        op.wdata = m.store_data;
        memsys_.data_request(op, bus);
        m.mem_requested = true;
      }
      if (memsys_.data_done()) {
        if (isa::is_load(m.in.op)) {
          u32 v = memsys_.data_rdata();
          if (m.in.op == Op::kLh) v = static_cast<u32>(detstl::sext(v, 16));
          if (m.in.op == Op::kLb) v = static_cast<u32>(detstl::sext(v, 8));
          m.result = v;
        }
        memsys_.data_ack();
        m.mem_done = true;
      } else {
        block = true;
        ++perf_.mem_stalls;
      }
    }
  }

  if (trace_.enabled()) {
    for (const auto& s : exmem_)
      if (s.valid) trace_.on_stage(s.trace_id, Stage::kMem, perf_.cycles);
  }

  if (block) {
    // WB receives bubbles (stage_wb already consumed the old contents).
    return false;
  }
  memwb_[0] = exmem_[0];
  memwb_[1] = exmem_[1];
  exmem_[0] = SlotInstr{};
  exmem_[1] = SlotInstr{};
  return true;
}

// -----------------------------------------------------------------------------
// EX
// -----------------------------------------------------------------------------

HdcuIn Cpu::build_hdcu_in(const SlotInstr (&ex)[2], const SlotInstr (&em)[2],
                          const SlotInstr (&mw)[2]) const {
  HdcuIn in;
  for (unsigned s = 0; s < 2; ++s) {
    const SlotInstr& slot = ex[s];
    const bool v = slot.valid;
    const bool r64 = v && isa::is_r64(slot.in.op);
    in.cons[2 * s] = HdcuConsumer{.rs = slot.in.rs1,
                                  .used = v && isa::reads_rs1(slot.in),
                                  .is64 = r64};
    in.cons[2 * s + 1] = HdcuConsumer{.rs = slot.in.rs2,
                                      .used = v && isa::reads_rs2(slot.in),
                                      .is64 = r64};
  }
  const SlotInstr* prods[4] = {&em[0], &em[1], &mw[0], &mw[1]};
  for (unsigned p = 0; p < 4; ++p) {
    const SlotInstr& slot = *prods[p];
    in.prod[p] = HdcuProducer{.rd = slot.in.rd,
                              .writes = slot.valid && slot.writes,
                              .is64 = slot.is64,
                              .is_load = slot.is_load && !slot.mem_done};
  }
  return in;
}

FwdIn Cpu::build_fwd_in(const SlotInstr (&ex)[2], const HdcuOut& hz,
                        const SlotInstr (&em)[2], const SlotInstr (&mw)[2]) const {
  FwdIn fin;
  const SlotInstr* prods[4] = {&em[0], &em[1], &mw[0], &mw[1]};
  for (unsigned c = 0; c < 4; ++c) {
    FwdPortIn& port = fin.port[c];
    const SlotInstr& slot = ex[c / 2];
    const u8 rs = (c % 2 == 0) ? slot.in.rs1 : slot.in.rs2;
    const bool is64 = slot.valid && isa::is_r64(slot.in.op);
    if (is64) {
      port.rf = static_cast<u64>(regs_[rs]) |
                (static_cast<u64>(regs_[(rs + 1) % isa::kNumRegs]) << 32);
    } else {
      port.rf = regs_[rs];
    }
    for (unsigned p = 0; p < 4; ++p) port.cand[p] = prods[p]->result;
    port.sel = hz.sel[c];
    port.high_half = hz.high_half[c];
  }
  return fin;
}

void Cpu::stage_ex(bool mem_advanced, const SlotInstr (&snap_exmem)[2],
                   const SlotInstr (&snap_memwb)[2]) {
  if (!ex_[0].valid && !ex_[1].valid) return;

  // Hazard + forwarding logic evaluate every cycle the packet sits in EX,
  // exactly like the hardware they model (and like the fault-injected
  // netlists must).
  const HdcuIn hin = build_hdcu_in(ex_, snap_exmem, snap_memwb);
  const HdcuOut hout = hooks_.hazard != nullptr ? hooks_.hazard->eval(hin)
                                                : hdcu_behavioral(cfg_.kind, hin);
  if (hooks_.tap != nullptr) hooks_.tap->on_hdcu(perf_.cycles, hin, hout);

  const FwdIn fin = build_fwd_in(ex_, hout, snap_exmem, snap_memwb);
  const FwdOut fout =
      hooks_.fwd != nullptr ? hooks_.fwd->eval(fin) : fwd_behavioral(fin);
  if (hooks_.tap != nullptr) hooks_.tap->on_fwd(perf_.cycles, fin, fout);

  if (!mem_advanced) return;  // MEM is blocked; hold the packet in EX

  // Multi-cycle divide occupies EX; operands were captured on its first cycle.
  if (div_busy_ > 0) {
    --div_busy_;
    if (div_busy_ > 0) return;
    // Divide complete: move it through.
    if (trace_.enabled() && ex_[0].valid)
      trace_.on_stage(ex_[0].trace_id, Stage::kEx, perf_.cycles);
    exmem_[0] = ex_[0];
    exmem_[1] = ex_[1];
    ex_[0] = SlotInstr{};
    ex_[1] = SlotInstr{};
    return;
  }

  if (hout.stall) {
    ++perf_.hdcu_stalls;
    return;  // bubbles already flowed into MEM
  }

  for (unsigned s = 0; s < 2; ++s) {
    SlotInstr& slot = ex_[s];
    if (!slot.valid) continue;
    const u64 op_a = fout.operand[2 * s];
    const u64 op_b = isa::reads_rs2(slot.in)
                         ? fout.operand[2 * s + 1]
                         : static_cast<u64>(static_cast<u32>(slot.in.imm));
    execute_slot(slot, op_a, op_b);
    // r30 is the cache-based wrapper's loop counter (core/wrapper.h); its
    // transitions delimit the loading/execution/check phases. The marker is
    // emitted at EX — where the value is computed and this in-order,
    // trap-draining pipeline can no longer squash the instruction — because
    // EX runs before the fetch stage within a cycle: a WB-time marker lags
    // the front end by two cycles and misattributes the fetch of the check
    // epilogue's first cold line to the execution loop. The CSR-driven
    // transitions below (csr_write) fire at EX for the same reason.
    if (slot.writes && !slot.is_load && slot.in.rd == 30 && sink_ != nullptr &&
        phase_.observe_loop_counter(static_cast<u32>(slot.result))) {
      DETSTL_TRACE(sink_,
                   trace::Event{.cycle = perf_.cycles,
                                .kind = trace::EventKind::kPhaseBegin,
                                .core = static_cast<u8>(cfg_.core_id),
                                .unit = static_cast<u8>(phase_.current()),
                                .addr = slot.pc});
    }
    if (trace_.enabled()) trace_.on_stage(slot.trace_id, Stage::kEx, perf_.cycles);
  }

  // A freshly started divide stays in EX.
  if (ex_[0].valid && isa::is_muldiv(ex_[0].in.op)) {
    div_busy_ = kDivCycles - 1;
    return;
  }

  exmem_[0] = ex_[0];
  exmem_[1] = ex_[1];
  ex_[0] = SlotInstr{};
  ex_[1] = SlotInstr{};
}

void Cpu::execute_slot(SlotInstr& slot, u64 op_a, u64 op_b) {
  const Instr& in = slot.in;
  switch (isa::op_class(in.op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv: {
      if (isa::is_r64(in.op)) {
        const auto res = isa::alu64(in.op, op_a, op_b);
        slot.result = res.value;
        if (res.overflow)
          slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kOverflow);
      } else {
        const auto res =
            isa::alu32(in.op, static_cast<u32>(op_a), static_cast<u32>(op_b));
        slot.result = res.value;
        if (res.overflow)
          slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kOverflow);
        if (res.div_by_zero)
          slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kDivZero);
      }
      break;
    }
    case OpClass::kMem: {
      const unsigned size = isa::mem_size(in.op);
      u32 addr = static_cast<u32>(op_a) + static_cast<u32>(in.imm);
      if (addr % size != 0) {
        slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kUnaligned);
        addr = align_down(addr, size);
      }
      slot.mem_addr = addr;
      slot.store_data = static_cast<u32>(op_b);
      // Until the MEM stage provides load data, the EX output (the address)
      // is what a faulty forwarding select would pick up.
      slot.result = addr;
      // Access-error gating: a wild address (reachable only under fault or
      // software bug) raises the access-error event and the access is
      // squashed — loads return a poison value, stores are dropped.
      const bool ok = in.op == Op::kAmoAdd ? memsys_.amo_ok(addr)
                      : isa::is_store(in.op)
                          ? memsys_.data_writable(addr)
                          : memsys_.data_readable(addr);
      if (!ok) {
        slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kUnaligned);
        slot.mem_done = true;
        slot.result = 0xdeadbeefu;
      }
      break;
    }
    case OpClass::kBranch: {
      if (in.op == Op::kJal) {
        slot.result = slot.pc + 4;
        do_redirect(slot.pc + static_cast<u32>(in.imm));
      } else if (in.op == Op::kJalr) {
        slot.result = slot.pc + 4;
        do_redirect((static_cast<u32>(op_a) + static_cast<u32>(in.imm)) & ~3u);
      } else if (isa::branch_taken(in.op, static_cast<u32>(op_a),
                                   static_cast<u32>(op_b))) {
        do_redirect(slot.pc + static_cast<u32>(in.imm));
      }
      break;
    }
    case OpClass::kSys:
      exec_system(slot, static_cast<u32>(op_a));
      break;
    case OpClass::kInvalid:
      halting_ = true;
      break;
  }
}

void Cpu::exec_system(SlotInstr& slot, u32 rs1_val) {
  switch (slot.in.op) {
    case Op::kCsrr:
      slot.result = csr_read_internal(static_cast<Csr>(slot.in.csr));
      break;
    case Op::kCsrw:
      csr_write(static_cast<Csr>(slot.in.csr), rs1_val, slot);
      break;
    case Op::kEret:
      mstatus_ |= isa::kMstatusIe;
      do_redirect(mepc_);
      break;
    case Op::kHalt:
      halting_ = true;
      flush_ = true;  // stop issue; nothing younger may run
      break;
    default:
      break;
  }
}

void Cpu::do_redirect(u32 target) {
  flush_ = true;
  redirect_pc_ = target;
  redirect_pending_ = true;
}

// -----------------------------------------------------------------------------
// Issue
// -----------------------------------------------------------------------------

namespace {

/// Registers written by an instruction (as a bitmask), empty for r0.
u32 write_set(const Instr& in) {
  if (!isa::writes_rd(in) || in.rd == 0) return 0;
  u32 m = 1u << in.rd;
  if (isa::is_r64(in.op)) m |= 1u << ((in.rd + 1) % isa::kNumRegs);
  return m;
}

u32 read_set(const Instr& in) {
  u32 m = 0;
  const bool r64 = isa::is_r64(in.op);
  if (isa::reads_rs1(in) && in.rs1 != 0) {
    m |= 1u << in.rs1;
    if (r64) m |= 1u << ((in.rs1 + 1) % isa::kNumRegs);
  }
  if (isa::reads_rs2(in) && in.rs2 != 0) {
    m |= 1u << in.rs2;
    if (r64) m |= 1u << ((in.rs2 + 1) % isa::kNumRegs);
  }
  return m;
}

bool issues_alone(const Instr& in) {
  switch (isa::op_class(in.op)) {
    case OpClass::kBranch:
    case OpClass::kSys:
    case OpClass::kMulDiv:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Cpu::stage_issue() {
  if (flush_) {
    fq_.clear();
    next_issue_pc_ = redirect_pc_;
    return;
  }
  if (halting_ || halted_) return;

  if (drain_for_irq_) {
    if (pipeline_empty() && !memsys_.data_busy()) take_trap();
    return;
  }

  if (ex_[0].valid || ex_[1].valid) return;  // EX occupied (stall/divide)

  if (icu_out_.irq && (mstatus_ & isa::kMstatusIe)) {
    drain_for_irq_ = true;
    DETSTL_TRACE(sink_, trace::Event{.cycle = perf_.cycles,
                                     .kind = trace::EventKind::kIrqWindow,
                                     .core = static_cast<u8>(cfg_.core_id),
                                     .a = icu_out_.cause});
    return;
  }

  if (fq_.empty()) {
    ++perf_.if_stalls;
    return;
  }

  auto make_slot = [&](const FetchEntry& e, const Instr& in, unsigned pipe) {
    SlotInstr s;
    s.valid = true;
    s.in = in;
    s.pc = e.pc;
    s.is64 = isa::is_r64(in.op);
    s.writes = isa::writes_rd(in) && in.rd != 0;
    s.is_load = isa::is_load(in.op);
    if (trace_.enabled())
      s.trace_id = trace_.on_issue(perf_.cycles, e.pc, pipe, isa::disasm(in));
    return s;
  };

  const FetchEntry e0 = fq_.front();
  ++perf_.decodes;
  const Instr i0 = isa::decode(e0.word);
  fq_.pop_front();
  ex_[0] = make_slot(e0, i0, 0);
  next_issue_pc_ = e0.pc + 4;

  if (issues_alone(i0)) return;

  if (fq_.empty()) return;
  const FetchEntry e1 = fq_.front();
  if (e1.pc != e0.pc + 4) return;
  ++perf_.decodes;
  const Instr i1 = isa::decode(e1.word);
  // Slot 1 accepts only single-cycle ALU ops (no memory port, no branch).
  if (isa::op_class(i1.op) != OpClass::kAlu) return;

  // Same-packet dependencies: the HDCU serialises the packet ("split").
  const u32 w0 = write_set(i0);
  const bool raw = (w0 & read_set(i1)) != 0;
  const bool waw = (w0 & write_set(i1)) != 0;
  if (raw || waw) {
    ++perf_.splits;
    return;
  }

  fq_.pop_front();
  ex_[1] = make_slot(e1, i1, 1);
  next_issue_pc_ = e1.pc + 4;
}

void Cpu::take_trap() {
  mepc_ = next_issue_pc_;
  mcause_ = icu_out_.cause;
  DETSTL_TRACE(sink_, trace::Event{.cycle = perf_.cycles,
                                   .kind = trace::EventKind::kIrqTaken,
                                   .core = static_cast<u8>(cfg_.core_id),
                                   .addr = mepc_,
                                   .a = mcause_});
  mstatus_ &= ~isa::kMstatusIe;
  icu_ack_ = true;
  drain_for_irq_ = false;
  fq_.clear();
  redirect_pc_ = mtvec_;
  redirect_pending_ = true;
  next_issue_pc_ = mtvec_;
}

// -----------------------------------------------------------------------------
// Fetch
// -----------------------------------------------------------------------------

void Cpu::stage_fetch(mem::SharedBus& bus) {
  if (redirect_pending_) {
    memsys_.ifetch_cancel();
    next_fetch_ = align_down(redirect_pc_, 8);
    skip_before_ = redirect_pc_;
    redirect_pending_ = false;
  }

  auto collect = [&] {
    while (memsys_.ifetch_done()) {
      const u32 addr = memsys_.ifetch_addr();
      const u64 data = memsys_.ifetch_data();
      for (unsigned k = 0; k < 2; ++k) {
        const u32 pc = addr + 4 * k;
        if (pc >= skip_before_)
          fq_.push_back(FetchEntry{pc, static_cast<u32>(data >> (32 * k))});
      }
      memsys_.ifetch_ack();
    }
  };

  collect();  // responses that completed during the previous bus tick

  // Start at most one new fetch per cycle; a second may stay in flight
  // (pipelined flash/bus access).
  if (memsys_.ifetch_can_request() && !halting_ && fq_.size() + 4 <= kFqCapacity) {
    if (!memsys_.fetchable(next_fetch_)) {
      // Runaway fetch (faulty redirect): supply invalid encodings, which
      // halt the core at issue — the watchdog/verdict catches it.
      for (unsigned k = 0; k < 2; ++k) {
        const u32 pc = next_fetch_ + 4 * k;
        if (pc >= skip_before_) fq_.push_back(FetchEntry{pc, 0});
      }
      next_fetch_ += 8;
      return;
    }
    memsys_.ifetch_request(next_fetch_, bus);
    next_fetch_ += 8;
    collect();  // TCM / cache hits complete in the same cycle
  }
}

// -----------------------------------------------------------------------------
// ICU / CSRs
// -----------------------------------------------------------------------------

void Cpu::icu_endofcycle() {
  IcuIn in;
  in.events = icu_events_;
  in.mie = static_cast<u8>(mie_);
  in.ack = icu_ack_;
  in.clear = icu_clear_;

  IcuOut out;
  if (hooks_.icu != nullptr) {
    out = hooks_.icu->eval(in);
    hooks_.icu->clock(in);
  } else {
    out = icu_.eval(in);
  }
  // The behavioural state always tracks the golden function of the inputs so
  // checkpoints of good runs can seed netlist models.
  icu_.clock(in);
  if (hooks_.tap != nullptr) hooks_.tap->on_icu(perf_.cycles, in, out);

  icu_out_ = out;
  icu_events_ = 0;
  icu_clear_ = 0;
  icu_ack_ = false;
}

u32 Cpu::csr_read(Csr c) const { return csr_read_internal(c); }

u32 Cpu::csr_read_internal(Csr c) const {
  switch (c) {
    case Csr::kCycle: return static_cast<u32>(perf_.cycles);
    case Csr::kInstret: return static_cast<u32>(perf_.instret);
    case Csr::kIfStall: return static_cast<u32>(perf_.if_stalls);
    case Csr::kMemStall: return static_cast<u32>(perf_.mem_stalls);
    case Csr::kHdcuStall: return static_cast<u32>(perf_.hdcu_stalls);
    case Csr::kSplit: return static_cast<u32>(perf_.splits);
    case Csr::kIcMiss: return static_cast<u32>(memsys_.icache().stats().misses);
    case Csr::kDcMiss: return static_cast<u32>(memsys_.dcache().stats().misses);
    case Csr::kMstatus: return mstatus_;
    case Csr::kMtvec: return mtvec_;
    case Csr::kMepc: return mepc_;
    case Csr::kMcause: return mcause_;
    case Csr::kMip: return icu_out_.pending;
    case Csr::kMie: return mie_;
    case Csr::kMfpc: return mfpc_;
    case Csr::kCacheCfg: return memsys_.cache_cfg();
    case Csr::kCoreId: return static_cast<u32>(cfg_.core_id);
    default: return 0;
  }
}

void Cpu::csr_write(Csr c, u32 v, SlotInstr& slot) {
  switch (c) {
    case Csr::kMstatus: mstatus_ = v & isa::kMstatusIe; break;
    case Csr::kMtvec: mtvec_ = v; break;
    case Csr::kMepc: mepc_ = v; break;
    case Csr::kMie: mie_ = v & ((1u << isa::kNumIcuSources) - 1); break;
    case Csr::kMip: icu_clear_ |= static_cast<u8>(v); break;
    case Csr::kMswi:
      slot.events |= 1u << static_cast<unsigned>(isa::IcuSource::kSoftware);
      break;
    case Csr::kCacheOp:
      memsys_.cache_op(v);
      if (sink_ != nullptr && phase_.observe_cache_op(v)) {
        DETSTL_TRACE(sink_,
                     trace::Event{.cycle = perf_.cycles,
                                  .kind = trace::EventKind::kPhaseBegin,
                                  .core = static_cast<u8>(cfg_.core_id),
                                  .unit = static_cast<u8>(phase_.current()),
                                  .addr = slot.pc});
      }
      break;
    case Csr::kCacheCfg:
      memsys_.set_cache_cfg(v);
      if (sink_ != nullptr && phase_.observe_cache_cfg(v)) {
        DETSTL_TRACE(sink_,
                     trace::Event{.cycle = perf_.cycles,
                                  .kind = trace::EventKind::kPhaseBegin,
                                  .core = static_cast<u8>(cfg_.core_id),
                                  .unit = static_cast<u8>(phase_.current()),
                                  .addr = slot.pc});
      }
      break;
    default: break;  // counters are read-only
  }
}

}  // namespace detstl::cpu
