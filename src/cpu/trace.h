#pragma once
// Pipeline-occupancy trace recorder and ASCII renderer, used to reproduce the
// paper's Figure 1 (forwarding path excited vs. broken by fetch stalls).

#include <string>
#include <vector>

#include "common/bitutil.h"

namespace detstl::cpu {

enum class Stage : u8 { kIssue, kEx, kMem, kWb };

struct TraceInstr {
  u64 id = 0;        // issue-order instance id
  u32 pc = 0;
  unsigned pipe = 0; // slot within the issue packet
  std::string text;  // disassembly
  // cycle at which the instruction occupied each stage (0 = never)
  u64 stage_cycle[4] = {};
};

class TraceRecorder {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void clear() { instrs_.clear(); }

  /// Called by the CPU at issue; returns the instance id.
  u64 on_issue(u64 cycle, u32 pc, unsigned pipe, std::string text);
  /// Called when instance `id` occupies `stage` at `cycle`.
  void on_stage(u64 id, Stage stage, u64 cycle);

  const std::vector<TraceInstr>& instrs() const { return instrs_; }

  /// Render a Figure-1-style pipeline diagram. Each row is an instruction;
  /// columns are clock cycles; letters mark the stage occupied (I/E/M/W,
  /// '-' for stall cycles in between).
  std::string render(u64 from_cycle = 0, u64 to_cycle = ~0ull) const;

 private:
  bool enabled_ = false;
  std::vector<TraceInstr> instrs_;
};

}  // namespace detstl::cpu
