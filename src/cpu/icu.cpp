#include "cpu/icu.h"

namespace detstl::cpu {

int icu_select(u8 pending, u8 mie) {
  const u8 active = pending & mie;
  for (unsigned s = 0; s < isa::kNumIcuSources; ++s)
    if (active & (1u << s)) return static_cast<int>(s);
  return -1;
}

u8 IcuState::next_pending(const IcuIn& in) const {
  // Set dominates clear, consistently with the combinational view.
  u8 p = static_cast<u8>((pending_ | in.events) & ~(in.clear & ~in.events));
  if (in.ack) {
    const int sel = icu_select(p, in.mie);
    if (sel >= 0) p &= static_cast<u8>(~(1u << sel));
  }
  return p & ((1u << isa::kNumIcuSources) - 1);
}

IcuOut IcuState::eval(const IcuIn& in) {
  // Combinational view sees events raised this cycle (set dominates clear).
  const u8 p = static_cast<u8>((pending_ | in.events) & ~(in.clear & ~in.events));
  IcuOut out;
  out.pending = p & ((1u << isa::kNumIcuSources) - 1);
  const int sel = icu_select(out.pending, in.mie);
  if (sel >= 0)
    out.cause = static_cast<u8>(isa::map_cause(kind_, static_cast<IcuSource>(sel)));
  // The request line is the synchronised (two-cycle-old) view.
  out.irq = sync2_;
  return out;
}

void IcuState::clock(const IcuIn& in) {
  const u8 p = static_cast<u8>((pending_ | in.events) & ~(in.clear & ~in.events));
  const bool raw_irq = icu_select(p & ((1u << isa::kNumIcuSources) - 1), in.mie) >= 0;
  sync2_ = sync1_;
  sync1_ = raw_irq;
  pending_ = next_pending(in);
}

}  // namespace detstl::cpu
