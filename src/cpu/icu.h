#pragma once
// Interrupt Control Unit: synchronous imprecise interrupts (paper Sec. IV,
// Table III). Events are flagged at WB of the causing instruction; the
// request is recognised at the next issue boundary after the pipeline
// drains, a *variable* number of retired instructions later.
//
// Cause-register mapping differs per core: A/B fold the four sources onto
// two shared cause bits (masking some fault effects), C reports four
// distinct bits — reproducing the ~10% ICU coverage gap of Sec. IV-D.
//
// Sequential semantics per cycle:
//   out  = f(state, in)      -- combinational read
//   state' = g(state, in)    -- clock edge
// The behavioural IcuState below implements both; the netlist version
// (src/netlist/icu_netlist.*) mirrors it gate-for-gate with DFFs.

#include "isa/events.h"

namespace detstl::cpu {

using isa::CoreKind;
using isa::IcuSource;

struct IcuIn {
  u8 events = 0;      // per-source set strobes raised at WB this cycle
  u8 mie = 0;         // enable mask (CSR kMie)
  bool ack = false;   // recognition consumed the highest-priority request
  u8 clear = 0;       // write-1-to-clear strobes (CSR kMip write)

  bool operator==(const IcuIn&) const = default;
};

struct IcuOut {
  bool irq = false;  // request line to the issue stage
  u8 cause = 0;      // mapped cause bits of the highest-priority enabled source
  u8 pending = 0;    // raw pending bits (CSR kMip read)

  bool operator==(const IcuOut&) const = default;
};

/// Implementation hook (see HazardModel). `eval` is the combinational read;
/// `clock` commits the state update for the same inputs.
/// The IRQ line passes through a two-stage synchroniser (DFFs in the
/// netlist), so recognition lags the event by two extra cycles — the window
/// in which further instructions issue and further events may coincide.
class IcuModel {
 public:
  virtual ~IcuModel() = default;
  virtual IcuOut eval(const IcuIn& in) = 0;
  virtual void clock(const IcuIn& in) = 0;
  /// Restore internal state (checkpoint resume in fault campaigns);
  /// bits 0-3 = pending, bit 4 = sync stage 1, bit 5 = sync stage 2.
  virtual void load_state(u16 state) = 0;
};

/// Highest-priority (lowest-index) pending-and-enabled source, or -1.
int icu_select(u8 pending, u8 mie);

/// Golden behavioural ICU.
class IcuState final : public IcuModel {
 public:
  explicit IcuState(CoreKind kind) : kind_(kind) {}

  IcuOut eval(const IcuIn& in) override;
  void clock(const IcuIn& in) override;
  void load_state(u16 state) override {
    pending_ = state & 0xf;
    sync1_ = (state >> 4) & 1;
    sync2_ = (state >> 5) & 1;
  }

  u8 pending() const { return pending_; }
  /// Packed state for checkpoint restore into netlist models.
  u16 state() const {
    return static_cast<u16>(pending_ | (sync1_ << 4) | (sync2_ << 5));
  }

 private:
  u8 next_pending(const IcuIn& in) const;

  CoreKind kind_;
  u8 pending_ = 0;
  bool sync1_ = false;
  bool sync2_ = false;
};

}  // namespace detstl::cpu
