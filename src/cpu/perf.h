#pragma once
// Architected performance counters (the paper's Table I observables and the
// stall counters used by the HDCU self-test routine of [19]).

#include "common/bitutil.h"

namespace detstl::cpu {

struct PerfCounters {
  u64 cycles = 0;
  u64 instret = 0;
  u64 decodes = 0;      // isa::decode invocations in the issue stage
  u64 if_stalls = 0;    // issue cycles starved for instructions (Table I col 2)
  u64 mem_stalls = 0;   // MEM-stage wait cycles (Table I col 3)
  u64 hdcu_stalls = 0;  // stall cycles inserted by the hazard unit
  u64 splits = 0;       // issue packets serialised by the HDCU

  void clear() { *this = PerfCounters{}; }
};

}  // namespace detstl::cpu
