#pragma once
// Dual-issue, 5-stage, in-order pipeline (IF, IS, EX, MEM, WB) modelling the
// paper's automotive cores:
//   * 8-byte fetch packets through the per-core memory system (TCM / L1
//     caches / shared bus) — fetch starvation is the multi-core disturbance
//     the paper studies;
//   * two execution pipes; memory ops, branches, multi-cycle divides and
//     system ops issue in slot 0 only; same-packet RAW/WAW splits the packet;
//   * forwarding into both EX operand pairs from EXMEM/MEMWB of both pipes,
//     driven by the HDCU; load-use and mixed-width hazards stall one cycle;
//   * synchronous imprecise interrupts: events flagged at WB, recognised at
//     the next issue boundary after the pipeline drains;
//   * performance counters (CSRs) for cycles/retired/IF stalls/MEM stalls/
//     HDCU stalls/splits.
//
// The HDCU, Forwarding Logic and ICU are pluggable (behavioural by default,
// netlist-backed in fault campaigns) via non-owning hook pointers.

#include <deque>
#include <string>

#include "cpu/forward.h"
#include "cpu/hazard.h"
#include "cpu/icu.h"
#include "cpu/perf.h"
#include "cpu/tap.h"
#include "cpu/trace.h"
#include "isa/alu.h"
#include "isa/encoding.h"
#include "mem/memsys.h"

namespace detstl::cpu {

struct CpuConfig {
  CoreKind kind = CoreKind::kA;
  unsigned core_id = 0;
  mem::MemSystemConfig mem{};
};

/// Non-owning implementation overrides; all null => behavioural models.
/// Owned by the installer (fault campaign); must be re-installed after
/// copying the CPU (checkpoint restore).
struct CpuHooks {
  HazardModel* hazard = nullptr;
  ForwardModel* fwd = nullptr;
  IcuModel* icu = nullptr;
  ModuleTap* tap = nullptr;
};

class Cpu {
 public:
  explicit Cpu(const CpuConfig& cfg);

  void reset(u32 boot_pc);

  /// Evaluate one clock cycle: commits WB, advances MEM/EX/IS/IF, and may
  /// submit memory-port requests to the shared bus.
  void cycle(mem::SharedBus& bus);

  /// Completes memory-port transactions; call after the bus tick.
  void post_tick(mem::SharedBus& bus);

  bool halted() const { return halted_; }
  CoreKind kind() const { return cfg_.kind; }
  unsigned core_id() const { return cfg_.core_id; }

  // --- architectural state access (debug / harness) ---------------------------
  u32 reg(unsigned idx) const { return regs_[idx]; }
  void set_reg(unsigned idx, u32 v) {
    if (idx != 0) regs_[idx] = v;
  }
  u32 csr_read(isa::Csr c) const;
  const PerfCounters& perf() const { return perf_; }
  PerfCounters& perf() { return perf_; }
  u64 cycle_count() const { return perf_.cycles; }

  mem::MemSystem& memsys() { return memsys_; }
  const mem::MemSystem& memsys() const { return memsys_; }

  CpuHooks& hooks() { return hooks_; }
  TraceRecorder& trace() { return trace_; }

  /// Install the detscope event sink into this core and its memory system
  /// (non-owning; null = tracing off). Carried by value copies like the hook
  /// pointers — re-install or clear after checkpoint restore (trace/event.h).
  void set_trace_sink(trace::EventSink* sink) {
    sink_ = sink;
    memsys_.set_trace_sink(sink);
  }
  trace::EventSink* trace_sink() const { return sink_; }

  /// Behavioural ICU state (for checkpoint restore into netlist models).
  const IcuState& icu_state() const { return icu_; }

  /// OR external event strobes into this cycle's ICU inputs — an
  /// asynchronous interrupt arriving mid-run (runtime::DisturbanceInjector).
  /// Travels the same synchroniser/recognition path as pipeline-raised
  /// events; ignored architecturally while mstatus.IE is clear.
  void inject_icu_event(u8 sources) { icu_events_ |= sources; }

  /// SEU flip point for the rate-based soak model (runtime/soak.h): flip one
  /// bit of one currently-valid pipeline latch, chosen deterministically from
  /// `pick`. Candidates are the EX/MEM/WB result latches; a flip in a latch
  /// whose packet does not write a register is architecturally masked but
  /// still counts as applied (it landed in real state). Returns false when no
  /// latch is valid this cycle (the upset missed the pipeline).
  bool inject_pipeline_upset(u64 pick);

 private:
  struct SlotInstr {
    bool valid = false;
    isa::Instr in;
    u32 pc = 0;
    u64 trace_id = 0;
    // EX results
    u64 result = 0;   // rd value (zero-extended for 32-bit ops; pair for R64)
    bool is64 = false;
    bool writes = false;
    bool is_load = false;
    u8 events = 0;    // ICU event strobes raised at WB
    // memory op bookkeeping (slot 0 only)
    u32 mem_addr = 0;
    u32 store_data = 0;
    bool mem_requested = false;
    bool mem_done = false;
  };

  struct FetchEntry {
    u32 pc = 0;
    u32 word = 0;
  };

  // Stage evaluation helpers (called from cycle() in order).
  void stage_wb();
  bool stage_mem(mem::SharedBus& bus);  // returns true if MEM advanced
  void stage_ex(bool mem_advanced, const SlotInstr (&snap_exmem)[2],
                const SlotInstr (&snap_memwb)[2]);
  void stage_issue();
  void stage_fetch(mem::SharedBus& bus);
  void icu_endofcycle();

  void execute_slot(SlotInstr& slot, u64 op_a, u64 op_b);
  void exec_system(SlotInstr& slot, u32 rs1_val);
  void do_redirect(u32 target);
  void take_trap();
  bool pipeline_empty() const;

  HdcuIn build_hdcu_in(const SlotInstr (&ex)[2], const SlotInstr (&em)[2],
                       const SlotInstr (&mw)[2]) const;
  FwdIn build_fwd_in(const SlotInstr (&ex)[2], const HdcuOut& hz,
                     const SlotInstr (&em)[2], const SlotInstr (&mw)[2]) const;

  u32 csr_read_internal(isa::Csr c) const;
  void csr_write(isa::Csr c, u32 v, SlotInstr& slot);

  CpuConfig cfg_;
  mem::MemSystem memsys_;
  CpuHooks hooks_;
  TraceRecorder trace_;

  // Architectural state
  u32 regs_[isa::kNumRegs] = {};
  PerfCounters perf_;
  IcuState icu_;
  u32 mstatus_ = 0;
  u32 mtvec_ = 0;
  u32 mepc_ = 0;
  u32 mcause_ = 0;
  u32 mie_ = 0;
  u32 mfpc_ = 0;

  // Pipeline latches
  SlotInstr ex_[2];      // packet in EX this cycle
  SlotInstr exmem_[2];   // packet in MEM this cycle
  SlotInstr memwb_[2];   // packet in WB this cycle
  std::deque<FetchEntry> fq_;
  static constexpr unsigned kFqCapacity = 8;

  // Control state
  bool halted_ = false;
  bool halting_ = false;
  bool flush_ = false;        // set by EX (taken branch / eret / trap)
  u32 redirect_pc_ = 0;       // valid when flush_
  bool redirect_pending_ = false;  // IF must re-steer
  u32 next_fetch_ = 0;
  u32 skip_before_ = 0;       // discard fetched slots below this PC
  u32 next_issue_pc_ = 0;     // PC of the next instruction to issue (MEPC source)
  u32 div_busy_ = 0;          // remaining EX cycles of an in-flight divide
  bool drain_for_irq_ = false;
  static constexpr u32 kDivCycles = 8;

  // ICU cycle interface
  u8 icu_events_ = 0;  // raised at WB this cycle
  u8 icu_clear_ = 0;   // CSR kMip write strobes this cycle
  bool icu_ack_ = false;
  IcuOut icu_out_;     // latched output visible to IS/CSRs next cycle

  // detscope: non-owning event sink + wrapper-phase recognition (value state;
  // the tracker travels with checkpoints, the sink is re-installed/cleared).
  trace::EventSink* sink_ = nullptr;
  trace::PhaseTracker phase_;
};

}  // namespace detstl::cpu
