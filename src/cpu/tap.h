#pragma once
// Observation hook: the fault-simulation campaign installs a tap to record
// per-cycle module inputs/outputs (for excitation replay) and the
// signature-register write sequence (for detection early-exit). The tap is
// non-owning; the CPU never deletes it, and SoC checkpoint copies carry the
// pointer verbatim (the campaign re-installs its own after restore).

#include "cpu/forward.h"
#include "cpu/hazard.h"
#include "cpu/icu.h"

namespace detstl::cpu {

class ModuleTap {
 public:
  virtual ~ModuleTap() = default;
  virtual void on_hdcu(u64 cycle, const HdcuIn& in, const HdcuOut& out) {
    (void)cycle; (void)in; (void)out;
  }
  virtual void on_fwd(u64 cycle, const FwdIn& in, const FwdOut& out) {
    (void)cycle; (void)in; (void)out;
  }
  virtual void on_icu(u64 cycle, const IcuIn& in, const IcuOut& out) {
    (void)cycle; (void)in; (void)out;
  }
  /// Architectural register write at WB.
  virtual void on_wb(u64 cycle, unsigned rd, u32 value) {
    (void)cycle; (void)rd; (void)value;
  }
};

}  // namespace detstl::cpu
