#pragma once
// Forwarding Logic: the multiplexers feeding the EX operand ports (the
// paper's "Forwarding Logic" module, graded in Table II). Separated from the
// HDCU (which drives the select lines) exactly as in the target device:
// "the Hazard Detection Unit is composed of a Hazard Detection Control Unit
// and a Forwarding Logic".
//
// Values are carried as 64-bit lanes: 32-bit cores use the low word; core C
// forwards whole pairs. A behavioural model and a gate-level netlist
// (src/netlist/fwd_netlist.*) implement the same function.

#include "cpu/hazard.h"

namespace detstl::cpu {

struct FwdPortIn {
  u64 rf = 0;        // register-file read (pair for 64-bit consumers)
  u64 cand[4] = {};  // EXMEM0, EXMEM1, MEMWB0, MEMWB1 results (zext for 32-bit)
  FwdSel sel = FwdSel::kRegFile;
  bool high_half = false;  // core C: take the candidate's high word

  bool operator==(const FwdPortIn&) const = default;
};

struct FwdIn {
  FwdPortIn port[4];  // slot0.rs1, slot0.rs2, slot1.rs1, slot1.rs2

  bool operator==(const FwdIn&) const = default;
};

struct FwdOut {
  u64 operand[4] = {};

  bool operator==(const FwdOut&) const = default;
};

/// Golden behavioural forwarding mux.
FwdOut fwd_behavioral(const FwdIn& in);

/// Implementation hook (see HazardModel).
class ForwardModel {
 public:
  virtual ~ForwardModel() = default;
  virtual FwdOut eval(const FwdIn& in) = 0;
};

}  // namespace detstl::cpu
