#include "analysis/fixtures.h"

#include "isa/assembler.h"
#include "mem/memmap.h"

namespace detstl::analysis {

using namespace isa;

namespace {

constexpr u32 kCodeBase = mem::kFlashBase + 0x1000;
constexpr u32 kDataBase = mem::kSramBase + 0x8000;

/// Code looping across three chunks 4 KiB apart: with the default 8 KiB
/// 2-way 32 B-line I-cache the set index cycles every 4 KiB, so all three
/// chunks alias one set — a guaranteed self-eviction every iteration.
Fixture set_conflict() {
  Assembler a(kCodeBase);
  a.li(R1, 2);
  a.label("loop");
  a.addi(R2, R0, 1);
  a.beq(R0, R0, "c2");
  a.org(kCodeBase + 4096);
  a.label("c2");
  a.addi(R2, R2, 1);
  a.beq(R0, R0, "c3");
  a.org(kCodeBase + 8192);
  a.label("c3");
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "set-conflict";
  f.description = "loop code footprint aliases one I-cache set beyond its "
                  "associativity (self-eviction in the execution loop)";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.expect = Rule::kIcacheConflict;
  return f;
}

/// Mailbox store inside the execution loop: the verdict protocol requires
/// uncached shared-SRAM traffic, which re-couples the loop to the bus.
Fixture noncacheable() {
  Assembler a(kCodeBase);
  a.li(R24, mem::kSramBase);  // mailbox region
  a.li(R1, 2);
  a.label("loop");
  a.sw(R0, R24, 0);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "noncacheable";
  f.description = "shared mailbox region accessed inside the execution loop";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.shared_regions = {{mem::kSramBase, 3 * 32}};
  f.expect = Rule::kNoncacheableAccess;
  return f;
}

/// Store without the dummy-load fix-up under no-write-allocate: every
/// execution-loop iteration writes around the cache onto the bus.
Fixture nwa_dummy_load() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R1, 2);
  a.label("loop");
  a.addi(R2, R0, 0x77);
  a.sw(R2, R25, 0);  // never loaded back: line is never allocated
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "nwa-dummy-load";
  f.description = "no-write-allocate store lacking the dummy-load fix-up "
                  "(paper Sec. III step 1)";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.write_allocate = false;
  f.cfg.data_regions = {{kDataBase, 64}};
  f.expect = Rule::kNwaMissingDummyLoad;
  return f;
}

/// Code that runs off the end into an embedded data word instead of halting.
Fixture halt_fallthrough() {
  Assembler a(kCodeBase);
  a.li(R1, 5);
  a.addi(R2, R1, 1);
  a.word(0);  // data word directly in the fall-through path
  Fixture f;
  f.name = "halt-fallthrough";
  f.description = "reachable path falls through past the code into data";
  f.prog = a.assemble();
  f.cfg.check_cache_determinism = false;
  f.expect = Rule::kHaltFallthrough;
  return f;
}

/// Store targeting the program's own (reachable) code bytes.
Fixture self_modifying() {
  Assembler a(kCodeBase);
  a.label("entry");
  a.la(R1, "entry");
  a.addi(R2, R0, 0);
  a.sw(R2, R1, 0);
  a.halt();
  Fixture f;
  f.name = "self-modifying";
  f.description = "store overwrites reachable code";
  f.prog = a.assemble();
  f.cfg.check_cache_determinism = false;
  f.expect = Rule::kSelfModifyingCode;
  return f;
}

/// Signature register updated with a plain add instead of the MISR fold.
Fixture signature_discipline() {
  Assembler a(kCodeBase);
  a.addi(R29, R29, 1);
  a.halt();
  Fixture f;
  f.name = "signature-discipline";
  f.description = "r29 written outside the MISR rotate-xor idiom";
  f.prog = a.assemble();
  f.cfg.check_cache_determinism = false;
  f.expect = Rule::kSignatureDiscipline;
  f.expect_severity = Severity::kWarning;
  return f;
}

/// Free-running counter folded into the loop without use_perf_counters.
Fixture perf_counter() {
  Assembler a(kCodeBase);
  a.li(R1, 2);
  a.label("loop");
  a.csrr(R5, Csr::kCycle);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "perf-counter";
  f.description = "performance-counter CSR read inside the execution loop "
                  "with use_perf_counters=false";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.expect = Rule::kPerfCounterRead;
  return f;
}

/// Three constant loads 2 KiB apart: with the default 4 KiB 2-way 32 B-line
/// D-cache the set index cycles every 2 KiB, so all three lines alias one
/// set — a guaranteed data self-eviction every iteration.
Fixture dcache_conflict() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R1, 2);
  a.label("loop");
  a.lw(R2, R25, 0);
  a.lw(R3, R25, 2048);
  a.lw(R4, R25, 4096);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "dcache-conflict";
  f.description = "loop data footprint aliases one D-cache set beyond its "
                  "associativity (data self-eviction in the execution loop)";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 8192}};
  f.expect = Rule::kDcacheConflict;
  return f;
}

/// A loop body larger than the whole I-cache: even a perfectly-packed layout
/// cannot keep it resident (paper rule 2.2: split into cache-sized parts).
Fixture code_footprint() {
  Assembler a(kCodeBase);
  a.li(R1, 2);
  a.label("loop");
  for (int i = 0; i < 2100; ++i) a.addi(R2, R2, 1);  // > 8 KiB of loop body
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "code-footprint";
  f.description = "execution-loop code exceeds the I-cache capacity";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.expect = Rule::kCodeFootprint;
  return f;
}

/// Entry point pointing outside the assembled image (a mis-linked wrapper).
Fixture unreachable_entry() {
  Assembler a(kCodeBase);
  a.li(R1, 1);
  a.halt();
  Fixture f;
  f.name = "unreachable-entry";
  f.description = "entry point lies outside the program image";
  f.prog = a.assemble();
  f.prog.set_entry(kCodeBase - 0x800);
  f.expect = Rule::kUnreachableEntry;
  return f;
}

/// Load through a pointer read from memory: the interval analysis degrades
/// the address to top, so cache residency cannot be proven.
Fixture unresolved_address() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R1, 2);
  a.label("loop");
  a.lw(R4, R25, 0);  // pointer fetched from memory
  a.lw(R5, R4, 0);   // address is top
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "unresolved-address";
  f.description = "in-loop access through a data-dependent pointer the "
                  "interval analysis cannot bound";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 64}};
  f.expect = Rule::kUnresolvedAddress;
  f.expect_severity = Severity::kWarning;
  return f;
}

/// Indirect call through a loaded function pointer inside the loop: the CFG
/// must degrade the target to top (incomplete footprint warning), not crash.
Fixture indirect_loop_call() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R1, 2);
  a.label("loop");
  a.lw(R4, R25, 0);   // function pointer from memory
  a.jalr(R31, R4, 0); // target unresolvable
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "indirect-loop-call";
  f.description = "jalr through a data-dependent pointer inside the loop "
                  "(footprint may be incomplete)";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 64}};
  f.expect = Rule::kUnresolvedAddress;
  f.expect_severity = Severity::kWarning;
  return f;
}

/// Strided walk guarded by a branch on loaded data: the execution pass may
/// take a different path than the loading pass, so the replay argument
/// collapses and the strided access cannot be proven miss-free — even though
/// every syntactic rule (set arithmetic, footprint, NWA) is satisfied.
Fixture ai_exec_unproven() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R4, kDataBase);
  a.li(R1, 100);
  a.label("loop");
  a.lw(R2, R25, 0);
  a.beq(R2, R0, "skip");  // decided by loaded data: not iteration-invariant
  a.addi(R6, R6, 1);
  a.label("skip");
  a.lw(R3, R4, 0);        // strided: provable only via the replay argument
  a.addi(R4, R4, 4);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "ai-exec-unproven";
  f.description = "strided access whose miss-freedom rests on the replay "
                  "argument, defeated by a branch on loaded data";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 2048}};
  f.expect = Rule::kAiExecUnproven;
  return f;
}

/// Constant load outside every declared data region (and not in the
/// routine's own code image): the loading pass touches memory the scenario
/// placement never reserved for this core.
Fixture ai_loading_footprint() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R5, mem::kSramBase + 0x4000);  // not part of the data contract
  a.li(R1, 2);
  a.label("loop");
  a.lw(R2, R25, 0);
  a.lw(R3, R5, 0);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "ai-loading-footprint";
  f.description = "loading-pass access escapes the declared data regions";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 64}};
  f.expect = Rule::kAiLoadingFootprint;
  return f;
}

/// A well-formed routine whose reserved data region coincides with a peer
/// core's: per-core determinism holds, but the scenario placement is unsafe.
Fixture ai_cross_core_overlap() {
  Assembler a(kCodeBase);
  a.li(R25, kDataBase);
  a.li(R1, 2);
  a.label("loop");
  a.lw(R2, R25, 0);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.halt();
  Fixture f;
  f.name = "ai-cross-core-overlap";
  f.description = "reserved data region overlaps a peer core's region";
  f.prog = a.assemble();
  f.cfg.loop_symbol = "loop";
  f.cfg.data_regions = {{kDataBase, 64}};
  f.cfg.peer_regions = {{kDataBase, 64}};
  f.expect = Rule::kAiCrossCoreOverlap;
  return f;
}

}  // namespace

std::vector<Fixture> negative_fixtures() {
  std::vector<Fixture> fs;
  fs.push_back(set_conflict());
  fs.push_back(dcache_conflict());
  fs.push_back(code_footprint());
  fs.push_back(noncacheable());
  fs.push_back(nwa_dummy_load());
  fs.push_back(halt_fallthrough());
  fs.push_back(self_modifying());
  fs.push_back(signature_discipline());
  fs.push_back(perf_counter());
  fs.push_back(unresolved_address());
  fs.push_back(indirect_loop_call());
  fs.push_back(unreachable_entry());
  fs.push_back(ai_exec_unproven());
  fs.push_back(ai_loading_footprint());
  fs.push_back(ai_cross_core_overlap());
  return fs;
}

const Fixture* find_fixture(const std::vector<Fixture>& fixtures,
                            const std::string& name) {
  for (const auto& f : fixtures)
    if (f.name == name) return &f;
  return nullptr;
}

}  // namespace detstl::analysis
