#pragma once
// Abstract cache-state interpretation of a wrapped self-test routine
// (stlint layer 2). Where the syntactic rules (analyzer.cpp) count lines per
// set, this module *proves* the paper's determinism obligations by abstract
// interpretation over the CFG, parameterized over the cache geometry
// (size / associativity / line bytes) and the write-allocate mode:
//
//   exec-miss-free        every instruction fetch and data access of the
//                         execution pass provably hits in the private L1s
//   loading-footprint     every loading-pass access stays inside the
//                         routine's reserved regions (declared data contract,
//                         own code image, TCMs)
//   set-conflict-free     no cache set is ever offered more distinct lines
//                         than its associativity (the no-eviction premise)
//   cross-core-disjoint   this core's reserved regions do not overlap any
//                         peer core's (scenario placement safety)
//   interference-bound    closed-form worst-case per-access bus delay for
//                         the non-graded cores while this test runs
//
// Domain. A classic must/may line-residency pair, specialised under the
// no-eviction premise: once `set-conflict-free` holds (every set sees at most
// `ways` distinct lines over the whole run), an LRU set never evicts — a
// (ways+1)-th distinct line would be required — so "certainly resident" is
// exactly "certainly touched". The must component is therefore a set of
// certainly-touched lines per cache (joined by intersection over paths); the
// may component accumulates every possibly-touched line per cache set
// (union), which both discharges the premise and yields the loading-phase
// footprint that the trace cross-validator (trace/xval.h) replays against.
//
// Phases. The wrapper loop (paper Fig. 2b) runs the body with r30=2 (loading
// pass) then r30=1 (execution pass). The interpreter peels it virtually:
// pass 1 flows from the loop head with *empty* caches (the wrapper
// invalidates first) and the outer back edge cut; the state carried along
// that back edge seeds pass 2, a fixpoint with the back edge restored. An
// execution-pass access is proven miss-free when
//   (a) its lines are certainly touched at that point (must-hit), or
//   (b) the replay argument applies: no set conflict, every conditional
//       branch in the footprint (bar the wrapper latch) and this access's
//       address re-derive identically each pass from loop-invariant
//       constants (iteration-local constprop, constprop.h root states), so
//       the execution pass repeats the loading pass's access trace — and,
//       under no-write-allocate, the store's lines are covered by loads
//       (the dummy-load contract) so the warm-up actually allocated them.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace detstl::analysis {

enum class ObligationKind : u8 {
  kExecMissFree,
  kLoadingFootprint,
  kSetConflictFree,
  kCrossCoreDisjoint,
  kInterferenceBound,
};

enum class ObligationStatus : u8 {
  kProven,         // holds for every concrete execution
  kUnproven,       // the analysis cannot establish it (maybe imprecision)
  kRefuted,        // a counterexample is statically certain
  kNotApplicable,  // e.g. cross-core disjointness with no peers
};

const char* obligation_name(ObligationKind k);
const char* obligation_status_name(ObligationStatus s);

struct Obligation {
  ObligationKind kind;
  ObligationStatus status;
  std::string detail;  // human-readable justification / counterexample
};

/// Worst-case shared-bus interference while this test runs, for an access of
/// a non-graded core (round-robin arbitration, paper Sec. IV):
///   t_max = 1 (grant) + first-beat flash miss + buffered beats of one
///           line refill — the longest single bus transaction the wrapped
///           test can issue;
///   d_max = (requesters-1) * t_max + (t_max - 1) — every other requester
///           slips in a worst-case transaction, plus arriving one cycle
///           after a grant.
struct InterferenceBound {
  u32 t_max = 0;
  u32 d_max = 0;
  u32 requesters = 0;  // 3 per core: ifetch0, data, ifetch1
  u32 line_bytes = 0;  // widest refill among the two L1s
};

/// Closed-form per-access bound for a given memory geometry and core count —
/// the same numbers `interpret()` reports as `ai-interference-bound`.
/// Exposed standalone so the mission-mode runtime (runtime/mission.h) checks
/// its measured per-access bus waits against the stlint prediction.
InterferenceBound interference_bound(const mem::MemSystemConfig& geom, unsigned num_cores);

/// One per-cache may-footprint: cache set index -> line base addresses that
/// may occupy it, with a sample PC per line for diagnostics.
struct SetFootprint {
  std::map<u32, std::map<u32, u32>> lines;  // set -> line -> sample pc
  u32 total_lines() const;
  u32 worst_set_occupancy() const;
};

struct AbsIntResult {
  /// False when the program has no recognisable wrapper loop (plain/TCM
  /// style); obligations are then empty and `not_analyzable_why` says why.
  bool analyzable = false;
  std::string not_analyzable_why;

  std::vector<Obligation> obligations;
  ObligationStatus status(ObligationKind k) const;
  bool all_proven() const;  // every obligation proven or not-applicable

  /// Execution-pass accesses that could not be proven miss-free: pc -> why.
  std::vector<std::pair<u32, std::string>> exec_unproven;
  /// Loading-pass accesses escaping the reserved regions: pc -> why.
  std::vector<std::pair<u32, std::string>> loading_violations;
  /// Reserved-region overlaps with peer cores (already formatted).
  std::vector<std::string> overlap_violations;

  InterferenceBound bound;

  /// May-footprints (I / D) of the whole loading+execution window — the
  /// static prediction of which lines the loading pass refills.
  SetFootprint ifoot, dfoot;

  /// All line base addresses the loading pass may refill (union of the two
  /// footprints, keyed per cache), consumed by the trace cross-validator.
  std::set<u32> predicted_loading_ilines;
  std::set<u32> predicted_loading_dlines;
};

/// Run the abstract interpreter. The second overload reuses an existing
/// ProgramModel (analyze() path); the first builds one internally.
AbsIntResult interpret(const isa::Program& prog, const AnalysisConfig& cfg);
AbsIntResult interpret(const isa::Program& prog, const AnalysisConfig& cfg,
                       const ProgramModel& model);

}  // namespace detstl::analysis
