#include "analysis/analyzer.h"

#include <algorithm>
#include <sstream>

#include "analysis/absint.h"
#include "common/bitutil.h"
#include "mem/memmap.h"

namespace detstl::analysis {

using namespace isa;

namespace {

std::string hex(u32 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Interval spans wider than this are treated as unresolved rather than
/// enumerated line by line (no realistic routine walks 64 KiB of scratch).
constexpr u32 kMaxSpan = 64 * 1024;

/// True when a write to r29 matches the MISR idiom (routine.cpp's
/// emit_misr_acc: slli r26,r29,1; srli r29,r29,31; or r29,r26,r29;
/// xor r29,r29,v) or the seed load (li r29 = lui + ori).
bool misr_idiom_write(const Instr& in) {
  switch (in.op) {
    case Op::kLui:
      return true;
    case Op::kOri:
      return in.rs1 == R29;
    case Op::kSrli:
      return in.rs1 == R29 && in.imm == 31;
    case Op::kOr:
    case Op::kXor:
      return in.rs1 == R29 || in.rs2 == R29;
    default:
      return false;
  }
}

/// Per-set line occupancy of one cache.
class SetMap {
 public:
  explicit SetMap(const mem::CacheConfig& cfg) : cfg_(cfg) {}

  void add(u32 addr, u32 pc) {
    const u32 line = addr / cfg_.line_bytes * cfg_.line_bytes;
    const u32 set = (addr / cfg_.line_bytes) % cfg_.num_sets();
    auto [it, fresh] = sets_[set].insert(line);
    (void)it;
    if (fresh) sample_pc_[line] = pc;
  }

  u32 total_lines() const {
    u32 n = 0;
    for (const auto& [set, lines] : sets_) n += static_cast<u32>(lines.size());
    return n;
  }

  /// Report every set holding more than `ways` distinct lines.
  void report_conflicts(Report& rep, Rule rule, const char* what,
                        std::string hint) const {
    for (const auto& [set, lines] : sets_) {
      if (lines.size() <= cfg_.ways) continue;
      std::ostringstream os;
      os << "execution-loop " << what << " maps " << lines.size()
         << " lines onto cache set " << set << " (associativity " << cfg_.ways
         << "): ";
      bool first = true;
      for (u32 line : lines) {
        if (!first) os << ", ";
        os << hex(line);
        first = false;
      }
      rep.add(Severity::kError, rule, sample_pc_.at(*lines.begin()), os.str(),
              hint);
    }
  }

 private:
  mem::CacheConfig cfg_;
  std::map<u32, std::set<u32>> sets_;
  std::map<u32, u32> sample_pc_;
};

}  // namespace

LoopRegion find_loop(const isa::Program& prog, const Cfg& g,
                     const std::string& loop_symbol) {
  LoopRegion lr;
  const auto edges = g.back_edges();
  if (!loop_symbol.empty() && prog.has_symbol(loop_symbol)) {
    lr.head = prog.symbol(loop_symbol);
    for (const auto& [br, t] : edges) {
      if (t == lr.head && br > lr.end) {
        lr.end = br;
        lr.found = true;
      }
    }
    if (lr.found) return lr;
  }
  // Infer: merge overlapping back-edge intervals, take the widest.
  std::vector<std::pair<u32, u32>> iv;
  for (const auto& [br, t] : edges) iv.emplace_back(t, br);
  std::sort(iv.begin(), iv.end());
  std::vector<std::pair<u32, u32>> merged;
  for (const auto& [lo, hi] : iv) {
    if (!merged.empty() && lo <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  for (const auto& [lo, hi] : merged) {
    if (!lr.found || hi - lo > lr.end - lr.head) {
      lr.head = lo;
      lr.end = hi;
      lr.found = true;
    }
  }
  return lr;
}

ProgramModel build_model(const isa::Program& prog, const AnalysisConfig& cfg) {
  ProgramModel m;
  ImageView image(prog);
  if (!image.contains(prog.entry(), 4)) return m;
  m.entry_ok = true;

  // CFG/constprop fixpoint: constant-resolved JALR and MTVEC targets become
  // new roots until the reachable set stops growing.
  std::set<u32> roots{prog.entry()};
  for (int iter = 0; iter < 5; ++iter) {
    m.graph.emplace(image, roots);
    m.cp = propagate(*m.graph, cfg.data_regions);
    bool grew = false;
    for (u32 t : m.cp.jalr_targets)
      if (image.contains(t, 4) && roots.insert(t).second) grew = true;
    for (u32 t : m.cp.mtvec_targets) {
      if (!image.contains(t, 4)) continue;
      m.isr_roots.insert(t);
      if (roots.insert(t).second) grew = true;
    }
    if (!grew) break;
  }
  const Cfg& g = *m.graph;

  m.loop = find_loop(prog, g, cfg.loop_symbol);
  if (!m.loop.found) return m;

  // Loop footprint: the back-edge interval, plus ISR code (interrupts fire
  // during the loop), plus callees invoked from inside the interval.
  for (const auto& [pc, in] : g.instrs())
    if (pc >= m.loop.head && pc <= m.loop.end) m.footprint.insert(pc);
  m.loop_extra_roots = m.isr_roots;
  for (u32 pc : m.footprint) {
    const Instr& in = g.instrs().at(pc);
    if (in.op == Op::kJal && in.rd != R0) {
      const u32 t = *direct_target(in, pc);
      if (t < m.loop.head || t > m.loop.end) m.loop_extra_roots.insert(t);
    }
    if (in.op == Op::kJalr && in.rd != R0) {
      const auto st = m.cp.at.find(pc);
      if (st == m.cp.at.end() || !st->second[in.rs1].is_const())
        m.unresolved_calls.push_back(pc);
    }
  }
  for (u32 pc : g.reachable_from(m.loop_extra_roots)) m.footprint.insert(pc);
  return m;
}

namespace {

Report analyze_impl(const isa::Program& prog, const AnalysisConfig& cfg,
                    const ProgramModel& m) {
  Report rep;
  if (!m.entry_ok) {
    rep.add(Severity::kError, Rule::kUnreachableEntry, prog.entry(),
            "entry point " + hex(prog.entry()) + " is outside the program image");
    return rep;
  }
  const Cfg& g = m.cfg();
  const ConstPropResult& cp = m.cp;

  // --- structural lints -------------------------------------------------------

  for (const auto& [b, bb] : g.blocks()) {
    if (bb.falls_off) {
      rep.add(Severity::kError, Rule::kHaltFallthrough, bb.end - 4,
              "reachable path continues past " + hex(bb.end) +
                  " into data or off the program image",
              "terminate the path with halt/ret or an unconditional branch "
              "before embedded data");
    }
  }

  std::vector<u32> code_pcs;
  for (const auto& [pc, in] : g.instrs())
    if (mem::is_bus(pc) && in.valid()) code_pcs.push_back(pc);
  const auto overlaps_code = [&](u32 lo, u32 hi) {  // [lo, hi)
    auto it = std::lower_bound(code_pcs.begin(), code_pcs.end(),
                               lo >= 3 ? lo - 3 : 0);
    return it != code_pcs.end() && *it < hi;
  };

  for (const auto& [pc, in] : g.instrs()) {
    if (!in.valid()) continue;
    if (is_store(in.op)) {
      auto it = cp.access_addr.find(pc);
      if (it != cp.access_addr.end() && it->second.bounded() &&
          it->second.width() <= kMaxSpan) {
        const u32 lo = it->second.lo;
        const u32 hi = it->second.hi + mem_size(in.op);
        if (overlaps_code(lo, hi)) {
          rep.add(Severity::kError, Rule::kSelfModifyingCode, pc,
                  "store to [" + hex(lo) + ", " + hex(hi) +
                      ") overwrites reachable code",
                  "self-test code must be immutable; write results to the "
                  "data scratch area");
        }
      }
    }
    if (writes_rd(in) && in.rd == R29 && !misr_idiom_write(in)) {
      rep.add(Severity::kWarning, Rule::kSignatureDiscipline, pc,
              "signature register r29 written outside the MISR idiom",
              "fold observations with emit_misr_acc (rotate-left-1 then XOR) "
              "so faults cannot alias to the golden signature");
    }
  }

  // --- execution-loop cache rules ---------------------------------------------

  if (!cfg.check_cache_determinism) return rep;

  const LoopRegion& loop = m.loop;
  if (!loop.found) {
    rep.add(Severity::kWarning, Rule::kUnresolvedAddress, prog.entry(),
            "no execution loop (back edge) found; cache determinism rules "
            "were not applied",
            "cache-based wrappers must run the body in a loading+execution "
            "loop (paper Fig. 2b)");
    return rep;
  }

  const std::set<u32>& fp = m.footprint;
  for (u32 pc : m.unresolved_calls) {
    rep.add(Severity::kWarning, Rule::kUnresolvedAddress, pc,
            "indirect call target inside the execution loop cannot be "
            "resolved; the code footprint may be incomplete");
  }

  // Rule 1: instruction footprint vs the I-cache.
  SetMap imap(cfg.mem.icache);
  for (u32 pc : fp)
    if (mem::is_bus(pc)) imap.add(pc, pc);
  const u32 icache_bytes = cfg.mem.icache.size_bytes;
  if (imap.total_lines() * cfg.mem.icache.line_bytes > icache_bytes) {
    rep.add(Severity::kError, Rule::kCodeFootprint, loop.head,
            "execution-loop code footprint (" +
                std::to_string(imap.total_lines() * cfg.mem.icache.line_bytes) +
                " B over " + std::to_string(imap.total_lines()) +
                " lines) exceeds the I-cache (" + std::to_string(icache_bytes) +
                " B)",
            "split the routine into cache-sized parts (paper rule 2.2)");
  }
  imap.report_conflicts(rep, Rule::kIcacheConflict, "code",
                        "keep at most <associativity> code lines per set: "
                        "pack the loop contiguously or split the routine "
                        "(paper rule 2.2)");

  // Rules 2-4: data footprint vs the D-cache, bus-coupled accesses, and the
  // no-write-allocate dummy-load fix-up.
  SetMap dmap(cfg.mem.dcache);
  std::set<u32> loaded_lines;
  std::vector<std::pair<u32, std::vector<u32>>> store_lines;  // pc -> lines
  for (u32 pc : fp) {
    const Instr& in = g.instrs().at(pc);
    if (!in.valid() || (!is_load(in.op) && !is_store(in.op))) continue;
    const u32 size = mem_size(in.op);
    if (in.op == Op::kAmoAdd) {
      rep.add(Severity::kError, Rule::kNoncacheableAccess, pc,
              "atomic access inside the execution loop is serviced by the "
              "shared bus and re-couples the test to bus contention",
              "move synchronisation outside the loading/execution loop");
      continue;
    }
    auto it = cp.access_addr.find(pc);
    const AVal addr = it == cp.access_addr.end() ? AVal::top() : it->second;
    if (!addr.bounded() || addr.width() > kMaxSpan) {
      rep.add(Severity::kWarning, Rule::kUnresolvedAddress, pc,
              "memory access address inside the execution loop cannot be "
              "bounded; cache-residence cannot be proven",
              "use static addressing from li/la bases (paper Sec. III)");
      continue;
    }
    const u32 lo = addr.lo;
    const u32 hi = addr.hi + size;  // [lo, hi)
    bool shared = false;
    for (const auto& r : cfg.shared_regions) {
      if (r.overlaps(lo, hi)) {
        rep.add(Severity::kError, Rule::kNoncacheableAccess, pc,
                "access to shared communication region [" + hex(r.base) + ", " +
                    hex(r.end()) + ") inside the execution loop",
                "mailbox/barrier traffic must happen before the loop or "
                "after it with the caches disabled");
        shared = true;
        break;
      }
    }
    if (shared) continue;
    const bool tcm = (mem::is_itcm(lo) && mem::is_itcm(hi - 1)) ||
                     (mem::is_dtcm(lo) && mem::is_dtcm(hi - 1));
    if (tcm) continue;  // private single-cycle memory: never on the bus
    const bool bus = mem::is_bus(lo) && mem::is_bus(hi - 1);
    if (!bus) {
      rep.add(Severity::kError, Rule::kNoncacheableAccess, pc,
              "access to [" + hex(lo) + ", " + hex(hi) +
                  ") targets unmapped or mixed address space inside the "
                  "execution loop");
      continue;
    }
    if (is_store(in.op) && mem::is_flash(lo)) {
      rep.add(Severity::kError, Rule::kNoncacheableAccess, pc,
              "store to flash at " + hex(lo) + " inside the execution loop",
              "stores must target the SRAM data scratch area");
      continue;
    }
    std::vector<u32> lines;
    const u32 lb = cfg.mem.dcache.line_bytes;
    for (u32 line = lo / lb * lb; line < hi; line += lb) {
      dmap.add(line, pc);
      lines.push_back(line);
      if (is_load(in.op)) loaded_lines.insert(line);
    }
    if (is_store(in.op)) store_lines.emplace_back(pc, std::move(lines));
  }
  dmap.report_conflicts(rep, Rule::kDcacheConflict, "data",
                        "shrink or realign the data footprint so at most "
                        "<associativity> lines alias each set");

  if (!cfg.write_allocate) {
    for (const auto& [pc, lines] : store_lines) {
      for (u32 line : lines) {
        if (!loaded_lines.count(line)) {
          rep.add(Severity::kError, Rule::kNwaMissingDummyLoad, pc,
                  "store to line " + hex(line) +
                      " with write-allocate disabled, and no load in the loop "
                      "touches that line: every execution-loop iteration "
                      "writes around the cache onto the bus",
                  "follow the store with a dummy load of the same address "
                  "(paper Sec. III step 1)");
          break;
        }
      }
    }
  }

  // Rule 5: counter reads feeding the signature without opting in.
  if (!cfg.use_perf_counters) {
    for (const auto& [pc, in] : g.instrs()) {
      if (in.op != Op::kCsrr || !is_counter_csr(in.csr)) continue;
      const bool in_loop = fp.count(pc) != 0;
      rep.add(in_loop ? Severity::kError : Severity::kWarning,
              Rule::kPerfCounterRead, pc,
              std::string("performance-counter CSR read") +
                  (in_loop ? " inside the execution loop" : "") +
                  " with use_perf_counters=false",
              "set use_perf_counters=true (and recalibrate) or drop the read; "
              "un-audited counter values destabilise the signature");
    }
  }

  // --- layer 2: abstract-interpretation obligations (absint.h) ----------------

  if (!cfg.abstract_interpretation) return rep;
  const AbsIntResult ai = interpret(prog, cfg, m);
  if (!ai.analyzable) return rep;

  // When the syntactic layer already refuted the cache structure, the
  // per-access unproven verdicts are downstream noise of the same root
  // cause — report the structural error once, not per access.
  const bool structure_bad = rep.has(Rule::kIcacheConflict) ||
                             rep.has(Rule::kDcacheConflict) ||
                             rep.has(Rule::kCodeFootprint);
  const bool ai_conflict =
      ai.status(ObligationKind::kSetConflictFree) == ObligationStatus::kRefuted;
  if (ai_conflict && !structure_bad) {
    const Obligation* o = nullptr;
    for (const auto& ob : ai.obligations)
      if (ob.kind == ObligationKind::kSetConflictFree) o = &ob;
    rep.add(Severity::kError, Rule::kAiExecUnproven, loop.head,
            "abstract may-footprint refutes the no-eviction premise: " +
                (o ? o->detail : std::string()),
            "shrink or realign the footprint so every set holds at most "
            "<associativity> lines");
  }
  if (!structure_bad && !ai_conflict) {
    for (const auto& [pc, why] : ai.exec_unproven) {
      if (rep.has_error_at(pc)) continue;
      rep.add(Severity::kError, Rule::kAiExecUnproven, pc,
              "execution-pass access not provably miss-free: " + why,
              "derive addresses from loop-invariant li/la bases and keep "
              "branch decisions independent of loaded data (paper Sec. III)");
    }
  }
  for (const auto& [pc, why] : ai.loading_violations) {
    if (rep.has_error_at(pc)) continue;
    rep.add(Severity::kError, Rule::kAiLoadingFootprint, pc, why,
            "declare the target in the routine's data contract or move the "
            "access outside the loading/execution loop");
  }
  for (const auto& v : ai.overlap_violations) {
    rep.add(Severity::kError, Rule::kAiCrossCoreOverlap, prog.entry(), v,
            "re-place the scenario so each graded core's code and data "
            "regions are private");
  }
  if (rep.clean() &&
      ai.status(ObligationKind::kExecMissFree) == ObligationStatus::kProven) {
    const Obligation* o = nullptr;
    for (const auto& ob : ai.obligations)
      if (ob.kind == ObligationKind::kInterferenceBound) o = &ob;
    rep.add(Severity::kInfo, Rule::kAiInterferenceBound, loop.head,
            o ? o->detail : "interference bound computed");
  }

  return rep;
}

}  // namespace

Report analyze(const isa::Program& prog, const AnalysisConfig& cfg) {
  const ProgramModel m = build_model(prog, cfg);
  Report rep = analyze_impl(prog, cfg, m);
  rep.annotate(prog);
  return rep;
}

}  // namespace detstl::analysis
