#pragma once
// Structured diagnostics for the static determinism verifier. Every finding
// carries a machine-readable rule id, a severity, the PC it anchors to and a
// fix hint, so the CLI (tools/stlint.cpp), the build_wrapped() verification
// hook and the tests can all consume the same report. Report::annotate()
// additionally resolves each PC against the program's symbol table
// ("t0_loop+0x14") so diagnostics stay readable without a disassembly.

#include <string>
#include <vector>

#include "common/bitutil.h"

namespace detstl::isa {
class Program;
}

namespace detstl::analysis {

enum class Severity : u8 { kInfo, kWarning, kError };

/// Rule catalogue (documented with paper references in docs/static_analysis.md).
/// Layer 1 (syntactic rules) and layer 2 (abstract-interpretation obligations,
/// the `ai-` prefix) share one id space so --fixtures and SARIF enumerate both.
enum class Rule : u8 {
  // --- layer 1: syntactic / structural rules ---------------------------------
  kIcacheConflict,       // loop code maps >ways lines onto one I$ set
  kDcacheConflict,       // loop data maps >ways lines onto one D$ set
  kCodeFootprint,        // reachable code exceeds the I$ capacity
  kNoncacheableAccess,   // bus-coupled access inside the execution loop
  kNwaMissingDummyLoad,  // store without the no-write-allocate fix-up
  kSelfModifyingCode,    // store targets the reachable code image
  kHaltFallthrough,      // reachable path runs past the code into data
  kSignatureDiscipline,  // r29 written outside the MISR idiom
  kPerfCounterRead,      // counter CSR read with use_perf_counters=false
  kUnresolvedAddress,    // memory access the interval analysis cannot bound
  kUnreachableEntry,     // entry point outside the program image
  // --- layer 2: abstract-interpretation obligations (absint.h) ---------------
  kAiExecUnproven,       // exec-loop access not provably a repeat of loading
  kAiLoadingFootprint,   // loading-loop access outside the reserved regions
  kAiCrossCoreOverlap,   // this core's reserved regions overlap a peer's
  kAiInterferenceBound,  // info: computed per-access bus-interference bound
};

const char* rule_id(Rule r);
const char* severity_name(Severity s);

/// All rules, in catalogue order (fixture-coverage self-check, SARIF driver).
const std::vector<Rule>& rule_catalogue();

struct Diagnostic {
  Severity severity = Severity::kError;
  Rule rule = Rule::kHaltFallthrough;
  u32 pc = 0;  // instruction the finding anchors to (0 = program-level)
  std::string message;
  std::string hint;   // how to fix (may be empty)
  std::string where;  // nearest symbol + offset, filled by Report::annotate()
};

class Report {
 public:
  void add(Severity sev, Rule rule, u32 pc, std::string message,
           std::string hint = {});

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  unsigned errors() const { return errors_; }
  unsigned warnings() const { return warnings_; }
  bool clean() const { return errors_ == 0; }

  /// True when at least one diagnostic carries `rule`.
  bool has(Rule rule) const;

  /// True when an *error*-severity diagnostic anchors to `pc` (used by the
  /// abstract-interpretation layer to avoid double-reporting).
  bool has_error_at(u32 pc) const;

  /// Resolve every diagnostic PC against the program's symbol table,
  /// filling Diagnostic::where with "symbol+0xoff".
  void annotate(const isa::Program& prog);

  /// Multi-line human-readable rendering ("error[icache-conflict] pc=0x...").
  std::string format() const;

 private:
  std::vector<Diagnostic> diags_;
  unsigned errors_ = 0;
  unsigned warnings_ = 0;
};

}  // namespace detstl::analysis
