#include "analysis/sarif.h"

#include <cstdio>
#include <sstream>

#include "common/version.h"

namespace detstl::analysis {

namespace {

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kInfo: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

}  // namespace

std::string to_sarif(const std::vector<SarifTarget>& targets) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"stlint\",\n"
     << "          \"version\": \"" << kDetstlVersion << "\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/detstl/docs/static_analysis.md\",\n"
     << "          \"rules\": [\n";
  bool first = true;
  for (const Rule r : rule_catalogue()) {
    if (!first) os << ",\n";
    first = false;
    os << "            {\"id\": \"" << rule_id(r)
       << "\", \"shortDescription\": {\"text\": \"" << rule_id(r)
       << " (see docs/static_analysis.md)\"}}";
  }
  os << "\n          ]\n        }\n      },\n"
     << "      \"results\": [\n";
  first = true;
  for (const auto& t : targets) {
    if (!t.report) continue;
    for (const auto& d : t.report->diagnostics()) {
      if (!first) os << ",\n";
      first = false;
      char pc[16];
      std::snprintf(pc, sizeof pc, "0x%08x", d.pc);
      std::string text = "[" + t.name + "] " + d.message;
      if (!d.hint.empty()) text += " — hint: " + d.hint;
      os << "        {\n"
         << "          \"ruleId\": \"" << rule_id(d.rule) << "\",\n"
         << "          \"level\": \"" << sarif_level(d.severity) << "\",\n"
         << "          \"message\": {\"text\": \"" << esc(text) << "\"},\n"
         << "          \"locations\": [\n            {\n"
         << "              \"physicalLocation\": {\n"
         << "                \"artifactLocation\": {\"uri\": "
            "\"src/core/routines.h\"},\n"
         << "                \"region\": {\"startLine\": 1}\n"
         << "              },\n"
         << "              \"logicalLocations\": [\n"
         << "                {\"name\": \"" << esc(d.where.empty() ? pc : d.where)
         << "\", \"fullyQualifiedName\": \"" << esc(t.name) << "@" << pc
         << "\"}\n"
         << "              ]\n            }\n          ]\n        }";
    }
  }
  os << (first ? "" : "\n") << "      ]\n    }\n  ]\n}\n";
  return os.str();
}

}  // namespace detstl::analysis
