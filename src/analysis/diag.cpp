#include "analysis/diag.h"

#include <algorithm>
#include <sstream>

#include "isa/program.h"

namespace detstl::analysis {

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kIcacheConflict: return "icache-conflict";
    case Rule::kDcacheConflict: return "dcache-conflict";
    case Rule::kCodeFootprint: return "code-footprint";
    case Rule::kNoncacheableAccess: return "noncacheable-access";
    case Rule::kNwaMissingDummyLoad: return "nwa-missing-dummy-load";
    case Rule::kSelfModifyingCode: return "self-modifying-code";
    case Rule::kHaltFallthrough: return "halt-fallthrough";
    case Rule::kSignatureDiscipline: return "signature-discipline";
    case Rule::kPerfCounterRead: return "perf-counter-read";
    case Rule::kUnresolvedAddress: return "unresolved-address";
    case Rule::kUnreachableEntry: return "unreachable-entry";
    case Rule::kAiExecUnproven: return "ai-exec-unproven";
    case Rule::kAiLoadingFootprint: return "ai-loading-footprint";
    case Rule::kAiCrossCoreOverlap: return "ai-cross-core-overlap";
    case Rule::kAiInterferenceBound: return "ai-interference-bound";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<Rule>& rule_catalogue() {
  static const std::vector<Rule> kRules = {
      Rule::kIcacheConflict,      Rule::kDcacheConflict,
      Rule::kCodeFootprint,       Rule::kNoncacheableAccess,
      Rule::kNwaMissingDummyLoad, Rule::kSelfModifyingCode,
      Rule::kHaltFallthrough,     Rule::kSignatureDiscipline,
      Rule::kPerfCounterRead,     Rule::kUnresolvedAddress,
      Rule::kUnreachableEntry,    Rule::kAiExecUnproven,
      Rule::kAiLoadingFootprint,  Rule::kAiCrossCoreOverlap,
      Rule::kAiInterferenceBound,
  };
  return kRules;
}

void Report::add(Severity sev, Rule rule, u32 pc, std::string message,
                 std::string hint) {
  if (sev == Severity::kError) ++errors_;
  if (sev == Severity::kWarning) ++warnings_;
  diags_.push_back(
      Diagnostic{sev, rule, pc, std::move(message), std::move(hint), {}});
}

bool Report::has(Rule rule) const {
  for (const auto& d : diags_)
    if (d.rule == rule) return true;
  return false;
}

bool Report::has_error_at(u32 pc) const {
  for (const auto& d : diags_)
    if (d.severity == Severity::kError && d.pc == pc) return true;
  return false;
}

void Report::annotate(const isa::Program& prog) {
  // Sorted (address, symbol) pairs; a diagnostic resolves to the greatest
  // symbol at or below its PC, provided it is within a plausible distance
  // (one routine image, not a stray label megabytes away).
  constexpr u32 kMaxSymbolDistance = 64 * 1024;
  std::vector<std::pair<u32, const std::string*>> syms;
  syms.reserve(prog.symbols().size());
  for (const auto& [name, addr] : prog.symbols()) syms.emplace_back(addr, &name);
  std::sort(syms.begin(), syms.end());
  for (auto& d : diags_) {
    if (d.pc == 0 || syms.empty()) continue;
    auto it = std::upper_bound(
        syms.begin(), syms.end(), std::make_pair(d.pc, (const std::string*)nullptr),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == syms.begin()) continue;
    --it;
    const u32 off = d.pc - it->first;
    if (off > kMaxSymbolDistance) continue;
    std::ostringstream os;
    os << *it->second;
    if (off != 0) os << "+0x" << std::hex << off;
    d.where = os.str();
  }
}

std::string Report::format() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << severity_name(d.severity) << '[' << rule_id(d.rule) << ']';
    if (d.pc != 0) os << " pc=0x" << std::hex << d.pc << std::dec;
    if (!d.where.empty()) os << " (" << d.where << ')';
    os << ": " << d.message << '\n';
    if (!d.hint.empty()) os << "  hint: " << d.hint << '\n';
  }
  os << errors_ << " error(s), " << warnings_ << " warning(s)\n";
  return os.str();
}

}  // namespace detstl::analysis
