#include "analysis/diag.h"

#include <sstream>

namespace detstl::analysis {

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kIcacheConflict: return "icache-conflict";
    case Rule::kDcacheConflict: return "dcache-conflict";
    case Rule::kCodeFootprint: return "code-footprint";
    case Rule::kNoncacheableAccess: return "noncacheable-access";
    case Rule::kNwaMissingDummyLoad: return "nwa-missing-dummy-load";
    case Rule::kSelfModifyingCode: return "self-modifying-code";
    case Rule::kHaltFallthrough: return "halt-fallthrough";
    case Rule::kSignatureDiscipline: return "signature-discipline";
    case Rule::kPerfCounterRead: return "perf-counter-read";
    case Rule::kUnresolvedAddress: return "unresolved-address";
    case Rule::kUnreachableEntry: return "unreachable-entry";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void Report::add(Severity sev, Rule rule, u32 pc, std::string message,
                 std::string hint) {
  if (sev == Severity::kError) ++errors_;
  if (sev == Severity::kWarning) ++warnings_;
  diags_.push_back(
      Diagnostic{sev, rule, pc, std::move(message), std::move(hint)});
}

bool Report::has(Rule rule) const {
  for (const auto& d : diags_)
    if (d.rule == rule) return true;
  return false;
}

std::string Report::format() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << severity_name(d.severity) << '[' << rule_id(d.rule) << ']';
    if (d.pc != 0) os << " pc=0x" << std::hex << d.pc << std::dec;
    os << ": " << d.message << '\n';
    if (!d.hint.empty()) os << "  hint: " << d.hint << '\n';
  }
  os << errors_ << " error(s), " << warnings_ << " warning(s)\n";
  return os.str();
}

}  // namespace detstl::analysis
