#pragma once
// Static determinism verifier for cache-wrapped self-test routines.
//
// The paper's guarantee (Sec. III) holds only if, during the execution loop,
// every instruction fetch and data access of the wrapped routine hits in the
// private L1s. This pass proves that property on the assembled program —
// before any simulation — or refutes it with precise diagnostics:
//
//  1. CFG + reachability over the decoded instruction stream (cfg.h);
//  2. code-footprint analysis mapping every reachable in-loop fetch to
//     I-cache sets, rejecting capacity/conflict self-evictions;
//  3. data-access interval analysis (constprop.h) mapping loads/stores to
//     D-cache sets, flagging bus-coupled accesses inside the loop and stores
//     lacking the no-write-allocate dummy-load fix-up;
//  4. structural lints: self-modifying code, fall-through past halt,
//     signature updates outside the MISR idiom, perf-counter reads with
//     use_perf_counters=false.

#include <stdexcept>
#include <string>

#include "analysis/constprop.h"
#include "analysis/diag.h"
#include "mem/memsys.h"

namespace detstl::analysis {

struct AnalysisConfig {
  mem::MemSystemConfig mem{};

  /// Apply the execution-loop cache rules (2-3 above). Off for plain/TCM
  /// wrappers whose determinism argument does not rest on the caches.
  bool check_cache_determinism = true;
  bool write_allocate = true;
  bool use_perf_counters = false;

  /// Label of the execution-loop head (e.g. "t0_loop"). When empty or
  /// undefined in the program, the loop is inferred as the outermost
  /// back-edge interval.
  std::string loop_symbol;

  /// Declared data scratch areas (routine data contract). Guides interval
  /// widening and the D-cache footprint.
  std::vector<AddrRange> data_regions;

  /// Shared-communication areas (mailboxes, barrier counters). Any in-loop
  /// access re-couples the test to the bus/coherence protocol and is an
  /// error.
  std::vector<AddrRange> shared_regions;
};

/// Thrown by enforcing callers (build_wrapped with LintMode::kEnforce).
class AnalysisError : public std::runtime_error {
 public:
  AnalysisError(std::string what, Report report)
      : std::runtime_error(std::move(what)), report_(std::move(report)) {}
  const Report& report() const { return report_; }

 private:
  Report report_;
};

Report analyze(const isa::Program& prog, const AnalysisConfig& cfg);

}  // namespace detstl::analysis
