#pragma once
// Static determinism verifier for cache-wrapped self-test routines.
//
// The paper's guarantee (Sec. III) holds only if, during the execution loop,
// every instruction fetch and data access of the wrapped routine hits in the
// private L1s. This pass proves that property on the assembled program —
// before any simulation — or refutes it with precise diagnostics:
//
//  1. CFG + reachability over the decoded instruction stream (cfg.h);
//  2. code-footprint analysis mapping every reachable in-loop fetch to
//     I-cache sets, rejecting capacity/conflict self-evictions;
//  3. data-access interval analysis (constprop.h) mapping loads/stores to
//     D-cache sets, flagging bus-coupled accesses inside the loop and stores
//     lacking the no-write-allocate dummy-load fix-up;
//  4. structural lints: self-modifying code, fall-through past halt,
//     signature updates outside the MISR idiom, perf-counter reads with
//     use_perf_counters=false;
//  5. abstract cache-state interpretation (absint.h): a must/may residency
//     analysis over the loading/execution phases that upgrades the syntactic
//     rules to per-configuration proof obligations — exec-loop miss-freedom,
//     loading footprint containment, cross-core disjointness, and a static
//     per-access bus-interference bound.

#include <stdexcept>
#include <string>

#include "analysis/constprop.h"
#include "analysis/diag.h"
#include "mem/memsys.h"

namespace detstl::analysis {

struct AnalysisConfig {
  mem::MemSystemConfig mem{};

  /// Apply the execution-loop cache rules (2-3 above). Off for plain/TCM
  /// wrappers whose determinism argument does not rest on the caches.
  bool check_cache_determinism = true;
  bool write_allocate = true;
  bool use_perf_counters = false;

  /// Run the abstract cache-state interpreter (layer 2, absint.h) on top of
  /// the syntactic rules. Only meaningful with check_cache_determinism.
  bool abstract_interpretation = true;

  /// Label of the execution-loop head (e.g. "t0_loop"). When empty or
  /// undefined in the program, the loop is inferred as the outermost
  /// back-edge interval.
  std::string loop_symbol;

  /// Declared data scratch areas (routine data contract). Guides interval
  /// widening and the D-cache footprint.
  std::vector<AddrRange> data_regions;

  /// Shared-communication areas (mailboxes, barrier counters). Any in-loop
  /// access re-couples the test to the bus/coherence protocol and is an
  /// error.
  std::vector<AddrRange> shared_regions;

  /// Reserved regions (code + data) of the *other* graded cores in the same
  /// scenario slot. The cross-core disjointness obligation refutes when this
  /// core's reserved regions overlap any of them. Empty = single-core run,
  /// obligation not applicable.
  std::vector<AddrRange> peer_regions;

  /// Cores sharing the bus in the scenario (graded + non-graded), used for
  /// the worst-case per-access interference bound (requesters = 3 per core).
  unsigned num_cores = 1;
};

/// Execution-loop region: [head, back_edge_pc], inclusive.
struct LoopRegion {
  u32 head = 0;
  u32 end = 0;
  bool found = false;
};

/// Locate the wrapper's loading/execution loop: prefer `loop_symbol` (taking
/// the widest back edge returning to it), otherwise the widest merged
/// back-edge interval.
LoopRegion find_loop(const isa::Program& prog, const Cfg& g,
                     const std::string& loop_symbol);

/// Shared orchestration state: the CFG/constprop fixpoint and the resolved
/// loop structure, computed once and consumed by both the syntactic rules
/// (analyze) and the abstract interpreter (absint.h) / the trace
/// cross-validator (trace/xval.h).
struct ProgramModel {
  bool entry_ok = false;        // entry decodes inside the image
  std::optional<Cfg> graph;     // engaged when entry_ok
  ConstPropResult cp;
  std::set<u32> isr_roots;      // constant MTVEC targets
  LoopRegion loop;
  /// Instruction PCs of the execution-loop footprint: the back-edge interval
  /// plus ISR code and callees invoked from inside it.
  std::set<u32> footprint;
  /// Footprint roots outside [loop.head, loop.end] (callee entries, ISRs).
  std::set<u32> loop_extra_roots;
  /// In-loop JALR pcs whose target the interval analysis cannot resolve
  /// (the footprint may be incomplete; reported as unresolved-address).
  std::vector<u32> unresolved_calls;

  const Cfg& cfg() const { return *graph; }
};

/// Build the CFG/constprop fixpoint (constant-resolved JALR and MTVEC
/// targets become new roots until the reachable set stops growing) and
/// resolve the loop footprint.
ProgramModel build_model(const isa::Program& prog, const AnalysisConfig& cfg);

/// Thrown by enforcing callers (build_wrapped with LintMode::kEnforce).
class AnalysisError : public std::runtime_error {
 public:
  AnalysisError(std::string what, Report report)
      : std::runtime_error(std::move(what)), report_(std::move(report)) {}
  const Report& report() const { return report_; }

 private:
  Report report_;
};

Report analyze(const isa::Program& prog, const AnalysisConfig& cfg);

}  // namespace detstl::analysis
