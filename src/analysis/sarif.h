#pragma once
// SARIF 2.1.0 serialisation of lint reports (stlint --sarif). One run per
// invocation; every catalogue rule is listed in the driver so viewers can
// show rule metadata even for clean runs, and each diagnostic becomes a
// result whose logical location carries the symbol+PC (the routines have no
// source files — they are generated programs — so physical locations anchor
// to the registry source with the PC in the message).

#include <string>
#include <vector>

#include "analysis/diag.h"

namespace detstl::analysis {

struct SarifTarget {
  std::string name;           // e.g. "alu [cache, write-allocate]"
  const Report* report;
};

/// Serialise the targets' diagnostics as one SARIF 2.1.0 run.
std::string to_sarif(const std::vector<SarifTarget>& targets);

}  // namespace detstl::analysis
