#pragma once
// Purpose-built negative programs, one per rule class, used three ways: by
// `stlint --fixture <name>` (a runnable demo of each diagnostic), by the
// ctest exit-code checks, and by the unit tests. Each fixture is a small
// assembled program engineered to violate exactly one determinism rule.

#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace detstl::analysis {

struct Fixture {
  std::string name;
  std::string description;
  isa::Program prog;
  AnalysisConfig cfg;
  Rule expect;
  Severity expect_severity = Severity::kError;
};

/// All negative fixtures. Each must produce its `expect` rule (and nothing
/// below `expect_severity`) under its bundled config.
std::vector<Fixture> negative_fixtures();

/// Fixture by name, or nullptr.
const Fixture* find_fixture(const std::vector<Fixture>& fixtures,
                            const std::string& name);

}  // namespace detstl::analysis
