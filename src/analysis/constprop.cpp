#include "analysis/constprop.h"

#include "isa/alu.h"

namespace detstl::analysis {

using namespace isa;

AVal join(const AVal& a, const AVal& b) {
  if (a.kind == AVal::kBot) return b;
  if (b.kind == AVal::kBot) return a;
  if (a.kind == AVal::kTop || b.kind == AVal::kTop) return AVal::top();
  return AVal::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

namespace {

/// Joins at a loop head before the interval is widened. Large enough that
/// short strided loops (64-byte scratch walks) still converge exactly.
constexpr unsigned kWidenAfter = 64;

AVal shifted(const AVal& a, i64 delta) {
  if (!a.bounded()) return a;
  const i64 lo = static_cast<i64>(a.lo) + delta;
  const i64 hi = static_cast<i64>(a.hi) + delta;
  if (lo < 0 || hi > 0xffffffffll) return AVal::top();
  return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi));
}

AVal add_vals(const AVal& a, const AVal& b) {
  if (b.is_const()) return shifted(a, static_cast<i64>(b.lo));
  if (a.is_const()) return shifted(b, static_cast<i64>(a.lo));
  if (!a.bounded() || !b.bounded()) return AVal::top();
  const i64 lo = static_cast<i64>(a.lo) + b.lo;
  const i64 hi = static_cast<i64>(a.hi) + b.hi;
  if (hi > 0xffffffffll) return AVal::top();
  return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi));
}

AVal sub_vals(const AVal& a, const AVal& b) {
  if (!a.bounded() || !b.bounded()) return AVal::top();
  const i64 lo = static_cast<i64>(a.lo) - b.hi;
  const i64 hi = static_cast<i64>(a.hi) - b.lo;
  if (lo < 0) return AVal::top();
  return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi));
}

/// Abstract transfer of one instruction.
void transfer(const Instr& in, u32 pc, RegState& regs) {
  if (!in.valid() || !writes_rd(in)) return;
  AVal v = AVal::top();
  const AVal a = regs[in.rs1];
  switch (op_class(in.op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv: {
      const bool imm_form = !reads_rs2(in);
      const AVal b = imm_form ? AVal::cst(static_cast<u32>(in.imm)) : regs[in.rs2];
      const bool unary = !reads_rs1(in);  // LUI
      if ((unary || a.is_const()) && b.is_const() && !is_r64(in.op)) {
        v = AVal::cst(alu32(in.op, unary ? 0 : a.lo, b.lo).value);
      } else if (in.op == Op::kAdd) {
        v = add_vals(a, b);
      } else if (in.op == Op::kAddi) {
        v = shifted(a, in.imm);
      } else if (in.op == Op::kSub) {
        v = sub_vals(a, b);
      }
      break;
    }
    case OpClass::kMem:
      v = AVal::top();  // loaded data / AMO old value
      break;
    case OpClass::kBranch:
      if (in.op == Op::kJal || in.op == Op::kJalr) v = AVal::cst(pc + 4);
      break;
    case OpClass::kSys:
    case OpClass::kInvalid:
      v = AVal::top();  // CSR reads
      break;
  }
  regs[in.rd] = v;
  if (is_r64(in.op) && in.rd + 1u < kNumRegs) regs[in.rd + 1] = AVal::top();
  regs[R0] = AVal::cst(0);
}

/// Widen `nv` (the grown hull at a loop head): clamp to the declared data
/// region the old value lived in, or give up to top. The clamp is a fixpoint
/// — a further stride past `end()` (the loop-exit compare bound) re-clamps to
/// the same interval instead of escaping to top.
AVal widen(const AVal& old, const AVal& nv,
           const std::vector<AddrRange>& regions) {
  if (!old.bounded() || !nv.bounded()) return AVal::top();
  for (const auto& r : regions) {
    if (r.contains(old.lo) && nv.lo >= r.base && nv.lo <= r.end())
      return AVal::range(r.base, r.end());  // include the one-past-end bound
  }
  return AVal::top();
}

}  // namespace

ConstPropResult propagate(const Cfg& cfg,
                          const std::vector<AddrRange>& data_regions) {
  return propagate(cfg, data_regions, {});
}

ConstPropResult propagate(const Cfg& cfg,
                          const std::vector<AddrRange>& data_regions,
                          const std::map<u32, RegState>& root_states) {
  ConstPropResult res;

  std::map<u32, RegState> in_state;
  std::map<u32, unsigned> join_count;
  RegState entry_state;
  entry_state.fill(AVal::top());  // registers are unknown at entry
  entry_state[R0] = AVal::cst(0);

  std::vector<u32> work;
  for (u32 r : cfg.roots())
    if (cfg.block_at(r)) {
      const auto rs = root_states.find(r);
      in_state[r] = rs == root_states.end() ? entry_state : rs->second;
      in_state[r][R0] = AVal::cst(0);
      work.push_back(r);
    }

  while (!work.empty()) {
    const u32 b = work.back();
    work.pop_back();
    const BasicBlock* bb = cfg.block_at(b);
    if (!bb) continue;
    RegState regs = in_state.at(b);
    for (u32 pc = bb->begin; pc < bb->end; pc += 4) {
      transfer(cfg.instrs().at(pc), pc, regs);
    }
    for (u32 s : bb->succs) {
      if (!cfg.block_at(s)) continue;
      auto it = in_state.find(s);
      if (it == in_state.end()) {
        in_state[s] = regs;
        work.push_back(s);
        continue;
      }
      RegState merged = it->second;
      bool changed = false;
      const bool widening = ++join_count[s] > kWidenAfter;
      for (unsigned r = 0; r < kNumRegs; ++r) {
        AVal nv = join(merged[r], regs[r]);
        if (nv == merged[r]) continue;
        if (widening) nv = widen(merged[r], nv, data_regions);
        if (!(nv == merged[r])) {
          merged[r] = nv;
          changed = true;
        }
      }
      if (changed) {
        it->second = merged;
        work.push_back(s);
      }
    }
  }

  // Final pass: record per-instruction states and resolved addresses.
  for (const auto& [b, bb] : cfg.blocks()) {
    auto it = in_state.find(b);
    if (it == in_state.end()) continue;  // dead block (unreached root)
    RegState regs = it->second;
    for (u32 pc = bb.begin; pc < bb.end; pc += 4) {
      const Instr& in = cfg.instrs().at(pc);
      res.at[pc] = regs;
      if (in.valid() && (is_load(in.op) || is_store(in.op))) {
        const i64 off = in.op == Op::kAmoAdd ? 0 : in.imm;
        res.access_addr[pc] = shifted(regs[in.rs1], off);
      }
      if (in.op == Op::kJalr && regs[in.rs1].is_const())
        res.jalr_targets.push_back(regs[in.rs1].lo + static_cast<u32>(in.imm));
      if (in.op == Op::kCsrw && in.csr == static_cast<u16>(Csr::kMtvec) &&
          regs[in.rs1].is_const())
        res.mtvec_targets.push_back(regs[in.rs1].lo);
      transfer(in, pc, regs);
    }
  }
  return res;
}

}  // namespace detstl::analysis
