#include "analysis/absint.h"

#include <algorithm>
#include <sstream>

#include "mem/flash.h"
#include "mem/memmap.h"

namespace detstl::analysis {

using namespace isa;

const char* obligation_name(ObligationKind k) {
  switch (k) {
    case ObligationKind::kExecMissFree: return "exec-miss-free";
    case ObligationKind::kLoadingFootprint: return "loading-footprint";
    case ObligationKind::kSetConflictFree: return "set-conflict-free";
    case ObligationKind::kCrossCoreDisjoint: return "cross-core-disjoint";
    case ObligationKind::kInterferenceBound: return "interference-bound";
  }
  return "?";
}

const char* obligation_status_name(ObligationStatus s) {
  switch (s) {
    case ObligationStatus::kProven: return "proven";
    case ObligationStatus::kUnproven: return "unproven";
    case ObligationStatus::kRefuted: return "refuted";
    case ObligationStatus::kNotApplicable: return "n/a";
  }
  return "?";
}

u32 SetFootprint::total_lines() const {
  u32 n = 0;
  for (const auto& [set, ls] : lines) n += static_cast<u32>(ls.size());
  return n;
}

u32 SetFootprint::worst_set_occupancy() const {
  u32 n = 0;
  for (const auto& [set, ls] : lines)
    n = std::max(n, static_cast<u32>(ls.size()));
  return n;
}

ObligationStatus AbsIntResult::status(ObligationKind k) const {
  for (const auto& o : obligations)
    if (o.kind == k) return o.status;
  return ObligationStatus::kNotApplicable;
}

bool AbsIntResult::all_proven() const {
  if (!analyzable) return false;
  for (const auto& o : obligations)
    if (o.status != ObligationStatus::kProven &&
        o.status != ObligationStatus::kNotApplicable)
      return false;
  return true;
}

namespace {

std::string hex(u32 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Same interval span cap as the syntactic layer (analyzer.cpp).
constexpr u32 kMaxSpan = 64 * 1024;

/// Must component: lines certainly touched so far per cache. Under the
/// no-eviction premise (set-conflict-free), touched == resident.
struct MustState {
  bool reached = false;
  std::set<u32> il, dl;  // line base addresses
};

std::set<u32> intersect(const std::set<u32>& a, const std::set<u32>& b) {
  std::set<u32> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

MustState join_states(const MustState& a, const MustState& b) {
  if (!a.reached) return b;
  if (!b.reached) return a;
  MustState o;
  o.reached = true;
  o.il = intersect(a.il, b.il);
  o.dl = intersect(a.dl, b.dl);
  return o;
}

bool state_eq(const MustState& a, const MustState& b) {
  return a.reached == b.reached && a.il == b.il && a.dl == b.dl;
}

/// Classification of one footprint load/store after interval analysis.
struct MemAccess {
  enum class Kind : u8 {
    kOk,          // bounded, cacheable target
    kTcm,         // private single-cycle memory; never cached, never on bus
    kBusCoupled,  // shared region / atomic / flash store / unmapped
    kUnbounded,   // interval analysis gave up
  };
  u32 pc = 0;
  bool load = false;
  bool store = false;
  u32 size = 0;
  Kind kind = Kind::kUnbounded;
  u32 lo = 0, hi = 0;  // start-address interval, inclusive (kOk / kTcm)
  std::string why;     // kBusCoupled reason
};

struct Ctx {
  const isa::Program& prog;
  const AnalysisConfig& cfg;
  const ProgramModel& m;
  AbsIntResult res;

  std::vector<MemAccess> accesses;        // footprint order (ascending pc)
  std::map<u32, const MemAccess*> at_pc;  // filled after `accesses` is final
  std::set<u32> static_loaded_lines;      // D-lines any footprint load touches

  u32 iline(u32 a) const {
    return a / cfg.mem.icache.line_bytes * cfg.mem.icache.line_bytes;
  }
  u32 iset(u32 a) const {
    return (a / cfg.mem.icache.line_bytes) % cfg.mem.icache.num_sets();
  }
  u32 dset(u32 line) const {
    return (line / cfg.mem.dcache.line_bytes) % cfg.mem.dcache.num_sets();
  }
  /// D-cache lines covered by the access's address interval.
  std::vector<u32> dlines(const MemAccess& a) const {
    std::vector<u32> out;
    const u32 lb = cfg.mem.dcache.line_bytes;
    for (u32 line = a.lo / lb * lb; line < a.hi + a.size; line += lb)
      out.push_back(line);
    return out;
  }
};

void classify_accesses(Ctx& c) {
  const Cfg& g = c.m.cfg();
  for (u32 pc : c.m.footprint) {
    const Instr& in = g.instrs().at(pc);
    if (!in.valid() || (!is_load(in.op) && !is_store(in.op))) continue;
    MemAccess a;
    a.pc = pc;
    a.load = is_load(in.op);
    a.store = is_store(in.op);
    a.size = mem_size(in.op);
    if (in.op == Op::kAmoAdd) {
      a.kind = MemAccess::Kind::kBusCoupled;
      a.why = "atomic access is serviced by the shared bus";
      c.accesses.push_back(a);
      continue;
    }
    const auto it = c.m.cp.access_addr.find(pc);
    const AVal addr = it == c.m.cp.access_addr.end() ? AVal::top() : it->second;
    if (!addr.bounded() || addr.width() > kMaxSpan) {
      a.kind = MemAccess::Kind::kUnbounded;
      c.accesses.push_back(a);
      continue;
    }
    a.lo = addr.lo;
    a.hi = addr.hi;
    const u32 end = a.hi + a.size;  // one past the last touched byte
    const bool tcm = (mem::is_itcm(a.lo) && mem::is_itcm(end - 1)) ||
                     (mem::is_dtcm(a.lo) && mem::is_dtcm(end - 1));
    if (tcm) {
      a.kind = MemAccess::Kind::kTcm;
      c.accesses.push_back(a);
      continue;
    }
    bool shared = false;
    for (const auto& r : c.cfg.shared_regions)
      if (r.overlaps(a.lo, end)) shared = true;
    if (shared) {
      a.kind = MemAccess::Kind::kBusCoupled;
      a.why = "access to a shared communication region";
    } else if (!mem::is_bus(a.lo) || !mem::is_bus(end - 1)) {
      a.kind = MemAccess::Kind::kBusCoupled;
      a.why = "access to unmapped or mixed address space";
    } else if (a.store && mem::is_flash(a.lo)) {
      a.kind = MemAccess::Kind::kBusCoupled;
      a.why = "store to flash";
    } else {
      a.kind = MemAccess::Kind::kOk;
    }
    c.accesses.push_back(a);
  }
  for (const auto& a : c.accesses) {
    c.at_pc[a.pc] = &a;
    if (a.kind == MemAccess::Kind::kOk && a.load)
      for (u32 line : c.dlines(a)) c.static_loaded_lines.insert(line);
  }
}

/// Abstract effect of one instruction: fetch the instruction line, then
/// perform the data access. May-footprints accumulate globally; the must
/// component gains a line only when the address is a single constant (the
/// one case where we know *which* line is touched).
void step(Ctx& c, u32 pc, MustState& s) {
  if (mem::is_bus(pc)) {
    const u32 line = c.iline(pc);
    c.res.ifoot.lines[c.iset(pc)].emplace(line, pc);
    s.il.insert(line);
  }
  const auto it = c.at_pc.find(pc);
  if (it == c.at_pc.end()) return;
  const MemAccess& a = *it->second;
  if (a.kind != MemAccess::Kind::kOk) return;
  const bool allocates = a.load || c.cfg.write_allocate;
  if (!allocates) return;  // NWA store: write-around, no residency change
  for (u32 line : c.dlines(a)) {
    c.res.dfoot.lines[c.dset(line)].emplace(line, a.pc);
    if (a.lo == a.hi) s.dl.insert(line);
  }
}

/// One abstract pass over the footprint blocks. `cut_back_edge` drops every
/// edge returning to the loop head (virtual peeling of the loading pass) and
/// reports the state carried along it through `exit_out`.
std::map<u32, MustState> run_pass(Ctx& c, bool cut_back_edge,
                                  const MustState& head_seed,
                                  const MustState& root_seed,
                                  MustState* exit_out) {
  const Cfg& g = c.m.cfg();
  const u32 head = c.m.loop.head;
  std::map<u32, MustState> in;
  std::vector<u32> work;
  const auto seed = [&](u32 b, const MustState& st) {
    if (!c.m.footprint.count(b) || !g.block_at(b)) return;
    auto [it, fresh] = in.emplace(b, st);
    if (!fresh) it->second = join_states(it->second, st);
    work.push_back(b);
  };
  seed(head, head_seed);
  for (u32 r : c.m.loop_extra_roots) seed(r, root_seed);
  while (!work.empty()) {
    const u32 b = work.back();
    work.pop_back();
    const BasicBlock* bb = g.block_at(b);
    if (!bb) continue;
    MustState s = in.at(b);
    for (u32 pc = bb->begin; pc < bb->end; pc += 4) step(c, pc, s);
    for (u32 succ : bb->succs) {
      if (succ == head && cut_back_edge) {
        if (exit_out) *exit_out = join_states(*exit_out, s);
        continue;
      }
      if (!c.m.footprint.count(succ) || !g.block_at(succ)) continue;
      auto it = in.find(succ);
      if (it == in.end()) {
        in[succ] = s;
        work.push_back(succ);
        continue;
      }
      const MustState merged = join_states(it->second, s);
      if (!state_eq(merged, it->second)) {
        it->second = merged;
        work.push_back(succ);
      }
    }
  }
  return in;
}

}  // namespace

InterferenceBound interference_bound(const mem::MemSystemConfig& geom, unsigned num_cores) {
  InterferenceBound b;
  b.line_bytes = std::max(geom.icache.line_bytes, geom.dcache.line_bytes);
  const u32 beats = std::max(1u, b.line_bytes / 8);  // flash 8-byte beats
  b.t_max = 1 + mem::kFlashMissCycles + (beats - 1) * mem::kFlashHitCycles;
  b.requesters = 3 * std::max(1u, num_cores);
  b.d_max = (b.requesters - 1) * b.t_max + (b.t_max - 1);
  return b;
}

AbsIntResult interpret(const isa::Program& prog, const AnalysisConfig& cfg) {
  const ProgramModel model = build_model(prog, cfg);
  return interpret(prog, cfg, model);
}

AbsIntResult interpret(const isa::Program& prog, const AnalysisConfig& cfg,
                       const ProgramModel& model) {
  Ctx c{prog, cfg, model, {}, {}, {}, {}};
  AbsIntResult& res = c.res;

  if (!model.entry_ok) {
    res.not_analyzable_why = "entry point outside the program image";
    return res;
  }
  if (!model.loop.found) {
    res.not_analyzable_why =
        "no loading/execution loop (back edge) found; not a cache-based "
        "wrapper";
    return res;
  }
  res.analyzable = true;

  classify_accesses(c);

  // --- virtual peeling: loading pass (empty, back edge cut) then execution
  // pass (seeded with the loading exit state, back edge restored) -----------
  MustState empty;
  empty.reached = true;
  MustState exit_state;  // carried along the cut back edge
  run_pass(c, /*cut_back_edge=*/true, empty, empty, &exit_state);
  const bool latch_reached = exit_state.reached;
  const MustState pass2_seed = latch_reached ? exit_state : empty;
  // Callees/ISRs in pass 2 run after the loading pass completed: everything
  // it certainly touched is still resident (no-eviction premise).
  const auto in2 =
      run_pass(c, /*cut_back_edge=*/false, pass2_seed, pass2_seed, nullptr);

  // --- replay premises ------------------------------------------------------
  // Iteration-local interval analysis: re-run constprop rooted at the loop
  // head keeping only the registers that are globally *constant* there (the
  // loop-invariant bases); everything else — in particular loop-carried
  // values — starts from top. An access bounded under this weaker state
  // re-derives the same address sequence on every wrapper-loop pass.
  RegState head_state;
  head_state.fill(AVal::top());
  head_state[R0] = AVal::cst(0);
  const auto hs = model.cp.at.find(model.loop.head);
  if (hs != model.cp.at.end())
    for (unsigned r = 0; r < kNumRegs; ++r)
      if (hs->second[r].is_const()) head_state[r] = hs->second[r];
  std::set<u32> iter_roots = model.loop_extra_roots;
  iter_roots.insert(model.loop.head);
  const ImageView image(prog);
  const Cfg iter_cfg(image, iter_roots);
  const ConstPropResult cp_iter =
      propagate(iter_cfg, cfg.data_regions, {{model.loop.head, head_state}});
  const auto iter_bounded = [&](u32 pc) {
    const auto it = cp_iter.access_addr.find(pc);
    return it != cp_iter.access_addr.end() && it->second.bounded() &&
           it->second.width() <= kMaxSpan;
  };

  // Control-flow iteration-independence: every conditional branch in the
  // footprint decides identically on each pass (operands re-derived from
  // loop-invariant constants), so the execution pass repeats the loading
  // pass's exact trace. The wrapper latch — any branch targeting the loop
  // head — is exempt: it branches on r30, which differs between passes by
  // design and only selects whether another pass runs at all.
  const Cfg& g = model.cfg();
  bool replay_control = model.unresolved_calls.empty();
  std::string replay_why =
      replay_control ? "" : "indirect call target unresolved in the loop";
  for (u32 pc : model.footprint) {
    if (!replay_control) break;
    const Instr& in = g.instrs().at(pc);
    const auto st = cp_iter.at.find(pc);
    if (is_branch(in.op)) {
      const auto t = direct_target(in, pc);
      if (t && *t == model.loop.head) continue;
      const auto ok = [&](u8 r) {
        return r == R0 ||
               (st != cp_iter.at.end() && st->second[r].bounded());
      };
      if (!ok(in.rs1) || !ok(in.rs2)) {
        replay_control = false;
        replay_why = "branch at " + hex(pc) +
                     " decides on values not re-derived from loop-invariant "
                     "constants (possibly loaded data)";
      }
    } else if (in.op == Op::kJalr) {
      if (st == cp_iter.at.end() || !st->second[in.rs1].is_const()) {
        replay_control = false;
        replay_why = "indirect jump at " + hex(pc) +
                     " has no iteration-invariant target";
      }
    }
  }

  // NWA dummy-load contract at interval precision: a no-write-allocate store
  // replays deterministically only if a load with the *identical* address
  // interval (the dummy load of the same base+offset) warms its lines.
  const auto nwa_covered = [&](const MemAccess& stp) {
    for (const auto& ld : c.accesses)
      if (ld.load && ld.kind == MemAccess::Kind::kOk && ld.lo == stp.lo &&
          ld.hi == stp.hi && ld.size >= stp.size && iter_bounded(ld.pc))
        return true;
    return false;
  };

  const bool r1_ic =
      res.ifoot.worst_set_occupancy() <= cfg.mem.icache.ways;
  const bool r1_dc =
      res.dfoot.worst_set_occupancy() <= cfg.mem.dcache.ways;

  // --- per-access execution-pass verdicts -----------------------------------
  std::map<u32, std::string> unproven;
  const auto record = [&](u32 pc, std::string why) {
    unproven.emplace(pc, std::move(why));
  };
  unsigned proven_accesses = 0;
  for (const auto& [b, bb] : g.blocks()) {
    if (!model.footprint.count(b)) continue;
    const auto it = in2.find(b);
    if (it == in2.end() || !it->second.reached) continue;
    MustState s = it->second;
    for (u32 pc = bb.begin; pc < bb.end; pc += 4) {
      if (mem::is_bus(pc)) {
        const u32 line = c.iline(pc);
        if (s.il.count(line) || (r1_ic && replay_control)) {
          ++proven_accesses;
        } else {
          record(pc, "instruction line " + hex(line) +
                         " not provably warm in the execution pass" +
                         (r1_ic ? " (" + replay_why + ")"
                                : " (I-cache set conflict)"));
        }
      }
      const auto ait = c.at_pc.find(pc);
      if (ait != c.at_pc.end()) {
        const MemAccess& a = *ait->second;
        switch (a.kind) {
          case MemAccess::Kind::kTcm:
            ++proven_accesses;  // single-cycle private memory, bus-free
            break;
          case MemAccess::Kind::kBusCoupled:
            record(pc, a.why + " inside the execution loop");
            break;
          case MemAccess::Kind::kUnbounded:
            record(pc,
                   "access address cannot be bounded; cache residency is "
                   "unprovable");
            break;
          case MemAccess::Kind::kOk: {
            bool must_hit = true;
            for (u32 line : c.dlines(a))
              if (!s.dl.count(line)) must_hit = false;
            bool replay_ok = r1_dc && replay_control && iter_bounded(a.pc);
            if (replay_ok && a.store && !cfg.write_allocate &&
                !nwa_covered(a))
              replay_ok = false;
            if (must_hit || replay_ok) {
              ++proven_accesses;
            } else if (!r1_dc) {
              record(pc, "D-cache set conflict defeats the no-eviction "
                         "premise for this access");
            } else if (!replay_control) {
              record(pc, "strided access relies on the replay argument, but " +
                             replay_why);
            } else if (!iter_bounded(a.pc)) {
              record(pc,
                     "address is loop-carried across wrapper iterations (not "
                     "re-derived from loop-invariant constants), so the "
                     "execution pass may not repeat the loading trace");
            } else {
              record(pc,
                     "no-write-allocate store has no dummy load with an "
                     "identical address interval; its lines are never "
                     "allocated");
            }
            break;
          }
        }
      }
      step(c, pc, s);
    }
  }
  for (auto& [pc, why] : unproven) res.exec_unproven.emplace_back(pc, why);

  // --- obligation: set-conflict-free ----------------------------------------
  {
    std::ostringstream detail;
    ObligationStatus st = ObligationStatus::kProven;
    if (!r1_ic || !r1_dc) {
      st = ObligationStatus::kRefuted;
      detail << (r1_ic ? "D" : "I") << "-cache set holds "
             << (r1_ic ? res.dfoot.worst_set_occupancy()
                       : res.ifoot.worst_set_occupancy())
             << " may-lines with associativity "
             << (r1_ic ? cfg.mem.dcache.ways : cfg.mem.icache.ways)
             << "; an eviction is possible";
    } else {
      detail << "worst set occupancy I=" << res.ifoot.worst_set_occupancy()
             << "/" << cfg.mem.icache.ways
             << " D=" << res.dfoot.worst_set_occupancy() << "/"
             << cfg.mem.dcache.ways << "; no line can ever be evicted";
    }
    res.obligations.push_back(
        {ObligationKind::kSetConflictFree, st, detail.str()});
  }

  // --- obligation: exec-miss-free -------------------------------------------
  {
    ObligationStatus st = ObligationStatus::kProven;
    std::ostringstream detail;
    if (!r1_ic || !r1_dc) {
      st = ObligationStatus::kRefuted;
      detail << "set conflict makes an execution-pass eviction (and hence a "
                "miss) statically certain";
    } else if (!latch_reached) {
      st = ObligationStatus::kUnproven;
      detail << "loading pass never reaches the wrapper latch abstractly";
    } else if (!res.exec_unproven.empty()) {
      st = ObligationStatus::kUnproven;
      detail << res.exec_unproven.size()
             << " access(es) not provably miss-free, first at "
             << hex(res.exec_unproven.front().first) << ": "
             << res.exec_unproven.front().second;
    } else {
      detail << proven_accesses << " fetch/data accesses proven miss-free ("
             << res.ifoot.total_lines() << " I-lines, "
             << res.dfoot.total_lines() << " D-lines warm after loading)";
    }
    res.obligations.push_back(
        {ObligationKind::kExecMissFree, st, detail.str()});
  }

  // --- obligation: loading-footprint ----------------------------------------
  {
    ObligationStatus st = ObligationStatus::kProven;
    for (const auto& a : c.accesses) {
      if (a.kind == MemAccess::Kind::kTcm) continue;
      if (a.kind == MemAccess::Kind::kBusCoupled) {
        res.loading_violations.emplace_back(
            a.pc, a.why + " — outside the reserved cacheable regions");
        st = ObligationStatus::kRefuted;
        continue;
      }
      if (a.kind == MemAccess::Kind::kUnbounded) {
        res.loading_violations.emplace_back(
            a.pc,
            "access address cannot be bounded; containment in the reserved "
            "regions is unprovable");
        if (st == ObligationStatus::kProven)
          st = ObligationStatus::kUnproven;
        continue;
      }
      bool ok = false;
      // Start-interval containment: widening clamps a strided pointer to
      // [base, end()] inclusive, so the access *start* may sit exactly at
      // the region's one-past-end bound; the final stride never executes.
      for (const auto& r : cfg.data_regions)
        if (r.contains(a.lo) && a.hi <= r.end()) ok = true;
      if (!ok && a.load && mem::is_flash(a.lo)) {
        for (const auto& seg : prog.segments())
          if (a.lo >= seg.base && a.hi + a.size <= seg.end()) ok = true;
      }
      if (!ok) {
        res.loading_violations.emplace_back(
            a.pc, "loading-pass access [" + hex(a.lo) + ", " +
                      hex(a.hi + a.size) +
                      ") escapes the declared data regions and the routine's "
                      "own code image");
        st = ObligationStatus::kRefuted;
      }
    }
    std::ostringstream detail;
    if (st == ObligationStatus::kProven) {
      detail << "every loading-pass access stays inside the reserved "
                "regions ("
             << cfg.data_regions.size() << " declared data region(s) + own "
             << "code image + TCMs)";
    } else {
      detail << res.loading_violations.size() << " violation(s), first at "
             << hex(res.loading_violations.front().first);
    }
    res.obligations.push_back(
        {ObligationKind::kLoadingFootprint, st, detail.str()});
  }

  // --- obligation: cross-core-disjoint --------------------------------------
  {
    ObligationStatus st = cfg.peer_regions.empty()
                              ? ObligationStatus::kNotApplicable
                              : ObligationStatus::kProven;
    std::vector<AddrRange> self = cfg.data_regions;
    for (const auto& seg : prog.segments())
      self.push_back({seg.base, static_cast<u32>(seg.bytes.size())});
    for (const auto& s : self) {
      for (const auto& p : cfg.peer_regions) {
        if (!p.overlaps(s.base, s.end())) continue;
        res.overlap_violations.push_back(
            "reserved region [" + hex(s.base) + ", " + hex(s.end()) +
            ") overlaps peer core region [" + hex(p.base) + ", " +
            hex(p.end()) + ")");
        st = ObligationStatus::kRefuted;
      }
    }
    std::ostringstream detail;
    if (st == ObligationStatus::kNotApplicable) {
      detail << "single-core scenario slot: no peer regions declared";
    } else if (st == ObligationStatus::kProven) {
      detail << self.size() << " reserved region(s) disjoint from "
             << cfg.peer_regions.size() << " peer region(s)";
    } else {
      detail << res.overlap_violations.front();
    }
    res.obligations.push_back(
        {ObligationKind::kCrossCoreDisjoint, st, detail.str()});
  }

  // --- obligation: interference-bound ---------------------------------------
  {
    res.bound = interference_bound(cfg.mem, cfg.num_cores);
    const InterferenceBound& b = res.bound;
    const u32 beats = std::max(1u, b.line_bytes / 8);  // flash 8-byte beats
    std::ostringstream detail;
    detail << "a non-graded core's access waits at most " << b.d_max
           << " bus cycles: (R-1)*t_max + (t_max-1) with R=" << b.requesters
           << " requesters (3 per core x " << std::max(1u, cfg.num_cores)
           << " core(s)) and t_max=" << b.t_max << " (grant + "
           << mem::kFlashMissCycles << "-cycle first beat + (" << beats
           << "-1) buffered beats x " << mem::kFlashHitCycles << " cycles, "
           << b.line_bytes << "-byte line)";
    res.obligations.push_back({ObligationKind::kInterferenceBound,
                               ObligationStatus::kProven, detail.str()});
  }

  for (const auto& [set, ls] : res.ifoot.lines)
    for (const auto& [line, pc] : ls) res.predicted_loading_ilines.insert(line);
  for (const auto& [set, ls] : res.dfoot.lines)
    for (const auto& [line, pc] : ls) res.predicted_loading_dlines.insert(line);

  return res;
}

}  // namespace detstl::analysis
