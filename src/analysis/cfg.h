#pragma once
// Control-flow graph over a linked isa::Program. Instructions are decoded
// on demand starting from a set of roots (the entry point, trap vectors,
// constant-resolved indirect targets), so embedded data words — golden
// signature constants, tables — are never misinterpreted as code unless a
// reachable path actually falls into them (which is precisely the
// halt-fallthrough lint).

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "isa/encoding.h"
#include "isa/program.h"

namespace detstl::analysis {

/// Flat byte-addressed view over a Program's segments.
class ImageView {
 public:
  explicit ImageView(const isa::Program& prog) : prog_(&prog) {}

  bool contains(u32 addr, u32 size = 1) const;
  std::optional<u32> word_at(u32 addr) const;

  const isa::Program& program() const { return *prog_; }

 private:
  const isa::Program* prog_;
};

struct BasicBlock {
  u32 begin = 0;               // address of the first instruction
  u32 end = 0;                 // one past the last instruction
  std::vector<u32> succs;      // successor block begin addresses
  bool has_indirect = false;   // ends in JALR (target register-indirect)
  bool falls_off = false;      // fall-through leaves decodable code
};

class Cfg {
 public:
  /// Explore from `roots`. Decoding stops at invalid words and image edges
  /// (recorded as falls_off on the offending block).
  Cfg(const ImageView& image, const std::set<u32>& roots);

  const std::map<u32, isa::Instr>& instrs() const { return instrs_; }
  const std::map<u32, BasicBlock>& blocks() const { return blocks_; }
  const std::set<u32>& roots() const { return roots_; }

  bool reachable(u32 pc) const { return instrs_.count(pc) != 0; }
  const BasicBlock* block_at(u32 begin) const;
  /// Block containing `pc`, or nullptr.
  const BasicBlock* block_of(u32 pc) const;

  /// Back edges: (branch pc, target pc) with target <= branch pc.
  std::vector<std::pair<u32, u32>> back_edges() const;

  /// All instruction PCs reachable from `from` block begins, following
  /// successor edges (used to gather the execution-loop footprint).
  std::set<u32> reachable_from(const std::set<u32>& from) const;

 private:
  void explore(const ImageView& image);

  std::set<u32> roots_;
  std::map<u32, isa::Instr> instrs_;
  std::map<u32, BasicBlock> blocks_;
};

}  // namespace detstl::analysis
