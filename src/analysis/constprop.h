#pragma once
// Interval/constant propagation over the CFG. The self-test routines use
// static addressing (li/la of a base register plus small strides), so a
// simple abstract domain — bottom / constant / interval / top — resolves
// almost every load, store, JALR target and MTVEC write to a concrete
// address or a tight range. Loop-carried pointer increments are widened to
// the enclosing declared data region (the routine's data contract) instead
// of straight to top, which keeps strided march loops analysable.

#include <array>
#include <map>
#include <vector>

#include "analysis/cfg.h"

namespace detstl::analysis {

struct AddrRange {
  u32 base = 0;
  u32 size = 0;
  u32 end() const { return base + size; }
  bool contains(u32 a) const { return a >= base && a < end(); }
  bool overlaps(u32 lo, u32 hi) const {  // [lo, hi)
    return lo < end() && hi > base;
  }
};

/// Abstract value: unreached / single constant / inclusive interval / unknown.
struct AVal {
  enum Kind : u8 { kBot, kConst, kRange, kTop };
  Kind kind = kBot;
  u32 lo = 0;
  u32 hi = 0;

  static AVal bot() { return {}; }
  static AVal top() { return {kTop, 0, 0xffffffffu}; }
  static AVal cst(u32 v) { return {kConst, v, v}; }
  static AVal range(u32 lo, u32 hi) {
    return lo == hi ? cst(lo) : AVal{kRange, lo, hi};
  }

  bool is_const() const { return kind == kConst; }
  bool bounded() const { return kind == kConst || kind == kRange; }
  u32 width() const { return hi - lo; }

  bool operator==(const AVal& o) const {
    return kind == o.kind && lo == o.lo && hi == o.hi;
  }
};

/// Join (interval hull).
AVal join(const AVal& a, const AVal& b);
/// Abstract transfer of a single instruction over the register state.
/// `regs[0]` stays constant zero.
using RegState = std::array<AVal, 32>;

struct ConstPropResult {
  /// Register state *before* each reachable instruction.
  std::map<u32, RegState> at;

  /// Effective address of the load/store/amo at `pc` (base + offset), or
  /// top if unknown. PCs without a memory op are absent.
  std::map<u32, AVal> access_addr;

  /// Constant-resolved JALR targets (new CFG roots).
  std::vector<u32> jalr_targets;
  /// Constant values written to MTVEC (trap-vector roots; their code runs
  /// *during* the execution loop and belongs to its footprint).
  std::vector<u32> mtvec_targets;
};

/// Run the analysis to fixpoint. `data_regions` guides widening: a pointer
/// growing inside a declared region is clamped to that region's bounds.
ConstPropResult propagate(const Cfg& cfg,
                          const std::vector<AddrRange>& data_regions);

/// As above, but with explicit entry states per root. Roots absent from
/// `root_states` start from all-top (the default). The abstract interpreter
/// uses this to run an *iteration-local* pass: rooted at the wrapper-loop
/// head with only the registers that are globally constant there (the
/// loop-invariant bases li'd before the loop), it proves which access
/// addresses are re-derived identically on every loading/execution pass.
ConstPropResult propagate(const Cfg& cfg,
                          const std::vector<AddrRange>& data_regions,
                          const std::map<u32, RegState>& root_states);

}  // namespace detstl::analysis
