#include "analysis/cfg.h"

namespace detstl::analysis {

using namespace isa;

bool ImageView::contains(u32 addr, u32 size) const {
  for (const auto& seg : prog_->segments())
    if (addr >= seg.base && addr + size <= seg.end()) return true;
  return false;
}

std::optional<u32> ImageView::word_at(u32 addr) const {
  for (const auto& seg : prog_->segments()) {
    if (addr >= seg.base && addr + 4 <= seg.end()) {
      const u32 off = addr - seg.base;
      return static_cast<u32>(seg.bytes[off]) |
             (static_cast<u32>(seg.bytes[off + 1]) << 8) |
             (static_cast<u32>(seg.bytes[off + 2]) << 16) |
             (static_cast<u32>(seg.bytes[off + 3]) << 24);
    }
  }
  return std::nullopt;
}

namespace {

/// Same-register branches decide statically: beq/bge/bgeu x,x always take
/// (the `beq r0,r0` goto idiom), bne/blt/bltu x,x never do.
enum class BranchFold { kNone, kAlwaysTaken, kNeverTaken };

BranchFold fold_branch(const Instr& in) {
  if (!is_branch(in.op) || in.rs1 != in.rs2) return BranchFold::kNone;
  switch (in.op) {
    case Op::kBeq: case Op::kBge: case Op::kBgeu:
      return BranchFold::kAlwaysTaken;
    default:
      return BranchFold::kNeverTaken;
  }
}

/// Successor PCs encoded directly in the instruction. JALR contributes only
/// its call fall-through (rd!=r0); a JALR with rd==r0 is a return/indirect
/// jump and terminates the path.
void instr_succs(const Instr& in, u32 pc, std::vector<u32>& out) {
  out.clear();
  const BranchFold fold = fold_branch(in);
  if (const auto t = direct_target(in, pc))
    if (fold != BranchFold::kNeverTaken) out.push_back(*t);
  if (falls_through(in)) {
    if (fold != BranchFold::kAlwaysTaken) out.push_back(pc + 4);
  } else if ((in.op == Op::kJal || in.op == Op::kJalr) && in.rd != R0) {
    // Call approximation: assume the callee eventually returns here.
    out.push_back(pc + 4);
  }
}

bool ends_block(const Instr& in) {
  return is_branch(in.op) || is_jump(in.op) || in.op == Op::kHalt ||
         in.op == Op::kEret;
}

}  // namespace

Cfg::Cfg(const ImageView& image, const std::set<u32>& roots) : roots_(roots) {
  explore(image);
}

void Cfg::explore(const ImageView& image) {
  // Pass 1: decode every reachable instruction.
  std::vector<u32> work(roots_.begin(), roots_.end());
  std::vector<u32> succs;
  while (!work.empty()) {
    const u32 pc = work.back();
    work.pop_back();
    if (instrs_.count(pc)) continue;
    const auto word = image.word_at(pc);
    if (!word) continue;  // off the image: the lint pass reports it
    const Instr in = decode(*word);
    instrs_[pc] = in;
    if (!in.valid()) continue;
    instr_succs(in, pc, succs);
    for (u32 s : succs)
      if (!instrs_.count(s)) work.push_back(s);
  }

  // Pass 2: block leaders — roots, transfer targets, post-transfer PCs.
  std::set<u32> leaders(roots_.begin(), roots_.end());
  for (const auto& [pc, in] : instrs_) {
    if (!in.valid()) continue;
    if (const auto t = direct_target(in, pc)) leaders.insert(*t);
    if (ends_block(in)) leaders.insert(pc + 4);
  }

  // Pass 3: group into blocks and wire successor edges.
  for (auto it = instrs_.begin(); it != instrs_.end();) {
    BasicBlock bb;
    bb.begin = it->first;
    u32 pc = bb.begin;
    const Instr* last = &it->second;
    while (true) {
      last = &it->second;
      pc = it->first + 4;
      ++it;
      if (!last->valid() || ends_block(*last)) break;
      if (it == instrs_.end() || it->first != pc || leaders.count(pc)) break;
    }
    bb.end = pc;
    if (last->valid()) {
      instr_succs(*last, bb.end - 4, bb.succs);
      bb.has_indirect = last->op == Op::kJalr;
      // A successor that was never decoded means the path leaves the image
      // or lands on a data word.
      for (u32 s : bb.succs) {
        auto f = instrs_.find(s);
        if (f == instrs_.end() || !f->second.valid()) bb.falls_off = true;
      }
    } else {
      bb.falls_off = true;  // decoded a data word: upstream path fell into it
    }
    blocks_[bb.begin] = bb;
  }
}

const BasicBlock* Cfg::block_at(u32 begin) const {
  auto it = blocks_.find(begin);
  return it == blocks_.end() ? nullptr : &it->second;
}

const BasicBlock* Cfg::block_of(u32 pc) const {
  auto it = blocks_.upper_bound(pc);
  if (it == blocks_.begin()) return nullptr;
  --it;
  return pc < it->second.end ? &it->second : nullptr;
}

std::vector<std::pair<u32, u32>> Cfg::back_edges() const {
  std::vector<std::pair<u32, u32>> edges;
  for (const auto& [pc, in] : instrs_) {
    if (!in.valid()) continue;
    if (const auto t = direct_target(in, pc))
      if (*t <= pc) edges.emplace_back(pc, *t);
  }
  return edges;
}

std::set<u32> Cfg::reachable_from(const std::set<u32>& from) const {
  std::set<u32> pcs;
  std::set<u32> seen;
  std::vector<u32> work;
  for (u32 b : from)
    if (blocks_.count(b)) {
      work.push_back(b);
      seen.insert(b);
    }
  while (!work.empty()) {
    const u32 b = work.back();
    work.pop_back();
    const BasicBlock& bb = blocks_.at(b);
    for (u32 pc = bb.begin; pc < bb.end; pc += 4) pcs.insert(pc);
    for (u32 s : bb.succs)
      if (blocks_.count(s) && seen.insert(s).second) work.push_back(s);
  }
  return pcs;
}

}  // namespace detstl::analysis
