#pragma once
// Triple-core SoC: cores A and B (32-bit) and core C (64-bit extension),
// each with private TCMs and L1 caches, sharing one bus to Flash and SRAM —
// the topology of the paper's industrial device.
//
// The whole SoC is a value type: copying it snapshots the complete
// architectural and micro-architectural state (the fault-simulation engine
// uses this for mid-run checkpoints). The only shared state is the Flash ROM
// image (immutable during simulation, held by shared_ptr). CPU hook pointers
// are copied verbatim; campaigns re-install their own hooks after restore.

#include <array>
#include <vector>

#include "cpu/cpu.h"
#include "isa/program.h"
#include "mem/bus.h"

namespace detstl::soc {

inline constexpr unsigned kMaxCores = 3;

struct SocConfig {
  unsigned num_cores = 3;
  std::array<isa::CoreKind, kMaxCores> kinds = {isa::CoreKind::kA, isa::CoreKind::kB,
                                                isa::CoreKind::kC};
  mem::MemSystemConfig mem{};
  /// Cycles each core is held in reset after reset() — the "initial SoC
  /// configuration" that staggers the cores' bus activity.
  std::array<u32, kMaxCores> start_delay = {0, 0, 0};
};

/// Per-core result mailbox in shared SRAM (software convention; see
/// core/wrappers). Word 0: status, word 1: signature, word 2: aux.
inline constexpr u32 kMailboxBase = mem::kSramBase;
inline constexpr u32 kMailboxStride = 32;
inline constexpr u32 kStatusRunning = 0;
inline constexpr u32 kStatusPass = 1;
inline constexpr u32 kStatusFail = 2;

inline u32 mailbox_addr(unsigned core_id) { return kMailboxBase + core_id * kMailboxStride; }

class Soc {
 public:
  explicit Soc(const SocConfig& cfg = {});

  const SocConfig& config() const { return cfg_; }
  unsigned num_cores() const { return cfg_.num_cores; }

  cpu::Cpu& core(unsigned i) { return cores_[i]; }
  const cpu::Cpu& core(unsigned i) const { return cores_[i]; }
  mem::Flash& flash() { return flash_; }
  const mem::Flash& flash() const { return flash_; }
  mem::Sram& sram() { return sram_; }
  mem::SharedBus& bus() { return bus_; }
  const mem::SharedBus& bus() const { return bus_; }

  /// Load a program image into Flash/SRAM (before reset; not timed).
  void load_program(const isa::Program& prog);

  /// Set a core's boot address and mark it active. Inactive cores are
  /// "switched off" (paper Sec. IV-B) and generate no bus traffic.
  void set_boot(unsigned core_id, u32 pc);
  void set_active(unsigned core_id, bool active);
  bool is_active(unsigned core_id) const { return active_[core_id]; }

  /// Reset all cores (active ones boot after their start_delay).
  void reset();

  // --- per-core supervisor hooks (src/runtime/) -------------------------------
  /// Reset one core mid-run and point it at `pc`, leaving the other cores
  /// and the SoC clock untouched: cancels the core's bus slots (safe — the
  /// device access happens at completion, so an in-flight write never
  /// partially commits), aborts its memory-system ports, hard-resets its
  /// cache view and marks it active. The supervisor uses this for watchdog
  /// aborts, retry-with-reload and the uncacheable fallback rung.
  void restart_core(unsigned core_id, u32 pc);

  /// Quarantine a core: cancel its bus traffic, reset its memory-system
  /// view and deactivate it. The remaining cores keep running.
  void park_core(unsigned core_id);

  /// Install a detscope event sink into the bus and every core (non-owning;
  /// null = tracing off). Survives reset(); a SoC value copy (checkpoint)
  /// carries the pointer verbatim like the CPU hook pointers — the restorer
  /// re-installs or clears it (fault campaigns clear it on faulty replicas).
  void set_trace_sink(trace::EventSink* sink);
  trace::EventSink* trace_sink() const { return trace_sink_; }

  /// One SoC clock.
  void tick();

  u64 now() const { return now_; }

  /// True when every active core has halted.
  bool all_halted() const;

  struct RunResult {
    bool timed_out = false;
    u64 cycles = 0;
  };
  /// Run until all active cores halt or the watchdog expires.
  RunResult run(u64 max_cycles);

  // --- debug (zero-time) memory access ------------------------------------------
  u32 debug_read32(u32 addr) const;            // Flash/SRAM, cache-coherent view
  u32 debug_read32(unsigned core_id, u32 addr) const;  // adds TCM visibility
  void debug_write32(u32 addr, u32 value);     // SRAM only

  /// SEU flip point for the soak model (runtime/soak.h): invert one bit of
  /// an SRAM word in place, underneath any cached copies (an upset in the
  /// RAM array itself — a core holding the line in D$ keeps its clean view,
  /// exactly like real silicon).
  void flip_ram_bit(u32 addr, unsigned bit);

 private:
  SocConfig cfg_;
  std::vector<cpu::Cpu> cores_;
  std::array<bool, kMaxCores> active_{};
  std::array<u32, kMaxCores> boot_pc_{};
  mem::Flash flash_;
  mem::Sram sram_;
  mem::SharedBus bus_;
  u64 now_ = 0;
  trace::EventSink* trace_sink_ = nullptr;
};

}  // namespace detstl::soc
