#include "soc/soc.h"

#include <cassert>

#include "perf/profiler.h"
#include "perf/simstats.h"

namespace detstl::soc {

Soc::Soc(const SocConfig& cfg) : cfg_(cfg) {
  assert(cfg.num_cores >= 1 && cfg.num_cores <= kMaxCores);
  cores_.reserve(cfg.num_cores);
  for (unsigned i = 0; i < cfg.num_cores; ++i) {
    cpu::CpuConfig cc;
    cc.kind = cfg.kinds[i];
    cc.core_id = i;
    cc.mem = cfg.mem;
    cores_.emplace_back(cc);
  }
}

void Soc::load_program(const isa::Program& prog) {
  for (const auto& seg : prog.segments()) {
    if (mem::is_flash(seg.base)) {
      flash_.write_image(seg.base, seg.bytes);
    } else if (mem::is_sram(seg.base)) {
      for (u32 i = 0; i < seg.bytes.size(); ++i)
        sram_.write8(seg.base + i, seg.bytes[i]);
    } else {
      assert(false && "program segments must target Flash or SRAM");
    }
  }
}

void Soc::set_boot(unsigned core_id, u32 pc) {
  assert(core_id < cores_.size());
  boot_pc_[core_id] = pc;
  active_[core_id] = true;
}

void Soc::set_active(unsigned core_id, bool active) { active_[core_id] = active; }

void Soc::set_trace_sink(trace::EventSink* sink) {
  trace_sink_ = sink;
  bus_.set_trace_sink(sink);
  for (auto& c : cores_) c.set_trace_sink(sink);
}

void Soc::reset() {
  now_ = 0;
  flash_.invalidate_buffer();
  bus_ = mem::SharedBus{};
  bus_.set_trace_sink(trace_sink_);  // the fresh bus loses the sink otherwise
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (active_[i]) cores_[i].reset(boot_pc_[i]);
  }
}

void Soc::restart_core(unsigned core_id, u32 pc) {
  assert(core_id < cores_.size());
  for (unsigned port = 0; port < 3; ++port) bus_.cancel_requester(core_id * 3 + port);
  cores_[core_id].memsys().hard_reset();
  cores_[core_id].reset(pc);
  boot_pc_[core_id] = pc;
  active_[core_id] = true;
}

void Soc::park_core(unsigned core_id) {
  assert(core_id < cores_.size());
  for (unsigned port = 0; port < 3; ++port) bus_.cancel_requester(core_id * 3 + port);
  cores_[core_id].memsys().hard_reset();
  active_[core_id] = false;
}

void Soc::tick() {
  ++now_;
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (active_[i] && now_ > cfg_.start_delay[i]) cores_[i].cycle(bus_);
  }
  {
    DETSTL_PROF_SCOPE(perf::ProfScope::kBusArb);
    bus_.tick(flash_, sram_);
  }
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (active_[i]) cores_[i].post_tick(bus_);
  }
}

bool Soc::all_halted() const {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    if (active_[i] && !cores_[i].halted()) return false;
  }
  return true;
}

Soc::RunResult Soc::run(u64 max_cycles) {
  RunResult res;
  const u64 start = now_;
  while (!all_halted()) {
    if (now_ >= max_cycles) {
      res.timed_out = true;
      break;
    }
    tick();
  }
  res.cycles = now_;
  // Only the delta this call simulated (run() may continue an already-run
  // SoC). The campaign engines tick() manually and account their own stats,
  // so kSocRunCycles never double-counts campaign work.
  perf::sim_totals().add(perf::SimStat::kSocRunCycles, now_ - start);
  return res;
}

u32 Soc::debug_read32(u32 addr) const {
  // Prefer a dirty cached copy if some core holds one (coherent debug view).
  for (const auto& c : cores_) {
    if (c.memsys().dcache().probe(addr)) return c.memsys().dcache().read(addr, 4);
  }
  if (mem::is_flash(addr)) return flash_.read32(addr);
  assert(mem::is_sram(addr));
  return sram_.read32(addr);
}

u32 Soc::debug_read32(unsigned core_id, u32 addr) const {
  const auto& ms = cores_[core_id].memsys();
  if (ms.itcm().contains(addr)) return ms.itcm().read(addr, 4);
  if (ms.dtcm().contains(addr)) return ms.dtcm().read(addr, 4);
  return debug_read32(addr);
}

void Soc::debug_write32(u32 addr, u32 value) {
  assert(mem::is_sram(addr));
  sram_.write32(addr, value);
}

void Soc::flip_ram_bit(u32 addr, unsigned bit) {
  assert(mem::is_sram(addr));
  sram_.write32(addr, sram_.read32(addr) ^ (u32{1} << (bit % 32)));
}

}  // namespace detstl::soc
