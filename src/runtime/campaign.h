#pragma once
// Disturbance campaign: many seeded supervisor runs, sharded over worker
// threads with the PR 2 work-queue executor. Determinism contract (same as
// the fault campaign's): the outcome vector — the concatenation of every
// run's SupervisorResult::outcome_vector() — is byte-identical for a fixed
// seed at ANY thread count. Per-run results are written by run index into a
// pre-sized vector and every aggregate is derived from that vector after the
// join, so scheduling order can never leak into the output.

#include <string>
#include <vector>

#include "runtime/supervisor.h"

namespace detstl::runtime {

struct CampaignSpec {
  u64 seed = 0xD15B0001;
  unsigned runs = 16;
  unsigned threads = 0;   // 0 = one per hardware thread, 1 = serial
  unsigned cores = 3;
  /// Registry routine names (core/stl.h); empty = a default mix of the
  /// built-in routines. The overload taking routine pointers ignores this.
  std::vector<std::string> routines;
  SupervisorConfig supervisor{};
  DisturbanceSpec disturb{};  // window_hi 0 = derived from the calibration
};

struct RunRecord {
  u64 seed = 0;
  SupervisorResult result;
};

struct CampaignResult {
  unsigned runs = 0;
  unsigned cores = 0;
  unsigned threads_used = 0;
  u64 seed = 0;
  std::vector<std::string> routine_names;
  std::vector<RunRecord> records;  // indexed by run
  double wall_seconds = 0.0;       // excluded from the determinism contract

  /// Concatenated canonical run results (byte-identical across thread counts).
  std::vector<u8> outcome_vector() const;
  /// FNV-1a 64 of outcome_vector().
  u64 digest() const;
};

/// Per-run seed: splitmix64-style mix of the master seed and the run index,
/// so runs are decorrelated but reproducible individually.
u64 derive_run_seed(u64 master, unsigned run);

CampaignResult run_disturbance_campaign(
    const CampaignSpec& spec,
    const std::vector<const core::SelfTestRoutine*>& routines);

/// Convenience overload resolving spec.routines from the registry; throws
/// std::runtime_error on an unknown name.
CampaignResult run_disturbance_campaign(const CampaignSpec& spec);

/// Deterministic per-core recovery report (no wall-clock, no thread count —
/// safe to diff across thread counts).
std::string render_recovery_report(const CampaignResult& r);

}  // namespace detstl::runtime
