#pragma once
// Disturbance campaign: many seeded supervisor runs, sharded over worker
// threads with the PR 2 work-queue executor. Determinism contract (same as
// the fault campaign's): the outcome vector — the concatenation of every
// run's SupervisorResult::outcome_vector() — is byte-identical for a fixed
// seed at ANY thread count. Per-run results are written by run index into a
// pre-sized vector and every aggregate is derived from that vector after the
// join, so scheduling order can never leak into the output.

#include <functional>
#include <string>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/supervisor.h"

namespace detstl::runtime {

struct CampaignSpec {
  u64 seed = 0xD15B0001;
  unsigned runs = 16;
  unsigned threads = 0;   // 0 = one per hardware thread, 1 = serial
  unsigned cores = 3;
  /// Registry routine names (core/stl.h); empty = a default mix of the
  /// built-in routines. The overload taking routine pointers ignores this.
  std::vector<std::string> routines;
  SupervisorConfig supervisor{};
  DisturbanceSpec disturb{};  // window_hi 0 = derived from the calibration
  /// Crash-safe checkpoint/journal (fault/checkpoint.h): completed run
  /// records are persisted into checksummed shards and skipped on --resume.
  /// Straight and killed-and-resumed campaigns are byte-identical.
  fault::CheckpointConfig checkpoint;
  /// Cooperative drain request; null = never interrupted. Not hashed.
  fault::InterruptToken* interrupt = nullptr;
  /// detscope sink for kCkptFlush/kCkptLoad/kCkptReject telemetry only (the
  /// supervised runs themselves never trace here). Non-owning; null = off.
  trace::EventSink* sink = nullptr;
  /// Half-open shard range [unit_begin, unit_end) of run indices this process
  /// executes; (0, 0) = all runs. Out-of-range runs are pre-marked done (never
  /// executed, never journalled). EXCLUDED from the checkpoint config hash so
  /// every shard of a partitioned campaign shares one manifest identity — the
  /// property src/serve/ relies on to reassign and merge per-shard journals.
  u64 unit_begin = 0;
  u64 unit_end = 0;
  /// Post-hoc merge: additionally load the journals of these per-shard
  /// checkpoint directories and treat their records as resumed; runs no
  /// journal covers are re-executed in-process. The merged result is
  /// byte-identical to the single-process run by the --resume contract.
  /// Not hashed.
  std::vector<std::string> merge_dirs;
  /// Observability hook invoked once per run completed by THIS process (not
  /// for resumed records), with the run index. May be called concurrently
  /// from worker threads; must never affect the result. Not hashed. The
  /// stlserve workers bump their heartbeat file here.
  std::function<void(u64)> on_run_complete;
};

struct RunRecord {
  u64 seed = 0;
  SupervisorResult result;
};

struct CampaignResult {
  unsigned runs = 0;
  unsigned cores = 0;
  unsigned threads_used = 0;
  u64 seed = 0;
  std::vector<std::string> routine_names;
  std::vector<RunRecord> records;  // indexed by run
  double wall_seconds = 0.0;       // excluded from the determinism contract
  /// Checkpoint/resume bookkeeping; excluded from the determinism contract.
  fault::CheckpointStats ckpt;

  /// Concatenated canonical run results (byte-identical across thread counts).
  std::vector<u8> outcome_vector() const;
  /// FNV-1a 64 of outcome_vector().
  u64 digest() const;
};

/// Full round-trip serialisation of one run record (seed + every
/// SupervisorResult field, including routine names) — the shard payload of a
/// disturbance-campaign checkpoint. Unlike outcome_vector() this is
/// loss-less: deserialising reproduces the record exactly.
std::vector<u8> serialize_run_record(const RunRecord& rec);

/// Inverse of serialize_run_record. Returns false (leaving `out`
/// unspecified) on any framing error — the campaign then re-executes that
/// run instead of trusting a half-parsed record.
bool deserialize_run_record(const std::vector<u8>& bytes, RunRecord& out);

/// The hash a disturbance-campaign checkpoint manifest binds to: seed, run
/// count, cores, routine names, the full supervisor and disturbance configs,
/// and the schedule plan's SoC image fingerprint. Deliberately EXCLUDES
/// threads, checkpoint, interrupt and sink.
u64 checkpoint_config_hash(const CampaignSpec& spec, const SchedulePlan& plan);

/// Per-run seed: splitmix64-style mix of the master seed and the run index,
/// so runs are decorrelated but reproducible individually.
u64 derive_run_seed(u64 master, unsigned run);

CampaignResult run_disturbance_campaign(
    const CampaignSpec& spec,
    const std::vector<const core::SelfTestRoutine*>& routines);

/// Convenience overload resolving spec.routines from the registry; throws
/// std::runtime_error on an unknown name.
CampaignResult run_disturbance_campaign(const CampaignSpec& spec);

/// Deterministic per-core recovery report (no wall-clock, no thread count —
/// safe to diff across thread counts).
std::string render_recovery_report(const CampaignResult& r);

}  // namespace detstl::runtime
