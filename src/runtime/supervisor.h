#pragma once
// On-line STL supervisor: runs a per-core schedule of cache-wrapped self-test
// routines under watchdog budgets with bounded retry-with-reload and a
// graceful degradation ladder — the test-manager layer an ASIL-D device
// wraps around the paper's routines in the field.
//
// Per routine, per core:
//
//        launch (cached rung)
//          |  pass first try               -> kPassClean
//          |  mismatch/crash/timeout
//          v
//        retry with reload (exponential backoff, <= max_attempts)
//          |  pass                         -> kPassRecovered   [transient]
//          |  still failing
//          v
//        uncacheable fallback rung (plain wrapper, <= fallback_attempts)
//          |  pass                         -> kPassDegraded    [permanent]
//          |  still failing
//          v
//        quarantine the core              -> kQuarantined      [permanent]
//        (remaining routines kSkipped; other cores continue)
//
// A retry re-enters the wrapper from the top — cache invalidation and the
// loading loop reload everything — which is exactly the paper's recovery
// property: the cached execution context is rebuilt from immutable flash.
//
// Every attempt, outcome and decision is emitted on the trace bus
// (kSupAttempt / kSupOutcome / kSupDecision), and the whole result is
// canonically serialisable (outcome_vector) for byte-exact determinism
// comparisons across worker-thread counts.

#include <string>
#include <vector>

#include "core/stl.h"
#include "runtime/disturb.h"

namespace detstl::runtime {

struct SupervisorConfig {
  /// Watchdog budget per attempt: calib + calib * margin_percent/100 + floor.
  /// The margin absorbs bus interference the calibration run never saw
  /// (calibration is single-core isolated; three contending cores can
  /// stretch the bus-bound loading loop towards 3x).
  unsigned margin_percent = 250;
  u64 watchdog_floor = 2'000;
  unsigned max_attempts = 3;        // attempts on the cached rung
  unsigned fallback_attempts = 2;   // attempts on the uncacheable rung
  u64 backoff_base = 64;            // idle ticks before retry k: base << (k-1)
  u64 backoff_cap = 4'096;
  u64 global_budget = 30'000'000;   // SoC-tick ceiling for the whole schedule
};

enum class AttemptStatus : u8 { kPass, kMismatch, kCrash, kTimeout };
enum class Classification : u8 { kNone, kTransient, kPermanent };
enum class RecoveryOutcome : u8 {
  kPassClean,      // cached rung, first attempt
  kPassRecovered,  // cached rung after >= 1 retry           [transient]
  kPassDegraded,   // uncacheable fallback rung passed       [permanent]
  kQuarantined,    // both rungs exhausted; core parked      [permanent]
  kSkipped,        // not run: core quarantined earlier
  kBudgetExhausted,  // not finished: global budget ran out
};
/// Decisions emitted as kSupDecision events.
enum class Decision : u8 { kAccept, kRetry, kFallback, kQuarantine, kSkip, kGiveUp };

const char* attempt_status_name(AttemptStatus s);
const char* classification_name(Classification c);
const char* outcome_name(RecoveryOutcome o);
const char* decision_name(Decision d);

/// One scheduled routine on one core, with both ladder rungs already built
/// and loaded into the SoC template (plan_schedule).
struct PlannedRoutine {
  std::string name;
  u32 cached_entry = 0;
  u32 fallback_entry = 0;
  u32 cached_golden_addr = 0;    // flash address of the expected-value constant
  u32 fallback_golden_addr = 0;
  u32 cached_golden = 0;
  u32 fallback_golden = 0;
  u32 mailbox = 0;
  u64 cached_calib = 0;          // fault-free cycles (watchdog calibration)
  u64 fallback_calib = 0;
  bool signature_stable = false; // cached and fallback goldens coincide
};

using Schedule = std::array<std::vector<PlannedRoutine>, soc::kMaxCores>;

/// Build every (routine x core x rung) program, load them into a fresh SoC
/// and return the template + schedule. The template is a value: copy it per
/// run for checkpoint-style replay. Each program gets a private 32 KiB flash
/// window; throws std::runtime_error when the schedule outgrows the flash.
struct SchedulePlan {
  soc::Soc soc;
  Schedule schedule;
};
SchedulePlan plan_schedule(const std::vector<const core::SelfTestRoutine*>& routines,
                           unsigned cores);

struct RoutineRecord {
  std::string name;
  RecoveryOutcome outcome = RecoveryOutcome::kSkipped;
  Classification classification = Classification::kNone;
  unsigned cached_attempts = 0;
  unsigned fallback_attempts = 0;
  AttemptStatus last_failure = AttemptStatus::kPass;  // of the last failing attempt
  u64 cycles = 0;        // SoC ticks spent on this routine (retries + backoff)
  u32 final_signature = 0;
};

struct CoreReport {
  std::vector<RoutineRecord> records;
  bool quarantined = false;
};

struct SupervisorResult {
  std::array<CoreReport, soc::kMaxCores> cores;
  u64 total_cycles = 0;
  bool budget_exhausted = false;
  InjectionStats injections{};  // copied from the injector when one was used

  /// Canonical byte serialisation of everything above except wall-clock —
  /// the unit of the campaign's byte-identical determinism contract.
  std::vector<u8> outcome_vector() const;
};

class StlSupervisor {
 public:
  StlSupervisor(soc::Soc soc, Schedule schedule, const SupervisorConfig& cfg = {});

  /// Run the whole schedule to completion (or budget exhaustion). The
  /// injector may be null for an undisturbed run. `hook` is an additional
  /// generic per-tick perturbation source polled after the injector — the
  /// rate-based SEU soak model (runtime/soak.h) attaches here without
  /// entering the disturbance statistics.
  SupervisorResult run(DisturbanceInjector* injector = nullptr, InjectorHook* hook = nullptr);

 private:
  enum class CoreState : u8 { kIdle, kRunning, kBackoff, kDone, kQuarantined };

  struct CoreCtx {
    CoreState state = CoreState::kDone;
    std::size_t routine = 0;   // index into schedule_[core]
    unsigned rung = 0;         // 0 = cached, 1 = fallback
    unsigned attempt = 0;      // 1-based within the rung
    u64 deadline = 0;          // watchdog expiry (SoC tick)
    u64 resume_at = 0;         // backoff end (SoC tick)
    u64 routine_start = 0;     // first launch of the current routine
  };

  void launch(unsigned c);
  void finish_attempt(unsigned c, AttemptStatus status, u32 signature);
  void advance(unsigned c);       // record outcome written; next routine or done
  void quarantine(unsigned c);
  u64 watchdog(const PlannedRoutine& r, unsigned rung) const;
  void emit_decision(unsigned c, Decision d, u32 b);
  void update_targets(unsigned c);

  soc::Soc soc_;
  Schedule schedule_;
  SupervisorConfig cfg_;
  std::array<CoreCtx, soc::kMaxCores> ctx_{};
  SupervisorResult result_;
  InjectTargets targets_{};
};

}  // namespace detstl::runtime
