#include "runtime/supervisor.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace detstl::runtime {

const char* attempt_status_name(AttemptStatus s) {
  switch (s) {
    case AttemptStatus::kPass: return "pass";
    case AttemptStatus::kMismatch: return "mismatch";
    case AttemptStatus::kCrash: return "crash";
    case AttemptStatus::kTimeout: return "timeout";
  }
  return "?";
}

const char* classification_name(Classification c) {
  switch (c) {
    case Classification::kNone: return "-";
    case Classification::kTransient: return "transient";
    case Classification::kPermanent: return "permanent";
  }
  return "?";
}

const char* outcome_name(RecoveryOutcome o) {
  switch (o) {
    case RecoveryOutcome::kPassClean: return "pass";
    case RecoveryOutcome::kPassRecovered: return "recovered";
    case RecoveryOutcome::kPassDegraded: return "degraded";
    case RecoveryOutcome::kQuarantined: return "quarantined";
    case RecoveryOutcome::kSkipped: return "skipped";
    case RecoveryOutcome::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

const char* decision_name(Decision d) {
  switch (d) {
    case Decision::kAccept: return "accept";
    case Decision::kRetry: return "retry";
    case Decision::kFallback: return "fallback";
    case Decision::kQuarantine: return "quarantine";
    case Decision::kSkip: return "skip";
    case Decision::kGiveUp: return "give-up";
  }
  return "?";
}

SchedulePlan plan_schedule(const std::vector<const core::SelfTestRoutine*>& routines,
                           unsigned cores) {
  assert(cores >= 1 && cores <= soc::kMaxCores);
  SchedulePlan plan;
  // One private 32 KiB flash window per program (two programs per scheduled
  // routine: cached + uncacheable fallback) so retry-with-reload always
  // restores from immutable, routine-owned flash.
  constexpr u32 kWindow = 0x8000;
  u32 next_base = mem::kFlashBase + 0x4000;
  for (unsigned c = 0; c < cores; ++c) {
    for (std::size_t r = 0; r < routines.size(); ++r) {
      if (next_base + 2 * kWindow > mem::kFlashBase + mem::kFlashSize)
        throw std::runtime_error("plan_schedule: schedule exceeds the flash");
      core::BuildEnv env;
      env.core_id = c;
      env.kind = plan.soc.config().kinds[c];
      env.code_base = next_base;
      // Private scratch per (core, routine): routines must not inherit a
      // predecessor's dirtied data area.
      env.data_base = mem::kSramBase + 0x8000 +
                      static_cast<u32>(c * routines.size() + r) * 0x400;
      env.lint = core::LintMode::kOff;  // scheduling, not verification
      const u32 fallback_base = next_base + kWindow;
      next_base += 2 * kWindow;

      const core::FallbackPair pair =
          core::build_with_fallback(*routines[r], env, fallback_base);
      PlannedRoutine pr;
      pr.name = pair.cached.name;
      pr.cached_entry = pair.cached.prog.entry();
      pr.fallback_entry = pair.fallback.prog.entry();
      pr.cached_golden_addr = pair.cached.prog.symbol("t0_golden");
      pr.fallback_golden_addr = pair.fallback.prog.symbol("t0_golden");
      pr.cached_golden = pair.cached.golden;
      pr.fallback_golden = pair.fallback.golden;
      pr.mailbox = soc::mailbox_addr(c);
      pr.cached_calib = pair.cached.calib_cycles;
      pr.fallback_calib = pair.fallback.calib_cycles;
      pr.signature_stable = pair.signature_stable;
      plan.soc.load_program(pair.cached.prog);
      plan.soc.load_program(pair.fallback.prog);
      plan.schedule[c].push_back(std::move(pr));
    }
  }
  return plan;
}

std::vector<u8> SupervisorResult::outcome_vector() const {
  std::vector<u8> out;
  const auto put8 = [&out](u8 v) { out.push_back(v); };
  const auto put32 = [&put8](u32 v) {
    for (unsigned i = 0; i < 4; ++i) put8(static_cast<u8>(v >> (8 * i)));
  };
  const auto put64 = [&put8](u64 v) {
    for (unsigned i = 0; i < 8; ++i) put8(static_cast<u8>(v >> (8 * i)));
  };
  for (const CoreReport& cr : cores) {
    put8(cr.quarantined ? 1 : 0);
    put32(static_cast<u32>(cr.records.size()));
    for (const RoutineRecord& r : cr.records) {
      put8(static_cast<u8>(r.outcome));
      put8(static_cast<u8>(r.classification));
      put8(static_cast<u8>(r.last_failure));
      put8(static_cast<u8>(std::min(r.cached_attempts, 255u)));
      put8(static_cast<u8>(std::min(r.fallback_attempts, 255u)));
      put32(r.final_signature);
      put64(r.cycles);
    }
  }
  put64(total_cycles);
  put8(budget_exhausted ? 1 : 0);
  for (u64 v : injections.applied) put64(v);
  for (u64 v : injections.skipped) put64(v);
  return out;
}

StlSupervisor::StlSupervisor(soc::Soc soc, Schedule schedule,
                             const SupervisorConfig& cfg)
    : soc_(std::move(soc)), schedule_(std::move(schedule)), cfg_(cfg) {}

u64 StlSupervisor::watchdog(const PlannedRoutine& r, unsigned rung) const {
  const u64 calib = rung == 0 ? r.cached_calib : r.fallback_calib;
  return calib + calib * cfg_.margin_percent / 100 + cfg_.watchdog_floor;
}

void StlSupervisor::update_targets(unsigned c) {
  const PlannedRoutine& r = schedule_[c][ctx_[c].routine];
  targets_.cached_golden_addr[c] = r.cached_golden_addr;
  targets_.fallback_golden_addr[c] = r.fallback_golden_addr;
  targets_.core_live[c] = true;
}

void StlSupervisor::emit_decision(unsigned c, Decision d, u32 b) {
  DETSTL_TRACE(soc_.trace_sink(),
               trace::Event{.cycle = soc_.now(),
                            .kind = trace::EventKind::kSupDecision,
                            .core = static_cast<u8>(c),
                            .unit = static_cast<u8>(d),
                            .a = static_cast<u32>(ctx_[c].routine),
                            .b = b});
}

void StlSupervisor::launch(unsigned c) {
  CoreCtx& x = ctx_[c];
  const PlannedRoutine& r = schedule_[c][x.routine];
  ++x.attempt;
  if (x.rung == 0 && x.attempt == 1) x.routine_start = soc_.now();
  const u32 entry = x.rung == 0 ? r.cached_entry : r.fallback_entry;
  soc_.restart_core(c, entry);
  x.state = CoreState::kRunning;
  x.deadline = soc_.now() + watchdog(r, x.rung);
  update_targets(c);
  DETSTL_TRACE(soc_.trace_sink(),
               trace::Event{.cycle = soc_.now(),
                            .kind = trace::EventKind::kSupAttempt,
                            .core = static_cast<u8>(c),
                            .unit = static_cast<u8>(x.rung),
                            .addr = entry,
                            .a = static_cast<u32>(x.routine),
                            .b = x.attempt});
}

void StlSupervisor::advance(unsigned c) {
  CoreCtx& x = ctx_[c];
  ++x.routine;
  if (x.routine >= schedule_[c].size()) {
    x.state = CoreState::kDone;
    soc_.park_core(c);
    targets_.core_live[c] = false;  // nothing left to perturb on this core
    return;
  }
  x.rung = 0;
  x.attempt = 0;
  launch(c);
}

void StlSupervisor::quarantine(unsigned c) {
  CoreCtx& x = ctx_[c];
  emit_decision(c, Decision::kQuarantine, 0);
  soc_.park_core(c);
  x.state = CoreState::kQuarantined;
  result_.cores[c].quarantined = true;
  targets_.core_live[c] = false;
  for (std::size_t r = x.routine + 1; r < schedule_[c].size(); ++r) {
    result_.cores[c].records[r].outcome = RecoveryOutcome::kSkipped;
    DETSTL_TRACE(soc_.trace_sink(),
                 trace::Event{.cycle = soc_.now(),
                              .kind = trace::EventKind::kSupDecision,
                              .core = static_cast<u8>(c),
                              .unit = static_cast<u8>(Decision::kSkip),
                              .a = static_cast<u32>(r)});
  }
}

void StlSupervisor::finish_attempt(unsigned c, AttemptStatus status, u32 signature) {
  CoreCtx& x = ctx_[c];
  RoutineRecord& rec = result_.cores[c].records[x.routine];
  if (x.rung == 0)
    rec.cached_attempts = x.attempt;
  else
    rec.fallback_attempts = x.attempt;
  rec.final_signature = signature;
  DETSTL_TRACE(soc_.trace_sink(),
               trace::Event{.cycle = soc_.now(),
                            .kind = trace::EventKind::kSupOutcome,
                            .core = static_cast<u8>(c),
                            .unit = static_cast<u8>(status),
                            .a = static_cast<u32>(x.routine),
                            .b = signature});

  if (status == AttemptStatus::kPass) {
    if (x.rung == 1) {
      // The cached rung failed permanently but the routine itself is sound:
      // the core keeps coverage at the cost of the paper's cache decoupling.
      rec.outcome = RecoveryOutcome::kPassDegraded;
      rec.classification = Classification::kPermanent;
    } else if (x.attempt == 1) {
      rec.outcome = RecoveryOutcome::kPassClean;
    } else {
      rec.outcome = RecoveryOutcome::kPassRecovered;
      rec.classification = Classification::kTransient;
    }
    rec.cycles = soc_.now() - x.routine_start;
    emit_decision(c, Decision::kAccept, 0);
    advance(c);
    return;
  }

  rec.last_failure = status;
  const unsigned limit = x.rung == 0 ? cfg_.max_attempts : cfg_.fallback_attempts;
  if (x.attempt < limit) {
    // Retry with reload: the relaunch re-enters the wrapper from the top,
    // so cache invalidation + the loading loop rebuild the whole context.
    const u64 backoff =
        std::min(cfg_.backoff_base << (x.attempt - 1), cfg_.backoff_cap);
    emit_decision(c, Decision::kRetry, static_cast<u32>(backoff));
    soc_.park_core(c);  // also stops a still-spinning core after a timeout
    x.state = CoreState::kBackoff;
    x.resume_at = soc_.now() + backoff;
    return;
  }
  if (x.rung == 0 && cfg_.fallback_attempts > 0) {
    emit_decision(c, Decision::kFallback, 0);
    soc_.park_core(c);
    x.rung = 1;
    x.attempt = 0;
    x.state = CoreState::kBackoff;
    x.resume_at = soc_.now() + cfg_.backoff_base;
    return;
  }
  // Ladder exhausted: the routine cannot be made to pass on this core.
  rec.outcome = RecoveryOutcome::kQuarantined;
  rec.classification = Classification::kPermanent;
  rec.cycles = soc_.now() - x.routine_start;
  quarantine(c);
}

SupervisorResult StlSupervisor::run(DisturbanceInjector* injector, InjectorHook* hook) {
  soc_.reset();
  result_ = SupervisorResult{};
  targets_ = InjectTargets{};
  for (unsigned c = 0; c < soc_.num_cores(); ++c) {
    ctx_[c] = CoreCtx{};
    auto& records = result_.cores[c].records;
    records.resize(schedule_[c].size());
    for (std::size_t r = 0; r < schedule_[c].size(); ++r)
      records[r].name = schedule_[c][r].name;
    if (!schedule_[c].empty()) launch(c);
  }

  const auto live = [this] {
    for (const CoreCtx& x : ctx_)
      if (x.state == CoreState::kRunning || x.state == CoreState::kBackoff)
        return true;
    return false;
  };

  while (live()) {
    if (soc_.now() >= cfg_.global_budget) {
      result_.budget_exhausted = true;
      for (unsigned c = 0; c < soc_.num_cores(); ++c) {
        CoreCtx& x = ctx_[c];
        if (x.state != CoreState::kRunning && x.state != CoreState::kBackoff)
          continue;
        for (std::size_t r = x.routine; r < schedule_[c].size(); ++r)
          result_.cores[c].records[r].outcome = RecoveryOutcome::kBudgetExhausted;
        emit_decision(c, Decision::kGiveUp, 0);
        soc_.park_core(c);
        x.state = CoreState::kDone;
      }
      break;
    }

    soc_.tick();
    if (injector != nullptr) injector->poll(soc_, targets_);
    if (hook != nullptr) hook->poll(soc_, targets_);

    for (unsigned c = 0; c < soc_.num_cores(); ++c) {
      CoreCtx& x = ctx_[c];
      if (x.state == CoreState::kRunning) {
        const PlannedRoutine& r = schedule_[c][x.routine];
        if (soc_.core(c).halted()) {
          const core::TestVerdict v = core::read_verdict(soc_, r.mailbox);
          const u32 golden = x.rung == 0 ? r.cached_golden : r.fallback_golden;
          AttemptStatus st;
          if (v.status == soc::kStatusPass && v.signature == golden)
            st = AttemptStatus::kPass;
          else if (v.status == soc::kStatusPass || v.status == soc::kStatusFail)
            st = AttemptStatus::kMismatch;
          else
            st = AttemptStatus::kCrash;  // halted without reporting
          finish_attempt(c, st, v.signature);
        } else if (soc_.now() >= x.deadline) {
          finish_attempt(c, AttemptStatus::kTimeout, 0);
        }
      } else if (x.state == CoreState::kBackoff && soc_.now() >= x.resume_at) {
        launch(c);
      }
    }
  }

  result_.total_cycles = soc_.now();
  if (injector != nullptr) result_.injections = injector->stats();
  return result_;
}

}  // namespace detstl::runtime
