#include "runtime/mission.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.h"
#include "common/table.h"
#include "core/stl.h"
#include "isa/assembler.h"
#include "runtime/campaign.h"

namespace detstl::runtime {

const char* mission_workload_name(MissionWorkloadKind k) {
  switch (k) {
    case MissionWorkloadKind::kMemStream: return "mem-stream";
    case MissionWorkloadKind::kPointerChase: return "ptr-chase";
    case MissionWorkloadKind::kCompute: return "compute";
  }
  return "?";
}

namespace {

// Flash layout. plan_schedule hands out 64 KiB per (core, routine) pair
// starting at kFlashBase + 0x4000; mission code and data live above 1 MiB,
// so schedules of up to 15 programs (the default 5-routine mix on 3 cores)
// never collide. run_mission guards the ceiling explicitly.
constexpr u32 kMissionCodeBase = mem::kFlashBase + 0x100000;
constexpr u32 kMissionCodeWindow = 0x1000;  // per (core, workload) kernel
constexpr u32 kChaseRingBase = mem::kFlashBase + 0x110000;
constexpr u32 kChaseRingWords = 8192;  // 32 KiB ring per core
constexpr u32 kStreamBase = mem::kFlashBase + 0x130000;
constexpr u32 kStreamWindow = 0x10000;  // 64 KiB sweep per core

u32 kernel_code_base(unsigned core, MissionWorkloadKind kind) {
  return kMissionCodeBase +
         (core * kNumMissionWorkloads + static_cast<unsigned>(kind)) * kMissionCodeWindow;
}

/// Build one read-only mission kernel for `core`: an infinite loop executing
/// from flash, no SRAM stores (so it cannot touch a mailbox or scratch area
/// by construction). `rng` supplies the seeded parameters.
isa::Program build_mission_kernel(unsigned core, MissionWorkloadKind kind, Rng& rng) {
  using namespace isa;
  Assembler a;
  a.org(kernel_code_base(core, kind));
  a.label("entry");
  a.set_entry("entry");
  switch (kind) {
    case MissionWorkloadKind::kMemStream: {
      const u32 lo = kStreamBase + core * kStreamWindow;
      // Line-stride loads sweep the window and wrap forever: a steady flash
      // read stream through the D-cache, the classic bandwidth-bound task.
      a.li(R4, lo);
      a.li(R6, lo + kStreamWindow);
      a.label("loop");
      a.lw(R5, R4, 0);
      a.addi(R4, R4, 32);
      a.bltu(R4, R6, "loop");
      a.beq(R0, R0, "entry");  // wrap: reload the base and sweep again
      break;
    }
    case MissionWorkloadKind::kPointerChase: {
      const u32 ring = kChaseRingBase + core * kChaseRingWords * 4;
      // next[i] = ring + 4*((i + s) mod N) with s odd and N a power of two:
      // gcd(s, N) = 1, so the chase is one full-cycle permutation — a
      // latency-bound dependent-load chain with no spatial locality.
      const u32 stride = static_cast<u32>(rng.below(kChaseRingWords / 2)) * 2 + 1;
      a.li(R5, ring);
      a.label("loop");
      a.lw(R5, R5, 0);
      a.beq(R0, R0, "loop");
      a.org(ring);
      for (u32 i = 0; i < kChaseRingWords; ++i)
        a.word(ring + 4 * ((i + stride) % kChaseRingWords));
      break;
    }
    case MissionWorkloadKind::kCompute: {
      // Register-only mixing loop: after the first I-cache fill it generates
      // no bus traffic at all — the control case for the interference table.
      a.li(R4, static_cast<u32>(rng.next_u64()));
      a.li(R6, 0x9e3779b9);
      a.label("loop");
      a.xor_(R5, R4, R6);
      a.add(R4, R4, R5);
      a.srli(R7, R4, 5);
      a.xor_(R4, R4, R7);
      a.beq(R0, R0, "loop");
      break;
    }
  }
  return a.assemble();
}

}  // namespace

unsigned MissionResult::divergences() const {
  unsigned n = 0;
  for (const MissionSliceRecord& r : records) n += r.sig_ok == 0 ? 1 : 0;
  return n;
}

unsigned MissionResult::bound_violations() const {
  unsigned n = 0;
  for (const MissionSliceRecord& r : records) n += r.bound_ok == 0 ? 1 : 0;
  return n;
}

u32 MissionResult::worst_wait() const {
  u32 w = 0;
  for (const MissionSliceRecord& r : records)
    w = std::max({w, r.stl_max_wait, r.mission_max_wait});
  return w;
}

std::vector<u8> MissionResult::outcome_vector() const {
  std::vector<u8> out;
  const auto put8 = [&out](u8 v) { out.push_back(v); };
  const auto put32 = [&put8](u32 v) {
    for (unsigned i = 0; i < 4; ++i) put8(static_cast<u8>(v >> (8 * i)));
  };
  const auto put64 = [&put8](u64 v) {
    for (unsigned i = 0; i < 8; ++i) put8(static_cast<u8>(v >> (8 * i)));
  };
  for (const MissionSliceRecord& r : records) {
    put32(r.slice);
    put8(r.tested_core);
    put32(static_cast<u32>(r.routine.size()));
    for (char ch : r.routine) put8(static_cast<u8>(ch));
    for (u8 w : r.workload) put8(w);
    put8(r.sig_ok);
    put8(r.timed_out);
    put8(r.bound_ok);
    put32(r.signature);
    put64(r.slice_cycles);
    put32(r.stl_max_wait);
    put32(r.mission_max_wait);
    put64(r.mission_grants);
  }
  put64(total_cycles);
  return out;
}

u64 MissionResult::digest() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const u8 b : outcome_vector()) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

MissionResult run_mission(const MissionSpec& spec) {
  if (spec.cores < 1 || spec.cores > soc::kMaxCores)
    throw std::runtime_error("mission: cores must be 1..3");

  std::vector<std::string> names = spec.routines;
  if (names.empty()) names = {"alu", "rf-march", "shifter", "branch", "muldiv"};
  std::vector<std::unique_ptr<core::SelfTestRoutine>> owned;
  std::vector<const core::SelfTestRoutine*> ptrs;
  for (const auto& n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    if (e == nullptr)
      throw std::runtime_error("mission: unknown routine '" + n + "' (see stlint --list)");
    owned.push_back(e->make());
    ptrs.push_back(owned.back().get());
  }
  if (spec.cores * ptrs.size() > 15)
    throw std::runtime_error("mission: schedule would collide with the mission flash window");

  SchedulePlan plan = plan_schedule(ptrs, spec.cores);
  // One kernel per (core, workload): the stream windows and chase rings are
  // per-core so concurrent mission tasks contend on distinct flash lines.
  std::array<std::array<u32, kNumMissionWorkloads>, soc::kMaxCores> kernel_entry{};
  for (unsigned c = 0; c < spec.cores; ++c) {
    Rng rng(derive_run_seed(spec.seed, 0xC0DE + c));
    for (unsigned k = 0; k < kNumMissionWorkloads; ++k) {
      const isa::Program prog =
          build_mission_kernel(c, static_cast<MissionWorkloadKind>(k), rng);
      kernel_entry[c][k] = prog.entry();
      plan.soc.load_program(prog);
    }
  }

  soc::Soc soc = plan.soc;
  soc.set_trace_sink(spec.sink);
  soc.reset();

  MissionResult res;
  res.slices = spec.slices;
  res.cores = spec.cores;
  res.seed = spec.seed;
  res.routine_names = names;
  res.bound = analysis::interference_bound(soc.config().mem, spec.cores);
  res.records.reserve(spec.slices);

  Rng assign(derive_run_seed(spec.seed, 0xA551));
  const unsigned ports = 3 * spec.cores;
  std::vector<u64> grants_before(ports, 0);

  for (u32 s = 0; s < spec.slices; ++s) {
    const unsigned tested = s % spec.cores;
    const std::size_t ri = s % plan.schedule[tested].size();
    const PlannedRoutine& r = plan.schedule[tested][ri];

    MissionSliceRecord rec;
    rec.slice = s;
    rec.tested_core = static_cast<u8>(tested);
    rec.routine = r.name;

    // Mission cores restart into seeded workloads each slice (a restart
    // hard-resets the core's cache view, so every slice opens with a cold
    // refill burst — the worst-case contention the d_max bound covers).
    for (unsigned c = 0; c < spec.cores; ++c) {
      if (c == tested) continue;
      const unsigned k = static_cast<unsigned>(assign.below(kNumMissionWorkloads));
      rec.workload[c] = static_cast<u8>(k);
      soc.restart_core(c, kernel_entry[c][k]);
    }

    for (unsigned p = 0; p < ports; ++p) grants_before[p] = soc.bus().stats(p).grants;
    soc.bus().reset_wait_marks();

    soc.restart_core(tested, r.cached_entry);
    DETSTL_TRACE(soc.trace_sink(),
                 trace::Event{.cycle = soc.now(),
                              .kind = trace::EventKind::kMissionSlice,
                              .core = static_cast<u8>(tested),
                              .addr = r.cached_entry,
                              .a = static_cast<u32>(ri),
                              .b = s});

    const u64 start = soc.now();
    const u64 deadline = start + r.cached_calib +
                         r.cached_calib * spec.supervisor.margin_percent / 100 +
                         spec.supervisor.watchdog_floor;
    while (!soc.core(tested).halted() && soc.now() < deadline) soc.tick();
    rec.slice_cycles = soc.now() - start;

    if (soc.core(tested).halted()) {
      const core::TestVerdict v = core::read_verdict(soc, r.mailbox);
      rec.signature = v.signature;
      rec.sig_ok =
          (v.status == soc::kStatusPass && v.signature == r.cached_golden) ? 1 : 0;
    } else {
      rec.timed_out = 1;
    }

    for (unsigned p = 0; p < ports; ++p) {
      const mem::BusStats& st = soc.bus().stats(p);
      const u32 w = static_cast<u32>(st.max_wait_cycles);
      if (p / 3 == tested)
        rec.stl_max_wait = std::max(rec.stl_max_wait, w);
      else
        rec.mission_max_wait = std::max(rec.mission_max_wait, w);
      if (p / 3 != tested) rec.mission_grants += st.grants - grants_before[p];
    }
    rec.bound_ok =
        (rec.stl_max_wait <= res.bound.d_max && rec.mission_max_wait <= res.bound.d_max)
            ? 1
            : 0;
    DETSTL_TRACE(soc.trace_sink(),
                 trace::Event{.cycle = soc.now(),
                              .kind = trace::EventKind::kMissionCheck,
                              .core = static_cast<u8>(tested),
                              .flags = static_cast<u8>((rec.sig_ok ? 1 : 0) |
                                                       (rec.bound_ok ? 2 : 0)),
                              .a = rec.signature,
                              .b = rec.mission_max_wait});

    // Gap: the tested core joins the mission fleet until the next slice.
    const unsigned gk = static_cast<unsigned>(assign.below(kNumMissionWorkloads));
    soc.restart_core(tested, kernel_entry[tested][gk]);
    for (u64 t = 0; t < spec.gap_cycles; ++t) soc.tick();

    res.records.push_back(std::move(rec));
  }

  for (unsigned c = 0; c < spec.cores; ++c) soc.park_core(c);
  res.total_cycles = soc.now();
  return res;
}

std::string render_mission_report(const MissionResult& r) {
  std::string routines;
  for (std::size_t i = 0; i < r.routine_names.size(); ++i)
    routines += (i == 0 ? "" : ", ") + r.routine_names[i];

  std::string out = "stlrun mission mode: " + std::to_string(r.slices) +
                    " STL slices, seed " + TextTable::fmt_hex(r.seed) + ", " +
                    std::to_string(r.cores) + " cores\nroutines: " + routines +
                    "\npredicted bound (stlint): t_max " + std::to_string(r.bound.t_max) +
                    ", d_max " + std::to_string(r.bound.d_max) + " cycles across " +
                    std::to_string(r.bound.requesters) + " requesters\n\n";

  TextTable tab("mission slices");
  tab.header({"slice", "core", "routine", "mission workloads", "signature", "stl wait",
              "mission wait", "grants", "bound"});
  for (const MissionSliceRecord& rec : r.records) {
    std::string loads;
    for (unsigned c = 0; c < r.cores; ++c) {
      if (rec.workload[c] == 0xff) continue;
      if (!loads.empty()) loads += "+";
      loads += mission_workload_name(static_cast<MissionWorkloadKind>(rec.workload[c]));
    }
    if (loads.empty()) loads = "-";
    tab.row({TextTable::fmt_int(rec.slice),
             std::string(1, static_cast<char>('A' + rec.tested_core)), rec.routine, loads,
             rec.timed_out != 0 ? "TIMEOUT"
                                : (rec.sig_ok != 0 ? "ok " + TextTable::fmt_hex(rec.signature)
                                                   : "DIVERGED " + TextTable::fmt_hex(rec.signature)),
             TextTable::fmt_int(rec.stl_max_wait), TextTable::fmt_int(rec.mission_max_wait),
             TextTable::fmt_int(static_cast<long long>(rec.mission_grants)),
             rec.bound_ok != 0 ? "ok" : "VIOLATED"});
  }
  out += tab.str() + "\n";

  const u32 worst = r.worst_wait();
  out += "signature divergence: " + std::to_string(r.divergences()) + " of " +
         std::to_string(r.slices) + " slices\n";
  out += "measured worst per-access wait: " + std::to_string(worst) + " of predicted d_max " +
         std::to_string(r.bound.d_max);
  if (r.bound.d_max != 0)
    out += " (" + std::to_string(worst * 100 / r.bound.d_max) + "% of bound, " +
           std::to_string(r.bound_violations()) + " violations)";
  out += "\noutcome digest: " + TextTable::fmt_hex(r.digest()) + "\n";
  return out;
}

}  // namespace detstl::runtime
