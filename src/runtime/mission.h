#pragma once
// Mission-mode STL scheduling: interleave the cached self-test routines with
// representative mission workloads on the non-tested cores and check, on real
// simulated traffic, the two properties the paper's in-field argument rests
// on:
//
//   1. Determinism under sharing — the STL signature stays byte-identical to
//      the isolated golden value no matter what the other cores execute,
//      because the wrapped routine's execution context is private (locked L1
//      contents + private scratch) and only its *timing* is exposed to the
//      bus.
//   2. Bounded interference — every per-access bus wait observed during a
//      slice (STL ports and mission ports alike) stays within the closed-form
//      d_max bound that stlint derives statically (analysis/absint.h), i.e.
//      the measured worst case never exceeds the predicted worst case.
//
// A mission run is a sequence of slices. Slice s tests core (s mod cores)
// with routine (s mod #routines) while every other core runs a seeded mission
// kernel — a memory-streaming loop, a pointer-chase over a seeded permutation
// ring, or a cache-resident compute loop — then all cores run mission code
// for a gap before the next slice. Kernels are read-only flash loops (no SRAM
// stores), so a mailbox or scratch collision is impossible by construction
// and any signature divergence is a real isolation failure.

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "runtime/supervisor.h"

namespace detstl::runtime {

enum class MissionWorkloadKind : u8 {
  kMemStream = 0,     // line-stride lw sweep over a 64 KiB flash window
  kPointerChase = 1,  // lw chase over a seeded 8192-word permutation ring
  kCompute = 2,       // cache-resident ALU mix (no bus traffic after warm-up)
};

inline constexpr unsigned kNumMissionWorkloads = 3;

const char* mission_workload_name(MissionWorkloadKind k);

struct MissionSpec {
  u64 seed = 0xA1551000;
  unsigned slices = 12;
  u64 gap_cycles = 2'000;  // mission-only gap between consecutive slices
  unsigned cores = 3;
  /// Registry routine names (core/stl.h); empty = the default mix.
  std::vector<std::string> routines;
  /// margin_percent / watchdog_floor feed the per-slice watchdog (the
  /// calibration is single-core isolated; the margin absorbs mission
  /// interference). The other fields are unused — mission mode has no
  /// retry ladder, a failed slice is reported as-is.
  SupervisorConfig supervisor{};
  trace::EventSink* sink = nullptr;  // non-owning; null = tracing off
};

struct MissionSliceRecord {
  u32 slice = 0;
  u8 tested_core = 0;
  std::string routine;
  /// MissionWorkloadKind per mission core; 0xff on the tested core.
  std::array<u8, soc::kMaxCores> workload = {0xff, 0xff, 0xff};
  u8 sig_ok = 0;    // signature byte-identical to the isolated golden value
  u8 timed_out = 0; // watchdog expired before the routine halted
  u8 bound_ok = 0;  // every measured per-access wait <= d_max
  u32 signature = 0;
  u64 slice_cycles = 0;
  u32 stl_max_wait = 0;      // worst submit->grant wait on the tested core's ports
  u32 mission_max_wait = 0;  // worst submit->grant wait on any mission port
  u64 mission_grants = 0;    // bus grants won by mission ports during the slice
};

struct MissionResult {
  unsigned slices = 0;
  unsigned cores = 0;
  u64 seed = 0;
  std::vector<std::string> routine_names;
  analysis::InterferenceBound bound;  // the stlint prediction being checked
  std::vector<MissionSliceRecord> records;
  u64 total_cycles = 0;

  unsigned divergences() const;   // slices with sig_ok == 0
  unsigned bound_violations() const;
  u32 worst_wait() const;         // max over all slices, both port classes

  /// Canonical byte serialisation (no wall-clock) — the determinism unit.
  std::vector<u8> outcome_vector() const;
  /// FNV-1a 64 of outcome_vector().
  u64 digest() const;
};

MissionResult run_mission(const MissionSpec& spec);

/// Deterministic report: per-slice table plus measured-vs-predicted
/// interference margins.
std::string render_mission_report(const MissionResult& r);

}  // namespace detstl::runtime
