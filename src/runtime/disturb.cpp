#include "runtime/disturb.h"

#include <algorithm>
#include <cassert>

namespace detstl::runtime {

const char* disturbance_name(DisturbanceKind k) {
  switch (k) {
    case DisturbanceKind::kIrq: return "irq";
    case DisturbanceKind::kICacheInvalidate: return "i$-invalidate";
    case DisturbanceKind::kDCacheInvalidate: return "d$-invalidate";
    case DisturbanceKind::kICacheFlip: return "i$-bit-flip";
    case DisturbanceKind::kDCacheFlip: return "d$-bit-flip";
    case DisturbanceKind::kSpuriousEviction: return "spurious-eviction";
    case DisturbanceKind::kBusStall: return "bus-stall";
    case DisturbanceKind::kStuckBit: return "stuck-bit";
    case DisturbanceKind::kFlashCorrupt: return "flash-corrupt";
  }
  return "?";
}

DisturbancePlan make_plan(const DisturbanceSpec& spec, u64 seed, unsigned num_cores) {
  static const DisturbanceKind kTransient[] = {
      DisturbanceKind::kIrq,        DisturbanceKind::kICacheInvalidate,
      DisturbanceKind::kDCacheInvalidate, DisturbanceKind::kICacheFlip,
      DisturbanceKind::kDCacheFlip, DisturbanceKind::kSpuriousEviction,
      DisturbanceKind::kBusStall,   DisturbanceKind::kStuckBit,
  };
  std::vector<DisturbanceKind> kinds = spec.kinds;
  if (kinds.empty()) kinds.assign(std::begin(kTransient), std::end(kTransient));

  Rng rng(seed);
  const u64 hi = spec.window_hi > spec.window_lo ? spec.window_hi : spec.window_lo + 1;
  DisturbancePlan plan;
  plan.items.reserve(spec.count + 1);
  for (unsigned i = 0; i < spec.count; ++i) {
    Disturbance d;
    d.kind = kinds[rng.below(kinds.size())];
    d.core = static_cast<u8>(rng.below(num_cores));
    d.cycle = rng.range(spec.window_lo, hi);
    d.pick = rng.next_u64();
    switch (d.kind) {
      case DisturbanceKind::kIrq: d.param = spec.irq_sources; break;
      case DisturbanceKind::kBusStall: d.param = spec.stall_cycles; break;
      case DisturbanceKind::kStuckBit:
        d.param = spec.stuck_period;
        d.repeats = spec.stuck_repeats;
        break;
      default: break;
    }
    plan.items.push_back(d);
  }
  if (spec.permanent_chance > 0.0 && rng.chance(spec.permanent_chance)) {
    Disturbance d;
    d.kind = DisturbanceKind::kFlashCorrupt;
    d.core = static_cast<u8>(rng.below(num_cores));
    d.cycle = rng.range(spec.window_lo, hi);
    d.pick = rng.next_u64();
    plan.items.push_back(d);
  }
  std::stable_sort(plan.items.begin(), plan.items.end(),
                   [](const Disturbance& a, const Disturbance& b) {
                     return a.cycle < b.cycle;
                   });
  return plan;
}

DisturbanceInjector::DisturbanceInjector(DisturbancePlan plan) : plan_(std::move(plan)) {
  assert(std::is_sorted(plan_.items.begin(), plan_.items.end(),
                        [](const Disturbance& a, const Disturbance& b) {
                          return a.cycle < b.cycle;
                        }));
}

void DisturbanceInjector::poll(soc::Soc& soc, const InjectTargets& targets) {
  const u64 now = soc.now();
  while (next_ < plan_.items.size() && plan_.items[next_].cycle <= now) {
    const Disturbance& d = plan_.items[next_++];
    apply(d, soc, targets);
    if (d.kind == DisturbanceKind::kStuckBit && d.repeats > 1) {
      Disturbance rec = d;
      rec.cycle = now + rec.param;
      --rec.repeats;
      recurring_.push_back(rec);
    }
  }
  for (std::size_t i = 0; i < recurring_.size();) {
    Disturbance& rec = recurring_[i];
    if (rec.cycle <= now) {
      apply(rec, soc, targets);
      rec.cycle = now + rec.param;
      if (--rec.repeats == 0) {
        recurring_.erase(recurring_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }
}

void DisturbanceInjector::apply(const Disturbance& d, soc::Soc& soc,
                                const InjectTargets& targets) {
  const unsigned kind_idx = static_cast<unsigned>(d.kind);
  const bool core_scoped = d.kind != DisturbanceKind::kBusStall;
  bool applied = false;
  u32 addr = d.addr;
  u32 detail = d.param;

  if (core_scoped && (d.core >= soc.num_cores() || !targets.core_live[d.core])) {
    // Quarantined / absent core: nothing to perturb.
  } else {
    switch (d.kind) {
      case DisturbanceKind::kIrq:
        soc.core(d.core).inject_icu_event(static_cast<u8>(d.param));
        applied = true;
        break;
      case DisturbanceKind::kBusStall:
        soc.bus().inject_stall(d.param);
        applied = true;
        break;
      case DisturbanceKind::kICacheInvalidate:
      case DisturbanceKind::kDCacheInvalidate:
      case DisturbanceKind::kICacheFlip:
      case DisturbanceKind::kDCacheFlip:
      case DisturbanceKind::kStuckBit:
      case DisturbanceKind::kSpuriousEviction: {
        const bool iside = d.kind == DisturbanceKind::kICacheInvalidate ||
                           d.kind == DisturbanceKind::kICacheFlip;
        mem::MemSystem& ms = soc.core(d.core).memsys();
        mem::Cache& cache = iside ? ms.icache() : ms.dcache();
        if (addr == 0) {
          // Seeded targeting: pick one of the lines resident right now.
          const auto lines = cache.resident_lines();
          if (lines.empty()) break;
          addr = lines[d.pick % lines.size()];
        }
        const u32 bit = static_cast<u32>(d.pick >> 32) %
                        (cache.config().line_bytes * 8);
        switch (d.kind) {
          case DisturbanceKind::kICacheInvalidate:
          case DisturbanceKind::kDCacheInvalidate:
            applied = cache.invalidate_line(addr);
            break;
          case DisturbanceKind::kICacheFlip:
          case DisturbanceKind::kDCacheFlip:
            applied = cache.flip_bit(addr, bit);
            detail = bit;
            break;
          case DisturbanceKind::kStuckBit:
            applied = cache.force_bit(addr, bit, true);
            detail = bit;
            break;
          case DisturbanceKind::kSpuriousEviction:
            // An eviction writes dirty data back before dropping the line,
            // so memory stays architecturally correct — only the timing and
            // residency are disturbed.
            if (cache.probe(addr) && cache.line_dirty(addr)) {
              std::vector<u32> beats;
              cache.read_line(addr, beats);
              const u32 base = addr & ~(cache.config().line_bytes - 1);
              for (u32 i = 0; i < beats.size(); ++i)
                soc.debug_write32(base + 4 * i, beats[i]);
            }
            applied = cache.invalidate_line(addr);
            break;
          default: break;
        }
        break;
      }
      case DisturbanceKind::kFlashCorrupt: {
        // Permanent fault: corrupt the routine's expected-value constant in
        // flash on BOTH rungs of the ladder, so retry and the uncacheable
        // fallback keep failing and the supervisor must quarantine the core.
        const u32 bit = static_cast<u32>(d.pick % 32);
        for (const u32 word : {targets.cached_golden_addr[d.core],
                               targets.fallback_golden_addr[d.core]}) {
          if (word == 0) continue;
          const u32 corrupted = soc.flash().read32(word) ^ (1u << bit);
          std::vector<u8> bytes(4);
          for (unsigned i = 0; i < 4; ++i)
            bytes[i] = static_cast<u8>(corrupted >> (8 * i));
          soc.flash().write_image(word, bytes);
          addr = word;
          detail = bit;
          applied = true;
        }
        break;
      }
    }
  }

  stats_.applied[kind_idx] += applied ? 1 : 0;
  stats_.skipped[kind_idx] += applied ? 0 : 1;
  DETSTL_TRACE(soc.trace_sink(),
               trace::Event{.cycle = soc.now(),
                            .kind = trace::EventKind::kDisturbance,
                            .core = d.core,
                            .unit = static_cast<u8>(d.kind),
                            .flags = static_cast<u8>(applied ? 1 : 0),
                            .addr = addr,
                            .a = detail,
                            .b = d.repeats});
}

}  // namespace detstl::runtime
