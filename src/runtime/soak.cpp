#include "runtime/soak.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/table.h"
#include "core/stl.h"
#include "fault/work_queue.h"
#include "perf/simstats.h"

namespace detstl::runtime {

const char* soak_site_name(SoakSite s) {
  switch (s) {
    case SoakSite::kRam: return "ram";
    case SoakSite::kL1I: return "l1-icache";
    case SoakSite::kL1D: return "l1-dcache";
    case SoakSite::kPipeline: return "pipeline";
  }
  return "?";
}

namespace {

/// SRAM words eligible for RAM upsets: everything above the first page
/// (mailboxes + barrier words live at the bottom of SRAM; an upset there is
/// indistinguishable from a reporting-protocol bug rather than a data SEU).
constexpr u32 kRamTargetLo = mem::kSramBase + 0x1000;
constexpr u32 kRamTargetHi = mem::kSramBase + mem::kSramSize;

u32 site_rate(const SoakRates& r, SoakSite s) {
  switch (s) {
    case SoakSite::kRam: return r.ram;
    case SoakSite::kL1I: return r.l1i;
    case SoakSite::kL1D: return r.l1d;
    case SoakSite::kPipeline: return r.pipeline;
  }
  return 0;
}

}  // namespace

SoakPlan make_soak_plan(const SoakSpec& spec, u64 seed, unsigned num_cores) {
  SoakPlan plan;
  // One independent Bernoulli-per-cycle stream per site (the discrete
  // Poisson process), sub-seeded so per-site rates can be tuned without
  // perturbing the other sites' arrivals.
  for (unsigned si = 0; si < kNumSoakSites; ++si) {
    const SoakSite site = static_cast<SoakSite>(si);
    const u32 rate = site_rate(spec.rates, site);  // upsets per Mcycle
    if (rate == 0) continue;
    Rng rng(derive_run_seed(seed, 0x50A0 + si));
    for (u64 t = 0; t < spec.duration; ++t) {
      if (rng.below(1'000'000) >= rate) continue;
      SoakUpset u;
      u.site = site;
      u.core = static_cast<u8>(rng.below(std::max(1u, num_cores)));
      u.cycle = t;
      u.pick = rng.next_u64();
      plan.upsets.push_back(u);
    }
  }
  std::stable_sort(plan.upsets.begin(), plan.upsets.end(),
                   [](const SoakUpset& a, const SoakUpset& b) { return a.cycle < b.cycle; });
  return plan;
}

SoakInjector::SoakInjector(const SoakPlan& plan, std::size_t limit)
    : plan_(&plan), limit_(std::min(limit, plan.upsets.size())) {}

void SoakInjector::poll(soc::Soc& soc, const InjectTargets& targets) {
  const u64 now = soc.now();
  while (next_ < limit_ && plan_->upsets[next_].cycle <= now) {
    const std::size_t i = next_++;
    apply(plan_->upsets[i], static_cast<u32>(i), soc, targets);
  }
}

void SoakInjector::apply(const SoakUpset& u, u32 index, soc::Soc& soc,
                         const InjectTargets& targets) {
  const unsigned site_idx = static_cast<unsigned>(u.site);
  const unsigned c = u.core % std::max(1u, soc.num_cores());
  bool applied = false;
  u32 addr = 0;
  u32 bit = 0;

  switch (u.site) {
    case SoakSite::kRam: {
      const u32 words = (kRamTargetHi - kRamTargetLo) / 4;
      addr = kRamTargetLo + static_cast<u32>(u.pick % words) * 4;
      bit = static_cast<u32>(u.pick >> 32) % 32;
      soc.flip_ram_bit(addr, bit);
      applied = true;
      break;
    }
    case SoakSite::kL1I:
    case SoakSite::kL1D: {
      if (!targets.core_live[c]) break;
      mem::MemSystem& ms = soc.core(c).memsys();
      mem::Cache& cache = u.site == SoakSite::kL1I ? ms.icache() : ms.dcache();
      const auto lines = cache.resident_lines();
      if (lines.empty()) break;
      addr = lines[u.pick % lines.size()];
      bit = static_cast<u32>(u.pick >> 32) % (cache.config().line_bytes * 8);
      applied = cache.flip_bit(addr, bit);
      break;
    }
    case SoakSite::kPipeline: {
      if (!targets.core_live[c]) break;
      applied = soc.core(c).inject_pipeline_upset(u.pick);
      bit = static_cast<u32>((u.pick >> 8) % 64);
      break;
    }
  }

  stats_.applied[site_idx] += applied ? 1 : 0;
  stats_.skipped[site_idx] += applied ? 0 : 1;
  if (applied)
    applied_.push_back(AppliedUpset{index, u.site, static_cast<u8>(c), u.cycle, addr, bit});
  DETSTL_TRACE(soc.trace_sink(),
               trace::Event{.cycle = soc.now(),
                            .kind = trace::EventKind::kSoakUpset,
                            .core = static_cast<u8>(c),
                            .unit = static_cast<u8>(u.site),
                            .flags = static_cast<u8>(applied ? 1 : 0),
                            .addr = addr,
                            .a = bit,
                            .b = index});
}

bool soak_run_diverged(const SupervisorResult& r) {
  if (r.budget_exhausted) return true;
  for (const CoreReport& cr : r.cores) {
    if (cr.quarantined) return true;
    for (const RoutineRecord& rr : cr.records)
      if (rr.outcome != RecoveryOutcome::kPassClean) return true;
  }
  return false;
}

namespace {

const char* kDefaultRoutines[] = {"alu", "rf-march", "shifter", "branch", "muldiv"};

void run_pool(unsigned threads, const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(body, w);
  for (auto& t : pool) t.join();
}

void put8(std::vector<u8>& out, u8 v) { out.push_back(v); }
void put32(std::vector<u8>& out, u32 v) {
  for (unsigned i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put64(std::vector<u8>& out, u64 v) {
  for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

struct Cursor {
  const std::vector<u8>* b;
  std::size_t pos = 0;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || b->size() - pos < n) return ok = false;
    return true;
  }
  u8 get8() {
    if (!take(1)) return 0;
    return (*b)[pos++];
  }
  u32 get32() {
    if (!take(4)) return 0;
    u32 v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= static_cast<u32>((*b)[pos++]) << (8 * i);
    return v;
  }
  u64 get64() {
    if (!take(8)) return 0;
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<u64>((*b)[pos++]) << (8 * i);
    return v;
  }
};

/// One supervised run under the first `limit` upsets of `plan`. The SoC and
/// schedule come fresh from the plan every time, so a bisection probe is
/// exactly as deterministic as the original run.
SupervisorResult run_prefix(const SchedulePlan& sp, const SupervisorConfig& cfg,
                            const SoakPlan& plan, std::size_t limit, SoakStats* stats,
                            std::vector<AppliedUpset>* log) {
  SoakInjector inj(plan, limit);
  StlSupervisor sup(sp.soc, sp.schedule, cfg);
  SupervisorResult r = sup.run(nullptr, &inj);
  if (stats != nullptr) *stats = inj.stats();
  if (log != nullptr) *log = inj.applied_log();
  return r;
}

SoakRunRecord run_soak_once(const SchedulePlan& sp, const SoakCampaignSpec& spec,
                            u64 run_seed) {
  SoakRunRecord rec;
  rec.seed = run_seed;
  const SoakPlan plan = make_soak_plan(spec.soak, run_seed, spec.cores);
  std::vector<AppliedUpset> log;
  rec.result = run_prefix(sp, spec.supervisor, plan, plan.upsets.size(), &rec.stats, &log);
  perf::sim_totals().add(perf::SimStat::kDisturbRuns, 1);
  perf::sim_totals().add(perf::SimStat::kDisturbCycles, rec.result.total_cycles);

  IsolationResult& iso = rec.isolation;
  iso.diverged = soak_run_diverged(rec.result) ? 1 : 0;
  if (iso.diverged == 0 || !spec.isolate || plan.upsets.empty()) return rec;

  // Prefix bisection (delta debugging specialised to a single culprit): the
  // invariant is "prefix hi diverges, prefix lo is clean"; the culprit is
  // the last upset of the minimal failing prefix. The zero-upset probe
  // guards the invariant — if even an undisturbed run diverges, the
  // schedule itself is unstable and no upset can be blamed.
  std::size_t lo = 0, hi = plan.upsets.size();
  u32 reruns = 1;
  std::vector<AppliedUpset> culprit_log = log;
  const SupervisorResult clean =
      run_prefix(sp, spec.supervisor, plan, 0, nullptr, nullptr);
  perf::sim_totals().add(perf::SimStat::kDisturbCycles, clean.total_cycles);
  if (soak_run_diverged(clean)) {
    iso.reruns = reruns;
    return rec;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<AppliedUpset> probe_log;
    const SupervisorResult probe =
        run_prefix(sp, spec.supervisor, plan, mid, nullptr, &probe_log);
    perf::sim_totals().add(perf::SimStat::kDisturbCycles, probe.total_cycles);
    ++reruns;
    if (soak_run_diverged(probe)) {
      hi = mid;
      culprit_log = std::move(probe_log);
    } else {
      lo = mid;
    }
  }
  const u32 culprit = static_cast<u32>(hi - 1);
  const SoakUpset& u = plan.upsets[culprit];
  iso.isolated = 1;
  iso.upset_index = culprit;
  iso.site = u.site;
  iso.core = u.core;
  iso.cycle = u.cycle;
  iso.reruns = reruns;
  for (const AppliedUpset& a : culprit_log) {
    if (a.index != culprit) continue;
    iso.core = a.core;
    iso.addr = a.addr;
    iso.bit = a.bit;
    break;
  }
  return rec;
}

}  // namespace

std::vector<u8> serialize_soak_record(const SoakRunRecord& rec) {
  const std::vector<u8> inner = serialize_run_record(RunRecord{rec.seed, rec.result});
  std::vector<u8> out;
  put32(out, static_cast<u32>(inner.size()));
  out.insert(out.end(), inner.begin(), inner.end());
  for (unsigned s = 0; s < kNumSoakSites; ++s) {
    put64(out, rec.stats.applied[s]);
    put64(out, rec.stats.skipped[s]);
  }
  const IsolationResult& iso = rec.isolation;
  put8(out, iso.diverged);
  put8(out, iso.isolated);
  put32(out, iso.upset_index);
  put8(out, static_cast<u8>(iso.site));
  put8(out, iso.core);
  put64(out, iso.cycle);
  put32(out, iso.addr);
  put32(out, iso.bit);
  put32(out, iso.reruns);
  return out;
}

bool deserialize_soak_record(const std::vector<u8>& bytes, SoakRunRecord& out) {
  Cursor c{&bytes};
  SoakRunRecord rec;
  const u32 inner_len = c.get32();
  if (!c.take(inner_len)) return false;
  const std::vector<u8> inner(bytes.begin() + static_cast<std::ptrdiff_t>(c.pos),
                              bytes.begin() + static_cast<std::ptrdiff_t>(c.pos + inner_len));
  c.pos += inner_len;
  RunRecord rr;
  if (!deserialize_run_record(inner, rr)) return false;
  rec.seed = rr.seed;
  rec.result = std::move(rr.result);
  for (unsigned s = 0; s < kNumSoakSites; ++s) {
    rec.stats.applied[s] = c.get64();
    rec.stats.skipped[s] = c.get64();
  }
  IsolationResult& iso = rec.isolation;
  iso.diverged = c.get8();
  iso.isolated = c.get8();
  iso.upset_index = c.get32();
  const u8 site = c.get8();
  iso.core = c.get8();
  iso.cycle = c.get64();
  iso.addr = c.get32();
  iso.bit = c.get32();
  iso.reruns = c.get32();
  if (iso.diverged > 1 || iso.isolated > 1 || site >= kNumSoakSites) return false;
  iso.site = static_cast<SoakSite>(site);
  if (!c.ok || c.pos != bytes.size()) return false;  // trailing garbage
  out = std::move(rec);
  return true;
}

u64 soak_checkpoint_config_hash(const SoakCampaignSpec& spec, const SchedulePlan& plan) {
  fault::ConfigHasher h;
  h.u32v(fault::kCheckpointSchemaVersion)
      .u32v(static_cast<u32>(fault::PayloadKind::kSoakRuns))
      .u64v(spec.seed)
      .u32v(spec.runs)
      .u32v(spec.cores);
  for (unsigned c = 0; c < spec.cores; ++c) {
    h.u32v(static_cast<u32>(plan.schedule[c].size()));
    for (const PlannedRoutine& r : plan.schedule[c]) {
      h.str(r.name)
          .u32v(r.cached_golden)
          .u32v(r.fallback_golden)
          .u64v(r.cached_calib)
          .u64v(r.fallback_calib);
    }
  }
  const SupervisorConfig& sup = spec.supervisor;
  h.u32v(sup.margin_percent)
      .u64v(sup.watchdog_floor)
      .u32v(sup.max_attempts)
      .u32v(sup.fallback_attempts)
      .u64v(sup.backoff_base)
      .u64v(sup.backoff_cap)
      .u64v(sup.global_budget);
  h.u64v(spec.soak.duration)
      .u32v(spec.soak.rates.ram)
      .u32v(spec.soak.rates.l1i)
      .u32v(spec.soak.rates.l1d)
      .u32v(spec.soak.rates.pipeline)
      .u8v(spec.isolate ? 1 : 0);
  h.u64v(fault::soc_image_fingerprint(plan.soc));
  return h.digest();
}

std::vector<u8> SoakCampaignResult::outcome_vector() const {
  std::vector<u8> out;
  for (const SoakRunRecord& r : records) {
    put64(out, r.seed);
    const std::vector<u8> v = r.result.outcome_vector();
    out.insert(out.end(), v.begin(), v.end());
    for (unsigned s = 0; s < kNumSoakSites; ++s) {
      put64(out, r.stats.applied[s]);
      put64(out, r.stats.skipped[s]);
    }
    put8(out, r.isolation.diverged);
    put8(out, r.isolation.isolated);
    put32(out, r.isolation.upset_index);
    put8(out, static_cast<u8>(r.isolation.site));
    put8(out, r.isolation.core);
    put64(out, r.isolation.cycle);
    put32(out, r.isolation.addr);
    put32(out, r.isolation.bit);
    put32(out, r.isolation.reruns);
  }
  return out;
}

u64 SoakCampaignResult::digest() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const u8 b : outcome_vector()) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

SoakCampaignResult run_soak_campaign(const SoakCampaignSpec& spec_in) {
  SoakCampaignSpec spec = spec_in;
  if (spec.cores < 1 || spec.cores > soc::kMaxCores)
    throw std::runtime_error("soak: cores must be 1..3");

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> names = spec.routines;
  if (names.empty())
    names.assign(std::begin(kDefaultRoutines), std::end(kDefaultRoutines));
  std::vector<std::unique_ptr<core::SelfTestRoutine>> owned;
  std::vector<const core::SelfTestRoutine*> ptrs;
  for (const auto& n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    if (e == nullptr)
      throw std::runtime_error("soak: unknown routine '" + n + "' (see stlint --list)");
    owned.push_back(e->make());
    ptrs.push_back(owned.back().get());
  }
  const SchedulePlan plan = plan_schedule(ptrs, spec.cores);

  if (spec.soak.duration == 0) {
    // Same derivation as the disturbance window: twice the slowest core's
    // fault-free cached time plus slack, so arrivals cover retries too.
    u64 longest = 0;
    for (unsigned c = 0; c < spec.cores; ++c) {
      u64 sum = 0;
      for (const PlannedRoutine& r : plan.schedule[c]) sum += r.cached_calib;
      longest = std::max(longest, sum);
    }
    spec.soak.duration = 2 * longest + 1'000;
  }

  SoakCampaignResult res;
  res.runs = spec.runs;
  res.cores = spec.cores;
  res.seed = spec.seed;
  res.routine_names = names;
  res.records.resize(spec.runs);

  const unsigned threads =
      spec.threads != 0 ? spec.threads : std::max(1u, std::thread::hardware_concurrency());
  res.threads_used = std::min<unsigned>(threads, std::max(1u, spec.runs));

  fault::LoadedCheckpoint loaded;
  std::optional<fault::CheckpointWriter> writer;
  std::vector<u8> done(spec.runs, 0);
  const auto stop_requested = [&spec] {
    return spec.interrupt != nullptr && spec.interrupt->stop_requested();
  };
  const auto apply_record = [&](const fault::ShardRecord& sr) {
    SoakRunRecord rec;
    if (sr.index >= spec.runs || !deserialize_soak_record(sr.payload, rec) ||
        rec.seed != derive_run_seed(spec.seed, static_cast<unsigned>(sr.index)))
      return;
    if (done[sr.index] == 0) {
      done[sr.index] = 1;
      ++res.ckpt.records_resumed;
    }
    res.records[sr.index] = std::move(rec);
  };
  if (spec.checkpoint.enabled()) {
    const u64 hash = soak_checkpoint_config_hash(spec, plan);
    if (spec.checkpoint.resume)
      loaded = fault::load_checkpoint(spec.checkpoint, fault::PayloadKind::kSoakRuns, hash,
                                      spec.sink);
    writer.emplace(spec.checkpoint, fault::PayloadKind::kSoakRuns, hash, loaded.next_shard,
                   spec.sink);
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded = loaded.shards_loaded;
    res.ckpt.shards_corrupt = loaded.shards_corrupt;
    for (const fault::ShardRecord& sr : loaded.records) apply_record(sr);
  }
  if (!spec.merge_dirs.empty()) {
    const fault::MultiLoadedCheckpoint merged = fault::load_checkpoint_dirs(
        spec.merge_dirs, fault::PayloadKind::kSoakRuns,
        soak_checkpoint_config_hash(spec, plan), spec.sink);
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded += merged.shards_loaded;
    res.ckpt.shards_corrupt += merged.shards_corrupt;
    for (const fault::ShardRecord& sr : merged.records) apply_record(sr);
  }

  if (spec.unit_begin != 0 || spec.unit_end != 0) {
    if (spec.unit_begin >= spec.unit_end)
      throw std::runtime_error("soak: empty shard range");
    for (u64 i = 0; i < spec.runs; ++i)
      if (i < spec.unit_begin || i >= spec.unit_end) done[i] = 1;
  }

  fault::WorkQueue queue(spec.runs, 1, &done);
  run_pool(res.threads_used, [&](unsigned) {
    while (!stop_requested()) {
      const auto chunk = queue.next();
      if (!chunk) return;
      for (u64 i = chunk->begin; i < chunk->end; ++i) {
        if (done[i] != 0) continue;
        const u64 run_seed = derive_run_seed(spec.seed, static_cast<unsigned>(i));
        res.records[i] = run_soak_once(plan, spec, run_seed);
        if (writer) writer->add(i, serialize_soak_record(res.records[i]));
        if (spec.on_run_complete) spec.on_run_complete(i);
        if (spec.interrupt != nullptr) spec.interrupt->on_unit_complete();
      }
    }
    queue.halt();
  });

  if (writer) {
    writer->flush();
    res.ckpt.shards_flushed = writer->shards_flushed();
    res.ckpt.flush_ns = writer->flush_ns();
  }
  res.ckpt.interrupted = stop_requested();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

std::string render_soak_report(const SoakCampaignResult& r) {
  std::string routines;
  for (std::size_t i = 0; i < r.routine_names.size(); ++i)
    routines += (i == 0 ? "" : ", ") + r.routine_names[i];

  std::string out = "stlrun SEU soak campaign: " + std::to_string(r.runs) + " runs, seed " +
                    TextTable::fmt_hex(r.seed) + ", " + std::to_string(r.cores) +
                    " cores\nroutines: " + routines + "\n\n";

  SoakStats totals;
  u64 diverged = 0, isolated = 0;
  for (const SoakRunRecord& rec : r.records) {
    for (unsigned s = 0; s < kNumSoakSites; ++s) {
      totals.applied[s] += rec.stats.applied[s];
      totals.skipped[s] += rec.stats.skipped[s];
    }
    diverged += rec.isolation.diverged;
    isolated += rec.isolation.isolated;
  }

  TextTable sites("upsets injected (all runs)");
  sites.header({"site", "applied", "skipped"});
  for (unsigned s = 0; s < kNumSoakSites; ++s) {
    sites.row({soak_site_name(static_cast<SoakSite>(s)),
               TextTable::fmt_int(static_cast<long long>(totals.applied[s])),
               TextTable::fmt_int(static_cast<long long>(totals.skipped[s]))});
  }
  out += sites.str() + "\n";

  TextTable iso("differential isolation (diverged runs)");
  iso.header({"run", "upsets", "culprit", "site", "core", "cycle", "addr", "bit", "reruns"});
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    const SoakRunRecord& rec = r.records[i];
    if (rec.isolation.diverged == 0) continue;
    const IsolationResult& v = rec.isolation;
    iso.row({TextTable::fmt_int(static_cast<long long>(i)),
             TextTable::fmt_int(static_cast<long long>(rec.stats.total_applied())),
             v.isolated != 0 ? "#" + std::to_string(v.upset_index) : "(unattributed)",
             v.isolated != 0 ? soak_site_name(v.site) : "-",
             v.isolated != 0 ? std::string(1, static_cast<char>('A' + v.core)) : "-",
             v.isolated != 0 ? TextTable::fmt_int(static_cast<long long>(v.cycle)) : "-",
             v.isolated != 0 && v.addr != 0 ? TextTable::fmt_hex(v.addr) : "-",
             v.isolated != 0 ? TextTable::fmt_int(static_cast<long long>(v.bit)) : "-",
             TextTable::fmt_int(static_cast<long long>(v.reruns))});
  }
  out += iso.str() + "\n";

  out += "divergence: " + std::to_string(diverged) + " of " + std::to_string(r.runs) +
         " runs diverged, " + std::to_string(isolated) + " isolated to a single upset";
  out += "\noutcome digest: " + TextTable::fmt_hex(r.digest()) + "\n";
  return out;
}

}  // namespace detstl::runtime
