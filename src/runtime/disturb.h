#pragma once
// Seeded, deterministic disturbance injection for on-line self-test runs.
//
// The paper's wrapped routines are meant to run in the field, where they
// compete with asynchronous interrupts, cache soft errors / external
// invalidations and interconnect anomalies. The DisturbanceInjector replays
// a pre-computed, seed-derived plan of such perturbations against a running
// SoC so the supervisor's recovery machinery (runtime/supervisor.h) can be
// exercised reproducibly: the same seed produces the same disturbance
// stream, tick for tick, on any host.
//
// Every application attempt is emitted as a trace::EventKind::kDisturbance
// event (flags bit 0 = applied) so detscope can attribute each recovery
// decision to the perturbation that caused it.

#include <array>
#include <vector>

#include "common/rng.h"
#include "soc/soc.h"

namespace detstl::runtime {

enum class DisturbanceKind : u8 {
  kIrq,               // asynchronous interrupt: ICU event strobes (param = source bits)
  kICacheInvalidate,  // drop one resident I-cache line (snoop-style)
  kDCacheInvalidate,  // drop one resident D-cache line
  kICacheFlip,        // single-event upset in a resident I-cache line
  kDCacheFlip,        // single-event upset in a resident D-cache line
  kSpuriousEviction,  // writeback-if-dirty then drop one resident D-cache line
  kBusStall,          // freeze the shared bus for param cycles (error-retry burst)
  kStuckBit,          // persistent data-array defect: force one I-/D-cache bit
                      // to 1 every param cycles, repeats times
  kFlashCorrupt,      // permanent fault: flip one bit of the target routine's
                      // golden constant in flash (both rungs)
};

inline constexpr unsigned kNumDisturbanceKinds = 9;

const char* disturbance_name(DisturbanceKind k);

/// One planned perturbation. `pick` is raw seed material resolved against the
/// simulation state at application time (which resident line, which bit);
/// `addr` pins an explicit target line instead (tests aim at known symbols).
struct Disturbance {
  DisturbanceKind kind = DisturbanceKind::kIrq;
  u8 core = 0;
  u64 cycle = 0;    // SoC tick at which to apply
  u64 pick = 0;     // seeded targeting material (line index / bit index)
  u32 addr = 0;     // explicit target address; 0 = derive from pick
  u32 param = 0;    // kind-specific: irq source bits / stall cycles / period
  u32 repeats = 1;  // kStuckBit re-applications
};

/// Plan-generation knobs (tools/stlrun exposes these).
struct DisturbanceSpec {
  unsigned count = 6;        // disturbances drawn per run
  u64 window_lo = 200;       // earliest application tick
  u64 window_hi = 0;         // latest; 0 = caller derives from calibration
  u32 stall_cycles = 150;    // kBusStall burst length
  u32 stuck_period = 48;     // kStuckBit re-application period
  u32 stuck_repeats = 64;    // kStuckBit lifetime in applications
  u32 irq_sources = 1u << static_cast<unsigned>(isa::IcuSource::kSoftware);
  /// Kinds to draw from; empty = every transient kind (no kFlashCorrupt —
  /// permanent faults enter only via permanent_chance).
  std::vector<DisturbanceKind> kinds;
  /// Probability that a run additionally draws one permanent kFlashCorrupt.
  double permanent_chance = 0.0;
};

struct DisturbancePlan {
  std::vector<Disturbance> items;  // sorted by cycle
};

/// Derive a plan from (spec, seed): same inputs, same plan, bit for bit.
DisturbancePlan make_plan(const DisturbanceSpec& spec, u64 seed, unsigned num_cores);

/// What the injector needs to know about the supervised schedule: where the
/// current routine's golden constants live (kFlashCorrupt targets) and which
/// cores are still in service. Maintained by the supervisor.
struct InjectTargets {
  std::array<u32, soc::kMaxCores> cached_golden_addr{};
  std::array<u32, soc::kMaxCores> fallback_golden_addr{};
  std::array<bool, soc::kMaxCores> core_live{};
};

struct InjectionStats {
  std::array<u64, kNumDisturbanceKinds> applied{};
  std::array<u64, kNumDisturbanceKinds> skipped{};  // dead core / no resident target
  u64 total_applied() const {
    u64 n = 0;
    for (u64 v : applied) n += v;
    return n;
  }
};

/// Per-tick perturbation source the supervisor polls after every Soc::tick().
/// DisturbanceInjector replays event-count plans; the rate-based SEU soak
/// model (runtime/soak.h) extends the same contract with Poisson-style
/// arrival plans. Both are deterministic functions of (plan, tick).
class InjectorHook {
 public:
  virtual ~InjectorHook() = default;
  virtual void poll(soc::Soc& soc, const InjectTargets& targets) = 0;
};

/// Replays a DisturbancePlan against a running SoC. Call poll() once per
/// SoC tick (after Soc::tick()); all items due at soc.now() are applied.
class DisturbanceInjector : public InjectorHook {
 public:
  explicit DisturbanceInjector(DisturbancePlan plan);

  void poll(soc::Soc& soc, const InjectTargets& targets) override;

  const InjectionStats& stats() const { return stats_; }
  /// All one-shot items consumed and no recurring item still live.
  bool exhausted() const { return next_ >= plan_.items.size() && recurring_.empty(); }

 private:
  void apply(const Disturbance& d, soc::Soc& soc, const InjectTargets& targets);

  DisturbancePlan plan_;
  std::size_t next_ = 0;
  std::vector<Disturbance> recurring_;  // live kStuckBit items (cycle = next due)
  InjectionStats stats_;
};

}  // namespace detstl::runtime
