#pragma once
// Rate-based SEU soak model + differential fault isolation.
//
// Where the DisturbanceInjector replays a fixed *count* of perturbations,
// the soak model draws Poisson-style upset arrivals at configurable
// per-site rates over a long observation window — the in-field radiation
// regime (SNIPPETS.md snippet 1: memory vs. cache vs. pipeline isolation on
// a commodity SoC). Everything is a deterministic function of (spec, seed):
// the plan is compact (site, core, cycle, pick) and replayable, so a soak
// campaign rides the same sharded + checkpointed executor as the
// disturbance campaign and stays byte-identical at any thread count.
//
// Differential isolation: when a supervised run under the full upset plan
// diverges from a clean pass (any routine slot not kPassClean, a
// quarantined core, or an exhausted budget), the run is repeated with the
// plan bisected by prefix length until the minimal failing prefix is found;
// its last upset is the responsible one, reported with its resolved landing
// site (address + bit) from the injector's applied log.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "runtime/campaign.h"
#include "runtime/disturb.h"
#include "runtime/supervisor.h"

namespace detstl::runtime {

/// Where an upset lands. RAM flips hit the SRAM array underneath any cached
/// copies; L1 flips hit a resident line of the targeted core's private
/// cache; pipeline flips hit a valid EX/MEM/WB result latch.
enum class SoakSite : u8 {
  kRam = 0,
  kL1I = 1,
  kL1D = 2,
  kPipeline = 3,
};

inline constexpr unsigned kNumSoakSites = 4;

const char* soak_site_name(SoakSite s);

/// Expected upsets per million cycles, per site (flux knobs).
struct SoakRates {
  u32 ram = 60;
  u32 l1i = 30;
  u32 l1d = 30;
  u32 pipeline = 15;
};

struct SoakSpec {
  /// Arrival horizon in SoC cycles; 0 = derived from the schedule
  /// calibration (twice the slowest core's fault-free time + slack), so
  /// upsets land across the whole run including retries.
  u64 duration = 0;
  SoakRates rates;
};

/// One planned upset. `pick` is raw seed material resolved against the
/// simulation state at application time (which SRAM word / resident line /
/// pipeline latch, which bit).
struct SoakUpset {
  SoakSite site = SoakSite::kRam;
  u8 core = 0;
  u64 cycle = 0;
  u64 pick = 0;
};

struct SoakPlan {
  std::vector<SoakUpset> upsets;  // sorted by cycle
};

/// Derive a plan from (spec, seed): per-site Bernoulli-per-cycle arrival
/// scan (the discrete Poisson process), merged and sorted by cycle. Same
/// inputs, same plan, bit for bit, on any host.
SoakPlan make_soak_plan(const SoakSpec& spec, u64 seed, unsigned num_cores);

struct SoakStats {
  std::array<u64, kNumSoakSites> applied{};
  std::array<u64, kNumSoakSites> skipped{};  // dead core / empty cache / idle pipeline
  u64 total_applied() const {
    u64 n = 0;
    for (u64 v : applied) n += v;
    return n;
  }
};

/// An upset that actually landed, with its resolved target (the isolation
/// report names this).
struct AppliedUpset {
  u32 index = 0;  // position in the plan
  SoakSite site = SoakSite::kRam;
  u8 core = 0;
  u64 cycle = 0;
  u32 addr = 0;  // resolved SRAM word / cache line base; 0 for pipeline
  u32 bit = 0;
};

/// Replays the first `limit` upsets of a SoakPlan against a running SoC
/// (limit past the end = the whole plan — prefix truncation is the
/// differential-isolation probe). Poll once per SoC tick, same contract as
/// DisturbanceInjector. The plan is borrowed; the caller keeps it alive.
class SoakInjector : public InjectorHook {
 public:
  explicit SoakInjector(const SoakPlan& plan, std::size_t limit = SIZE_MAX);

  void poll(soc::Soc& soc, const InjectTargets& targets) override;

  const SoakStats& stats() const { return stats_; }
  const std::vector<AppliedUpset>& applied_log() const { return applied_; }

 private:
  void apply(const SoakUpset& u, u32 index, soc::Soc& soc, const InjectTargets& targets);

  const SoakPlan* plan_;
  std::size_t limit_;
  std::size_t next_ = 0;
  SoakStats stats_;
  std::vector<AppliedUpset> applied_;
};

/// Differential-isolation verdict for one soak run.
struct IsolationResult {
  u8 diverged = 0;  // run differed from a clean pass
  u8 isolated = 0;  // bisection converged on a single culprit
  u32 upset_index = 0;
  SoakSite site = SoakSite::kRam;
  u8 core = 0;
  u64 cycle = 0;  // planned arrival tick of the culprit
  u32 addr = 0;   // resolved landing address (0 when masked/pipeline)
  u32 bit = 0;
  u32 reruns = 0;  // bisection re-simulations spent
};

struct SoakRunRecord {
  u64 seed = 0;
  SupervisorResult result;
  SoakStats stats;
  IsolationResult isolation;
};

/// True when `r` differs from a clean undisturbed pass: any routine slot
/// not kPassClean, a quarantined core, or an exhausted budget.
bool soak_run_diverged(const SupervisorResult& r);

struct SoakCampaignSpec {
  u64 seed = 0x5EA50001;
  unsigned runs = 8;
  unsigned threads = 0;  // 0 = one per hardware thread, 1 = serial
  unsigned cores = 3;
  /// Registry routine names (core/stl.h); empty = the default mix.
  std::vector<std::string> routines;
  SupervisorConfig supervisor{};
  SoakSpec soak{};
  /// Run differential bisection on every diverged run (log2(n) extra
  /// supervised runs per divergence). Part of the config hash.
  bool isolate = true;
  // --- executor plumbing, all excluded from the config hash ----------------
  fault::CheckpointConfig checkpoint;
  fault::InterruptToken* interrupt = nullptr;
  trace::EventSink* sink = nullptr;
  u64 unit_begin = 0;  // half-open shard range of run indices; (0,0) = all
  u64 unit_end = 0;
  std::vector<std::string> merge_dirs;
  std::function<void(u64)> on_run_complete;
};

struct SoakCampaignResult {
  unsigned runs = 0;
  unsigned cores = 0;
  unsigned threads_used = 0;
  u64 seed = 0;
  std::vector<std::string> routine_names;
  std::vector<SoakRunRecord> records;  // indexed by run
  double wall_seconds = 0.0;           // excluded from the determinism contract
  fault::CheckpointStats ckpt;         // excluded from the determinism contract

  /// Concatenated canonical run results (byte-identical across thread counts).
  std::vector<u8> outcome_vector() const;
  /// FNV-1a 64 of outcome_vector().
  u64 digest() const;
};

/// Loss-less shard payload of a soak-campaign checkpoint (framed
/// serialize_run_record + soak stats + isolation verdict).
std::vector<u8> serialize_soak_record(const SoakRunRecord& rec);
bool deserialize_soak_record(const std::vector<u8>& bytes, SoakRunRecord& out);

/// Manifest identity of a soak checkpoint: seed, runs, cores, resolved
/// schedule, supervisor config, soak spec, isolate flag and the SoC image
/// fingerprint. EXCLUDES threads, shard range, checkpoint and interrupt —
/// the partitioned-campaign property stlserve relies on.
u64 soak_checkpoint_config_hash(const SoakCampaignSpec& spec, const SchedulePlan& plan);

SoakCampaignResult run_soak_campaign(const SoakCampaignSpec& spec);

/// Deterministic report (no wall-clock, no thread count): per-site upset
/// totals, per-run divergence/isolation table, outcome digest.
std::string render_soak_report(const SoakCampaignResult& r);

}  // namespace detstl::runtime
