#include "runtime/campaign.h"

#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/table.h"
#include "fault/work_queue.h"
#include "perf/simstats.h"

namespace detstl::runtime {

namespace {

/// Run `body(worker_id)` on `threads` workers and join; one thread runs the
/// body on the calling thread (exactly the serial path, no spawn). Same
/// idiom as the fault campaign's pool.
void run_pool(unsigned threads, const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(body, w);
  for (auto& t : pool) t.join();
}

const char* kDefaultRoutines[] = {"alu", "rf-march", "shifter", "branch", "muldiv"};

}  // namespace

u64 derive_run_seed(u64 master, unsigned run) {
  u64 z = master + 0x9e3779b97f4a7c15ull * (run + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<u8> CampaignResult::outcome_vector() const {
  std::vector<u8> out;
  for (const RunRecord& r : records) {
    for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(r.seed >> (8 * i)));
    const std::vector<u8> v = r.result.outcome_vector();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

u64 CampaignResult::digest() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const u8 b : outcome_vector()) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

// Little-endian emit/parse helpers for the loss-less RunRecord round-trip.
void put8(std::vector<u8>& out, u8 v) { out.push_back(v); }
void put32(std::vector<u8>& out, u32 v) {
  for (unsigned i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put64(std::vector<u8>& out, u64 v) {
  for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

/// Bounds-checked little-endian cursor; every get_* fails sticky.
struct Cursor {
  const std::vector<u8>* b;
  std::size_t pos = 0;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || b->size() - pos < n) return ok = false;
    return true;
  }
  u8 get8() {
    if (!take(1)) return 0;
    return (*b)[pos++];
  }
  u32 get32() {
    if (!take(4)) return 0;
    u32 v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= static_cast<u32>((*b)[pos++]) << (8 * i);
    return v;
  }
  u64 get64() {
    if (!take(8)) return 0;
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<u64>((*b)[pos++]) << (8 * i);
    return v;
  }
  std::string get_str() {
    const u32 n = get32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(b->data()) + pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

std::vector<u8> serialize_run_record(const RunRecord& rec) {
  std::vector<u8> out;
  put64(out, rec.seed);
  put8(out, soc::kMaxCores);
  for (const CoreReport& cr : rec.result.cores) {
    put8(out, cr.quarantined ? 1 : 0);
    put32(out, static_cast<u32>(cr.records.size()));
    for (const RoutineRecord& rr : cr.records) {
      put32(out, static_cast<u32>(rr.name.size()));
      out.insert(out.end(), rr.name.begin(), rr.name.end());
      put8(out, static_cast<u8>(rr.outcome));
      put8(out, static_cast<u8>(rr.classification));
      put32(out, rr.cached_attempts);
      put32(out, rr.fallback_attempts);
      put8(out, static_cast<u8>(rr.last_failure));
      put64(out, rr.cycles);
      put32(out, rr.final_signature);
    }
  }
  put64(out, rec.result.total_cycles);
  put8(out, rec.result.budget_exhausted ? 1 : 0);
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
    put64(out, rec.result.injections.applied[k]);
    put64(out, rec.result.injections.skipped[k]);
  }
  return out;
}

bool deserialize_run_record(const std::vector<u8>& bytes, RunRecord& out) {
  Cursor c{&bytes};
  RunRecord rec;
  rec.seed = c.get64();
  if (c.get8() != soc::kMaxCores) return false;
  for (CoreReport& cr : rec.result.cores) {
    cr.quarantined = c.get8() != 0;
    const u32 n = c.get32();
    if (!c.ok || n > bytes.size()) return false;  // cheap amplification guard
    cr.records.resize(n);
    for (RoutineRecord& rr : cr.records) {
      rr.name = c.get_str();
      rr.outcome = static_cast<RecoveryOutcome>(c.get8());
      rr.classification = static_cast<Classification>(c.get8());
      rr.cached_attempts = c.get32();
      rr.fallback_attempts = c.get32();
      rr.last_failure = static_cast<AttemptStatus>(c.get8());
      rr.cycles = c.get64();
      rr.final_signature = c.get32();
      if (rr.outcome > RecoveryOutcome::kBudgetExhausted ||
          rr.classification > Classification::kPermanent ||
          rr.last_failure > AttemptStatus::kTimeout)
        return false;
    }
  }
  rec.result.total_cycles = c.get64();
  rec.result.budget_exhausted = c.get8() != 0;
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
    rec.result.injections.applied[k] = c.get64();
    rec.result.injections.skipped[k] = c.get64();
  }
  if (!c.ok || c.pos != bytes.size()) return false;  // trailing garbage
  out = std::move(rec);
  return true;
}

u64 checkpoint_config_hash(const CampaignSpec& spec, const SchedulePlan& plan) {
  fault::ConfigHasher h;
  h.u32v(fault::kCheckpointSchemaVersion)
      .u32v(static_cast<u32>(fault::PayloadKind::kDisturbanceRuns))
      .u64v(spec.seed)
      .u32v(spec.runs)
      .u32v(spec.cores);
  // The resolved schedule, not spec.routines: the routine-pointer overload
  // ignores the name list, and the calibrations feed the watchdog budgets.
  for (unsigned c = 0; c < spec.cores; ++c) {
    h.u32v(static_cast<u32>(plan.schedule[c].size()));
    for (const PlannedRoutine& r : plan.schedule[c]) {
      h.str(r.name)
          .u32v(r.cached_golden)
          .u32v(r.fallback_golden)
          .u64v(r.cached_calib)
          .u64v(r.fallback_calib);
    }
  }
  const SupervisorConfig& sup = spec.supervisor;
  h.u32v(sup.margin_percent)
      .u64v(sup.watchdog_floor)
      .u32v(sup.max_attempts)
      .u32v(sup.fallback_attempts)
      .u64v(sup.backoff_base)
      .u64v(sup.backoff_cap)
      .u64v(sup.global_budget);
  const DisturbanceSpec& d = spec.disturb;
  h.u32v(d.count)
      .u64v(d.window_lo)
      .u64v(d.window_hi)
      .u32v(d.stall_cycles)
      .u32v(d.stuck_period)
      .u32v(d.stuck_repeats)
      .u32v(d.irq_sources)
      .u32v(static_cast<u32>(d.kinds.size()))
      .f64v(d.permanent_chance);
  for (const DisturbanceKind k : d.kinds) h.u8v(static_cast<u8>(k));
  h.u64v(fault::soc_image_fingerprint(plan.soc));
  return h.digest();
}

CampaignResult run_disturbance_campaign(
    const CampaignSpec& spec,
    const std::vector<const core::SelfTestRoutine*>& routines) {
  if (spec.cores < 1 || spec.cores > soc::kMaxCores)
    throw std::runtime_error("campaign: cores must be 1..3");
  if (routines.empty()) throw std::runtime_error("campaign: no routines");

  const auto t0 = std::chrono::steady_clock::now();
  const SchedulePlan plan = plan_schedule(routines, spec.cores);

  DisturbanceSpec dspec = spec.disturb;
  if (dspec.window_hi == 0) {
    // Derive the injection window from the calibrated schedule length: twice
    // the slowest core's fault-free cached time, so disturbances land across
    // the whole run including retries.
    u64 longest = 0;
    for (unsigned c = 0; c < spec.cores; ++c) {
      u64 sum = 0;
      for (const PlannedRoutine& r : plan.schedule[c]) sum += r.cached_calib;
      longest = std::max(longest, sum);
    }
    dspec.window_hi = dspec.window_lo + 2 * longest + 1'000;
  }

  CampaignResult res;
  res.runs = spec.runs;
  res.cores = spec.cores;
  res.seed = spec.seed;
  for (const auto* r : routines) res.routine_names.push_back(r->name());
  res.records.resize(spec.runs);

  const unsigned threads =
      spec.threads != 0 ? spec.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  res.threads_used = std::min<unsigned>(threads, std::max(1u, spec.runs));

  // --- Crash-safe checkpoint/resume (fault/checkpoint.h) -----------------------
  // Shard payloads are loss-less serialised RunRecords; a record that fails
  // deserialisation or carries the wrong derived seed is dropped and its run
  // re-executed.
  fault::LoadedCheckpoint loaded;
  std::optional<fault::CheckpointWriter> writer;
  std::vector<u8> done(spec.runs, 0);
  const auto stop_requested = [&spec] {
    return spec.interrupt != nullptr && spec.interrupt->stop_requested();
  };
  // Accept a journalled record iff it parses loss-lessly and carries the
  // derived seed of its run index; anything else is dropped and re-executed.
  const auto apply_record = [&](const fault::ShardRecord& sr) {
    RunRecord rec;
    if (sr.index >= spec.runs || !deserialize_run_record(sr.payload, rec) ||
        rec.seed != derive_run_seed(spec.seed, static_cast<unsigned>(sr.index)))
      return;
    if (done[sr.index] == 0) {
      done[sr.index] = 1;
      ++res.ckpt.records_resumed;
    }
    res.records[sr.index] = std::move(rec);
  };
  if (spec.checkpoint.enabled()) {
    const u64 hash = checkpoint_config_hash(spec, plan);
    if (spec.checkpoint.resume)
      loaded = fault::load_checkpoint(spec.checkpoint,
                                      fault::PayloadKind::kDisturbanceRuns, hash,
                                      spec.sink);
    writer.emplace(spec.checkpoint, fault::PayloadKind::kDisturbanceRuns, hash,
                   loaded.next_shard, spec.sink);
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded = loaded.shards_loaded;
    res.ckpt.shards_corrupt = loaded.shards_corrupt;
    for (const fault::ShardRecord& sr : loaded.records) apply_record(sr);
  }
  if (!spec.merge_dirs.empty()) {
    // Post-hoc shard merge (src/serve/): the per-shard journals share this
    // campaign's manifest identity because the shard range is not hashed.
    const fault::MultiLoadedCheckpoint merged = fault::load_checkpoint_dirs(
        spec.merge_dirs, fault::PayloadKind::kDisturbanceRuns,
        checkpoint_config_hash(spec, plan), spec.sink);
    res.ckpt.enabled = true;
    res.ckpt.shards_loaded += merged.shards_loaded;
    res.ckpt.shards_corrupt += merged.shards_corrupt;
    for (const fault::ShardRecord& sr : merged.records) apply_record(sr);
  }

  // Shard range: runs outside [unit_begin, unit_end) belong to other workers.
  if (spec.unit_begin != 0 || spec.unit_end != 0) {
    if (spec.unit_begin >= spec.unit_end)
      throw std::runtime_error("campaign: empty shard range");
    for (u64 i = 0; i < spec.runs; ++i)
      if (i < spec.unit_begin || i >= spec.unit_end) done[i] = 1;
  }

  // Outcomes are written by run index; aggregates (report, digest) are
  // derived from the merged vector after the join — byte-identical results
  // at any thread count, straight or resumed.
  fault::WorkQueue queue(spec.runs, 1, &done);
  run_pool(res.threads_used, [&](unsigned) {
    while (!stop_requested()) {
      const auto chunk = queue.next();
      if (!chunk) return;
      for (u64 i = chunk->begin; i < chunk->end; ++i) {
        if (done[i] != 0) continue;  // resumed shard already records this run
        const u64 run_seed = derive_run_seed(spec.seed, static_cast<unsigned>(i));
        DisturbanceInjector injector(
            make_plan(dspec, run_seed, spec.cores));
        StlSupervisor sup(plan.soc, plan.schedule, spec.supervisor);
        res.records[i] = RunRecord{run_seed, sup.run(&injector)};
        perf::sim_totals().add(perf::SimStat::kDisturbRuns, 1);
        perf::sim_totals().add(perf::SimStat::kDisturbCycles,
                               res.records[i].result.total_cycles);
        if (writer) writer->add(i, serialize_run_record(res.records[i]));
        if (spec.on_run_complete) spec.on_run_complete(i);
        if (spec.interrupt != nullptr) spec.interrupt->on_unit_complete();
      }
    }
    queue.halt();
  });

  if (writer) {
    writer->flush();
    res.ckpt.shards_flushed = writer->shards_flushed();
    res.ckpt.flush_ns = writer->flush_ns();
  }
  res.ckpt.interrupted = stop_requested();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

CampaignResult run_disturbance_campaign(const CampaignSpec& spec) {
  std::vector<std::string> names = spec.routines;
  if (names.empty())
    names.assign(std::begin(kDefaultRoutines), std::end(kDefaultRoutines));
  std::vector<std::unique_ptr<core::SelfTestRoutine>> owned;
  std::vector<const core::SelfTestRoutine*> ptrs;
  for (const auto& n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    if (e == nullptr)
      throw std::runtime_error("campaign: unknown routine '" + n +
                               "' (see stlint --list)");
    owned.push_back(e->make());
    ptrs.push_back(owned.back().get());
  }
  return run_disturbance_campaign(spec, ptrs);
}

std::string render_recovery_report(const CampaignResult& r) {
  std::string routines;
  for (std::size_t i = 0; i < r.routine_names.size(); ++i)
    routines += (i == 0 ? "" : ", ") + r.routine_names[i];

  std::string out = "stlrun disturbance campaign: " + std::to_string(r.runs) +
                    " runs, seed " + TextTable::fmt_hex(r.seed) + ", " +
                    std::to_string(r.cores) + " cores\nroutines: " + routines +
                    "\n\n";

  // Injection totals per disturbance kind.
  InjectionStats inj;
  for (const RunRecord& rec : r.records) {
    for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
      inj.applied[k] += rec.result.injections.applied[k];
      inj.skipped[k] += rec.result.injections.skipped[k];
    }
  }
  TextTable dist("disturbances injected (all runs)");
  dist.header({"kind", "applied", "skipped"});
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
    if (inj.applied[k] == 0 && inj.skipped[k] == 0) continue;
    dist.row({disturbance_name(static_cast<DisturbanceKind>(k)),
              TextTable::fmt_int(static_cast<long long>(inj.applied[k])),
              TextTable::fmt_int(static_cast<long long>(inj.skipped[k]))});
  }
  out += dist.str() + "\n";

  // Per-core recovery ladder outcomes, aggregated over runs.
  TextTable tab("per-core recovery report");
  tab.header({"core", "ran", "pass", "recovered", "degraded", "quarantined",
              "skipped", "retries", "quarantine runs"});
  u64 transient = 0, permanent = 0, budget = 0;
  for (unsigned c = 0; c < r.cores; ++c) {
    u64 ran = 0, clean = 0, recovered = 0, degraded = 0, quarantined = 0,
        skipped = 0, retries = 0, qruns = 0;
    for (const RunRecord& rec : r.records) {
      const CoreReport& cr = rec.result.cores[c];
      qruns += cr.quarantined ? 1 : 0;
      for (const RoutineRecord& rr : cr.records) {
        switch (rr.outcome) {
          case RecoveryOutcome::kPassClean: ++clean; ++ran; break;
          case RecoveryOutcome::kPassRecovered: ++recovered; ++ran; break;
          case RecoveryOutcome::kPassDegraded: ++degraded; ++ran; break;
          case RecoveryOutcome::kQuarantined: ++quarantined; ++ran; break;
          case RecoveryOutcome::kSkipped: ++skipped; break;
          case RecoveryOutcome::kBudgetExhausted: ++budget; break;
        }
        if (rr.cached_attempts > 1) retries += rr.cached_attempts - 1;
        if (rr.classification == Classification::kTransient) ++transient;
        if (rr.classification == Classification::kPermanent) ++permanent;
      }
    }
    tab.row({std::string(1, static_cast<char>('A' + c)),
             TextTable::fmt_int(static_cast<long long>(ran)),
             TextTable::fmt_int(static_cast<long long>(clean)),
             TextTable::fmt_int(static_cast<long long>(recovered)),
             TextTable::fmt_int(static_cast<long long>(degraded)),
             TextTable::fmt_int(static_cast<long long>(quarantined)),
             TextTable::fmt_int(static_cast<long long>(skipped)),
             TextTable::fmt_int(static_cast<long long>(retries)),
             TextTable::fmt_int(static_cast<long long>(qruns))});
  }
  out += tab.str() + "\n";

  out += "classification: " + std::to_string(transient) + " transient, " +
         std::to_string(permanent) + " permanent";
  if (budget != 0)
    out += ", " + std::to_string(budget) + " budget-exhausted routine slots";
  out += "\noutcome digest: " + TextTable::fmt_hex(r.digest()) + "\n";
  return out;
}

}  // namespace detstl::runtime
