#include "runtime/campaign.h"

#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>

#include "common/table.h"
#include "fault/work_queue.h"

namespace detstl::runtime {

namespace {

/// Run `body(worker_id)` on `threads` workers and join; one thread runs the
/// body on the calling thread (exactly the serial path, no spawn). Same
/// idiom as the fault campaign's pool.
void run_pool(unsigned threads, const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(body, w);
  for (auto& t : pool) t.join();
}

const char* kDefaultRoutines[] = {"alu", "rf-march", "shifter", "branch", "muldiv"};

}  // namespace

u64 derive_run_seed(u64 master, unsigned run) {
  u64 z = master + 0x9e3779b97f4a7c15ull * (run + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<u8> CampaignResult::outcome_vector() const {
  std::vector<u8> out;
  for (const RunRecord& r : records) {
    for (unsigned i = 0; i < 8; ++i) out.push_back(static_cast<u8>(r.seed >> (8 * i)));
    const std::vector<u8> v = r.result.outcome_vector();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

u64 CampaignResult::digest() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const u8 b : outcome_vector()) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

CampaignResult run_disturbance_campaign(
    const CampaignSpec& spec,
    const std::vector<const core::SelfTestRoutine*>& routines) {
  if (spec.cores < 1 || spec.cores > soc::kMaxCores)
    throw std::runtime_error("campaign: cores must be 1..3");
  if (routines.empty()) throw std::runtime_error("campaign: no routines");

  const auto t0 = std::chrono::steady_clock::now();
  const SchedulePlan plan = plan_schedule(routines, spec.cores);

  DisturbanceSpec dspec = spec.disturb;
  if (dspec.window_hi == 0) {
    // Derive the injection window from the calibrated schedule length: twice
    // the slowest core's fault-free cached time, so disturbances land across
    // the whole run including retries.
    u64 longest = 0;
    for (unsigned c = 0; c < spec.cores; ++c) {
      u64 sum = 0;
      for (const PlannedRoutine& r : plan.schedule[c]) sum += r.cached_calib;
      longest = std::max(longest, sum);
    }
    dspec.window_hi = dspec.window_lo + 2 * longest + 1'000;
  }

  CampaignResult res;
  res.runs = spec.runs;
  res.cores = spec.cores;
  res.seed = spec.seed;
  for (const auto* r : routines) res.routine_names.push_back(r->name());
  res.records.resize(spec.runs);

  const unsigned threads =
      spec.threads != 0 ? spec.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  res.threads_used = std::min<unsigned>(threads, std::max(1u, spec.runs));

  // Outcomes are written by run index; aggregates (report, digest) are
  // derived from the merged vector after the join — byte-identical results
  // at any thread count.
  fault::WorkQueue queue(spec.runs, 1);
  run_pool(res.threads_used, [&](unsigned) {
    while (const auto chunk = queue.next()) {
      for (u64 i = chunk->begin; i < chunk->end; ++i) {
        const u64 run_seed = derive_run_seed(spec.seed, static_cast<unsigned>(i));
        DisturbanceInjector injector(
            make_plan(dspec, run_seed, spec.cores));
        StlSupervisor sup(plan.soc, plan.schedule, spec.supervisor);
        res.records[i] = RunRecord{run_seed, sup.run(&injector)};
      }
    }
  });

  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

CampaignResult run_disturbance_campaign(const CampaignSpec& spec) {
  std::vector<std::string> names = spec.routines;
  if (names.empty())
    names.assign(std::begin(kDefaultRoutines), std::end(kDefaultRoutines));
  std::vector<std::unique_ptr<core::SelfTestRoutine>> owned;
  std::vector<const core::SelfTestRoutine*> ptrs;
  for (const auto& n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    if (e == nullptr)
      throw std::runtime_error("campaign: unknown routine '" + n +
                               "' (see stlint --list)");
    owned.push_back(e->make());
    ptrs.push_back(owned.back().get());
  }
  return run_disturbance_campaign(spec, ptrs);
}

std::string render_recovery_report(const CampaignResult& r) {
  std::string routines;
  for (std::size_t i = 0; i < r.routine_names.size(); ++i)
    routines += (i == 0 ? "" : ", ") + r.routine_names[i];

  std::string out = "stlrun disturbance campaign: " + std::to_string(r.runs) +
                    " runs, seed " + TextTable::fmt_hex(r.seed) + ", " +
                    std::to_string(r.cores) + " cores\nroutines: " + routines +
                    "\n\n";

  // Injection totals per disturbance kind.
  InjectionStats inj;
  for (const RunRecord& rec : r.records) {
    for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
      inj.applied[k] += rec.result.injections.applied[k];
      inj.skipped[k] += rec.result.injections.skipped[k];
    }
  }
  TextTable dist("disturbances injected (all runs)");
  dist.header({"kind", "applied", "skipped"});
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
    if (inj.applied[k] == 0 && inj.skipped[k] == 0) continue;
    dist.row({disturbance_name(static_cast<DisturbanceKind>(k)),
              TextTable::fmt_int(static_cast<long long>(inj.applied[k])),
              TextTable::fmt_int(static_cast<long long>(inj.skipped[k]))});
  }
  out += dist.str() + "\n";

  // Per-core recovery ladder outcomes, aggregated over runs.
  TextTable tab("per-core recovery report");
  tab.header({"core", "ran", "pass", "recovered", "degraded", "quarantined",
              "skipped", "retries", "quarantine runs"});
  u64 transient = 0, permanent = 0, budget = 0;
  for (unsigned c = 0; c < r.cores; ++c) {
    u64 ran = 0, clean = 0, recovered = 0, degraded = 0, quarantined = 0,
        skipped = 0, retries = 0, qruns = 0;
    for (const RunRecord& rec : r.records) {
      const CoreReport& cr = rec.result.cores[c];
      qruns += cr.quarantined ? 1 : 0;
      for (const RoutineRecord& rr : cr.records) {
        switch (rr.outcome) {
          case RecoveryOutcome::kPassClean: ++clean; ++ran; break;
          case RecoveryOutcome::kPassRecovered: ++recovered; ++ran; break;
          case RecoveryOutcome::kPassDegraded: ++degraded; ++ran; break;
          case RecoveryOutcome::kQuarantined: ++quarantined; ++ran; break;
          case RecoveryOutcome::kSkipped: ++skipped; break;
          case RecoveryOutcome::kBudgetExhausted: ++budget; break;
        }
        if (rr.cached_attempts > 1) retries += rr.cached_attempts - 1;
        if (rr.classification == Classification::kTransient) ++transient;
        if (rr.classification == Classification::kPermanent) ++permanent;
      }
    }
    tab.row({std::string(1, static_cast<char>('A' + c)),
             TextTable::fmt_int(static_cast<long long>(ran)),
             TextTable::fmt_int(static_cast<long long>(clean)),
             TextTable::fmt_int(static_cast<long long>(recovered)),
             TextTable::fmt_int(static_cast<long long>(degraded)),
             TextTable::fmt_int(static_cast<long long>(quarantined)),
             TextTable::fmt_int(static_cast<long long>(skipped)),
             TextTable::fmt_int(static_cast<long long>(retries)),
             TextTable::fmt_int(static_cast<long long>(qruns))});
  }
  out += tab.str() + "\n";

  out += "classification: " + std::to_string(transient) + " transient, " +
         std::to_string(permanent) + " permanent";
  if (budget != 0)
    out += ", " + std::to_string(budget) + " budget-exhausted routine slots";
  out += "\noutcome digest: " + TextTable::fmt_hex(r.digest()) + "\n";
  return out;
}

}  // namespace detstl::runtime
