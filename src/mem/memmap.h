#pragma once
// SoC physical memory map. TCMs are core-private and not visible on the shared
// bus; Flash and SRAM are shared bus targets.

#include "common/bitutil.h"

namespace detstl::mem {

inline constexpr u32 kItcmBase = 0x0000'0000;
inline constexpr u32 kItcmSize = 16 * 1024;
inline constexpr u32 kDtcmBase = 0x0800'0000;
inline constexpr u32 kDtcmSize = 16 * 1024;
inline constexpr u32 kFlashBase = 0x1000'0000;
inline constexpr u32 kFlashSize = 2 * 1024 * 1024;
inline constexpr u32 kSramBase = 0x2000'0000;
inline constexpr u32 kSramSize = 128 * 1024;

inline constexpr bool in_range(u32 addr, u32 base, u32 size) {
  return addr >= base && addr < base + size;
}

inline constexpr bool is_itcm(u32 addr) { return in_range(addr, kItcmBase, kItcmSize); }
inline constexpr bool is_dtcm(u32 addr) { return in_range(addr, kDtcmBase, kDtcmSize); }
inline constexpr bool is_flash(u32 addr) { return in_range(addr, kFlashBase, kFlashSize); }
inline constexpr bool is_sram(u32 addr) { return in_range(addr, kSramBase, kSramSize); }
/// Shared-bus (and therefore cacheable) address space.
inline constexpr bool is_bus(u32 addr) { return is_flash(addr) || is_sram(addr); }

}  // namespace detstl::mem
