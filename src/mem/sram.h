#pragma once
// Shared on-chip SRAM behind the system bus. Fixed 2-cycle first access,
// 1 cycle per additional beat of a burst.

#include <cassert>
#include <vector>

#include "common/bitutil.h"
#include "mem/memmap.h"

namespace detstl::mem {

inline constexpr u32 kSramFirstCycles = 2;
inline constexpr u32 kSramBeatCycles = 1;

class Sram {
 public:
  Sram() : bytes_(kSramSize, 0) {}

  u8 read8(u32 addr) const {
    assert(is_sram(addr));
    return bytes_[addr - kSramBase];
  }
  void write8(u32 addr, u8 v) {
    assert(is_sram(addr));
    bytes_[addr - kSramBase] = v;
  }

  u32 read32(u32 addr) const {
    u32 v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= static_cast<u32>(read8(addr + i)) << (8 * i);
    return v;
  }
  void write32(u32 addr, u32 v) {
    for (unsigned i = 0; i < 4; ++i) write8(addr + i, static_cast<u8>(v >> (8 * i)));
  }

  static u32 access_cycles(u32 bytes) {
    const u32 beats = (bytes + 3) / 4;
    return kSramFirstCycles + (beats - 1) * kSramBeatCycles;
  }

 private:
  std::vector<u8> bytes_;
};

}  // namespace detstl::mem
