#pragma once
// Per-core memory system: routes the CPU's instruction and data ports to the
// private TCMs (same-cycle), the private L1 caches (same-cycle on hit, bus
// refill on miss) or directly to the shared bus (caches disabled / uncached
// accesses). Implements the miss sequencing: victim writeback, line refill,
// no-write-allocate store-around, and cache-flushing atomics.

#include <optional>

#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/tcm.h"

namespace detstl::mem {

struct MemSystemConfig {
  CacheConfig icache{.size_bytes = 8192, .ways = 2, .line_bytes = 32};
  CacheConfig dcache{.size_bytes = 4096, .ways = 2, .line_bytes = 32};
  u32 itcm_size = kItcmSize;
  u32 dtcm_size = kDtcmSize;
};

class MemSystem {
 public:
  MemSystem(unsigned core_id, const MemSystemConfig& cfg = {});

  unsigned core_id() const { return core_id_; }
  unsigned iport_id(unsigned slot = 0) const { return core_id_ * 3 + (slot == 0 ? 0 : 2); }
  unsigned dport_id() const { return core_id_ * 3 + 1; }

  // --- CSR-visible cache control ---------------------------------------------
  void cache_op(u32 op_bits);       // kCacheOpInvI / kCacheOpInvD
  void set_cache_cfg(u32 cfg_bits); // kCacheCfgIEn / kCacheCfgDEn / kCacheCfgWriteAllocate
  u32 cache_cfg() const { return cache_cfg_; }
  bool icache_enabled() const { return cache_cfg_ & 0x1; }
  bool dcache_enabled() const { return cache_cfg_ & 0x2; }
  bool write_allocate() const { return cache_cfg_ & 0x4; }

  const Cache& icache() const { return icache_; }
  const Cache& dcache() const { return dcache_; }
  /// Mutable cache access for the disturbance-injection hooks (cache.h);
  /// simulation code goes through cache_op / the port state machines.
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }
  Tcm& itcm() { return itcm_; }
  Tcm& dtcm() { return dtcm_; }
  const Tcm& itcm() const { return itcm_; }
  const Tcm& dtcm() const { return dtcm_; }

  // --- address-space predicates (the CPU gates accesses; faulty runs can
  // compute wild addresses, which raise access-error events instead) ----------
  bool data_readable(u32 addr) const {
    return itcm_.contains(addr) || dtcm_.contains(addr) || is_bus(addr);
  }
  bool data_writable(u32 addr) const {
    return itcm_.contains(addr) || dtcm_.contains(addr) || is_sram(addr);
  }
  bool amo_ok(u32 addr) const { return is_sram(addr); }
  bool fetchable(u32 addr) const { return itcm_.contains(addr) || is_bus(addr); }

  // --- instruction port: 8-byte aligned packet fetch ---------------------------
  // Up to two fetches may be in flight (pipelined flash/bus access); requests
  // complete in order. TCM and cache hits complete in the same cycle.
  /// True when a new fetch may be started this cycle.
  bool ifetch_can_request() const;
  void ifetch_request(u32 addr, SharedBus& bus);
  /// True when the oldest fetch has completed.
  bool ifetch_done() const { return islot_[ihead_].state == IState::kDone; }
  u32 ifetch_addr() const { return islot_[ihead_].addr; }
  u64 ifetch_data() const { return islot_[ihead_].data; }
  /// Consume the oldest completed fetch.
  void ifetch_ack();
  /// Redirect: drop all fetches. In-flight bus transactions complete and are
  /// discarded; the port refuses new requests until drained.
  void ifetch_cancel();
  /// Fetches currently in flight or completed-unconsumed (diagnostics).
  unsigned ifetch_inflight() const { return iactive_count(); }

  // --- data port -----------------------------------------------------------------
  struct DataOp {
    u32 addr = 0;
    u8 size = 4;
    bool write = false;
    bool amo_add = false;
    u32 wdata = 0;
  };
  void data_request(const DataOp& op, SharedBus& bus);
  bool data_busy() const { return dstate_ != DState::kIdle; }
  bool data_done() const { return dstate_ == DState::kDone; }
  u32 data_rdata() const { return drdata_; }
  void data_ack() { dstate_ = DState::kIdle; }

  /// Advance the port state machines; call once per cycle after the bus tick.
  void tick(SharedBus& bus);

  /// Abort both port state machines, dropping any in-flight request. The
  /// caller must also cancel this core's bus slots
  /// (SharedBus::cancel_requester) — soc::Soc::restart_core does both.
  void abort_ports();

  /// Per-core hardware reset view: abort the ports, disable the caches and
  /// discard their content (reset-invalidated arrays). TCM contents survive,
  /// as on the real device. Used by Soc::restart_core / park_core; plain
  /// Cpu::reset deliberately leaves the memory system alone.
  void hard_reset();

  /// Trace sink (non-owning, checkpoint contract of trace/event.h). The CPU
  /// installs it via Cpu::set_trace_sink; null = tracing off.
  void set_trace_sink(trace::EventSink* sink) { sink_ = sink; }
  trace::EventSink* trace_sink() const { return sink_; }

  /// Debug (zero-time) memory access used by loaders and test harnesses.
  /// Routes to TCM or SRAM/flash image without timing or cache effects.
  /// Note: with the D$ enabled, dirty lines may hold newer data than SRAM;
  /// debug_read checks the caches first.
  u32 debug_read(u32 addr, unsigned size, const Sram& sram, const Flash& flash) const;

 private:
  enum class IState : u8 { kIdle, kBusDirect, kRefill, kDone };
  enum class DState : u8 {
    kIdle, kBusDirect, kWriteback, kRefill, kAmoFlush, kAmoBus, kDone
  };

  void dcache_apply();
  void start_drefill(SharedBus& bus);
  bool ibus_inflight() const;
  bool idraining() const;
  unsigned iactive_count() const;
  void emit_cache(trace::EventKind kind, unsigned unit, u32 addr, u32 a, u32 b,
                  bool request_path) const;

  unsigned core_id_;
  Cache icache_;
  Cache dcache_;
  Tcm itcm_;
  Tcm dtcm_;
  u32 cache_cfg_ = 0;  // everything off at reset

  // I-port state: a two-slot in-order queue; slot index selects the bus
  // requester id (iport_id(slot)).
  struct IFetchSlot {
    IState state = IState::kIdle;
    u32 addr = 0;
    u64 data = 0;
    bool discard = false;
  };
  std::array<IFetchSlot, 2> islot_{};
  unsigned ihead_ = 0;  // oldest active/completed slot

  // D-port state
  DState dstate_ = DState::kIdle;
  DataOp dop_;
  u32 drdata_ = 0;

  // Tracing: own cycle counter (ticks 1:1 with SoC ticks) + non-owning sink.
  u64 now_ = 0;
  trace::EventSink* sink_ = nullptr;
};

}  // namespace detstl::mem
