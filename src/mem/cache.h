#pragma once
// Core-private L1 cache: set-associative, LRU, write-back, configurable
// write-allocate / no-write-allocate (the paper's method prescribes a dummy
// load after each store when the cache is no-write-allocate, Sec. III
// step 1). Invalidate-all discards content including dirty lines — this is
// the initialisation step of the wrapper (Fig. 2b block b).
//
// The cache is a passive tag/data structure; the per-core MemSystem drives
// the miss/refill/writeback sequencing.

#include <cassert>
#include <vector>

#include "common/bitutil.h"

namespace detstl::mem {

struct CacheConfig {
  u32 size_bytes = 4096;
  u32 ways = 2;
  u32 line_bytes = 32;

  u32 num_sets() const { return size_bytes / (ways * line_bytes); }
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 refills = 0;  // lines installed via fill()
  u64 writebacks = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  const CacheConfig& config() const { return cfg_; }
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  /// Probe for `addr`; on hit updates LRU and returns true. Counts stats.
  bool lookup(u32 addr);

  /// Probe without side effects (tests/diagnostics).
  bool probe(u32 addr) const;

  /// True if `addr`'s line is resident and dirty.
  bool line_dirty(u32 addr) const;

  /// Copy a resident line's words into `beats` (line_bytes/4 entries).
  void read_line(u32 addr, std::vector<u32>& beats) const;

  /// Read `size` bytes (within one line) from a resident line.
  u32 read(u32 addr, unsigned size) const;

  /// Write `size` bytes (within one line) into a resident line, marking dirty.
  void write(u32 addr, u32 value, unsigned size);

  /// Choose the victim way for `addr`'s set (LRU). Returns way index.
  u32 victim_way(u32 addr) const;

  /// True if the victim for `addr` would need a writeback; fills `wb_addr`
  /// and the line data beats if so.
  bool victim_dirty(u32 addr, u32& wb_addr, std::vector<u32>& beats) const;

  /// Install the line containing `addr` with `beats` (line_bytes/4 words),
  /// evicting the LRU victim.
  void fill(u32 addr, const std::vector<u32>& beats);

  void invalidate_all();

  /// Number of valid lines (diagnostics).
  u32 valid_lines() const;

  /// Set index `addr` maps to (diagnostics / tracing).
  u32 set_of(u32 addr) const { return set_index(addr); }

  /// Resident way of `addr`'s line, or -1 (diagnostics / tracing; no LRU
  /// side effects).
  int way_of(u32 addr) const;

  // --- disturbance-injection points (runtime::DisturbanceInjector) -------------
  // These model external perturbations — snoop-style invalidations and
  // particle-strike soft errors — so none of them touch the LRU state or the
  // dirty flag: the cache cannot tell a corrupted line from a clean one,
  // which is exactly why the wrapper's signature check exists.

  /// Drop `addr`'s line if resident. Returns true when a line was discarded
  /// (dirty content is lost, like invalidate_all).
  bool invalidate_line(u32 addr);

  /// Toggle one bit of `addr`'s resident line (single-event upset).
  /// `bit` counts from the line base, modulo line_bytes*8. Returns false when
  /// the line is not resident.
  bool flip_bit(u32 addr, u32 bit);

  /// Force one bit of `addr`'s resident line to `value` (stuck-at defect in
  /// the data array). Returns false when the line is not resident.
  bool force_bit(u32 addr, u32 bit, bool value);

  /// Base addresses of every valid line, set-major then way order — a
  /// deterministic enumeration for seeded disturbance targeting.
  std::vector<u32> resident_lines() const;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u32 tag = 0;
    u32 lru = 0;  // higher = more recently used
    std::vector<u8> data;
  };

  u32 set_index(u32 addr) const { return (addr / cfg_.line_bytes) % cfg_.num_sets(); }
  u32 tag_of(u32 addr) const { return addr / cfg_.line_bytes / cfg_.num_sets(); }
  const Line* find(u32 addr) const;
  Line* find(u32 addr);
  void touch(Line& line);

  CacheConfig cfg_;
  std::vector<Line> lines_;  // [set * ways + way]
  CacheStats stats_;
  u32 lru_clock_ = 0;
};

}  // namespace detstl::mem
