#pragma once
// Embedded Flash with one 32-byte line buffer per bus master, as in
// automotive flash controllers with per-master prefetch buffers. A beat that
// hits the master's buffered line costs 1 cycle; any other beat costs the
// full array access (8 cycles) and replaces that buffer. Sequential
// single-master streams are fast (refill only at line boundaries); with
// several cores active the *bus* serialises the accesses — 8-cycle refills
// block the queue, so each core's fetch stream picks up phase-dependent
// queuing jitter. That jitter, not buffer thrash, is the source of the
// unpredictable fetch stalls of Sec. II (and of the fault-coverage
// oscillation of Table II: instruction adjacency varies with it).

#include <array>
#include <cassert>
#include <memory>
#include <vector>

#include "common/bitutil.h"
#include "mem/memmap.h"

namespace detstl::mem {

inline constexpr u32 kFlashLineBytes = 32;
inline constexpr u32 kFlashMissCycles = 8;
// A buffered beat still takes two array-interface cycles: an undisturbed
// single-core fetch stream sustains one packet every ~2-3 cycles — enough to
// keep the MEM-level forwarding paths alive but NOT the EX->EX paths, which
// need back-to-back issue (cache-resident execution, or a lucky multi-core
// burst when queued fetches drain together after a bus-blocking period).
inline constexpr u32 kFlashHitCycles = 2;

class Flash {
 public:
  Flash() : rom_(std::make_shared<std::vector<u8>>(kFlashSize, 0)) {}

  /// Program the ROM image (before simulation; not reachable from the cores).
  void write_image(u32 addr, const std::vector<u8>& bytes) {
    assert(is_flash(addr) && is_flash(addr + static_cast<u32>(bytes.size()) - 1));
    // Copy-on-write so that checkpointed SoC copies sharing the old image
    // stay valid.
    auto fresh = std::make_shared<std::vector<u8>>(*rom_);
    std::copy(bytes.begin(), bytes.end(), fresh->begin() + (addr - kFlashBase));
    rom_ = std::move(fresh);
  }

  u8 read8(u32 addr) const {
    assert(is_flash(addr));
    return (*rom_)[addr - kFlashBase];
  }

  u32 read32(u32 addr) const {
    u32 v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= static_cast<u32>(read8(addr + i)) << (8 * i);
    return v;
  }

  static constexpr unsigned kNumBuffers = 9;  // one per bus requester id

  /// Cycle cost of an aligned burst of `bytes` starting at `addr`, updating
  /// the requesting master's line-buffer state. Called by the bus at grant
  /// time with the requester id.
  u32 access_cycles(u32 addr, u32 bytes, unsigned master) {
    assert(master < kNumBuffers);
    u32& buffered = buf_line_[master];
    u32 cycles = 0;
    // Burst in 8-byte beats; a beat outside the buffered line reloads the buffer.
    for (u32 a = align_down(addr, 8); a < addr + bytes; a += 8) {
      const u32 line = align_down(a, kFlashLineBytes);
      if (line == buffered) {
        cycles += kFlashHitCycles;
      } else {
        cycles += kFlashMissCycles;
        buffered = line;
      }
    }
    return cycles;
  }

  /// Diagnostic view of a master's line buffer (tests).
  u32 buffered_line(unsigned master = 0) const { return buf_line_[master]; }
  void invalidate_buffer() { buf_line_.fill(kInvalidLine); }

 private:
  static constexpr u32 kInvalidLine = 0xffffffffu;
  std::shared_ptr<std::vector<u8>> rom_;  // shared across SoC checkpoints
  std::array<u32, kNumBuffers> buf_line_ = {
      kInvalidLine, kInvalidLine, kInvalidLine, kInvalidLine, kInvalidLine,
      kInvalidLine, kInvalidLine, kInvalidLine, kInvalidLine};
};

}  // namespace detstl::mem
