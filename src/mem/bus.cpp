#include "mem/bus.h"

#include <cassert>

namespace detstl::mem {

void SharedBus::submit(unsigned id, const BusReq& req) {
  assert(id < kMaxBusRequesters);
  assert(slots_[id].state == SlotState::kIdle && "one outstanding request per port");
  assert(req.bytes >= 1 && req.bytes <= kBusMaxBurstBytes);
  assert(is_bus(req.addr));
  slots_[id].state = SlotState::kWaiting;
  slots_[id].req = req;
  // Requests arrive while the current cycle is being evaluated (the cores
  // run before the bus tick), so they are stamped with the cycle the bus
  // will arbitrate next: a same-cycle grant has wait == 0.
  slots_[id].submit_cycle = now_ + 1;
  ++stats_[id].submits;
  DETSTL_TRACE(sink_, trace::Event{.cycle = now_ + 1,
                                   .kind = trace::EventKind::kBusSubmit,
                                   .core = static_cast<u8>(id / 3),
                                   .unit = static_cast<u8>(id),
                                   .flags = static_cast<u8>((req.write ? 1 : 0) |
                                                            (req.amo_add ? 2 : 0)),
                                   .addr = req.addr,
                                   .a = req.bytes});
}

void SharedBus::perform(Slot& slot, Flash& flash, Sram& sram) {
  const BusReq& req = slot.req;
  const u32 base = req.addr;
  const auto beat = [&]([[maybe_unused]] u32 i, [[maybe_unused]] u32 data) {
    DETSTL_TRACE(sink_, trace::Event{.cycle = now_,
                                     .kind = trace::EventKind::kBusBeat,
                                     .core = static_cast<u8>(grant_id_ / 3),
                                     .unit = static_cast<u8>(grant_id_),
                                     .addr = base + 4 * i,
                                     .a = i,
                                     .b = data});
  };
  if (is_flash(base)) {
    assert(!req.write && !req.amo_add && "flash is read-only at run time");
    for (u32 i = 0; i < (req.bytes + 3) / 4; ++i) {
      slot.rdata[i] = flash.read32(base + 4 * i);
      beat(i, slot.rdata[i]);
    }
    return;
  }
  assert(is_sram(base));
  if (req.amo_add) {
    const u32 old = sram.read32(base);
    sram.write32(base, old + req.wdata[0]);
    slot.rdata[0] = old;
    beat(0, old);
    return;
  }
  if (req.write) {
    // Sub-word writes carry the byte count; bytes are taken from wdata LSBs.
    if (req.bytes < 4) {
      for (u32 i = 0; i < req.bytes; ++i)
        sram.write8(base + i, static_cast<u8>(req.wdata[0] >> (8 * i)));
      beat(0, req.wdata[0]);
    } else {
      for (u32 i = 0; i < req.bytes / 4; ++i) {
        sram.write32(base + 4 * i, req.wdata[i]);
        beat(i, req.wdata[i]);
      }
    }
    return;
  }
  for (u32 i = 0; i < (req.bytes + 3) / 4; ++i) {
    slot.rdata[i] = sram.read32(base + 4 * i);
    beat(i, slot.rdata[i]);
  }
}

void SharedBus::cancel_requester(unsigned id) {
  assert(id < kMaxBusRequesters);
  if (grant_valid_ && grant_id_ == id) {
    grant_valid_ = false;
    cycles_left_ = 0;
  }
  slots_[id].state = SlotState::kIdle;
}

void SharedBus::tick(Flash& flash, Sram& sram) {
  ++now_;
  if (stall_cycles_ > 0) {
    --stall_cycles_;
    ++stall_ticks_;
    return;  // interconnect frozen: no device progress, no arbitration
  }
  if (grant_valid_) {
    if (cycles_left_ > 0) --cycles_left_;
    if (cycles_left_ == 0) {
      Slot& slot = slots_[grant_id_];
      perform(slot, flash, sram);
      slot.state = SlotState::kComplete;
      grant_valid_ = false;
    } else {
      return;  // bus occupied, nothing else happens this cycle
    }
  }

  // Round-robin grant among waiting requesters.
  for (unsigned i = 0; i < kMaxBusRequesters; ++i) {
    const unsigned id = (rr_next_ + i) % kMaxBusRequesters;
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kWaiting) continue;
    grant_valid_ = true;
    grant_id_ = id;
    rr_next_ = (id + 1) % kMaxBusRequesters;
    slot.state = SlotState::kInService;
    ++transactions_;
    // Flash prefetch buffers are per core-side stream: both instruction-port
    // slots of a core (ids core*3 and core*3+2) share the instruction
    // buffer; the data port (core*3+1) has its own.
    const unsigned flash_buf = (id / 3) * 2 + (id % 3 == 1 ? 1 : 0);
    const u32 device_cycles =
        is_flash(slot.req.addr)
            ? flash.access_cycles(slot.req.addr, slot.req.bytes, flash_buf)
            : Sram::access_cycles(slot.req.bytes) +
                  (slot.req.amo_add ? kSramFirstCycles : 0);
    // The grant tick itself is the arbitration/address phase; the device
    // access occupies the following `device_cycles` ticks.
    cycles_left_ = device_cycles;
    const u64 wait = now_ - slot.submit_cycle;
    ++stats_[id].grants;
    stats_[id].wait_cycles += wait;
    if (wait > stats_[id].max_wait_cycles) stats_[id].max_wait_cycles = wait;
    stats_[id].occupancy_cycles += 1 + device_cycles;
    DETSTL_TRACE(sink_, trace::Event{.cycle = now_,
                                     .kind = trace::EventKind::kBusGrant,
                                     .core = static_cast<u8>(id / 3),
                                     .unit = static_cast<u8>(id),
                                     .addr = slot.req.addr,
                                     .a = static_cast<u32>(wait),
                                     .b = 1 + device_cycles});
    break;
  }
}

}  // namespace detstl::mem
