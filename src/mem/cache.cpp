#include "mem/cache.h"

namespace detstl::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  assert(is_pow2(cfg.size_bytes) && is_pow2(cfg.ways) && is_pow2(cfg.line_bytes));
  assert(cfg.num_sets() >= 1);
  lines_.resize(cfg.num_sets() * cfg.ways);
  for (auto& l : lines_) l.data.resize(cfg.line_bytes, 0);
}

const Cache::Line* Cache::find(u32 addr) const {
  const u32 set = set_index(addr);
  const u32 tag = tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.tag == tag) return &l;
  }
  return nullptr;
}

Cache::Line* Cache::find(u32 addr) {
  return const_cast<Line*>(static_cast<const Cache*>(this)->find(addr));
}

void Cache::touch(Line& line) { line.lru = ++lru_clock_; }

bool Cache::lookup(u32 addr) {
  Line* l = find(addr);
  if (l != nullptr) {
    touch(*l);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::probe(u32 addr) const { return find(addr) != nullptr; }

bool Cache::line_dirty(u32 addr) const {
  const Line* l = find(addr);
  return l != nullptr && l->dirty;
}

void Cache::read_line(u32 addr, std::vector<u32>& beats) const {
  const Line* l = find(addr);
  assert(l != nullptr);
  beats.assign(cfg_.line_bytes / 4, 0);
  for (u32 i = 0; i < cfg_.line_bytes; ++i)
    beats[i / 4] |= static_cast<u32>(l->data[i]) << (8 * (i % 4));
}

u32 Cache::read(u32 addr, unsigned size) const {
  const Line* l = find(addr);
  assert(l != nullptr && "read from non-resident line");
  const u32 off = addr % cfg_.line_bytes;
  assert(off + size <= cfg_.line_bytes);
  u32 v = 0;
  for (unsigned i = 0; i < size; ++i) v |= static_cast<u32>(l->data[off + i]) << (8 * i);
  return v;
}

void Cache::write(u32 addr, u32 value, unsigned size) {
  Line* l = find(addr);
  assert(l != nullptr && "write to non-resident line");
  const u32 off = addr % cfg_.line_bytes;
  assert(off + size <= cfg_.line_bytes);
  for (unsigned i = 0; i < size; ++i) l->data[off + i] = static_cast<u8>(value >> (8 * i));
  l->dirty = true;
  touch(*l);
}

u32 Cache::victim_way(u32 addr) const {
  const u32 set = set_index(addr);
  u32 best = 0;
  u32 best_lru = ~0u;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[set * cfg_.ways + w];
    if (!l.valid) return w;  // free way first
    if (l.lru < best_lru) {
      best_lru = l.lru;
      best = w;
    }
  }
  return best;
}

bool Cache::victim_dirty(u32 addr, u32& wb_addr, std::vector<u32>& beats) const {
  const u32 set = set_index(addr);
  const Line& victim = lines_[set * cfg_.ways + victim_way(addr)];
  if (!victim.valid || !victim.dirty) return false;
  wb_addr = (victim.tag * cfg_.num_sets() + set) * cfg_.line_bytes;
  beats.assign(cfg_.line_bytes / 4, 0);
  for (u32 i = 0; i < cfg_.line_bytes; ++i)
    beats[i / 4] |= static_cast<u32>(victim.data[i]) << (8 * (i % 4));
  return true;
}

void Cache::fill(u32 addr, const std::vector<u32>& beats) {
  assert(beats.size() == cfg_.line_bytes / 4);
  const u32 set = set_index(addr);
  Line& l = lines_[set * cfg_.ways + victim_way(addr)];
  if (l.valid && l.dirty) ++stats_.writebacks;
  ++stats_.refills;
  l.valid = true;
  l.dirty = false;
  l.tag = tag_of(addr);
  for (u32 i = 0; i < cfg_.line_bytes; ++i)
    l.data[i] = static_cast<u8>(beats[i / 4] >> (8 * (i % 4)));
  touch(l);
}

void Cache::invalidate_all() {
  for (auto& l : lines_) {
    l.valid = false;
    l.dirty = false;
    l.lru = 0;
  }
  lru_clock_ = 0;
}

u32 Cache::valid_lines() const {
  u32 n = 0;
  for (const auto& l : lines_)
    if (l.valid) ++n;
  return n;
}

bool Cache::invalidate_line(u32 addr) {
  Line* l = find(addr);
  if (l == nullptr) return false;
  l->valid = false;
  l->dirty = false;
  l->lru = 0;
  return true;
}

bool Cache::flip_bit(u32 addr, u32 bit) {
  Line* l = find(addr);
  if (l == nullptr) return false;
  bit %= cfg_.line_bytes * 8;
  l->data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
  return true;
}

bool Cache::force_bit(u32 addr, u32 bit, bool value) {
  Line* l = find(addr);
  if (l == nullptr) return false;
  bit %= cfg_.line_bytes * 8;
  const u8 mask = static_cast<u8>(1u << (bit % 8));
  if (value)
    l->data[bit / 8] |= mask;
  else
    l->data[bit / 8] &= static_cast<u8>(~mask);
  return true;
}

std::vector<u32> Cache::resident_lines() const {
  std::vector<u32> out;
  out.reserve(lines_.size());
  for (u32 set = 0; set < cfg_.num_sets(); ++set) {
    for (u32 w = 0; w < cfg_.ways; ++w) {
      const Line& l = lines_[set * cfg_.ways + w];
      if (l.valid) out.push_back((l.tag * cfg_.num_sets() + set) * cfg_.line_bytes);
    }
  }
  return out;
}

int Cache::way_of(u32 addr) const {
  const u32 set = set_index(addr);
  const u32 tag = tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.tag == tag) return static_cast<int>(w);
  }
  return -1;
}

}  // namespace detstl::mem
