#include "mem/memsys.h"

#include <cassert>

#include "common/bitutil.h"
#include "isa/isa.h"
#include "common/log.h"
#include <ios>

namespace detstl::mem {

MemSystem::MemSystem(unsigned core_id, const MemSystemConfig& cfg)
    : core_id_(core_id),
      icache_(cfg.icache),
      dcache_(cfg.dcache),
      itcm_(kItcmBase, cfg.itcm_size),
      dtcm_(kDtcmBase, cfg.dtcm_size) {}

// Request-path emissions are stamped now_ + 1 (the cycle being evaluated:
// the CPU issues requests before this MemSystem's tick increments now_),
// completion-path emissions with now_; both equal the SoC tick index.
void MemSystem::emit_cache([[maybe_unused]] trace::EventKind kind,
                           [[maybe_unused]] unsigned unit,
                           [[maybe_unused]] u32 addr, [[maybe_unused]] u32 a,
                           [[maybe_unused]] u32 b,
                           [[maybe_unused]] bool request_path) const {
  DETSTL_TRACE(sink_, trace::Event{.cycle = request_path ? now_ + 1 : now_,
                                   .kind = kind,
                                   .core = static_cast<u8>(core_id_),
                                   .unit = static_cast<u8>(unit),
                                   .addr = addr,
                                   .a = a,
                                   .b = b});
}

// emit_cache sits on the hit paths, which run once per fetch packet / data
// access; its arguments (set/way lookups) must not be evaluated when tracing
// is off, so every call goes through this guard — same laziness contract as
// DETSTL_TRACE itself.
#ifdef DETSTL_TRACE_DISABLED
#define EMIT_CACHE(...) \
  do {                  \
  } while (0)
#else
#define EMIT_CACHE(...)                        \
  do {                                         \
    if (sink_ != nullptr) emit_cache(__VA_ARGS__); \
  } while (0)
#endif

void MemSystem::cache_op(u32 op_bits) {
  if (op_bits & isa::kCacheOpInvI) {
    EMIT_CACHE(trace::EventKind::kCacheInvalidate, 0, 0, icache_.valid_lines(),
               0, true);
    icache_.invalidate_all();
  }
  if (op_bits & isa::kCacheOpInvD) {
    EMIT_CACHE(trace::EventKind::kCacheInvalidate, 1, 0, dcache_.valid_lines(),
               0, true);
    dcache_.invalidate_all();
  }
}

void MemSystem::set_cache_cfg(u32 cfg_bits) { cache_cfg_ = cfg_bits & 0x7; }

// ----------------------------------------------------------------------------
// Instruction port
// ----------------------------------------------------------------------------

unsigned MemSystem::iactive_count() const {
  unsigned n = 0;
  for (const auto& s : islot_)
    if (s.state != IState::kIdle) ++n;
  return n;
}

bool MemSystem::ibus_inflight() const {
  for (const auto& s : islot_)
    if (s.state == IState::kBusDirect || s.state == IState::kRefill) return true;
  return false;
}

bool MemSystem::idraining() const {
  for (const auto& s : islot_)
    if (s.discard) return true;
  return false;
}

bool MemSystem::ifetch_can_request() const {
  if (idraining()) return false;
  if (iactive_count() >= 2) return false;
  // With the I-cache enabled, at most one refill may be outstanding (a hit
  // completes in the same cycle, so the second slot is never needed).
  if (icache_enabled() && ibus_inflight()) return false;
  return true;
}

void MemSystem::ifetch_request(u32 addr, SharedBus& bus) {
  assert(ifetch_can_request());
  assert(addr % 8 == 0);
  const unsigned idx = (ihead_ + iactive_count()) % 2;
  IFetchSlot& slot = islot_[idx];
  assert(slot.state == IState::kIdle);
  slot.addr = addr;
  slot.discard = false;

  if (itcm_.contains(addr)) {
    slot.data = itcm_.read64(addr);
    slot.state = IState::kDone;
    return;
  }
  assert(is_bus(addr) && "ifetch outside ITCM/flash/SRAM");

  if (icache_enabled()) {
    if (icache_.lookup(addr)) {
      EMIT_CACHE(trace::EventKind::kCacheHit, 0, addr, icache_.set_of(addr),
                 static_cast<u32>(icache_.way_of(addr)), true);
      slot.data = static_cast<u64>(icache_.read(addr, 4)) |
                  (static_cast<u64>(icache_.read(addr + 4, 4)) << 32);
      slot.state = IState::kDone;
      return;
    }
    EMIT_CACHE(trace::EventKind::kCacheMiss, 0, addr, icache_.set_of(addr), 0,
               true);
    // Line refill. The I-cache is read-only: victims are never dirty.
    bus.submit(iport_id(idx), BusReq{.addr = align_down(addr, icache_.config().line_bytes),
                                     .bytes = icache_.config().line_bytes});
    slot.state = IState::kRefill;
    return;
  }

  bus.submit(iport_id(idx), BusReq{.addr = addr, .bytes = 8});
  slot.state = IState::kBusDirect;
}

void MemSystem::ifetch_ack() {
  assert(islot_[ihead_].state == IState::kDone);
  islot_[ihead_].state = IState::kIdle;
  ihead_ = (ihead_ + 1) % 2;
  if (iactive_count() == 0) ihead_ = 0;
}

void MemSystem::ifetch_cancel() {
  for (auto& s : islot_) {
    if (s.state == IState::kDone) {
      s.state = IState::kIdle;
    } else if (s.state != IState::kIdle) {
      s.discard = true;
    }
  }
  if (iactive_count() == 0) ihead_ = 0;
}

void MemSystem::abort_ports() {
  for (auto& s : islot_) {
    s.state = IState::kIdle;
    s.discard = false;
  }
  ihead_ = 0;
  dstate_ = DState::kIdle;
}

void MemSystem::hard_reset() {
  abort_ports();
  cache_cfg_ = 0;
  icache_.invalidate_all();
  dcache_.invalidate_all();
}

// ----------------------------------------------------------------------------
// Data port
// ----------------------------------------------------------------------------

void MemSystem::data_request(const DataOp& op, SharedBus& bus) {
  assert(dstate_ == DState::kIdle);
  assert(op.addr % op.size == 0 && "misalignment is resolved in the CPU");
  dop_ = op;

  // TCMs: same-cycle, both instruction and data TCM reachable from the D port
  // (the TCM-based strategy copies code into the ITCM through here).
  Tcm* tcm = itcm_.contains(op.addr) ? &itcm_ : dtcm_.contains(op.addr) ? &dtcm_ : nullptr;
  if (tcm != nullptr) {
    assert(!op.amo_add && "atomics are only supported on shared SRAM");
    if (op.write) {
      tcm->write(op.addr, op.wdata, op.size);
    } else {
      drdata_ = tcm->read(op.addr, op.size);
    }
    dstate_ = DState::kDone;
    return;
  }
  if (!is_bus(op.addr)) {
    DETSTL_ERROR << "core " << core_id_ << ": data access to unmapped address 0x"
                 << std::hex << op.addr;
    assert(false && "data access to unmapped address");
  }

  if (op.amo_add) {
    assert(is_sram(op.addr) && op.size == 4);
    // Atomicity lives on the bus. A dirty cached copy must be written back
    // first so the bus-side read-modify-write sees current data; a clean
    // resident copy is updated in place after the AMO completes.
    if (dcache_enabled() && dcache_.line_dirty(op.addr)) {
      const u32 line = align_down(op.addr, dcache_.config().line_bytes);
      std::vector<u32> beats;
      dcache_.read_line(op.addr, beats);
      EMIT_CACHE(trace::EventKind::kCacheWriteback, 1, line,
                 dcache_.set_of(line),
                 static_cast<u32>(dcache_.way_of(line)), true);
      bus.submit(dport_id(), BusReq{.addr = line,
                                    .bytes = dcache_.config().line_bytes,
                                    .write = true,
                                    .wdata = {beats[0], beats[1], beats[2], beats[3],
                                              beats[4], beats[5], beats[6], beats[7]}});
      dstate_ = DState::kAmoFlush;
      return;
    }
    bus.submit(dport_id(), BusReq{.addr = op.addr, .bytes = 4, .amo_add = true,
                                  .wdata = {op.wdata}});
    dstate_ = DState::kAmoBus;
    return;
  }

  const bool cacheable = dcache_enabled();
  if (!cacheable) {
    BusReq req{.addr = op.addr, .bytes = op.size, .write = op.write,
               .wdata = {op.wdata}};
    bus.submit(dport_id(), req);
    dstate_ = DState::kBusDirect;
    return;
  }

  if (dcache_.lookup(op.addr)) {
    EMIT_CACHE(trace::EventKind::kCacheHit, 1, op.addr, dcache_.set_of(op.addr),
               static_cast<u32>(dcache_.way_of(op.addr)), true);
    dcache_apply();
    dstate_ = DState::kDone;
    return;
  }
  EMIT_CACHE(trace::EventKind::kCacheMiss, 1, op.addr, dcache_.set_of(op.addr),
             op.write ? 1u : 0u, true);

  // Miss. Store miss with no-write-allocate: write around the cache.
  if (op.write && !write_allocate()) {
    assert(is_sram(op.addr) && "stores must target SRAM");
    bus.submit(dport_id(), BusReq{.addr = op.addr, .bytes = op.size, .write = true,
                                  .wdata = {op.wdata}});
    dstate_ = DState::kBusDirect;
    return;
  }

  // Allocate: writeback the victim if dirty, then refill.
  u32 wb_addr = 0;
  std::vector<u32> beats;
  if (dcache_.victim_dirty(op.addr, wb_addr, beats)) {
    EMIT_CACHE(trace::EventKind::kCacheWriteback, 1, wb_addr,
               dcache_.set_of(wb_addr), dcache_.victim_way(op.addr), true);
    bus.submit(dport_id(), BusReq{.addr = wb_addr,
                                  .bytes = dcache_.config().line_bytes,
                                  .write = true,
                                  .wdata = {beats[0], beats[1], beats[2], beats[3],
                                            beats[4], beats[5], beats[6], beats[7]}});
    dstate_ = DState::kWriteback;
    return;
  }
  start_drefill(bus);
}

void MemSystem::start_drefill(SharedBus& bus) {
  bus.submit(dport_id(), BusReq{.addr = align_down(dop_.addr, dcache_.config().line_bytes),
                                .bytes = dcache_.config().line_bytes});
  dstate_ = DState::kRefill;
}

void MemSystem::dcache_apply() {
  if (dop_.write) {
    assert(is_sram(dop_.addr) && "stores must target SRAM");
    dcache_.write(dop_.addr, dop_.wdata, dop_.size);
  } else {
    drdata_ = dcache_.read(dop_.addr, dop_.size);
  }
}

// ----------------------------------------------------------------------------
// Cycle advance
// ----------------------------------------------------------------------------

void MemSystem::tick(SharedBus& bus) {
  ++now_;
  // Instruction port completions (either slot; CPU consumes in order).
  for (unsigned idx = 0; idx < 2; ++idx) {
    IFetchSlot& slot = islot_[idx];
    if (slot.state != IState::kBusDirect && slot.state != IState::kRefill) continue;
    const unsigned id = iport_id(idx);
    if (!bus.complete(id)) continue;
    if (slot.state == IState::kRefill) {
      std::vector<u32> beats(icache_.config().line_bytes / 4);
      for (u32 i = 0; i < beats.size(); ++i) beats[i] = bus.rdata(id, i);
      const u32 line = align_down(slot.addr, icache_.config().line_bytes);
      icache_.fill(line, beats);
      EMIT_CACHE(trace::EventKind::kCacheRefill, 0, line, icache_.set_of(line),
                 static_cast<u32>(icache_.way_of(line)), false);
      slot.data = static_cast<u64>(icache_.read(slot.addr, 4)) |
                  (static_cast<u64>(icache_.read(slot.addr + 4, 4)) << 32);
    } else {
      slot.data = static_cast<u64>(bus.rdata(id, 0)) |
                  (static_cast<u64>(bus.rdata(id, 1)) << 32);
    }
    bus.retire(id);
    if (slot.discard) {
      slot.state = IState::kIdle;
      slot.discard = false;
    } else {
      slot.state = IState::kDone;
    }
  }
  if (iactive_count() == 0) ihead_ = 0;

  // Data port completions.
  if (dstate_ == DState::kIdle || dstate_ == DState::kDone) return;
  if (!bus.complete(dport_id())) return;

  switch (dstate_) {
    case DState::kBusDirect:
      if (!dop_.write) {
        u32 v = bus.rdata(dport_id(), 0);
        if (dop_.size < 4) v &= (1u << (8 * dop_.size)) - 1u;
        drdata_ = v;
      }
      bus.retire(dport_id());
      dstate_ = DState::kDone;
      break;
    case DState::kWriteback:
      bus.retire(dport_id());
      start_drefill(bus);
      break;
    case DState::kRefill: {
      std::vector<u32> beats(dcache_.config().line_bytes / 4);
      for (u32 i = 0; i < beats.size(); ++i) beats[i] = bus.rdata(dport_id(), i);
      const u32 line = align_down(dop_.addr, dcache_.config().line_bytes);
      dcache_.fill(line, beats);
      EMIT_CACHE(trace::EventKind::kCacheRefill, 1, line, dcache_.set_of(line),
                 static_cast<u32>(dcache_.way_of(line)), false);
      bus.retire(dport_id());
      dcache_apply();
      dstate_ = DState::kDone;
      break;
    }
    case DState::kAmoFlush:
      // Memory is now current; run the atomic on the bus.
      bus.retire(dport_id());
      bus.submit(dport_id(), BusReq{.addr = dop_.addr, .bytes = 4, .amo_add = true,
                                    .wdata = {dop_.wdata}});
      dstate_ = DState::kAmoBus;
      break;
    case DState::kAmoBus:
      drdata_ = bus.rdata(dport_id(), 0);
      bus.retire(dport_id());
      // Keep a resident cached copy coherent with the AMO result.
      if (dcache_enabled() && dcache_.probe(dop_.addr)) {
        dcache_.write(dop_.addr, drdata_ + dop_.wdata, 4);
      }
      dstate_ = DState::kDone;
      break;
    default:
      break;
  }
}

u32 MemSystem::debug_read(u32 addr, unsigned size, const Sram& sram,
                          const Flash& flash) const {
  if (itcm_.contains(addr)) return itcm_.read(addr, size);
  if (dtcm_.contains(addr)) return dtcm_.read(addr, size);
  if (dcache_.probe(addr)) return dcache_.read(addr, size);
  u32 v = 0;
  for (unsigned i = 0; i < size; ++i) {
    const u32 a = addr + i;
    const u8 b = is_flash(a) ? flash.read8(a) : sram.read8(a);
    v |= static_cast<u32>(b) << (8 * i);
  }
  return v;
}

}  // namespace detstl::mem
