#pragma once
// Tightly-Coupled Memory: core-private SRAM with single-cycle (same-cycle)
// access and no bus involvement. Used by the TCM-based comparison strategy of
// Table IV; part of the TCM is then permanently reserved for the test code.

#include <cassert>
#include <vector>

#include "common/bitutil.h"

namespace detstl::mem {

class Tcm {
 public:
  Tcm(u32 base, u32 size) : base_(base), bytes_(size, 0) {}

  bool contains(u32 addr) const { return addr >= base_ && addr < base_ + size(); }
  u32 base() const { return base_; }
  u32 size() const { return static_cast<u32>(bytes_.size()); }

  u8 read8(u32 addr) const {
    assert(contains(addr));
    return bytes_[addr - base_];
  }
  void write8(u32 addr, u8 v) {
    assert(contains(addr));
    bytes_[addr - base_] = v;
  }

  u32 read(u32 addr, unsigned size) const {
    u32 v = 0;
    for (unsigned i = 0; i < size; ++i) v |= static_cast<u32>(read8(addr + i)) << (8 * i);
    return v;
  }
  void write(u32 addr, u32 v, unsigned size) {
    for (unsigned i = 0; i < size; ++i) write8(addr + i, static_cast<u8>(v >> (8 * i)));
  }
  u64 read64(u32 addr) const {
    return static_cast<u64>(read(addr, 4)) | (static_cast<u64>(read(addr + 4, 4)) << 32);
  }

 private:
  u32 base_;
  std::vector<u8> bytes_;
};

}  // namespace detstl::mem
