#pragma once
// Shared system bus with round-robin arbitration. One transaction occupies
// the bus for its full device-access duration; queued requesters wait. This
// is the contention point that makes multi-core execution of self-test
// routines non-deterministic (paper Sec. II, Table I).
//
// The bus owns no device pointers (the SoC passes Flash/Sram into tick()) so
// that a SoC checkpoint is a plain value copy. The trace sink is a non-owning
// pointer with the same checkpoint contract as the CPU hook pointers
// (trace/event.h): copies carry it verbatim, restorers re-install or clear.

#include <array>
#include <cstdint>

#include "common/bitutil.h"
#include "mem/flash.h"
#include "mem/sram.h"
#include "trace/event.h"

namespace detstl::mem {

/// 3 cores x (instruction port slot 0, data port, instruction port slot 1).
/// The instruction side keeps up to two fetches in flight (pipelined flash
/// access); requester id layout: core*3 + {0: ifetch0, 1: data, 2: ifetch1}.
inline constexpr unsigned kMaxBusRequesters = 9;
inline constexpr u32 kBusMaxBurstBytes = 32;

struct BusReq {
  u32 addr = 0;
  u32 bytes = 0;        // 1..32; bursts are naturally aligned
  bool write = false;
  bool amo_add = false; // atomic fetch-and-add of wdata[0]; rdata = old value
  std::array<u32, 8> wdata{};
};

/// Per-requester arbitration counters (diagnostics / contention evidence).
/// wait_cycles sums submit->grant latencies; occupancy_cycles sums the ticks
/// each granted transaction held the bus (arbitration tick + device access).
struct BusStats {
  u64 submits = 0;
  u64 grants = 0;
  u64 wait_cycles = 0;
  u64 occupancy_cycles = 0;
  /// Worst single submit->grant latency observed since construction or the
  /// last reset_wait_marks(). This is the measured per-access interference
  /// the mission-mode report checks against the stlint-predicted d_max
  /// (analysis::interference_bound).
  u64 max_wait_cycles = 0;
};

/// One requester slot: submit -> (arbitration, device access) -> complete ->
/// retire. A requester may have at most one outstanding request.
class SharedBus {
 public:
  void submit(unsigned id, const BusReq& req);
  bool has_pending(unsigned id) const { return slots_[id].state != SlotState::kIdle; }
  bool complete(unsigned id) const { return slots_[id].state == SlotState::kComplete; }
  /// Read data of a completed request, one 32-bit beat at a time.
  u32 rdata(unsigned id, unsigned beat) const { return slots_[id].rdata[beat]; }
  void retire(unsigned id) {
    DETSTL_TRACE(sink_, trace::Event{.cycle = now_,
                                     .kind = trace::EventKind::kBusRetire,
                                     .core = static_cast<u8>(id / 3),
                                     .unit = static_cast<u8>(id)});
    slots_[id].state = SlotState::kIdle;
  }

  /// Advance one cycle: continue the in-flight transaction or grant a new one.
  void tick(Flash& flash, Sram& sram);

  /// Total transactions granted (diagnostics).
  u64 transactions() const { return transactions_; }
  /// True if any transaction is in flight (diagnostics / determinism checks).
  bool busy() const { return grant_valid_; }
  /// Bus cycles elapsed (ticks 1:1 with SoC ticks once the SoC runs).
  u64 now() const { return now_; }

  const BusStats& stats(unsigned id) const { return stats_[id]; }

  /// Zero every requester's max_wait_cycles high-water mark so a caller can
  /// measure the worst per-access wait of a bounded window (one mission
  /// slice) without disturbing the cumulative counters.
  void reset_wait_marks() {
    for (BusStats& s : stats_) s.max_wait_cycles = 0;
  }

  // --- disturbance / supervisor hooks -----------------------------------------
  /// Freeze arbitration and the in-flight device access for `cycles` ticks
  /// (error-retry burst on the interconnect). Cumulative if called again
  /// before an earlier stall drains.
  void inject_stall(u32 cycles) { stall_cycles_ += cycles; }
  /// Total ticks the bus has spent frozen by inject_stall (diagnostics).
  u64 stall_ticks() const { return stall_ticks_; }

  /// Drop a requester's outstanding request in any state. Safe mid-flight:
  /// the device access only happens at completion (perform()), so a
  /// cancelled write never partially commits. Used when a core is aborted
  /// (watchdog timeout) or quarantined.
  void cancel_requester(unsigned id);

  void set_trace_sink(trace::EventSink* sink) { sink_ = sink; }
  trace::EventSink* trace_sink() const { return sink_; }

 private:
  enum class SlotState : u8 { kIdle, kWaiting, kInService, kComplete };

  struct Slot {
    SlotState state = SlotState::kIdle;
    BusReq req;
    std::array<u32, 8> rdata{};
    u64 submit_cycle = 0;
  };

  void perform(Slot& slot, Flash& flash, Sram& sram);

  std::array<Slot, kMaxBusRequesters> slots_{};
  bool grant_valid_ = false;
  unsigned grant_id_ = 0;
  u32 cycles_left_ = 0;
  unsigned rr_next_ = 0;  // round-robin scan start
  u64 transactions_ = 0;
  u64 now_ = 0;
  u32 stall_cycles_ = 0;  // remaining injected-stall ticks
  u64 stall_ticks_ = 0;
  std::array<BusStats, kMaxBusRequesters> stats_{};
  trace::EventSink* sink_ = nullptr;  // non-owning; see header comment
};

}  // namespace detstl::mem
