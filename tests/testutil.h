#pragma once
// Shared helpers for the test suite.

#include <optional>

#include "isa/assembler.h"
#include "isa/refexec.h"
#include "soc/soc.h"

namespace detstl::test {

/// Build a single-active-core SoC, load `prog`, boot `core_id` at the entry
/// point and run to halt (or `max_cycles`).
inline soc::Soc run_single_core(const isa::Program& prog, unsigned core_id = 0,
                                u64 max_cycles = 200000,
                                const soc::SocConfig& cfg = {}) {
  soc::Soc s(cfg);
  s.load_program(prog);
  s.set_boot(core_id, prog.entry());
  s.reset();
  s.run(max_cycles);
  return s;
}

/// Convenience: assemble a program placed at the default flash base.
inline isa::Assembler make_asm(u32 org = mem::kFlashBase) {
  isa::Assembler a(org);
  return a;
}

}  // namespace detstl::test
