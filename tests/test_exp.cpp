// Experiment drivers: scenario plumbing and the cheap exhibits (Figure 1,
// Table I with one stagger, Table IV). The fault-simulation tables are
// exercised end-to-end by their bench binaries; here we pin the invariants
// that must hold for any configuration.

#include <gtest/gtest.h>

#include "exp/experiments.h"

namespace detstl::exp {
namespace {

TEST(Scenarios, GridCoversCoresPositionsAlignments) {
  const auto grid = nocache_scenario_grid();
  EXPECT_EQ(grid.size(), 12u);
  std::set<unsigned> cores;
  std::set<u32> positions, aligns;
  for (const auto& sc : grid) {
    cores.insert(sc.active_cores);
    positions.insert(sc.position);
    aligns.insert(sc.alignment);
    EXPECT_EQ(sc.alignment % 8, 0u) << "alignment must be packet-granular";
  }
  EXPECT_EQ(cores, (std::set<unsigned>{2, 3}));
  EXPECT_EQ(positions.size(), 3u);
  EXPECT_EQ(aligns, (std::set<u32>{0, 8}));
}

TEST(Scenarios, GradedCoreAlwaysActive) {
  const auto routine = core::make_alu_test();
  for (unsigned graded = 0; graded < 3; ++graded) {
    Scenario sc{2, {0, 0, 0}, 0, 0, "t"};
    auto tests = build_scenario_tests(*routine, core::WrapperKind::kPlain, sc,
                                      graded, false);
    ASSERT_EQ(tests.size(), 2u);
    EXPECT_EQ(tests[0].env.core_id, graded);
    // Core kinds match core ids (core 2 is the 64-bit C).
    for (const auto& t : tests)
      EXPECT_EQ(static_cast<unsigned>(t.env.kind), t.env.core_id);
  }
}

TEST(Scenarios, FactoryBuildsAreDeterministic) {
  const auto routine = core::make_alu_test();
  Scenario sc{3, {0, 3, 7}, 0, 8, "t"};
  auto tests = build_scenario_tests(*routine, core::WrapperKind::kCacheBased, sc, 0,
                                    false);
  auto factory = scenario_factory(tests, sc, 0);
  soc::Soc s1 = factory();
  soc::Soc s2 = factory();
  s1.reset();
  s2.reset();
  for (int i = 0; i < 5000; ++i) {
    s1.tick();
    s2.tick();
  }
  for (unsigned c = 0; c < 3; ++c)
    EXPECT_EQ(s1.core(c).perf().cycles, s2.core(c).perf().cycles);
}

TEST(Fig1, DistancesShowTheParadigm) {
  const auto r = run_fig1();
  EXPECT_EQ(r.ex_distance_cached, 1u);                    // EX->EX excited
  EXPECT_GE(r.ex_distance_single, r.ex_distance_cached);  // flash latency
  EXPECT_GT(r.ex_distance_triple, 4u);                    // contention breaks it
  EXPECT_NE(r.trace_cached.find("add"), std::string::npos);
  EXPECT_NE(r.trace_triple_core.find('-'), std::string::npos);  // stall bubbles
}

TEST(Table1, StallsGrowSuperlinearly) {
  const auto rows = run_table1(/*stagger_samples=*/1);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[1].if_stalls, 2.0 * rows[0].if_stalls);
  EXPECT_GT(rows[2].if_stalls, rows[1].if_stalls);
  for (const auto& r : rows) EXPECT_GT(r.if_stalls, r.mem_stalls);
}

TEST(Table4, TcmReservesMemoryCacheDoesNot) {
  const auto rows = run_table4();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].approach, "TCM-based");
  EXPECT_GT(rows[0].memory_overhead_bytes, 0u);
  EXPECT_EQ(rows[1].memory_overhead_bytes, 0u);
  EXPECT_GT(rows[0].execution_cycles, 0u);
  EXPECT_GT(rows[1].execution_cycles, 0u);
  // Both deterministic strategies complete under contention too.
  EXPECT_GT(rows[0].contended_cycles, 0u);
  EXPECT_GT(rows[1].contended_cycles, 0u);
}

}  // namespace
}  // namespace detstl::exp
