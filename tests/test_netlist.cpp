// Netlist engine + module netlists: gate evaluation, DFFs, fault overlays,
// and exhaustive/randomised equivalence against the behavioural models.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netlist/adapters.h"

namespace detstl::netlist {
namespace {

using cpu::FwdSel;

// ----------------------------------------------------------------------------
// Engine basics
// ----------------------------------------------------------------------------

TEST(NetlistEngine, GatesComputeTruthTables) {
  Netlist nl;
  const NetId a = nl.input();
  const NetId b = nl.input();
  const NetId g_and = nl.and2(a, b);
  const NetId g_or = nl.or2(a, b);
  const NetId g_xor = nl.xor2(a, b);
  const NetId g_nand = nl.nand2(a, b);
  const NetId g_nor = nl.nor2(a, b);
  const NetId g_xnor = nl.xnor2(a, b);
  const NetId g_not = nl.not_(a);
  EvalState s = nl.make_state();
  for (unsigned av = 0; av < 2; ++av) {
    for (unsigned bv = 0; bv < 2; ++bv) {
      s.set_input(0, av);
      s.set_input(1, bv);
      nl.eval(s);
      EXPECT_EQ(s.lane_bit(g_and, 0), (av & bv) != 0);
      EXPECT_EQ(s.lane_bit(g_or, 0), (av | bv) != 0);
      EXPECT_EQ(s.lane_bit(g_xor, 0), (av ^ bv) != 0);
      EXPECT_EQ(s.lane_bit(g_nand, 0), !(av & bv));
      EXPECT_EQ(s.lane_bit(g_nor, 0), !(av | bv));
      EXPECT_EQ(s.lane_bit(g_xnor, 0), !(av ^ bv));
      EXPECT_EQ(s.lane_bit(g_not, 0), !av);
    }
  }
}

TEST(NetlistEngine, DffHoldsState) {
  Netlist nl;
  const NetId q = nl.dff();
  const NetId d = nl.input();
  nl.connect_dff(q, nl.xor2(q, d));  // toggle flop
  EvalState s = nl.make_state();
  s.set_input(0, true);
  nl.eval(s);
  EXPECT_FALSE(s.lane_bit(q, 0));
  nl.clock(s);
  nl.eval(s);
  EXPECT_TRUE(s.lane_bit(q, 0));
  nl.clock(s);
  nl.eval(s);
  EXPECT_FALSE(s.lane_bit(q, 0));
}

TEST(NetlistEngine, FaultOverlayPerLane) {
  Netlist nl;
  const NetId a = nl.input();
  const NetId out = nl.buf(a);
  EvalState s = nl.make_state();
  s.set_input(0, false);
  Netlist::inject(s, Fault{out, true}, 0b10);  // SA1 in lane 1 only
  nl.eval(s);
  EXPECT_FALSE(s.lane_bit(out, 0));
  EXPECT_TRUE(s.lane_bit(out, 1));
  Netlist::clear_faults(s);
  nl.eval(s);
  EXPECT_FALSE(s.lane_bit(out, 1));
}

TEST(NetlistEngine, Mux2BothStyles) {
  for (bool nn : {false, true}) {
    Netlist nl(Style{.nand_nand = nn, .buf_prob = 0.0, .seed = 3});
    const NetId sel = nl.input();
    const NetId a = nl.input();
    const NetId b = nl.input();
    const NetId m = nl.mux2(sel, a, b);
    EvalState s = nl.make_state();
    for (unsigned v = 0; v < 8; ++v) {
      s.set_input(0, v & 1);
      s.set_input(1, (v >> 1) & 1);
      s.set_input(2, (v >> 2) & 1);
      nl.eval(s);
      const bool expect = (v & 1) ? ((v >> 1) & 1) : ((v >> 2) & 1);
      EXPECT_EQ(s.lane_bit(m, 0), expect) << "style " << nn << " v " << v;
    }
  }
}

TEST(NetlistEngine, IncrementerWraps) {
  Netlist nl;
  std::vector<NetId> in(5);
  for (auto& n : in) n = nl.input();
  const auto out = nl.inc_n(in);
  EvalState s = nl.make_state();
  for (u32 v = 0; v < 32; ++v) {
    for (unsigned b = 0; b < 5; ++b) s.set_input(b, (v >> b) & 1);
    nl.eval(s);
    u32 got = 0;
    for (unsigned b = 0; b < 5; ++b) got |= static_cast<u32>(s.lane_bit(out[b], 0)) << b;
    EXPECT_EQ(got, (v + 1) % 32);
  }
}

TEST(NetlistEngine, BufferInsertionGrowsFaultList) {
  Netlist plain(Style{});
  Netlist buffered(Style{.nand_nand = false, .buf_prob = 0.5, .seed = 9});
  auto build = [](Netlist& nl) {
    const NetId a = nl.input();
    const NetId b = nl.input();
    NetId x = nl.and2(a, b);
    for (int i = 0; i < 20; ++i) x = nl.or2(x, nl.and2(a, b));
    return x;
  };
  build(plain);
  build(buffered);
  EXPECT_GT(buffered.fault_list().size(), plain.fault_list().size());
}

TEST(NetlistEngine, WideAndOrEqAgainstReference) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 1 + static_cast<unsigned>(rng.below(12));
    Netlist nl;
    std::vector<NetId> a_in(n), b_in(n);
    for (auto& x : a_in) x = nl.input();
    for (auto& x : b_in) x = nl.input();
    const NetId all = nl.and_n(a_in);
    const NetId any = nl.or_n(a_in);
    const NetId eq = nl.eq_n(a_in, b_in);
    EvalState s = nl.make_state();
    for (int vec = 0; vec < 20; ++vec) {
      u32 av = 0, bv = 0;
      for (unsigned i = 0; i < n; ++i) {
        const bool ab = rng.chance(0.5), bb = rng.chance(0.5);
        av |= static_cast<u32>(ab) << i;
        bv |= static_cast<u32>(bb) << i;
        s.set_input(i, ab);
        s.set_input(n + i, bb);
      }
      nl.eval(s);
      const u32 mask = n >= 32 ? ~0u : ((1u << n) - 1);
      EXPECT_EQ(s.lane_bit(all, 0), (av & mask) == mask);
      EXPECT_EQ(s.lane_bit(any, 0), av != 0);
      EXPECT_EQ(s.lane_bit(eq, 0), av == bv);
    }
  }
}

TEST(NetlistEngine, FaultListExcludesConstants) {
  Netlist nl;
  const NetId c0 = nl.constant(false);
  const NetId c1 = nl.constant(true);
  const NetId in = nl.input();
  nl.and2(in, nl.or2(c0, c1));
  for (const Fault& f : nl.fault_list()) {
    EXPECT_NE(f.net, c0);
    EXPECT_NE(f.net, c1);
  }
  // Both polarities of every non-constant net.
  EXPECT_EQ(nl.fault_list().size(), 2 * (nl.num_nets() - 2));
}

TEST(NetlistEngine, LaneIndependenceUnderDistinctFaults) {
  // Two different faults in two lanes must not interact: each lane behaves
  // exactly like a single-fault machine.
  Netlist nl;
  const NetId a = nl.input();
  const NetId b = nl.input();
  const NetId x = nl.xor2(a, b);
  const NetId y = nl.and2(x, a);
  EvalState multi = nl.make_state();
  Netlist::inject(multi, Fault{x, true}, 1ull << 0);
  Netlist::inject(multi, Fault{y, false}, 1ull << 1);
  for (unsigned v = 0; v < 4; ++v) {
    multi.set_input(0, v & 1);
    multi.set_input(1, (v >> 1) & 1);
    nl.eval(multi);
    for (unsigned lane = 0; lane < 2; ++lane) {
      EvalState solo = nl.make_state();
      Netlist::inject(solo, lane == 0 ? Fault{x, true} : Fault{y, false}, ~0ull);
      solo.set_input(0, v & 1);
      solo.set_input(1, (v >> 1) & 1);
      nl.eval(solo);
      EXPECT_EQ(multi.lane_bit(y, lane), solo.lane_bit(y, 0))
          << "v=" << v << " lane=" << lane;
    }
  }
}

// ----------------------------------------------------------------------------
// Random CPU-reachable stimulus generators
// ----------------------------------------------------------------------------

cpu::HdcuIn random_hdcu_in(Rng& rng, CoreKind kind) {
  cpu::HdcuIn in;
  const bool c64 = kind == CoreKind::kC;
  for (auto& c : in.cons) {
    c.rs = static_cast<u8>(rng.below(32));
    c.used = rng.chance(0.8);
    c.is64 = c64 && rng.chance(0.3);
    if (c.is64) c.rs &= ~1u;
  }
  for (auto& p : in.prod) {
    p.rd = static_cast<u8>(rng.below(32));
    p.writes = rng.chance(0.7) && p.rd != 0;  // CPU invariant: writes => rd != 0
    p.is64 = c64 && rng.chance(0.3);
    if (p.is64) p.rd &= ~1u;
    p.is_load = rng.chance(0.3);
  }
  return in;
}

cpu::FwdIn random_fwd_in(Rng& rng, CoreKind kind) {
  cpu::FwdIn in;
  const bool c64 = kind == CoreKind::kC;
  const u64 mask = c64 ? ~0ull : 0xffffffffull;
  for (auto& p : in.port) {
    p.rf = rng.next_u64() & mask;
    for (auto& c : p.cand) c = rng.next_u64() & mask;
    p.sel = static_cast<FwdSel>(rng.below(5));
    p.high_half = c64 && p.sel != FwdSel::kRegFile && rng.chance(0.25);
  }
  return in;
}

cpu::IcuIn random_icu_in(Rng& rng) {
  cpu::IcuIn in;
  in.events = static_cast<u8>(rng.below(16));
  in.mie = static_cast<u8>(rng.below(16));
  in.ack = rng.chance(0.3);
  in.clear = static_cast<u8>(rng.below(16));
  return in;
}

// ----------------------------------------------------------------------------
// Equivalence: netlist == behavioural (parameterised over core kinds)
// ----------------------------------------------------------------------------

class PerCore : public ::testing::TestWithParam<int> {
 protected:
  CoreKind kind() const { return static_cast<CoreKind>(GetParam()); }
};

TEST_P(PerCore, HdcuNetlistMatchesBehavioral) {
  const HdcuNetlist mod(kind());
  NetlistHazard hz(mod);
  Rng rng(42 + GetParam());
  for (int i = 0; i < 3000; ++i) {
    const cpu::HdcuIn in = random_hdcu_in(rng, kind());
    const cpu::HdcuOut want = cpu::hdcu_behavioral(kind(), in);
    const cpu::HdcuOut got = hz.eval(in);
    ASSERT_EQ(got, want) << "iteration " << i;
  }
}

TEST_P(PerCore, FwdNetlistMatchesBehavioral) {
  const FwdNetlist mod(kind());
  NetlistForward fw(mod);
  Rng rng(137 + GetParam());
  for (int i = 0; i < 1000; ++i) {
    const cpu::FwdIn in = random_fwd_in(rng, kind());
    const cpu::FwdOut want = cpu::fwd_behavioral(in);
    const cpu::FwdOut got = fw.eval(in);
    ASSERT_EQ(got, want) << "iteration " << i;
  }
}

TEST_P(PerCore, IcuNetlistMatchesBehavioralSequence) {
  const IcuNetlist mod(kind());
  NetlistIcu ni(mod);
  cpu::IcuState behav(kind());
  Rng rng(7 + GetParam());
  for (int i = 0; i < 5000; ++i) {
    const cpu::IcuIn in = random_icu_in(rng);
    const cpu::IcuOut want = behav.eval(in);
    const cpu::IcuOut got = ni.eval(in);
    ASSERT_EQ(got, want) << "iteration " << i;
    behav.clock(in);
    ni.clock(in);
  }
}

TEST_P(PerCore, IcuLoadStateSeedsFlops) {
  const IcuNetlist mod(kind());
  NetlistIcu ni(mod);
  // Pending sources 0 and 2, both synchroniser stages set (bits 4/5).
  ni.load_state(0b0101 | (1u << 4) | (1u << 5));
  cpu::IcuIn in;
  in.mie = 0xf;
  const cpu::IcuOut out = ni.eval(in);
  EXPECT_TRUE(out.irq);
  EXPECT_EQ(out.pending, 0b0101);

  // Without the synchroniser stages the request line lags by two clocks.
  NetlistIcu lagged(mod);
  lagged.load_state(0b0101);
  EXPECT_FALSE(lagged.eval(in).irq);
  lagged.clock(in);
  lagged.clock(in);
  EXPECT_TRUE(lagged.eval(in).irq);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PerCore, ::testing::Values(0, 1, 2));

// ----------------------------------------------------------------------------
// Fault behaviour of the module netlists
// ----------------------------------------------------------------------------

TEST(ModuleFaults, StuckStallForcesPermanentStall) {
  const HdcuNetlist mod(CoreKind::kA);
  NetlistHazard hz(mod);
  // The stall output is the last entry of outputs().
  hz.set_fault(Fault{mod.outputs().back(), true});
  cpu::HdcuIn in;  // empty packet: behaviourally no stall
  EXPECT_TRUE(hz.eval(in).stall);
  hz.set_fault(std::nullopt);
  EXPECT_FALSE(hz.eval(in).stall);
}

TEST(ModuleFaults, FwdOutputBitStuck) {
  const FwdNetlist mod(CoreKind::kA);
  NetlistForward fw(mod);
  fw.set_fault(Fault{mod.outputs()[0], true});  // port0 bit0 SA1
  cpu::FwdIn in;
  in.port[0].rf = 0;
  in.port[0].sel = FwdSel::kRegFile;
  EXPECT_EQ(fw.eval(in).operand[0] & 1, 1u);
}

TEST(ModuleFaults, IcuPendingStuckLowNeverInterrupts) {
  const IcuNetlist mod(CoreKind::kC);
  NetlistIcu ni(mod);
  // Find the irq output (first entry) and force it low.
  ni.set_fault(Fault{mod.outputs()[0], false});
  cpu::IcuIn in;
  in.events = 0x1;
  in.mie = 0xf;
  EXPECT_FALSE(ni.eval(in).irq);
}

TEST(ModuleStats, FaultListSizes) {
  // Not a functional check: documents the scale of the structural models and
  // guards against accidental collapse of the netlists.
  for (int k = 0; k < 3; ++k) {
    const auto kind = static_cast<CoreKind>(k);
    const FwdNetlist fwd(kind);
    const HdcuNetlist hdcu(kind);
    const IcuNetlist icu(kind);
    EXPECT_GT(fwd.nl().fault_list().size(), 1000u) << "fwd core " << k;
    EXPECT_GT(hdcu.nl().fault_list().size(), 400u) << "hdcu core " << k;
    EXPECT_GT(icu.nl().fault_list().size(), 80u) << "icu core " << k;
  }
  // Cores A and B: same function, different instantiation -> different lists.
  EXPECT_NE(FwdNetlist(CoreKind::kA).nl().fault_list().size(),
            FwdNetlist(CoreKind::kB).nl().fault_list().size());
}

}  // namespace
}  // namespace detstl::netlist
