// stlperf observability subsystem (src/perf/): registry determinism, the
// sim/host JSON schema split and its round-trip, the regression-compare
// semantics behind `stlperf diff/check`, the subsystem profiler's cost
// contract, and the headline invariance the whole PR rests on — the "sim"
// subtree of a campaign's report is byte-identical at 1, 2 and 8 worker
// threads (only host timings may move).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/campaign.h"
#include "perf/collect.h"
#include "perf/json.h"
#include "perf/metrics.h"
#include "perf/perf_report.h"
#include "perf/profiler.h"
#include "perf/sampler.h"
#include "perf/simstats.h"
#include "runtime/campaign.h"

namespace detstl::perf {
namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CountersAccumulateAndGaugesOverwrite) {
  Registry reg;
  reg.add_counter("a.hits", "core=A", 3);
  reg.add_counter("a.hits", "core=A", 4);
  reg.set_gauge("host.rss", "", 100.0);
  reg.set_gauge("host.rss", "", 200.0);

  const Metric* c = reg.find("a.hits", "core=A");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->counter, 7u);
  const Metric* g = reg.find("host.rss", "");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::kGauge);
  EXPECT_EQ(g->gauge, 200.0);
  EXPECT_EQ(reg.find("missing", ""), nullptr);
}

TEST(Registry, VisitOrderIsNameLabelLexicographicNotInsertion) {
  Registry reg;
  reg.add_counter("z.last", "", 1);
  reg.add_counter("a.first", "core=B", 1);
  reg.add_counter("a.first", "core=A", 1);
  std::vector<std::string> order;
  reg.visit([&](const std::string& n, const std::string& l, const Metric&) {
    order.push_back(n + "|" + l);
  });
  const std::vector<std::string> want = {"a.first|core=A", "a.first|core=B",
                                         "z.last|"};
  EXPECT_EQ(order, want);
}

TEST(Registry, HistogramBucketsBoundsAndOverflow) {
  Registry reg;
  const std::vector<u64> bounds = {10, 100};
  reg.record_hist("h", "", bounds, 5);     // bucket 0 (<= 10)
  reg.record_hist("h", "", bounds, 10);    // bucket 0 (inclusive bound)
  reg.record_hist("h", "", bounds, 11);    // bucket 1
  reg.record_hist("h", "", bounds, 1000);  // overflow bucket
  const Metric* m = reg.find("h", "");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->hist.counts.size(), 3u);
  EXPECT_EQ(m->hist.counts[0], 2u);
  EXPECT_EQ(m->hist.counts[1], 1u);
  EXPECT_EQ(m->hist.counts[2], 1u);
  EXPECT_EQ(m->hist.total, 4u);
  EXPECT_EQ(m->hist.sum, 5u + 10u + 11u + 1000u);
}

TEST(Registry, FingerprintCoversSimAndIgnoresHost) {
  Registry a, b;
  a.add_counter("sim.cycles", "", 100);
  b.add_counter("sim.cycles", "", 100);
  a.set_gauge("host.wall", "", 1.0);
  b.set_gauge("host.wall", "", 99.0);  // host values differ...
  EXPECT_EQ(a.sim_fingerprint(), b.sim_fingerprint());  // ...fingerprint equal

  b.add_counter("sim.cycles", "", 1);  // sim value differs
  EXPECT_NE(a.sim_fingerprint(), b.sim_fingerprint());
}

// ---------------------------------------------------------------------------
// JSON round-trip and schema rejection
// ---------------------------------------------------------------------------

PerfReport sample_report() {
  PerfReport rep;
  rep.name = "unit";
  rep.detstl_version = "test";
  rep.config_hash = 0xdeadbeefcafef00dull;
  rep.sim_cycles = 123'456;
  rep.sim_units = 42;
  rep.phases.push_back({"warm", 23'456, 2, 0.25});
  rep.phases.push_back({"main", 100'000, 40, 1.75});
  rep.metrics.add_counter("cpu.instret", "core=A", 99'000);
  rep.metrics.record_hist("campaign.run_cycles", "", {100, 1000}, 450);
  rep.metrics.record_hist("campaign.run_cycles", "", {100, 1000}, 40);
  rep.metrics.set_gauge("campaign.units_per_s", "", 21.5);
  rep.wall_s = 2.0;
  rep.cpu_s = 3.5;
  rep.peak_rss_kb = 4096;
  return rep;
}

TEST(PerfJson, RoundTripPreservesEverything) {
  const PerfReport rep = sample_report();
  const std::string text = to_json(rep);

  PerfReport back;
  std::string err;
  ASSERT_TRUE(from_json(text, back, &err)) << err;
  EXPECT_EQ(back.schema, kPerfSchemaVersion);
  EXPECT_EQ(back.name, "unit");
  EXPECT_EQ(back.detstl_version, "test");
  EXPECT_EQ(back.config_hash, 0xdeadbeefcafef00dull);
  EXPECT_EQ(back.sim_cycles, 123'456u);
  EXPECT_EQ(back.sim_units, 42u);
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases[1].name, "main");
  EXPECT_EQ(back.phases[1].sim_cycles, 100'000u);
  EXPECT_EQ(back.phases[1].units, 40u);
  EXPECT_NEAR(back.phases[1].wall_s, 1.75, 1e-9);
  EXPECT_EQ(back.wall_s, 2.0);
  EXPECT_EQ(back.cpu_s, 3.5);
  EXPECT_EQ(back.peak_rss_kb, 4096);

  const Metric* h = back.metrics.find("campaign.run_cycles", "");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.total, 2u);
  EXPECT_EQ(h->hist.sum, 490u);
  ASSERT_EQ(h->hist.counts.size(), 3u);
  EXPECT_EQ(h->hist.counts[0], 1u);
  EXPECT_EQ(h->hist.counts[1], 1u);

  // The round-trip is loss-less where it matters: identical sim subtree and
  // fingerprint, and a re-serialisation reproduces the exact document.
  EXPECT_EQ(sim_canonical(rep), sim_canonical(back));
  EXPECT_EQ(rep.metrics.sim_fingerprint(), back.metrics.sim_fingerprint());
  EXPECT_EQ(to_json(back), text);
}

TEST(PerfJson, UnknownSchemaVersionIsRejected) {
  std::string text = to_json(sample_report());
  const auto pos = text.find("\"stlperf_schema\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("\"stlperf_schema\": 1"), "\"stlperf_schema\": 99");
  PerfReport back;
  std::string err;
  EXPECT_FALSE(from_json(text, back, &err));
  EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

TEST(PerfJson, MalformedDocumentsFailWithReason) {
  PerfReport back;
  std::string err;
  EXPECT_FALSE(from_json("", back, &err));
  EXPECT_FALSE(from_json("{\"stlperf_schema\": 1", back, &err));
  EXPECT_FALSE(from_json("[1,2,3]", back, &err));
  EXPECT_FALSE(err.empty());
}

TEST(PerfJson, ExactU64ValuesSurviveTheNumberModel) {
  PerfReport rep = sample_report();
  rep.sim_cycles = 0xffffffffffffffffull;  // would lose precision as double
  PerfReport back;
  std::string err;
  ASSERT_TRUE(from_json(to_json(rep), back, &err)) << err;
  EXPECT_EQ(back.sim_cycles, 0xffffffffffffffffull);
}

// ---------------------------------------------------------------------------
// Comparison semantics (stlperf diff/check)
// ---------------------------------------------------------------------------

TEST(PerfCompare, TwentyPercentSlowdownTripsFifteenButNotTwentyFive) {
  const PerfReport baseline = sample_report();
  PerfReport slow = sample_report();
  slow.wall_s = baseline.wall_s * 1.25;  // sim-MHz drops by exactly 20%

  const CompareOutcome cmp = compare_reports(baseline, slow);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_FALSE(cmp.config_changed);
  EXPECT_TRUE(cmp.sim_identical);
  EXPECT_NEAR(cmp.regression_pct, 20.0, 1e-6);
  EXPECT_TRUE(cmp.regressed(15.0));
  EXPECT_FALSE(cmp.regressed(25.0));

  const std::string text = render_diff(baseline, slow, cmp, 15.0);
  EXPECT_NE(text.find("stlperf: REGRESSION"), std::string::npos);
}

TEST(PerfCompare, SpeedupNeverRegresses) {
  const PerfReport baseline = sample_report();
  PerfReport fast = sample_report();
  fast.wall_s = baseline.wall_s / 2.0;
  const CompareOutcome cmp = compare_reports(baseline, fast);
  EXPECT_LT(cmp.regression_pct, 0.0);
  EXPECT_FALSE(cmp.regressed(0.0));
}

TEST(PerfCompare, DifferentBenchNamesAreNotComparable) {
  const PerfReport baseline = sample_report();
  PerfReport other = sample_report();
  other.name = "another-bench";
  const CompareOutcome cmp = compare_reports(baseline, other);
  EXPECT_FALSE(cmp.comparable);
  const std::string text = render_diff(baseline, other, cmp, 15.0);
  EXPECT_NE(text.find("NOT COMPARABLE"), std::string::npos);
}

TEST(PerfCompare, ConfigHashMismatchIsNotedButStillGates) {
  const PerfReport baseline = sample_report();
  PerfReport changed = sample_report();
  changed.config_hash ^= 1;
  changed.sim_cycles += 1;  // different workload, different sim subtree
  const CompareOutcome cmp = compare_reports(baseline, changed);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.config_changed);
  EXPECT_FALSE(cmp.sim_identical);
  EXPECT_FALSE(cmp.notes.empty());
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(Profiler, DisabledScopesRecordNothing) {
  set_prof_enabled(false);
  prof_reset();
  { DETSTL_PROF_SCOPE(ProfScope::kFetch); }
  { DETSTL_PROF_SCOPE(ProfScope::kFetch); }
  const ProfSnapshot snap = prof_snapshot();
  EXPECT_EQ(snap[ProfScope::kFetch].calls, 0u);
  EXPECT_EQ(snap.total_ns(), 0u);
}

TEST(Profiler, EnabledScopesAccumulateCallsAndTime) {
  prof_reset();
  set_prof_enabled(true);
  for (int i = 0; i < 10; ++i) {
    DETSTL_PROF_SCOPE(ProfScope::kNetlistScreen);
  }
  set_prof_enabled(false);
  const ProfSnapshot snap = prof_snapshot();
  EXPECT_EQ(snap[ProfScope::kNetlistScreen].calls, 10u);
  // A scope armed mid-lifetime only counts completed scopes; time is >= 0 by
  // construction (monotonic clock), so just require the table renders.
  const std::string table = snap.render(1.0);
  EXPECT_NE(table.find("fault.screen"), std::string::npos);
  prof_reset();
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(Sampler, WallAdvancesAndRssIsSane) {
  HostTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) sink = sink + i * 0.5;
  const HostUsage u = t.sample();
  EXPECT_GT(u.wall_s, 0.0);
  EXPECT_GE(u.cpu_s, 0.0);
  EXPECT_GT(peak_rss_kb(), 0);  // Linux/macOS both support RUSAGE
}

// ---------------------------------------------------------------------------
// The headline contract: sim metrics byte-identical across thread counts
// ---------------------------------------------------------------------------

fault::CampaignResult run_fwd_campaign(unsigned threads) {
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "perf-det"};
  auto tests = exp::build_scenario_tests(*routine, core::WrapperKind::kPlain, sc,
                                         0, /*use_pcs=*/false);
  fault::CampaignConfig cc;
  cc.module = fault::Module::kFwd;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 32;  // small but non-trivial
  cc.threads = threads;
  fault::Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  return campaign.run();
}

/// The exact report a bench would emit for this campaign, minus host noise.
PerfReport report_for(const fault::CampaignResult& r, const SimSnapshot& delta) {
  PerfReport rep;
  rep.name = "threads-invariance";
  rep.detstl_version = "test";
  rep.config_hash = 1;
  rep.sim_cycles = delta.sim_cycles();
  rep.sim_units = delta.units();
  rep.phases.push_back({"campaign", delta.sim_cycles(), delta.units(), 0.5});
  collect_fault_result(rep.metrics, r, "module=fwd");
  collect_sim_totals(rep.metrics, delta);
  return rep;
}

TEST(ThreadInvariance, FaultCampaignSimSubtreeByteIdenticalAt1_2_8Threads) {
  const SimSnapshot s0 = sim_totals().snapshot();
  const auto r1 = run_fwd_campaign(1);
  const SimSnapshot s1 = sim_totals().snapshot();
  const auto r2 = run_fwd_campaign(2);
  const SimSnapshot s2 = sim_totals().snapshot();
  const auto r8 = run_fwd_campaign(8);
  const SimSnapshot s8 = sim_totals().snapshot();

  // The new CampaignResult observability fields are thread-invariant...
  EXPECT_GT(r1.sim_cycles, r1.good_cycles);  // detection re-runs happened
  EXPECT_GT(r1.screen_calls, 0u);
  EXPECT_EQ(r1.sim_cycles, r2.sim_cycles);
  EXPECT_EQ(r1.sim_cycles, r8.sim_cycles);
  EXPECT_EQ(r1.screen_calls, r2.screen_calls);
  EXPECT_EQ(r1.screen_calls, r8.screen_calls);
  // ...and excluded from the resume contract's canonical bytes.
  EXPECT_EQ(r1.canonical_bytes(), r2.canonical_bytes());
  EXPECT_EQ(r1.canonical_bytes(), r8.canonical_bytes());

  // The process-global sim totals advanced identically per campaign.
  const SimSnapshot d1 = s1.since(s0), d2 = s2.since(s1), d8 = s8.since(s2);
  EXPECT_EQ(d1.v, d2.v);
  EXPECT_EQ(d1.v, d8.v);
  // Campaign work lands in the campaign stats; the golden run build_wrapped
  // executes while assembling the routine lands in kSocRunCycles.
  EXPECT_EQ(d1[SimStat::kGoodRunCycles] + d1[SimStat::kDetectionCycles],
            r1.sim_cycles);
  EXPECT_GT(d1[SimStat::kSocRunCycles], 0u);
  EXPECT_EQ(d1[SimStat::kFaultUnits], r1.simulated_faults);

  // The full schema-level contract: byte-identical "sim" subtrees.
  const std::string sim1 = sim_canonical(report_for(r1, d1));
  const std::string sim2 = sim_canonical(report_for(r2, d2));
  const std::string sim8 = sim_canonical(report_for(r8, d8));
  EXPECT_EQ(sim1, sim2);
  EXPECT_EQ(sim1, sim8);
  EXPECT_NE(sim1.find("\"cycles\""), std::string::npos);
}

runtime::CampaignResult run_disturb(unsigned threads) {
  runtime::CampaignSpec spec;
  spec.seed = 0xd15b'0001;
  spec.runs = 4;
  spec.cores = 2;
  spec.routines = {"alu"};
  spec.disturb.count = 4;
  spec.threads = threads;
  return runtime::run_disturbance_campaign(spec);
}

TEST(ThreadInvariance, DisturbanceCampaignSimTotalsMatchAcrossThreads) {
  const SimSnapshot s0 = sim_totals().snapshot();
  const auto r1 = run_disturb(1);
  const SimSnapshot s1 = sim_totals().snapshot();
  const auto r2 = run_disturb(2);
  const SimSnapshot s2 = sim_totals().snapshot();

  EXPECT_EQ(r1.outcome_vector(), r2.outcome_vector());
  const SimSnapshot d1 = s1.since(s0), d2 = s2.since(s1);
  EXPECT_EQ(d1.v, d2.v);
  EXPECT_EQ(d1[SimStat::kDisturbRuns], 4u);
  EXPECT_GT(d1[SimStat::kDisturbCycles], 0u);

  // collect_disturbance_result is sim-pure given equal results.
  Registry a, b;
  collect_disturbance_result(a, r1, "");
  collect_disturbance_result(b, r2, "");
  EXPECT_EQ(a.sim_fingerprint(), b.sim_fingerprint());
}

}  // namespace
}  // namespace detstl::perf
