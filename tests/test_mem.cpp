// Memory subsystem: flash line-buffer timing, bus arbitration, cache
// behaviour (hit/miss, LRU, write-back, allocate policies, invalidate), TCM.

#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/memsys.h"
#include "mem/tcm.h"
#include "isa/isa.h"

namespace detstl::mem {
namespace {

// ----------------------------------------------------------------------------
// Flash timing
// ----------------------------------------------------------------------------

TEST(Flash, LineBufferTiming) {
  Flash f;
  // First beat of a line: full access; following beats of the same line: fast.
  EXPECT_EQ(f.access_cycles(kFlashBase, 8, 0), kFlashMissCycles);
  EXPECT_EQ(f.access_cycles(kFlashBase + 8, 8, 0), kFlashHitCycles);
  EXPECT_EQ(f.access_cycles(kFlashBase + 24, 8, 0), kFlashHitCycles);
  // Next line: miss again.
  EXPECT_EQ(f.access_cycles(kFlashBase + 32, 8, 0), kFlashMissCycles);
  // Jumping back: the buffer was replaced.
  EXPECT_EQ(f.access_cycles(kFlashBase, 8, 0), kFlashMissCycles);
}

TEST(Flash, BurstSpanningLines) {
  Flash f;
  // 32-byte refill starting at a line boundary: 1 miss + 3 hits.
  EXPECT_EQ(f.access_cycles(kFlashBase + 64, 32, 1),
            kFlashMissCycles + 3 * kFlashHitCycles);
  // Re-reading the now-buffered line: all hits.
  EXPECT_EQ(f.access_cycles(kFlashBase + 64, 32, 1), 4 * kFlashHitCycles);
}

TEST(Flash, BuffersArePerMaster) {
  Flash f;
  // Two masters streaming different lines keep their own buffers: after one
  // miss each, both stream at hit speed (bus serialisation, not buffer
  // thrash, is the multi-core contention mechanism).
  u32 total = 0;
  for (int i = 0; i < 4; ++i) {
    total += f.access_cycles(kFlashBase + 8 * i, 8, 0);          // master 0
    total += f.access_cycles(kFlashBase + 4096 + 8 * i, 8, 2);   // master 2
  }
  EXPECT_EQ(total, 2 * kFlashMissCycles + 6 * kFlashHitCycles);
  // The same interleaving through ONE master's buffer thrashes.
  f.invalidate_buffer();
  total = 0;
  for (int i = 0; i < 4; ++i) {
    total += f.access_cycles(kFlashBase + 8 * i, 8, 4);
    total += f.access_cycles(kFlashBase + 4096 + 8 * i, 8, 4);
  }
  EXPECT_EQ(total, 8 * kFlashMissCycles);
}

TEST(Flash, ImageReadback) {
  Flash f;
  f.write_image(kFlashBase + 16, {0xde, 0xad, 0xbe, 0xef});
  EXPECT_EQ(f.read32(kFlashBase + 16), 0xefbeaddeu);
}

// ----------------------------------------------------------------------------
// Bus
// ----------------------------------------------------------------------------

struct BusFixture : ::testing::Test {
  Flash flash;
  Sram sram;
  SharedBus bus;

  u32 run_until_complete(unsigned id, u32 limit = 100) {
    u32 cycles = 0;
    while (!bus.complete(id)) {
      bus.tick(flash, sram);
      ++cycles;
      if (cycles > limit) ADD_FAILURE() << "bus transaction did not complete";
      if (cycles > limit) break;
    }
    return cycles;
  }
};

TEST_F(BusFixture, SingleReadLatency) {
  bus.submit(0, BusReq{.addr = kSramBase + 64, .bytes = 4});
  // SRAM word: 2 device cycles + 1 arbitration.
  EXPECT_EQ(run_until_complete(0), kSramFirstCycles + 1);
  // Per-requester accounting: one submit, one uncontended grant (wait == 0)
  // occupying arbitration + device cycles.
  EXPECT_EQ(bus.stats(0).submits, 1u);
  EXPECT_EQ(bus.stats(0).grants, 1u);
  EXPECT_EQ(bus.stats(0).wait_cycles, 0u);
  EXPECT_EQ(bus.stats(0).occupancy_cycles, u64{kSramFirstCycles} + 1);
}

TEST_F(BusFixture, WriteThenReadBack) {
  bus.submit(0, BusReq{.addr = kSramBase, .bytes = 4, .write = true, .wdata = {0x12345678}});
  run_until_complete(0);
  bus.retire(0);
  bus.submit(1, BusReq{.addr = kSramBase, .bytes = 4});
  run_until_complete(1);
  EXPECT_EQ(bus.rdata(1, 0), 0x12345678u);
}

TEST_F(BusFixture, AmoAddReturnsOldValue) {
  sram.write32(kSramBase + 8, 100);
  bus.submit(2, BusReq{.addr = kSramBase + 8, .bytes = 4, .amo_add = true, .wdata = {5}});
  run_until_complete(2);
  EXPECT_EQ(bus.rdata(2, 0), 100u);
  EXPECT_EQ(sram.read32(kSramBase + 8), 105u);
}

TEST_F(BusFixture, ContentionSerialisesRequesters) {
  // Two simultaneous SRAM reads: the second waits for the first.
  bus.submit(0, BusReq{.addr = kSramBase, .bytes = 4});
  bus.submit(1, BusReq{.addr = kSramBase + 4, .bytes = 4});
  u32 t0 = 0, t1 = 0, cycles = 0;
  while (!bus.complete(0) || !bus.complete(1)) {
    bus.tick(flash, sram);
    ++cycles;
    if (bus.complete(0) && t0 == 0) t0 = cycles;
    if (bus.complete(1) && t1 == 0) t1 = cycles;
    ASSERT_LT(cycles, 100u);
  }
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1 - t0, kSramFirstCycles);
  // The winner of the simultaneous submit never waited; the loser waited out
  // the winner's device access (its grant lands on the completion tick).
  EXPECT_EQ(bus.stats(0).wait_cycles, 0u);
  EXPECT_EQ(bus.stats(1).wait_cycles, u64{kSramFirstCycles});
  EXPECT_EQ(bus.stats(0).grants + bus.stats(1).grants, 2u);
}

TEST_F(BusFixture, RoundRobinFairness) {
  // After requester 0 is served, a simultaneous pair (0,1) grants 1 first.
  bus.submit(0, BusReq{.addr = kSramBase, .bytes = 4});
  run_until_complete(0);
  bus.retire(0);
  bus.submit(0, BusReq{.addr = kSramBase, .bytes = 4});
  bus.submit(1, BusReq{.addr = kSramBase + 4, .bytes = 4});
  u32 cycles = 0;
  while (!bus.complete(1)) {
    bus.tick(flash, sram);
    ASSERT_LT(++cycles, 100u);
  }
  // 1 completed while 0 still pending -> 1 was granted first.
  EXPECT_FALSE(bus.complete(0));
}

// ----------------------------------------------------------------------------
// Cache
// ----------------------------------------------------------------------------

CacheConfig small_cfg() { return CacheConfig{.size_bytes = 256, .ways = 2, .line_bytes = 32}; }

std::vector<u32> make_beats(u32 seed) {
  std::vector<u32> b(8);
  for (u32 i = 0; i < 8; ++i) b[i] = seed + i;
  return b;
}

TEST(Cache, MissThenHit) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.lookup(0x1000));
  c.fill(0x1000, make_beats(10));
  EXPECT_TRUE(c.lookup(0x1000));
  EXPECT_TRUE(c.lookup(0x101c));  // same line
  EXPECT_EQ(c.read(0x1004, 4), 11u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SubWordReadWrite) {
  Cache c(small_cfg());
  c.fill(0, make_beats(0));
  c.write(2, 0xab, 1);
  EXPECT_EQ(c.read(2, 1), 0xabu);
  EXPECT_EQ(c.read(0, 4) & 0x00ff0000u, 0x00ab0000u);
  EXPECT_TRUE(c.line_dirty(0));
}

TEST(Cache, LruEviction) {
  Cache c(small_cfg());  // 4 sets, 2 ways; set stride = 4*32 = 128
  // Three lines mapping to set 0: 0x0, 0x80, 0x100.
  c.fill(0x000, make_beats(1));
  c.fill(0x080, make_beats(2));
  EXPECT_TRUE(c.probe(0x000));
  c.lookup(0x000);  // touch 0x000 -> 0x080 becomes LRU
  c.fill(0x100, make_beats(3));
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x080));
  EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, VictimDirtyReportsWritebackData) {
  Cache c(small_cfg());
  c.fill(0x000, make_beats(1));
  c.fill(0x080, make_beats(2));
  c.write(0x004, 0xdeadbeef, 4);  // dirty line 0x000 (LRU after fill of 0x080? no: 0x000 touched by write)
  c.lookup(0x080);                // make 0x080 MRU -> victim is 0x000
  u32 wb_addr = 0;
  std::vector<u32> beats;
  ASSERT_TRUE(c.victim_dirty(0x100, wb_addr, beats));
  EXPECT_EQ(wb_addr, 0x000u);
  EXPECT_EQ(beats[1], 0xdeadbeefu);
}

TEST(Cache, InvalidateAllDiscardsDirtyData) {
  Cache c(small_cfg());
  c.fill(0, make_beats(7));
  c.write(0, 0x55, 1);
  c.invalidate_all();
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.probe(0));
}

// ----------------------------------------------------------------------------
// MemSystem port state machines
// ----------------------------------------------------------------------------

struct MemSysFixture : ::testing::Test {
  Flash flash;
  Sram sram;
  SharedBus bus;
  MemSystem ms{0};

  void spin(u32 n = 1) {
    for (u32 i = 0; i < n; ++i) {
      bus.tick(flash, sram);
      ms.tick(bus);
    }
  }

  u32 wait_ifetch(u32 limit = 100) {
    u32 cycles = 0;
    while (!ms.ifetch_done()) {
      spin();
      if (++cycles > limit) {
        ADD_FAILURE() << "ifetch did not complete";
        break;
      }
    }
    return cycles;
  }

  u32 wait_data(u32 limit = 100) {
    u32 cycles = 0;
    while (!ms.data_done()) {
      spin();
      if (++cycles > limit) {
        ADD_FAILURE() << "data op did not complete";
        break;
      }
    }
    return cycles;
  }
};

TEST_F(MemSysFixture, ItcmFetchSameCycle) {
  ms.itcm().write(0x100, 0x11111111, 4);
  ms.itcm().write(0x104, 0x22222222, 4);
  ms.ifetch_request(0x100, bus);
  ASSERT_TRUE(ms.ifetch_done());
  EXPECT_EQ(ms.ifetch_data(), 0x2222222211111111ull);
}

TEST_F(MemSysFixture, UncachedFlashFetchTakesFlashLatency) {
  flash.write_image(kFlashBase, {1, 0, 0, 0, 2, 0, 0, 0});
  ms.ifetch_request(kFlashBase, bus);
  EXPECT_FALSE(ms.ifetch_done());
  const u32 cycles = wait_ifetch();
  EXPECT_GE(cycles, kFlashMissCycles);
  EXPECT_EQ(static_cast<u32>(ms.ifetch_data()), 1u);
}

TEST_F(MemSysFixture, CachedFetchMissThenSameCycleHit) {
  flash.write_image(kFlashBase, std::vector<u8>(64, 0x90));
  ms.set_cache_cfg(isa::kCacheCfgIEn);
  ms.ifetch_request(kFlashBase, bus);
  EXPECT_FALSE(ms.ifetch_done());  // refill in progress
  wait_ifetch();
  ms.ifetch_ack();
  // Same line now hits combinationally.
  ms.ifetch_request(kFlashBase + 8, bus);
  EXPECT_TRUE(ms.ifetch_done());
  EXPECT_EQ(ms.icache().stats().hits, 1u);
  EXPECT_EQ(ms.icache().stats().misses, 1u);
}

TEST_F(MemSysFixture, IfetchCancelDiscardsInFlight) {
  ms.ifetch_request(kFlashBase, bus);
  ms.ifetch_cancel();
  u32 cycles = 0;
  while (ms.ifetch_inflight() != 0) {
    spin();
    ASSERT_LT(++cycles, 100u);
  }
  EXPECT_FALSE(ms.ifetch_done());  // response dropped
}

TEST_F(MemSysFixture, DtcmDataSameCycle) {
  ms.data_request({.addr = kDtcmBase + 8, .size = 4, .write = true, .wdata = 0xcafe}, bus);
  ASSERT_TRUE(ms.data_done());
  ms.data_ack();
  ms.data_request({.addr = kDtcmBase + 8, .size = 4}, bus);
  ASSERT_TRUE(ms.data_done());
  EXPECT_EQ(ms.data_rdata(), 0xcafeu);
}

TEST_F(MemSysFixture, WriteAllocateStoreMissFillsLine) {
  ms.set_cache_cfg(isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  ms.data_request({.addr = kSramBase + 0x40, .size = 4, .write = true, .wdata = 7}, bus);
  wait_data();
  ms.data_ack();
  EXPECT_TRUE(ms.dcache().probe(kSramBase + 0x40));
  EXPECT_TRUE(ms.dcache().line_dirty(kSramBase + 0x40));
  // SRAM not yet updated (write-back).
  EXPECT_EQ(sram.read32(kSramBase + 0x40), 0u);
  // Subsequent store to the same line: same-cycle hit.
  ms.data_request({.addr = kSramBase + 0x44, .size = 4, .write = true, .wdata = 8}, bus);
  EXPECT_TRUE(ms.data_done());
}

TEST_F(MemSysFixture, NoWriteAllocateStoreMissWritesAround) {
  ms.set_cache_cfg(isa::kCacheCfgDEn);  // no write-allocate
  ms.data_request({.addr = kSramBase + 0x40, .size = 4, .write = true, .wdata = 7}, bus);
  wait_data();
  ms.data_ack();
  EXPECT_FALSE(ms.dcache().probe(kSramBase + 0x40));
  EXPECT_EQ(sram.read32(kSramBase + 0x40), 7u);
}

TEST_F(MemSysFixture, LoadMissAllocatesEitherPolicy) {
  sram.write32(kSramBase + 0x80, 123);
  ms.set_cache_cfg(isa::kCacheCfgDEn);
  ms.data_request({.addr = kSramBase + 0x80, .size = 4}, bus);
  wait_data();
  EXPECT_EQ(ms.data_rdata(), 123u);
  ms.data_ack();
  EXPECT_TRUE(ms.dcache().probe(kSramBase + 0x80));
}

TEST_F(MemSysFixture, DirtyVictimWrittenBack) {
  ms.set_cache_cfg(isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  const u32 sets = ms.dcache().config().num_sets();
  const u32 stride = sets * 32;
  // Fill both ways of set 0 with dirty lines, then force an eviction.
  for (u32 i = 0; i < 3; ++i) {
    ms.data_request({.addr = kSramBase + i * stride, .size = 4, .write = true,
                     .wdata = 0x100 + i},
                    bus);
    wait_data();
    ms.data_ack();
  }
  // The first line must have been written back to SRAM.
  EXPECT_EQ(sram.read32(kSramBase), 0x100u);
}

TEST_F(MemSysFixture, AmoBypassesAndUpdatesCache) {
  ms.set_cache_cfg(isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  sram.write32(kSramBase + 0x200, 10);
  // Cache the line first (clean).
  ms.data_request({.addr = kSramBase + 0x200, .size = 4}, bus);
  wait_data();
  ms.data_ack();
  // AMO: returns old value, memory and cached copy updated.
  ms.data_request({.addr = kSramBase + 0x200, .size = 4, .amo_add = true, .wdata = 5}, bus);
  wait_data();
  EXPECT_EQ(ms.data_rdata(), 10u);
  ms.data_ack();
  EXPECT_EQ(sram.read32(kSramBase + 0x200), 15u);
  EXPECT_EQ(ms.dcache().read(kSramBase + 0x200, 4), 15u);
}

TEST_F(MemSysFixture, AmoFlushesDirtyLineFirst) {
  ms.set_cache_cfg(isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  ms.data_request({.addr = kSramBase + 0x300, .size = 4, .write = true, .wdata = 50}, bus);
  wait_data();
  ms.data_ack();
  ms.data_request({.addr = kSramBase + 0x300, .size = 4, .amo_add = true, .wdata = 1}, bus);
  wait_data();
  EXPECT_EQ(ms.data_rdata(), 50u);  // saw the dirty data, not stale SRAM
  ms.data_ack();
  EXPECT_EQ(sram.read32(kSramBase + 0x300), 51u);
}

TEST_F(MemSysFixture, CacheOpInvalidates) {
  ms.set_cache_cfg(isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  ms.data_request({.addr = kSramBase + 0x80, .size = 4, .write = true, .wdata = 1}, bus);
  wait_data();
  ms.data_ack();
  ms.cache_op(isa::kCacheOpInvD);
  EXPECT_EQ(ms.dcache().valid_lines(), 0u);
}

// ----------------------------------------------------------------------------
// TCM
// ----------------------------------------------------------------------------

TEST(Tcm, ReadWriteRoundTrip) {
  Tcm t(0x1000, 256);
  t.write(0x1010, 0xa5a5a5a5, 4);
  EXPECT_EQ(t.read(0x1010, 4), 0xa5a5a5a5u);
  t.write(0x1014, 0x77, 1);
  EXPECT_EQ(t.read(0x1014, 1), 0x77u);
  EXPECT_TRUE(t.contains(0x10ff));
  EXPECT_FALSE(t.contains(0x1100));
}

}  // namespace
}  // namespace detstl::mem
