// Common utilities: bit helpers, deterministic RNG, table rendering.

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "common/table.h"

namespace detstl {
namespace {

TEST(BitUtil, BitsAndSext) {
  EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
  EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
  EXPECT_EQ(bits(0xffffffff, 31, 0), 0xffffffffu);
  EXPECT_EQ(bit(0x80000000u, 31), 1u);
  EXPECT_EQ(sext(0x8000, 16), -32768);
  EXPECT_EQ(sext(0x7fff, 16), 32767);
  EXPECT_EQ(sext(0xff, 8), -1);
  EXPECT_EQ(zext(0xffff1234, 16), 0x1234u);
}

TEST(BitUtil, FitsRanges) {
  EXPECT_TRUE(fits_signed(32767, 16));
  EXPECT_FALSE(fits_signed(32768, 16));
  EXPECT_TRUE(fits_signed(-32768, 16));
  EXPECT_FALSE(fits_signed(-32769, 16));
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
}

TEST(BitUtil, Alignment) {
  EXPECT_EQ(align_down(0x1234, 16), 0x1230u);
  EXPECT_EQ(align_up(0x1234, 16), 0x1240u);
  EXPECT_EQ(align_up(0x1240, 16), 0x1240u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(96));
  EXPECT_EQ(log2u(4096), 12u);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const u64 v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  // chance(): rough sanity on the acceptance rate.
  unsigned hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits, 2500u, 300u);
}

TEST(TextTable, FormatsAndAligns) {
  TextTable t("Title");
  t.header({"name", "value"});
  t.row({"alpha", TextTable::fmt_int(1234567)});
  t.separator();
  t.row({"beta", TextTable::fmt_fixed(3.14159, 2)});
  t.row({"gamma", TextTable::fmt_hex(0xbeef)});
  const std::string s = t.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("1,234,567"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("0x0000beef"), std::string::npos);
  // All rendered lines of the box have the same width.
  std::size_t width = 0;
  std::size_t pos = s.find('\n') + 1;  // skip the title line
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = nl + 1;
  }
}

TEST(TextTable, NegativeAndShortRows) {
  EXPECT_EQ(TextTable::fmt_int(-1234567), "-1,234,567");
  EXPECT_EQ(TextTable::fmt_int(0), "0");
  TextTable t("");
  t.header({"a", "b", "c"});
  t.row({"only-one"});  // short rows pad with empty cells
  EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace detstl
