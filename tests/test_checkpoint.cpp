// Checkpoint/resume subsystem (fault/checkpoint.h): shard I/O round-trips,
// manifest binding, corruption quarantine (truncation, bit-flips, version
// skew) with kCkptReject telemetry, the work-queue done-mask/halt extensions,
// loss-less RunRecord serialisation — and the headline contract: straight,
// killed-and-resumed and multi-resume campaigns are byte-identical at any
// thread count, for both the fault campaign and the disturbance campaign.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/campaign.h"
#include "fault/checkpoint.h"
#include "fault/work_queue.h"
#include "runtime/campaign.h"
#include "trace/capture.h"

namespace fs = std::filesystem;

namespace detstl::fault {
namespace {

using core::WrapperKind;

// Documented shard layout (fault/checkpoint.h): the trailing header checksum
// is FNV-1a over the first 48 bytes, stored at offset 48; payload follows.
constexpr std::size_t kSchemaOffset = 8;
constexpr std::size_t kChecksummedBytes = 48;
constexpr std::size_t kHeaderBytes = 56;

/// Fresh scratch directory under the gtest temp root; wiped up-front so a
/// crashed earlier run can never leak shards into this one.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("detstl-ckpt-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

CheckpointConfig make_cfg(const fs::path& dir, u32 interval = 4,
                          bool resume = false) {
  CheckpointConfig cfg;
  cfg.dir = dir.string();
  cfg.interval = interval;
  cfg.resume = resume;
  cfg.fsync = FsyncPolicy::kNone;  // the tests do not survive power cuts anyway
  return cfg;
}

std::vector<u8> read_all(const fs::path& p) {
  std::vector<u8> out;
  std::FILE* f = std::fopen(p.c_str(), "rb");
  EXPECT_NE(f, nullptr) << p;
  if (f == nullptr) return out;
  u8 buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return out;
}

void write_all(const fs::path& p, const std::vector<u8>& bytes) {
  std::FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr) << p;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void patch_u64(std::vector<u8>& bytes, std::size_t at, u64 v) {
  for (unsigned i = 0; i < 8; ++i) bytes[at + i] = static_cast<u8>(v >> (8 * i));
}

std::vector<trace::Event> ckpt_events(const trace::StreamCapture& cap,
                                      trace::EventKind kind) {
  std::vector<trace::Event> out;
  for (const trace::Event& e : cap.events())
    if (e.kind == kind) out.push_back(e);
  return out;
}

// ---------------------------------------------------------------------------
// Shard I/O
// ---------------------------------------------------------------------------

TEST(CheckpointIO, WriterAndLoaderRoundTrip) {
  const auto dir = scratch_dir("roundtrip");
  const u64 hash = 0x1234'5678'9abc'def0ull;
  {
    CheckpointWriter w(make_cfg(dir, 3), PayloadKind::kFaultOutcomes, hash, 0,
                       nullptr);
    ASSERT_TRUE(w.enabled());
    for (u64 i = 0; i < 10; ++i)
      w.add(i * 7, {static_cast<u8>(i), static_cast<u8>(i + 100)});
    w.flush();
    EXPECT_EQ(w.shards_flushed(), 4u);  // 3 + 3 + 3 + final 1
  }
  EXPECT_TRUE(checkpoint_present(make_cfg(dir)));

  trace::StreamCapture cap;
  const auto loaded =
      load_checkpoint(make_cfg(dir, 3, true), PayloadKind::kFaultOutcomes, hash, &cap);
  EXPECT_EQ(loaded.shards_loaded, 4u);
  EXPECT_EQ(loaded.shards_corrupt, 0u);
  EXPECT_EQ(loaded.next_shard, 4u);  // numbering continues after the highest
  ASSERT_EQ(loaded.records.size(), 10u);
  for (u64 i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded.records[i].index, i * 7);
    const std::vector<u8> want{static_cast<u8>(i), static_cast<u8>(i + 100)};
    EXPECT_EQ(loaded.records[i].payload, want) << "record " << i;
  }
  EXPECT_EQ(ckpt_events(cap, trace::EventKind::kCkptLoad).size(), 4u);
  EXPECT_TRUE(ckpt_events(cap, trace::EventKind::kCkptReject).empty());
}

TEST(CheckpointIO, DisabledConfigIsInert) {
  const CheckpointConfig off;  // empty dir = checkpointing off
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(checkpoint_present(off));
  CheckpointWriter w(off, PayloadKind::kFaultOutcomes, 0, 0, nullptr);
  EXPECT_FALSE(w.enabled());
  w.add(0, {1});
  w.flush();
  EXPECT_EQ(w.shards_flushed(), 0u);
  const auto loaded = load_checkpoint(off, PayloadKind::kFaultOutcomes, 0, nullptr);
  EXPECT_TRUE(loaded.records.empty());
}

TEST(CheckpointIO, FreshWriterRefusesOccupiedDirAndResumeNeedsManifest) {
  const auto dir = scratch_dir("occupied");
  {
    CheckpointWriter w(make_cfg(dir), PayloadKind::kFaultOutcomes, 7, 0, nullptr);
    ASSERT_TRUE(w.enabled());
  }
  // Restarting fresh over an existing checkpoint must be an explicit decision.
  EXPECT_THROW(
      CheckpointWriter(make_cfg(dir), PayloadKind::kFaultOutcomes, 7, 0, nullptr),
      CheckpointMismatch);
  // A resume writer without a manifest has nothing to continue.
  const auto empty = scratch_dir("occupied-empty");
  EXPECT_THROW(CheckpointWriter(make_cfg(empty, 4, true),
                                PayloadKind::kFaultOutcomes, 7, 0, nullptr),
               CheckpointMismatch);
}

TEST(CheckpointIO, LoadWithoutManifestThrows) {
  const auto dir = scratch_dir("no-manifest");
  EXPECT_THROW(
      load_checkpoint(make_cfg(dir, 4, true), PayloadKind::kFaultOutcomes, 0, nullptr),
      CheckpointMismatch);
  // Nonexistent directory: same refusal, not a crash.
  CheckpointConfig gone = make_cfg(dir / "does-not-exist", 4, true);
  EXPECT_THROW(load_checkpoint(gone, PayloadKind::kFaultOutcomes, 0, nullptr),
               CheckpointMismatch);
}

TEST(CheckpointIO, ManifestBindingRejectsHashAndKindMismatch) {
  const auto dir = scratch_dir("binding");
  {
    CheckpointWriter w(make_cfg(dir), PayloadKind::kFaultOutcomes, 42, 0, nullptr);
    w.add(0, {1});
    w.flush();
  }
  // Same kind, different config hash: a different campaign — never merged.
  EXPECT_THROW(
      load_checkpoint(make_cfg(dir, 4, true), PayloadKind::kFaultOutcomes, 43, nullptr),
      CheckpointMismatch);
  // Same hash, different payload kind: a different campaign *type*.
  EXPECT_THROW(
      load_checkpoint(make_cfg(dir, 4, true), PayloadKind::kDisturbanceRuns, 42, nullptr),
      CheckpointMismatch);
}

/// Write two 2-record shards bound to `hash` and return their paths.
std::pair<fs::path, fs::path> write_two_shards(const fs::path& dir, u64 hash) {
  CheckpointWriter w(make_cfg(dir, 2), PayloadKind::kFaultOutcomes, hash, 0, nullptr);
  for (u64 i = 0; i < 4; ++i) w.add(i, {static_cast<u8>(i)});
  w.flush();
  return {dir / "shard-000000.ckpt", dir / "shard-000001.ckpt"};
}

TEST(CheckpointIO, TruncatedShardQuarantinedAndRestLoaded) {
  const auto dir = scratch_dir("truncate");
  const auto [s0, s1] = write_two_shards(dir, 99);
  auto bytes = read_all(s0);
  bytes.resize(bytes.size() - 1);  // lose the tail (simulated torn write)
  write_all(s0, bytes);

  trace::StreamCapture cap;
  const auto loaded =
      load_checkpoint(make_cfg(dir, 2, true), PayloadKind::kFaultOutcomes, 99, &cap);
  EXPECT_EQ(loaded.shards_corrupt, 1u);
  EXPECT_EQ(loaded.shards_loaded, 1u);
  ASSERT_EQ(loaded.records.size(), 2u);  // only shard 1's records survive
  EXPECT_EQ(loaded.records[0].index, 2u);
  EXPECT_EQ(loaded.records[1].index, 3u);
  // Quarantined under <shard>.corrupt; the original name is freed.
  EXPECT_FALSE(fs::exists(s0));
  EXPECT_TRUE(fs::exists(fs::path(s0.string() + ".corrupt")));
  const auto rejects = ckpt_events(cap, trace::EventKind::kCkptReject);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].a, static_cast<u32>(RejectReason::kTruncated));
  EXPECT_EQ(rejects[0].b, 0u);  // shard number
}

TEST(CheckpointIO, BitFlipsInHeaderAndPayloadQuarantined) {
  const auto dir = scratch_dir("bitflip");
  const auto [s0, s1] = write_two_shards(dir, 99);
  auto h = read_all(s0);
  h[16] ^= 0x01;  // config-hash field: header checksum catches it first
  write_all(s0, h);
  auto p = read_all(s1);
  ASSERT_GT(p.size(), kHeaderBytes);
  p[kHeaderBytes + 3] ^= 0x40;  // one flipped bit inside the payload
  write_all(s1, p);

  trace::StreamCapture cap;
  const auto loaded =
      load_checkpoint(make_cfg(dir, 2, true), PayloadKind::kFaultOutcomes, 99, &cap);
  EXPECT_EQ(loaded.shards_corrupt, 2u);
  EXPECT_EQ(loaded.shards_loaded, 0u);
  EXPECT_TRUE(loaded.records.empty());
  const auto rejects = ckpt_events(cap, trace::EventKind::kCkptReject);
  ASSERT_EQ(rejects.size(), 2u);
  EXPECT_EQ(rejects[0].a, static_cast<u32>(RejectReason::kBadHeaderChecksum));
  EXPECT_EQ(rejects[1].a, static_cast<u32>(RejectReason::kBadPayloadChecksum));
}

TEST(CheckpointIO, VersionSkewedShardQuarantined) {
  const auto dir = scratch_dir("version-skew");
  const auto [s0, s1] = write_two_shards(dir, 99);
  // Craft a shard from a "future" schema: bump the version field and restamp
  // the header checksum so only the version check can reject it.
  auto bytes = read_all(s0);
  bytes[kSchemaOffset] = static_cast<u8>(kCheckpointSchemaVersion + 1);
  patch_u64(bytes, kChecksummedBytes, fnv1a(bytes.data(), kChecksummedBytes));
  write_all(s0, bytes);

  trace::StreamCapture cap;
  const auto loaded =
      load_checkpoint(make_cfg(dir, 2, true), PayloadKind::kFaultOutcomes, 99, &cap);
  EXPECT_EQ(loaded.shards_corrupt, 1u);
  EXPECT_EQ(loaded.shards_loaded, 1u);
  const auto rejects = ckpt_events(cap, trace::EventKind::kCkptReject);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].a, static_cast<u32>(RejectReason::kVersionSkew));
}

// ---------------------------------------------------------------------------
// Work-queue extensions (done mask, halt)
// ---------------------------------------------------------------------------

TEST(WorkQueue, DoneMaskSkipsFullyDoneChunksOnly) {
  std::vector<u8> done(12, 0);
  for (std::size_t i = 4; i < 8; ++i) done[i] = 1;  // chunk [4,8) fully done
  done[0] = 1;                                      // chunk [0,4) only partly
  WorkQueue q(12, 4, &done);
  const auto a = q.next(), b = q.next();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->begin, 0u);  // mixed chunk still dispensed
  EXPECT_EQ(b->begin, 8u);  // fully-done chunk skipped
  EXPECT_FALSE(q.next().has_value());
}

TEST(WorkQueue, AllDoneDispensesNothing) {
  std::vector<u8> done(10, 1);
  WorkQueue q(10, 3, &done);
  EXPECT_FALSE(q.next().has_value());
}

TEST(WorkQueue, HaltStopsDispensingImmediately) {
  WorkQueue q(100, 10);
  ASSERT_TRUE(q.next().has_value());
  EXPECT_FALSE(q.halted());
  q.halt();
  EXPECT_TRUE(q.halted());
  EXPECT_FALSE(q.next().has_value());
  EXPECT_FALSE(q.next().has_value());
}

// ---------------------------------------------------------------------------
// Fault campaign: kill, resume, multi-resume, corruption convergence
// ---------------------------------------------------------------------------

CampaignResult run_fwd(unsigned threads, const CheckpointConfig& ckpt = {},
                       InterruptToken* token = nullptr,
                       trace::EventSink* sink = nullptr) {
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "ckpt"};
  auto tests = exp::build_scenario_tests(*routine, WrapperKind::kPlain, sc, 0,
                                         /*use_pcs=*/false);
  CampaignConfig cc;
  cc.module = Module::kFwd;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 8;
  cc.threads = threads;
  cc.checkpoint = ckpt;
  cc.interrupt = token;
  cc.sink = sink;
  Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  return campaign.run();
}

/// Straight single-threaded reference run, computed once per test binary.
const CampaignResult& fwd_baseline() {
  static const CampaignResult r = run_fwd(1);
  return r;
}

TEST(CheckpointCampaign, KillResumeAndMultiResumeAreByteIdentical) {
  const auto& base = fwd_baseline();
  ASSERT_GT(base.simulated_faults, 100u);
  const auto base_bytes = base.canonical_bytes();

  const auto dir = scratch_dir("fault-kill-resume");
  InterruptToken token;
  token.arm_after(10);  // deterministic kill point mid-detection
  const auto killed = run_fwd(2, make_cfg(dir, 4), &token);
  EXPECT_TRUE(killed.ckpt.interrupted);
  EXPECT_GT(killed.ckpt.shards_flushed, 0u);
  EXPECT_LT(killed.detected, base.detected);  // genuinely partial

  // Second kill: resume at a different thread count and drain again.
  token.clear();
  token.arm_after(10);
  const auto killed2 = run_fwd(1, make_cfg(dir, 4, true), &token);
  EXPECT_TRUE(killed2.ckpt.interrupted);
  EXPECT_GT(killed2.ckpt.shards_loaded, 0u);
  EXPECT_GT(killed2.ckpt.records_resumed, 0u);

  // Final resume runs to completion — byte-identical to the straight run.
  token.clear();
  const auto resumed = run_fwd(8, make_cfg(dir, 4, true), &token);
  EXPECT_FALSE(resumed.ckpt.interrupted);
  EXPECT_GT(resumed.ckpt.records_resumed, killed2.ckpt.records_resumed);
  EXPECT_EQ(resumed.canonical_bytes(), base_bytes);
}

TEST(CheckpointCampaign, CorruptShardIsReexecutedToConvergence) {
  const auto& base = fwd_baseline();
  const auto dir = scratch_dir("fault-corrupt");
  InterruptToken token;
  token.arm_after(24);
  (void)run_fwd(2, make_cfg(dir, 4), &token);
  const fs::path s0 = dir / "shard-000000.ckpt";
  ASSERT_TRUE(fs::exists(s0));
  auto bytes = read_all(s0);
  ASSERT_GT(bytes.size(), kHeaderBytes);
  bytes[kHeaderBytes] ^= 0x40;  // bit-flip the first record's payload
  write_all(s0, bytes);

  token.clear();
  trace::StreamCapture cap;
  const auto resumed = run_fwd(1, make_cfg(dir, 4, true), &token, &cap);
  EXPECT_GE(resumed.ckpt.shards_corrupt, 1u);
  EXPECT_TRUE(fs::exists(fs::path(s0.string() + ".corrupt")));
  const auto rejects = ckpt_events(cap, trace::EventKind::kCkptReject);
  ASSERT_GE(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].a, static_cast<u32>(RejectReason::kBadPayloadChecksum));
  // The quarantined range was re-executed: the result still converges.
  EXPECT_EQ(resumed.canonical_bytes(), base.canonical_bytes());
}

TEST(CheckpointCampaign, CompleteCheckpointResumesWithoutRework) {
  const auto& base = fwd_baseline();
  const auto dir = scratch_dir("fault-complete");
  const auto full = run_fwd(2, make_cfg(dir, 8));
  EXPECT_FALSE(full.ckpt.interrupted);
  EXPECT_EQ(full.canonical_bytes(), base.canonical_bytes());

  // Every simulated fault is journaled (kNotExcited included), so a resume of
  // a complete checkpoint skips the entire fault population.
  const auto resumed = run_fwd(1, make_cfg(dir, 8, true));
  EXPECT_EQ(resumed.ckpt.records_resumed, base.simulated_faults);
  EXPECT_EQ(resumed.canonical_bytes(), base.canonical_bytes());
}

TEST(CheckpointCampaign, ForeignManifestRejectedEndToEnd) {
  const auto dir = scratch_dir("fault-foreign");
  {
    // A manifest bound to some other campaign's hash.
    CheckpointWriter w(make_cfg(dir), PayloadKind::kFaultOutcomes,
                       0xDEAD'BEEF'0BAD'F00Dull, 0, nullptr);
    ASSERT_TRUE(w.enabled());
  }
  EXPECT_THROW(run_fwd(1, make_cfg(dir, 4, true)), CheckpointMismatch);
  // And a fresh (non-resume) campaign must refuse the occupied directory.
  EXPECT_THROW(run_fwd(1, make_cfg(dir, 4, false)), CheckpointMismatch);
}

// ---------------------------------------------------------------------------
// Disturbance campaign: record serialisation + kill/resume
// ---------------------------------------------------------------------------

runtime::CampaignSpec small_disturbance_spec() {
  runtime::CampaignSpec spec;
  spec.seed = 0xC0FFEE42;
  spec.runs = 6;
  spec.cores = 2;
  spec.threads = 1;
  spec.routines = {"alu", "shifter"};
  spec.disturb.count = 3;
  spec.disturb.permanent_chance = 0.5;
  return spec;
}

TEST(CheckpointDisturbance, RunRecordSerialisationRoundTripsLosslessly) {
  auto spec = small_disturbance_spec();
  spec.runs = 2;
  const auto res = runtime::run_disturbance_campaign(spec);
  ASSERT_EQ(res.records.size(), 2u);
  for (const runtime::RunRecord& rec : res.records) {
    const auto bytes = runtime::serialize_run_record(rec);
    runtime::RunRecord back;
    ASSERT_TRUE(runtime::deserialize_run_record(bytes, back));
    // Round-trip fixpoint: re-serialising the parse reproduces the bytes.
    EXPECT_EQ(runtime::serialize_run_record(back), bytes);
    EXPECT_EQ(back.seed, rec.seed);

    // Framing errors are rejected, never half-parsed: truncation...
    auto cut = bytes;
    cut.pop_back();
    EXPECT_FALSE(runtime::deserialize_run_record(cut, back));
    // ...trailing garbage...
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(runtime::deserialize_run_record(padded, back));
    // ...and an empty payload.
    EXPECT_FALSE(runtime::deserialize_run_record({}, back));
  }
}

TEST(CheckpointDisturbance, KillAndResumeMatchesStraightRun) {
  const auto spec = small_disturbance_spec();
  const auto straight = runtime::run_disturbance_campaign(spec);

  const auto dir = scratch_dir("dist-kill-resume");
  InterruptToken token;
  token.arm_after(3);
  auto killed_spec = spec;
  killed_spec.checkpoint = make_cfg(dir, 2);
  killed_spec.interrupt = &token;
  const auto killed = runtime::run_disturbance_campaign(killed_spec);
  EXPECT_TRUE(killed.ckpt.interrupted);
  EXPECT_GT(killed.ckpt.shards_flushed, 0u);

  token.clear();
  auto resume_spec = killed_spec;
  resume_spec.checkpoint.resume = true;
  resume_spec.threads = 2;  // resuming on a different worker count is legal
  const auto resumed = runtime::run_disturbance_campaign(resume_spec);
  EXPECT_FALSE(resumed.ckpt.interrupted);
  EXPECT_GT(resumed.ckpt.shards_loaded, 0u);
  EXPECT_GT(resumed.ckpt.records_resumed, 0u);
  EXPECT_EQ(resumed.outcome_vector(), straight.outcome_vector());
  EXPECT_EQ(resumed.digest(), straight.digest());
  EXPECT_EQ(runtime::render_recovery_report(resumed),
            runtime::render_recovery_report(straight));
}

}  // namespace
}  // namespace detstl::fault
